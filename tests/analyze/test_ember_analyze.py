#!/usr/bin/env python3
"""Regression tests for scripts/ember_analyze.py.

Runs the analyzer against fixture files with known violations and
asserts the exact (line, rule) findings, the clean fixture stays clean,
the whole src/ tree passes all three rules, and exit codes behave.
Registered in ctest as EmberAnalyze.SelfTest / EmberAnalyze.SrcClean.
"""

import re
import subprocess
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
ANALYZE = REPO / "scripts" / "ember_analyze.py"
FIXTURES = REPO / "tests" / "analyze" / "fixtures"

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def run_analyze(*paths):
    proc = subprocess.run(
        [sys.executable, str(ANALYZE), *map(str, paths)],
        capture_output=True, text=True, cwd=REPO, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((int(m.group("line")), m.group("rule")))
    return proc.returncode, findings


class EmberAnalyzeSelfTest(unittest.TestCase):
    def test_collective_symmetry_fixture(self):
        # Both shapes fire: conditional early returns before a later
        # collective (lines 24, 55) and rank-gated collectives (34, 45).
        rc, findings = run_analyze(FIXTURES / "collective_symmetry.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [
            (24, "collective-symmetry"),
            (34, "collective-symmetry"),
            (45, "collective-symmetry"),
            (55, "collective-symmetry"),
        ])

    def test_blocking_under_lock_fixture(self):
        # submit/ofstream/drain/send/recv/join inside lock scopes; the
        # reasoned allow() at the end is not reported.
        rc, findings = run_analyze(FIXTURES / "blocking_lock.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [
            (42, "blocking-under-lock"),
            (49, "blocking-under-lock"),
            (50, "blocking-under-lock"),
            (57, "blocking-under-lock"),
            (58, "blocking-under-lock"),
            (64, "blocking-under-lock"),
        ])

    def test_unordered_reduction_fixture(self):
        rc, findings = run_analyze(FIXTURES / "unordered_reduction.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [
            (21, "unordered-iteration-reduction"),
            (29, "unordered-iteration-reduction"),
            (38, "unordered-iteration-reduction"),
        ])

    def test_clean_fixture_is_clean(self):
        # The symmetric / staged / ordered twins of every flagged shape:
        # post-collective rank returns, rank blocks without returns,
        # uniform conditions, staged submits, deferred lambdas, std::map
        # reductions, sibling-scope name collisions.
        rc, findings = run_analyze(FIXTURES / "clean.cpp")
        self.assertEqual((rc, findings), (0, []))

    def test_allow_without_reason_is_reported(self):
        rc, findings = run_analyze(FIXTURES / "bare_allow.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [(14, "collective-symmetry")])

    def test_every_rule_has_firing_fixture_coverage(self):
        _, findings = run_analyze(FIXTURES / "collective_symmetry.cpp",
                                  FIXTURES / "blocking_lock.cpp",
                                  FIXTURES / "unordered_reduction.cpp")
        covered = {rule for _, rule in findings}
        listed = subprocess.run(
            [sys.executable, str(ANALYZE), "--list-rules"],
            capture_output=True, text=True, cwd=REPO, check=True).stdout
        all_rules = {line.split()[0] for line in listed.splitlines() if line}
        self.assertEqual(covered, all_rules)

    def test_src_tree_is_clean(self):
        rc, findings = run_analyze(REPO / "src")
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)

    def test_unknown_path_exits_2(self):
        rc, _ = run_analyze(REPO / "no" / "such" / "dir")
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
