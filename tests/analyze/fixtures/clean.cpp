// ember_analyze self-test fixture: everything below is legal — the
// analyzer must report zero findings for this file. Never compiled.
//
// Each function is the symmetric / non-blocking / deterministic twin of
// a shape the firing fixtures flag, so rule tightening that starts
// reporting any of these is a regression, not a catch.

#include <fstream>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace fixture {

namespace comm {
struct Transport {
  int rank();
  int size();
  void barrier();
  double allreduce_sum(double v);
};
}  // namespace comm

struct Writer {
  void submit(int frame);
  void drain();
};

// Every rank reaches the allreduce: the branch only changes the value
// contributed, never the collective sequence.
double symmetric_energy(comm::Transport& t, double local, bool converged) {
  const double mine = converged ? 0.0 : local;
  return t.allreduce_sum(mine);
}

// A rank-conditional early return AFTER the last collective is the
// root-does-the-output idiom (ParallelSimulation::dump) — legal.
void root_writes(comm::Transport& t, Writer& w, double local) {
  const double sum = t.allreduce_sum(local);
  if (t.rank() != 0) {
    return;
  }
  w.submit(static_cast<int>(sum));
}

// A rank-conditional block (no return) before a collective: every rank
// still arrives at the barrier (ParallelSimulation::write_checkpoint).
void root_then_barrier(comm::Transport& t, Writer& w) {
  if (t.rank() == 0) {
    w.submit(0);
  }
  t.barrier();
}

// A uniform (non-rank) condition around a collective is symmetric by
// construction: every rank computes the same predicate.
void every_hundredth(comm::Transport& t, long step) {
  if (step % 100 == 0) {
    t.barrier();
  }
}

struct Pipeline {
  std::mutex mu;
  Writer writer;
  int staged = 0;

  // The blocking call runs after the lock scope closes: stage under the
  // lock, block outside it.
  void staged_submit(int frame) {
    {
      std::lock_guard<std::mutex> lock(mu);
      staged = frame;
    }
    writer.submit(staged);
  }

  // A blocking call inside a lambda *defined* under the lock is
  // deferred work — it does not run while the lock is held.
  std::vector<int> pending;
  void enqueue(int frame) {
    std::lock_guard<std::mutex> lock(mu);
    pending.push_back(frame);
    auto flush = [this] { writer.drain(); };
    static_cast<void>(flush);
  }
};

// Reads may roam hash order freely when nothing is accumulated or
// emitted (pure lookup).
bool contains(const std::unordered_map<int, double>& m, int key) {
  for (const auto& [k, v] : m) {
    if (k == key) {
      return v > 0.0;
    }
  }
  return false;
}

// std::map iterates in key order: deterministic reduction, no finding.
double ordered_total(const std::map<int, double>& masses) {
  double sum = 0.0;
  for (const auto& [id, m] : masses) {
    sum += m;
  }
  return sum;
}

// The sanctioned rewrite: sort the keys first, then reduce. The key
// harvest itself is a flagged shape, exempted with a reasoned allow;
// the reduction below runs over the sorted vector and is clean.
double sorted_total(const std::unordered_map<int, double>& masses) {
  std::vector<int> keys;
  keys.reserve(masses.size());
  // ember-analyze: allow(unordered-iteration-reduction) -- key harvest
  // feeding std::sort: the sort erases the hash order before any use.
  for (const auto& [id, m] : masses) {
    keys.push_back(id);
  }
  std::vector<int> sorted = keys;  // std::sort(sorted) in real code
  double sum = 0.0;
  for (const int id : sorted) {
    sum += masses.at(id);
  }
  return sum;
}

}  // namespace fixture
