// ember_analyze self-test fixture for unordered-iteration-reduction:
// hash-ordered iteration feeding accumulations and output. Never
// compiled — the analyzer must report the (rule, line) pairs asserted
// in test_ember_analyze.py.
//
// NOTE: line numbers matter. If you edit this file, update the expected
// findings table in test_ember_analyze.py.

#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

// Line 21: summing over hash order — the float result changes with the
// container's load factor and seed.
double total_mass(const std::unordered_map<int, double>& masses) {
  double sum = 0.0;
  for (const auto& [id, m] : masses) {
    sum += m;
  }
  return sum;
}

// Line 29: dumping in hash order — the file differs run to run.
void dump_ids(const std::unordered_set<long>& ids, std::ostream& os) {
  for (const long id : ids) {
    os << id << '\n';
  }
}

// Line 38: collecting into a vector in hash order is the same bug one
// step removed (the vector feeds the dump downstream).
std::vector<long> collect(const std::unordered_map<long, long>& hits) {
  std::vector<long> out;
  for (const auto& kv : hits) {
    out.push_back(kv.first);
  }
  return out;
}

// Annotated escape with a reason: not reported.
long count_even(const std::unordered_set<long>& ids) {
  long n = 0;
  // ember-analyze: allow(unordered-iteration-reduction) -- fixture for
  // the annotated escape: parity count is order-independent (integer).
  for (const long id : ids) {
    n += (id % 2 == 0) ? 1 : 0;
  }
  return n;
}

}  // namespace fixture
