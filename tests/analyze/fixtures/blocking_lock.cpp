// ember_analyze self-test fixture for blocking-under-lock: calls that
// can block on another thread or the filesystem made while a lock
// scope is open. Never compiled — the analyzer must report the
// (rule, line) pairs asserted in test_ember_analyze.py.
//
// NOTE: line numbers matter. If you edit this file, update the expected
// findings table in test_ember_analyze.py.

#include <fstream>
#include <mutex>
#include <thread>

namespace fixture {

struct Writer {
  void submit(int frame);
  void drain();
};
struct Transport {
  void send(int dest, int tag);
  int recv(int source, int tag);
};
struct Mutex {
  void lock();
  void unlock();
};
struct LockGuard {
  explicit LockGuard(Mutex& mu);
};

struct Pipeline {
  std::mutex mu;
  Mutex emu;
  Writer writer;
  Transport comm_;
  std::thread worker;

  // Line 42: the writer queue can exert backpressure — every other
  // thread contending for mu stalls behind the disk.
  void bad_submit(int frame) {
    std::lock_guard<std::mutex> lock(mu);
    writer.submit(frame);
  }

  // Lines 49 and 50: opening a stream and a blocking drain under a
  // unique_lock.
  void bad_flush() {
    std::unique_lock<std::mutex> lock(mu);
    std::ofstream os("flush.log");
    writer.drain();
  }

  // Lines 57 and 58: comm under the annotated ember wrapper — a recv
  // that waits for a peer while holding a lock is a deadlock recipe.
  void bad_exchange() {
    LockGuard lock(emu);
    comm_.send(0, 7);
    static_cast<void>(comm_.recv(0, 7));
  }

  // Line 64: joining a thread while holding the lock it may want.
  void bad_shutdown() {
    std::lock_guard<std::mutex> lock(mu);
    worker.join();
  }

  // Annotated escape with a reason: not reported.
  void annotated(int frame) {
    std::lock_guard<std::mutex> lock(mu);
    // ember-analyze: allow(blocking-under-lock) -- fixture for the
    // annotated escape: single-threaded teardown, lock is uncontended.
    writer.submit(frame);
  }
};

}  // namespace fixture
