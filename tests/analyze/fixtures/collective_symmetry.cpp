// ember_analyze self-test fixture for collective-symmetry: driver code
// (it takes a comm::Transport&) whose control flow makes a Transport
// collective rank-asymmetric. Never compiled — the analyzer must report
// the (rule, line) pairs asserted in test_ember_analyze.py.
//
// NOTE: line numbers matter. If you edit this file, update the expected
// findings table in test_ember_analyze.py.

namespace fixture {
namespace comm {
struct Transport {
  int rank();
  int size();
  void barrier();
  double allreduce_sum(double v);
  void broadcast(double* p, int n, int root);
};
}  // namespace comm

// --- shape (a), line 24: a conditional early return skips the
// allreduce at line 27 — the quiet rank never reaches the rendezvous.
double step_energy(comm::Transport& t, double local, bool converged) {
  if (converged) {
    return 0.0;
  }
  double kinetic = local * 0.5;
  return t.allreduce_sum(kinetic);
}

// --- shape (b), line 34: the barrier only runs on rank 0; every other
// rank sails past and the mesh deadlocks at rank 0's barrier.
void checkpoint_root_only(comm::Transport& t) {
  if (t.rank() == 0) {
    t.barrier();
  }
}

// --- shape (b), line 45: rank-dependent condition spelled through a
// cached member-style variable (`rank_`).
struct Stage {
  int rank_;
  void flush(comm::Transport& t) {
    if (rank_ == 0) {
      double model = 1.0;
      t.broadcast(&model, 1, 0);
    }
  }
};

// --- shape (a), line 55: the early return hides inside a loop — the
// rank that bails on step 3 misses every later barrier at line 57.
void run_steps(comm::Transport& t, bool (*diverged)(long)) {
  for (long s = 0; s < 100; ++s) {
    if (diverged(s)) {
      return;
    }
    t.barrier();
  }
}

// Annotated escape: a deliberately asymmetric collective behind the
// suppression syntax must not be reported (the bare-allow fixture
// covers the missing-reason case).
void elastic_shutdown(comm::Transport& t) {
  if (t.rank() == 0) {
    // ember-analyze: allow(collective-symmetry) -- fixture for the
    // annotated escape: rank 0 orchestrates the teardown by design.
    t.barrier();
  }
}

}  // namespace fixture
