// ember_analyze self-test fixture: an allow() annotation without a
// reason must itself be reported. Never compiled.

namespace fixture {
namespace comm {
struct Transport {
  int rank();
  void barrier();
};
}  // namespace comm

void reasonless(comm::Transport& t) {
  if (t.rank() == 0) {
    // ember-analyze: allow(collective-symmetry)
    t.barrier();
  }
}

}  // namespace fixture
