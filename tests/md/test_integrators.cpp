// Nose-Hoover thermostat and FIRE minimizer validation.

#include <gtest/gtest.h>

#include <memory>

#include "md/lattice.hpp"
#include "md/minimize.hpp"
#include "md/simulation.hpp"
#include "ref/pair_lj.hpp"
#include "ref/pair_tersoff.hpp"

namespace ember::md {
namespace {

Simulation lj_sim(double temperature, std::uint64_t seed) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 3;
  System sys = build_lattice(spec, 39.948);
  Rng rng(seed);
  sys.thermalize(temperature, rng);
  return Simulation(std::move(sys),
                    std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5), 0.002,
                    0.4, seed);
}

TEST(NoseHoover, EquilibratesAtTheTarget) {
  Simulation sim = lj_sim(20.0, 3);
  sim.integrator().set_nose_hoover(NoseHooverParams{60.0, 0.1});
  sim.run(1500);
  double tsum = 0.0;
  int n = 0;
  sim.run(1000, [&](Simulation& s) {
    tsum += s.system().temperature();
    ++n;
  });
  EXPECT_NEAR(tsum / n, 60.0, 8.0);
}

TEST(NoseHoover, ConservedQuantityIsConserved) {
  // H' = E + 1/2 Q xi^2 + g kB T0 eta must stay flat while T and E
  // fluctuate — the signature distinguishing Nose-Hoover from crude
  // velocity rescaling.
  Simulation sim = lj_sim(50.0, 7);
  sim.integrator().set_nose_hoover(NoseHooverParams{50.0, 0.2});
  sim.setup();
  const int dof = 3 * sim.system().nlocal() - 3;
  sim.run(200);  // settle the thermostat
  const double h0 =
      sim.total_energy() + sim.integrator().nose_hoover_energy(dof);

  double h_max_dev = 0.0;
  double e_max_dev = 0.0;
  const double e0 = sim.total_energy();
  sim.run(1500, [&](Simulation& s) {
    const double h =
        s.total_energy() + s.integrator().nose_hoover_energy(dof);
    h_max_dev = std::max(h_max_dev, std::abs(h - h0));
    e_max_dev = std::max(e_max_dev, std::abs(s.total_energy() - e0));
  });
  // The bare energy fluctuates (thermostat pumps energy); the augmented
  // quantity does not.
  EXPECT_GT(e_max_dev, 5.0 * h_max_dev);
  EXPECT_LT(h_max_dev / sim.system().nlocal(), 5e-5);
}

TEST(NoseHoover, DeterministicUnlikeLangevin) {
  auto run_once = [](std::uint64_t integrator_seed) {
    Simulation sim = lj_sim(40.0, 11);
    (void)integrator_seed;
    sim.integrator().set_nose_hoover(NoseHooverParams{40.0, 0.1});
    sim.run(100);
    return sim.system().x[7];
  };
  const Vec3 a = run_once(1);
  const Vec3 b = run_once(2);
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.z, b.z);
}

TEST(Fire, RelaxesPerturbedCrystalBackToTheMinimum) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 2;
  System perfect = build_lattice(spec, 39.948);
  ref::PairLJ pot(0.0104, 3.4, 6.5);

  NeighborList nl(pot.cutoff(), 0.4);
  nl.build(perfect);
  perfect.zero_forces();
  const double e_perfect = pot.compute(perfect, nl).energy;

  System sys = perfect;
  Rng rng(5);
  perturb(sys, 0.12, rng);
  const auto result = fire_minimize(sys, pot, {});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.max_force, 1e-4);
  // Back to (a translate of) the crystal energy.
  EXPECT_NEAR(result.energy, e_perfect, 1e-4 * std::abs(e_perfect));
}

TEST(Fire, QuenchedEnergyNeverExceedsTheStart) {
  Rng rng(9);
  Box box(11, 11, 11);
  System sys = random_packing(box, 60, 1.6, 39.948, rng);
  ref::PairLJ pot(0.0104, 3.4, 6.5);

  NeighborList nl(pot.cutoff(), 0.4);
  nl.build(sys);
  sys.zero_forces();
  const double e0 = pot.compute(sys, nl).energy;
  const auto result = fire_minimize(sys, pot, {});
  EXPECT_LT(result.energy, e0);
  EXPECT_GT(result.steps, 0);
}

TEST(Fire, WorksWithManyBodyTersoff) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 2;
  System sys = build_lattice(spec, 12.011);
  Rng rng(13);
  perturb(sys, 0.1, rng);

  ref::PairTersoff pot;
  FireParams p;
  p.dt_initial = 2e-4;
  p.dt_max = 2e-3;
  const auto result = fire_minimize(sys, pot, p);
  EXPECT_TRUE(result.converged);
  // Tersoff diamond minimum: ~ -7.37 eV/atom.
  EXPECT_NEAR(result.energy / sys.nlocal(), -7.37, 0.05);
}

TEST(Fire, RespectsTheStepBudget) {
  Rng rng(17);
  Box box(10, 10, 10);
  System sys = random_packing(box, 50, 1.4, 12.011, rng);
  ref::PairTersoff pot;
  FireParams p;
  p.max_steps = 3;
  p.force_tolerance = 1e-12;  // unreachable
  const auto result = fire_minimize(sys, pot, p);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.steps, 3);
}

}  // namespace
}  // namespace ember::md
