// Tests for the periodic box and neighbor-list construction.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"

namespace ember::md {
namespace {

TEST(Box, WrapAndMinimumImage) {
  Box box(10.0, 20.0, 30.0);
  const Vec3 w = box.wrap({-1.0, 25.0, 61.0});
  EXPECT_NEAR(w.x, 9.0, 1e-12);
  EXPECT_NEAR(w.y, 5.0, 1e-12);
  EXPECT_NEAR(w.z, 1.0, 1e-12);

  const Vec3 d = box.minimum_image({9.5, 0.0, 0.0}, {0.5, 0.0, 0.0});
  EXPECT_NEAR(d.x, 1.0, 1e-12);  // through the boundary, not -9
  EXPECT_NEAR(box.minimum_image({0, 0, 0}, {5.0, 0, 0}).x, -5.0, 1e-12);
}

TEST(Box, NonPeriodicDimension) {
  Box box(10, 10, 10, {true, true, false});
  const Vec3 w = box.wrap({11.0, 11.0, 11.0});
  EXPECT_NEAR(w.x, 1.0, 1e-12);
  EXPECT_NEAR(w.z, 11.0, 1e-12);  // z untouched
  EXPECT_NEAR(box.minimum_image({0, 0, 0}, {0, 0, 9}).z, 9.0, 1e-12);
}

// Reference N^2-over-images neighbor count for validation.
int brute_count(const System& sys, int i, double rcut) {
  int count = 0;
  const Box& box = sys.box();
  for (int j = 0; j < sys.nlocal(); ++j) {
    for (int sx = -1; sx <= 1; ++sx) {
      for (int sy = -1; sy <= 1; ++sy) {
        for (int sz = -1; sz <= 1; ++sz) {
          if (j == i && sx == 0 && sy == 0 && sz == 0) continue;
          const Vec3 shift{sx * box.length(0), sy * box.length(1),
                           sz * box.length(2)};
          if ((sys.x[j] + shift - sys.x[i]).norm() < rcut) ++count;
        }
      }
    }
  }
  return count;
}

TEST(NeighborList, MatchesBruteForceOnRandomConfig) {
  Rng rng(1);
  Box box(14.0, 15.0, 16.0);
  System sys = random_packing(box, 120, 1.2, 12.011, rng);

  const double rcut = 3.5;
  NeighborList nl(rcut, 0.0);  // zero skin: exact cutoff comparison
  nl.build(sys);
  for (int i = 0; i < sys.nlocal(); ++i) {
    const auto row = nl.neighbors(i);
    EXPECT_EQ(static_cast<int>(row.size()), brute_count(sys, i, rcut))
        << "atom " << i;
    // All listed distances really are within the cutoff.
    for (const auto& en : row) {
      const double d = (sys.x[en.j] + en.shift - sys.x[i]).norm();
      EXPECT_LT(d, rcut);
    }
  }
}

TEST(NeighborList, SmallBoxFallsBackToImages) {
  // Box smaller than 3 cells: brute-force path with multi-image search.
  Rng rng(2);
  Box box(5.0, 5.0, 5.0);
  System sys = random_packing(box, 20, 1.0, 12.011, rng);
  NeighborList nl(2.4, 0.0);
  nl.build(sys);
  for (int i = 0; i < sys.nlocal(); ++i) {
    EXPECT_EQ(static_cast<int>(nl.neighbors(i).size()),
              brute_count(sys, i, 2.4));
  }
}

TEST(NeighborList, FullListIsSymmetric) {
  Rng rng(3);
  Box box(12.0, 12.0, 12.0);
  System sys = random_packing(box, 60, 1.2, 12.011, rng);
  NeighborList nl(3.0, 0.4);
  nl.build(sys);
  // Count (i -> j) occurrences; each unordered pair must appear the same
  // number of times from both sides.
  std::multiset<std::pair<int, int>> pairs;
  for (int i = 0; i < sys.nlocal(); ++i) {
    for (const auto& en : nl.neighbors(i)) pairs.insert({i, en.j});
  }
  for (const auto& [i, j] : pairs) {
    EXPECT_EQ(pairs.count({i, j}), pairs.count({j, i}));
  }
}

TEST(NeighborList, RebuildTriggersOnDisplacement) {
  Rng rng(4);
  Box box(12, 12, 12);
  System sys = random_packing(box, 30, 1.5, 12.011, rng);
  NeighborList nl(3.0, 0.6);
  nl.build(sys);
  EXPECT_FALSE(nl.needs_rebuild(sys));
  sys.x[0] += Vec3{0.31, 0.0, 0.0};  // > skin/2
  EXPECT_TRUE(nl.needs_rebuild(sys));
}

TEST(NeighborList, DiamondCoordination) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 3;
  System sys = build_lattice(spec, 12.011);
  EXPECT_EQ(sys.nlocal(), 8 * 27);

  NeighborList nl(1.8, 0.0);  // first shell only (bond = 1.545 A)
  nl.build(sys);
  for (int i = 0; i < sys.nlocal(); ++i) {
    EXPECT_EQ(nl.neighbors(i).size(), 4u) << "atom " << i;
  }
}

TEST(NeighborList, Bc8CoordinationIsFour) {
  // BC8 is fourfold-coordinated like diamond (1 short + 3 longer bonds).
  LatticeSpec spec;
  spec.kind = LatticeKind::Bc8;
  spec.a = 4.46;  // ~carbon BC8 scale at high pressure
  spec.nx = spec.ny = spec.nz = 2;
  System sys = build_lattice(spec, 12.011);
  EXPECT_EQ(sys.nlocal(), 16 * 8);

  NeighborList nl(2.1, 0.0);
  nl.build(sys);
  for (int i = 0; i < sys.nlocal(); ++i) {
    EXPECT_EQ(nl.neighbors(i).size(), 4u) << "atom " << i;
  }
}

TEST(Lattice, CountsAndDensities) {
  for (auto [kind, per_cell] :
       {std::pair{LatticeKind::SimpleCubic, 1}, {LatticeKind::Bcc, 2},
        {LatticeKind::Fcc, 4}, {LatticeKind::Diamond, 8},
        {LatticeKind::Bc8, 16}}) {
    LatticeSpec spec;
    spec.kind = kind;
    spec.nx = 2;
    spec.ny = 3;
    spec.nz = 4;
    EXPECT_EQ(lattice_atom_count(spec), per_cell * 24);
    EXPECT_EQ(build_lattice(spec, 12.011).nlocal(), per_cell * 24);
  }
}

TEST(Lattice, RandomPackingRespectsMinimumSeparation) {
  Rng rng(5);
  Box box(10, 10, 10);
  System sys = random_packing(box, 50, 1.4, 12.011, rng);
  for (int i = 0; i < sys.nlocal(); ++i) {
    for (int j = i + 1; j < sys.nlocal(); ++j) {
      EXPECT_GE(box.minimum_image(sys.x[i], sys.x[j]).norm(), 1.4);
    }
  }
}

}  // namespace
}  // namespace ember::md
