// Integration tests of the MD engine: energy conservation, thermostats,
// barostat, and checkpoint round-trips, driven by the LJ potential.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "md/computes.hpp"
#include "md/io.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "ref/pair_lj.hpp"
#include "snap/snap_potential.hpp"

namespace ember::md {
namespace {

// Argon-like LJ in metal units (eps ~ 0.0104 eV, sigma 3.4 A) on an fcc
// lattice: a classic, very stable NVE benchmark.
Simulation make_lj_sim(double temperature, double dt, std::uint64_t seed,
                       ExecutionPolicy policy = {}) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 4;
  System sys = build_lattice(spec, 39.948);
  Rng rng(seed);
  sys.thermalize(temperature, rng);
  auto pot = std::make_shared<ref::PairLJ>(0.0104, 3.4, 8.0);
  return Simulation(std::move(sys), pot, dt, 0.4, seed, policy);
}

TEST(Dynamics, NveConservesEnergy) {
  Simulation sim = make_lj_sim(40.0, 0.002, 11);
  sim.setup();
  const double e0 = sim.total_energy();
  sim.run(400);
  const double drift = std::abs(sim.total_energy() - e0);
  // eV per atom drift over 0.8 ps must be tiny.
  EXPECT_LT(drift / sim.system().nlocal(), 2e-6) << "e0=" << e0;
}

TEST(Dynamics, ThreadedNveMatchesSerialTrajectory) {
  // LJ is a gather kernel: each thread writes only its own atoms' forces
  // in the serial accumulation order, so the threaded trajectory tracks
  // the serial one to within reduction rounding on the energy readout.
  Simulation serial = make_lj_sim(40.0, 0.002, 29);
  Simulation threaded = make_lj_sim(40.0, 0.002, 29, ExecutionPolicy{4});
  serial.run(200);
  threaded.run(200);
  const System& a = serial.system();
  const System& b = threaded.system();
  ASSERT_EQ(a.nlocal(), b.nlocal());
  for (int i = 0; i < a.nlocal(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(a.x[i][d], b.x[i][d], 1e-12) << "atom " << i;
      EXPECT_NEAR(a.v[i][d], b.v[i][d], 1e-12) << "atom " << i;
    }
  }
  EXPECT_NEAR(serial.total_energy(), threaded.total_energy(),
              1e-10 * std::abs(serial.total_energy()));
}

TEST(Dynamics, ThreadedNveDriftMatchesSerial) {
  auto drift_at = [](ExecutionPolicy policy) {
    Simulation sim = make_lj_sim(40.0, 0.002, 11, policy);
    sim.setup();
    const double e0 = sim.total_energy();
    sim.run(400);
    return std::abs(sim.total_energy() - e0) / sim.system().nlocal();
  };
  const double serial = drift_at({});
  for (const int nth : {2, 8}) {
    const double threaded = drift_at(ExecutionPolicy{nth});
    EXPECT_LT(threaded, 2e-6) << nth << " threads";
    EXPECT_NEAR(threaded, serial, 1e-9) << nth << " threads";
  }
}

TEST(Dynamics, SnapNveDriftIsKernelIndependent) {
  // The Symmetric (half-range, cached-dU) SNAP kernel must integrate the
  // same NVE trajectory as the Naive oracle: per-step force parity is
  // <= 1e-12, so over a short run positions track tightly and the energy
  // drift of the two kernels is indistinguishable.
  auto make_snap_sim = [](snap::SnapKernel kernel) {
    snap::SnapParams p;
    p.twojmax = 6;
    p.rcut = 2.6;
    p.bzero_flag = true;
    p.kernel = kernel;
    snap::SnapModel m;
    m.params = p;
    m.beta.resize(snap::SnapIndex(p.twojmax).num_b());
    Rng crng(41);
    for (auto& b : m.beta) b = 0.02 * crng.uniform(-1.0, 1.0);
    m.beta0 = -1.0;

    LatticeSpec spec;
    spec.kind = LatticeKind::Diamond;
    spec.a = 3.567;
    spec.nx = spec.ny = spec.nz = 2;
    System sys = build_lattice(spec, 12.011);
    Rng rng(43);
    sys.thermalize(120.0, rng);
    auto pot = std::make_shared<snap::SnapPotential>(m);
    return Simulation(std::move(sys), pot, 0.0005, 0.3, 43);
  };

  auto drift_and_run = [&](snap::SnapKernel kernel, std::vector<Vec3>& x) {
    Simulation sim = make_snap_sim(kernel);
    sim.setup();
    const double e0 = sim.total_energy();
    sim.run(100);
    const System& sys = sim.system();
    x.assign(sys.x.begin(), sys.x.begin() + sys.nlocal());
    return std::abs(sim.total_energy() - e0) / sys.nlocal();
  };
  std::vector<Vec3> x_naive;
  std::vector<Vec3> x_sym;
  const double drift_naive = drift_and_run(snap::SnapKernel::Naive, x_naive);
  const double drift_sym = drift_and_run(snap::SnapKernel::Symmetric, x_sym);

  EXPECT_LT(drift_naive, 5e-5);
  EXPECT_LT(drift_sym, 5e-5);
  EXPECT_NEAR(drift_sym, drift_naive, 1e-9);
  ASSERT_EQ(x_naive.size(), x_sym.size());
  for (std::size_t i = 0; i < x_naive.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(x_naive[i][d], x_sym[i][d], 1e-8) << "atom " << i;
    }
  }
}

TEST(Dynamics, NveTimeStepConvergence) {
  // Halving dt must reduce energy drift (2nd-order integrator).
  auto drift_for = [](double dt) {
    Simulation sim = make_lj_sim(40.0, dt, 13);
    sim.setup();
    const double e0 = sim.total_energy();
    sim.run(static_cast<long>(0.4 / dt));
    return std::abs(sim.total_energy() - e0);
  };
  const double d_coarse = drift_for(0.008);
  const double d_fine = drift_for(0.002);
  EXPECT_LT(d_fine, d_coarse);
}

TEST(Dynamics, LangevinReachesTargetTemperature) {
  Simulation sim = make_lj_sim(10.0, 0.002, 17);
  sim.integrator().set_langevin(LangevinParams{60.0, 0.1});
  sim.run(600);
  // Average over a window to beat fluctuations.
  double tsum = 0.0;
  int samples = 0;
  sim.run(600, [&](Simulation& s) {
    tsum += s.system().temperature();
    ++samples;
  });
  const double tavg = tsum / samples;
  EXPECT_NEAR(tavg, 60.0, 8.0);
}

TEST(Dynamics, BerendsenThermostatRelaxes) {
  Simulation sim = make_lj_sim(100.0, 0.002, 19);
  sim.integrator().set_berendsen_t(BerendsenTParams{30.0, 0.05});
  sim.run(500);
  EXPECT_NEAR(sim.system().temperature(), 30.0, 6.0);
}

TEST(Dynamics, MomentumIsConservedInNve) {
  Simulation sim = make_lj_sim(40.0, 0.002, 23);
  sim.run(200);
  Vec3 p;
  const System& sys = sim.system();
  for (int i = 0; i < sys.nlocal(); ++i) p += sys.v[i];
  EXPECT_NEAR(p.norm(), 0.0, 1e-9);
}

TEST(Dynamics, BarostatMovesVolumeTowardTarget) {
  Simulation sim = make_lj_sim(30.0, 0.002, 29);
  sim.setup();
  const double p0 = sim.pressure();
  const double v0 = sim.system().box().volume();
  // Target far above current pressure: box must shrink.
  sim.integrator().set_berendsen_p(
      BerendsenPParams{p0 + 5000.0, 0.5, 1e-6});
  sim.integrator().set_langevin(LangevinParams{30.0, 0.1});
  sim.run(400);
  EXPECT_LT(sim.system().box().volume(), v0);
}

TEST(Dynamics, TimersCoverTheRun) {
  Simulation sim = make_lj_sim(40.0, 0.002, 31);
  sim.run(50);
  const auto& t = sim.timers();
  EXPECT_GT(t.total(TimerCategory::Pair), 0.0);
  EXPECT_GT(t.total(TimerCategory::Other), 0.0);
  EXPECT_GT(t.grand_total(), 0.0);
  EXPECT_NEAR(t.fraction(TimerCategory::Pair) + t.fraction(TimerCategory::Neigh) +
                  t.fraction(TimerCategory::Other),
              1.0, 1e-12);
}

TEST(Io, CheckpointRoundTrip) {
  Simulation sim = make_lj_sim(40.0, 0.002, 37);
  sim.run(20);
  const std::string path = "/tmp/ember_test_ckpt.bin";
  write_checkpoint(sim.system(), path);
  System restored = read_checkpoint(path);
  std::remove(path.c_str());

  ASSERT_EQ(restored.nlocal(), sim.system().nlocal());
  EXPECT_DOUBLE_EQ(restored.box().length(0), sim.system().box().length(0));
  EXPECT_DOUBLE_EQ(restored.mass(), sim.system().mass());
  for (int i = 0; i < restored.nlocal(); ++i) {
    const Vec3 w = sim.system().box().wrap(sim.system().x[i]);
    EXPECT_DOUBLE_EQ(restored.x[i].x, w.x);
    EXPECT_DOUBLE_EQ(restored.v[i].z, sim.system().v[i].z);
    EXPECT_EQ(restored.id[i], sim.system().id[i]);
  }
}

TEST(Io, CheckpointContinuationIsExact) {
  // Running 10 steps, checkpointing, and continuing must equal a straight
  // 20-step run (deterministic NVE path).
  Simulation a = make_lj_sim(40.0, 0.002, 41);
  a.run(20);

  Simulation b = make_lj_sim(40.0, 0.002, 41);
  b.run(10);
  const std::string path = "/tmp/ember_test_ckpt2.bin";
  write_checkpoint(b.system(), path);
  System restored = read_checkpoint(path);
  std::remove(path.c_str());
  Simulation c(std::move(restored), std::make_shared<ref::PairLJ>(0.0104, 3.4, 8.0),
               0.002, 0.4, 999);
  c.run(10);

  for (int i = 0; i < a.system().nlocal(); ++i) {
    // Positions may differ by an exact box period (wrapping happens at
    // reneighboring, whose schedule differs across the restart).
    const Vec3 d = a.system().box().minimum_image(a.system().x[i],
                                                  c.system().x[i]);
    EXPECT_NEAR(d.norm(), 0.0, 1e-10);
    EXPECT_NEAR(a.system().v[i].y, c.system().v[i].y, 1e-10);
  }
}

TEST(Computes, RdfFirstPeakOnFcc) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 3;
  System sys = build_lattice(spec, 39.948);
  Rdf rdf;
  rdf.rmax = 6.0;
  rdf.compute(sys);
  // fcc nearest neighbor at a/sqrt(2) = 3.72 A.
  EXPECT_NEAR(rdf.first_peak(), 5.26 / std::sqrt(2.0), 0.1);
}

TEST(Computes, MsdGrowsInLiquidAndNotInSolid) {
  Simulation hot = make_lj_sim(200.0, 0.002, 43);
  hot.integrator().set_langevin(LangevinParams{200.0, 0.1});
  Msd msd;
  msd.set_reference(hot.system());
  hot.run(300);
  const double msd_hot = msd.compute(hot.system());

  Simulation cold = make_lj_sim(5.0, 0.002, 47);
  Msd msd2;
  msd2.set_reference(cold.system());
  cold.run(300);
  const double msd_cold = msd2.compute(cold.system());
  EXPECT_GT(msd_hot, 5.0 * msd_cold);
}

TEST(Computes, CoordinationOnDiamond) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 2;
  System sys = build_lattice(spec, 12.011);
  NeighborList nl(2.2, 0.2);
  nl.build(sys);
  const auto coord = coordination_numbers(sys, nl, 1.8);
  for (const int c : coord) EXPECT_EQ(c, 4);
}

}  // namespace
}  // namespace ember::md
