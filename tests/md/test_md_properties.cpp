// Wider MD property suites: time reversibility, thermostat sweeps,
// barostat targets, non-cubic boxes, BC8 internal-coordinate sweeps.

#include <gtest/gtest.h>

#include <memory>

#include "md/computes.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "ref/pair_lj.hpp"

namespace ember::md {
namespace {

Simulation lj_sim(double temperature, std::uint64_t seed, int reps = 3) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = reps;
  System sys = build_lattice(spec, 39.948);
  Rng rng(seed);
  sys.thermalize(temperature, rng);
  return Simulation(std::move(sys),
                    std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5), 0.002,
                    0.4, seed);
}

TEST(Reversibility, VelocityFlipRetracesTheTrajectory) {
  // Velocity Verlet is time-reversible: run N steps, flip velocities,
  // run N more — the system must return to its start (to roundoff,
  // which stays tiny over a short horizon).
  Simulation sim = lj_sim(30.0, 3);
  sim.setup();
  const std::vector<Vec3> x0(sim.system().x.begin(), sim.system().x.end());
  sim.run(50);
  for (int i = 0; i < sim.system().nlocal(); ++i) sim.system().v[i] *= -1.0;
  sim.run(50);
  for (int i = 0; i < sim.system().nlocal(); ++i) {
    const Vec3 d = sim.system().box().minimum_image(x0[i], sim.system().x[i]);
    EXPECT_NEAR(d.norm(), 0.0, 1e-8) << "atom " << i;
  }
}

class ThermostatSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThermostatSweep, LangevinEquilibratesAtEveryTarget) {
  const double target = GetParam();
  Simulation sim = lj_sim(target, 11, 3);
  sim.integrator().set_langevin(LangevinParams{target, 0.05});
  sim.run(400);
  double tsum = 0.0;
  int n = 0;
  sim.run(400, [&](Simulation& s) {
    tsum += s.system().temperature();
    ++n;
  });
  EXPECT_NEAR(tsum / n, target, 0.15 * target + 2.0) << "T=" << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, ThermostatSweep,
                         ::testing::Values(20.0, 60.0, 120.0));

TEST(Barostat, ReachesTargetPressure) {
  Simulation sim = lj_sim(30.0, 17);
  sim.setup();
  sim.integrator().set_langevin(LangevinParams{30.0, 0.1});
  sim.integrator().set_berendsen_p(BerendsenPParams{3000.0, 0.2, 2e-5});
  sim.run(1500);
  double psum = 0.0;
  int n = 0;
  sim.run(500, [&](Simulation& s) {
    psum += s.pressure();
    ++n;
  });
  EXPECT_NEAR(psum / n, 3000.0, 900.0);
}

TEST(NonCubicBox, NeighborListAndDynamicsWork) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = 2;
  spec.ny = 3;
  spec.nz = 5;
  System sys = build_lattice(spec, 39.948);
  Rng rng(23);
  sys.thermalize(30.0, rng);
  Simulation sim(std::move(sys),
                 std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5), 0.002,
                 0.4, 23);
  sim.setup();
  const double e0 = sim.total_energy();
  sim.run(200);
  EXPECT_LT(std::abs(sim.total_energy() - e0) / sim.system().nlocal(), 5e-6);
}

class Bc8InternalCoordinate : public ::testing::TestWithParam<double> {};

TEST_P(Bc8InternalCoordinate, StaysFourfoldCoordinated) {
  // The BC8 16c site remains fourfold coordinated across the physically
  // relevant x range (Si-III x = 0.1003; predicted carbon ~ 0.0937).
  LatticeSpec spec;
  spec.kind = LatticeKind::Bc8;
  spec.a = 4.46;
  spec.x_bc8 = GetParam();
  spec.nx = spec.ny = spec.nz = 2;
  System sys = build_lattice(spec, 12.011);
  NeighborList nl(2.3, 0.0);
  nl.build(sys);
  const auto coord = coordination_numbers(sys, nl, 2.1);
  for (const int c : coord) EXPECT_EQ(c, 4) << "x=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(XRange, Bc8InternalCoordinate,
                         ::testing::Values(0.09, 0.0937, 0.1003, 0.105));

TEST(Lattice, DiamondDensityIsCorrect) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 3;
  System sys = build_lattice(spec, 12.011);
  // Diamond: 8 atoms / a^3 -> 3.515 g/cc for carbon.
  const double atoms_per_a3 = sys.nlocal() / sys.box().volume();
  const double g_per_cc = atoms_per_a3 * 12.011 / 6.02214076e23 * 1e24;
  EXPECT_NEAR(g_per_cc, 3.515, 0.01);
}

TEST(Thermalize, SetsTargetTemperatureAndZeroMomentum) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 4;
  System sys = build_lattice(spec, 39.948);
  Rng rng(29);
  sys.thermalize(85.0, rng);
  EXPECT_NEAR(sys.temperature(), 85.0, 8.0);  // finite-N fluctuation
  Vec3 p;
  for (int i = 0; i < sys.nlocal(); ++i) p += sys.v[i];
  EXPECT_NEAR(p.norm(), 0.0, 1e-10);
}

TEST(Rdf, LiquidLosesLongRangeOrder) {
  Simulation sim = lj_sim(300.0, 31, 3);
  sim.integrator().set_langevin(LangevinParams{300.0, 0.05});
  sim.run(800);
  Rdf rdf;
  rdf.rmax = 7.5;
  rdf.compute(sim.system());
  // g(r) -> 1 at large r for a liquid; crystalline peaks would overshoot.
  double tail = 0.0;
  int n = 0;
  for (int b = 0; b < rdf.nbins; ++b) {
    if (rdf.r[b] > 6.0) {
      tail += rdf.g[b];
      ++n;
    }
  }
  EXPECT_NEAR(tail / n, 1.0, 0.25);
}

TEST(Timers, NeighborRebuildsAreCounted) {
  Simulation sim = lj_sim(120.0, 37, 3);
  sim.integrator().set_langevin(LangevinParams{120.0, 0.05});
  sim.run(300);
  // A hot liquid must have reneighbored at least once.
  EXPECT_GT(sim.timers().total(TimerCategory::Neigh), 0.0);
}

}  // namespace
}  // namespace ember::md
