// The unified timestep pipeline (md::StepLoop): all three drivers —
// Simulation, 1-replica BatchedSimulation, 1-rank ParallelSimulation —
// must advance the same initial system identically, the timer taxonomy
// must be uniform, and checkpoint/restart must round-trip through every
// driver's stage hook.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "comm/transport.hpp"
#include "../comm/transport_test_util.hpp"
#include "md/batched.hpp"
#include "md/io.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "md/step_loop.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_sim.hpp"
#include "ref/pair_lj.hpp"

namespace ember::md {
namespace {

System make_argon(int reps, double temperature, std::uint64_t seed) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = reps;
  System sys = build_lattice(spec, 39.948);
  Rng rng(seed);
  sys.thermalize(temperature, rng);
  return sys;
}

std::shared_ptr<PairPotential> lj() {
  return std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5);
}

// ---- cross-driver parity --------------------------------------------------

class CrossDriverParity : public ::testing::TestWithParam<int> {};

TEST_P(CrossDriverParity, DriversAgreeOnTrajectoryAndEnergy) {
  const ExecutionPolicy policy{GetParam()};
  const System init = make_argon(3, 35.0, 101);
  constexpr long kSteps = 60;

  Simulation serial(init, lj(), 0.002, 0.4, 7, policy);
  serial.run(kSteps);

  // One-replica batch: the combined system IS the system, the batched
  // list build degenerates to the serial one — bitwise agreement.
  BatchedSimulation batch(std::vector<System>{init}, lj(), 0.002, 0.4, 7,
                          policy);
  batch.run(kSteps);
  const System rep = batch.replica(0);
  ASSERT_EQ(rep.nlocal(), serial.system().nlocal());
  for (int i = 0; i < rep.nlocal(); ++i) {
    const Vec3 w = serial.system().box().wrap(serial.system().x[i]);
    EXPECT_DOUBLE_EQ(rep.x[i].x, w.x) << "atom " << i;
    EXPECT_DOUBLE_EQ(rep.x[i].y, w.y) << "atom " << i;
    EXPECT_DOUBLE_EQ(rep.x[i].z, w.z) << "atom " << i;
    EXPECT_DOUBLE_EQ(rep.v[i].x, serial.system().v[i].x);
    EXPECT_DOUBLE_EQ(rep.v[i].y, serial.system().v[i].y);
    EXPECT_DOUBLE_EQ(rep.v[i].z, serial.system().v[i].z);
  }
  EXPECT_DOUBLE_EQ(batch.energy_virial().energy, serial.potential_energy());

  // One-rank parallel: same pipeline, but ghosts + self-halo reorder the
  // force accumulation — tight tolerance rather than bitwise.
  comm::test::make(comm::TransportKind::Thread, 1)
      ->run([&](comm::Transport& c) {
    parallel::ParallelSimulation psim(c, init, lj(), 0.002, 0.4, 7, policy);
    psim.run(kSteps);
    const auto g = psim.global_state();
    EXPECT_NEAR(g.potential_energy, serial.potential_energy(),
                1e-9 * std::abs(serial.potential_energy()));
    const System gathered = psim.gather_global();
    ASSERT_EQ(gathered.nlocal(), serial.system().nlocal());
    for (int i = 0; i < gathered.nlocal(); ++i) {
      const long id = gathered.id[i];
      const Vec3 d = serial.system().box().minimum_image(
          serial.system().x[static_cast<std::size_t>(id)], gathered.x[i]);
      EXPECT_NEAR(d.norm(), 0.0, 1e-8) << "atom id " << id;
      const Vec3 dv =
          gathered.v[i] - serial.system().v[static_cast<std::size_t>(id)];
      EXPECT_NEAR(dv.norm(), 0.0, 1e-8) << "atom id " << id;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Threads, CrossDriverParity, ::testing::Values(1, 8),
                         [](const auto& param_info) {
                           return "nthreads" +
                                  std::to_string(param_info.param);
                         });

// ---- unified timer taxonomy -----------------------------------------------

TEST(StepLoopTimers, SerialBreakdownHasNoCommBucket) {
  Simulation sim(make_argon(2, 40.0, 3), lj(), 0.002, 0.4, 5);
  sim.run(40);
  const TimerSet& t = sim.timers();
  EXPECT_GT(t.total(TimerCategory::Pair), 0.0);
  EXPECT_GT(t.total(TimerCategory::Neigh), 0.0);
  EXPECT_GT(t.total(TimerCategory::Other), 0.0);
  // Serial drivers never open the Comm bucket, so Pair+Neigh+Other
  // fractions still cover the whole run.
  EXPECT_EQ(t.total(TimerCategory::Comm), 0.0);
}

TEST(StepLoopTimers, BatchedRecordsTheSameTaxonomy) {
  std::vector<System> reps;
  reps.push_back(make_argon(2, 30.0, 1));
  reps.push_back(make_argon(2, 50.0, 2));
  BatchedSimulation batch(reps, lj(), 0.002, 0.4, 9);
  batch.run(40);
  const TimerSet& t = batch.timers();
  EXPECT_GT(t.total(TimerCategory::Pair), 0.0);
  EXPECT_GT(t.total(TimerCategory::Neigh), 0.0);
  EXPECT_GT(t.total(TimerCategory::Other), 0.0);
  EXPECT_EQ(t.total(TimerCategory::Comm), 0.0);
}

TEST(StepLoopTimers, Fig4LabelsMapTheCanonicalCategories) {
  EXPECT_STREQ(fig4_label(TimerCategory::Pair), "SNAP");
  EXPECT_STREQ(fig4_label(TimerCategory::Comm), "MPI Comm");
  EXPECT_STREQ(fig4_label(TimerCategory::Neigh), "Neigh");
  EXPECT_STREQ(fig4_label(TimerCategory::Other), "Other");
}

// ---- span instrumentation of the pipeline ---------------------------------

#if !defined(EMBER_OBS_DISABLED)
TEST(StepLoopTrace, EveryStageEmitsExactlyOneSpanPerStep) {
  Simulation sim(make_argon(3, 40.0, 77), lj(), 0.002, 0.4, 5,
                 ExecutionPolicy{2});
  sim.run(1);  // setup (and its spans) happen outside the traced window

  auto& session = obs::TraceSession::global();
  session.clear();
  session.start();
  constexpr long kSteps = 6;
  sim.run(kSteps);
  session.stop();

  EXPECT_EQ(session.count("step"), kSteps);
  EXPECT_EQ(session.count("integrate.initial"), kSteps);
  EXPECT_EQ(session.count("force"), kSteps);
  EXPECT_EQ(session.count("reverse"), kSteps);
  EXPECT_EQ(session.count("integrate.final"), kSteps);
  // Each step takes exactly one of the two position paths, and the
  // exchange stage runs once per rebuild.
  EXPECT_EQ(session.count("forward") + session.count("neigh.rebuild"), kSteps);
  EXPECT_EQ(session.count("exchange"), session.count("neigh.rebuild"));

  // The step span wraps the stage spans, and carries the step number.
  int pool_tids = 0;
  std::vector<bool> seen_tid;
  for (const auto& e : session.snapshot()) {
    const std::string name = e.name;
    if (name == "step") {
      EXPECT_EQ(e.depth, 0);
      ASSERT_NE(e.arg_key, nullptr);
      EXPECT_STREQ(e.arg_key, "step");
      EXPECT_GE(e.arg_val, 1);
    } else if (name == "force" || name == "integrate.initial") {
      EXPECT_EQ(e.depth, 1);
    } else if (name == "pool.sweep") {
      if (e.tid >= static_cast<int>(seen_tid.size())) {
        seen_tid.resize(e.tid + 1, false);
      }
      if (!seen_tid[e.tid]) {
        seen_tid[e.tid] = true;
        ++pool_tids;
      }
    }
  }
  // The threaded sweeps show up on the main thread AND the pool worker.
  EXPECT_GE(pool_tids, 2);
  session.clear();
}
#endif  // !EMBER_OBS_DISABLED

// ---- checkpoint round-trips through the stage hook ------------------------

void expect_systems_close(const System& a, const System& b, double tol) {
  ASSERT_EQ(a.nlocal(), b.nlocal());
  for (int i = 0; i < a.nlocal(); ++i) {
    const Vec3 d = a.box().minimum_image(a.x[i], b.x[i]);
    EXPECT_NEAR(d.norm(), 0.0, tol) << "atom " << i;
    EXPECT_NEAR((a.v[i] - b.v[i]).norm(), 0.0, tol) << "atom " << i;
  }
}

TEST(CheckpointRoundTrip, SerialRestartMatchesUninterrupted) {
  const char* path = "/tmp/ember_steploop_serial_ckpt.bin";
  const System init = make_argon(3, 45.0, 21);

  Simulation full(init, lj(), 0.002, 0.4, 13);
  full.run(60);

  Simulation head(init, lj(), 0.002, 0.4, 13);
  head.run(30);
  head.save_checkpoint(path);

  Simulation tail(read_checkpoint(path), lj(), 0.002, 0.4, 13);
  tail.run(30);

  expect_systems_close(full.system(), tail.system(), 1e-8);
  EXPECT_NEAR(tail.potential_energy(), full.potential_energy(),
              1e-9 * std::abs(full.potential_energy()));
  std::remove(path);
}

TEST(CheckpointRoundTrip, ParallelGatherOnRootRestartMatches) {
  const char* path = "/tmp/ember_steploop_parallel_ckpt.bin";
  const System init = make_argon(3, 45.0, 33);
  constexpr int kRanks = 2;

  System full_final(init.box(), init.mass());
  {
    comm::test::make(comm::TransportKind::Thread, kRanks)
        ->run([&](comm::Transport& c) {
      parallel::ParallelSimulation psim(c, init, lj(), 0.002, 0.4, 17);
      psim.run(60);
      System g = psim.gather_global();
      if (c.rank() == 0) full_final = std::move(g);
    });
  }

  {
    comm::test::make(comm::TransportKind::Thread, kRanks)
        ->run([&](comm::Transport& c) {
      parallel::ParallelSimulation psim(c, init, lj(), 0.002, 0.4, 17);
      psim.run(30);
      psim.save_checkpoint(path);  // rank 0 writes, everyone syncs
    });
  }

  // The parallel checkpoint is a standard single-System file.
  const System restored = read_checkpoint(path);
  ASSERT_EQ(restored.nlocal(), init.nlocal());

  System tail_final(init.box(), init.mass());
  {
    comm::test::make(comm::TransportKind::Thread, kRanks)
        ->run([&](comm::Transport& c) {
      parallel::ParallelSimulation psim(c, restored, lj(), 0.002, 0.4, 17);
      psim.run(30);
      System g = psim.gather_global();
      if (c.rank() == 0) tail_final = std::move(g);
    });
  }

  expect_systems_close(full_final, tail_final, 1e-7);
  std::remove(path);
}

TEST(CheckpointRoundTrip, BatchedRestartMatchesUninterrupted) {
  const char* path = "/tmp/ember_steploop_batch_ckpt.bin";
  std::vector<System> reps;
  reps.push_back(make_argon(2, 30.0, 4));
  reps.push_back(make_argon(2, 55.0, 5));

  BatchedSimulation full(reps, lj(), 0.002, 0.4, 23);
  full.run(40);

  BatchedSimulation head(reps, lj(), 0.002, 0.4, 23);
  head.run(24);
  head.save_checkpoint(path);

  std::vector<System> restored = read_checkpoint_batch(path);
  ASSERT_EQ(restored.size(), 2u);
  BatchedSimulation tail(std::move(restored), lj(), 0.002, 0.4, 23);
  tail.run(16);

  for (int r = 0; r < 2; ++r) {
    expect_systems_close(full.replica(r), tail.replica(r), 1e-8);
  }
  std::remove(path);
}

}  // namespace
}  // namespace ember::md
