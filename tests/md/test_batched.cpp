// Batched multi-replica MD: lockstep trajectories must match independent
// serial runs exactly, with zero cross-talk between replicas.

#include <gtest/gtest.h>

#include <memory>

#include "md/batched.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "ref/pair_lj.hpp"
#include "ref/pair_tersoff.hpp"

namespace ember::md {
namespace {

System argon_replica(int reps, double a, double temperature,
                     std::uint64_t seed) {
  LatticeSpec spec;
  spec.kind = LatticeKind::Fcc;
  spec.a = a;
  spec.nx = spec.ny = spec.nz = reps;
  System sys = build_lattice(spec, 39.948);
  Rng rng(seed);
  sys.thermalize(temperature, rng);
  return sys;
}

std::shared_ptr<PairPotential> lj() {
  return std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5);
}

TEST(Batched, MatchesIndependentRunsExactly) {
  // Three replicas with different boxes and temperatures, advanced 80 NVE
  // steps: the batched trajectory must equal three separate runs.
  std::vector<System> reps;
  reps.push_back(argon_replica(2, 5.26, 30.0, 1));
  reps.push_back(argon_replica(2, 5.40, 60.0, 2));
  reps.push_back(argon_replica(3, 5.26, 45.0, 3));

  std::vector<System> individual;
  for (const auto& rep : reps) {
    Simulation sim(rep, lj(), 0.002, 0.4, 99);
    sim.run(80);
    individual.push_back(sim.system());
  }

  BatchedSimulation batch(reps, lj(), 0.002, 0.4, 99);
  batch.run(80);

  for (int r = 0; r < 3; ++r) {
    const System got = batch.replica(r);
    ASSERT_EQ(got.nlocal(), individual[r].nlocal());
    for (int i = 0; i < got.nlocal(); ++i) {
      const Vec3 d =
          individual[r].box().minimum_image(individual[r].x[i], got.x[i]);
      EXPECT_NEAR(d.norm(), 0.0, 1e-10) << "replica " << r << " atom " << i;
      EXPECT_NEAR(got.v[i].x, individual[r].v[i].x, 1e-12);
      EXPECT_NEAR(got.v[i].z, individual[r].v[i].z, 1e-12);
    }
  }
}

TEST(Batched, NoCrossTalkBetweenOverlappingReplicas) {
  // Two replicas occupy the SAME coordinates; forces in replica 0 must be
  // unchanged by replica 1's presence (different-system atoms are never
  // neighbors).
  System a = argon_replica(2, 5.26, 20.0, 7);
  System b = a;
  for (int i = 0; i < b.nlocal(); ++i) b.v[i] *= -1.0;  // distinguishable

  Simulation solo(a, lj(), 0.002, 0.4, 5);
  solo.run(40);

  BatchedSimulation batch({a, b}, lj(), 0.002, 0.4, 5);
  batch.run(40);
  const System got = batch.replica(0);
  for (int i = 0; i < got.nlocal(); ++i) {
    const Vec3 d = solo.system().box().minimum_image(solo.system().x[i],
                                                     got.x[i]);
    EXPECT_NEAR(d.norm(), 0.0, 1e-10);
  }
}

TEST(Batched, EnergyIsSumOfReplicaEnergies) {
  std::vector<System> reps;
  reps.push_back(argon_replica(2, 5.26, 0.0, 1));
  reps.push_back(argon_replica(2, 5.45, 0.0, 2));

  double sum = 0.0;
  for (const auto& rep : reps) {
    Simulation sim(rep, lj(), 0.002, 0.4, 1);
    sim.setup();
    sum += sim.potential_energy();
  }
  BatchedSimulation batch(reps, lj(), 0.002, 0.4, 1);
  batch.setup();
  EXPECT_NEAR(batch.energy_virial().energy, sum, 1e-9 * std::abs(sum));
}

TEST(Batched, PerReplicaTemperatures) {
  std::vector<System> reps;
  reps.push_back(argon_replica(2, 5.26, 20.0, 11));
  reps.push_back(argon_replica(2, 5.26, 80.0, 13));
  BatchedSimulation batch(reps, lj(), 0.002, 0.4, 11);
  // Thermalize targets are per-replica: the hotter replica must read
  // hotter before any dynamics.
  EXPECT_GT(batch.temperature(1), 2.5 * batch.temperature(0));
}

TEST(Batched, ManyBodyPotentialWorks) {
  // Tersoff across a batch (the many-body path touches zeta sums that
  // must also stay replica-local).
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 2;
  System a = build_lattice(spec, 12.011);
  Rng rng(3);
  perturb(a, 0.05, rng);
  System b = build_lattice(spec, 12.011);
  perturb(b, 0.08, rng);

  auto tersoff = std::make_shared<ref::PairTersoff>();
  Simulation solo(a, tersoff, 2e-4, 0.4, 5);
  solo.run(20);

  BatchedSimulation batch({a, b}, std::make_shared<ref::PairTersoff>(),
                          2e-4, 0.4, 5);
  batch.run(20);
  const System got = batch.replica(0);
  for (int i = 0; i < got.nlocal(); ++i) {
    const Vec3 d = solo.system().box().minimum_image(solo.system().x[i],
                                                     got.x[i]);
    EXPECT_NEAR(d.norm(), 0.0, 1e-9);
  }
}

TEST(Batched, StepCallbackAndTimersMatchTheOtherDrivers) {
  std::vector<System> reps;
  reps.push_back(argon_replica(2, 5.26, 30.0, 1));
  reps.push_back(argon_replica(2, 5.26, 60.0, 2));
  BatchedSimulation batch(reps, lj(), 0.002, 0.4, 99);

  long calls = 0;
  long last_step = -1;
  batch.run(30, [&](BatchedSimulation& b) {
    ++calls;
    last_step = b.step();
    EXPECT_EQ(b.num_replicas(), 2);
  });
  EXPECT_EQ(calls, 30);
  EXPECT_EQ(last_step, 30);
  EXPECT_EQ(batch.step(), 30);

  EXPECT_GT(batch.timers().total(TimerCategory::Pair), 0.0);
  EXPECT_GT(batch.timers().total(TimerCategory::Neigh), 0.0);
  EXPECT_GT(batch.timers().total(TimerCategory::Other), 0.0);
  batch.reset_timers();
  EXPECT_EQ(batch.timers().grand_total(), 0.0);
}

TEST(Batched, RejectsMixedMasses) {
  System a(Box(10, 10, 10), 12.011);
  a.add_atom({1, 1, 1});
  System b(Box(10, 10, 10), 55.845);
  b.add_atom({1, 1, 1});
  EXPECT_THROW(BatchedSimulation({a, b}, lj(), 0.002), Error);
}

}  // namespace
}  // namespace ember::md
