// ParSplice validation: landscape mechanics, segment invariants, QSD
// escape statistics, splicing correctness, and statistical equivalence
// with direct MD.

#include <gtest/gtest.h>

#include <cmath>

#include "parsplice/parsplice.hpp"

namespace ember::parsplice {
namespace {

TEST(Landscape, GradientMatchesFiniteDifference) {
  Landscape land(4, 1.0, 0.08, 3);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 r{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    const Vec2 g = land.gradient(r);
    const double h = 1e-6;
    const double gx = (land.energy({r.x + h, r.y}) -
                       land.energy({r.x - h, r.y})) /
                      (2 * h);
    const double gy = (land.energy({r.x, r.y + h}) -
                       land.energy({r.x, r.y - h})) /
                      (2 * h);
    EXPECT_NEAR(g.x, gx, 1e-6);
    EXPECT_NEAR(g.y, gy, 1e-6);
  }
}

TEST(Landscape, WellsAreMinima) {
  Landscape land(4, 1.0, 0.05, 5);
  for (int s = 0; s < land.num_states(); ++s) {
    const Vec2 c = land.well_center(s);
    const double e0 = land.energy(c);
    // The disorder is weak: lattice points remain below their immediate
    // surroundings at the saddle scale.
    EXPECT_LT(e0, land.energy({c.x + 0.5, c.y}));
    EXPECT_LT(e0, land.energy({c.x, c.y + 0.5}));
    EXPECT_EQ(land.state_of(c), s);
  }
}

TEST(Landscape, StateIndexingIsPeriodic) {
  Landscape land(4, 1.0, 0.0, 7);
  EXPECT_EQ(land.state_of({0.0, 0.0}), land.state_of({4.0, 4.0}));
  EXPECT_EQ(land.state_of({-1.0, 0.0}), land.state_of({3.0, 0.0}));
  EXPECT_EQ(land.num_states(), 16);
}

TEST(Segment, InvariantsHold) {
  Landscape land(4, 1.0, 0.05, 11);
  ParSpliceConfig cfg;
  cfg.temperature = 0.15;
  Rng rng(3);
  for (int s : {0, 5, 10}) {
    const Segment seg = generate_segment(land, s, cfg, rng);
    EXPECT_EQ(seg.start_state, s);
    EXPECT_GE(seg.end_state, 0);
    EXPECT_LT(seg.end_state, land.num_states());
    EXPECT_GE(seg.duration, cfg.t_segment - 1e-9);
    EXPECT_GE(seg.wall_cost, seg.duration);
  }
}

TEST(Segment, EscapeTimesFromQsdAreExponential) {
  // From the QSD the first-escape time is exponentially distributed; a
  // strong signature is mean ~ std (coefficient of variation ~ 1), very
  // unlike the sharply-peaked escape-time law from the well bottom.
  Landscape land(3, 1.0, 0.0, 13);
  ParSpliceConfig cfg;
  cfg.temperature = 0.22;
  cfg.t_corr = 0.6;
  Rng rng(7);

  std::vector<double> escapes;
  const int state = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Dephase, then measure the time to first escape.
    Vec2 r = land.well_center(state);
    double hold = 0.0;
    while (hold < cfg.t_corr) {
      land.step(r, cfg.temperature, cfg.dt, rng);
      if (land.state_of(r) == state) {
        hold += cfg.dt;
      } else {
        r = land.well_center(state);
        hold = 0.0;
      }
    }
    double t = 0.0;
    while (land.state_of(r) == state && t < 500.0) {
      land.step(r, cfg.temperature, cfg.dt, rng);
      t += cfg.dt;
    }
    escapes.push_back(t);
  }
  double mean = 0.0;
  for (const double t : escapes) mean += t;
  mean /= static_cast<double>(escapes.size());
  double var = 0.0;
  for (const double t : escapes) var += (t - mean) * (t - mean);
  var /= static_cast<double>(escapes.size() - 1);
  const double cv = std::sqrt(var) / mean;
  EXPECT_NEAR(cv, 1.0, 0.25);
}

TEST(SegmentDatabase, FifoPerState) {
  SegmentDatabase db;
  db.deposit({3, 4, 1.0, 1.0});
  db.deposit({3, 5, 2.0, 2.0});
  db.deposit({7, 7, 3.0, 3.0});
  EXPECT_TRUE(db.available(3));
  EXPECT_FALSE(db.available(4));
  EXPECT_EQ(db.banked(), 3u);
  EXPECT_EQ(db.take(3).end_state, 4);
  EXPECT_EQ(db.take(3).end_state, 5);
  EXPECT_FALSE(db.available(3));
}

TEST(Oracle, LearnsTransitionStructure) {
  Oracle oracle;
  for (int i = 0; i < 90; ++i) oracle.observe(0, 1);
  for (int i = 0; i < 10; ++i) oracle.observe(0, 2);
  for (int i = 0; i < 100; ++i) oracle.observe(1, 0);
  const auto one = oracle.predict(0, 1);
  EXPECT_NEAR(one.at(1), 0.9, 1e-12);
  EXPECT_NEAR(one.at(2), 0.1, 1e-12);
  // Two hops: 0 -> 1 -> 0 dominates.
  const auto two = oracle.predict(0, 2);
  EXPECT_NEAR(two.at(0), 0.9, 1e-12);
  // Unknown states predict themselves.
  EXPECT_NEAR(oracle.predict(42, 3).at(42), 1.0, 1e-12);
}

TEST(ParSplice, EasyCaseUtilizationIsHigh) {
  // Rare events: nearly every generated segment gets spliced and the
  // speedup approaches the worker count (deck, "An Easy Case").
  Landscape land(4, 1.0, 0.04, 21);
  ParSpliceConfig cfg;
  cfg.temperature = 0.09;  // barrier / T ~ 11: escapes are rare
  cfg.nworkers = 8;
  cfg.wall_budget = 120.0;
  const auto res = run_parsplice(land, cfg);

  EXPECT_GT(res.utilization(), 0.9);
  EXPECT_GT(res.speedup(), 0.6 * cfg.nworkers);
  EXPECT_GT(res.spliced_time, 0.0);
}

TEST(ParSplice, HardCaseDegradesTowardMd) {
  // Fast, unpredictable events: utilization collapses and the speedup
  // shrinks (deck, "Hard Cases": reduces to MD when everything is new).
  Landscape land(4, 1.0, 0.04, 23);
  ParSpliceConfig easy;
  easy.temperature = 0.09;
  easy.nworkers = 8;
  easy.wall_budget = 80.0;
  ParSpliceConfig hard = easy;
  hard.temperature = 0.5;

  const auto res_easy = run_parsplice(land, easy);
  const auto res_hard = run_parsplice(land, hard);
  EXPECT_LT(res_hard.utilization(), res_easy.utilization());
  EXPECT_LT(res_hard.speedup(), res_easy.speedup());
}

TEST(ParSplice, TransitionStatisticsMatchDirectMd) {
  // The spliced trajectory must be statistically equivalent to direct MD:
  // compare the transition rate (transitions per unit physical time).
  Landscape land(3, 1.0, 0.0, 29);
  ParSpliceConfig cfg;
  cfg.temperature = 0.28;  // frequent enough for statistics
  cfg.nworkers = 6;
  cfg.wall_budget = 300.0;
  cfg.t_segment = 1.0;
  cfg.t_corr = 0.5;

  const auto ps = run_parsplice(land, cfg);
  const auto md = run_md_reference(land, cfg);

  ASSERT_GT(ps.spliced_time, 50.0);
  ASSERT_GT(md.transitions, 50);
  const double rate_ps = ps.transitions / ps.spliced_time;
  const double rate_md = md.transitions / md.physical_time;
  EXPECT_NEAR(rate_ps, rate_md, 0.35 * rate_md);
}

TEST(ParSplice, MoreWorkersMoreThroughput) {
  Landscape land(4, 1.0, 0.04, 31);
  ParSpliceConfig small;
  small.temperature = 0.10;
  small.nworkers = 2;
  small.wall_budget = 60.0;
  ParSpliceConfig big = small;
  big.nworkers = 12;

  const auto res_small = run_parsplice(land, small);
  const auto res_big = run_parsplice(land, big);
  EXPECT_GT(res_big.spliced_time, 2.0 * res_small.spliced_time);
}

}  // namespace
}  // namespace ember::parsplice
