// The transport-backed pull-model task farm: every task executes
// exactly once, results aggregate identically on every rank, and the
// farm works on both comm backends and degenerates cleanly to one rank.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "comm/transport.hpp"
#include "parsplice/comm_farm.hpp"
#include "../comm/transport_test_util.hpp"

namespace ember::parsplice {
namespace {

using comm::test::kBothKinds;
using comm::test::make;

class CommFarm : public ::testing::TestWithParam<comm::TransportKind> {};

TEST_P(CommFarm, EveryTaskRunsExactlyOnce) {
  const auto ctx = make(GetParam(), 4);
  FarmConfig config;
  config.total_tasks = 37;
  config.batch = 5;
  ctx->run([&config](comm::Transport& t) {
    const FarmStats stats =
        run_task_farm(t, config, [](long id) { return 0.5 * id; });
    // Allreduced: every rank sees the same global totals.
    EXPECT_EQ(stats.tasks_completed, 37);
    EXPECT_DOUBLE_EQ(stats.result_sum, 0.5 * (36.0 * 37.0 / 2.0));
    EXPECT_EQ(stats.batches_served, 8);  // ceil(37 / 5)
  });
}

TEST_P(CommFarm, SingleRankExecutesEverythingItself) {
  const auto ctx = make(GetParam(), 1);
  FarmConfig config;
  config.total_tasks = 10;
  config.batch = 4;
  ctx->run([&config](comm::Transport& t) {
    const FarmStats stats =
        run_task_farm(t, config, [](long id) { return 1.0 + id; });
    EXPECT_EQ(stats.tasks_completed, 10);
    EXPECT_DOUBLE_EQ(stats.result_sum, 10.0 + 45.0);
    EXPECT_EQ(stats.batches_served, 3);
  });
}

TEST_P(CommFarm, EmptyFarmRetiresWorkersImmediately) {
  const auto ctx = make(GetParam(), 3);
  FarmConfig config;
  config.total_tasks = 0;
  ctx->run([&config](comm::Transport& t) {
    const FarmStats stats =
        run_task_farm(t, config, [](long) { return 1.0; });
    EXPECT_EQ(stats.tasks_completed, 0);
    EXPECT_DOUBLE_EQ(stats.result_sum, 0.0);
    EXPECT_EQ(stats.batches_served, 0);
  });
}

TEST(CommFarmBalance, FastWorkersPullMoreBatches) {
  // Thread backend with a deliberately skewed task cost: worker 1 sleeps
  // on every task. The pull model must not deal it an equal share.
  const auto ctx = make(comm::TransportKind::Thread, 3);
  FarmConfig config;
  config.total_tasks = 40;
  config.batch = 1;
  std::atomic<long> slow_count{0};
  ctx->run([&](comm::Transport& t) {
    const bool slow = t.rank() == 1;
    const FarmStats stats = run_task_farm(t, config, [&](long) {
      if (slow) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        slow_count.fetch_add(1, std::memory_order_relaxed);
      }
      return 1.0;
    });
    EXPECT_EQ(stats.tasks_completed, 40);
  });
  // The slow worker must have been out-pulled by the fast one.
  EXPECT_LT(slow_count.load(std::memory_order_relaxed), 20);
}

INSTANTIATE_TEST_SUITE_P(Farm, CommFarm, ::testing::ValuesIn(kBothKinds),
                         comm::test::kind_name);

}  // namespace
}  // namespace ember::parsplice
