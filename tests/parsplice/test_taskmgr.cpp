// Task-farm simulation: conservation laws, the saturation cliff of the
// flat topology, and the deck's hierarchical pull-model claims.

#include <gtest/gtest.h>

#include "parsplice/taskmgr.hpp"

namespace ember::parsplice {
namespace {

TaskFarmConfig flat(int workers) {
  TaskFarmConfig cfg;
  cfg.n_task_managers = workers;  // every worker talks to the WM itself
  cfg.workers_per_tm = 1;
  cfg.batch = 1;
  cfg.low_water = 0;
  cfg.tm_latency = 0.0;
  return cfg;
}

TaskFarmConfig hierarchical(int tms, int per_tm) {
  TaskFarmConfig cfg;
  cfg.n_task_managers = tms;
  cfg.workers_per_tm = per_tm;
  return cfg;
}

TEST(TaskFarm, UnsaturatedThroughputMatchesLittlesLaw) {
  // Few workers, long tasks: throughput ~ workers / task time and the
  // workers stay essentially fully busy.
  auto cfg = hierarchical(2, 16);
  cfg.task_seconds = 2.0;
  cfg.sim_seconds = 500.0;
  const auto r = simulate_task_farm(cfg);
  EXPECT_NEAR(r.tasks_per_second, 32 / 2.0, 1.0);
  EXPECT_GT(r.worker_utilization, 0.95);
  EXPECT_LE(r.worker_utilization, 1.0);
}

TEST(TaskFarm, FlatTopologySaturatesTheWorkManager) {
  // Flat: per-request overhead caps the WM near 1/(overhead+service)
  // tasks/s; far past that demand the workers starve.
  auto cfg = flat(4096);
  cfg.task_seconds = 0.1;  // demand: 40,960 tasks/s >> ~8,300 cap
  cfg.sim_seconds = 100.0;
  const auto r = simulate_task_farm(cfg);
  const double cap = 1.0 / (cfg.wm_request_overhead + cfg.wm_service_seconds);
  EXPECT_NEAR(r.tasks_per_second, cap, 0.15 * cap);
  EXPECT_LT(r.worker_utilization, 0.35);
  EXPECT_GT(r.wm_busy_fraction, 0.95);
}

TEST(TaskFarm, HierarchyRestoresUtilizationAtScale) {
  // Same worker count and task length, but TMs batch the WM traffic.
  // Operating point well past the flat topology's WM cap (~8.3k tasks/s):
  // 4096 workers x 0.1 s tasks demand ~41k tasks/s.
  auto cfg_flat = flat(4096);
  cfg_flat.task_seconds = 0.1;
  cfg_flat.sim_seconds = 100.0;
  auto cfg_hier = hierarchical(64, 64);
  cfg_hier.task_seconds = 0.1;
  cfg_hier.sim_seconds = 100.0;

  const auto flat_r = simulate_task_farm(cfg_flat);
  const auto hier_r = simulate_task_farm(cfg_hier);
  EXPECT_GT(hier_r.worker_utilization, 0.9);
  EXPECT_GT(hier_r.tasks_per_second, 3.0 * flat_r.tasks_per_second);
  // Aggregation: far fewer WM requests for the same completed work.
  EXPECT_LT(hier_r.wm_requests, flat_r.wm_requests / 10);
}

TEST(TaskFarm, ReachesDeckScaleTaskRates) {
  // Deck: ~50,000 tasks/s through the WM with batched managers.
  auto cfg = hierarchical(256, 128);  // 32k workers
  cfg.task_seconds = 1.0;
  cfg.batch = 256;
  cfg.low_water = 128;
  cfg.sim_seconds = 30.0;
  const auto r = simulate_task_farm(cfg);
  EXPECT_GT(r.tasks_per_second, 25000.0);
  EXPECT_GT(r.worker_utilization, 0.75);
}

TEST(TaskFarm, LargerBatchesReduceWmLoad) {
  double prev_busy = 1.1;
  for (const int batch : {8, 64, 512}) {
    auto cfg = hierarchical(32, 64);
    cfg.batch = batch;
    cfg.low_water = batch / 2;
    cfg.task_seconds = 0.2;
    cfg.sim_seconds = 60.0;
    const auto r = simulate_task_farm(cfg);
    EXPECT_LT(r.wm_busy_fraction, prev_busy);
    prev_busy = r.wm_busy_fraction;
  }
}

}  // namespace
}  // namespace ember::parsplice
