// Thread pool and ComputeContext guarantees: static chunk scheduling,
// deterministic reductions, and the headline parity contract — threaded
// force kernels (SNAP, EAM, Tersoff) match the serial engine to <= 1e-12
// per force component at 1/2/4/8 threads, and repeated threaded runs at a
// fixed thread count are bitwise identical.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "md/compute_context.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "md/potential.hpp"
#include "parallel/thread_pool.hpp"
#include "ref/pair_eam.hpp"
#include "ref/pair_lj.hpp"
#include "ref/pair_tersoff.hpp"
#include "snap/snap_potential.hpp"

namespace ember {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  parallel::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, 257, 7, [&](int, int b, int e) {
    for (int i = b; i < e; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(std::memory_order_relaxed), 1);
}

TEST(ThreadPool, ChunkMapIsStaticRoundRobin) {
  // chunk c -> worker c % nthreads, independent of timing: the observed
  // tid of every index must match the analytic map on every run.
  constexpr int kN = 101, kGrain = 9, kThreads = 3;
  parallel::ThreadPool pool(kThreads);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<int> tid_of(kN, -1);
    pool.parallel_for(0, kN, kGrain, [&](int tid, int b, int e) {
      for (int i = b; i < e; ++i) tid_of[i] = tid;  // disjoint writes
    });
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(tid_of[i], (i / kGrain) % kThreads) << "index " << i;
    }
  }
}

TEST(ThreadPool, SerialPoolRunsInlineAsOneChunk) {
  parallel::ThreadPool pool(1);
  int calls = 0;
  pool.parallel_for(3, 50, 5, [&](int tid, int b, int e) {
    ++calls;
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(b, 3);
    EXPECT_EQ(e, 50);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, BlocksPartitionIsContiguousPerWorker) {
  parallel::ThreadPool pool(4);
  std::vector<int> tid_of(10, -1);
  std::atomic<int> calls{0};
  pool.parallel_blocks(0, 10, [&](int tid, int b, int e) {
    calls.fetch_add(1, std::memory_order_relaxed);
    for (int i = b; i < e; ++i) tid_of[i] = tid;
  });
  // grain = ceil(10/4) = 3 -> chunks [0,3) [3,6) [6,9) [9,10), one each.
  EXPECT_EQ(calls.load(std::memory_order_relaxed), 4);
  const int expect[] = {0, 0, 0, 1, 1, 1, 2, 2, 2, 3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(tid_of[i], expect[i]);
}

TEST(ThreadPool, ReduceTreeIsFixedOrder) {
  // The pairwise tree for 5 slots: ((0+1)+(2+3))+4, not left-to-right.
  std::vector<double> slots = {1e16, 1.0, -1e16, 1.0, 3.0};
  const double tree =
      parallel::ThreadPool::reduce_tree(std::span<double>(slots),
                                        [](double a, double b) { return a + b; });
  double expect[] = {1e16, 1.0, -1e16, 1.0, 3.0};
  expect[0] += expect[1];
  expect[2] += expect[3];
  expect[0] += expect[2];
  expect[0] += expect[4];
  EXPECT_EQ(tree, expect[0]);
}

// --- force-kernel parity -------------------------------------------------

md::System perturbed_diamond(int reps, double sigma, std::uint64_t seed) {
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = reps;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(seed);
  md::perturb(sys, sigma, rng);
  return sys;
}

snap::SnapModel tiny_snap_model(int twojmax, std::uint64_t seed) {
  snap::SnapParams p;
  p.twojmax = twojmax;
  p.rcut = 2.6;
  p.bzero_flag = true;
  snap::SnapModel m;
  m.params = p;
  snap::Bispectrum bi(p);
  Rng rng(seed);
  m.beta.resize(bi.num_b());
  for (auto& b : m.beta) b = 0.02 * rng.uniform(-1.0, 1.0);
  m.beta0 = -1.0;
  return m;
}

struct ForceRun {
  double energy = 0.0;
  double virial = 0.0;
  std::vector<Vec3> f;
};

// One full threaded force evaluation: threaded neighbor build, threaded
// kernel, merged forces.
ForceRun run_forces(md::PairPotential& pot, const md::System& start,
                    int nthreads) {
  md::System sys = start;
  const md::ComputeContext ctx{ExecutionPolicy{nthreads}};
  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys, /*use_ghosts=*/false, &ctx);
  sys.zero_forces();
  const auto ev = pot.compute(ctx, sys, nl);
  return {ev.energy, ev.virial,
          std::vector<Vec3>(sys.f.begin(), sys.f.end())};
}

void expect_parity(md::PairPotential& pot, const md::System& sys) {
  const ForceRun serial = run_forces(pot, sys, 1);
  for (const int nth : {2, 4, 8}) {
    const ForceRun threaded = run_forces(pot, sys, nth);
    const double etol = 1e-12 * std::max(1.0, std::abs(serial.energy));
    EXPECT_NEAR(threaded.energy, serial.energy, etol) << nth << " threads";
    EXPECT_NEAR(threaded.virial, serial.virial,
                1e-12 * std::max(1.0, std::abs(serial.virial)))
        << nth << " threads";
    ASSERT_EQ(threaded.f.size(), serial.f.size());
    for (std::size_t i = 0; i < serial.f.size(); ++i) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(threaded.f[i][d], serial.f[i][d], 1e-12)
            << nth << " threads, atom " << i << " dim " << d;
      }
    }
  }
}

TEST(ThreadedForces, TersoffMatchesSerial) {
  ref::PairTersoff pot;
  expect_parity(pot, perturbed_diamond(2, 0.1, 31));
}

TEST(ThreadedForces, EamMatchesSerial) {
  ref::PairEam pot;
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Bcc;
  spec.a = 2.8665;
  spec.nx = spec.ny = spec.nz = 3;
  md::System sys = md::build_lattice(spec, 55.845);
  Rng rng(37);
  md::perturb(sys, 0.1, rng);
  expect_parity(pot, sys);
}

TEST(ThreadedForces, LjMatchesSerial) {
  ref::PairLJ pot(0.0104, 3.4, 8.0);
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 3;
  md::System sys = md::build_lattice(spec, 39.948);
  Rng rng(41);
  md::perturb(sys, 0.15, rng);
  expect_parity(pot, sys);
}

TEST(ThreadedForces, SnapMatchesSerial) {
  snap::SnapPotential pot(tiny_snap_model(6, 43));
  expect_parity(pot, perturbed_diamond(2, 0.1, 47));
}

TEST(ThreadedForces, RepeatedRunsAreBitwiseIdentical) {
  // Determinism contract: at a fixed thread count, the merge order of the
  // per-thread partial forces is static, so two runs agree exactly.
  snap::SnapPotential pot(tiny_snap_model(6, 53));
  const md::System sys = perturbed_diamond(2, 0.12, 59);
  const ForceRun a = run_forces(pot, sys, 4);
  const ForceRun b = run_forces(pot, sys, 4);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.virial, b.virial);
  ASSERT_EQ(a.f.size(), b.f.size());
  for (std::size_t i = 0; i < a.f.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(a.f[i][d], b.f[i][d]) << "atom " << i << " dim " << d;
    }
  }
}

TEST(ThreadedNeighbors, ListMatchesSerialEntryForEntry) {
  const md::System sys = perturbed_diamond(3, 0.1, 61);
  md::NeighborList serial(3.2, 0.4);
  serial.build(sys);
  const md::ComputeContext ctx{ExecutionPolicy{4}};
  md::NeighborList threaded(3.2, 0.4);
  threaded.build(sys, /*use_ghosts=*/false, &ctx);

  ASSERT_EQ(threaded.num_atoms(), serial.num_atoms());
  ASSERT_EQ(threaded.total_pairs(), serial.total_pairs());
  for (int i = 0; i < serial.num_atoms(); ++i) {
    const auto a = serial.neighbors(i);
    const auto b = threaded.neighbors(i);
    ASSERT_EQ(a.size(), b.size()) << "atom " << i;
    for (std::size_t m = 0; m < a.size() && m < b.size(); ++m) {
      EXPECT_EQ(a[m].j, b[m].j);
      EXPECT_EQ(a[m].shift.x, b[m].shift.x);
      EXPECT_EQ(a[m].shift.y, b[m].shift.y);
      EXPECT_EQ(a[m].shift.z, b[m].shift.z);
    }
  }
}

TEST(ComputeContext, AtomRangeRestrictsTheSweep) {
  // A kernel run over [0, n/2) plus one over [n/2, n) must reproduce the
  // full-range forces (the pipelining use case for sub-ranges).
  ref::PairLJ pot(0.0104, 3.4, 8.0);
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 2;
  md::System full = md::build_lattice(spec, 39.948);
  Rng rng(67);
  md::perturb(full, 0.1, rng);

  const ForceRun whole = run_forces(pot, full, 2);

  md::System sys = full;
  md::ComputeContext ctx{ExecutionPolicy{2}};
  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys, false, &ctx);
  sys.zero_forces();
  const int half = sys.nlocal() / 2;
  ctx.set_atom_range(0, half);
  const auto lo = pot.compute(ctx, sys, nl);
  ctx.set_atom_range(half, sys.nlocal());
  const auto hi = pot.compute(ctx, sys, nl);
  ctx.clear_atom_range();

  EXPECT_NEAR(lo.energy + hi.energy, whole.energy,
              1e-12 * std::max(1.0, std::abs(whole.energy)));
  for (int i = 0; i < sys.nlocal(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(sys.f[i][d], whole.f[i][d], 1e-12);
    }
  }
}

}  // namespace
}  // namespace ember
