// Domain-decomposition validation: the parallel driver must reproduce the
// serial engine — same energies and forces at setup, equivalent
// trajectories over many steps, conservation across migrations. The
// parity suite runs on every (transport backend, rank count) pair: the
// same program must hold whether ranks are threads of this process or
// forked socket-connected processes.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "comm/transport.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "parallel/parallel_sim.hpp"
#include "ref/pair_lj.hpp"
#include "snap/snap_potential.hpp"
#include "../comm/transport_test_util.hpp"

namespace ember::parallel {
namespace {

md::System make_argon(int reps, double temperature, std::uint64_t seed) {
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = reps;
  md::System sys = md::build_lattice(spec, 39.948);
  Rng rng(seed);
  sys.thermalize(temperature, rng);
  return sys;
}

std::shared_ptr<md::PairPotential> make_lj() {
  return std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5);
}

TEST(RankGrid, ChoosesBalancedFactorization) {
  const auto g8 = RankGrid::choose(8);
  EXPECT_EQ(g8.nx * g8.ny * g8.nz, 8);
  EXPECT_EQ(g8.nx, 2);
  EXPECT_EQ(g8.ny, 2);
  EXPECT_EQ(g8.nz, 2);
  const auto g12 = RankGrid::choose(12);
  EXPECT_EQ(g12.nx * g12.ny * g12.nz, 12);
  // 3x2x2 in some order beats 12x1x1.
  EXPECT_LE(std::max({g12.nx, g12.ny, g12.nz}), 3);
  // The paper's full-Summit grid: 27,900 ranks factor into 30x30x31.
  const auto summit = RankGrid::choose(27900);
  std::array<int, 3> dims{summit.nx, summit.ny, summit.nz};
  std::sort(dims.begin(), dims.end());
  EXPECT_EQ(dims[0], 30);
  EXPECT_EQ(dims[1], 30);
  EXPECT_EQ(dims[2], 31);
}

TEST(Domain, OwnershipPartitionsTheBox) {
  md::Box box(12, 14, 16);
  const RankGrid grid{2, 2, 1};
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 p{rng.uniform(0, 12), rng.uniform(0, 14), rng.uniform(0, 16)};
    int owners = 0;
    for (int r = 0; r < grid.size(); ++r) {
      Domain dom(box, grid, r);
      if (dom.owns(p)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "point " << p.x << ',' << p.y << ',' << p.z;
  }
}

class ParallelVsSerial
    : public ::testing::TestWithParam<std::tuple<comm::TransportKind, int>> {
 protected:
  [[nodiscard]] std::unique_ptr<comm::Context> context() const {
    return comm::test::make(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(ParallelVsSerial, SetupEnergyMatchesSerial) {
  md::System global = make_argon(3, 30.0, 7);

  md::Simulation serial(global, make_lj(), 0.002, 0.5, 7);
  serial.setup();
  const double e_serial = serial.potential_energy();

  context()->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, make_lj(), 0.002, 0.5, 7);
    psim.setup();
    const auto g = psim.global_state();
    EXPECT_EQ(g.natoms, global.nlocal());
    EXPECT_NEAR(g.potential_energy, e_serial,
                1e-9 * std::abs(e_serial));
  });
}

TEST_P(ParallelVsSerial, TrajectoriesMatchOverManySteps) {
  md::System global = make_argon(3, 30.0, 13);

  md::Simulation serial(global, make_lj(), 0.002, 0.5, 13);
  serial.run(120);

  context()->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, make_lj(), 0.002, 0.5, 13);
    psim.run(120);
    md::System gathered = psim.gather_global();
    ASSERT_EQ(gathered.nlocal(), serial.system().nlocal());

    // Match atoms by id (serial ids are 0..N-1 in order).
    for (int i = 0; i < gathered.nlocal(); ++i) {
      const long id = gathered.id[i];
      const Vec3 d = serial.system().box().minimum_image(
          serial.system().x[static_cast<std::size_t>(id)], gathered.x[i]);
      EXPECT_NEAR(d.norm(), 0.0, 1e-7) << "atom " << id;
      EXPECT_NEAR(gathered.v[i].x,
                  serial.system().v[static_cast<std::size_t>(id)].x, 1e-7);
    }
  });
}

TEST_P(ParallelVsSerial, MigrationConservesAtoms) {
  // Hot enough to force atoms across sub-domain boundaries.
  md::System global = make_argon(3, 300.0, 17);

  context()->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, make_lj(), 0.004, 0.3, 17);
    psim.run(200);
    const auto g = psim.global_state();
    EXPECT_EQ(g.natoms, global.nlocal());

    md::System gathered = psim.gather_global();
    // Ids must remain a permutation of the originals.
    std::map<long, int> seen;
    for (int i = 0; i < gathered.nlocal(); ++i) ++seen[gathered.id[i]];
    EXPECT_EQ(static_cast<int>(seen.size()), global.nlocal());
    for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "id " << id;

    // Every local atom must actually live in its owner's domain.
    EXPECT_TRUE(psim.domain().owns(
        psim.local().box().wrap(psim.local().x[0])));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Ranks, ParallelVsSerial,
    ::testing::Combine(::testing::ValuesIn(comm::test::kBothKinds),
                       ::testing::Values(1, 2, 4, 8)),
    comm::test::kind_size_name);

TEST(ParallelSnap, EnergyAndForcesMatchSerial) {
  // SNAP is the paper's potential: validate the many-body force path
  // (including reverse ghost-force communication) against serial.
  snap::SnapParams p;
  p.twojmax = 4;
  p.rcut = 2.6;
  snap::SnapModel model;
  model.params = p;
  Rng rng(23);
  model.beta.resize(snap::SnapIndex(p.twojmax).num_b());
  for (auto& b : model.beta) b = 0.02 * rng.uniform(-1, 1);

  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 3;
  md::System global = md::build_lattice(spec, 12.011);
  md::perturb(global, 0.08, rng);
  Rng vel_rng(29);
  global.thermalize(300.0, vel_rng);

  md::Simulation serial(global,
                        std::make_shared<snap::SnapPotential>(model), 5e-4,
                        0.4, 5);
  serial.run(25);

  comm::test::make(comm::TransportKind::Thread, 4)->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global,
                            std::make_shared<snap::SnapPotential>(model),
                            5e-4, 0.4, 5);
    psim.run(25);
    const auto g = psim.global_state();
    EXPECT_NEAR(g.potential_energy, serial.potential_energy(),
                1e-7 * std::max(1.0, std::abs(serial.potential_energy())));
    md::System gathered = psim.gather_global();
    for (int i = 0; i < gathered.nlocal(); ++i) {
      const long id = gathered.id[i];
      const Vec3 d = serial.system().box().minimum_image(
          serial.system().x[static_cast<std::size_t>(id)], gathered.x[i]);
      EXPECT_NEAR(d.norm(), 0.0, 1e-8);
    }
  });
}

TEST(ParallelTimers, BreakdownCoversCategories) {
  md::System global = make_argon(3, 30.0, 31);
  comm::test::make(comm::TransportKind::Thread, 4)->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, make_lj(), 0.002, 0.5, 31);
    psim.run(30);
    const auto& t = psim.timers();
    // Unified taxonomy: same category names as the serial driver; the
    // Fig. 4 presentation labels live in md::fig4_label.
    EXPECT_GT(t.total(TimerCategory::Pair), 0.0);
    EXPECT_GT(t.total(TimerCategory::Neigh), 0.0);
    EXPECT_GT(t.total(TimerCategory::Comm), 0.0);
    EXPECT_GT(t.total(TimerCategory::Other), 0.0);
    EXPECT_STREQ(md::fig4_label(TimerCategory::Pair), "SNAP");
    EXPECT_STREQ(md::fig4_label(TimerCategory::Comm), "MPI Comm");
  });
}

}  // namespace
}  // namespace ember::parallel
