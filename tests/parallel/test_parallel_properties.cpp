// Wider domain-decomposition coverage: odd rank counts, asymmetric
// grids, halo accounting, thermostatted parallel dynamics, and repeated
// migration stress.

#include <gtest/gtest.h>

#include <memory>

#include "comm/transport.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "parallel/parallel_sim.hpp"
#include "ref/pair_lj.hpp"
#include "../comm/transport_test_util.hpp"

namespace ember::parallel {
namespace {

md::System make_argon(int nx, int ny, int nz, double temperature,
                      std::uint64_t seed) {
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = nx;
  spec.ny = ny;
  spec.nz = nz;
  md::System sys = md::build_lattice(spec, 39.948);
  Rng rng(seed);
  sys.thermalize(temperature, rng);
  return sys;
}

std::shared_ptr<md::PairPotential> lj() {
  return std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5);
}

class OddRankCounts : public ::testing::TestWithParam<int> {};

TEST_P(OddRankCounts, EnergyMatchesSerial) {
  // Odd / prime counts force slab decompositions (n x 1 x 1): the box
  // must be long enough that every slab still exceeds the ghost shell.
  const int nranks = GetParam();
  md::System global = make_argon(6, 6, 6, 30.0, 5);
  auto shortlj = [] {
    return std::make_shared<ref::PairLJ>(0.0104, 3.4, 4.0);
  };
  md::Simulation serial(global, shortlj(), 0.002, 0.4, 5);
  serial.setup();
  const double e_serial = serial.potential_energy();

  comm::test::make(comm::TransportKind::Thread, nranks)
      ->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, shortlj(), 0.002, 0.4, 5);
    psim.setup();
    const auto g = psim.global_state();
    EXPECT_NEAR(g.potential_energy, e_serial, 1e-9 * std::abs(e_serial));
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, OddRankCounts, ::testing::Values(3, 5, 6, 7));

TEST(OddRankGuard, RejectsSubdomainsSmallerThanTheHalo) {
  // The constructor must refuse configurations whose one-shell halo
  // cannot be satisfied, rather than silently computing wrong forces.
  md::System global = make_argon(3, 3, 3, 30.0, 5);
  // prime -> 15.8/7 = 2.3 A slabs << rghost
  const auto ctx = comm::test::make(comm::TransportKind::Thread, 7);
  EXPECT_THROW(ctx->run([&](comm::Transport& c) {
                 ParallelSimulation psim(c, global, lj(), 0.002, 0.5, 5);
               }),
               Error);
}

TEST(AsymmetricGrid, NonCubicBoxGetsMatchingDecomposition) {
  // A 4x2x1-cell box on 8 ranks: choose() must favor cutting the long
  // dimension more.
  md::Box box(40.0, 20.0, 10.0);
  const auto grid = RankGrid::choose(8, box.lengths());
  EXPECT_EQ(grid.size(), 8);
  EXPECT_GE(grid.nx, grid.ny);
  EXPECT_GE(grid.ny, grid.nz);

  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = 8;  // large enough that every sub-domain exceeds the halo
  spec.ny = 4;
  spec.nz = 4;
  md::System global = md::build_lattice(spec, 39.948);
  Rng rng(7);
  global.thermalize(40.0, rng);

  md::Simulation serial(global, lj(), 0.002, 0.5, 7);
  serial.run(40);

  comm::test::make(comm::TransportKind::Thread, 8)
      ->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, lj(), 0.002, 0.5, 7);
    psim.run(40);
    md::System gathered = psim.gather_global();
    for (int i = 0; i < gathered.nlocal(); ++i) {
      const long id = gathered.id[i];
      const Vec3 d = serial.system().box().minimum_image(
          serial.system().x[static_cast<std::size_t>(id)], gathered.x[i]);
      EXPECT_NEAR(d.norm(), 0.0, 1e-8);
    }
  });
}

TEST(Halo, GhostCountMatchesShellEstimate) {
  // For a homogeneous crystal the ghost count per rank should be close to
  // the analytic shell estimate rho * ((L+2g)^3 - L^3) for its sub-domain.
  md::System global = make_argon(4, 4, 4, 0.0, 1);
  const double rho = global.nlocal() / global.box().volume();

  comm::test::make(comm::TransportKind::Thread, 8)
      ->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, lj(), 0.002, 0.5, 1);
    psim.setup();
    const Vec3 sub = psim.domain().lengths();
    const double g = 7.0;  // rcut + skin
    const double expected =
        rho * ((sub.x + 2 * g) * (sub.y + 2 * g) * (sub.z + 2 * g) -
               sub.x * sub.y * sub.z);
    EXPECT_NEAR(psim.local().nghost(), expected, 0.35 * expected);
  });
}

TEST(ParallelDynamics, LangevinHeatsInParallel) {
  md::System global = make_argon(3, 3, 3, 10.0, 9);
  comm::test::make(comm::TransportKind::Thread, 4)
      ->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, lj(), 0.002, 0.5, 9);
    psim.integrator().set_langevin(md::LangevinParams{120.0, 0.05});
    psim.run(400);
    const auto g = psim.global_state();
    EXPECT_NEAR(g.temperature, 120.0, 25.0);
    EXPECT_EQ(g.natoms, global.nlocal());
  });
}

TEST(MigrationStress, HotLiquidManyRebuildsConservesEverything) {
  md::System global = make_argon(3, 3, 3, 400.0, 13);
  comm::test::make(comm::TransportKind::Thread, 8)
      ->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, lj(), 0.004, 0.25, 13);
    psim.integrator().set_langevin(md::LangevinParams{400.0, 0.1});
    psim.run(300);
    const auto g = psim.global_state();
    EXPECT_EQ(g.natoms, global.nlocal());
    // Between reneighborings atoms may drift up to skin/2 past their
    // domain face; anything further means migration is broken.
    const Vec3 lo = psim.domain().lo();
    const Vec3 hi = psim.domain().hi();
    const double slack = 0.5 * 0.25 + 1e-12;
    for (int i = 0; i < psim.local().nlocal(); ++i) {
      const Vec3 w = psim.local().box().wrap(psim.local().x[i]);
      for (int d = 0; d < 3; ++d) {
        const double L = psim.local().box().length(d);
        // Distance outside [lo, hi) along d, periodic-aware.
        double outside = 0.0;
        if (w[d] < lo[d]) outside = std::min(lo[d] - w[d], w[d] + L - hi[d]);
        if (w[d] >= hi[d]) outside = std::min(w[d] - hi[d], lo[d] + L - w[d]);
        EXPECT_LE(outside, slack) << "atom " << i << " dim " << d;
      }
    }
  });
}

TEST(GatherGlobal, VelocitiesSurviveTheRoundTrip) {
  md::System global = make_argon(4, 4, 4, 55.0, 17);
  comm::test::make(comm::TransportKind::Thread, 4)
      ->run([&](comm::Transport& c) {
    ParallelSimulation psim(c, global, lj(), 0.002, 0.5, 17);
    psim.setup();
    md::System gathered = psim.gather_global();
    ASSERT_EQ(gathered.nlocal(), global.nlocal());
    for (int i = 0; i < gathered.nlocal(); ++i) {
      const long id = gathered.id[i];
      EXPECT_DOUBLE_EQ(gathered.v[i].x,
                       global.v[static_cast<std::size_t>(id)].x);
      EXPECT_DOUBLE_EQ(gathered.v[i].y,
                       global.v[static_cast<std::size_t>(id)].y);
    }
  });
}

}  // namespace
}  // namespace ember::parallel
