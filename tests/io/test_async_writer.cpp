// io::Writer backends. The AsyncIo suite (selected by `ctest -R AsyncIo`,
// which the CI TSan job runs) exercises the double-buffered writer
// thread: backpressure, drain barriers, error propagation with the path
// in the message, drain-on-destruct and the checkpoint tmp+rename
// durability protocol. The IoErrors suite pins the hardened synchronous
// md::write_xyz / md::write_checkpoint error handling.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "io/embt1.hpp"
#include "io/frame.hpp"
#include "io/writer.hpp"
#include "md/io.hpp"
#include "md/system.hpp"
#include "obs/metrics.hpp"

namespace ember::io {
namespace {

md::System make_system(int natoms, double shift = 0.0) {
  md::System sys(md::Box(8.0, 8.0, 8.0), 12.011);
  for (int i = 0; i < natoms; ++i) {
    const double s = 0.37 * static_cast<double>(i) + shift;
    sys.add_atom({s, 0.5 * s, 0.25 * s}, {1e-3 * s, 0.0, -1e-3 * s});
  }
  return sys;
}

Request traj_request(const std::string& path, long step, bool truncate,
                     double shift = 0.0) {
  Request req;
  req.kind = Request::Kind::Trajectory;
  req.path = path;
  req.format = format_from_path(path);
  req.truncate = truncate;
  req.frames.push_back(
      frame_of(make_system(12, shift), step, 0, "step=" + std::to_string(step)));
  return req;
}

int count_xyz_frames(const std::string& path) {
  std::ifstream in(path);
  int frames = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line == "12") ++frames;  // atom-count line of each snapshot
  }
  return frames;
}

TEST(AsyncIo, BackpressureDeliversEveryFrame) {
  const std::string path = "/tmp/ember_asyncio_backpressure.xyz";
  std::remove(path.c_str());
  constexpr int kFrames = 40;  // >> queue capacity 2: submit must block
  {
    auto w = make_writer(Mode::Async);
    ASSERT_TRUE(w->async());
    for (int s = 0; s < kFrames; ++s) {
      w->submit(traj_request(path, s, /*truncate=*/s == 0, 1e-4 * s));
    }
    w->drain();  // barrier: everything below is on disk
    EXPECT_EQ(count_xyz_frames(path), kFrames);
  }
  std::remove(path.c_str());
}

TEST(AsyncIo, DrainIsARestartBarrier) {
  // After drain() the file must be immediately readable — this is the
  // guarantee read_checkpoint-after-checkpoint restarts rely on.
  const std::string path = "/tmp/ember_asyncio_barrier.bin";
  std::remove(path.c_str());
  auto w = make_writer(Mode::Async);
  Request req;
  req.kind = Request::Kind::Checkpoint;
  req.path = path;
  req.frames.push_back(frame_of(make_system(23), 5));
  w->submit(std::move(req));
  w->drain();
  const md::System restored = md::read_checkpoint(path);
  EXPECT_EQ(restored.nlocal(), 23);
  std::remove(path.c_str());
}

TEST(AsyncIo, CheckpointRenameLeavesNoTmpFile) {
  const std::string path = "/tmp/ember_asyncio_ckpt.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  auto w = make_writer(Mode::Async);
  Request req;
  req.kind = Request::Kind::Checkpoint;
  req.path = path;
  req.frames.push_back(frame_of(make_system(8), 1));
  w->submit(std::move(req));
  w->drain();
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "checkpoint staging file must be renamed away";
  std::remove(path.c_str());
}

TEST(AsyncIo, ErrorNamesThePathAndSurfacesOnDrain) {
  const std::string path = "/tmp/ember_no_such_dir_asyncio/out.xyz";
  auto w = make_writer(Mode::Async);
  w->submit(traj_request(path, 0, /*truncate=*/true));
  try {
    w->drain();
    FAIL() << "drain did not surface the writer error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the path: " << e.what();
  }
  // The error was delivered exactly once; the writer is usable again.
  EXPECT_NO_THROW(w->drain());
  const std::string ok = "/tmp/ember_asyncio_after_error.xyz";
  std::remove(ok.c_str());
  w->submit(traj_request(ok, 1, /*truncate=*/true));
  w->drain();
  EXPECT_EQ(count_xyz_frames(ok), 1);
  std::remove(ok.c_str());
}

TEST(AsyncIo, ErrorSurfacesOnLaterSubmit) {
  // When the caller keeps submitting instead of draining, the pending
  // error must come back through submit() — never a silent drop.
  const std::string bad = "/tmp/ember_no_such_dir_asyncio/out2.xyz";
  const std::string ok = "/tmp/ember_asyncio_submit_error.xyz";
  std::remove(ok.c_str());
  auto w = make_writer(Mode::Async);
  w->submit(traj_request(bad, 0, /*truncate=*/true));
  bool thrown = false;
  for (int s = 1; s < 200 && !thrown; ++s) {
    try {
      w->submit(traj_request(ok, s, /*truncate=*/false));
    } catch (const Error& e) {
      thrown = true;
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos);
    }
  }
  if (!thrown) {
    // The queue never filled before we stopped submitting; the error
    // must still be waiting at the barrier.
    EXPECT_THROW(w->drain(), Error);
  }
  std::remove(ok.c_str());
}

TEST(AsyncIo, SubmitRethrowsPendingErrorAndWriterStaysUsable) {
  // Deterministic version of the submit-side error contract (the test
  // above races the worker and falls back to drain): wait for the
  // worker to hit the failure, then pin that the *next* submit is the
  // rethrow site, the rethrow names the failed path, the error is
  // delivered exactly once, and the writer keeps accepting frames —
  // including a second, independent failure afterwards.
  const std::string bad = "/tmp/ember_no_such_dir_asyncio/pending.xyz";
  const std::string ok = "/tmp/ember_asyncio_reuse.xyz";
  std::remove(ok.c_str());
  auto w = make_writer(Mode::Async);
  w->submit(traj_request(bad, 0, /*truncate=*/true));
  bool thrown = false;
  for (int i = 0; i < 500 && !thrown; ++i) {
    // Give the worker time to fail the write and latch the error; the
    // probe submits are real frames and may land before the latch.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    try {
      w->submit(traj_request(ok, i + 1, /*truncate=*/false));
    } catch (const Error& e) {
      thrown = true;
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
          << "submit-side rethrow must name the failed path: " << e.what();
    }
  }
  EXPECT_TRUE(thrown) << "pending worker error never surfaced on submit";
  // Delivered exactly once: the barrier right after is clean.
  EXPECT_NO_THROW(w->drain());
  // Reuse after error: fresh frames flow end to end.
  w->submit(traj_request(ok, 100, /*truncate=*/true));
  w->submit(traj_request(ok, 101, /*truncate=*/false));
  w->drain();
  EXPECT_EQ(count_xyz_frames(ok), 2);
  // A second failure is reported just as loudly (no one-shot latch).
  const std::string bad2 = "/tmp/ember_no_such_dir_asyncio/pending2.xyz";
  w->submit(traj_request(bad2, 0, /*truncate=*/true));
  try {
    w->drain();
    FAIL() << "second failure was swallowed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(bad2), std::string::npos);
  }
  w->submit(traj_request(ok, 200, /*truncate=*/true));
  w->drain();
  EXPECT_EQ(count_xyz_frames(ok), 1);
  std::remove(ok.c_str());
}

TEST(AsyncIo, DestructorDrainsOutstandingWrites) {
  const std::string path = "/tmp/ember_asyncio_destruct.embt1";
  std::remove(path.c_str());
  constexpr int kFrames = 10;
  {
    auto w = make_writer(Mode::Async);
    for (int s = 0; s < kFrames; ++s) {
      w->submit(traj_request(path, s, /*truncate=*/s == 0, 1e-4 * s));
    }
    // No drain: the destructor must finish the queue, not abandon it.
  }
  TrajectoryReader r(path);
  int frames = 0;
  while (r.next()) ++frames;
  EXPECT_EQ(frames, kFrames);
  std::remove(path.c_str());
}

TEST(AsyncIo, WriterMetricsGrow) {
  auto& frames = obs::Registry::global().counter("io.frames");
  auto& bytes = obs::Registry::global().counter("io.bytes");
  const double frames_before = frames.value();
  const double bytes_before = bytes.value();
  const std::string path = "/tmp/ember_asyncio_metrics.xyz";
  std::remove(path.c_str());
  auto w = make_writer(Mode::Async);
  w->submit(traj_request(path, 0, /*truncate=*/true));
  w->submit(traj_request(path, 1, /*truncate=*/false));
  w->drain();
  EXPECT_GE(frames.value(), frames_before + 2.0);
  EXPECT_GT(bytes.value(), bytes_before);
  std::remove(path.c_str());
}

TEST(AsyncIo, ModeFromEnvRejectsGarbage) {
  EXPECT_EQ(mode_from_env(), Mode::Sync);  // unset in the test env
  ::setenv("EMBER_IO", "async", 1);
  EXPECT_EQ(mode_from_env(), Mode::Async);
  ::setenv("EMBER_IO", "sync", 1);
  EXPECT_EQ(mode_from_env(), Mode::Sync);
  ::setenv("EMBER_IO", "turbo", 1);
  EXPECT_THROW((void)mode_from_env(), Error);
  ::unsetenv("EMBER_IO");
}

TEST(AsyncIo, SyncWriterSharesTheExecutor) {
  // Same request through both backends => byte-identical files (the
  // backends differ only in WHO runs the executor, not in what it does).
  const std::string a = "/tmp/ember_asyncio_sync.xyz";
  const std::string b = "/tmp/ember_asyncio_async.xyz";
  std::remove(a.c_str());
  std::remove(b.c_str());
  auto ws = make_writer(Mode::Sync);
  auto wa = make_writer(Mode::Async);
  EXPECT_FALSE(ws->async());
  for (int s = 0; s < 5; ++s) {
    ws->submit(traj_request(a, s, s == 0, 1e-4 * s));
    wa->submit(traj_request(b, s, s == 0, 1e-4 * s));
  }
  ws->drain();
  wa->drain();
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// --- synchronous path-level API hardening (md::write_xyz & friends) -----

TEST(IoErrors, WriteXyzUnwritablePathNamesIt) {
  const std::string path = "/tmp/ember_no_such_dir_ioerr/snap.xyz";
  try {
    md::write_xyz(make_system(4), path);
    FAIL() << "write_xyz did not throw for a missing directory";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(IoErrors, WriteCheckpointUnwritablePathNamesIt) {
  const std::string path = "/tmp/ember_no_such_dir_ioerr/state.bin";
  try {
    md::write_checkpoint(make_system(4), path);
    FAIL() << "write_checkpoint did not throw for a missing directory";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(IoErrors, ReadOnlyDirectoryRejected) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root bypasses directory permissions";
  }
  const std::string dir = "/tmp/ember_readonly_dir";
  ::mkdir(dir.c_str(), 0755);
  ::chmod(dir.c_str(), 0555);
  const std::string path = dir + "/snap.xyz";
  EXPECT_THROW(md::write_xyz(make_system(4), path), Error);
  EXPECT_THROW(md::write_checkpoint(make_system(4), dir + "/state.bin"),
               Error);
  ::chmod(dir.c_str(), 0755);
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace ember::io
