// EMBT1 codec: the compressed trajectory must round-trip bitwise (the
// XOR-delta + LEB128 scheme is lossless by construction, which is
// strictly stronger than the <= 1e-12 parity the issue asks for),
// stream frame-at-a-time, survive append restarts with a fresh key
// frame, and fail loudly — never silently — on truncation or foreign
// files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/embt1.hpp"
#include "io/frame.hpp"

namespace ember::io {
namespace {

Frame make_frame(long step, int natoms, double jitter) {
  Frame f;
  f.box = md::Box(10.0, 11.0, 12.0);
  f.mass = 12.011;
  f.step = step;
  f.replica = 0;
  f.comment = "step=" + std::to_string(step);
  for (int i = 0; i < natoms; ++i) {
    const double s = static_cast<double>(i);
    f.x.push_back({0.3 * s + jitter, 0.4 * s - jitter, 0.5 * s + 2.0 * jitter});
    f.v.push_back({1e-3 * s, -2e-3 * s + jitter, 3e-3 * s});
    f.id.push_back(i);
  }
  return f;
}

void expect_same(const Frame& a, const Frame& b) {
  ASSERT_EQ(a.natoms(), b.natoms());
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.replica, b.replica);
  EXPECT_EQ(a.comment, b.comment);
  EXPECT_EQ(a.mass, b.mass);
  for (int d = 0; d < 3; ++d) EXPECT_EQ(a.box.length(d), b.box.length(d));
  ASSERT_EQ(a.v.size(), b.v.size());
  for (int i = 0; i < a.natoms(); ++i) {
    const auto k = static_cast<std::size_t>(i);
    EXPECT_EQ(a.id[k], b.id[k]);
    // Bitwise equality, not near: the codec is lossless.
    EXPECT_EQ(a.x[k].x, b.x[k].x) << "atom " << i;
    EXPECT_EQ(a.x[k].y, b.x[k].y) << "atom " << i;
    EXPECT_EQ(a.x[k].z, b.x[k].z) << "atom " << i;
    if (k < a.v.size()) {
      EXPECT_EQ(a.v[k].x, b.v[k].x) << "atom " << i;
      EXPECT_EQ(a.v[k].y, b.v[k].y) << "atom " << i;
      EXPECT_EQ(a.v[k].z, b.v[k].z) << "atom " << i;
    }
  }
}

TEST(Embt1, RoundTripIsBitwise) {
  const std::string path = "/tmp/ember_embt1_roundtrip.embt1";
  std::remove(path.c_str());
  const Frame f0 = make_frame(0, 37, 0.0);
  const Frame f1 = make_frame(10, 37, 1.7e-4);  // tiny drift: delta frame
  {
    Embt1Writer w(path, /*truncate=*/true);
    w.append(f0);
    w.append(f1);
  }
  TrajectoryReader r(path);
  const auto g0 = r.next();
  const auto g1 = r.next();
  ASSERT_TRUE(g0.has_value());
  ASSERT_TRUE(g1.has_value());
  expect_same(f0, *g0);
  expect_same(f1, *g1);
  EXPECT_FALSE(r.next().has_value());  // clean EOF
  std::remove(path.c_str());
}

TEST(Embt1, TemporalDeltaCompresses) {
  // Disordered positions (LCG) so the key frame's intra-frame XOR has
  // nothing to exploit, then a frame one tiny MD step later: the
  // temporal XOR zeroes the high mantissa bits of every coordinate and
  // the delta frame must come out much smaller than the key frame.
  const std::string path = "/tmp/ember_embt1_delta.embt1";
  std::remove(path.c_str());
  constexpr int kAtoms = 200;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto uniform = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return 10.0 * static_cast<double>(lcg >> 11) / 9007199254740992.0;
  };
  Frame f0 = make_frame(0, 0, 0.0);
  for (int i = 0; i < kAtoms; ++i) {
    f0.x.push_back({uniform(), uniform(), uniform()});
    f0.v.push_back({uniform() - 5.0, uniform() - 5.0, uniform() - 5.0});
    f0.id.push_back(i);
  }
  Frame f1 = f0;
  f1.step = 1;
  for (auto& r : f1.x) {
    r.x += 1e-9;
    r.y -= 1e-9;
    r.z += 2e-9;
  }
  Embt1Writer w(path, /*truncate=*/true);
  const std::size_t key_bytes = w.append(f0);
  const std::size_t delta_bytes = w.append(f1);
  EXPECT_LT(delta_bytes, key_bytes / 2)
      << "temporal delta frame failed to compress: " << delta_bytes << " vs "
      << key_bytes;
  std::remove(path.c_str());
}

TEST(Embt1, StreamsManyFrames) {
  const std::string path = "/tmp/ember_embt1_stream.embt1";
  std::remove(path.c_str());
  constexpr int kFrames = 25;
  {
    Embt1Writer w(path, /*truncate=*/true);
    for (int s = 0; s < kFrames; ++s) {
      w.append(make_frame(s, 11, 1e-3 * s));
    }
  }
  TrajectoryReader r(path);
  int count = 0;
  while (auto f = r.next()) {
    EXPECT_EQ(f->step, count);
    ASSERT_EQ(f->natoms(), 11);
    ++count;
  }
  EXPECT_EQ(count, kFrames);
  std::remove(path.c_str());
}

TEST(Embt1, AppendRestartWritesKeyFrame) {
  // A second writer opened on an existing file never saw the earlier
  // frames, so its first frame must be a key frame — the reader decodes
  // the whole file without any cross-writer state.
  const std::string path = "/tmp/ember_embt1_append.embt1";
  std::remove(path.c_str());
  {
    Embt1Writer w(path, /*truncate=*/true);
    w.append(make_frame(0, 9, 0.0));
    w.append(make_frame(5, 9, 1e-4));
  }
  const Frame f2 = make_frame(10, 9, 2e-4);
  {
    Embt1Writer w(path, /*truncate=*/false);  // append restart
    w.append(f2);
  }
  TrajectoryReader r(path);
  EXPECT_TRUE(r.next().has_value());
  EXPECT_TRUE(r.next().has_value());
  const auto g2 = r.next();
  ASSERT_TRUE(g2.has_value());
  expect_same(f2, *g2);
  EXPECT_FALSE(r.next().has_value());
  std::remove(path.c_str());
}

TEST(Embt1, PositionOnlyFramesRoundTrip) {
  const std::string path = "/tmp/ember_embt1_posonly.embt1";
  std::remove(path.c_str());
  Frame f = make_frame(3, 6, 0.0);
  f.v.clear();
  {
    Embt1Writer w(path, /*truncate=*/true);
    w.append(f);
  }
  TrajectoryReader r(path);
  const auto g = r.next();
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->v.empty());
  expect_same(f, *g);
  std::remove(path.c_str());
}

TEST(Embt1, TruncatedFileNamesThePath) {
  const std::string path = "/tmp/ember_embt1_truncated.embt1";
  std::remove(path.c_str());
  {
    Embt1Writer w(path, /*truncate=*/true);
    w.append(make_frame(0, 40, 0.0));
  }
  // Chop the tail off the only frame.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();

  TrajectoryReader r(path);
  try {
    (void)r.next();
    FAIL() << "truncated trajectory did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error message must name the file: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(Embt1, ForeignFileRejected) {
  const std::string path = "/tmp/ember_embt1_foreign.embt1";
  {
    std::ofstream os(path, std::ios::trunc);
    os << "this is not a trajectory\n";
  }
  EXPECT_THROW(TrajectoryReader reader(path), Error);
  EXPECT_THROW(Embt1Writer writer(path, /*truncate=*/false), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ember::io
