// Sync/async output parity across all three drivers. The acceptance bar
// for the writer pipeline: running the SAME protocol with `io sync` and
// `io async` must produce byte-identical trajectory (XYZ and EMBT1) and
// checkpoint files on the serial, batched and domain-decomposed drivers.
// Runs are pinned to one thread so the dynamics themselves are
// reproducible and any byte difference is the writer's fault.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "app/interpreter.hpp"
#include "common/timer.hpp"

namespace ember::app {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void remove_all(const std::vector<std::string>& paths) {
  for (const auto& p : paths) std::remove(p.c_str());
}

// Run the protocol once per io mode, tagging output paths with the mode,
// and return the two file-content lists for comparison.
void expect_mode_parity(const std::string& protocol_template,
                        const std::vector<std::string>& file_templates) {
  std::vector<std::string> contents[2];
  const char* modes[2] = {"sync", "async"};
  for (int m = 0; m < 2; ++m) {
    std::string script = protocol_template;
    std::vector<std::string> files;
    for (const auto& tmpl : file_templates) {
      files.push_back(tmpl + "." + modes[m]);
    }
    // Substitute {0}, {1}, ... placeholders with the per-mode paths.
    for (std::size_t i = 0; i < files.size(); ++i) {
      const std::string key = "{" + std::to_string(i) + "}";
      for (std::size_t pos; (pos = script.find(key)) != std::string::npos;) {
        script.replace(pos, key.size(), files[i]);
      }
    }
    script = "io " + std::string(modes[m]) + "\n" + script;
    remove_all(files);
    std::ostringstream out;
    Interpreter interp(out);
    interp.run_script(script);
    for (const auto& f : files) {
      SCOPED_TRACE(f);
      const std::string bytes = slurp(f);
      EXPECT_FALSE(bytes.empty()) << "driver produced no output: " << f;
      contents[m].push_back(bytes);
    }
    remove_all(files);
  }
  ASSERT_EQ(contents[0].size(), contents[1].size());
  for (std::size_t i = 0; i < contents[0].size(); ++i) {
    EXPECT_EQ(contents[0][i], contents[1][i])
        << "sync and async bytes diverge for " << file_templates[i];
  }
}

TEST(AsyncIoParity, SerialDriverByteIdentical) {
  expect_mode_parity(
      "threads 1\n"
      "mass 39.948\n"
      "lattice fcc 5.26 repeat 2 2 2\n"
      "potential lj 0.0104 3.4 6.5\n"
      "thermalize 40 seed 7\n"
      "timestep 0.002\n"
      "dump every 5 {0}\n"
      "checkpoint every 10 {1}\n"
      "run 20\n",
      {"/tmp/ember_parity_serial.xyz", "/tmp/ember_parity_serial.bin"});
}

TEST(AsyncIoParity, SerialEmbt1ByteIdentical) {
  expect_mode_parity(
      "threads 1\n"
      "mass 39.948\n"
      "lattice fcc 5.26 repeat 2 2 2\n"
      "potential lj 0.0104 3.4 6.5\n"
      "thermalize 40 seed 9\n"
      "timestep 0.002\n"
      "dump every 5 {0} ember_traj\n"
      "run 20\n",
      {"/tmp/ember_parity_serial_traj.embt1"});
}

TEST(AsyncIoParity, BatchedDriverByteIdentical) {
  expect_mode_parity(
      "threads 1\n"
      "mass 39.948\n"
      "lattice fcc 5.26 repeat 2 2 2\n"
      "potential lj 0.0104 3.4 6.5\n"
      "thermalize 30 seed 5\n"
      "timestep 0.002\n"
      "replicas 2\n"
      "dump every 5 {0} ember_traj\n"
      "checkpoint every 10 {1}\n"
      "run 20\n",
      {"/tmp/ember_parity_batch.embt1", "/tmp/ember_parity_batch.bin"});
}

TEST(AsyncIoParity, ParallelDriverByteIdentical) {
  expect_mode_parity(
      "threads 1\n"
      "mass 39.948\n"
      "lattice fcc 5.26 repeat 3 3 3\n"
      "potential lj 0.0104 3.4 6.5\n"
      "thermalize 40 seed 11\n"
      "timestep 0.002\n"
      "transport thread\n"
      "ranks 2\n"
      "dump every 10 {0}\n"
      "checkpoint every 10 {1}\n"
      "run 20\n",
      {"/tmp/ember_parity_ranks.xyz", "/tmp/ember_parity_ranks.bin"});
}

TEST(AsyncIoParity, DumpTimeLandsInTheOutputBucket) {
  const std::string path = "/tmp/ember_parity_timer.xyz";
  std::remove(path.c_str());
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script("io sync\n"
                    "mass 39.948\n"
                    "lattice fcc 5.26 repeat 2 2 2\n"
                    "potential lj 0.0104 3.4 6.5\n"
                    "timestep 0.002\n"
                    "dump every 1 " + path + "\n"
                    "run 10\n");
  ASSERT_NE(interp.simulation(), nullptr);
  EXPECT_GT(interp.simulation()->timers().total(TimerCategory::Dump), 0.0)
      << "scheduled dumps must be timed under the Output category";
  EXPECT_STREQ(md::fig4_label(TimerCategory::Dump), "Output");
  std::remove(path.c_str());
}

TEST(AsyncIoParity, AnalyzeTrajectoryStreamsFrames) {
  // End-to-end consumer check: dump EMBT1 asynchronously, then stream it
  // back through the analysis layer both via the library call and the
  // `analyze trajectory` script command.
  const std::string path = "/tmp/ember_parity_analyze.embt1";
  std::remove(path.c_str());
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script("io async\n"
                    "mass 12.011\n"
                    "lattice diamond 3.567 repeat 2 2 2\n"
                    "potential lj 0.0104 3.4 6.5\n"
                    "timestep 0.0002\n"
                    "dump every 5 " + path + " ember_traj\n"
                    "run 10\n"
                    "analyze trajectory " + path + "\n");
  EXPECT_NE(out.str().find("analyzed 2 frames from " + path),
            std::string::npos)
      << out.str();
  // A cold diamond lattice classifies as diamond in every frame.
  const auto frames = analysis::analyze_trajectory(path);
  ASSERT_EQ(frames.size(), 2u);
  for (const auto& fr : frames) {
    EXPECT_EQ(fr.natoms, 64);
    EXPECT_GT(fr.fractions.diamond, 0.9);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ember::app
