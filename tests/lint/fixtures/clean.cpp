// ember_lint self-test fixture: everything below is legal — the linter
// must report zero findings for this file. Never compiled.

#include <atomic>
#include <cstddef>
#include <memory>

namespace fixture {

struct Entry {
  int j;
};

struct Span {
  const Entry* data;
  std::size_t n;
  [[nodiscard]] std::size_t size() const { return n; }
  const Entry& operator[](std::size_t i) const { return data[i]; }
};

struct List {
  [[nodiscard]] Span neighbors(int) const;
};

// Smart-pointer ownership; `new` only inside an allow()ed line.
struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;  // `= delete` is not a naked delete
  Widget& operator=(const Widget&) = delete;
};
std::unique_ptr<Widget> make_widget() { return std::make_unique<Widget>(); }
// ember-lint: allow(naked-new) -- exercising the annotated-escape path.
Widget* leaked_singleton() { return new Widget; }

// A "renewal" identifier must not trip the word-boundary match.
int renewal_delete_me(int renewed) { return renewed; }

// Atomics with explicit orders.
int explicit_orders(std::atomic<int>& a) {
  a.fetch_add(1, std::memory_order_relaxed);
  a.store(2, std::memory_order_release);
  return a.load(std::memory_order_acquire);
}

// Range-for and size()-guarded indexing of neighbor spans.
int iterate_neighbors(const List& nl) {
  int sum = 0;
  const auto nbrs = nl.neighbors(0);
  for (std::size_t m = 0; m < nbrs.size(); ++m) {
    sum += nbrs[m].j;  // guarded by the loop condition
  }
  return sum;
}

// The string "new" inside literals/comments is not code: new delete.
const char* kMessage = "do not new or delete here";

// Span block without an early return is fine.
#define EMBER_OBS_SPAN(name, cat) int ember_span_dummy = 0
int span_block_ok() {
  int result = 0;
  {
    EMBER_OBS_SPAN("stage", "other");
    result = 42;
  }
  return result;
}

// Exhaustive TimerCategory switch without default.
enum class TimerCategory { Pair, Neigh, Comm, Other, Dump };
int exhaustive(TimerCategory c) {
  switch (c) {
    case TimerCategory::Pair: return 0;
    case TimerCategory::Neigh: return 1;
    case TimerCategory::Comm: return 2;
    case TimerCategory::Other: return 3;
    case TimerCategory::Dump: return 4;
  }
  return -1;
}

// Step-loop code may READ files (restarts run off the hot path) and may
// of course build io::Writer requests; only output streams are banned.
struct StepLoop {
  int step;
};
int restart_from_disk(StepLoop& loop) {
  // std::ifstream is fine here; so is read_checkpoint.
  return loop.step;
}

// A switch over an unrelated enum may do whatever it likes.
enum class Color { Red, Green };
int unrelated(Color c) {
  switch (c) {
    case Color::Red: return 0;
    default: return 1;
  }
}

}  // namespace fixture
