// Fixture: comm backend headers are private to src/comm/; everything
// else programs against comm/transport.hpp.
#include "comm/transport.hpp"
#include "comm/communicator.hpp"
#include "comm/socket_transport.hpp"

// ember-lint: allow(comm-backend-include) -- fixture exercising the allow path
#include "comm/communicator.hpp"
