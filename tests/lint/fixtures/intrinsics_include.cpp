// Fixture: x86 intrinsics headers are confined to the per-ISA kernel
// TUs in src/snap/simd/; everything else goes through the runtime
// dispatcher (snap/simd/dispatch.hpp).
#include "snap/simd/dispatch.hpp"
#include <immintrin.h>
#include <x86intrin.h>
#include "emmintrin.h"

// ember-lint: allow(simd-intrinsics-include) -- fixture exercising the allow path
#include <immintrin.h>
