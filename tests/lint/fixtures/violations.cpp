// ember_lint self-test fixture: every block below violates exactly one
// rule. tests/lint/test_ember_lint.py asserts the linter reports each
// (rule, line) pair — this file is never compiled.
//
// NOTE: line numbers matter. If you edit this file, update the expected
// findings table in test_ember_lint.py.

#include <atomic>

namespace fixture {

struct Entry {
  int j;
};

// --- naked-new / naked-delete (lines 18, 20) -------------------------------
void owns_raw_memory() {
  int* p = new int[8];
  p[0] = 1;
  delete[] p;
}

// --- atomic-memory-order (lines 25, 26) ------------------------------------
int implicit_order(std::atomic<int>& a) {
  a.fetch_add(1);
  a.store(7);
  return a.load(std::memory_order_relaxed);  // fine: explicit
}

// --- neighbor-span-index (lines 36, 38) ------------------------------------
struct List {
  const Entry* neighbors(int) const;
};
int index_neighbor_span(const List& nl) {
  const auto nbrs = nl.neighbors(3);
  int sum = nbrs[0].j;  // unchecked: no size() guard dominates
  for (int k = 0; k < 4; ++k) {
    sum += nbrs[k].j;  // unchecked loop bound unrelated to the span
  }
  return sum;
}

// --- obs-span-early-return (line 48) ---------------------------------------
#define EMBER_OBS_SPAN(name, cat) int ember_span_dummy = 0
int early_return_in_span_block(bool flag) {
  {
    EMBER_OBS_SPAN("stage", "other");
    if (flag) return 1;
  }
  return 0;
}

// --- timer-switch-exhaustive (lines 56, 64) --------------------------------
enum class TimerCategory { Pair, Neigh, Comm, Other, Dump };
int missing_case(TimerCategory c) {
  switch (c) {
    case TimerCategory::Pair: return 0;
    case TimerCategory::Neigh: return 1;
    case TimerCategory::Comm: return 2;
  }
  return -1;
}
int has_default(TimerCategory c) {
  switch (c) {
    case TimerCategory::Pair: return 0;
    case TimerCategory::Neigh: return 1;
    case TimerCategory::Comm: return 2;
    case TimerCategory::Other: return 3;
    case TimerCategory::Dump: return 4;
    default: return -1;
  }
}

}  // namespace fixture
