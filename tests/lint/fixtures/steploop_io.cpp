// ember_lint self-test fixture for blocking-io-in-steploop: a driver
// that participates in the step loop (it names StepLoop) but writes
// files directly instead of submitting io::Writer requests. Never
// compiled — the linter must report the (rule, line) pairs asserted in
// test_ember_lint.py.
//
// NOTE: line numbers matter. If you edit this file, update the expected
// findings table in test_ember_lint.py.

#include <cstdio>
#include <fstream>
#include <string>

namespace fixture {

struct StepLoop {
  long step;
};

namespace md {
struct System {};
void write_xyz(const System&, const std::string&);
void write_checkpoint(const System&, const std::string&);
}  // namespace md

// --- blocking-io-in-steploop (lines 29, 31, 34, 36) ------------------------
void dump_inline(StepLoop& loop, const md::System& sys) {
  // An output stream on the stepping thread: the async writer never sees it.
  std::ofstream os("traj.xyz", std::ios::app);
  os << loop.step << '\n';
  std::FILE* f = fopen("traj.bin", "wb");
  static_cast<void>(f);
  // Path-level serializers are just as blocking as a raw stream.
  md::write_xyz(sys, "traj.xyz");
  if (loop.step % 100 == 0) {
    md::write_checkpoint(sys, "state.bin");
  }
}

// Reads stay legal: restarts are not on the hot path.
long restart(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  long step = 0;
  is.read(reinterpret_cast<char*>(&step), sizeof(step));
  return step;
}

void annotated_escape(const md::System& sys) {
  // ember-lint: allow(blocking-io-in-steploop) -- fixture for the
  // annotated escape: a deliberate synchronous debug write.
  md::write_checkpoint(sys, "debug.bin");
}

}  // namespace fixture
