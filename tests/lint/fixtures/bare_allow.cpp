// ember_lint self-test fixture: an allow() annotation without a reason
// must itself be reported. Never compiled.

namespace fixture {

// ember-lint: allow(naked-new)
int* reasonless() { return new int(3); }

}  // namespace fixture
