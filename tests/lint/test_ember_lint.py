#!/usr/bin/env python3
"""Regression tests for scripts/ember_lint.py.

Runs the linter against fixture files with known violations and asserts
the exact (line, rule) findings, the clean fixture stays clean, the
whole src/ tree lints clean, and exit codes behave. Registered in ctest
as EmberLint.SelfTest / EmberLint.SrcClean.
"""

import re
import subprocess
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
LINT = REPO / "scripts" / "ember_lint.py"
FIXTURES = REPO / "tests" / "lint" / "fixtures"

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def run_lint(*paths):
    proc = subprocess.run(
        [sys.executable, str(LINT), *map(str, paths)],
        capture_output=True, text=True, cwd=REPO, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((int(m.group("line")), m.group("rule")))
    return proc.returncode, findings


class EmberLintSelfTest(unittest.TestCase):
    def test_violations_fixture_reports_every_rule(self):
        rc, findings = run_lint(FIXTURES / "violations.cpp")
        self.assertEqual(rc, 1)
        expected = [
            (18, "naked-new"),
            (20, "naked-delete"),
            (25, "atomic-memory-order"),
            (26, "atomic-memory-order"),
            (36, "neighbor-span-index"),
            (38, "neighbor-span-index"),
            (48, "obs-span-early-return"),
            (56, "timer-switch-exhaustive"),
            (64, "timer-switch-exhaustive"),
        ]
        self.assertEqual(findings, expected)

    def test_backend_include_fixture_reports_private_headers(self):
        rc, findings = run_lint(FIXTURES / "backend_include.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [(4, "comm-backend-include"),
                                    (5, "comm-backend-include")])

    def test_intrinsics_include_fixture_reports_confined_headers(self):
        rc, findings = run_lint(FIXTURES / "intrinsics_include.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [(5, "simd-intrinsics-include"),
                                    (6, "simd-intrinsics-include"),
                                    (7, "simd-intrinsics-include")])

    def test_steploop_io_fixture_reports_blocking_output(self):
        rc, findings = run_lint(FIXTURES / "steploop_io.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [(29, "blocking-io-in-steploop"),
                                    (31, "blocking-io-in-steploop"),
                                    (34, "blocking-io-in-steploop"),
                                    (36, "blocking-io-in-steploop")])

    def test_intrinsics_include_allowed_inside_snap_simd(self):
        # The rule keys off the path: the real per-ISA TUs include
        # immintrin.h and must stay clean.
        rc, findings = run_lint(REPO / "src" / "snap" / "simd")
        self.assertEqual((rc, findings), (0, []))

    def test_every_rule_has_fixture_coverage(self):
        _, findings = run_lint(FIXTURES / "violations.cpp",
                               FIXTURES / "bare_allow.cpp",
                               FIXTURES / "backend_include.cpp",
                               FIXTURES / "intrinsics_include.cpp",
                               FIXTURES / "steploop_io.cpp")
        covered = {rule for _, rule in findings}
        listed = subprocess.run(
            [sys.executable, str(LINT), "--list-rules"],
            capture_output=True, text=True, cwd=REPO, check=True).stdout
        all_rules = {line.split()[0] for line in listed.splitlines() if line}
        self.assertEqual(covered, all_rules)

    def test_clean_fixture_is_clean(self):
        rc, findings = run_lint(FIXTURES / "clean.cpp")
        self.assertEqual((rc, findings), (0, []))

    def test_allow_without_reason_is_reported(self):
        rc, findings = run_lint(FIXTURES / "bare_allow.cpp")
        self.assertEqual(rc, 1)
        self.assertEqual(findings, [(6, "naked-new")])

    def test_src_tree_is_clean(self):
        rc, findings = run_lint(REPO / "src")
        self.assertEqual(findings, [])
        self.assertEqual(rc, 0)

    def test_unknown_path_exits_2(self):
        rc, _ = run_lint(REPO / "no" / "such" / "dir")
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
