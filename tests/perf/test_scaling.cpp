// The machine model must reproduce the paper's stated anchor points
// (headline rate, strong/weak scaling efficiencies, Fig. 4 breakdowns,
// Fig. 6 cross-machine ratios) within calibration tolerances.

#include <gtest/gtest.h>

#include "perf/production.hpp"
#include "perf/scaling.hpp"

namespace ember::perf {
namespace {

TEST(ScalingModel, HeadlineTwentyBillionAtomRun) {
  ScalingModel m(MachineModel::summit(), 1.73e6);
  const auto run = m.predict(20e9, 4650);
  // Paper: 6.21 Matom-steps/node-s, 50.0 PFLOPS, 24.9% of peak,
  // 1.47 steps/s.
  EXPECT_NEAR(run.matom_steps_per_node_s(), 6.21, 0.25);
  EXPECT_NEAR(m.pflops(run), 50.0, 4.0);
  EXPECT_NEAR(m.fraction_of_peak(run), 0.249, 0.025);
  EXPECT_NEAR(1.0 / run.step_time(), 1.47, 0.12);
}

TEST(ScalingModel, StrongScalingEfficiencies) {
  ScalingModel m(MachineModel::summit());
  // Paper Fig. 3: 97% (20 G, 972->4650), 82% (1 G, 64->4650),
  // 41% (10 M, 1->512).
  EXPECT_NEAR(m.parallel_efficiency(20e9, 972, 4650), 0.97, 0.04);
  EXPECT_NEAR(m.parallel_efficiency(1e9, 64, 4650), 0.82, 0.05);
  EXPECT_NEAR(m.parallel_efficiency(10e6, 1, 512), 0.41, 0.07);
}

TEST(ScalingModel, Figure4Breakdowns) {
  ScalingModel m(MachineModel::summit());
  const auto b20 = m.predict(20e9, 4650);
  EXPECT_NEAR(b20.compute_fraction(), 0.95, 0.02);
  EXPECT_NEAR(b20.comm_fraction(), 0.04, 0.02);

  const auto b1 = m.predict(1e9, 4650);
  EXPECT_NEAR(b1.compute_fraction(), 0.86, 0.05);
  EXPECT_NEAR(b1.comm_fraction(), 0.12, 0.05);

  const auto b01 = m.predict(1e8, 4650);
  EXPECT_NEAR(b01.compute_fraction(), 0.60, 0.06);
  EXPECT_NEAR(b01.comm_fraction(), 0.35, 0.06);
}

TEST(ScalingModel, WeakScalingShape) {
  ScalingModel m(MachineModel::summit());
  const double per_node = 373248;
  const auto one = m.predict(per_node, 1);
  const auto eight = m.predict(per_node * 8, 8);
  const auto sixty_four = m.predict(per_node * 64, 64);
  const auto big = m.predict(per_node * 4096, 4096);
  // Paper Fig. 5: flat until the rack boundary, small dip 8 -> 64, then
  // ~90% at 4096 vs 1 node.
  EXPECT_NEAR(eight.matom_steps_per_node_s(), one.matom_steps_per_node_s(),
              0.05 * one.matom_steps_per_node_s());
  EXPECT_LT(sixty_four.matom_steps_per_node_s(),
            eight.matom_steps_per_node_s());
  const double eff =
      big.matom_steps_per_node_s() / one.matom_steps_per_node_s();
  EXPECT_NEAR(eff, 0.90, 0.05);
}

TEST(ScalingModel, Figure6MachineRatios) {
  ScalingModel summit(MachineModel::summit());
  ScalingModel frontera(MachineModel::frontera());
  ScalingModel selene(MachineModel::selene());
  ScalingModel perlmutter(MachineModel::perlmutter());

  // Summit ~52x Frontera per node on the 1 G-atom benchmark.
  const double ratio_f = summit.predict(1e9, 256).matom_steps_per_node_s() /
                         frontera.predict(1e9, 256).matom_steps_per_node_s();
  EXPECT_NEAR(ratio_f, 52.0, 6.0);

  // Selene ~1.9x Summit per node.
  const double ratio_s = selene.predict(1e9, 128).matom_steps_per_node_s() /
                         summit.predict(1e9, 128).matom_steps_per_node_s();
  EXPECT_NEAR(ratio_s, 1.9, 0.15);

  // Selene 20 G atoms on 512 nodes: 12.72 Matom-steps/node-s, ~11 PFLOPS.
  const auto sel = selene.predict(20e9, 512);
  EXPECT_NEAR(sel.matom_steps_per_node_s(), 12.72, 0.8);
  EXPECT_NEAR(selene.pflops(sel), 11.1, 1.0);

  // Perlmutter 20 G on 1024 nodes: 6.42 Matom-steps/node-s (~node parity
  // with Summit despite two fewer GPUs).
  const auto perl = perlmutter.predict(20e9, 1024);
  EXPECT_NEAR(perl.matom_steps_per_node_s(), 6.42, 0.5);
}

TEST(ScalingModel, DeepMdComparison) {
  // Paper: 6.21 Matom-steps/node-s is 22.9x the DeepMD record of 0.271.
  ScalingModel m(MachineModel::summit());
  const auto run = m.predict(20e9, 4650);
  EXPECT_NEAR(run.matom_steps_per_node_s() / 0.271, 22.9, 1.5);
}

TEST(ScalingModel, MinNodesMatchesPaperChoices) {
  ScalingModel m(MachineModel::summit());
  // Paper: 1 G atoms first fits on 64 nodes, 20 G on 972 nodes.
  EXPECT_NEAR(m.min_nodes(1.024192512e9), 64, 16);
  EXPECT_NEAR(m.min_nodes(19.683e9), 972, 250);
}

TEST(ScalingModel, CommunicationFractionGrowsUnderStrongScaling) {
  ScalingModel m(MachineModel::summit());
  double prev = 0.0;
  for (int nodes : {64, 256, 1024, 4650}) {
    const double frac = m.predict(1e9, nodes).comm_fraction();
    EXPECT_GE(frac, prev * 0.8);  // monotone growth modulo rack steps
    prev = frac;
  }
  EXPECT_GT(m.predict(1e9, 4650).comm_fraction(),
            m.predict(1e9, 64).comm_fraction());
}

TEST(ProductionModel, TraceMatchesFigure7Shape) {
  ScalingModel m(MachineModel::summit());
  ProductionModel prod(m, ProductionConfig{});
  const auto trace = prod.trace();
  ASSERT_GT(trace.size(), 100u);

  // 24 h of wall time covering ~1 ns of physical time.
  EXPECT_NEAR(trace.back().wall_hours, 24.0, 0.5);
  EXPECT_NEAR(trace.back().sim_ns, 1.0, 0.25);

  // Checkpoint dips: the minimum sampled rate is far below the median.
  double median_rate;
  {
    std::vector<double> rates;
    for (const auto& s : trace) rates.push_back(s.perf_matom_steps_node_s);
    std::sort(rates.begin(), rates.end());
    median_rate = rates[rates.size() / 2];
    EXPECT_LT(rates.front(), 0.5 * median_rate);
  }

  // Temperature schedule: starts at 5000 K and ends at 5500 K.
  EXPECT_DOUBLE_EQ(trace.front().temperature, 5000.0);
  EXPECT_DOUBLE_EQ(trace.back().temperature, 5500.0);

  // Performance rises within the run as BC8 order emerges.
  double early = 0.0, late = 0.0;
  int n_early = 0, n_late = 0;
  for (const auto& s : trace) {
    if (s.checkpoint) continue;
    if (s.wall_hours < 4.0) {
      early += s.perf_matom_steps_node_s;
      ++n_early;
    } else if (s.wall_hours > 20.0) {
      late += s.perf_matom_steps_node_s;
      ++n_late;
    }
  }
  EXPECT_GT(late / n_late, early / n_early);
  EXPECT_GT(trace.back().bc8_fraction, 0.8);
}

}  // namespace
}  // namespace ember::perf
