// Structural properties of the performance model, independent of the
// calibration anchors: monotonicity, limits, and internal consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "perf/production.hpp"
#include "perf/scaling.hpp"

namespace ember::perf {
namespace {

TEST(PerfProperties, StepTimeDecreasesWithNodes) {
  ScalingModel m(MachineModel::summit());
  double prev = 1e300;
  for (const int nodes : {64, 128, 256, 512, 1024, 2048, 4650}) {
    const double t = m.predict(1e9, nodes).step_time();
    EXPECT_LT(t, prev) << nodes;
    prev = t;
  }
}

TEST(PerfProperties, StepTimeIncreasesWithAtoms) {
  ScalingModel m(MachineModel::summit());
  double prev = 0.0;
  for (const double n : {1e8, 3e8, 1e9, 3e9, 1e10}) {
    const double t = m.predict(n, 1024).step_time();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PerfProperties, PerNodeRateIsBoundedBySaturation) {
  ScalingModel m(MachineModel::summit());
  const auto& node = m.machine().node;
  const double cap = node.gpus_per_node * node.rate_max;
  for (const double n : {1e7, 1e9, 2e10}) {
    for (const int nodes : {8, 512, 4650}) {
      EXPECT_LT(m.predict(n, nodes).matom_steps_per_node_s(), cap);
    }
  }
}

TEST(PerfProperties, FractionsSumToOne) {
  ScalingModel m(MachineModel::summit());
  for (const double n : {1e7, 1e9, 2e10}) {
    const auto run = m.predict(n, 972);
    EXPECT_NEAR(run.compute_fraction() + run.comm_fraction() +
                    run.other_fraction(),
                1.0, 1e-12);
  }
}

TEST(PerfProperties, PflopsScalesWithThroughput) {
  ScalingModel m(MachineModel::summit(), 2.0e6);
  const auto a = m.predict(1e9, 512);
  const auto b = m.predict(1e9, 1024);
  const double thr_a = a.natoms / a.step_time();
  const double thr_b = b.natoms / b.step_time();
  EXPECT_NEAR(m.pflops(b) / m.pflops(a), thr_b / thr_a, 1e-12);
}

TEST(PerfProperties, RackBoundaryIsVisibleInCommTime) {
  ScalingModel m(MachineModel::summit());
  const double per_node = 373248;
  const auto below = m.predict(per_node * 18, 18);
  const auto above = m.predict(per_node * 19, 19);
  // Crossing the rack boundary raises comm time (bandwidth drop).
  EXPECT_GT(above.t_comm, 1.5 * below.t_comm);
  // But compute is untouched.
  EXPECT_NEAR(above.t_compute, below.t_compute, 1e-12);
}

TEST(PerfProperties, MinNodesIsMonotoneInAtoms) {
  ScalingModel m(MachineModel::summit());
  int prev = 0;
  for (const double n : {1e6, 1e8, 1e9, 1e10, 2e10}) {
    const int mn = m.min_nodes(n);
    EXPECT_GE(mn, prev);
    prev = mn;
  }
  EXPECT_EQ(m.min_nodes(1.0), 1);
}

TEST(PerfProperties, AllMachinesProduceFiniteSanePredictions) {
  for (const auto& mm :
       {MachineModel::summit(), MachineModel::selene(),
        MachineModel::perlmutter(), MachineModel::frontera()}) {
    ScalingModel m(mm);
    const auto run = m.predict(1e9, 256);
    EXPECT_TRUE(std::isfinite(run.step_time()));
    EXPECT_GT(run.step_time(), 0.0);
    EXPECT_GT(m.fraction_of_peak(run), 0.0);
    EXPECT_LT(m.fraction_of_peak(run), 1.0);
  }
}

TEST(ProductionProperties, Bc8FractionIsMonotoneAndBounded) {
  ScalingModel m(MachineModel::summit());
  ProductionModel prod(m, ProductionConfig{});
  double prev = -1.0;
  for (double t = 0.0; t <= 1.2; t += 0.05) {
    const double f = prod.bc8_fraction(t);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prod.bc8_fraction(0.1), 0.0);  // before onset
}

TEST(ProductionProperties, CheckpointCadenceMatchesConfig) {
  ScalingModel m(MachineModel::summit());
  ProductionConfig cfg;
  cfg.checkpoint_every_hours = 3.0;
  ProductionModel prod(m, cfg);
  const auto trace = prod.trace();
  int checkpoints = 0;
  for (const auto& s : trace) {
    if (s.checkpoint) ++checkpoints;
  }
  EXPECT_NEAR(checkpoints, 8, 1);  // 24 h / 3 h
}

}  // namespace
}  // namespace ember::perf
