// Injected-fault tests for the src/check invariant layer: each test
// breaks one invariant on purpose (NaN force, asymmetric neighbor pair,
// ghost-count mismatch, energy drift) and asserts the checked build
// reports it with the offending atom index and stage name.
//
// The check_* functions are exercised directly in every configuration;
// the StepLoop stage-boundary hooks additionally fire end-to-end when
// the tree is configured with -DEMBER_CHECKED=ON (the CI sanitizer
// matrix runs that way).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include "check/invariants.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "md/simulation.hpp"
#include "md/system.hpp"
#include "ref/pair_lj.hpp"

namespace ember::md {

// Test-only backdoor declared as a friend in NeighborList: lets the
// fault-injection tests corrupt a freshly built list.
struct NeighborListTestAccess {
  static std::vector<NeighborList::Entry>& entries(NeighborList& nl) {
    return nl.entries_;
  }
};

}  // namespace ember::md

namespace ember::check {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

md::System make_crystal(int cells = 2) {
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = cells;
  return md::build_lattice(spec, 39.948);
}

// ---- finite scans ---------------------------------------------------------

TEST(CheckFinite, PassesOnFiniteArrays) {
  const std::vector<Vec3> f = {{1, 2, 3}, {-4, 5, -6}};
  EXPECT_NO_THROW(check_finite(f, 2, "force", "force", 7));
}

TEST(CheckFinite, ReportsNaNWithAtomIndexAndStage) {
  std::vector<Vec3> f(5);
  f[3] = {0.0, kNaN, 0.0};
  try {
    check_finite(f, 5, "force", "force", 42);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_STREQ(e.stage().c_str(), "force");
    EXPECT_EQ(e.step(), 42);
    EXPECT_NE(std::string(e.what()).find("atom 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("force"), std::string::npos);
  }
}

TEST(CheckFinite, ReportsInfinitePositions) {
  std::vector<Vec3> x(3);
  x[0] = {kInf, 0.0, 0.0};
  EXPECT_THROW(check_finite(x, 3, "position", "integrate", 0),
               InvariantViolation);
}

TEST(CheckFinite, IgnoresGhostTailBeyondCount) {
  std::vector<Vec3> f(4);
  f[3] = {kNaN, 0.0, 0.0};  // ghost slot: not scanned
  EXPECT_NO_THROW(check_finite(f, 3, "force", "force", 0));
}

// ---- neighbor-list validation ---------------------------------------------

TEST(CheckNeighborList, FreshListPasses) {
  md::System sys = make_crystal();
  md::NeighborList nl(8.0, 0.4);
  nl.build(sys);
  EXPECT_NO_THROW(check_neighbor_list(nl, sys, "neigh", 0));
}

TEST(CheckNeighborList, DetectsAsymmetricPair) {
  md::System sys = make_crystal();
  md::NeighborList nl(8.0, 0.4);
  nl.build(sys);
  // Break symmetry: redirect one entry of atom 0's row to a different
  // local atom, so the mirror entry no longer exists.
  auto& entries = md::NeighborListTestAccess::entries(nl);
  ASSERT_FALSE(entries.empty());
  const int victim = entries[0].j;
  entries[0].j = (victim + 1) % sys.nlocal() == 0
                     ? (victim + 2) % sys.nlocal()
                     : (victim + 1) % sys.nlocal();
  try {
    check_neighbor_list(nl, sys, "neigh", 9);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_STREQ(e.stage().c_str(), "neigh");
    EXPECT_NE(std::string(e.what()).find("asymmetric"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("atom 0"), std::string::npos)
        << e.what();
  }
}

TEST(CheckNeighborList, DetectsOutOfRangeIndex) {
  md::System sys = make_crystal();
  md::NeighborList nl(8.0, 0.4);
  nl.build(sys);
  md::NeighborListTestAccess::entries(nl)[0].j = sys.ntotal() + 17;
  try {
    check_neighbor_list(nl, sys, "neigh", 3);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("outside"), std::string::npos)
        << e.what();
  }
}

TEST(CheckNeighborList, DetectsSelfPairWithZeroShift) {
  md::System sys = make_crystal();
  md::NeighborList nl(8.0, 0.4);
  nl.build(sys);
  auto& entries = md::NeighborListTestAccess::entries(nl);
  entries[0].j = 0;  // first row belongs to atom 0
  entries[0].shift = Vec3{};
  EXPECT_THROW(check_neighbor_list(nl, sys, "neigh", 0), InvariantViolation);
}

// ---- ghost bookkeeping ----------------------------------------------------

TEST(CheckGhosts, SerialSystemHasNone) {
  md::System sys = make_crystal();
  EXPECT_NO_THROW(check_no_ghosts(sys, "exchange", 0));
  sys.add_ghost({1.0, 2.0, 3.0}, 999);
  try {
    check_no_ghosts(sys, "exchange", 5);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_STREQ(e.stage().c_str(), "exchange");
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

TEST(CheckGhosts, LegBookkeepingMustMatchHalo) {
  const int legs_ok[6] = {3, 2, 0, 0, 1, 0};
  EXPECT_NO_THROW(check_ghost_legs(legs_ok, 6, "exchange", 0));
  const int legs_bad[6] = {3, 2, 0, 0, 1, 1};  // claims 7, system holds 6
  EXPECT_THROW(check_ghost_legs(legs_bad, 6, "exchange", 0),
               InvariantViolation);
  const int legs_neg[6] = {3, -1, 0, 0, 1, 0};
  EXPECT_THROW(check_ghost_legs(legs_neg, 3, "exchange", 0),
               InvariantViolation);
}

TEST(CheckConservation, MismatchedAtomCountThrows) {
  EXPECT_NO_THROW(check_atom_conservation(1000, 1000, "exchange", 0));
  try {
    check_atom_conservation(999, 1000, "exchange", 12);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("999"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1000"), std::string::npos);
  }
}

// ---- drift tripwire -------------------------------------------------------

TEST(DriftTripwire, TripsBeyondTolerance) {
  DriftTripwire wire;
  EXPECT_FALSE(wire.armed());
  wire.observe(1e9, 0);  // disarmed: anything goes
  wire.arm(-250.0, 1e-4);
  ASSERT_TRUE(wire.armed());
  EXPECT_NO_THROW(wire.observe(-250.0 + 0.02, 1));   // within 250*1e-4
  EXPECT_THROW(wire.observe(-250.0 + 0.05, 2), InvariantViolation);
  EXPECT_THROW(wire.observe(kNaN, 3), InvariantViolation);
}

TEST(DriftTripwire, ToleranceComesFromEnvironment) {
  ::setenv("EMBER_CHECK_DRIFT_TOL", "2.5e-4", 1);
  EXPECT_DOUBLE_EQ(drift_tolerance_from_env(), 2.5e-4);
  ::setenv("EMBER_CHECK_DRIFT_TOL", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(drift_tolerance_from_env(), 0.0);
  ::setenv("EMBER_CHECK_DRIFT_TOL", "-1e-3", 1);
  EXPECT_DOUBLE_EQ(drift_tolerance_from_env(), 0.0);
  ::unsetenv("EMBER_CHECK_DRIFT_TOL");
  EXPECT_DOUBLE_EQ(drift_tolerance_from_env(), 0.0);
}

// ---- StepLoop stage-boundary hooks (checked builds only) ------------------
//
// These run the real pipeline and prove the hooks fire where the fault
// happens. They are compiled only under EMBER_CHECKED because the
// default build compiles the hooks out (that IS the contract).
#if defined(EMBER_CHECKED)

// A potential that turns one force component into NaN after a set number
// of calls — the classic "kernel went bad mid-run" failure.
class NaNAfter : public md::PairPotential {
 public:
  NaNAfter(std::shared_ptr<md::PairPotential> inner, int healthy_calls)
      : inner_(std::move(inner)), remaining_(healthy_calls) {}

  [[nodiscard]] double cutoff() const override { return inner_->cutoff(); }
  [[nodiscard]] const char* name() const override { return "nan-after"; }

  md::EnergyVirial compute(const md::ComputeContext& ctx, md::System& sys,
                           const md::NeighborList& nl) override {
    const md::EnergyVirial ev = inner_->compute(ctx, sys, nl);
    if (remaining_-- <= 0) sys.f[1].y = kNaN;
    return ev;
  }

 private:
  std::shared_ptr<md::PairPotential> inner_;
  int remaining_;
};

md::Simulation make_checked_sim(std::shared_ptr<md::PairPotential> pot) {
  md::System sys = make_crystal();
  Rng rng(7);
  sys.thermalize(40.0, rng);
  return md::Simulation(std::move(sys), std::move(pot), 0.002, 0.4, 7);
}

TEST(CheckedStepLoop, NaNForceAbortsTheRunWithStageAndAtom) {
  auto lj = std::make_shared<ref::PairLJ>(0.0104, 3.4, 8.0);
  md::Simulation sim = make_checked_sim(
      std::make_shared<NaNAfter>(lj, /*healthy_calls=*/3));
  try {
    sim.run(10);
    FAIL() << "expected InvariantViolation from the force-stage hook";
  } catch (const InvariantViolation& e) {
    EXPECT_STREQ(e.stage().c_str(), "force");
    EXPECT_NE(std::string(e.what()).find("atom 1"), std::string::npos)
        << e.what();
  }
}

TEST(CheckedStepLoop, HealthyRunPassesEveryHook) {
  auto lj = std::make_shared<ref::PairLJ>(0.0104, 3.4, 8.0);
  md::Simulation sim = make_checked_sim(lj);
  EXPECT_NO_THROW(sim.run(25));
}

TEST(CheckedStepLoop, DriftTripwireArmsFromEnvAndTrips) {
  // A thermostat injects energy on purpose; with a tiny NVE tolerance
  // armed, the tripwire must fire within a few steps.
  ::setenv("EMBER_CHECK_DRIFT_TOL", "1e-12", 1);
  auto lj = std::make_shared<ref::PairLJ>(0.0104, 3.4, 8.0);
  md::Simulation sim = make_checked_sim(lj);
  sim.integrator().set_langevin(md::LangevinParams{300.0, 0.1});
  EXPECT_THROW(sim.run(50), InvariantViolation);
  ::unsetenv("EMBER_CHECK_DRIFT_TOL");
}

#endif  // EMBER_CHECKED

}  // namespace
}  // namespace ember::check
