// Reference-potential validation: finite-difference forces for LJ, Morse
// and Tersoff, plus physical sanity of the Tersoff carbon parameterization.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "ref/pair_eam.hpp"
#include "ref/pair_lj.hpp"
#include "ref/pair_morse.hpp"
#include "ref/pair_tersoff.hpp"

namespace ember::ref {
namespace {

using md::Box;
using md::LatticeKind;
using md::LatticeSpec;
using md::NeighborList;
using md::System;

double energy_of(md::PairPotential& pot, System& sys) {
  NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys);
  sys.zero_forces();
  return pot.compute(sys, nl).energy;
}

void check_fd_forces(md::PairPotential& pot, System& sys, double tol) {
  NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys);
  sys.zero_forces();
  pot.compute(sys, nl);
  std::vector<Vec3> f(sys.f.begin(), sys.f.begin() + sys.nlocal());

  const double h = 1e-6;
  for (int i = 0; i < std::min(6, sys.nlocal()); ++i) {
    for (int d = 0; d < 3; ++d) {
      const double orig = sys.x[i][d];
      sys.x[i][d] = orig + h;
      const double ep = energy_of(pot, sys);
      sys.x[i][d] = orig - h;
      const double em = energy_of(pot, sys);
      sys.x[i][d] = orig;
      const double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(f[i][d], fd, tol * std::max(1.0, std::abs(fd)))
          << pot.name() << " atom " << i << " dim " << d;
    }
  }
}

System random_carbonish(std::uint64_t seed, int n = 40) {
  Rng rng(seed);
  Box box(9.0, 9.5, 10.0);
  return md::random_packing(box, n, 1.25, 12.011, rng);
}

TEST(PairLJ, ForcesMatchFiniteDifference) {
  PairLJ pot(0.01, 3.0, 7.0);
  auto sys = random_carbonish(1);
  check_fd_forces(pot, sys, 1e-5);
}

TEST(PairLJ, DimerMinimumAtR0) {
  // LJ minimum at 2^(1/6) sigma.
  PairLJ pot(0.01, 3.0, 9.0);
  Box box(30, 30, 30, {false, false, false});
  const double rmin = std::pow(2.0, 1.0 / 6.0) * 3.0;
  for (double dr : {-0.2, 0.2}) {
    System at_min(box, 12.011);
    at_min.add_atom({10, 10, 10});
    at_min.add_atom({10 + rmin, 10, 10});
    System off(box, 12.011);
    off.add_atom({10, 10, 10});
    off.add_atom({10 + rmin + dr, 10, 10});
    EXPECT_LT(energy_of(pot, at_min), energy_of(pot, off));
  }
}

TEST(PairMorse, ForcesMatchFiniteDifference) {
  PairMorse pot(0.3, 1.5, 2.2, 6.5);
  auto sys = random_carbonish(2);
  check_fd_forces(pot, sys, 1e-5);
}

TEST(PairMorse, DimerBindingEnergy) {
  PairMorse pot(0.35, 1.4, 2.2, 9.0);
  Box box(30, 30, 30, {false, false, false});
  System dimer(box, 12.011);
  dimer.add_atom({10, 10, 10});
  dimer.add_atom({12.2, 10, 10});
  // At r0 the well depth is -D0 (minus the cutoff shift, small here).
  EXPECT_NEAR(energy_of(pot, dimer), -0.35, 0.01);
}

TEST(PairTersoff, ScalarIngredients) {
  PairTersoff pot;
  const auto& p = pot.params();
  EXPECT_DOUBLE_EQ(pot.fc(1.0), 1.0);
  EXPECT_DOUBLE_EQ(pot.fc(p.R + p.D + 0.01), 0.0);
  EXPECT_NEAR(pot.fc(p.R), 0.5, 1e-12);
  // g has its minimum at cos(theta) = h.
  EXPECT_LT(pot.g_theta(p.h), pot.g_theta(p.h + 0.2));
  EXPECT_LT(pot.g_theta(p.h), pot.g_theta(p.h - 0.2));
  EXPECT_NEAR(pot.g_theta_d(p.h), 0.0, 1e-10);
  // b decreases with zeta (more neighbors weaken each bond).
  EXPECT_DOUBLE_EQ(pot.bij(0.0), 1.0);
  EXPECT_GT(pot.bij(0.5), pot.bij(2.0));
  // db/dzeta matches finite differences.
  const double z = 0.8;
  const double h = 1e-7;
  EXPECT_NEAR(pot.bij_d(z), (pot.bij(z + h) - pot.bij(z - h)) / (2 * h),
              1e-6);
}

TEST(PairTersoff, ForcesMatchFiniteDifferenceDense) {
  PairTersoff pot;
  // Thermally-perturbed diamond: realistic bonded environment.
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 2;
  System sys = md::build_lattice(spec, 12.011);
  Rng rng(3);
  md::perturb(sys, 0.08, rng);
  check_fd_forces(pot, sys, 2e-5);
}

TEST(PairTersoff, ForcesMatchFiniteDifferenceDisordered) {
  PairTersoff pot;
  auto sys = random_carbonish(4, 30);
  check_fd_forces(pot, sys, 2e-5);
}

TEST(PairTersoff, DiamondCohesiveEnergy) {
  // Tersoff (1988) carbon: diamond cohesive energy ~ -7.37 eV/atom near
  // a0 = 3.566 A.
  PairTersoff pot;
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.5656;
  spec.nx = spec.ny = spec.nz = 2;
  System sys = md::build_lattice(spec, 12.011);
  const double e_per_atom = energy_of(pot, sys) / sys.nlocal();
  EXPECT_NEAR(e_per_atom, -7.37, 0.08);
}

TEST(PairTersoff, DiamondLatticeConstantIsAMinimum) {
  PairTersoff pot;
  auto energy_at = [&](double a) {
    LatticeSpec spec;
    spec.kind = LatticeKind::Diamond;
    spec.a = a;
    spec.nx = spec.ny = spec.nz = 2;
    System sys = md::build_lattice(spec, 12.011);
    return energy_of(pot, sys);
  };
  const double e0 = energy_at(3.5656);
  EXPECT_LT(e0, energy_at(3.48));
  EXPECT_LT(e0, energy_at(3.65));
}

TEST(PairTersoff, VirialMatchesEnergyVolumeDerivative) {
  // W = -3V dE/dV under uniform scaling: verify against finite
  // differences of the energy of a scaled configuration.
  PairTersoff pot;
  LatticeSpec spec;
  spec.kind = LatticeKind::Diamond;
  spec.a = 3.45;  // compressed: non-zero pressure
  spec.nx = spec.ny = spec.nz = 2;
  System sys = md::build_lattice(spec, 12.011);

  NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys);
  sys.zero_forces();
  const auto ev = pot.compute(sys, nl);

  auto energy_scaled = [&](double s) {
    LatticeSpec sp = spec;
    sp.a = spec.a * s;
    System scaled = md::build_lattice(sp, 12.011);
    return energy_of(pot, scaled);
  };
  const double h = 1e-5;
  const double dEds = (energy_scaled(1 + h) - energy_scaled(1 - h)) / (2 * h);
  // E(s) with V = s^3 V0: dE/ds = 3 V0 s^2 dE/dV -> at s=1, W = -dE/ds.
  EXPECT_NEAR(ev.virial, -dEds, 5e-3 * std::abs(dEds));
}

TEST(PairEam, ScalarIngredientsAreSmoothAtCutoffs) {
  PairEam pot;
  const auto& p = pot.params();
  EXPECT_DOUBLE_EQ(pot.density_fn(p.d), 0.0);
  EXPECT_DOUBLE_EQ(pot.pair_fn(p.c), 0.0);
  // Quadratic cutoff factors: first derivatives vanish too.
  const double h = 1e-7;
  EXPECT_NEAR((pot.density_fn(p.d - h) - pot.density_fn(p.d)) / h, 0.0, 1e-5);
  EXPECT_NEAR((pot.pair_fn(p.c - h) - pot.pair_fn(p.c)) / h, 0.0, 1e-4);
  EXPECT_LT(pot.embed_fn(4.0), pot.embed_fn(1.0));  // deeper embedding
}

TEST(PairEam, ForcesMatchFiniteDifference) {
  PairEam pot;
  // Iron-like bcc with thermal disorder (FS iron parameterization).
  LatticeSpec spec;
  spec.kind = LatticeKind::Bcc;
  spec.a = 2.8665;
  spec.nx = spec.ny = spec.nz = 3;
  System sys = md::build_lattice(spec, 55.845);
  Rng rng(7);
  md::perturb(sys, 0.1, rng);
  check_fd_forces(pot, sys, 2e-5);
}

TEST(PairEam, BccIronCohesionAndLatticeConstant) {
  PairEam pot;
  auto energy_at = [&](double a) {
    LatticeSpec spec;
    spec.kind = LatticeKind::Bcc;
    spec.a = a;
    spec.nx = spec.ny = spec.nz = 3;
    System sys = md::build_lattice(spec, 55.845);
    return energy_of(pot, sys) / sys.nlocal();
  };
  // Finnis-Sinclair iron: cohesive energy ~ -4.28 eV/atom at a0 = 2.8665.
  const double e0 = energy_at(2.8665);
  EXPECT_NEAR(e0, -4.28, 0.1);
  EXPECT_LT(e0, energy_at(2.75));
  EXPECT_LT(e0, energy_at(3.0));
}

TEST(PairEam, EmbeddingIsManyBody) {
  // The defining EAM property: energy is NOT pairwise additive. Compare
  // a trimer against the sum of its three isolated dimers.
  PairEam pot;
  Box box(30, 30, 30, {false, false, false});
  const double r = 2.6;
  auto energy_of_atoms = [&](const std::vector<Vec3>& pos) {
    System sys(box, 55.845);
    for (const auto& p : pos) sys.add_atom(p);
    return energy_of(pot, sys);
  };
  const Vec3 a{10, 10, 10}, b{10 + r, 10, 10}, c{10 + r / 2, 10 + r * 0.866, 10};
  const double trimer = energy_of_atoms({a, b, c});
  const double dimers = energy_of_atoms({a, b}) +
                        energy_of_atoms({b, c}) +
                        energy_of_atoms({a, c});
  EXPECT_GT(std::abs(trimer - dimers), 0.05);
}

TEST(PairEam, RejectsGhostedSystems) {
  PairEam pot;
  LatticeSpec spec;
  spec.kind = LatticeKind::Bcc;
  spec.a = 2.8665;
  spec.nx = spec.ny = spec.nz = 2;
  System sys = md::build_lattice(spec, 55.845);
  sys.add_ghost({0.1, 0.1, 0.1}, 999);
  NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys, true);
  sys.zero_forces();
  EXPECT_THROW(pot.compute(sys, nl), Error);
}

}  // namespace
}  // namespace ember::ref
