// The eight TestSNAP kernel variants must all compute identical forces;
// the optimization progression must actually be a progression.

#include <gtest/gtest.h>

#include "snap/testsnap.hpp"

namespace ember::snap {
namespace {

class TestSnapVariants : public ::testing::TestWithParam<int> {};

TEST_P(TestSnapVariants, AllVariantsAgreeWithBaseline) {
  SnapParams p;
  p.twojmax = GetParam();
  p.rcut = 4.7;
  TestSnap ts(p, 24, 20, 7);

  ts.run(TestSnapVariant::V0_Baseline);
  std::vector<Vec3> ref(ts.forces().begin(), ts.forces().end());
  double fscale = 0.0;
  for (const auto& f : ref) fscale = std::max(fscale, f.norm());

  for (const auto v : kAllTestSnapVariants) {
    ts.run(v);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(ts.forces()[i][d], ref[i][d], 1e-9 * std::max(1.0, fscale))
            << to_string(v) << " atom " << i << " dim " << d;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoJmax, TestSnapVariants,
                         ::testing::Values(2, 4, 8, 14));

TEST(TestSnapTiming, AdjointBeatsBaseline) {
  // The paper's headline algorithmic claim, on any hardware: the adjoint
  // refactorization removes the O(J^5) per-neighbor work.
  SnapParams p;
  p.twojmax = 8;
  TestSnap ts(p, 100, 26, 11);
  const double t0 = ts.grind_time(TestSnapVariant::V0_Baseline, 2);
  const double t3 = ts.grind_time(TestSnapVariant::V3_Adjoint, 2);
  EXPECT_LT(t3, 0.7 * t0);
}

TEST(TestSnapTiming, HalfRangeBeatsFullRange) {
  SnapParams p;
  p.twojmax = 8;
  TestSnap ts(p, 100, 26, 13);
  const double t4 = ts.grind_time(TestSnapVariant::V4_Fused, 2);
  const double t5 = ts.grind_time(TestSnapVariant::V5_HalfMb, 2);
  EXPECT_LT(t5, t4);
}

TEST(TestSnapTiming, ProgressionEndsFasterThanItStarts) {
  SnapParams p;
  p.twojmax = 8;
  TestSnap ts(p, 60, 26, 17);
  const double t0 = ts.grind_time(TestSnapVariant::V0_Baseline, 2);
  const double t7 = ts.grind_time(TestSnapVariant::V7_CachedCk, 2);
  EXPECT_LT(t7, 0.5 * t0);
}

}  // namespace
}  // namespace ember::snap
