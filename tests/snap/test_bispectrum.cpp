// Property tests of the bispectrum kernel: recursion vs closed form,
// rotation and permutation invariance, cutoff smoothness, bzero.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "snap/bispectrum.hpp"
#include "snap/wigner.hpp"

namespace ember::snap {
namespace {

std::vector<Vec3> random_neighbors(Rng& rng, int n, double rlo, double rhi) {
  std::vector<Vec3> rij;
  rij.reserve(n);
  while (static_cast<int>(rij.size()) < n) {
    Vec3 r{rng.uniform(-rhi, rhi), rng.uniform(-rhi, rhi),
           rng.uniform(-rhi, rhi)};
    const double d = r.norm();
    if (d > rlo && d < rhi * 0.98) rij.push_back(r);
  }
  return rij;
}

// Apply rotation matrix (row-major 3x3) to a vector.
Vec3 rotate(const double R[9], const Vec3& v) {
  return {R[0] * v.x + R[1] * v.y + R[2] * v.z,
          R[3] * v.x + R[4] * v.y + R[5] * v.z,
          R[6] * v.x + R[7] * v.y + R[8] * v.z};
}

// Random rotation from three Euler-like Givens rotations.
void random_rotation(Rng& rng, double R[9]) {
  const double a = rng.uniform(0.0, 2 * M_PI);
  const double b = rng.uniform(0.0, M_PI);
  const double c = rng.uniform(0.0, 2 * M_PI);
  const double ca = std::cos(a), sa = std::sin(a);
  const double cb = std::cos(b), sb = std::sin(b);
  const double cc = std::cos(c), sc = std::sin(c);
  // Z(a) * Y(b) * Z(c)
  R[0] = ca * cb * cc - sa * sc;
  R[1] = -ca * cb * sc - sa * cc;
  R[2] = ca * sb;
  R[3] = sa * cb * cc + ca * sc;
  R[4] = -sa * cb * sc + ca * cc;
  R[5] = sa * sb;
  R[6] = -sb * cc;
  R[7] = sb * sc;
  R[8] = cb;
}

TEST(Bispectrum, RecursionMatchesClosedFormWigner) {
  SnapParams p;
  p.twojmax = 8;
  p.rcut = 4.7;
  p.switch_flag = false;  // fc = 1 so utot of one neighbor is the bare U
  p.wself = 0.0;          // no self term
  Bispectrum bi(p);

  const Vec3 rij{1.2, -0.8, 2.1};
  bi.compute_ui(std::span<const Vec3>(&rij, 1), {});

  const auto ck = map_to_sphere(rij, p.rcut, p.rfac0, p.rmin0, false);
  for (int j = 0; j <= p.twojmax; ++j) {
    const auto ref = wigner_matrix(j, ck.a, ck.b);
    const int n = j + 1;
    for (int ma = 0; ma < n; ++ma) {
      for (int mb = 0; mb < n; ++mb) {
        const Cplx got = bi.utot()[bi.index().u_index(j, ma, mb)];
        EXPECT_NEAR(got.re, ref[ma * n + mb].re, 1e-12)
            << "j=" << j << " ma=" << ma << " mb=" << mb;
        EXPECT_NEAR(got.im, ref[ma * n + mb].im, 1e-12);
      }
    }
  }
}

class BispectrumInvariance : public ::testing::TestWithParam<int> {};

TEST_P(BispectrumInvariance, RotationInvariant) {
  const int twojmax = GetParam();
  SnapParams p;
  p.twojmax = twojmax;
  p.rcut = 4.7;
  Bispectrum bi(p);

  Rng rng(42 + twojmax);
  const auto rij = random_neighbors(rng, 12, 0.8, p.rcut);

  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  std::vector<double> b0(bi.blist().begin(), bi.blist().end());

  for (int trial = 0; trial < 3; ++trial) {
    double R[9];
    random_rotation(rng, R);
    std::vector<Vec3> rot(rij.size());
    for (std::size_t k = 0; k < rij.size(); ++k) rot[k] = rotate(R, rij[k]);
    bi.compute_ui(rot, {});
    bi.compute_zi();
    bi.compute_bi();
    for (int l = 0; l < bi.num_b(); ++l) {
      EXPECT_NEAR(bi.blist()[l], b0[l],
                  1e-9 * std::max(1.0, std::abs(b0[l])))
          << "component " << l << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoJmax, BispectrumInvariance,
                         ::testing::Values(2, 4, 6, 8));

TEST(Bispectrum, PermutationInvariant) {
  SnapParams p;
  p.twojmax = 6;
  Bispectrum bi(p);
  Rng rng(5);
  auto rij = random_neighbors(rng, 10, 0.8, p.rcut);

  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  std::vector<double> b0(bi.blist().begin(), bi.blist().end());

  // Reverse the neighbor order.
  std::reverse(rij.begin(), rij.end());
  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], b0[l], 1e-10 * std::max(1.0, std::abs(b0[l])));
  }
}

TEST(Bispectrum, ComponentsAreReal) {
  // The imaginary part of Z : U* must cancel; check via the z elements'
  // contribution directly by comparing against an explicitly symmetrized
  // sum (we only verify B is insensitive to conjugating the neighbor set
  // through z -> -z mirror, which flips the imaginary parts).
  SnapParams p;
  p.twojmax = 8;
  Bispectrum bi(p);
  Rng rng(9);
  auto rij = random_neighbors(rng, 8, 0.8, p.rcut);
  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_TRUE(std::isfinite(bi.blist()[l]));
  }
  // Mirror symmetry z -> -z is a rotation by pi about x composed with a
  // parity flip; bispectrum components are parity even, so B must match.
  std::vector<Vec3> mirrored;
  mirrored.reserve(rij.size());
  for (const auto& r : rij) mirrored.push_back({r.x, r.y, -r.z});
  std::vector<double> b0(bi.blist().begin(), bi.blist().end());
  bi.compute_ui(mirrored, {});
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], b0[l], 1e-9 * std::max(1.0, std::abs(b0[l])));
  }
}

TEST(Bispectrum, NeighborContributionVanishesAtCutoff) {
  SnapParams p;
  p.twojmax = 8;
  p.rcut = 4.0;
  Bispectrum bi(p);
  Rng rng(12);
  auto rij = random_neighbors(rng, 6, 0.8, p.rcut);

  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  std::vector<double> b0(bi.blist().begin(), bi.blist().end());

  // Add a neighbor just inside the cutoff: B must barely change.
  auto with_extra = rij;
  with_extra.push_back({p.rcut - 1e-7, 0.0, 0.0});
  bi.compute_ui(with_extra, {});
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], b0[l], 1e-8 * std::max(1.0, std::abs(b0[l])));
  }
}

TEST(Bispectrum, BzeroSubtractsIsolatedAtom) {
  SnapParams p;
  p.twojmax = 6;
  p.bzero_flag = true;
  Bispectrum bi(p);
  // Isolated atom: all components must be exactly zero after subtraction.
  bi.compute_ui({}, {});
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], 0.0, 1e-12);
  }
}

TEST(Bispectrum, WeightsScaleContributions) {
  // Two identical neighbors with weight 1 must equal one neighbor with
  // weight 2 (U accumulation is linear in the weighted density).
  SnapParams p;
  p.twojmax = 4;
  Bispectrum bi(p);
  const Vec3 r{1.5, 0.3, -0.9};
  const std::vector<Vec3> two{r, r};
  const std::vector<double> w1{1.0, 1.0};
  bi.compute_ui(two, w1);
  bi.compute_zi();
  bi.compute_bi();
  std::vector<double> b_two(bi.blist().begin(), bi.blist().end());

  const std::vector<Vec3> one{r};
  const std::vector<double> w2{2.0};
  bi.compute_ui(one, w2);
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], b_two[l], 1e-10 * std::max(1.0, std::abs(b_two[l])));
  }
}

TEST(Bispectrum, FlopEstimatesArePositiveAndOrdered) {
  SnapParams p8;
  p8.twojmax = 8;
  SnapParams p14;
  p14.twojmax = 14;
  Bispectrum b8(p8);
  Bispectrum b14(p14);
  EXPECT_GT(b8.flops_yi(), b8.flops_ui(1));
  // O(J^7) growth: 2J=14 coupling sweep must dwarf 2J=8's.
  EXPECT_GT(b14.flops_yi() / b8.flops_yi(), 8.0);
  EXPECT_GT(b8.flops_adjoint_atom(26), 0.0);
  // Baseline dB per neighbor costs far more than adjoint dE per neighbor.
  EXPECT_GT(b8.flops_dbidrj(), 5.0 * b8.flops_deidrj());
}

}  // namespace
}  // namespace ember::snap
