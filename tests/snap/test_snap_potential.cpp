// Tests of SNAP as an MD potential: path equivalence, periodic-system
// forces, NVE stability, model serialization, and the adjoint energy
// identity.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "snap/snap_potential.hpp"

namespace ember::snap {
namespace {

SnapModel tiny_model(int twojmax, std::uint64_t seed) {
  SnapParams p;
  p.twojmax = twojmax;
  p.rcut = 2.6;
  p.bzero_flag = true;
  SnapModel m;
  m.params = p;
  Bispectrum bi(p);
  Rng rng(seed);
  m.beta.resize(bi.num_b());
  // Small coefficients: keeps the potential gentle enough for NVE tests.
  for (auto& b : m.beta) b = 0.02 * rng.uniform(-1.0, 1.0);
  m.beta0 = -1.0;
  return m;
}

md::System perturbed_diamond(int reps, double sigma, std::uint64_t seed) {
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = reps;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(seed);
  md::perturb(sys, sigma, rng);
  return sys;
}

TEST(SnapPotential, AdjointEnergyIdentity) {
  // energy_from_yi must equal the explicit beta . B sum.
  SnapParams p;
  p.twojmax = 8;
  p.rcut = 3.4;
  Bispectrum bi(p);
  Rng rng(5);
  std::vector<Vec3> rij;
  for (int k = 0; k < 14; ++k) {
    Vec3 r{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    if (r.norm() > 0.9 && r.norm() < p.rcut * 0.95) rij.push_back(r);
  }
  std::vector<double> beta(SnapIndex(p.twojmax).num_b() == 55 ? 55 : 0);
  for (auto& b : beta) b = rng.uniform(-1, 1);

  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  const double e_explicit = bi.energy(0.7, beta);
  bi.compute_yi(beta);
  const double e_adjoint = bi.energy_from_yi(0.7, beta);
  EXPECT_NEAR(e_adjoint, e_explicit, 1e-9 * std::max(1.0, std::abs(e_explicit)));
}

TEST(SnapPotential, PathsAgreeOnPeriodicSystem) {
  const SnapModel model = tiny_model(8, 1);
  md::System sys = perturbed_diamond(2, 0.12, 2);

  auto run_path = [&](SnapPotential::Path path) {
    md::System s = sys;
    SnapPotential pot(model, path);
    md::NeighborList nl(pot.cutoff(), 0.3);
    nl.build(s);
    s.zero_forces();
    const auto ev = pot.compute(s, nl);
    return std::tuple{ev.energy, ev.virial,
                      std::vector<Vec3>(s.f.begin(), s.f.end())};
  };
  const auto [ea, va, fa] = run_path(SnapPotential::Path::Adjoint);
  const auto [eb, vb, fb] = run_path(SnapPotential::Path::Baseline);

  EXPECT_NEAR(ea, eb, 1e-9 * std::max(1.0, std::abs(eb)));
  EXPECT_NEAR(va, vb, 1e-8 * std::max(1.0, std::abs(vb)));
  for (std::size_t i = 0; i < fa.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(fa[i][d], fb[i][d], 1e-9 * std::max(1.0, std::abs(fb[i][d])));
    }
  }
}

TEST(SnapPotential, ForcesMatchFiniteDifferencePeriodic) {
  const SnapModel model = tiny_model(6, 3);
  md::System sys = perturbed_diamond(2, 0.1, 4);
  SnapPotential pot(model);

  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys);
  sys.zero_forces();
  pot.compute(sys, nl);
  std::vector<Vec3> f(sys.f.begin(), sys.f.end());

  auto energy_now = [&]() {
    md::NeighborList nl2(pot.cutoff(), 0.3);
    nl2.build(sys);
    sys.zero_forces();
    return pot.compute(sys, nl2).energy;
  };
  const double h = 1e-6;
  for (int i : {0, 7, 31}) {
    for (int d = 0; d < 3; ++d) {
      const double orig = sys.x[i][d];
      sys.x[i][d] = orig + h;
      const double ep = energy_now();
      sys.x[i][d] = orig - h;
      const double em = energy_now();
      sys.x[i][d] = orig;
      const double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(f[i][d], fd, 3e-5 * std::max(1.0, std::abs(fd)))
          << "atom " << i << " dim " << d;
    }
  }
}

TEST(SnapPotential, NveDriftConvergesWithTimestep) {
  // A random-coefficient SNAP model is stiff (no physical minimum), so the
  // meaningful NVE check is 2nd-order convergence: halving dt must shrink
  // the drift by ~4x, and the fine-dt drift must be small.
  const SnapModel model = tiny_model(6, 7);
  auto drift_for = [&](double dt) {
    md::System sys = perturbed_diamond(2, 0.02, 8);
    Rng rng(9);
    sys.thermalize(300.0, rng);
    md::Simulation sim(std::move(sys), std::make_shared<SnapPotential>(model),
                       dt, 0.3, 10);
    sim.setup();
    const double e0 = sim.total_energy();
    sim.run(static_cast<long>(0.02 / dt));
    return std::abs(sim.total_energy() - e0) / sim.system().nlocal();
  };
  const double coarse = drift_for(4e-4);
  const double fine = drift_for(1e-4);
  EXPECT_LT(fine, 0.5 * coarse);
  EXPECT_LT(fine, 5e-4);
}

TEST(SnapModel, SaveLoadRoundTrip) {
  const SnapModel model = tiny_model(8, 11);
  const std::string path = "/tmp/ember_test_model.snap";
  model.save(path);
  const SnapModel loaded = SnapModel::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.params.twojmax, model.params.twojmax);
  EXPECT_DOUBLE_EQ(loaded.params.rcut, model.params.rcut);
  EXPECT_EQ(loaded.params.bzero_flag, model.params.bzero_flag);
  EXPECT_DOUBLE_EQ(loaded.beta0, model.beta0);
  ASSERT_EQ(loaded.beta.size(), model.beta.size());
  for (std::size_t l = 0; l < model.beta.size(); ++l) {
    EXPECT_DOUBLE_EQ(loaded.beta[l], model.beta[l]);
  }
}

TEST(SnapPotential, FlopCounterTracksWork) {
  const SnapModel model = tiny_model(8, 13);
  md::System sys = perturbed_diamond(2, 0.05, 14);
  SnapPotential pot(model);
  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys);
  sys.zero_forces();
  pot.compute(sys, nl);
  EXPECT_GT(pot.last_flops(), 1e6);  // 64 atoms x O(J^7) sweep
  // Baseline path must report more FLOPs than adjoint (the paper's point).
  const double adj = pot.last_flops();
  pot.set_path(SnapPotential::Path::Baseline);
  sys.zero_forces();
  pot.compute(sys, nl);
  EXPECT_GT(pot.last_flops(), adj);
}

SnapModel quadratic_model(int twojmax, std::uint64_t seed) {
  SnapModel m = tiny_model(twojmax, seed);
  Rng rng(seed + 100);
  const std::size_t n = m.beta.size();
  m.alpha.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = 1e-4 * rng.uniform(-1.0, 1.0);
      m.alpha[i * n + j] = v;
      m.alpha[j * n + i] = v;  // symmetric
    }
  }
  return m;
}

TEST(SnapQuadratic, SiteEnergyAndEffectiveBeta) {
  const SnapModel m = quadratic_model(4, 3);
  Rng rng(8);
  std::vector<double> b(m.beta.size());
  for (auto& v : b) v = rng.uniform(-2.0, 2.0);
  // site_energy must equal beta0 + beta.b + 0.5 b^T alpha b by direct sum.
  double expect = m.beta0;
  const std::size_t n = m.beta.size();
  for (std::size_t l = 0; l < n; ++l) {
    expect += m.beta[l] * b[l];
    for (std::size_t k = 0; k < n; ++k) {
      expect += 0.5 * b[l] * m.alpha[l * n + k] * b[k];
    }
  }
  EXPECT_NEAR(m.site_energy(b), expect, 1e-12 * std::abs(expect));
  // effective_beta must be the gradient of site_energy w.r.t. b.
  std::vector<double> eff;
  m.effective_beta(b, eff);
  const double h = 1e-6;
  for (std::size_t l = 0; l < n; l += 7) {
    auto bp = b;
    bp[l] += h;
    auto bm = b;
    bm[l] -= h;
    EXPECT_NEAR(eff[l], (m.site_energy(bp) - m.site_energy(bm)) / (2 * h),
                1e-6);
  }
}

TEST(SnapQuadratic, ForcesMatchFiniteDifference) {
  const SnapModel model = quadratic_model(4, 5);
  md::System sys = perturbed_diamond(2, 0.08, 6);
  SnapPotential pot(model);

  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys);
  sys.zero_forces();
  pot.compute(sys, nl);
  std::vector<Vec3> f(sys.f.begin(), sys.f.end());

  auto energy_now = [&]() {
    md::NeighborList nl2(pot.cutoff(), 0.3);
    nl2.build(sys);
    sys.zero_forces();
    return pot.compute(sys, nl2).energy;
  };
  const double h = 1e-6;
  for (int i : {0, 13}) {
    for (int d = 0; d < 3; ++d) {
      const double orig = sys.x[i][d];
      sys.x[i][d] = orig + h;
      const double ep = energy_now();
      sys.x[i][d] = orig - h;
      const double em = energy_now();
      sys.x[i][d] = orig;
      const double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(f[i][d], fd, 5e-5 * std::max(1.0, std::abs(fd)))
          << "atom " << i << " dim " << d;
    }
  }
}

TEST(SnapQuadratic, PathsAgree) {
  const SnapModel model = quadratic_model(6, 9);
  md::System sys = perturbed_diamond(2, 0.1, 10);
  auto run_path = [&](SnapPotential::Path path) {
    md::System s = sys;
    SnapPotential pot(model, path);
    md::NeighborList nl(pot.cutoff(), 0.3);
    nl.build(s);
    s.zero_forces();
    const auto ev = pot.compute(s, nl);
    return std::pair{ev.energy, std::vector<Vec3>(s.f.begin(), s.f.end())};
  };
  const auto [ea, fa] = run_path(SnapPotential::Path::Adjoint);
  const auto [eb, fb] = run_path(SnapPotential::Path::Baseline);
  EXPECT_NEAR(ea, eb, 1e-9 * std::max(1.0, std::abs(eb)));
  for (std::size_t i = 0; i < fa.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(fa[i][d], fb[i][d], 1e-9 * std::max(1.0, std::abs(fb[i][d])));
    }
  }
}

TEST(SnapQuadratic, SaveLoadKeepsAlpha) {
  const SnapModel model = quadratic_model(4, 11);
  const std::string path = "/tmp/ember_test_quad.snap";
  model.save(path);
  const SnapModel loaded = SnapModel::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.alpha.size(), model.alpha.size());
  EXPECT_TRUE(loaded.quadratic());
  for (std::size_t i = 0; i < model.alpha.size(); i += 17) {
    EXPECT_DOUBLE_EQ(loaded.alpha[i], model.alpha[i]);
  }
}

TEST(SnapQuadratic, ReducesToLinearWhenAlphaZero) {
  SnapModel quad = tiny_model(4, 13);
  quad.alpha.assign(quad.beta.size() * quad.beta.size(), 0.0);
  const SnapModel linear = tiny_model(4, 13);

  md::System sys = perturbed_diamond(2, 0.05, 14);
  auto forces_of = [&](const SnapModel& m) {
    md::System s = sys;
    SnapPotential pot(m);
    md::NeighborList nl(pot.cutoff(), 0.3);
    nl.build(s);
    s.zero_forces();
    pot.compute(s, nl);
    return std::vector<Vec3>(s.f.begin(), s.f.end());
  };
  const auto fq = forces_of(quad);
  const auto fl = forces_of(linear);
  for (std::size_t i = 0; i < fq.size(); ++i) {
    EXPECT_NEAR(fq[i].x, fl[i].x, 1e-12);
    EXPECT_NEAR(fq[i].z, fl[i].z, 1e-12);
  }
}

}  // namespace
}  // namespace ember::snap
