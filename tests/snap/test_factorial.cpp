// Tests for the factorial table and Clebsch-Gordan coefficients.

#include <gtest/gtest.h>

#include <cmath>

#include "snap/factorial.hpp"

namespace ember::snap {
namespace {

TEST(Factorial, SmallValues) {
  EXPECT_EQ(factorial(0), 1.0L);
  EXPECT_EQ(factorial(1), 1.0L);
  EXPECT_EQ(factorial(5), 120.0L);
  EXPECT_EQ(factorial(12), 479001600.0L);
}

TEST(Factorial, LargeValueMatchesStirlingOrder) {
  // 170! ~ 7.26e306; table must not overflow long double.
  EXPECT_GT(factorial(170), 1e306L);
  EXPECT_TRUE(std::isfinite(static_cast<double>(factorial(150))));
}

TEST(ClebschGordan, KnownHalfIntegerValues) {
  // C^{0 0}_{1/2 1/2, 1/2 -1/2} = 1/sqrt(2), singlet combination.
  EXPECT_NEAR(clebsch_gordan(1, 1, 1, -1, 0, 0), 1.0 / std::sqrt(2.0), 1e-14);
  // C^{1 1}_{1/2 1/2, 1/2 1/2} = 1 (stretched state).
  EXPECT_NEAR(clebsch_gordan(1, 1, 1, 1, 2, 2), 1.0, 1e-14);
  // C^{1 0}_{1/2 1/2, 1/2 -1/2} = 1/sqrt(2).
  EXPECT_NEAR(clebsch_gordan(1, 1, 1, -1, 2, 0), 1.0 / std::sqrt(2.0), 1e-14);
}

TEST(ClebschGordan, KnownIntegerValues) {
  // Coupling 1 x 1 -> 2: C^{2 0}_{1 0, 1 0} = sqrt(2/3).
  EXPECT_NEAR(clebsch_gordan(2, 0, 2, 0, 4, 0), std::sqrt(2.0 / 3.0), 1e-14);
  // Coupling 1 x 1 -> 0: C^{0 0}_{1 0, 1 0} = -1/sqrt(3).
  EXPECT_NEAR(clebsch_gordan(2, 0, 2, 0, 0, 0), -1.0 / std::sqrt(3.0), 1e-14);
  // Coupling 1 x 1 -> 1: C^{1 0}_{1 0, 1 0} = 0 by symmetry.
  EXPECT_NEAR(clebsch_gordan(2, 0, 2, 0, 2, 0), 0.0, 1e-14);
}

TEST(ClebschGordan, SelectionRules) {
  // Projection mismatch.
  EXPECT_EQ(clebsch_gordan(2, 2, 2, 0, 4, 0), 0.0);
  // Triangle violation.
  EXPECT_EQ(clebsch_gordan(2, 0, 2, 0, 8, 0), 0.0);
  // |m| > j.
  EXPECT_EQ(clebsch_gordan(2, 4, 2, 0, 4, 4), 0.0);
}

// Orthogonality: sum_{m1,m2} C^{j m}_{j1 m1 j2 m2} C^{j' m'}_{j1 m1 j2 m2}
// = delta_{j j'} delta_{m m'}.
class CgOrthogonality
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CgOrthogonality, RowsAreOrthonormal) {
  const auto [twoj1, twoj2] = GetParam();
  for (int twoj = std::abs(twoj1 - twoj2); twoj <= twoj1 + twoj2; twoj += 2) {
    for (int twojp = std::abs(twoj1 - twoj2); twojp <= twoj1 + twoj2;
         twojp += 2) {
      for (int twom = -twoj; twom <= twoj; twom += 2) {
        for (int twomp = -twojp; twomp <= twojp; twomp += 2) {
          double sum = 0.0;
          for (int twom1 = -twoj1; twom1 <= twoj1; twom1 += 2) {
            for (int twom2 = -twoj2; twom2 <= twoj2; twom2 += 2) {
              sum += clebsch_gordan(twoj1, twom1, twoj2, twom2, twoj, twom) *
                     clebsch_gordan(twoj1, twom1, twoj2, twom2, twojp, twomp);
            }
          }
          const double expected =
              (twoj == twojp && twom == twomp) ? 1.0 : 0.0;
          EXPECT_NEAR(sum, expected, 1e-12)
              << "j1=" << twoj1 / 2.0 << " j2=" << twoj2 / 2.0
              << " j=" << twoj / 2.0 << " j'=" << twojp / 2.0;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Couplings, CgOrthogonality,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{2, 1},
                                           std::tuple{2, 2}, std::tuple{3, 2},
                                           std::tuple{4, 3}, std::tuple{6, 4},
                                           std::tuple{8, 8}, std::tuple{7, 5}));

}  // namespace
}  // namespace ember::snap
