// Symmetric-kernel parity contract: the TestSNAP V5-V7 production kernel
// (half column range + cached neighbor U lists + SoA planes) must reproduce
// the Naive full-range kernel to <= 1e-12 per component — U mirrors, Y,
// energies, per-neighbor forces, and the full SnapPotential force/energy/
// virial evaluation for linear and quadratic models across thread counts.
// Naive is the correctness oracle; these tests pin the port.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "md/compute_context.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "parallel/thread_pool.hpp"
#include "snap/snap_potential.hpp"

namespace ember::snap {
namespace {

SnapParams base_params(int twojmax, SnapKernel kernel) {
  SnapParams p;
  p.twojmax = twojmax;
  p.rcut = 3.4;
  p.bzero_flag = true;
  p.kernel = kernel;
  return p;
}

// Randomized neighbor shell with radii well inside the cutoff.
std::vector<Vec3> random_shell(Rng& rng, int n, double rlo, double rhi) {
  std::vector<Vec3> rij;
  rij.reserve(n);
  while (static_cast<int>(rij.size()) < n) {
    Vec3 r{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
           rng.uniform(-1.0, 1.0)};
    const double norm = r.norm();
    if (norm < 0.2 || norm > 1.0) continue;
    const double scale = rng.uniform(rlo, rhi) / norm;
    rij.push_back(scale * r);
  }
  return rij;
}

class SymmetricKernelParity : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricKernelParity, StagesMatchNaiveOracle) {
  const int twojmax = GetParam();
  Rng rng(17 + static_cast<std::uint64_t>(twojmax));
  const auto rij = random_shell(rng, 22, 0.8, 3.2);
  const std::vector<double> wj(rij.size(), 1.0);

  Bispectrum naive(base_params(twojmax, SnapKernel::Naive));
  Bispectrum sym(base_params(twojmax, SnapKernel::Symmetric));
  // Model-scale coefficients keep the forces O(1), so the absolute 1e-12
  // parity bound sits well above double rounding but far below any real
  // kernel discrepancy.
  std::vector<double> beta(naive.num_b());
  for (auto& b : beta) b = 0.01 * rng.uniform(-1.0, 1.0);

  naive.compute_ui(rij, wj);
  sym.compute_ui(rij, wj);
  ASSERT_EQ(sym.cached_neighbors(), static_cast<int>(rij.size()));

  // Mirrored full-range Utot matches the naive accumulation.
  for (int e = 0; e < naive.index().u_total(); ++e) {
    EXPECT_NEAR(sym.utot()[e].re, naive.utot()[e].re, 1e-12) << "u " << e;
    EXPECT_NEAR(sym.utot()[e].im, naive.utot()[e].im, 1e-12) << "u " << e;
  }

  // Half-column Y sweep (aligned CG blocks) matches the full sweep.
  naive.compute_yi(beta);
  sym.compute_yi(beta);
  for (int e = 0; e < naive.index().u_total(); ++e) {
    EXPECT_NEAR(sym.ylist()[e].re, naive.ylist()[e].re, 1e-12) << "y " << e;
    EXPECT_NEAR(sym.ylist()[e].im, naive.ylist()[e].im, 1e-12) << "y " << e;
  }

  // Adjoint energy identity holds identically on both kernels.
  const double e_naive = naive.energy_from_yi(0.4, beta);
  const double e_sym = sym.energy_from_yi(0.4, beta);
  EXPECT_NEAR(e_sym, e_naive, 1e-12 * std::max(1.0, std::abs(e_naive)));

  // Per-neighbor forces: cached half-range dU contraction vs the naive
  // full recursion, every component to 1e-12.
  for (std::size_t m = 0; m < rij.size(); ++m) {
    naive.compute_duidrj(rij[m], wj[m]);
    const Vec3 de_naive = naive.compute_deidrj();
    sym.compute_duidrj_cached(static_cast<int>(m));
    const Vec3 de_sym = sym.compute_deidrj();
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(de_sym[d], de_naive[d], 1e-12)
          << "neighbor " << m << " dim " << d;
    }
  }

  // Descriptors through the (unchanged) Z/B stages agree too: the
  // symmetric kernel feeds them through the mirrored Utot.
  naive.compute_zi();
  naive.compute_bi();
  sym.compute_zi();
  sym.compute_bi();
  for (int l = 0; l < naive.num_b(); ++l) {
    EXPECT_NEAR(sym.blist()[l], naive.blist()[l],
                1e-12 * std::max(1.0, std::abs(naive.blist()[l])))
        << "b " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(TwoJmaxSweep, SymmetricKernelParity,
                         ::testing::Values(2, 4, 6, 8, 14));

TEST(SymmetricKernel, MixedStageSequenceStaysCorrect) {
  // Under the Symmetric kernel the naive compute_duidrj entry point must
  // remain valid (the Baseline path and the trainer use it), including
  // when interleaved with cached calls on the same instance.
  Rng rng(91);
  const auto rij = random_shell(rng, 12, 0.9, 3.0);
  Bispectrum sym(base_params(8, SnapKernel::Symmetric));
  std::vector<double> beta(sym.num_b());
  for (auto& b : beta) b = 0.01 * rng.uniform(-1.0, 1.0);

  sym.compute_ui(rij, {});
  sym.compute_yi(beta);
  for (std::size_t m = 0; m < rij.size(); ++m) {
    sym.compute_duidrj_cached(static_cast<int>(m));
    const Vec3 de_cached = sym.compute_deidrj();
    sym.compute_duidrj(rij[m], 1.0);  // full-range recursion, same neighbor
    const Vec3 de_full = sym.compute_deidrj();
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(de_cached[d], de_full[d], 1e-12);
    }
  }
}

// ---- full-potential parity over a periodic system ------------------------

SnapModel parity_model(int twojmax, SnapKernel kernel, bool quadratic,
                       std::uint64_t seed) {
  SnapParams p = base_params(twojmax, kernel);
  p.rcut = 2.6;
  SnapModel m;
  m.params = p;
  Bispectrum bi(p);
  Rng rng(seed);
  m.beta.resize(bi.num_b());
  for (auto& b : m.beta) b = 0.02 * rng.uniform(-1.0, 1.0);
  m.beta0 = -1.0;
  if (quadratic) {
    const std::size_t n = m.beta.size();
    Rng qrng(seed + 100);
    m.alpha.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = 1e-4 * qrng.uniform(-1.0, 1.0);
        m.alpha[i * n + j] = v;
        m.alpha[j * n + i] = v;
      }
    }
  }
  return m;
}

md::System perturbed_diamond(int reps, double sigma, std::uint64_t seed) {
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = reps;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(seed);
  md::perturb(sys, sigma, rng);
  return sys;
}

struct ForceRun {
  double energy = 0.0;
  double virial = 0.0;
  std::vector<Vec3> f;
};

ForceRun run_kernel(const SnapModel& model, const md::System& start,
                    int nthreads) {
  md::System sys = start;
  SnapPotential pot(model);
  const md::ComputeContext ctx{ExecutionPolicy{nthreads}};
  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys, /*use_ghosts=*/false, &ctx);
  sys.zero_forces();
  const auto ev = pot.compute(ctx, sys, nl);
  return {ev.energy, ev.virial,
          std::vector<Vec3>(sys.f.begin(), sys.f.end())};
}

void expect_kernel_parity(bool quadratic) {
  const md::System sys = perturbed_diamond(2, 0.1, 23);
  SnapModel naive = parity_model(8, SnapKernel::Naive, quadratic, 7);
  SnapModel sym = naive;
  sym.params.kernel = SnapKernel::Symmetric;

  const ForceRun oracle = run_kernel(naive, sys, 1);
  for (const int nth : {1, 4, 8}) {
    const ForceRun got = run_kernel(sym, sys, nth);
    EXPECT_NEAR(got.energy, oracle.energy,
                1e-12 * std::max(1.0, std::abs(oracle.energy)))
        << nth << " threads";
    EXPECT_NEAR(got.virial, oracle.virial,
                1e-12 * std::max(1.0, std::abs(oracle.virial)))
        << nth << " threads";
    ASSERT_EQ(got.f.size(), oracle.f.size());
    for (std::size_t i = 0; i < oracle.f.size(); ++i) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(got.f[i][d], oracle.f[i][d], 1e-12)
            << nth << " threads, atom " << i << " dim " << d;
      }
    }
  }
}

TEST(SymmetricKernel, LinearPotentialMatchesNaive) {
  expect_kernel_parity(/*quadratic=*/false);
}

TEST(SymmetricKernel, QuadraticPotentialMatchesNaive) {
  expect_kernel_parity(/*quadratic=*/true);
}

TEST(SymmetricKernel, ModelRoundTripsKernelChoice) {
  SnapModel m = parity_model(4, SnapKernel::Naive, false, 3);
  const char* path = "symmetric_kernel_model.tmp";
  m.save(path);
  const SnapModel naive_back = SnapModel::load(path);
  EXPECT_EQ(naive_back.params.kernel, SnapKernel::Naive);
  m.params.kernel = SnapKernel::Symmetric;
  m.save(path);
  const SnapModel sym_back = SnapModel::load(path);
  EXPECT_EQ(sym_back.params.kernel, SnapKernel::Symmetric);
  std::remove(path);
}

}  // namespace
}  // namespace ember::snap
