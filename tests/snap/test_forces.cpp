// Force-path validation: the adjoint kernel (compute_yi / compute_deidrj)
// and the baseline kernel (compute_zi / compute_dbidrj) must both agree
// with central finite differences of the SNAP energy, and with each other.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "snap/bispectrum.hpp"

namespace ember::snap {
namespace {

struct Cluster {
  std::vector<Vec3> pos;
  double rcut;
};

Cluster random_cluster(Rng& rng, int n, double rcut) {
  Cluster c;
  c.rcut = rcut;
  const double span = 1.6 * rcut;
  while (static_cast<int>(c.pos.size()) < n) {
    Vec3 cand{rng.uniform(0.0, span), rng.uniform(0.0, span),
              rng.uniform(0.0, span)};
    bool ok = true;
    for (const auto& p : c.pos) {
      if ((cand - p).norm() < 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) c.pos.push_back(cand);
  }
  return c;
}

// Total SNAP energy of an open cluster (no PBC): sum of atomic energies.
double total_energy(Bispectrum& bi, const Cluster& c, double beta0,
                    std::span<const double> beta) {
  double e = 0.0;
  std::vector<Vec3> rij;
  for (std::size_t i = 0; i < c.pos.size(); ++i) {
    rij.clear();
    for (std::size_t k = 0; k < c.pos.size(); ++k) {
      if (k == i) continue;
      const Vec3 d = c.pos[k] - c.pos[i];
      if (d.norm() < c.rcut) rij.push_back(d);
    }
    bi.compute_ui(rij, {});
    bi.compute_zi();
    bi.compute_bi();
    e += bi.energy(beta0, beta);
  }
  return e;
}

// Forces via the adjoint path. F_k = -dE/dr_k accumulated over all central
// atoms i whose neighborhood contains k.
std::vector<Vec3> adjoint_forces(Bispectrum& bi, const Cluster& c,
                                 std::span<const double> beta) {
  std::vector<Vec3> f(c.pos.size());
  std::vector<Vec3> rij;
  std::vector<std::size_t> nbr;
  for (std::size_t i = 0; i < c.pos.size(); ++i) {
    rij.clear();
    nbr.clear();
    for (std::size_t k = 0; k < c.pos.size(); ++k) {
      if (k == i) continue;
      const Vec3 d = c.pos[k] - c.pos[i];
      if (d.norm() < c.rcut) {
        rij.push_back(d);
        nbr.push_back(k);
      }
    }
    bi.compute_ui(rij, {});
    bi.compute_yi(beta);
    for (std::size_t m = 0; m < rij.size(); ++m) {
      bi.compute_duidrj(rij[m], 1.0);
      const Vec3 de = bi.compute_deidrj();  // dE_i / dr_k
      f[nbr[m]] -= de;
      f[i] += de;  // dE_i/dr_i = -sum_k dE_i/dr_k
    }
  }
  return f;
}

// Forces via the baseline path (per-neighbor dB contracted with beta).
std::vector<Vec3> baseline_forces(Bispectrum& bi, const Cluster& c,
                                  std::span<const double> beta) {
  std::vector<Vec3> f(c.pos.size());
  std::vector<Vec3> rij;
  std::vector<std::size_t> nbr;
  for (std::size_t i = 0; i < c.pos.size(); ++i) {
    rij.clear();
    nbr.clear();
    for (std::size_t k = 0; k < c.pos.size(); ++k) {
      if (k == i) continue;
      const Vec3 d = c.pos[k] - c.pos[i];
      if (d.norm() < c.rcut) {
        rij.push_back(d);
        nbr.push_back(k);
      }
    }
    bi.compute_ui(rij, {});
    bi.compute_zi();
    for (std::size_t m = 0; m < rij.size(); ++m) {
      bi.compute_duidrj(rij[m], 1.0);
      bi.compute_dbidrj();
      Vec3 de;
      for (int l = 0; l < bi.num_b(); ++l) de += beta[l] * bi.dblist()[l];
      f[nbr[m]] -= de;
      f[i] += de;
    }
  }
  return f;
}

std::vector<double> random_beta(Rng& rng, int n) {
  std::vector<double> beta(n);
  for (auto& b : beta) b = rng.uniform(-1.0, 1.0);
  return beta;
}

class SnapForces : public ::testing::TestWithParam<int> {};

TEST_P(SnapForces, AdjointMatchesFiniteDifference) {
  const int twojmax = GetParam();
  SnapParams p;
  p.twojmax = twojmax;
  p.rcut = 3.6;
  Bispectrum bi(p);

  Rng rng(77 + twojmax);
  const Cluster c = random_cluster(rng, 8, p.rcut);
  const auto beta = random_beta(rng, bi.num_b());

  const auto f = adjoint_forces(bi, c, beta);

  const double h = 1e-6;
  Cluster pert = c;
  for (std::size_t k = 0; k < c.pos.size(); ++k) {
    for (int d = 0; d < 3; ++d) {
      pert.pos[k][d] = c.pos[k][d] + h;
      const double ep = total_energy(bi, pert, 0.0, beta);
      pert.pos[k][d] = c.pos[k][d] - h;
      const double em = total_energy(bi, pert, 0.0, beta);
      pert.pos[k][d] = c.pos[k][d];
      const double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(f[k][d], fd, 2e-5 * std::max(1.0, std::abs(fd)))
          << "atom " << k << " dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoJmax, SnapForces, ::testing::Values(2, 4, 8));

TEST(SnapForcesPaths, BaselineEqualsAdjoint) {
  SnapParams p;
  p.twojmax = 8;
  p.rcut = 3.6;
  Bispectrum bi(p);
  Rng rng(3);
  const Cluster c = random_cluster(rng, 10, p.rcut);
  const auto beta = random_beta(rng, bi.num_b());

  const auto fa = adjoint_forces(bi, c, beta);
  const auto fb = baseline_forces(bi, c, beta);
  for (std::size_t k = 0; k < c.pos.size(); ++k) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(fa[k][d], fb[k][d],
                  1e-9 * std::max(1.0, std::abs(fa[k][d])));
    }
  }
}

TEST(SnapForcesPaths, DuMatchesFiniteDifferenceOfU) {
  // d(fc * u)/dr check for a single neighbor against finite differences of
  // compute_ui (wself = 0 so utot is exactly the weighted U of the pair).
  SnapParams p;
  p.twojmax = 6;
  p.rcut = 4.0;
  p.wself = 0.0;
  Bispectrum bi(p);

  const Vec3 r0{1.3, -0.4, 1.7};
  bi.compute_duidrj(r0, 1.0);
  std::vector<DU> du(bi.dulist().begin(), bi.dulist().end());

  const double h = 1e-6;
  for (int d = 0; d < 3; ++d) {
    Vec3 rp = r0, rm = r0;
    rp[d] += h;
    rm[d] -= h;
    bi.compute_ui(std::span<const Vec3>(&rp, 1), {});
    std::vector<Cplx> up(bi.utot().begin(), bi.utot().end());
    bi.compute_ui(std::span<const Vec3>(&rm, 1), {});
    for (int i = 0; i < bi.index().u_total(); ++i) {
      const double fdre = (up[i].re - bi.utot()[i].re) / (2 * h);
      const double fdim = (up[i].im - bi.utot()[i].im) / (2 * h);
      EXPECT_NEAR(du[i].d[d].re, fdre, 1e-6);
      EXPECT_NEAR(du[i].d[d].im, fdim, 1e-6);
    }
  }
}

TEST(SnapForcesPaths, EnergyTranslationInvariance) {
  // Translating the whole cluster must not change the energy, and the sum
  // of forces must vanish (Newton's third law within the cluster).
  SnapParams p;
  p.twojmax = 6;
  p.rcut = 3.6;
  Bispectrum bi(p);
  Rng rng(8);
  Cluster c = random_cluster(rng, 9, p.rcut);
  const auto beta = random_beta(rng, bi.num_b());

  const double e0 = total_energy(bi, c, 0.1, beta);
  const auto f = adjoint_forces(bi, c, beta);

  Vec3 fsum;
  for (const auto& fk : f) fsum += fk;
  EXPECT_NEAR(fsum.x, 0.0, 1e-9);
  EXPECT_NEAR(fsum.y, 0.0, 1e-9);
  EXPECT_NEAR(fsum.z, 0.0, 1e-9);

  for (auto& r : c.pos) r += Vec3{3.3, -1.1, 0.7};
  EXPECT_NEAR(total_energy(bi, c, 0.1, beta), e0, 1e-9 * std::abs(e0));
}

}  // namespace
}  // namespace ember::snap
