// Tests for the SNAP index tables: block offsets, component counts, and the
// canonical-triple bookkeeping used by the adjoint accumulation.

#include <gtest/gtest.h>

#include <algorithm>

#include "snap/factorial.hpp"
#include "snap/indexing.hpp"

namespace ember::snap {
namespace {

TEST(SnapIndex, UBlockOffsets) {
  SnapIndex idx(8);
  // Block j holds (j+1)^2 entries: offsets are partial sums of squares.
  EXPECT_EQ(idx.u_block(0), 0);
  EXPECT_EQ(idx.u_block(1), 1);
  EXPECT_EQ(idx.u_block(2), 5);
  EXPECT_EQ(idx.u_block(3), 14);
  EXPECT_EQ(idx.u_total(), 285);  // sum_{j=0..8} (j+1)^2
}

TEST(SnapIndex, ComponentCountsMatchThePaper) {
  // The paper: 2J = 8 -> 55 bispectrum components, 2J = 14 -> 204.
  EXPECT_EQ(SnapIndex(8).num_b(), 55);
  EXPECT_EQ(SnapIndex(14).num_b(), 204);
  EXPECT_EQ(SnapIndex(0).num_b(), 1);
  EXPECT_EQ(SnapIndex(2).num_b(), 5);
}

TEST(SnapIndex, CanonicalTriplesAreOrdered) {
  SnapIndex idx(8);
  for (const auto& bt : idx.b_triples()) {
    EXPECT_LE(bt.j2, bt.j1);
    EXPECT_LE(bt.j1, bt.j);
    EXPECT_LE(bt.j, 8);
    EXPECT_GE(bt.j, bt.j1 - bt.j2);
    EXPECT_LE(bt.j, bt.j1 + bt.j2);
    EXPECT_EQ((bt.j1 + bt.j2 + bt.j) % 2, 0);
    // Round-trip through the dense lookup.
    const int l = idx.b_index(bt.j1, bt.j2, bt.j);
    EXPECT_EQ(idx.b_triples()[l].j1, bt.j1);
    EXPECT_EQ(idx.b_triples()[l].j2, bt.j2);
    EXPECT_EQ(idx.b_triples()[l].j, bt.j);
  }
}

TEST(SnapIndex, EveryCouplingTripleMapsToACanonicalB) {
  SnapIndex idx(8);
  for (const auto& t : idx.z_triples()) {
    ASSERT_GE(t.idxb, 0);
    ASSERT_LT(t.idxb, idx.num_b());
    const auto& bt = idx.b_triples()[t.idxb];
    // The canonical triple must contain the same multiset of momenta.
    int a[3] = {t.j1, t.j2, t.j};
    int b[3] = {bt.j1, bt.j2, bt.j};
    std::sort(a, a + 3);
    std::sort(b, b + 3);
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[1], b[1]);
    EXPECT_EQ(a[2], b[2]);
    EXPECT_GT(t.beta_scale, 0.0);
  }
}

TEST(SnapIndex, BetaScaleMultiplicitySumsToThree) {
  // Every canonical B has exactly three U-slot dependencies (eq. 6), so
  // summing beta_scale * (target dimension ratio correction)^-1 ... the
  // simplest invariant: for each canonical triple, the total multiplicity
  // of entries pointing at it, weighting permuted entries by
  // (j_target+1)/(j_big+1) to undo the dimension ratio, must be 3.
  SnapIndex idx(8);
  std::vector<double> mult(idx.num_b(), 0.0);
  for (const auto& t : idx.z_triples()) {
    const auto& bt = idx.b_triples()[t.idxb];
    // beta_scale already includes the (big+1)/(target+1) ratio for permuted
    // entries; undo it so each dependency slot counts as 1.
    double count = t.beta_scale;
    if (t.j < bt.j) {
      count *= static_cast<double>(t.j + 1) / static_cast<double>(bt.j + 1);
    }
    mult[t.idxb] += count;
  }
  for (int l = 0; l < idx.num_b(); ++l) {
    EXPECT_NEAR(mult[l], 3.0, 1e-12) << "triple " << l;
  }
}

TEST(SnapIndex, ZLookupFindsAllPermutations) {
  SnapIndex idx(8);
  for (const auto& bt : idx.b_triples()) {
    EXPECT_NO_THROW((void)idx.z_index(bt.j1, bt.j2, bt.j));
    EXPECT_NO_THROW((void)idx.z_index(bt.j, bt.j2, bt.j1));
    EXPECT_NO_THROW((void)idx.z_index(bt.j, bt.j1, bt.j2));
    // Argument order within the pair must not matter.
    EXPECT_EQ(idx.z_index(bt.j2, bt.j1, bt.j), idx.z_index(bt.j1, bt.j2, bt.j));
  }
}

TEST(SnapIndex, CgBlocksMatchDirectEvaluation) {
  SnapIndex idx(6);
  for (const auto& t : idx.z_triples()) {
    for (int ma1 = 0; ma1 <= t.j1; ++ma1) {
      for (int ma2 = 0; ma2 <= t.j2; ++ma2) {
        const int twom1 = 2 * ma1 - t.j1;
        const int twom2 = 2 * ma2 - t.j2;
        EXPECT_DOUBLE_EQ(
            idx.cg(t, ma1, ma2),
            clebsch_gordan(t.j1, twom1, t.j2, twom2, t.j, twom1 + twom2));
      }
    }
  }
}

}  // namespace
}  // namespace ember::snap
