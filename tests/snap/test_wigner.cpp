// Tests for the closed-form Wigner matrices and the Cayley-Klein mapping.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "snap/wigner.hpp"

namespace ember::snap {
namespace {

// Random unit-norm Cayley-Klein pair.
std::pair<Cplx, Cplx> random_cayley_klein(Rng& rng) {
  const Cplx a{rng.gaussian(), rng.gaussian()};
  const Cplx b{rng.gaussian(), rng.gaussian()};
  const double norm =
      std::sqrt(a.re * a.re + a.im * a.im + b.re * b.re + b.im * b.im);
  return {{a.re / norm, a.im / norm}, {b.re / norm, b.im / norm}};
}

// Matrix multiply for row-major (n x n) Cplx arrays.
std::vector<Cplx> matmul(const std::vector<Cplx>& A, const std::vector<Cplx>& B,
                         int n) {
  std::vector<Cplx> C(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      const Cplx aik = A[i * n + k];
      for (int j = 0; j < n; ++j) C[i * n + j] += aik * B[k * n + j];
    }
  }
  return C;
}

TEST(Wigner, SpinHalfIsTheGroupElement) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto [a, b] = random_cayley_klein(rng);
    const auto u = wigner_matrix(1, a, b);
    // Expected g = [[a, -b*], [b, a*]] in (row k', col k) with k=0 -> v.
    // Basis f_0 = v, f_1 = u: column k=1 transforms u -> a u + b v, giving
    // element [1][1] = a, [0][1] = b; column k=0: v -> -b* u + a* v.
    EXPECT_NEAR(u[1 * 2 + 1].re, a.re, 1e-14);
    EXPECT_NEAR(u[1 * 2 + 1].im, a.im, 1e-14);
    EXPECT_NEAR(u[0 * 2 + 1].re, b.re, 1e-14);
    EXPECT_NEAR(u[0 * 2 + 1].im, b.im, 1e-14);
    EXPECT_NEAR(u[1 * 2 + 0].re, -b.re, 1e-14);
    EXPECT_NEAR(u[1 * 2 + 0].im, b.im, 1e-14);  // -conj(b)
    EXPECT_NEAR(u[0 * 2 + 0].re, a.re, 1e-14);
    EXPECT_NEAR(u[0 * 2 + 0].im, -a.im, 1e-14);  // conj(a)
  }
}

class WignerUnitarity : public ::testing::TestWithParam<int> {};

TEST_P(WignerUnitarity, UUdaggerIsIdentity) {
  const int twoj = GetParam();
  Rng rng(100 + twoj);
  const auto [a, b] = random_cayley_klein(rng);
  const auto u = wigner_matrix(twoj, a, b);
  const int n = twoj + 1;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      Cplx sum{};
      for (int k = 0; k < n; ++k) sum += u[i * n + k] * conj(u[j * n + k]);
      EXPECT_NEAR(sum.re, i == j ? 1.0 : 0.0, 1e-11);
      EXPECT_NEAR(sum.im, 0.0, 1e-11);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllJ, WignerUnitarity,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 11, 14));

TEST(Wigner, CompositionHomomorphism) {
  // U(g1) U(g2) = U(g1 g2) with the SU(2) product of Cayley-Klein pairs:
  // g = [[a, -b*],[b, a*]]; product (a,b) * (c,d) has
  //   a' = a c - b* d, b' = b c + a* d.
  Rng rng(7);
  for (int twoj : {2, 5, 8}) {
    const auto [a1, b1] = random_cayley_klein(rng);
    const auto [a2, b2] = random_cayley_klein(rng);
    const Cplx a12 = a1 * a2 - conj(b1) * b2;
    const Cplx b12 = b1 * a2 + conj(a1) * b2;
    const auto u1 = wigner_matrix(twoj, a1, b1);
    const auto u2 = wigner_matrix(twoj, a2, b2);
    const auto u12 = wigner_matrix(twoj, a12, b12);
    const auto prod = matmul(u1, u2, twoj + 1);
    const int n = twoj + 1;
    for (int e = 0; e < n * n; ++e) {
      EXPECT_NEAR(prod[e].re, u12[e].re, 1e-11) << "twoj=" << twoj;
      EXPECT_NEAR(prod[e].im, u12[e].im, 1e-11);
    }
  }
}

TEST(Wigner, ConjugationSymmetry) {
  // conj(U[k',k]) = (-1)^(k+k') U[J-k', J-k] — the symmetry that SNAP's
  // symmetrized layouts exploit.
  Rng rng(23);
  for (int twoj : {1, 3, 6, 9}) {
    const auto [a, b] = random_cayley_klein(rng);
    const auto u = wigner_matrix(twoj, a, b);
    const int n = twoj + 1;
    for (int kp = 0; kp < n; ++kp) {
      for (int k = 0; k < n; ++k) {
        const Cplx lhs = conj(u[kp * n + k]);
        const double sign = ((k + kp) % 2 == 0) ? 1.0 : -1.0;
        const Cplx rhs = sign * u[(twoj - kp) * n + (twoj - k)];
        EXPECT_NEAR(lhs.re, rhs.re, 1e-12);
        EXPECT_NEAR(lhs.im, rhs.im, 1e-12);
      }
    }
  }
}

TEST(MapToSphere, UnitNormAndSwitching) {
  Rng rng(3);
  const double rcut = 4.7;
  for (int trial = 0; trial < 50; ++trial) {
    Vec3 rij{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
             rng.uniform(-2.0, 2.0)};
    if (rij.norm() < 0.3 || rij.norm() >= rcut) continue;
    const auto ck = map_to_sphere(rij, rcut, 0.99363, 0.0, true);
    const double norm2 = ck.a.re * ck.a.re + ck.a.im * ck.a.im +
                         ck.b.re * ck.b.re + ck.b.im * ck.b.im;
    EXPECT_NEAR(norm2, 1.0, 1e-12);
    EXPECT_GE(ck.fc, 0.0);
    EXPECT_LE(ck.fc, 1.0);
  }
  // fc -> 0 smoothly at the cutoff.
  const auto near_cut =
      map_to_sphere({rcut - 1e-6, 0.0, 0.0}, rcut, 0.99363, 0.0, true);
  EXPECT_NEAR(near_cut.fc, 0.0, 1e-10);
}

TEST(MapToSphere, DerivativesMatchFiniteDifferences) {
  const double rcut = 4.7;
  const Vec3 r0{1.1, -0.7, 1.9};
  const double h = 1e-6;
  const auto ck = map_to_sphere(r0, rcut, 0.99363, 0.0, true);
  for (int d = 0; d < 3; ++d) {
    Vec3 rp = r0;
    Vec3 rm = r0;
    rp[d] += h;
    rm[d] -= h;
    const auto ckp = map_to_sphere(rp, rcut, 0.99363, 0.0, true);
    const auto ckm = map_to_sphere(rm, rcut, 0.99363, 0.0, true);
    EXPECT_NEAR(ck.da[d].re, (ckp.a.re - ckm.a.re) / (2 * h), 1e-6);
    EXPECT_NEAR(ck.da[d].im, (ckp.a.im - ckm.a.im) / (2 * h), 1e-6);
    EXPECT_NEAR(ck.db[d].re, (ckp.b.re - ckm.b.re) / (2 * h), 1e-6);
    EXPECT_NEAR(ck.db[d].im, (ckp.b.im - ckm.b.im) / (2 * h), 1e-6);
    EXPECT_NEAR(ck.dfc[d], (ckp.fc - ckm.fc) / (2 * h), 1e-6);
  }
}

}  // namespace
}  // namespace ember::snap
