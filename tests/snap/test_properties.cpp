// Wider SNAP property sweeps: parameter variations (rmin0, rfac0, wself,
// weights), descriptor smoothness, scaling of stage costs, and behaviors
// the production potential relies on implicitly.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "snap/bispectrum.hpp"
#include "snap/wigner.hpp"

namespace ember::snap {
namespace {

std::vector<Vec3> shell(Rng& rng, int n, double rlo, double rhi) {
  std::vector<Vec3> rij;
  while (static_cast<int>(rij.size()) < n) {
    Vec3 r{rng.uniform(-rhi, rhi), rng.uniform(-rhi, rhi),
           rng.uniform(-rhi, rhi)};
    if (r.norm() > rlo && r.norm() < rhi) rij.push_back(r);
  }
  return rij;
}

struct ParamCase {
  double rmin0;
  double rfac0;
  double wself;
};

class SnapParamSweep : public ::testing::TestWithParam<ParamCase> {};

TEST_P(SnapParamSweep, RotationInvarianceHoldsForAllConventions) {
  const auto pc = GetParam();
  SnapParams p;
  p.twojmax = 6;
  p.rcut = 4.0;
  p.rmin0 = pc.rmin0;
  p.rfac0 = pc.rfac0;
  p.wself = pc.wself;
  Bispectrum bi(p);

  Rng rng(31);
  auto rij = shell(rng, 10, std::max(0.8, pc.rmin0 + 0.3), p.rcut * 0.95);
  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  std::vector<double> b0(bi.blist().begin(), bi.blist().end());

  // Rotate about z by an odd angle.
  const double c = std::cos(1.234), s = std::sin(1.234);
  for (auto& r : rij) r = {c * r.x - s * r.y, s * r.x + c * r.y, r.z};
  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], b0[l], 1e-9 * std::max(1.0, std::abs(b0[l])));
  }
}

TEST_P(SnapParamSweep, ForcesStillMatchFiniteDifferences) {
  const auto pc = GetParam();
  SnapParams p;
  p.twojmax = 4;
  p.rcut = 3.6;
  p.rmin0 = pc.rmin0;
  p.rfac0 = pc.rfac0;
  p.wself = pc.wself;
  Bispectrum bi(p);
  Rng rng(37);
  auto rij = shell(rng, 8, std::max(0.8, pc.rmin0 + 0.3), p.rcut * 0.9);
  std::vector<double> beta(bi.num_b());
  for (auto& b : beta) b = rng.uniform(-1, 1);

  bi.compute_ui(rij, {});
  bi.compute_yi(beta);
  bi.compute_duidrj(rij[0], 1.0);
  const Vec3 de = bi.compute_deidrj();

  const double h = 1e-6;
  for (int d = 0; d < 3; ++d) {
    auto pert = rij;
    pert[0][d] += h;
    bi.compute_ui(pert, {});
    bi.compute_zi();
    bi.compute_bi();
    double ep = 0;
    for (int l = 0; l < bi.num_b(); ++l) ep += beta[l] * bi.blist()[l];
    pert[0][d] -= 2 * h;
    bi.compute_ui(pert, {});
    bi.compute_zi();
    bi.compute_bi();
    double em = 0;
    for (int l = 0; l < bi.num_b(); ++l) em += beta[l] * bi.blist()[l];
    EXPECT_NEAR(de[d], (ep - em) / (2 * h), 2e-5 * std::max(1.0, std::abs(de[d])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conventions, SnapParamSweep,
    ::testing::Values(ParamCase{0.0, 0.99363, 1.0},
                      ParamCase{0.5, 0.99363, 1.0},
                      ParamCase{0.0, 0.75, 1.0},
                      ParamCase{0.0, 0.99363, 0.5},
                      ParamCase{0.3, 0.85, 2.0}));

TEST(SnapSmoothness, EnergyIsContinuousAcrossTheCutoff) {
  // Slide a neighbor through the cutoff: B must approach the
  // one-fewer-neighbor values continuously (switching function at work).
  SnapParams p;
  p.twojmax = 6;
  p.rcut = 4.0;
  Bispectrum bi(p);
  Rng rng(41);
  const auto base = shell(rng, 6, 0.9, 3.4);

  auto b_with_extra = [&](double r_extra) {
    auto rij = base;
    if (r_extra < p.rcut) rij.push_back({r_extra, 0, 0});
    bi.compute_ui(rij, {});
    bi.compute_zi();
    bi.compute_bi();
    return std::vector<double>(bi.blist().begin(), bi.blist().end());
  };
  const auto just_in = b_with_extra(p.rcut - 1e-5);
  const auto just_out = b_with_extra(p.rcut + 1e-5);
  for (std::size_t l = 0; l < just_in.size(); ++l) {
    EXPECT_NEAR(just_in[l], just_out[l],
                1e-6 * std::max(1.0, std::abs(just_out[l])));
  }
}

TEST(SnapSmoothness, DescriptorsVaryContinuouslyWithPosition) {
  SnapParams p;
  p.twojmax = 4;
  p.rcut = 3.5;
  Bispectrum bi(p);
  Rng rng(43);
  auto rij = shell(rng, 5, 0.9, 3.0);

  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  std::vector<double> b0(bi.blist().begin(), bi.blist().end());

  rij[0].x += 1e-7;
  bi.compute_ui(rij, {});
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], b0[l], 1e-4 * std::max(1.0, std::abs(b0[l])));
  }
}

TEST(SnapScaling, StageCostsGrowWithTheDocumentedExponents) {
  // Measure compute_zi at 2J = 4, 8, 14 and check the growth sits near
  // the O(J^7) law (the paper's complexity table).
  Rng rng(47);
  std::vector<double> times;
  const int twojs[3] = {4, 8, 14};
  for (const int tj : twojs) {
    SnapParams p;
    p.twojmax = tj;
    p.rcut = 4.0;
    Bispectrum bi(p);
    const auto rij = shell(rng, 20, 0.9, 3.8);
    bi.compute_ui(rij, {});
    WallTimer t;
    const int reps = tj <= 8 ? 40 : 4;
    for (int r = 0; r < reps; ++r) bi.compute_zi();
    times.push_back(t.seconds() / reps);
  }
  // Effective exponent between 2J=8 and 2J=14 from t ~ J^alpha.
  const double alpha =
      std::log(times[2] / times[1]) / std::log(14.0 / 8.0);
  EXPECT_GT(alpha, 4.5);   // far superlinear
  EXPECT_LT(alpha, 9.0);   // bounded near the J^7 law
}

TEST(SnapScaling, UiCostIsLinearInNeighbors) {
  SnapParams p;
  p.twojmax = 8;
  p.rcut = 4.2;
  Bispectrum bi(p);
  Rng rng(53);
  const auto few = shell(rng, 10, 0.9, 4.0);
  const auto many = shell(rng, 80, 0.9, 4.0);
  // Best-of-5 timing: each sample is short, so take the minimum to shed
  // scheduler noise when the suite runs under a loaded machine.
  auto time_ui = [&](const std::vector<Vec3>& rij) {
    double best = 1e30;
    for (int trial = 0; trial < 5; ++trial) {
      WallTimer t;
      for (int r = 0; r < 30; ++r) bi.compute_ui(rij, {});
      best = std::min(best, t.seconds());
    }
    return best;
  };
  const double ratio = time_ui(many) / time_ui(few);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 20.0);  // ~8x for 8x the neighbors, wide timing slack
}

TEST(SnapEdge, ZeroNeighborsGivesSelfOnlyDescriptors) {
  SnapParams p;
  p.twojmax = 6;
  Bispectrum bi(p);
  bi.compute_ui({}, {});
  bi.compute_zi();
  bi.compute_bi();
  // All components finite and strictly positive (powers of wself via the
  // CG contraction of identity matrices).
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_TRUE(std::isfinite(bi.blist()[l]));
  }
  // And the adjoint force on a (nonexistent) neighbor direction is zero
  // by construction when dU is evaluated for a far atom.
}

TEST(SnapEdge, SingleNeighborForcesAreCentral) {
  // One neighbor: by symmetry the force must point along the bond.
  SnapParams p;
  p.twojmax = 6;
  p.rcut = 3.0;
  Bispectrum bi(p);
  Rng rng(59);
  std::vector<double> beta(bi.num_b());
  for (auto& b : beta) b = rng.uniform(-1, 1);

  const Vec3 bond{1.1, 0.7, -0.4};
  const std::vector<Vec3> rij{bond};
  bi.compute_ui(rij, {});
  bi.compute_yi(beta);
  bi.compute_duidrj(bond, 1.0);
  const Vec3 de = bi.compute_deidrj();
  // de parallel to bond: cross product vanishes.
  const Vec3 c = cross(de, bond);
  EXPECT_NEAR(c.norm(), 0.0, 1e-10 * std::max(1.0, de.norm() * bond.norm()));
}

TEST(SnapEdge, ConjugationSymmetryOfUtotAndZ) {
  // The symmetry exploited by the V5+ kernels, on the accumulated Utot
  // and on the coupled Z matrices: X[J-a, J-b] = (-1)^(a+b) conj(X[a,b]).
  SnapParams p;
  p.twojmax = 6;
  p.rcut = 3.6;
  Bispectrum bi(p);
  Rng rng(61);
  const auto rij = shell(rng, 9, 0.9, 3.4);
  bi.compute_ui(rij, {});
  bi.compute_zi();

  const auto& idx = bi.index();
  for (int j = 0; j <= p.twojmax; ++j) {
    const int n = j + 1;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const Cplx lhs = bi.utot()[idx.u_index(j, a, b)];
        const Cplx rhs = bi.utot()[idx.u_index(j, j - a, j - b)];
        const double sign = ((a + b) % 2 == 0) ? 1.0 : -1.0;
        EXPECT_NEAR(lhs.re, sign * rhs.re, 1e-11);
        EXPECT_NEAR(lhs.im, -sign * rhs.im, 1e-11);
      }
    }
  }
  for (const auto& t : idx.z_triples()) {
    const Cplx* z = bi.zlist().data() + t.idxz_u;
    const int n = t.j + 1;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const Cplx lhs = z[a * n + b];
        const Cplx rhs = z[(t.j - a) * n + (t.j - b)];
        const double sign = ((a + b) % 2 == 0) ? 1.0 : -1.0;
        EXPECT_NEAR(lhs.re, sign * rhs.re,
                    1e-9 * std::max(1.0, std::abs(rhs.re)));
        EXPECT_NEAR(lhs.im, -sign * rhs.im,
                    1e-9 * std::max(1.0, std::abs(rhs.im)));
      }
    }
  }
}

TEST(SnapEdge, NeighborWeightZeroEqualsAbsentNeighbor) {
  SnapParams p;
  p.twojmax = 4;
  Bispectrum bi(p);
  Rng rng(67);
  auto rij = shell(rng, 6, 0.9, 4.0);

  bi.compute_ui({rij.begin(), rij.end() - 1}, {});
  bi.compute_zi();
  bi.compute_bi();
  std::vector<double> without(bi.blist().begin(), bi.blist().end());

  std::vector<double> w(rij.size(), 1.0);
  w.back() = 0.0;
  bi.compute_ui(rij, w);
  bi.compute_zi();
  bi.compute_bi();
  for (int l = 0; l < bi.num_b(); ++l) {
    EXPECT_NEAR(bi.blist()[l], without[l],
                1e-11 * std::max(1.0, std::abs(without[l])));
  }
}

}  // namespace
}  // namespace ember::snap
