// Simd ("V8") kernel parity contract: the lane-blocked SIMD kernel must
// reproduce the Symmetric (V7) kernel to <= 1e-12 per component across
// 2J, neighbor counts that exercise every remainder-lane case, thread
// counts, and the full SnapPotential evaluation. EMBER_SIMD=scalar must
// degrade to the Symmetric code path *bitwise*, and the dispatcher must
// reject unknown override values.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "md/compute_context.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "parallel/thread_pool.hpp"
#include "snap/simd/dispatch.hpp"
#include "snap/snap_potential.hpp"

namespace ember::snap {
namespace {

// Scoped EMBER_SIMD override (the dispatcher reads the environment at
// every Bispectrum construction).
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* old = std::getenv("EMBER_SIMD");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("EMBER_SIMD", value, 1);
    } else {
      ::unsetenv("EMBER_SIMD");
    }
  }
  ~ScopedSimdEnv() {
    if (had_old_) {
      ::setenv("EMBER_SIMD", old_.c_str(), 1);
    } else {
      ::unsetenv("EMBER_SIMD");
    }
  }
  ScopedSimdEnv(const ScopedSimdEnv&) = delete;
  ScopedSimdEnv& operator=(const ScopedSimdEnv&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

SnapParams base_params(int twojmax, SnapKernel kernel) {
  SnapParams p;
  p.twojmax = twojmax;
  p.rcut = 3.4;
  p.bzero_flag = true;
  p.kernel = kernel;
  return p;
}

std::vector<Vec3> random_shell(Rng& rng, int n, double rlo, double rhi) {
  std::vector<Vec3> rij;
  rij.reserve(n);
  while (static_cast<int>(rij.size()) < n) {
    Vec3 r{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
           rng.uniform(-1.0, 1.0)};
    const double norm = r.norm();
    if (norm < 0.2 || norm > 1.0) continue;
    const double scale = rng.uniform(rlo, rhi) / norm;
    rij.push_back(scale * r);
  }
  return rij;
}

class SimdKernelParity : public ::testing::TestWithParam<int> {};

TEST_P(SimdKernelParity, MatchesSymmetricAcrossNeighborCounts) {
  const int twojmax = GetParam();
  // n = 1 and 7 are pure remainder blocks on both AVX2 (width 4) and
  // AVX-512 (width 8); 9 = full block(s) + 1; 22 mixes several blocks.
  for (const int nn : {1, 7, 9, 22}) {
    Rng rng(101 + static_cast<std::uint64_t>(16 * twojmax + nn));
    const auto rij = random_shell(rng, nn, 0.8, 3.2);
    const std::vector<double> wj(rij.size(), 1.0);

    Bispectrum sym(base_params(twojmax, SnapKernel::Symmetric));
    Bispectrum simd(base_params(twojmax, SnapKernel::Simd));
    std::vector<double> beta(sym.num_b());
    for (auto& b : beta) b = 0.01 * rng.uniform(-1.0, 1.0);

    sym.compute_ui(rij, wj);
    simd.compute_ui(rij, wj);
    ASSERT_EQ(simd.cached_neighbors(), nn);
    for (int e = 0; e < sym.index().u_total(); ++e) {
      EXPECT_NEAR(simd.utot()[e].re, sym.utot()[e].re, 1e-12)
          << "n=" << nn << " u " << e;
      EXPECT_NEAR(simd.utot()[e].im, sym.utot()[e].im, 1e-12)
          << "n=" << nn << " u " << e;
    }

    sym.compute_yi(beta);
    simd.compute_yi(beta);
    const double e_sym = sym.energy_from_yi(0.4, beta);
    const double e_simd = simd.energy_from_yi(0.4, beta);
    EXPECT_NEAR(e_simd, e_sym, 1e-12 * std::max(1.0, std::abs(e_sym)));

    // Blocked force pass vs the per-neighbor cached scheme; the padded
    // remainder lanes must not leak into any neighbor's force.
    std::vector<Vec3> de_simd(rij.size());
    simd.compute_deidrj_all(de_simd);
    for (std::size_t m = 0; m < rij.size(); ++m) {
      sym.compute_duidrj_cached(static_cast<int>(m));
      const Vec3 de_sym = sym.compute_deidrj();
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(de_simd[m][d], de_sym[d], 1e-12)
            << "n=" << nn << " neighbor " << m << " dim " << d;
      }
    }

    // The single-neighbor cached entry point stays valid under Simd (it
    // gathers the lane-interleaved U cache back into scalar planes).
    sym.compute_yi(beta);
    simd.compute_yi(beta);
    for (std::size_t m = 0; m < rij.size(); ++m) {
      sym.compute_duidrj_cached(static_cast<int>(m));
      const Vec3 de_sym = sym.compute_deidrj();
      simd.compute_duidrj_cached(static_cast<int>(m));
      const Vec3 de_one = simd.compute_deidrj();
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(de_one[d], de_sym[d], 1e-12)
            << "n=" << nn << " neighbor " << m << " dim " << d;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoJmaxSweep, SimdKernelParity,
                         ::testing::Values(2, 4, 8));

TEST(SimdDispatch, ScalarOverrideIsBitwiseSymmetric) {
  ScopedSimdEnv env("scalar");
  Rng rng(7);
  const auto rij = random_shell(rng, 9, 0.8, 3.2);
  std::vector<double> beta;

  Bispectrum sym(base_params(8, SnapKernel::Symmetric));
  Bispectrum simd(base_params(8, SnapKernel::Simd));
  EXPECT_EQ(simd.simd_isa(), simd::SimdIsa::Scalar);
  beta.resize(sym.num_b());
  for (auto& b : beta) b = 0.01 * rng.uniform(-1.0, 1.0);

  sym.compute_ui(rij, {});
  simd.compute_ui(rij, {});
  for (int e = 0; e < sym.index().u_total(); ++e) {
    // Exact equality: the scalar fallback IS the Symmetric code path.
    EXPECT_EQ(simd.utot()[e].re, sym.utot()[e].re) << "u " << e;
    EXPECT_EQ(simd.utot()[e].im, sym.utot()[e].im) << "u " << e;
  }

  sym.compute_yi(beta);
  simd.compute_yi(beta);
  std::vector<Vec3> de_sym(rij.size());
  std::vector<Vec3> de_simd(rij.size());
  sym.compute_deidrj_all(de_sym);
  simd.compute_deidrj_all(de_simd);
  for (std::size_t m = 0; m < rij.size(); ++m) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(de_simd[m][d], de_sym[m][d]) << "neighbor " << m;
    }
  }
}

TEST(SimdDispatch, OverrideOnlyLowersTheIsa) {
  const simd::SimdIsa cap = simd::max_supported_isa();
  {
    ScopedSimdEnv env("scalar");
    EXPECT_EQ(simd::choose_isa(), simd::SimdIsa::Scalar);
  }
  {
    // Requesting above capability clamps down instead of failing.
    ScopedSimdEnv env("avx512");
    EXPECT_EQ(simd::choose_isa(), cap);
  }
  {
    ScopedSimdEnv env(nullptr);
    EXPECT_EQ(simd::choose_isa(), cap);
  }
}

TEST(SimdDispatch, UnknownOverrideThrows) {
  ScopedSimdEnv env("sse9");
  EXPECT_THROW(static_cast<void>(simd::choose_isa()), Error);
  EXPECT_THROW(Bispectrum(base_params(2, SnapKernel::Simd)), Error);
}

TEST(SimdDispatch, LaneWidthMatchesIsa) {
  EXPECT_EQ(simd::lane_width(simd::SimdIsa::Scalar), 1);
  EXPECT_EQ(simd::lane_width(simd::SimdIsa::Avx2), 4);
  EXPECT_EQ(simd::lane_width(simd::SimdIsa::Avx512), 8);
  EXPECT_STREQ(simd::to_string(simd::SimdIsa::Avx2), "avx2");
  // An instance reports the ISA it actually dispatched to.
  Bispectrum simd_bi(base_params(2, SnapKernel::Simd));
  EXPECT_EQ(simd_bi.simd_isa(), simd::choose_isa());
}

// ---- full-potential parity over a periodic system ------------------------

SnapModel parity_model(int twojmax, SnapKernel kernel, std::uint64_t seed) {
  SnapParams p = base_params(twojmax, kernel);
  p.rcut = 2.6;
  SnapModel m;
  m.params = p;
  Bispectrum bi(p);
  Rng rng(seed);
  m.beta.resize(bi.num_b());
  for (auto& b : m.beta) b = 0.02 * rng.uniform(-1.0, 1.0);
  m.beta0 = -1.0;
  return m;
}

md::System perturbed_diamond(int reps, double sigma, std::uint64_t seed) {
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = reps;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(seed);
  md::perturb(sys, sigma, rng);
  return sys;
}

struct ForceRun {
  double energy = 0.0;
  double virial = 0.0;
  std::vector<Vec3> f;
};

ForceRun run_kernel(const SnapModel& model, const md::System& start,
                    int nthreads) {
  md::System sys = start;
  SnapPotential pot(model);
  const md::ComputeContext ctx{ExecutionPolicy{nthreads}};
  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys, /*use_ghosts=*/false, &ctx);
  sys.zero_forces();
  const auto ev = pot.compute(ctx, sys, nl);
  return {ev.energy, ev.virial,
          std::vector<Vec3>(sys.f.begin(), sys.f.end())};
}

TEST(SimdKernel, PotentialMatchesSymmetricAcrossThreads) {
  const md::System sys = perturbed_diamond(2, 0.1, 23);
  SnapModel sym = parity_model(8, SnapKernel::Symmetric, 7);
  SnapModel simd = sym;
  simd.params.kernel = SnapKernel::Simd;

  const ForceRun oracle = run_kernel(sym, sys, 1);
  for (const int nth : {1, 4}) {
    const ForceRun got = run_kernel(simd, sys, nth);
    EXPECT_NEAR(got.energy, oracle.energy,
                1e-12 * std::max(1.0, std::abs(oracle.energy)))
        << nth << " threads";
    EXPECT_NEAR(got.virial, oracle.virial,
                1e-12 * std::max(1.0, std::abs(oracle.virial)))
        << nth << " threads";
    ASSERT_EQ(got.f.size(), oracle.f.size());
    for (std::size_t i = 0; i < oracle.f.size(); ++i) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(got.f[i][d], oracle.f[i][d], 1e-12)
            << nth << " threads, atom " << i << " dim " << d;
      }
    }
  }
}

TEST(SimdKernel, ModelRoundTripsKernelChoice) {
  SnapModel m = parity_model(4, SnapKernel::Simd, 3);
  const char* path = "simd_kernel_model.tmp";
  m.save(path);
  const SnapModel back = SnapModel::load(path);
  EXPECT_EQ(back.params.kernel, SnapKernel::Simd);
  std::remove(path);
}

}  // namespace
}  // namespace ember::snap
