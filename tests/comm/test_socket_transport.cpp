// Socket-backend-specific behavior: rank-death error propagation (a
// killed rank must produce a clean ember::Error on the launcher, never a
// hang), in-child failure surfacing, cross-backend metric parity, and
// the length-prefixed wire format.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <utility>

#include "comm/transport.hpp"
#include "comm/wire.hpp"
#include "obs/metrics.hpp"
#include "transport_test_util.hpp"

namespace ember::comm {
namespace {

using test::make;

TEST(SocketTransport, KilledRankRaisesErrorNotHang) {
  const auto ctx = make(TransportKind::Socket, 4);
  EXPECT_THROW(ctx->run([](Transport& c) {
                 // Rank 2 dies without a word mid-protocol; the others
                 // block in a collective that needs it. EOF must cascade
                 // through every survivor and reach the launcher.
                 if (c.rank() == 2) ::_exit(7);
                 c.barrier();
               }),
               Error);
}

TEST(SocketTransport, DeadPeerDetectedOnDirectRecv) {
  const auto ctx = make(TransportKind::Socket, 2);
  try {
    ctx->run([](Transport& c) {
      if (c.rank() == 1) ::_exit(7);
      (void)c.recv_value<int>(1, 5);
    });
    FAIL() << "expected ember::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("closed"), std::string::npos);
  }
}

TEST(SocketTransport, ChildExceptionMessageReachesLauncher) {
  const auto ctx = make(TransportKind::Socket, 3);
  try {
    ctx->run([](Transport& c) {
      if (c.rank() == 1) throw Error("boom from rank 1");
    });
    FAIL() << "expected ember::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom from rank 1"),
              std::string::npos);
  }
}

TEST(SocketTransport, ChildExpectFailureFailsTheRun) {
  // EXPECT_* inside a forked rank records its failure in the child's
  // copy of gtest; the failure probe turns that into a nonzero child
  // exit, which must fail the run here in the launcher.
  const auto ctx = make(TransportKind::Socket, 2);
  EXPECT_THROW(ctx->run([](Transport& c) {
                 if (c.rank() == 1) {
                   EXPECT_EQ(1, 2) << "intentional in-child failure";
                 }
               }),
               Error);
}

TEST(SocketTransport, TrafficMetricsMatchThreadBackend) {
  // The same program must move the same comm.messages / comm.bytes on
  // either backend: user sends count once each, collectives count zero
  // (shared-memory phases on one side, uncounted internal frames on the
  // other). Socket children report their traffic over the control
  // channel and the launcher folds it into this process's registry.
  auto run_once = [](TransportKind kind) {
    auto& messages = obs::Registry::global().counter("comm.messages");
    auto& bytes = obs::Registry::global().counter("comm.bytes");
    const double m0 = messages.value();
    const double b0 = bytes.value();
    const auto ctx = make(kind, 2);
    ctx->run([](Transport& c) {
      c.send_value(1 - c.rank(), 4, 3.25);
      EXPECT_DOUBLE_EQ(c.recv_value<double>(1 - c.rank(), 4), 3.25);
      c.barrier();
      EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 2.0);
    });
    return std::pair<double, double>{messages.value() - m0,
                                     bytes.value() - b0};
  };
  const auto thread_delta = run_once(TransportKind::Thread);
  const auto socket_delta = run_once(TransportKind::Socket);
  EXPECT_DOUBLE_EQ(thread_delta.first, 2.0);
  EXPECT_DOUBLE_EQ(thread_delta.second, 16.0);
  EXPECT_DOUBLE_EQ(socket_delta.first, thread_delta.first);
  EXPECT_DOUBLE_EQ(socket_delta.second, thread_delta.second);
}

TEST(SocketTransport, MakeContextRecordsBackendGauges) {
  auto& transport_gauge = obs::Registry::global().gauge("comm.transport");
  auto& ranks_gauge = obs::Registry::global().gauge("comm.ranks");
  (void)make(TransportKind::Socket, 3);
  EXPECT_DOUBLE_EQ(transport_gauge.value(), 1.0);
  EXPECT_DOUBLE_EQ(ranks_gauge.value(), 3.0);
  (void)make(TransportKind::Thread, 2);
  EXPECT_DOUBLE_EQ(transport_gauge.value(), 0.0);
  EXPECT_DOUBLE_EQ(ranks_gauge.value(), 2.0);
}

TEST(SocketTransport, ContextIsReusableAcrossRuns) {
  const auto ctx = make(TransportKind::Socket, 2);
  for (int round = 0; round < 3; ++round) {
    const auto bytes = ctx->run_gather([round](Transport& c) {
      const double sum =
          c.allreduce_sum(static_cast<double>(c.rank() + round));
      if (c.rank() != 0) return std::vector<std::byte>{};
      return to_bytes(sum);
    });
    EXPECT_DOUBLE_EQ(from_bytes<double>(bytes), 2.0 * round + 1.0);
  }
}

TEST(TransportEnv, DefaultKindHonoursEmberTransport) {
  ASSERT_EQ(::setenv("EMBER_TRANSPORT", "socket", 1), 0);
  EXPECT_EQ(default_transport_kind(), TransportKind::Socket);
  ASSERT_EQ(::setenv("EMBER_TRANSPORT", "thread", 1), 0);
  EXPECT_EQ(default_transport_kind(), TransportKind::Thread);
  ASSERT_EQ(::setenv("EMBER_TRANSPORT", "bogus", 1), 0);
  EXPECT_THROW((void)default_transport_kind(), Error);
  ASSERT_EQ(::unsetenv("EMBER_TRANSPORT"), 0);
  EXPECT_EQ(default_transport_kind(), TransportKind::Thread);
}

TEST(Wire, FramesReassembleAcrossArbitrarySplits) {
  const std::string payload = "hello, ranks";
  const auto encoded = wire::encode_frame(42, payload.data(), payload.size());
  // Feed the encoded frame one byte at a time: no prefix short of the
  // full frame may yield anything.
  wire::FrameBuffer buffer;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    buffer.append(&encoded[i], 1);
    EXPECT_FALSE(buffer.pop().has_value());
  }
  buffer.append(&encoded.back(), 1);
  const auto frame = buffer.pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->tag, 42);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(frame->payload.data()),
                        frame->payload.size()),
            payload);
  EXPECT_TRUE(buffer.empty());
}

TEST(Wire, BackToBackFramesPopInOrder) {
  wire::FrameBuffer buffer;
  std::vector<std::byte> stream;
  for (int i = 0; i < 5; ++i) {
    const auto f = wire::encode_frame(i, &i, sizeof(i));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  buffer.append(stream.data(), stream.size());
  for (int i = 0; i < 5; ++i) {
    const auto frame = buffer.pop();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->tag, i);
    EXPECT_EQ(from_bytes<int>(frame->payload), i);
  }
  EXPECT_FALSE(buffer.pop().has_value());
}

TEST(Wire, CorruptLengthPrefixThrows) {
  wire::FrameHeader header;
  header.tag = 1;
  header.payload_bytes = ~0ULL;  // absurd length: must not allocate
  wire::FrameBuffer buffer;
  buffer.append(reinterpret_cast<const std::byte*>(&header), sizeof(header));
  EXPECT_THROW((void)buffer.pop(), Error);
}

}  // namespace
}  // namespace ember::comm
