// Tests of the message-passing layer, run against both transport
// backends (thread ranks and forked socket-connected processes) through
// the public comm::Transport interface.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <tuple>

#include "comm/transport.hpp"
#include "transport_test_util.hpp"

namespace ember::comm {
namespace {

using test::kBothKinds;
using test::make;

class Transports : public ::testing::TestWithParam<TransportKind> {};

TEST_P(Transports, PointToPointRoundTrip) {
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    if (c.rank() == 0) {
      std::vector<double> data{1.0, 2.0, 3.5};
      c.send(1, 7, data);
      const auto back = c.recv<double>(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[2], 7.0);
    } else {
      auto data = c.recv<double>(0, 7);
      for (auto& v : data) v *= 2.0;
      c.send(0, 8, data);
    }
  });
}

TEST_P(Transports, TagsAreMatchedNotJustOrder) {
  // Send two messages with different tags; receive them out of order.
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    if (c.rank() == 0) {
      c.send_value(1, 1, 111);
      c.send_value(1, 2, 222);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 2), 222);
      EXPECT_EQ(c.recv_value<int>(0, 1), 111);
    }
  });
}

TEST_P(Transports, SameTagPreservesFifoPerSource) {
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv_value<int>(0, 3), i);
    }
  });
}

TEST_P(Transports, SelfSendWorks) {
  const auto ctx = make(GetParam(), 1);
  ctx->run([](Transport& c) {
    c.send_value(0, 5, 3.25);
    EXPECT_DOUBLE_EQ(c.recv_value<double>(0, 5), 3.25);
  });
}

TEST_P(Transports, AnySourceRecvDeliversFromEveryRank) {
  const auto ctx = make(GetParam(), 4);
  ctx->run([](Transport& c) {
    if (c.rank() == 0) {
      long seen_mask = 0;
      for (int i = 0; i < c.size() - 1; ++i) {
        const auto [source, payload] = c.recv_bytes_any(9);
        EXPECT_EQ(from_bytes<int>(payload), source * 100);
        seen_mask |= 1L << source;
      }
      EXPECT_EQ(seen_mask, 0b1110);
    } else {
      c.send_value(0, 9, c.rank() * 100);
    }
  });
}

TEST_P(Transports, KindAndSizeAreReported) {
  const auto ctx = make(GetParam(), 2);
  EXPECT_EQ(ctx->kind(), GetParam());
  EXPECT_EQ(ctx->size(), 2);
  const auto kind = GetParam();
  ctx->run([kind](Transport& c) {
    EXPECT_EQ(c.kind(), kind);
    EXPECT_EQ(c.size(), 2);
  });
}

TEST_P(Transports, RunGatherShipsRootResult) {
  const auto ctx = make(GetParam(), 3);
  const auto bytes = ctx->run_gather([](Transport& c) {
    const double sum = c.allreduce_sum(static_cast<double>(c.rank()));
    if (c.rank() != 0) return std::vector<std::byte>{};
    return to_bytes(sum);
  });
  EXPECT_DOUBLE_EQ(from_bytes<double>(bytes), 3.0);
}

TEST_P(Transports, ExceptionsPropagateFromRanks) {
  const auto ctx = make(GetParam(), 2);
  EXPECT_THROW(ctx->run([](Transport& c) {
                 if (c.rank() == 1) throw Error("rank 1 failed");
                 // Rank 0 must not deadlock waiting: no communication here.
               }),
               Error);
}

INSTANTIATE_TEST_SUITE_P(Comm, Transports, ::testing::ValuesIn(kBothKinds),
                         test::kind_name);

class CommCollectives
    : public ::testing::TestWithParam<std::tuple<TransportKind, int>> {
 protected:
  [[nodiscard]] TransportKind kind() const { return std::get<0>(GetParam()); }
  [[nodiscard]] int ranks() const { return std::get<1>(GetParam()); }
};

TEST_P(CommCollectives, AllreduceSumAndMax) {
  const int n = ranks();
  const auto ctx = make(kind(), n);
  ctx->run([n](Transport& c) {
    const double sum = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2.0);
    const long lsum = c.allreduce_sum(static_cast<long>(2));
    EXPECT_EQ(lsum, 2L * n);
    const double mx = c.allreduce_max(static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(mx, n - 1.0);
    EXPECT_TRUE(c.allreduce_or(c.rank() == n - 1));
    EXPECT_FALSE(c.allreduce_or(false));
  });
}

TEST_P(CommCollectives, RepeatedReductionsStayConsistent) {
  const int n = ranks();
  const auto ctx = make(kind(), n);
  ctx->run([n](Transport& c) {
    for (int round = 0; round < 50; ++round) {
      const double sum = c.allreduce_sum(static_cast<double>(round));
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(round) * n);
    }
  });
}

TEST_P(CommCollectives, GatherAndBroadcast) {
  const int n = ranks();
  const auto ctx = make(kind(), n);
  ctx->run([n](Transport& c) {
    const auto gathered = c.gather(static_cast<double>(c.rank() * 10), 0);
    if (c.rank() == 0) {
      ASSERT_EQ(static_cast<int>(gathered.size()), n);
      for (int r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(gathered[r], r * 10.0);
    }
    const double b = c.broadcast(c.rank() == 0 ? 42.5 : -1.0, 0);
    EXPECT_DOUBLE_EQ(b, 42.5);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Comm, CommCollectives,
    ::testing::Combine(::testing::ValuesIn(kBothKinds),
                       ::testing::Values(1, 2, 3, 4, 8)),
    test::kind_size_name);

// Thread-only: observes rank progress through a shared atomic, which
// only exists when the ranks share an address space.
class ThreadCollectives : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCollectives, BarrierSynchronizes) {
  const int n = GetParam();
  const auto ctx = make(TransportKind::Thread, n);
  std::atomic<int> phase_count{0};
  ctx->run([&](Transport& c) {
    for (int phase = 0; phase < 5; ++phase) {
      phase_count.fetch_add(1, std::memory_order_seq_cst);
      c.barrier();
      // After the barrier every rank must have incremented for this phase.
      EXPECT_GE(phase_count.load(std::memory_order_seq_cst), (phase + 1) * n);
      c.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ThreadCollectives,
                         ::testing::Values(1, 2, 3, 4, 8));

// Barriers must synchronize process-backed ranks too; without shared
// memory, prove it by bouncing a strictly-phased token through rank 0.
class SocketCollectives : public ::testing::TestWithParam<int> {};

TEST_P(SocketCollectives, BarrierOrdersPhases) {
  const int n = GetParam();
  const auto ctx = make(TransportKind::Socket, n);
  ctx->run([](Transport& c) {
    for (int phase = 0; phase < 5; ++phase) {
      if (c.rank() != 0) c.send_value(0, 21, phase);
      c.barrier();
      if (c.rank() == 0) {
        // Every rank's phase message must have arrived before the
        // barrier released us.
        for (int r = 1; r < c.size(); ++r) {
          EXPECT_EQ(c.recv_value<int>(r, 21), phase);
        }
      }
      c.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SocketCollectives,
                         ::testing::Values(2, 3, 4, 8));

TEST(TransportSpecTest, KindParsingRoundTrips) {
  EXPECT_EQ(transport_kind_from_string("thread"), TransportKind::Thread);
  EXPECT_EQ(transport_kind_from_string("socket"), TransportKind::Socket);
  EXPECT_STREQ(to_string(TransportKind::Thread), "thread");
  EXPECT_STREQ(to_string(TransportKind::Socket), "socket");
  EXPECT_THROW((void)transport_kind_from_string("carrier-pigeon"), Error);
}

}  // namespace
}  // namespace ember::comm
