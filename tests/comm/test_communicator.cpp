// Tests of the in-process message-passing layer.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/communicator.hpp"

namespace ember::comm {
namespace {

TEST(Communicator, PointToPointRoundTrip) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<double> data{1.0, 2.0, 3.5};
      c.send(1, 7, data);
      const auto back = c.recv<double>(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[2], 7.0);
    } else {
      auto data = c.recv<double>(0, 7);
      for (auto& v : data) v *= 2.0;
      c.send(0, 8, data);
    }
  });
}

TEST(Communicator, TagsAreMatchedNotJustOrder) {
  // Send two messages with different tags; receive them out of order.
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send_value(1, 1, 111);
      c.send_value(1, 2, 222);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 2), 222);
      EXPECT_EQ(c.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(Communicator, SameTagPreservesFifoPerSource) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv_value<int>(0, 3), i);
    }
  });
}

TEST(Communicator, SelfSendWorks) {
  World world(1);
  world.run([](Communicator& c) {
    c.send_value(0, 5, 3.25);
    EXPECT_DOUBLE_EQ(c.recv_value<double>(0, 5), 3.25);
  });
}

class CommCollectives : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectives, AllreduceSumAndMax) {
  const int n = GetParam();
  World world(n);
  world.run([n](Communicator& c) {
    const double sum = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2.0);
    const long lsum = c.allreduce_sum(static_cast<long>(2));
    EXPECT_EQ(lsum, 2L * n);
    const double mx = c.allreduce_max(static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(mx, n - 1.0);
    EXPECT_TRUE(c.allreduce_or(c.rank() == n - 1));
    EXPECT_FALSE(c.allreduce_or(false));
  });
}

TEST_P(CommCollectives, RepeatedReductionsStayConsistent) {
  const int n = GetParam();
  World world(n);
  world.run([n](Communicator& c) {
    for (int round = 0; round < 50; ++round) {
      const double sum = c.allreduce_sum(static_cast<double>(round));
      EXPECT_DOUBLE_EQ(sum, static_cast<double>(round) * n);
    }
  });
}

TEST_P(CommCollectives, BarrierSynchronizes) {
  const int n = GetParam();
  World world(n);
  std::atomic<int> phase_count{0};
  world.run([&](Communicator& c) {
    for (int phase = 0; phase < 5; ++phase) {
      phase_count.fetch_add(1, std::memory_order_seq_cst);
      c.barrier();
      // After the barrier every rank must have incremented for this phase.
      EXPECT_GE(phase_count.load(std::memory_order_seq_cst), (phase + 1) * n);
      c.barrier();
    }
  });
}

TEST_P(CommCollectives, GatherAndBroadcast) {
  const int n = GetParam();
  World world(n);
  world.run([n](Communicator& c) {
    const auto gathered = c.gather(static_cast<double>(c.rank() * 10), 0);
    if (c.rank() == 0) {
      ASSERT_EQ(static_cast<int>(gathered.size()), n);
      for (int r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(gathered[r], r * 10.0);
    }
    const double b = c.broadcast(c.rank() == 0 ? 42.5 : -1.0, 0);
    EXPECT_DOUBLE_EQ(b, 42.5);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CommCollectives,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Communicator, ExceptionsPropagateFromRanks) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& c) {
                 if (c.rank() == 1) throw Error("rank 1 failed");
                 // Rank 0 must not deadlock waiting: no communication here.
               }),
               Error);
}

}  // namespace
}  // namespace ember::comm
