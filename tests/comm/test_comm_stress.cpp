// Stress and edge-case coverage for the message-passing layer: large
// payloads, interleaved tags, all-to-all patterns, and mixed
// collectives — run against both transport backends. For the socket
// backend the large-payload and all-to-all cases double as deadlock
// tests of the send-side progress engine (everyone pushing at once must
// keep draining).

#include <gtest/gtest.h>

#include <numeric>

#include "comm/transport.hpp"
#include "common/rng.hpp"
#include "transport_test_util.hpp"

namespace ember::comm {
namespace {

using test::kBothKinds;
using test::make;

class CommStress : public ::testing::TestWithParam<TransportKind> {};

TEST_P(CommStress, LargePayloadRoundTrip) {
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    if (c.rank() == 0) {
      std::vector<double> big(1 << 20);  // 8 MB
      std::iota(big.begin(), big.end(), 0.0);
      c.send(1, 1, big);
    } else {
      const auto got = c.recv<double>(0, 1);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(1 << 20));
      EXPECT_DOUBLE_EQ(got[12345], 12345.0);
      EXPECT_DOUBLE_EQ(got.back(), (1 << 20) - 1.0);
    }
  });
}

TEST_P(CommStress, LargePayloadsBothDirectionsAtOnce) {
  // Both ranks send 8 MB before either receives: a transport whose send
  // blocks without draining incoming data deadlocks here.
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    std::vector<double> big(1 << 20, 1.5 + c.rank());
    c.send(1 - c.rank(), 2, big);
    const auto got = c.recv<double>(1 - c.rank(), 2);
    ASSERT_EQ(got.size(), big.size());
    EXPECT_DOUBLE_EQ(got.front(), 1.5 + (1 - c.rank()));
    EXPECT_DOUBLE_EQ(got.back(), 1.5 + (1 - c.rank()));
  });
}

TEST_P(CommStress, EmptyMessagesAreDelivered) {
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    if (c.rank() == 0) {
      c.send(1, 9, std::vector<double>{});
    } else {
      EXPECT_TRUE(c.recv<double>(0, 9).empty());
    }
  });
}

TEST_P(CommStress, AllToAllExchange) {
  const int n = 6;
  const auto ctx = make(GetParam(), n);
  ctx->run([n](Transport& c) {
    // Everyone sends rank*100+dest to everyone (including self).
    for (int dest = 0; dest < n; ++dest) {
      c.send_value(dest, 7, c.rank() * 100 + dest);
    }
    long sum = 0;
    for (int src = 0; src < n; ++src) {
      const int v = c.recv_value<int>(src, 7);
      EXPECT_EQ(v, src * 100 + c.rank());
      sum += v;
    }
    EXPECT_GT(sum, 0);
  });
}

TEST_P(CommStress, InterleavedTagsAcrossManyRounds) {
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    Rng rng(40 + c.rank());
    if (c.rank() == 0) {
      // Interleave the three tags randomly while each tag's own sequence
      // stays in send order (per-source-per-tag FIFO is the guarantee).
      int next_seq[4] = {0, 0, 0, 0};
      for (int sent = 0; sent < 60; ++sent) {
        int tag;
        do {
          tag = 1 + static_cast<int>(rng.uniform_index(3));
        } while (next_seq[tag] >= 20);
        c.send_value(1, tag, next_seq[tag]++);
      }
    } else {
      // Per-tag FIFO must hold regardless of the send interleaving.
      for (int tag : {3, 1, 2}) {
        for (int i = 0; i < 20; ++i) {
          EXPECT_EQ(c.recv_value<int>(0, tag), i) << "tag " << tag;
        }
      }
    }
  });
}

TEST_P(CommStress, ReductionsInterleaveWithPointToPoint) {
  const int n = 4;
  const auto ctx = make(GetParam(), n);
  ctx->run([n](Transport& c) {
    for (int round = 0; round < 10; ++round) {
      const double s = c.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, n);
      const int partner = (c.rank() + 1) % n;
      const int source = (c.rank() + n - 1) % n;
      c.send_value(partner, 100 + round, c.rank());
      EXPECT_EQ(c.recv_value<int>(source, 100 + round), source);
      c.barrier();
    }
  });
}

TEST_P(CommStress, MaxAndOrSemantics) {
  const auto ctx = make(GetParam(), 5);
  ctx->run([](Transport& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(-static_cast<double>(c.rank())), 0.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(c.rank() == 3 ? 7.5 : -1e9), 7.5);
    EXPECT_FALSE(c.allreduce_or(false));
    EXPECT_TRUE(c.allreduce_or(c.rank() % 2 == 0));
  });
}

TEST_P(CommStress, CommSecondsAccumulate) {
  const auto ctx = make(GetParam(), 2);
  ctx->run([](Transport& c) {
    c.reset_comm_seconds();
    if (c.rank() == 0) {
      c.send_value(1, 1, 42);
      c.barrier();
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 1), 42);
      c.barrier();
      EXPECT_GE(c.comm_seconds(), 0.0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Comm, CommStress, ::testing::ValuesIn(kBothKinds),
                         test::kind_name);

}  // namespace
}  // namespace ember::comm
