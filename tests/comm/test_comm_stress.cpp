// Stress and edge-case coverage for the message-passing layer: large
// payloads, interleaved tags, all-to-all patterns, and mixed collectives.

#include <gtest/gtest.h>

#include <numeric>

#include "comm/communicator.hpp"
#include "common/rng.hpp"

namespace ember::comm {
namespace {

TEST(CommStress, LargePayloadRoundTrip) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<double> big(1 << 20);  // 8 MB
      std::iota(big.begin(), big.end(), 0.0);
      c.send(1, 1, big);
    } else {
      const auto got = c.recv<double>(0, 1);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(1 << 20));
      EXPECT_DOUBLE_EQ(got[12345], 12345.0);
      EXPECT_DOUBLE_EQ(got.back(), (1 << 20) - 1.0);
    }
  });
}

TEST(CommStress, EmptyMessagesAreDelivered) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 9, std::vector<double>{});
    } else {
      EXPECT_TRUE(c.recv<double>(0, 9).empty());
    }
  });
}

TEST(CommStress, AllToAllExchange) {
  const int n = 6;
  World world(n);
  world.run([n](Communicator& c) {
    // Everyone sends rank*100+dest to everyone (including self).
    for (int dest = 0; dest < n; ++dest) {
      c.send_value(dest, 7, c.rank() * 100 + dest);
    }
    long sum = 0;
    for (int src = 0; src < n; ++src) {
      const int v = c.recv_value<int>(src, 7);
      EXPECT_EQ(v, src * 100 + c.rank());
      sum += v;
    }
    EXPECT_GT(sum, 0);
  });
}

TEST(CommStress, InterleavedTagsAcrossManyRounds) {
  World world(2);
  world.run([](Communicator& c) {
    Rng rng(40 + c.rank());
    if (c.rank() == 0) {
      // Interleave the three tags randomly while each tag's own sequence
      // stays in send order (per-source-per-tag FIFO is the guarantee).
      int next_seq[4] = {0, 0, 0, 0};
      for (int sent = 0; sent < 60; ++sent) {
        int tag;
        do {
          tag = 1 + static_cast<int>(rng.uniform_index(3));
        } while (next_seq[tag] >= 20);
        c.send_value(1, tag, next_seq[tag]++);
      }
    } else {
      // Per-tag FIFO must hold regardless of the send interleaving.
      for (int tag : {3, 1, 2}) {
        for (int i = 0; i < 20; ++i) {
          EXPECT_EQ(c.recv_value<int>(0, tag), i) << "tag " << tag;
        }
      }
    }
  });
}

TEST(CommStress, ReductionsInterleaveWithPointToPoint) {
  const int n = 4;
  World world(n);
  world.run([n](Communicator& c) {
    for (int round = 0; round < 10; ++round) {
      const double s = c.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, n);
      const int partner = (c.rank() + 1) % n;
      const int source = (c.rank() + n - 1) % n;
      c.send_value(partner, 100 + round, c.rank());
      EXPECT_EQ(c.recv_value<int>(source, 100 + round), source);
      c.barrier();
    }
  });
}

TEST(CommStress, MaxAndOrSemantics) {
  World world(5);
  world.run([](Communicator& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(-static_cast<double>(c.rank())), 0.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(c.rank() == 3 ? 7.5 : -1e9), 7.5);
    EXPECT_FALSE(c.allreduce_or(false));
    EXPECT_TRUE(c.allreduce_or(c.rank() % 2 == 0));
  });
}

TEST(CommStress, CommSecondsAccumulate) {
  World world(2);
  world.run([](Communicator& c) {
    c.reset_comm_seconds();
    if (c.rank() == 0) {
      c.send_value(1, 1, 42);
      c.barrier();
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 1), 42);
      c.barrier();
      EXPECT_GE(c.comm_seconds(), 0.0);
    }
  });
}

}  // namespace
}  // namespace ember::comm
