#pragma once

// Shared helpers for tests parameterized over the comm transport
// backends. make() routes through comm::make_context like production
// code, and installs the rank-failure probe so gtest EXPECT_* failures
// inside a forked socket rank fail the launching test (the child exits
// nonzero and the launcher raises ember::Error) instead of vanishing
// with the child process.
//
// Name the instantiations via kind_name / kind_size_name: CI selects
// the multi-process subset with `ctest -R Socket`, so the backend must
// appear in the test name.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "comm/transport.hpp"

namespace ember::comm::test {

inline void install_failure_probe() {
  static const bool once = [] {
    set_rank_failure_probe([] { return ::testing::Test::HasFailure(); });
    return true;
  }();
  (void)once;
}

[[nodiscard]] inline std::unique_ptr<Context> make(TransportKind kind,
                                                   int ranks) {
  install_failure_probe();
  TransportSpec spec;
  spec.kind = kind;
  spec.ranks = ranks;
  return make_context(spec);
}

inline constexpr TransportKind kBothKinds[] = {TransportKind::Thread,
                                               TransportKind::Socket};

[[nodiscard]] inline std::string kind_label(TransportKind kind) {
  return kind == TransportKind::Thread ? "Thread" : "Socket";
}

[[nodiscard]] inline std::string kind_name(
    const ::testing::TestParamInfo<TransportKind>& info) {
  return kind_label(info.param);
}

// For Combine(kinds, sizes) params: e.g. "Socket4".
[[nodiscard]] inline std::string kind_size_name(
    const ::testing::TestParamInfo<std::tuple<TransportKind, int>>& info) {
  return kind_label(std::get<0>(info.param)) +
         std::to_string(std::get<1>(info.param));
}

}  // namespace ember::comm::test
