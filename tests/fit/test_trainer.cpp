// FitSNAP-lite validation: the solver, exact model recovery, and a real
// fit against the Tersoff oracle.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "fit/linalg.hpp"
#include "fit/trainer.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "ref/pair_tersoff.hpp"

namespace ember::fit {
namespace {

TEST(Linalg, CholeskySolvesSpdSystem) {
  // A = M^T M + I is SPD for any M.
  Rng rng(1);
  const int n = 12;
  std::vector<double> m(n * n);
  for (auto& v : m) v = rng.uniform(-1, 1);
  std::vector<double> a(n * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = (i == j) ? 1.0 : 0.0;
      for (int k = 0; k < n; ++k) s += m[k * n + i] * m[k * n + j];
      a[i * n + j] = s;
    }
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  const auto b = matvec(a, n, n, x_true);
  const auto x = solve_spd(a, b, n);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Linalg, RejectsIndefiniteMatrix) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_THROW(solve_spd(a, {1.0, 1.0}, 2), Error);
}

TEST(Trainer, RecoversExactLinearModel) {
  // Label configs with a known SNAP model; the fit must recover the
  // coefficients to solver precision (the model is exactly realizable).
  snap::SnapParams p;
  p.twojmax = 4;
  p.rcut = 2.6;
  snap::SnapModel truth;
  truth.params = p;
  Rng rng(7);
  truth.beta.resize(snap::SnapIndex(p.twojmax).num_b());
  for (auto& b : truth.beta) b = 0.05 * rng.uniform(-1, 1);
  truth.beta0 = -2.5;
  snap::SnapPotential oracle(truth);

  Trainer trainer(p, FitOptions{100.0, 1.0, 1e-12});
  for (const auto& sys : standard_carbon_configs(8, 3)) {
    trainer.add_config(sys, oracle);
  }
  const auto model = trainer.fit();

  EXPECT_NEAR(model.beta0, truth.beta0, 1e-6);
  for (std::size_t l = 0; l < truth.beta.size(); ++l) {
    EXPECT_NEAR(model.beta[l], truth.beta[l], 1e-6) << "beta " << l;
  }
  const auto metrics = trainer.evaluate(model);
  EXPECT_LT(metrics.energy_rmse_per_atom, 1e-8);
  EXPECT_LT(metrics.force_rmse, 1e-7);
}

TEST(Trainer, FitsTersoffCarbonReasonably) {
  // The oracle is not exactly representable; the fit must still reach a
  // usefully small residual on the training distribution.
  snap::SnapParams p;
  p.twojmax = 6;
  p.rcut = 2.8;
  ref::PairTersoff oracle;

  Trainer train_set(p, FitOptions{200.0, 1.0, 1e-9});
  Trainer test_set(p, FitOptions{200.0, 1.0, 1e-9});
  const auto configs = standard_carbon_configs(12, 11);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    (c % 3 == 2 ? test_set : train_set).add_config(configs[c], oracle);
  }
  const auto model = train_set.fit();

  const auto train_metrics = train_set.evaluate(model);
  const auto test_metrics = test_set.evaluate(model);
  // The oracle's repulsive wall dominates the force scale; a useful
  // surrogate captures most of it, so require the residual to be well
  // below the label RMS on train and test alike.
  EXPECT_LT(train_metrics.energy_rmse_per_atom, 0.35);
  EXPECT_LT(train_metrics.force_rmse, 0.5 * train_metrics.force_rms_label);
  EXPECT_LT(test_metrics.force_rmse, 0.8 * test_metrics.force_rms_label);
  EXPECT_GT(test_metrics.n_force_rows, 0);
}

TEST(Trainer, MoreDataDoesNotHurtTraining) {
  // Sanity: adding configurations keeps the fit well-posed and the
  // training residual finite (regression guard for the accumulation path).
  snap::SnapParams p;
  p.twojmax = 2;
  p.rcut = 2.5;
  ref::PairTersoff oracle;
  Trainer small(p), large(p);
  const auto configs = standard_carbon_configs(10, 17);
  for (std::size_t c = 0; c < 4; ++c) small.add_config(configs[c], oracle);
  for (const auto& cfg : configs) large.add_config(cfg, oracle);
  const auto m_small = small.fit();
  const auto m_large = large.fit();
  EXPECT_TRUE(std::isfinite(m_small.beta0));
  EXPECT_TRUE(std::isfinite(m_large.beta0));
  const auto metrics = large.evaluate(m_large);
  EXPECT_TRUE(std::isfinite(metrics.force_rmse));
}

}  // namespace
}  // namespace ember::fit
