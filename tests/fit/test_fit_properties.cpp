// Regression properties of the trainer: weighting semantics, ridge path,
// determinism, and robustness of the standard config generator.

#include <gtest/gtest.h>

#include <cmath>

#include "fit/trainer.hpp"
#include "ref/pair_tersoff.hpp"

namespace ember::fit {
namespace {

snap::SnapParams small_params() {
  snap::SnapParams p;
  p.twojmax = 4;
  p.rcut = 2.7;
  return p;
}

TEST(FitProperties, TrainingIsDeterministic) {
  ref::PairTersoff oracle;
  const auto configs = standard_carbon_configs(6, 5);
  Trainer a(small_params()), b(small_params());
  for (const auto& cfg : configs) {
    a.add_config(cfg, oracle);
    b.add_config(cfg, oracle);
  }
  const auto ma = a.fit();
  const auto mb = b.fit();
  EXPECT_DOUBLE_EQ(ma.beta0, mb.beta0);
  for (std::size_t l = 0; l < ma.beta.size(); ++l) {
    EXPECT_DOUBLE_EQ(ma.beta[l], mb.beta[l]);
  }
}

TEST(FitProperties, RidgeShrinksTheCoefficients) {
  ref::PairTersoff oracle;
  const auto configs = standard_carbon_configs(6, 7);
  auto norm_at = [&](double ridge) {
    Trainer t(small_params(), FitOptions{100.0, 1.0, ridge});
    for (const auto& cfg : configs) t.add_config(cfg, oracle);
    const auto m = t.fit();
    double norm = 0.0;
    for (const double b : m.beta) norm += b * b;
    return std::sqrt(norm);
  };
  const double loose = norm_at(1e-8);
  const double tight = norm_at(1e2);
  const double extreme = norm_at(1e6);
  EXPECT_GT(loose, tight);
  EXPECT_GT(tight, extreme);
}

TEST(FitProperties, EnergyWeightTradesForceAccuracy) {
  ref::PairTersoff oracle;
  const auto configs = standard_carbon_configs(8, 9);
  auto fit_with = [&](double ew, double fw) {
    Trainer t(small_params(), FitOptions{ew, fw, 1e-9});
    for (const auto& cfg : configs) t.add_config(cfg, oracle);
    const auto m = t.fit();
    Trainer eval(small_params());
    for (const auto& cfg : configs) eval.add_config(cfg, oracle);
    return eval.evaluate(m);
  };
  const auto energy_heavy = fit_with(1e5, 1e-3);
  const auto force_heavy = fit_with(1e-3, 1e2);
  EXPECT_LT(energy_heavy.energy_rmse_per_atom,
            force_heavy.energy_rmse_per_atom);
  EXPECT_LT(force_heavy.force_rmse, energy_heavy.force_rmse);
}

TEST(FitProperties, StandardConfigsAreDiverseAndWellFormed) {
  const auto configs = standard_carbon_configs(12, 11);
  ASSERT_EQ(configs.size(), 12u);
  // Four structure families by construction; sizes differ.
  std::set<int> sizes;
  for (const auto& sys : configs) {
    EXPECT_GT(sys.nlocal(), 8);
    EXPECT_GT(sys.box().volume(), 0.0);
    sizes.insert(sys.nlocal());
  }
  EXPECT_GE(sizes.size(), 3u);
  // Determinism of the generator.
  const auto again = standard_carbon_configs(12, 11);
  EXPECT_DOUBLE_EQ(again[3].x[5].x, configs[3].x[5].x);
}

TEST(FitProperties, EvaluateOnEmptyTrainerIsSafe) {
  Trainer t(small_params());
  EXPECT_THROW((void)t.fit(), Error);
}

}  // namespace
}  // namespace ember::fit
