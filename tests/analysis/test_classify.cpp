// Phase-classifier validation: ideal lattices, thermal robustness sweep,
// and disordered samples.

#include <gtest/gtest.h>

#include "analysis/classify.hpp"
#include "common/rng.hpp"
#include "md/lattice.hpp"

namespace ember::analysis {
namespace {

md::System make(md::LatticeKind kind, double a, int reps, double sigma,
                std::uint64_t seed) {
  md::LatticeSpec spec;
  spec.kind = kind;
  spec.a = a;
  spec.nx = spec.ny = spec.nz = reps;
  md::System sys = md::build_lattice(spec, 12.011);
  if (sigma > 0) {
    Rng rng(seed);
    md::perturb(sys, sigma, rng);
  }
  return sys;
}

TEST(Classifier, IdealDiamondIsAllDiamond) {
  const auto sys = make(md::LatticeKind::Diamond, 3.567, 3, 0.0, 0);
  const auto f = analyze(sys);
  EXPECT_DOUBLE_EQ(f.diamond, 1.0);
  EXPECT_DOUBLE_EQ(f.bc8, 0.0);
}

TEST(Classifier, IdealBc8IsAllBc8) {
  const auto sys = make(md::LatticeKind::Bc8, 4.46, 2, 0.0, 0);
  const auto f = analyze(sys);
  EXPECT_DOUBLE_EQ(f.bc8, 1.0);
  EXPECT_DOUBLE_EQ(f.diamond, 0.0);
}

TEST(Classifier, CompressedDiamondStaysDiamond) {
  // The classifier must be scale-free enough to survive ~12 Mbar
  // compression (a shrinks ~10%) with a matching bond cutoff.
  const auto sys = make(md::LatticeKind::Diamond, 3.2, 3, 0.0, 0);
  ClassifyOptions opt;
  opt.bond_cutoff = 1.7;
  const auto f = analyze(sys, opt);
  EXPECT_DOUBLE_EQ(f.diamond, 1.0);
}

TEST(Classifier, RandomPackingIsDisordered) {
  Rng rng(5);
  md::Box box(11, 11, 11);
  const auto sys = md::random_packing(box, 160, 1.3, 12.011, rng);
  const auto f = analyze(sys);
  EXPECT_LT(f.crystalline(), 0.05);
}

class ClassifierThermal : public ::testing::TestWithParam<double> {};

TEST_P(ClassifierThermal, DiamondSurvivesThermalNoise) {
  const double sigma = GetParam();
  const auto sys = make(md::LatticeKind::Diamond, 3.567, 3, sigma, 11);
  const auto f = analyze(sys);
  EXPECT_GT(f.diamond, 0.80) << "sigma=" << sigma;
  EXPECT_LT(f.bc8, 0.1);
}

TEST_P(ClassifierThermal, Bc8SurvivesThermalNoise) {
  // The classifier is tuned precision-first (false BC8 positives would
  // corrupt a discovery claim), so recall degrades gracefully with
  // disorder: near-total below sigma ~ 0.03 A, still a clear majority
  // signal at 0.05 A.
  const double sigma = GetParam();
  const auto sys = make(md::LatticeKind::Bc8, 4.46, 2, sigma, 13);
  const auto f = analyze(sys);
  EXPECT_GT(f.bc8, sigma <= 0.03 ? 0.75 : 0.40) << "sigma=" << sigma;
  EXPECT_LT(f.diamond, 0.15);
}

TEST_P(ClassifierThermal, HotDiamondDoesNotFakeBc8) {
  // False-positive guard: thermally distorted diamond must not read as
  // the new phase.
  const double sigma = GetParam();
  const auto sys = make(md::LatticeKind::Diamond, 3.567, 3, sigma, 19);
  const auto f = analyze(sys);
  EXPECT_LT(f.bc8, 0.08) << "sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ClassifierThermal,
                         ::testing::Values(0.01, 0.03, 0.05));

TEST(Classifier, MixedSampleReportsBothFractions) {
  // Two blocks side by side: half diamond, half BC8 (not physical, but a
  // clean accounting check away from the interface).
  auto diamond = make(md::LatticeKind::Diamond, 3.567, 2, 0.0, 0);
  const auto phases_d = classify_atoms(
      diamond, [&] {
        md::NeighborList nl(2.25, 0.0);
        nl.build(diamond);
        return nl;
      }());
  auto bc8 = make(md::LatticeKind::Bc8, 4.46, 2, 0.0, 0);
  const auto phases_b = classify_atoms(
      bc8, [&] {
        md::NeighborList nl(2.25, 0.0);
        nl.build(bc8);
        return nl;
      }());
  std::vector<Phase> all = phases_d;
  all.insert(all.end(), phases_b.begin(), phases_b.end());
  const auto f = phase_fractions(all);
  const double expected_d =
      static_cast<double>(phases_d.size()) / all.size();
  EXPECT_NEAR(f.diamond, expected_d, 1e-12);
  EXPECT_NEAR(f.bc8, 1.0 - expected_d, 1e-12);
}

TEST(Classifier, FractionsSumToOne) {
  Rng rng(17);
  md::Box box(10, 10, 10);
  const auto sys = md::random_packing(box, 120, 1.2, 12.011, rng);
  const auto f = analyze(sys);
  EXPECT_NEAR(f.diamond + f.bc8 + f.disordered + f.other, 1.0, 1e-12);
}

}  // namespace
}  // namespace ember::analysis
