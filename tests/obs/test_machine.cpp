// Machine probe: the hardware-thread count must be trustworthy (the old
// raw hardware_concurrency() call recorded "hardware_threads": 1 on some
// multi-core hosts) and the git SHA lookup must resolve the repo HEAD
// without shelling out.

#include <gtest/gtest.h>

#include <cctype>
#include <thread>

#include "obs/machine.hpp"

namespace ember::obs {
namespace {

TEST(ObsMachine, ProbeReportsPlausibleHardware) {
  const MachineInfo info = probe_machine();
  EXPECT_FALSE(info.system.empty());
  EXPECT_FALSE(info.arch.empty());
  EXPECT_GE(info.hardware_threads, 1);
  // Never below what the standard library itself reports.
  EXPECT_GE(static_cast<unsigned>(info.hardware_threads),
            std::thread::hardware_concurrency());
#ifdef __linux__
  // /proc/cpuinfo is always present on Linux, so the model string is too.
  EXPECT_FALSE(info.cpu_model.empty());
#endif
}

TEST(ObsMachine, GitHeadShaResolvesFromInsideTheRepo) {
  // ctest runs from the build tree, which lives inside the repository;
  // the lookup walks up until it finds .git.
  const std::string sha = git_head_sha(".");
  ASSERT_EQ(sha.size(), 40u) << "sha was '" << sha << "'";
  for (const char c : sha) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << sha;
  }
}

TEST(ObsMachine, GitHeadShaIsUnknownOutsideARepo) {
  EXPECT_EQ(git_head_sha("/tmp"), "unknown");
}

}  // namespace
}  // namespace ember::obs
