// Scoped spans: nesting depth, per-thread attribution and the Chrome
// trace-event JSON export.
//
// The TraceSession is a process-wide singleton; every test clears it and
// leaves it stopped, so ordering between tests does not matter.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace ember::obs {
namespace {

class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::global().stop();
    TraceSession::global().clear();
  }
  void TearDown() override {
    TraceSession::global().stop();
    TraceSession::global().clear();
  }
};

TEST_F(ObsTrace, DisabledSessionRecordsNothing) {
  {
    ScopedSpan outer("outer", "test");
    ScopedSpan inner("inner", "test");
  }
  EXPECT_TRUE(TraceSession::global().snapshot().empty());
}

TEST_F(ObsTrace, NestedSpansRecordDepthAndDuration) {
  auto& session = TraceSession::global();
  session.start();
  {
    ScopedSpan outer("outer", "test");
    {
      ScopedSpan inner("inner", "test");
    }
    {
      ScopedSpan sibling("sibling", "test");
    }
  }
  session.stop();

  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Spans land in the buffer at destruction: inner-before-outer order.
  int outer_depth = -1, inner_depth = -1, sibling_depth = -1;
  for (const auto& e : events) {
    EXPECT_GE(e.dur_ns, 0);
    EXPECT_GE(e.start_ns, 0);
    const std::string name = e.name;
    if (name == "outer") outer_depth = e.depth;
    if (name == "inner") inner_depth = e.depth;
    if (name == "sibling") sibling_depth = e.depth;
  }
  EXPECT_EQ(outer_depth, 0);
  EXPECT_EQ(inner_depth, 1);
  EXPECT_EQ(sibling_depth, 1);
  EXPECT_EQ(session.count("outer"), 1);
  EXPECT_EQ(session.count("inner"), 1);
}

TEST_F(ObsTrace, SpansCarryTheIntegerArgument) {
  auto& session = TraceSession::global();
  session.start();
  {
    ScopedSpan s("step", "step", "step", 42);
  }
  session.stop();
  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_NE(events[0].arg_key, nullptr);
  EXPECT_STREQ(events[0].arg_key, "step");
  EXPECT_EQ(events[0].arg_val, 42);
}

TEST_F(ObsTrace, ThreadsGetDistinctIdsAndNames) {
  auto& session = TraceSession::global();
  session.start();
  {
    ScopedSpan main_span("on-main", "test");
  }
  std::thread worker([&session] {
    session.set_thread_name("test-worker");
    ScopedSpan s("on-worker", "test");
  });
  worker.join();
  session.stop();

  const auto events = session.snapshot();
  ASSERT_EQ(events.size(), 2u);
  int main_tid = -1, worker_tid = -1;
  for (const auto& e : events) {
    if (std::string(e.name) == "on-main") main_tid = e.tid;
    if (std::string(e.name) == "on-worker") worker_tid = e.tid;
  }
  ASSERT_GE(main_tid, 0);
  ASSERT_GE(worker_tid, 0);
  EXPECT_NE(main_tid, worker_tid);

  // The thread-name metadata event reaches the Chrome export.
  const std::string json = session.chrome_trace().dump(0);
  EXPECT_NE(json.find("test-worker"), std::string::npos);
}

TEST_F(ObsTrace, ChromeTraceExportIsValidJson) {
  auto& session = TraceSession::global();
  session.start();
  {
    ScopedSpan outer("phase", "test", "step", 7);
    ScopedSpan inner("kernel", "test");
  }
  session.stop();

  const Json doc = session.chrome_trace();
  const std::string text = doc.dump(2);
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"phase\""), std::string::npos);
  EXPECT_NE(text.find("\"kernel\""), std::string::npos);
  // One-line dumps parse too (the interpreter writes indent=0 files).
  EXPECT_TRUE(json_valid(doc.dump(0)));
}

TEST_F(ObsTrace, ClearDropsEventsButKeepsRecordingAbility) {
  auto& session = TraceSession::global();
  session.start();
  { ScopedSpan s("before", "test"); }
  session.clear();
  EXPECT_TRUE(session.snapshot().empty());
  { ScopedSpan s("after", "test"); }
  session.stop();
  EXPECT_EQ(session.count("before"), 0);
  EXPECT_EQ(session.count("after"), 1);
}

TEST_F(ObsTrace, KernelTimingFlagRoundTrips) {
  EXPECT_FALSE(kernel_timing_enabled());
  set_kernel_timing(true);
  EXPECT_TRUE(kernel_timing_enabled());
  set_kernel_timing(false);
  EXPECT_FALSE(kernel_timing_enabled());
}

}  // namespace
}  // namespace ember::obs
