// Metrics registry: sharded lock-free updates must merge exactly, and
// reads must be safe concurrently with writers (the TSan CI subset runs
// the Concurrent* tests under ThreadSanitizer).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ember::obs {
namespace {

TEST(ObsMetrics, CounterMergesShardsExactly) {
  Counter c("test.counter");
  c.add(1.5);
  c.add(2.5, /*shard=*/7);
  c.inc();
  EXPECT_DOUBLE_EQ(c.value(), 5.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(ObsMetrics, GaugeKeepsLastWrite) {
  Gauge g("test.gauge");
  g.set(3.0);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(ObsMetrics, HistogramBucketsBySample) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h("test.hist", bounds);
  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 0 (<= bound)
  h.record(5.0);    // bucket 1
  h.record(1000.0); // overflow
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
  EXPECT_DOUBLE_EQ(snap.mean(), 1006.5 / 4.0);
}

TEST(ObsMetrics, RegistryReturnsStableHandles) {
  auto& reg = Registry::global();
  Counter& a = reg.counter("obs_test.stable");
  Counter& b = reg.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  const double bounds[] = {1.0};
  Histogram& h1 = reg.histogram("obs_test.stable_hist", bounds);
  const double other_bounds[] = {1.0, 2.0, 3.0};
  // Re-registration keeps the first bounds.
  Histogram& h2 = reg.histogram("obs_test.stable_hist", other_bounds);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 1u);
}

TEST(ObsMetrics, RegistryJsonIsValidAndContainsMetrics) {
  auto& reg = Registry::global();
  reg.counter("obs_test.json_counter").add(42.0);
  reg.gauge("obs_test.json_gauge").set(7.0);
  const std::string text = reg.dump_json();
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("obs_test.json_counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.json_gauge"), std::string::npos);
}

// Writers on many threads, exact total after join. Each thread uses its
// own thread_local shard id, so this also exercises shard assignment.
TEST(ObsMetrics, ConcurrentCounterUpdatesAreExact) {
  Counter c("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(kThreads) * kAdds);
}

// Readers racing writers: value()/snapshot()/dump_json() must be safe
// (not exact) while updates are in flight. TSan validates the claim.
TEST(ObsMetrics, ConcurrentReadsDuringWritesAreSafe) {
  auto& reg = Registry::global();
  Counter& c = reg.counter("obs_test.race_counter");
  const double bounds[] = {1e-3, 1.0};
  Histogram& h = reg.histogram("obs_test.race_hist", bounds);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1.0);
        h.record(0.5);
      }
    });
  }
  for (int r = 0; r < 50; ++r) {
    (void)c.value();
    (void)h.snapshot();
    (void)reg.dump_json();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, snap.counts[1]);  // every sample landed in bucket 1
  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(snap.count));
}

}  // namespace
}  // namespace ember::obs
