// Input-script interpreter: command parsing, state sequencing, error
// reporting, and an end-to-end production-style protocol.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "app/interpreter.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace ember::app {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

TEST(Interpreter, BuildsLatticeSystems) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.execute("mass 12.011");
  interp.execute("lattice diamond 3.567 repeat 2 2 2");
  EXPECT_TRUE(interp.has_system());
  EXPECT_EQ(interp.system().nlocal(), 64);
  EXPECT_DOUBLE_EQ(interp.system().mass(), 12.011);
  EXPECT_NE(out.str().find("created 64 atoms"), std::string::npos);
}

TEST(Interpreter, CommentsAndBlankLinesAreNoOps) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.execute("");
  interp.execute("   ");
  interp.execute("# a comment");
  interp.execute("lattice fcc 5.26 repeat 2 2 2  # trailing comment");
  EXPECT_EQ(interp.system().nlocal(), 32);
}

TEST(Interpreter, RejectsUnknownCommandsWithLineNumbers) {
  std::ostringstream out;
  Interpreter interp(out);
  try {
    interp.run_script("lattice fcc 5.26\nfrobnicate 3\n");
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(Interpreter, RejectsMalformedArguments) {
  std::ostringstream out;
  Interpreter interp(out);
  EXPECT_THROW(interp.execute("lattice diamond"), Error);       // missing a
  EXPECT_THROW(interp.execute("lattice pyrite 3.0"), Error);    // bad kind
  EXPECT_THROW(interp.execute("potential unobtainium"), Error); // bad pot
  EXPECT_THROW(interp.execute("run 10"), Error);  // no system/potential
}

TEST(Interpreter, RunsLjDynamicsEndToEnd) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script(R"(
    mass 39.948
    lattice fcc 5.26 repeat 3 3 3
    potential lj 0.0104 3.4 6.5
    thermalize 40 seed 7
    timestep 0.002
    log every 25
    run 50
  )");
  EXPECT_EQ(interp.total_steps(), 50);
  EXPECT_NE(out.str().find("step 25"), std::string::npos);
  EXPECT_NE(out.str().find("step 50"), std::string::npos);
}

TEST(Interpreter, ThermostatAndTimestepApplyMidRun) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script(R"(
    mass 39.948
    lattice fcc 5.26 repeat 2 2 2
    potential lj 0.0104 3.4 6.5
    thermalize 10 seed 3
    timestep 0.002
    run 20
    thermostat langevin 80 0.05
    run 300
  )");
  // Langevin attached after the first run must have heated the system.
  EXPECT_GT(interp.simulation()->system().temperature(), 40.0);
}

TEST(Interpreter, DumpAndCheckpointFiles) {
  const std::string xyz = "/tmp/ember_interp_test.xyz";
  const std::string ckpt = "/tmp/ember_interp_test.bin";
  std::remove(xyz.c_str());
  std::remove(ckpt.c_str());
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script("mass 39.948\n"
                    "lattice fcc 5.26 repeat 2 2 2\n"
                    "potential lj 0.0104 3.4 6.5\n"
                    "timestep 0.002\n"
                    "dump every 10 " + xyz + "\n"
                    "checkpoint every 10 " + ckpt + "\n"
                    "run 20\n");
  std::ifstream xyz_in(xyz);
  EXPECT_TRUE(xyz_in.good());
  int frames = 0;
  std::string line;
  while (std::getline(xyz_in, line)) {
    if (line == "32") ++frames;
  }
  EXPECT_EQ(frames, 2);  // steps 10 and 20

  // Restart from the checkpoint in a fresh interpreter.
  std::ostringstream out2;
  Interpreter interp2(out2);
  interp2.run_script("read_checkpoint " + ckpt + "\n"
                     "potential lj 0.0104 3.4 6.5\n"
                     "timestep 0.002\n"
                     "run 5\n");
  EXPECT_EQ(interp2.total_steps(), 5);
  std::remove(xyz.c_str());
  std::remove(ckpt.c_str());
}

TEST(Interpreter, AnalyzeReportsPhases) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script(R"(
    lattice bc8 4.46 repeat 2 2 2
    analyze
  )");
  EXPECT_NE(out.str().find("bc8 100%"), std::string::npos);
}

TEST(Interpreter, ThreadsCommandSetsExecutionPolicy) {
  std::ostringstream out;
  Interpreter interp(out);
  // Before the simulation exists the count is staged...
  interp.run_script(R"(
    mass 39.948
    lattice fcc 5.26 repeat 2 2 2
    potential lj 0.0104 3.4 6.5
    threads 3
    run 5
  )");
  ASSERT_NE(interp.simulation(), nullptr);
  EXPECT_EQ(interp.simulation()->context().nthreads(), 3);
  // ...and after it exists the policy is swapped in place.
  interp.execute("threads 1");
  EXPECT_EQ(interp.simulation()->context().nthreads(), 1);
  interp.execute("run 5");
  EXPECT_EQ(interp.total_steps(), 10);
  EXPECT_THROW(interp.execute("threads 0"), Error);
  EXPECT_THROW(interp.execute("threads lots"), Error);
}

TEST(Interpreter, RanksCommandRunsDomainDecomposed) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script(R"(
    mass 39.948
    lattice fcc 5.26 repeat 3 3 3
    potential lj 0.0104 3.4 6.5
    thermalize 40 seed 7
    timestep 0.002
    ranks 2
    log every 15
    run 30
  )");
  EXPECT_EQ(interp.total_steps(), 30);
  // State gathered back after the run: full system, no serial Simulation.
  EXPECT_EQ(interp.system().nlocal(), 108);
  EXPECT_EQ(interp.simulation(), nullptr);
  EXPECT_NE(out.str().find("step 30"), std::string::npos);
  // Back to serial mode, the gathered state keeps evolving.
  interp.execute("ranks 1");
  interp.execute("run 5");
  EXPECT_EQ(interp.total_steps(), 35);
}

TEST(Interpreter, TransportCommandSelectsBackend) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.execute("transport socket");
  EXPECT_NE(out.str().find("transport socket"), std::string::npos);
  interp.execute("transport thread");
  EXPECT_NE(out.str().find("transport thread"), std::string::npos);
  EXPECT_THROW(interp.execute("transport avian"), Error);
  EXPECT_THROW(interp.execute("transport"), Error);
}

TEST(Interpreter, SocketTransportRunsDomainDecomposed) {
  // Same protocol as RanksCommandRunsDomainDecomposed, but the ranks are
  // forked processes. Log lines land on the child's stdout, not on our
  // ostringstream, so assert on the gathered state instead.
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script(R"(
    mass 39.948
    lattice fcc 5.26 repeat 3 3 3
    potential lj 0.0104 3.4 6.5
    thermalize 40 seed 7
    timestep 0.002
    transport socket
    ranks 2
    run 30
  )");
  EXPECT_EQ(interp.total_steps(), 30);
  EXPECT_EQ(interp.system().nlocal(), 108);
  EXPECT_EQ(interp.simulation(), nullptr);
  // The gathered state keeps evolving back in serial mode.
  interp.execute("ranks 1");
  interp.execute("run 5");
  EXPECT_EQ(interp.total_steps(), 35);
}

TEST(Interpreter, ElasticRescaleAcrossCheckpoint) {
  // The rescaling story from DESIGN.md: checkpoint a 4-rank socket run,
  // then restart the same trajectory on 2 ranks. The checkpoint is a
  // plain global-system file, so rank geometry is free to change.
  const std::string ckpt = "/tmp/ember_interp_rescale.bin";
  std::remove(ckpt.c_str());
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script("mass 39.948\n"
                    "lattice fcc 5.26 repeat 3 3 3\n"
                    "potential lj 0.0104 3.4 6.5\n"
                    "thermalize 40 seed 11\n"
                    "timestep 0.002\n"
                    "transport socket\n"
                    "ranks 4\n"
                    "checkpoint every 20 " + ckpt + "\n"
                    "run 20\n");
  EXPECT_EQ(interp.system().nlocal(), 108);

  std::ostringstream out2;
  Interpreter interp2(out2);
  interp2.run_script("read_checkpoint " + ckpt + "\n"
                     "potential lj 0.0104 3.4 6.5\n"
                     "timestep 0.002\n"
                     "transport socket\n"
                     "ranks 2\n"
                     "run 10\n");
  EXPECT_EQ(interp2.total_steps(), 10);
  EXPECT_EQ(interp2.system().nlocal(), 108);
  std::remove(ckpt.c_str());
}

TEST(Interpreter, AsyncIoElasticRestartAcrossRankCounts) {
  // The PR-8 restart story: the checkpoint is written through the async
  // writer pipeline by forked socket ranks (rank 0 drains before the
  // gather, and tmp+rename means the file on disk is always complete),
  // then a fresh interpreter restarts the run on a DIFFERENT rank count,
  // dumping a compressed trajectory that streams back through the
  // analysis layer.
  const std::string ckpt = "/tmp/ember_interp_async_rescale.bin";
  const std::string traj = "/tmp/ember_interp_async_rescale.embt1";
  std::remove(ckpt.c_str());
  std::remove(traj.c_str());
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script("io async\n"
                    "mass 39.948\n"
                    "lattice fcc 5.26 repeat 3 3 3\n"
                    "potential lj 0.0104 3.4 6.5\n"
                    "thermalize 40 seed 13\n"
                    "timestep 0.002\n"
                    "transport socket\n"
                    "ranks 4\n"
                    "checkpoint every 20 " + ckpt + "\n"
                    "run 20\n");
  EXPECT_EQ(interp.system().nlocal(), 108);

  std::ostringstream out2;
  Interpreter interp2(out2);
  interp2.run_script("io async\n"
                     "read_checkpoint " + ckpt + "\n"
                     "potential lj 0.0104 3.4 6.5\n"
                     "timestep 0.002\n"
                     "transport socket\n"
                     "ranks 2\n"
                     "dump every 5 " + traj + " ember_traj\n"
                     "run 10\n"
                     "analyze trajectory " + traj + "\n");
  EXPECT_EQ(interp2.total_steps(), 10);
  EXPECT_EQ(interp2.system().nlocal(), 108);
  EXPECT_NE(out2.str().find("analyzed 2 frames from " + traj),
            std::string::npos)
      << out2.str();
  EXPECT_NE(out2.str().find("atoms 108"), std::string::npos) << out2.str();
  std::remove(ckpt.c_str());
  std::remove(traj.c_str());
}

TEST(Interpreter, ReplicasCommandRunsLockstepBatch) {
  const std::string ckpt = "/tmp/ember_interp_batch.bin";
  std::remove(ckpt.c_str());
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script("mass 39.948\n"
                    "lattice fcc 5.26 repeat 2 2 2\n"
                    "potential lj 0.0104 3.4 6.5\n"
                    "thermalize 30 seed 5\n"
                    "timestep 0.002\n"
                    "replicas 3\n"
                    "checkpoint every 10 " + ckpt + "\n"
                    "run 20\n");
  EXPECT_EQ(interp.total_steps(), 20);
  ASSERT_NE(interp.batched(), nullptr);
  EXPECT_EQ(interp.batched()->num_replicas(), 3);

  // The checkpoint is the multi-replica format; restoring it re-enters
  // replica mode in a fresh interpreter.
  std::ostringstream out2;
  Interpreter interp2(out2);
  interp2.run_script("read_checkpoint " + ckpt + "\n"
                     "potential lj 0.0104 3.4 6.5\n"
                     "timestep 0.002\n"
                     "run 5\n");
  ASSERT_NE(interp2.batched(), nullptr);
  EXPECT_EQ(interp2.batched()->num_replicas(), 3);
  EXPECT_NE(out2.str().find("restored 3 replicas"), std::string::npos);
  std::remove(ckpt.c_str());
}

TEST(Interpreter, RanksAndReplicasAreMutuallyExclusive) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.execute("ranks 2");
  EXPECT_THROW(interp.execute("replicas 2"), Error);
  interp.execute("ranks 1");
  interp.execute("replicas 2");
  EXPECT_THROW(interp.execute("ranks 4"), Error);
}

TEST(Interpreter, BarostatRequiresSerialMode) {
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script(R"(
    mass 39.948
    lattice fcc 5.26 repeat 3 3 3
    potential lj 0.0104 3.4 6.5
    barostat berendsen 1000 0.1 1e-6
    ranks 2
  )");
  EXPECT_THROW(interp.execute("run 10"), Error);
}

TEST(Interpreter, TraceAndMetricsCommandsWriteValidJson) {
  const char* trace_path = "/tmp/ember_test_trace.json";
  const char* metrics_path = "/tmp/ember_test_metrics.json";
  std::ostringstream out;
  {
    Interpreter interp(out);
    interp.run_script(R"(
      mass 39.948
      lattice fcc 5.26 repeat 2 2 2
      potential lj 0.0104 3.4 6.5
      thermalize 40 seed 7
      timestep 0.002
      trace on /tmp/ember_test_trace.json
      run 20
      trace off
      metrics dump /tmp/ember_test_metrics.json
    )");
  }
  EXPECT_NE(out.str().find("trace written to"), std::string::npos);
  EXPECT_NE(out.str().find("metrics written to"), std::string::npos);

  const std::string trace = slurp(trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(obs::json_valid(trace));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#if !defined(EMBER_OBS_DISABLED)
  EXPECT_NE(trace.find("\"step\""), std::string::npos);
#endif

  const std::string metrics = slurp(metrics_path);
  ASSERT_FALSE(metrics.empty());
  EXPECT_TRUE(obs::json_valid(metrics));
  EXPECT_NE(metrics.find("md.steps"), std::string::npos);

  // `trace off` turned the kernel-stage timers back off.
  EXPECT_FALSE(obs::kernel_timing_enabled());
  std::remove(trace_path);
  std::remove(metrics_path);
}

TEST(Interpreter, ActiveTraceFlushesWhenTheInterpreterDies) {
  const char* trace_path = "/tmp/ember_test_trace_dtor.json";
  std::ostringstream out;
  {
    Interpreter interp(out);
    interp.run_script(R"(
      mass 39.948
      lattice fcc 5.26 repeat 2 2 2
      potential lj 0.0104 3.4 6.5
      timestep 0.002
      trace on /tmp/ember_test_trace_dtor.json
      run 5
    )");
    // Script ended with the trace still on; the destructor flushes it.
  }
  const std::string trace = slurp(trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(obs::json_valid(trace));
  EXPECT_FALSE(obs::kernel_timing_enabled());
  std::remove(trace_path);
}

TEST(Interpreter, ProductionStyleProtocol) {
  // Miniature version of the paper's production input: Tersoff carbon,
  // Langevin schedule, barostat, periodic analyze.
  std::ostringstream out;
  Interpreter interp(out);
  interp.run_script(R"(
    mass 12.011
    lattice diamond 3.70 repeat 2 2 2
    potential tersoff
    thermalize 300 seed 9
    timestep 0.0002
    thermostat langevin 5000 0.05
    barostat berendsen 2e6 0.1 2e-7
    run 150
    analyze
  )");
  EXPECT_EQ(interp.total_steps(), 150);
  EXPECT_NE(out.str().find("phases:"), std::string::npos);
  // Pressure coupling engaged: box must have shrunk from the initial 7.4.
  EXPECT_LT(interp.simulation()->system().box().length(0), 7.4);
}

TEST(Interpreter, SnapKernelCommandSelectsVariantAndKeepsParity) {
  // Write a small linear SNAP model the script can load.
  const std::string model_path = "interp_snap_model.txt";
  {
    snap::SnapParams p;
    p.twojmax = 4;
    p.rcut = 2.0;
    p.kernel = snap::SnapKernel::Symmetric;
    snap::SnapModel m;
    m.params = p;
    m.beta.assign(snap::SnapIndex(p.twojmax).num_b(), 0.05);
    m.beta0 = -1.0;
    m.save(model_path);
  }

  const auto run_protocol = [&](const std::string& kernel_cmd) {
    std::ostringstream out;
    Interpreter interp(out);
    interp.run_script("mass 12.011\n"
                      "lattice diamond 3.567 repeat 2 2 2\n"
                      "potential snap " + model_path + "\n" +
                      kernel_cmd +
                      "thermalize 300 seed 4\n"
                      "timestep 0.0005\n"
                      "run 10\n");
    return std::pair<double, std::string>(
        interp.simulation()->total_energy(), out.str());
  };

  const auto [e_sym, out_sym] = run_protocol("snap_kernel symmetric\n");
  const auto [e_simd, out_simd] = run_protocol("snap_kernel simd\n");
  EXPECT_NE(out_sym.find("snap_kernel symmetric"), std::string::npos);
  // The simd acknowledgement names the dispatched ISA.
  EXPECT_NE(out_simd.find("snap_kernel simd (dispatch "), std::string::npos);
  // Same trajectory on either kernel (forces agree to ~1e-12 per step).
  EXPECT_NEAR(e_sym, e_simd, 1e-8 * std::abs(e_sym));

  // The override also applies to a later `potential snap` load.
  std::ostringstream out;
  Interpreter interp(out);
  interp.execute("snap_kernel simd");
  interp.execute("potential snap " + model_path);
  EXPECT_NE(out.str().find("snap/adjoint"), std::string::npos);

  EXPECT_THROW(interp.execute("snap_kernel quantum"), Error);
  std::remove(model_path.c_str());
}

}  // namespace
}  // namespace ember::app
