// Deck benchmark tables — ParSplice "An Easy Case" / "Hard Cases".
//
// Easy case (low temperature, rare events): nearly all generated segments
// splice, speedup ~ worker count. Hard cases (rising temperature):
// utilization and speedup collapse toward plain MD, with revisits
// (banked segments) carrying most of the remaining gain at mid
// temperatures.

#include <cstdio>

#include "common/table.hpp"
#include "parsplice/parsplice.hpp"

int main() {
  using namespace ember;
  using namespace ember::parsplice;

  std::printf("== ParSplice benchmark: easy case (worker sweep) ==\n\n");
  {
    Landscape land(4, 1.0, 0.04, 21);
    TextTable table({"Workers", "Traj length", "Generated time",
                     "#Transitions", "#States", "Utilization %", "Speedup"});
    for (const int workers : {2, 4, 8, 16}) {
      ParSpliceConfig cfg;
      cfg.temperature = 0.09;
      cfg.nworkers = workers;
      cfg.wall_budget = 150.0;
      const auto r = run_parsplice(land, cfg);
      table.add_row(workers, r.spliced_time, r.generated_time, r.transitions,
                    r.states_visited, 100.0 * r.utilization(), r.speedup());
    }
    table.print();
  }

  std::printf("\n== ParSplice benchmark: hard cases (temperature sweep) ==\n\n");
  {
    Landscape land(4, 1.0, 0.04, 23);
    TextTable table({"T/barrier", "Traj length", "Generated time",
                     "#Transitions", "#States", "Utilization %", "Speedup",
                     "MD transitions"});
    for (const double t : {0.09, 0.14, 0.20, 0.30, 0.45}) {
      ParSpliceConfig cfg;
      cfg.temperature = t;
      cfg.nworkers = 8;
      cfg.wall_budget = 150.0;
      const auto r = run_parsplice(land, cfg);
      const auto md = run_md_reference(land, cfg);
      table.add_row(t, r.spliced_time, r.generated_time, r.transitions,
                    r.states_visited, 100.0 * r.utilization(), r.speedup(),
                    md.transitions);
    }
    table.print();
  }
  std::printf(
      "\nShape check vs the deck tables: high utilization and near-linear\n"
      "speedup when events are rare; graceful degradation toward the MD\n"
      "rate as transitions become fast and unpredictable.\n");
  return 0;
}
