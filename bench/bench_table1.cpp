// Table I — SNAP performance across hardware.
//
// The paper's table reports Katom-steps/s and normalized fraction of peak
// for nine 2012-2018 platforms on a 2000-atom, 26-neighbor, 2J=8 problem.
// We cannot time historical hardware, so this harness (a) reproduces the
// table's *arithmetic* from the published speeds and nominal peaks —
// the normalized fraction-of-peak column is derived, not copied — and
// (b) appends measured rows for THIS host running the ember baseline and
// optimized kernels on exactly the paper's problem size.

#include <cstdio>

#include "common/table.hpp"
#include "snap/testsnap.hpp"

namespace {

struct Platform {
  const char* name;
  int year;
  double speed_katom_s;  // paper, Katom-steps/s
  double peak_tflops;    // paper, nominal node peak
};

// Values from Table I of the paper.
constexpr Platform kPlatforms[] = {
    {"Intel SandyBridge", 2012, 17.7, 0.332},
    {"IBM PowerPC", 2012, 2.52, 0.205},
    {"AMD CPU", 2013, 5.35, 0.141},
    {"NVIDIA K20X", 2013, 2.60, 1.31},
    {"Intel Haswell", 2016, 29.4, 1.18},
    {"Intel KNL", 2016, 11.1, 2.61},
    {"NVIDIA P100", 2016, 21.8, 5.30},
    {"Intel Broadwell", 2017, 25.4, 1.21},
    {"NVIDIA V100", 2018, 32.8, 7.8},
};

}  // namespace

int main() {
  using namespace ember;
  std::printf(
      "== Table I: SNAP performance on different hardware ==\n"
      "Problem: 2000 atoms, 26 neighbors/atom, 2J = 8 (55 components).\n"
      "Fraction of peak is (speed/peak) normalized to Intel SandyBridge,\n"
      "recomputed here from the published speed and peak columns.\n\n");

  const double sandybridge_ratio =
      kPlatforms[0].speed_katom_s / kPlatforms[0].peak_tflops;

  TextTable table({"Hardware", "Year", "Speed (Katom-steps/s)",
                   "Peak/node (TFLOPs)", "Fraction of peak (norm.)"});
  for (const auto& p : kPlatforms) {
    const double frac = (p.speed_katom_s / p.peak_tflops) / sandybridge_ratio;
    table.add_row(p.name, p.year, p.speed_katom_s, p.peak_tflops, frac);
  }

  // Measured rows: this host, same problem size.
  snap::SnapParams params;
  params.twojmax = 8;
  params.rcut = 4.7;
  snap::TestSnap ts(params, 2000, 26, 42);

  const double t_base =
      ts.grind_time(snap::TestSnapVariant::V0_Baseline, 2);
  const double t_opt = ts.grind_time(snap::TestSnapVariant::V7_CachedCk, 2);
  // Rough single-core FP64 peak of this host for context (4 FLOP/cycle
  // SIMD estimate at ~2.5 GHz).
  const double host_peak_tflops = 0.01;
  const double speed_base = 1.0 / t_base / 1e3;
  const double speed_opt = 1.0 / t_opt / 1e3;
  table.add_row("ember baseline (this host, 1 core)", 2026, speed_base,
                host_peak_tflops,
                (speed_base / host_peak_tflops) / sandybridge_ratio);
  table.add_row("ember optimized (this host, 1 core)", 2026, speed_opt,
                host_peak_tflops,
                (speed_opt / host_peak_tflops) / sandybridge_ratio);
  table.print();

  std::printf(
      "\nPaper shape check: GPU rows (K20X, P100, V100) sit far below the\n"
      "CPU rows in normalized fraction of peak — the motivation for the\n"
      "optimization campaign of Figs. 2-3.\n");
  return 0;
}
