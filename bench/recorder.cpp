#include "recorder.hpp"

#include <cstdio>

#include "obs/machine.hpp"

namespace ember::bench {

obs::Json machine_json() {
  const obs::MachineInfo info = obs::probe_machine();
  obs::Json m = obs::Json::object();
  m.set("system", info.system);
  m.set("release", info.release);
  m.set("arch", info.arch);
  m.set("cpu_model", info.cpu_model);
  m.set("hardware_threads", info.hardware_threads);
  m.set("clock_ghz", info.clock_ghz, "%.2f");
  return m;
}

Recorder::Recorder(std::string_view bench_name) : root_(obs::Json::object()) {
  root_.set("bench", bench_name);
  root_.set("machine", machine_json());
}

void Recorder::record_run(std::string_view transport, int ranks,
                          int threads) {
  root_.set("run", obs::Json::object()
                       .set("transport", transport)
                       .set("ranks", ranks)
                       .set("threads", threads));
}

std::string Recorder::dump() {
  root_.set("git_sha", obs::git_head_sha());  // "unknown" outside a repo
  return root_.dump(2) + "\n";
}

void Recorder::emit(const char* path) {
  const std::string text = dump();
  if (path == nullptr) {
    std::printf("\n%s", text.c_str());
    return;
  }
  FILE* fp = std::fopen(path, "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fputs(text.c_str(), fp);
  std::fclose(fp);
  std::printf("  recorded to %s\n", path);
}

}  // namespace ember::bench
