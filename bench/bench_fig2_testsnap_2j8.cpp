// TestSNAP Fig. 2 — optimization progression relative to baseline, 2J = 8.
//
// The paper's figure shows grind-time speedup over the baseline GPU kernel
// as optimizations V1..V7 accumulate. This harness runs the CPU analogues
// (see src/snap/testsnap.hpp for the mapping) on the paper's 2000-atom,
// 26-neighbor problem and prints the same series.

#include <cstdio>

#include "common/table.hpp"
#include "snap/testsnap.hpp"

int main() {
  using namespace ember;
  std::printf(
      "== TestSNAP Fig. 2: progress relative to baseline, 2J = 8 ==\n"
      "2000 atoms, 26 neighbors; bars are speedup over V0 (higher is "
      "better).\n\n");

  snap::SnapParams p;
  p.twojmax = 8;
  p.rcut = 4.7;
  snap::TestSnap ts(p, 2000, 26, 2021);

  const double t0 = ts.grind_time(snap::TestSnapVariant::V0_Baseline, 2);
  TextTable table({"Variant", "Grind time (ms/atom)", "Speedup vs V0"});
  for (const auto v : snap::kAllTestSnapVariants) {
    const double t = ts.grind_time(v, 2);
    table.add_row(snap::to_string(v), 1e3 * t, t0 / t);
  }
  table.print();
  std::printf(
      "\nShape check vs the paper: the adjoint refactorization (V3) is the\n"
      "single largest algorithmic step; the symmetric half-range (V5)\n"
      "roughly halves the remaining kernel cost; staged-kernel splitting\n"
      "alone (V1) is not a win by itself (\"there is a sweet spot\").\n");
  return 0;
}
