// SC paper Fig. 5 — weak scaling at 373,248 atoms/node from 1 to 4,096
// nodes: flat performance, a small dip crossing the 18-node rack boundary
// (inter-rack bandwidth), and ~90% efficiency at 4,096 nodes.
//
// Model series plus a real thread-rank weak-scaling run (constant
// atoms/rank, growing rank count) of the actual SNAP kernel.

#include <cstdio>
#include <memory>

#include "comm/transport.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "md/lattice.hpp"
#include "parallel/parallel_sim.hpp"
#include "perf/scaling.hpp"
#include "snap/snap_potential.hpp"

int main() {
  using namespace ember;
  std::printf("== SC Fig. 5: weak scaling, 373,248 atoms/node (model) ==\n\n");
  perf::ScalingModel model(perf::MachineModel::summit());
  const double per_node = 373248;
  {
    TextTable table({"Nodes", "Atoms", "Matom-steps/node-s",
                     "Efficiency vs 1 node"});
    const auto one = model.predict(per_node, 1);
    for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 512, 1024, 4096}) {
      const auto run = model.predict(per_node * nodes, nodes);
      table.add_row(nodes, per_node * nodes, run.matom_steps_per_node_s(),
                    run.matom_steps_per_node_s() /
                        one.matom_steps_per_node_s());
    }
    table.print();
  }

  std::printf(
      "\n-- measured: thread-rank weak scaling, 64 atoms/rank, SNAP --\n");
  snap::SnapParams p;
  p.twojmax = 8;
  p.rcut = 2.6;
  snap::SnapModel m;
  m.params = p;
  Rng beta_rng(5);
  m.beta.resize(snap::SnapIndex(p.twojmax).num_b());
  for (auto& b : m.beta) b = 0.02 * beta_rng.uniform(-1, 1);

  TextTable table({"Ranks", "Atoms", "Katom-steps/s (total)",
                   "Efficiency vs 1 rank"});
  double rate1 = 0.0;
  for (const int ranks : {1, 2, 4, 8}) {
    // Grow the box with the rank count: constant atoms per rank.
    md::LatticeSpec spec;
    spec.kind = md::LatticeKind::Diamond;
    spec.a = 3.567;
    spec.nx = ranks;  // 8 atoms/cell * 2*2 cells * nx
    spec.ny = 2;
    spec.nz = 2;
    md::System global = md::build_lattice(spec, 12.011);
    Rng rng(3);
    global.thermalize(300.0, rng);
    const long steps = 8;

    comm::TransportSpec spec_ranks;
    spec_ranks.kind = comm::default_transport_kind();
    spec_ranks.ranks = ranks;
    const auto ctx = comm::make_context(spec_ranks);
    const auto bytes = ctx->run_gather([&](comm::Transport& c) {
      parallel::ParallelSimulation psim(
          c, global, std::make_shared<snap::SnapPotential>(m), 5e-4, 0.4, 7);
      psim.setup();
      c.barrier();
      WallTimer timer;
      psim.run(steps);
      c.barrier();
      if (c.rank() != 0) return std::vector<std::byte>{};
      return comm::to_bytes(timer.seconds());
    });
    const double elapsed = comm::from_bytes<double>(bytes);
    // NOTE: this host has one core, so thread ranks share it; the honest
    // weak-scaling metric here is total throughput staying ~flat per rank
    // when normalized by the serialized compute.
    const double rate = global.nlocal() * steps / elapsed / 1e3;
    if (ranks == 1) rate1 = rate;
    table.add_row(ranks, global.nlocal(), rate, rate / rate1);
  }
  table.print();
  std::printf(
      "\n(1 physical core: measured 'efficiency' folds in thread\n"
      "serialization; the model above carries the paper-scale shape.)\n");
  return 0;
}
