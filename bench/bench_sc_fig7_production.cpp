// SC paper Fig. 7 — sustained performance of the 24-hour production run:
// 1.02 G atoms on 4,650 nodes, thermostat segments 5000/5300/5500/5500/
// 5500 K, checkpoint-I/O dips, and a small performance rise as the BC8
// phase emerges.
//
// Part (a): the model-scaled 24 h trace (series downsampled for print).
// Part (b): a real miniature production run — the actual MD engine with a
// Langevin temperature schedule and periodic binary checkpoints, whose
// measured per-block rates show the same I/O dips.

#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "md/io.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "perf/production.hpp"
#include "ref/pair_tersoff.hpp"

int main() {
  using namespace ember;
  std::printf("== SC Fig. 7: 24 h production run (model trace) ==\n\n");
  perf::ScalingModel model(perf::MachineModel::summit());
  perf::ProductionModel prod(model, perf::ProductionConfig{});
  const auto trace = prod.trace();

  TextTable table({"Wall (h)", "Sim (ns)", "Matom-steps/node-s", "T (K)",
                   "BC8 frac", "ckpt"});
  // Downsample for print; always include checkpoint samples (the dips).
  const std::size_t stride = trace.size() / 24;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& s = trace[i];
    if (i % stride != 0 && !s.checkpoint) continue;
    table.add_row(s.wall_hours, s.sim_ns, s.perf_matom_steps_node_s,
                  s.temperature, s.bc8_fraction, s.checkpoint ? "*" : "");
  }
  table.print();
  std::printf("  total: %.2f ns in %.1f h (paper: 1 ns in 24 h)\n",
              trace.back().sim_ns, trace.back().wall_hours);

  std::printf(
      "\n-- measured: miniature production run (real MD + checkpoints) --\n"
      "512 carbon atoms, Tersoff, Langevin schedule, checkpoint every 4th "
      "block.\n\n");
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.45;  // compressed
  spec.nx = spec.ny = spec.nz = 4;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(9);
  sys.thermalize(3000.0, rng);
  md::Simulation sim(std::move(sys), std::make_shared<ref::PairTersoff>(),
                     2e-4, 0.4, 9);

  // The protocol itself lives in perf::run_miniature_production and runs
  // on the unified StepLoop pipeline (checkpoints go through the
  // driver's save_checkpoint hook).
  const auto blocks = perf::run_miniature_production(sim);
  TextTable mtable({"Block", "T target (K)", "T (K)",
                    "Katom-steps/s", "ckpt"});
  for (const auto& b : blocks) {
    mtable.add_row(b.block, b.t_target, b.temperature, b.katom_steps_per_s,
                   b.checkpoint ? "*" : "");
  }
  std::remove(perf::MiniatureConfig{}.checkpoint_path.c_str());
  mtable.print();
  std::printf(
      "\nShape check: restart segments at rising temperatures, rate dips on\n"
      "checkpoint blocks, model trace rises as the BC8 fraction grows.\n");
  return 0;
}
