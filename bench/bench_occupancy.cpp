// Deck: "How much is too much? / GPUs are too powerful".
//
// GPUs need enough atoms to saturate: ~10^4 atoms/GPU for an expensive
// potential like SNAP, ~10^7 for a cheap one like EAM. Two parts:
// (a) the machine model's occupancy curve for both cost classes, showing
//     where 50% / 90% of peak rate is reached;
// (b) measured single-core cost per atom-step of the real ember kernels
//     (SNAP adjoint vs EAM vs LJ), anchoring the ~1000x cost ratio that
//     drives the phenomenon.

#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "perf/scaling.hpp"
#include "ref/pair_eam.hpp"
#include "ref/pair_lj.hpp"
#include "snap/snap_potential.hpp"

namespace {

double measure_rate(ember::md::Simulation& sim, long steps) {
  sim.setup();
  ember::WallTimer t;
  sim.run(steps);
  return sim.system().nlocal() * steps / t.seconds();  // atom-steps/s
}

}  // namespace

int main() {
  using namespace ember;
  std::printf("== Occupancy: atoms/GPU needed to saturate (model) ==\n\n");
  {
    // SNAP occupancy from the Summit model; the EAM class saturates the
    // GPU ~1000x later because each atom-step is ~1000x cheaper.
    perf::MachineModel snap_machine = perf::MachineModel::summit();
    perf::MachineModel eam_machine = snap_machine;
    eam_machine.node.rate_max = 1.091 * 1000.0;          // cheap kernel
    eam_machine.node.half_occupancy_atoms = 2000 * 1000;  // fills later

    TextTable table({"Potential", "50% rate [atoms/GPU]",
                     "90% rate [atoms/GPU]"});
    for (const auto& [name, m] :
         {std::pair{"SNAP (expensive)", snap_machine},
          std::pair{"EAM-class (cheap)", eam_machine}}) {
      const double h = m.node.half_occupancy_atoms;
      table.add_row(name, h, 9.0 * h);  // occ(n)=n/(n+h): 90% at 9h
    }
    table.print();
    std::printf(
        "\nDeck: SNAP ~10K atoms/GPU, EAM ~10M atoms/GPU to saturate;\n"
        "below that, replicas must share the device (ParSplice's regime).\n");
  }

  std::printf("\n== Measured per-atom-step kernel cost (this host) ==\n\n");
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 2;

  TextTable table({"Potential", "atom-steps/s", "cost vs LJ"});
  double lj_rate = 0.0;
  {
    md::System sys = md::build_lattice(spec, 12.011);
    Rng rng(1);
    sys.thermalize(300, rng);
    md::Simulation sim(std::move(sys),
                       std::make_shared<ref::PairLJ>(0.01, 1.8, 3.0), 5e-4,
                       0.4, 1);
    lj_rate = measure_rate(sim, 2000);
    table.add_row("lj/cut", lj_rate, 1.0);
  }
  {
    md::LatticeSpec fe;
    fe.kind = md::LatticeKind::Bcc;
    fe.a = 2.8665;
    fe.nx = fe.ny = fe.nz = 3;
    md::System sys = md::build_lattice(fe, 55.845);
    Rng rng(2);
    sys.thermalize(300, rng);
    md::Simulation sim(std::move(sys), std::make_shared<ref::PairEam>(),
                       1e-3, 0.4, 2);
    const double rate = measure_rate(sim, 1500);
    table.add_row("eam/fs", rate, lj_rate / rate);
  }
  {
    snap::SnapParams p;
    p.twojmax = 8;
    p.rcut = 2.6;
    snap::SnapModel m;
    m.params = p;
    Rng rng(3);
    m.beta.assign(snap::SnapIndex(p.twojmax).num_b(), 0.0);
    for (auto& b : m.beta) b = 0.002 * rng.uniform(-1, 1);
    md::System sys = md::build_lattice(spec, 12.011);
    sys.thermalize(300, rng);
    md::Simulation sim(std::move(sys),
                       std::make_shared<snap::SnapPotential>(m), 2.5e-4, 0.4,
                       3);
    const double rate = measure_rate(sim, 30);
    table.add_row("snap (2J=8)", rate, lj_rate / rate);
  }
  table.print();
  std::printf(
      "\nThe measured SNAP/LJ cost ratio is the origin of the occupancy\n"
      "gap above: cheap potentials starve a modern device at any atom\n"
      "count a single replica can sensibly hold.\n");
  return 0;
}
