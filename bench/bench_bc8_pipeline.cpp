// The science payload at laptop scale: the a-C -> BC8 detection pipeline.
//
// The paper's discovery run watched amorphous carbon at ~12 Mbar / 5000 K
// crystallize into BC8. This harness exercises the full pipeline on small
// samples: (1) classify reference structures (diamond / BC8 / melt),
// (2) melt-quench a diamond cell with the Tersoff oracle to make a-C and
// verify it reads as disordered, (3) track the classifier across a
// temperature ramp. Absolute phase boundaries belong to the surrogate
// potential, not the paper's quantum-accurate SNAP (see EXPERIMENTS.md).

#include <cstdio>
#include <memory>

#include "analysis/classify.hpp"
#include "common/table.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "ref/pair_tersoff.hpp"

int main() {
  using namespace ember;
  std::printf("== BC8 pipeline: structure detection ==\n\n");

  TextTable ref_table({"Sample", "diamond %", "bc8 %", "disordered+other %"});
  {
    md::LatticeSpec spec;
    spec.kind = md::LatticeKind::Diamond;
    spec.a = 3.567;
    spec.nx = spec.ny = spec.nz = 3;
    const auto f = analysis::analyze(md::build_lattice(spec, 12.011));
    ref_table.add_row("ideal diamond", 100 * f.diamond, 100 * f.bc8,
                      100 * (1 - f.crystalline()));
  }
  {
    md::LatticeSpec spec;
    spec.kind = md::LatticeKind::Bc8;
    spec.a = 4.46;
    spec.nx = spec.ny = spec.nz = 2;
    const auto f = analysis::analyze(md::build_lattice(spec, 12.011));
    ref_table.add_row("ideal BC8 (12 Mbar phase)", 100 * f.diamond,
                      100 * f.bc8, 100 * (1 - f.crystalline()));
  }

  // Melt-quench: diamond -> liquid -> amorphous with the Tersoff oracle.
  // The cell is expanded ~8% (a-C density ~3 g/cc) so the glass is not
  // frustrated back into the commensurate diamond lattice on quench —
  // the standard a-C preparation trick.
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.70;
  spec.nx = spec.ny = spec.nz = 2;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(13);
  sys.thermalize(300.0, rng);
  md::Simulation sim(std::move(sys), std::make_shared<ref::PairTersoff>(),
                     2e-4, 0.4, 13);

  sim.integrator().set_langevin(md::LangevinParams{12000.0, 0.02});
  sim.run(5000);  // melt: ~1 ps, MSD ~ 9 A^2 (true topological melt)
  const auto f_melt = analysis::analyze(sim.system());
  ref_table.add_row("melt (12,000 K)", 100 * f_melt.diamond, 100 * f_melt.bc8,
                    100 * (1 - f_melt.crystalline()));

  sim.integrator().set_langevin(md::LangevinParams{300.0, 0.01});
  sim.run(4000);  // fast quench: ~0.8 ps
  const auto f_quench = analysis::analyze(sim.system());
  ref_table.add_row("melt-quenched a-C", 100 * f_quench.diamond,
                    100 * f_quench.bc8, 100 * (1 - f_quench.crystalline()));
  ref_table.print();

  std::printf(
      "\nShape check: both crystals classify cleanly; the melt and the\n"
      "quenched glass read as disordered — the starting point of the\n"
      "paper's production run. (Observing the actual a-C -> BC8\n"
      "crystallization needs ns-scale sampling, i.e. the full machine.)\n");
  return 0;
}
