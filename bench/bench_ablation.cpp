// Ablation studies of the MD engine's design choices (DESIGN.md §4):
//   (a) neighbor-list skin: rebuild frequency vs per-step list size;
//   (b) SNAP execution path: adjoint vs baseline across 2J;
//   (c) neighbor construction strategy: cell list vs brute force.

#include <cstdio>
#include <memory>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "ref/pair_lj.hpp"
#include "snap/snap_potential.hpp"

int main() {
  using namespace ember;

  std::printf("== Ablation (a): neighbor skin on hot LJ argon ==\n\n");
  {
    TextTable table({"Skin [A]", "steps/s", "Neigh %", "Pair %"});
    for (const double skin : {0.1, 0.3, 0.6, 1.2, 2.0}) {
      md::LatticeSpec spec;
      spec.kind = md::LatticeKind::Fcc;
      spec.a = 5.26;
      spec.nx = spec.ny = spec.nz = 4;
      md::System sys = md::build_lattice(spec, 39.948);
      Rng rng(1);
      sys.thermalize(200.0, rng);
      // Short cutoff keeps every skin in the cell-list regime (the
      // cell -> brute-force crossover is ablation (c)'s subject).
      md::Simulation sim(std::move(sys),
                         std::make_shared<ref::PairLJ>(0.0104, 3.4, 4.2),
                         0.003, skin, 1);
      sim.integrator().set_langevin(md::LangevinParams{200.0, 0.1});
      sim.setup();
      sim.reset_timers();
      WallTimer t;
      sim.run(400);
      const auto& timers = sim.timers();
      table.add_row(skin, 400.0 / t.seconds(),
                    100.0 * timers.fraction(TimerCategory::Neigh),
                    100.0 * timers.fraction(TimerCategory::Pair));
    }
    table.print();
    std::printf("\nSmall skins rebuild constantly; large skins inflate the\n"
                "pair loop — the classic optimum sits in between.\n");
  }

  std::printf("\n== Ablation (b): SNAP adjoint vs baseline across 2J ==\n\n");
  {
    TextTable table({"2J", "Components", "Adjoint [ms/step]",
                     "Baseline [ms/step]", "Baseline/Adjoint"});
    for (const int twojmax : {4, 6, 8}) {
      snap::SnapParams p;
      p.twojmax = twojmax;
      p.rcut = 2.6;
      snap::SnapModel m;
      m.params = p;
      Rng rng(3);
      m.beta.assign(snap::SnapIndex(twojmax).num_b(), 0.0);
      for (auto& b : m.beta) b = 0.002 * rng.uniform(-1, 1);

      md::LatticeSpec spec;
      spec.kind = md::LatticeKind::Diamond;
      spec.a = 3.567;
      spec.nx = spec.ny = spec.nz = 2;

      double times[2];
      for (int path = 0; path < 2; ++path) {
        md::System sys = md::build_lattice(spec, 12.011);
        Rng vrng(5);
        sys.thermalize(300.0, vrng);
        auto pot = std::make_shared<snap::SnapPotential>(
            m, path == 0 ? snap::SnapPotential::Path::Adjoint
                         : snap::SnapPotential::Path::Baseline);
        md::Simulation sim(std::move(sys), pot, 2.5e-4, 0.4, 5);
        sim.setup();
        WallTimer t;
        sim.run(10);
        times[path] = t.seconds() / 10.0 * 1e3;
      }
      table.add_row(twojmax, snap::SnapIndex(twojmax).num_b(), times[0],
                    times[1], times[1] / times[0]);
    }
    table.print();
    std::printf("\nThe adjoint advantage grows with 2J — the paper's O(J^5)\n"
                "-> O(J^3) per-neighbor reduction at work.\n");
  }

  std::printf("\n== Ablation (c): cell list vs brute-force neighbors ==\n\n");
  {
    TextTable table({"Atoms", "Box/rlist", "Cell build [ms]",
                     "Brute build [ms]"});
    for (const int reps : {4, 6, 8}) {
      md::LatticeSpec spec;
      spec.kind = md::LatticeKind::Fcc;
      spec.a = 5.26;
      spec.nx = spec.ny = spec.nz = reps;
      md::System sys = md::build_lattice(spec, 39.948);
      // Cell path requires >= 3 cells per dim; time it via a cutoff that
      // qualifies, and the brute path via a System in a sub-3-cell box.
      md::NeighborList nl(4.0, 0.4);
      WallTimer t1;
      for (int r = 0; r < 5; ++r) nl.build(sys);
      const double t_cell = t1.seconds() / 5.0 * 1e3;

      // Brute force at the same cutoff: shrink the *list* box ratio by
      // using a large cutoff-equivalent (force the fallback) — emulate by
      // building with a cutoff that makes cells impossible.
      md::NeighborList nl2(sys.box().length(0) / 2.9 - 0.4, 0.4);
      WallTimer t2;
      for (int r = 0; r < 2; ++r) nl2.build(sys);
      const double t_brute = t2.seconds() / 2.0 * 1e3;
      table.add_row(sys.nlocal(), sys.box().length(0) / 4.4, t_cell,
                    t_brute);
    }
    table.print();
    std::printf("\n(The brute column uses a proportionally larger cutoff —\n"
                "the O(N^2) growth is the point, not the absolute pair.)\n");
  }
  return 0;
}
