// SC paper Fig. 6 — the 1,024,192,512-atom amorphous-carbon benchmark
// across four top-10 machines: TACC Frontera (CPU), OLCF Summit, NERSC
// Perlmutter, NVIDIA Selene.
//
// Anchors: Summit ~52x Frontera per node; Selene ~1.9x Summit per node;
// Selene 20 G atoms on 512 nodes = 12.72 Matom-steps/node-s (~11 PFLOPS,
// 14% of a peak that counts FP64 tensor cores SNAP cannot use);
// Perlmutter 20 G on 1024 nodes = 6.42 Matom-steps/node-s.

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "perf/scaling.hpp"

int main() {
  using namespace ember;
  std::printf("== SC Fig. 6: cross-machine comparison, 1.02 G atoms ==\n\n");

  const std::vector<perf::MachineModel> machines = {
      perf::MachineModel::frontera(), perf::MachineModel::summit(),
      perf::MachineModel::perlmutter(), perf::MachineModel::selene()};
  const double natoms = 1.024192512e9;

  TextTable table({"Machine", "Nodes", "Matom-steps/node-s", "s/step"});
  for (const auto& mm : machines) {
    perf::ScalingModel model(mm);
    for (const int nodes : {16, 64, 128, 256, 512, 1024, 4096}) {
      if (nodes < model.min_nodes(natoms) && mm.node.gpus_per_node > 1) {
        continue;  // does not fit in GPU memory
      }
      const auto run = model.predict(natoms, nodes);
      table.add_row(mm.node.name, nodes, run.matom_steps_per_node_s(),
                    run.step_time());
    }
  }
  table.print();

  perf::ScalingModel summit(perf::MachineModel::summit());
  perf::ScalingModel frontera(perf::MachineModel::frontera());
  perf::ScalingModel selene(perf::MachineModel::selene());
  perf::ScalingModel perlmutter(perf::MachineModel::perlmutter());

  std::printf("\nAnchors (paper values in parentheses):\n");
  std::printf("  Summit / Frontera per node @256: %5.1fx  (~52x)\n",
              summit.predict(natoms, 256).matom_steps_per_node_s() /
                  frontera.predict(natoms, 256).matom_steps_per_node_s());
  std::printf("  Selene / Summit per node @128:   %5.2fx  (~1.9x)\n",
              selene.predict(natoms, 128).matom_steps_per_node_s() /
                  summit.predict(natoms, 128).matom_steps_per_node_s());
  const auto sel20 = selene.predict(20e9, 512);
  std::printf("  Selene 20 G @512 nodes: %5.2f Matom-steps/node-s (12.72), "
              "%.1f PFLOPS (11.14), %.0f%% of peak (14%%)\n",
              sel20.matom_steps_per_node_s(), selene.pflops(sel20),
              100.0 * selene.fraction_of_peak(sel20));
  const auto perl20 = perlmutter.predict(20e9, 1024);
  std::printf("  Perlmutter 20 G @1024 nodes: %5.2f Matom-steps/node-s "
              "(6.42), %.1f PFLOPS (11.24)\n",
              perl20.matom_steps_per_node_s(), perlmutter.pflops(perl20));
  return 0;
}
