// Deck §56-77 — the EXAALT pull-model task-management framework.
//
// Worker utilization and task throughput vs scale for the flat
// producer-consumer topology (every worker asks the work manager
// directly) against the hierarchical pull model (task managers pre-fetch
// batches and feed local workers). Reproduces the deck's claims: the flat
// model collapses at scale; the hierarchy sustains ~50k tasks/s with
// near-perfect worker occupancy ("no worker should ever be idle").

#include <cstdio>

#include "common/table.hpp"
#include "parsplice/taskmgr.hpp"

int main() {
  using namespace ember::parsplice;
  std::printf("== Task management at scale: flat vs hierarchical ==\n"
              "(0.5 s tasks; WM per-request overhead 0.1 ms)\n\n");

  ember::TextTable table({"Workers", "Topology", "Tasks/s",
                          "Worker util %", "WM busy %", "WM requests"});
  for (const int scale : {256, 1024, 4096, 16384, 65536}) {
    {
      TaskFarmConfig cfg;
      cfg.n_task_managers = scale;
      cfg.workers_per_tm = 1;
      cfg.batch = 1;
      cfg.low_water = 0;
      cfg.tm_latency = 0.0;
      cfg.task_seconds = 0.5;
      cfg.sim_seconds = 60.0;
      const auto r = simulate_task_farm(cfg);
      table.add_row(scale, "flat", r.tasks_per_second,
                    100.0 * r.worker_utilization,
                    100.0 * r.wm_busy_fraction, r.wm_requests);
    }
    {
      TaskFarmConfig cfg;
      cfg.n_task_managers = std::max(1, scale / 128);
      cfg.workers_per_tm = std::min(scale, 128);
      cfg.batch = 256;
      cfg.low_water = 128;
      cfg.task_seconds = 0.5;
      cfg.sim_seconds = 60.0;
      const auto r = simulate_task_farm(cfg);
      table.add_row(scale, "hierarchical", r.tasks_per_second,
                    100.0 * r.worker_utilization,
                    100.0 * r.wm_busy_fraction, r.wm_requests);
    }
  }
  table.print();
  std::printf(
      "\nShape check vs the deck: flat throughput caps near the WM's\n"
      "request rate and utilization collapses; the hierarchical pull\n"
      "model tracks demand to ~10^5 workers (deck: ~50,000 tasks/s).\n");
  return 0;
}
