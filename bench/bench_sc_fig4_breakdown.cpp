// SC paper Fig. 4 — breakdown of step time into SNAP / MPI Comm / Other at
// three sample sizes on the full machine.
//
// Two parts: (a) the calibrated machine model at the paper's scales, and
// (b) a REAL measured breakdown from the in-process domain-decomposition
// driver (threads as ranks) running the actual SNAP kernel — demonstrating
// the same qualitative trend: smaller atoms/rank => larger comm share.

#include <cstdio>
#include <memory>
#include <string>

#include "comm/transport.hpp"
#include "common/table.hpp"
#include "md/lattice.hpp"
#include "parallel/parallel_sim.hpp"
#include "perf/scaling.hpp"
#include "snap/snap_potential.hpp"

namespace {

ember::snap::SnapModel small_model() {
  ember::snap::SnapParams p;
  p.twojmax = 8;
  p.rcut = 2.6;
  ember::snap::SnapModel m;
  m.params = p;
  ember::Rng rng(5);
  m.beta.resize(ember::snap::SnapIndex(p.twojmax).num_b());
  for (auto& b : m.beta) b = 0.02 * rng.uniform(-1, 1);
  return m;
}

}  // namespace

int main() {
  using namespace ember;
  std::printf("== SC Fig. 4: time breakdown on the full machine (model) ==\n\n");
  perf::ScalingModel model(perf::MachineModel::summit());
  {
    TextTable table({"Atoms", "SNAP %", "MPI Comm %", "Other %",
                     "(paper: SNAP/MPI/Other)"});
    const struct {
      double n;
      const char* paper;
    } rows[] = {{1.9683e10, "95 / 4 / 1"},
                {1.024192512e9, "86 / 12 / 2"},
                {1.02503232e8, "60 / 35 / 5"}};
    for (const auto& r : rows) {
      const auto run = model.predict(r.n, 4650);
      table.add_row(r.n, 100.0 * run.compute_fraction(),
                    100.0 * run.comm_fraction(),
                    100.0 * run.other_fraction(), r.paper);
    }
    table.print();
  }

  std::printf(
      "\n-- measured: in-process 8-rank SNAP run, decreasing atoms/rank --\n");
  const auto snap_model = small_model();
  TextTable table({"Atoms/rank",
                   std::string(md::fig4_label(TimerCategory::Pair)) + " %",
                   std::string(md::fig4_label(TimerCategory::Comm)) + " %",
                   "Neigh+Other %"});
  for (const int reps : {4, 3, 2}) {
    md::LatticeSpec spec;
    spec.kind = md::LatticeKind::Diamond;
    spec.a = 3.567;
    spec.nx = spec.ny = spec.nz = reps;
    md::System global = md::build_lattice(spec, 12.011);
    Rng rng(7);
    global.thermalize(300.0, rng);

    // Fractions measured on rank 0 come back through run_gather: with a
    // process-backed transport the ranks cannot write captured locals.
    struct Fractions {
      double snap, comm, other;
    };
    comm::TransportSpec spec8;
    spec8.kind = comm::default_transport_kind();
    spec8.ranks = 8;
    const auto ctx = comm::make_context(spec8);
    const auto bytes = ctx->run_gather([&](comm::Transport& c) {
      parallel::ParallelSimulation psim(
          c, global, std::make_shared<snap::SnapPotential>(snap_model), 5e-4,
          0.4, 11);
      psim.run(10);
      if (c.rank() != 0) return std::vector<std::byte>{};
      // The driver records the canonical Pair/Comm taxonomy; this bench
      // is the one place the Fig. 4 names are mapped for display.
      const auto& t = psim.timers();
      const double total = t.grand_total();
      Fractions f{};
      f.snap = t.total(TimerCategory::Pair) / total;
      f.comm = t.total(TimerCategory::Comm) / total;
      f.other = 1.0 - f.snap - f.comm;
      return comm::to_bytes(f);
    });
    const auto f = comm::from_bytes<Fractions>(bytes);
    table.add_row(global.nlocal() / 8, 100.0 * f.snap, 100.0 * f.comm,
                  100.0 * f.other);
  }
  table.print();
  std::printf(
      "\nShape check: the communication share grows as the per-rank atom\n"
      "count shrinks, in the model and in the measured runs alike.\n");
  return 0;
}
