#pragma once

// Machine-stamped JSON recording for the bench_* binaries.
//
// Every recorded benchmark artifact (BENCH_headline.json and friends)
// shares the same envelope: a "bench" name, a "machine" stanza from the
// obs machine probe (robust hardware-thread count + CPU model, unlike
// the old raw hardware_concurrency() call that reported 1 on some
// hosts), and a trailing "git_sha" so a committed recording can be tied
// back to the exact tree that produced it. Bench-specific fields go in
// between, through the ordered obs::Json builder, so schemas stay
// stable and diffable run to run.

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace ember::bench {

// The shared "machine" stanza: system/release/arch from uname, the
// de-flaked hardware thread count and the CPU model string.
[[nodiscard]] obs::Json machine_json();

class Recorder {
 public:
  // Starts the document with "bench": name and the machine stanza.
  explicit Recorder(std::string_view bench_name);

  // The document root; add bench-specific fields here (order preserved).
  [[nodiscard]] obs::Json& root() { return root_; }

  // Records how the bench actually executed: the active comm transport
  // backend and the real rank / thread counts, so a committed artifact
  // can't silently claim parallelism it didn't have.
  void record_run(std::string_view transport, int ranks, int threads);

  // Serialize with the "git_sha" trailer stamped (idempotent).
  [[nodiscard]] std::string dump();

  // Write dump() to path, or print it to stdout when path == nullptr.
  void emit(const char* path);

 private:
  obs::Json root_;
};

}  // namespace ember::bench
