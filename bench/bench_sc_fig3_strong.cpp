// SC paper Fig. 3 — strong scaling: (a) time-to-solution [s/step] and
// (b) MD performance [Matom-steps/node-s] for six amorphous-carbon sample
// sizes, from the minimum node count that fits each sample up to the full
// 4,650-node machine.
//
// Series come from the calibrated Summit machine model (src/perf); the
// anchors the model was calibrated against are printed alongside.

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "perf/scaling.hpp"

int main() {
  using namespace ember;
  std::printf(
      "== SC Fig. 3: strong scaling on Summit (model) ==\n"
      "Samples: 1.26M, 10.1M, 102.5M, 1.02G, 4.25G, 19.68G atoms.\n\n");

  perf::ScalingModel model(perf::MachineModel::summit());
  const std::vector<double> sizes = {1.259712e6,     1.0077696e7,
                                     1.02503232e8,   1.024192512e9,
                                     4.251528e9,     1.9683e10};
  const std::vector<int> node_grid = {1,   2,    4,    8,    16,  32,  64,
                                      128, 256,  512,  972,  2048, 4650};

  TextTable table({"Atoms", "Nodes", "s/step", "Matom-steps/node-s",
                   "SNAP %", "Comm %"});
  for (const double n : sizes) {
    const int min_nodes = model.min_nodes(n);
    for (const int nodes : node_grid) {
      if (nodes < min_nodes || nodes > 4650) continue;
      const auto run = model.predict(n, nodes);
      table.add_row(n, nodes, run.step_time(),
                    run.matom_steps_per_node_s(),
                    100.0 * run.compute_fraction(),
                    100.0 * run.comm_fraction());
    }
  }
  table.print();

  std::printf("\nParallel efficiencies (paper anchors in parentheses):\n");
  std::printf("  20 G atoms, 972 -> 4650 nodes: %5.1f%%  (97%%)\n",
              100.0 * model.parallel_efficiency(19.683e9, 972, 4650));
  std::printf("  1 G atoms,   64 -> 4650 nodes: %5.1f%%  (82%%)\n",
              100.0 * model.parallel_efficiency(1.024192512e9, 64, 4650));
  std::printf("  10 M atoms,   1 ->  512 nodes: %5.1f%%  (41%%)\n",
              100.0 * model.parallel_efficiency(1.0077696e7, 1, 512));
  return 0;
}
