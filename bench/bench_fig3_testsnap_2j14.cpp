// TestSNAP Fig. 3 — optimization progression relative to baseline, 2J = 14.
//
// Same protocol as Fig. 2 at the 204-component problem size, where the
// O(J^5) Z storage and O(J^7) coupling sweep dominate — the regime whose
// memory footprint forced the adjoint refactorization in the paper
// ("there is no trivial solution to the out-of-memory error for 2J14").
// Atom count is reduced to keep single-core wall time sane; the grind
// time metric is per-atom so the comparison is unaffected.

#include <cstdio>

#include "common/table.hpp"
#include "snap/indexing.hpp"
#include "snap/testsnap.hpp"

int main() {
  using namespace ember;
  snap::SnapParams p;
  p.twojmax = 14;
  p.rcut = 4.7;

  const snap::SnapIndex idx(p.twojmax);
  std::printf(
      "== TestSNAP Fig. 3: progress relative to baseline, 2J = 14 ==\n"
      "%d bispectrum components; Z storage per atom = %d complex values\n"
      "(vs %d for Y under the adjoint refactorization).\n"
      "150 atoms, 26 neighbors (grind time is per atom).\n\n",
      idx.num_b(), idx.z_total(), idx.u_total());

  snap::TestSnap ts(p, 150, 26, 2021);
  const double t0 = ts.grind_time(snap::TestSnapVariant::V0_Baseline, 2);
  TextTable table({"Variant", "Grind time (ms/atom)", "Speedup vs V0"});
  for (const auto v : snap::kAllTestSnapVariants) {
    const double t = ts.grind_time(v, 2);
    table.add_row(snap::to_string(v), 1e3 * t, t0 / t);
  }
  table.print();
  std::printf(
      "\nShape check vs the paper: gains concentrate in the adjoint (V3)\n"
      "and symmetry (V5) steps; the large coupling sweep makes the\n"
      "per-neighbor optimizations relatively less visible than at 2J = 8.\n");
  return 0;
}
