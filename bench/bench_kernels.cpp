// google-benchmark microbenchmarks of the individual SNAP stages, the
// paper's Listing-1/Listing-5 building blocks, across 2J. Confirms the
// complexity hierarchy: compute_zi/yi O(J^7) per atom dominates at large
// 2J; per-neighbor dB O(J^5) vs dE O(J^3) is the adjoint win.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "snap/bispectrum.hpp"

namespace {

using namespace ember;
using namespace ember::snap;

struct Workload {
  SnapParams params;
  std::vector<Vec3> rij;
  std::vector<double> beta;
};

Workload make_workload(int twojmax, int nnbor = 26) {
  Workload w;
  w.params.twojmax = twojmax;
  w.params.rcut = 4.7;
  Rng rng(7);
  while (static_cast<int>(w.rij.size()) < nnbor) {
    Vec3 r{rng.uniform(-4.7, 4.7), rng.uniform(-4.7, 4.7),
           rng.uniform(-4.7, 4.7)};
    if (r.norm() > 0.7 && r.norm() < 4.6) w.rij.push_back(r);
  }
  w.beta.resize(SnapIndex(twojmax).num_b());
  for (auto& b : w.beta) b = rng.uniform(-1, 1);
  return w;
}

void BM_ComputeUi(benchmark::State& state) {
  const auto w = make_workload(static_cast<int>(state.range(0)));
  Bispectrum bi(w.params);
  for (auto _ : state) {
    bi.compute_ui(w.rij, {});
    benchmark::DoNotOptimize(bi.utot().data());
  }
}
BENCHMARK(BM_ComputeUi)->Arg(4)->Arg(8)->Arg(14);

void BM_ComputeZi(benchmark::State& state) {
  const auto w = make_workload(static_cast<int>(state.range(0)));
  Bispectrum bi(w.params);
  bi.compute_ui(w.rij, {});
  for (auto _ : state) {
    bi.compute_zi();
    benchmark::DoNotOptimize(bi.zlist().data());
  }
}
BENCHMARK(BM_ComputeZi)->Arg(4)->Arg(8)->Arg(14);

void BM_ComputeYi(benchmark::State& state) {
  const auto w = make_workload(static_cast<int>(state.range(0)));
  Bispectrum bi(w.params);
  bi.compute_ui(w.rij, {});
  for (auto _ : state) {
    bi.compute_yi(w.beta);
    benchmark::DoNotOptimize(bi.ylist().data());
  }
}
BENCHMARK(BM_ComputeYi)->Arg(4)->Arg(8)->Arg(14);

void BM_ComputeDuidrj(benchmark::State& state) {
  const auto w = make_workload(static_cast<int>(state.range(0)));
  Bispectrum bi(w.params);
  bi.compute_ui(w.rij, {});
  for (auto _ : state) {
    bi.compute_duidrj(w.rij[0], 1.0);
    benchmark::DoNotOptimize(bi.dulist().data());
  }
}
BENCHMARK(BM_ComputeDuidrj)->Arg(4)->Arg(8)->Arg(14);

void BM_ComputeDeidrj(benchmark::State& state) {
  const auto w = make_workload(static_cast<int>(state.range(0)));
  Bispectrum bi(w.params);
  bi.compute_ui(w.rij, {});
  bi.compute_yi(w.beta);
  bi.compute_duidrj(w.rij[0], 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bi.compute_deidrj());
  }
}
BENCHMARK(BM_ComputeDeidrj)->Arg(4)->Arg(8)->Arg(14);

void BM_ComputeDbidrj(benchmark::State& state) {
  const auto w = make_workload(static_cast<int>(state.range(0)));
  Bispectrum bi(w.params);
  bi.compute_ui(w.rij, {});
  bi.compute_zi();
  bi.compute_duidrj(w.rij[0], 1.0);
  for (auto _ : state) {
    bi.compute_dbidrj();
    benchmark::DoNotOptimize(bi.dblist().data());
  }
}
BENCHMARK(BM_ComputeDbidrj)->Arg(4)->Arg(8)->Arg(14);

// Whole-atom force evaluation, both execution paths (Listing 1 vs 5).
void BM_AtomAdjoint(benchmark::State& state) {
  const auto w = make_workload(8);
  Bispectrum bi(w.params);
  for (auto _ : state) {
    bi.compute_ui(w.rij, {});
    bi.compute_yi(w.beta);
    Vec3 f;
    for (const auto& r : w.rij) {
      bi.compute_duidrj(r, 1.0);
      f += bi.compute_deidrj();
    }
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_AtomAdjoint);

void BM_AtomBaseline(benchmark::State& state) {
  const auto w = make_workload(8);
  Bispectrum bi(w.params);
  for (auto _ : state) {
    bi.compute_ui(w.rij, {});
    bi.compute_zi();
    Vec3 f;
    for (const auto& r : w.rij) {
      bi.compute_duidrj(r, 1.0);
      bi.compute_dbidrj();
      for (int l = 0; l < bi.num_b(); ++l) f += w.beta[l] * bi.dblist()[l];
    }
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_AtomBaseline);

}  // namespace

BENCHMARK_MAIN();
