// The paper's §1/§7 headline numbers, reproduced from first principles:
//
//   * 20 G atoms on 4,650 Summit nodes -> 6.21 Matom-steps/node-s,
//     1.47 timesteps/s
//   * measured FLOP count -> 50.0 PFLOPS = 24.9% of theoretical peak
//   * 22.9x the DeepMD record of 0.271 Matom-steps/node-s
//   * ~1.7 MFLOP per atom-step, cross-checked against the analytic FLOP
//     count of the ember SNAP kernel at the production problem size.
//
// Plus a *measured* node-level thread-scaling column: the TestSNAP
// adjoint kernel (2J=8, 26 neighbors — the production workload of
// bench_fig2) ground through the thread pool at 1/2/4/8 threads,
// emitted as JSON for the scaling-curve table in README.

#include <cstdio>

#include "perf/scaling.hpp"
#include "snap/bispectrum.hpp"
#include "snap/testsnap.hpp"

namespace {

// threads -> grind time [s/atom-step] for the V3 adjoint variant.
void print_thread_scaling_json() {
  using namespace ember;
  snap::SnapParams p;
  p.twojmax = 8;
  p.rcut = 4.7;
  snap::TestSnap ts(p, 2000, 26, 2021);
  const auto v = snap::TestSnapVariant::V3_Adjoint;

  std::printf("\n== Thread scaling (measured, TestSNAP %s, 2J=8) ==\n\n",
              snap::to_string(v));
  const double serial = ts.grind_time(v, 2);
  std::printf("{\"variant\": \"%s\", \"twojmax\": %d, \"natoms\": %d, "
              "\"nnbor\": %d, \"grind_time\": [",
              snap::to_string(v), p.twojmax, ts.natoms(), ts.nnbor());
  bool first = true;
  for (const int nth : {1, 2, 4, 8}) {
    const double g = nth == 1 ? serial : ts.grind_time(v, 2, {nth});
    std::printf("%s{\"threads\": %d, \"s_per_atom_step\": %.4g, "
                "\"speedup\": %.2f}",
                first ? "" : ", ", nth, g, serial / g);
    first = false;
  }
  std::printf("]}\n");
}

}  // namespace

int main() {
  using namespace ember;

  // FLOPs per atom-step from the kernel's analytic counts (2J=8, the
  // production choice, ~26 neighbors in compressed carbon).
  snap::SnapParams p;
  p.twojmax = 8;
  snap::Bispectrum bi(p);
  const double flops_kernel = bi.flops_adjoint_atom(26);
  const double flops_paper = 50.0e15 / (6.21e6 * 4650);

  perf::ScalingModel model(perf::MachineModel::summit(), flops_paper);
  const auto run = model.predict(19.683e9, 4650);

  std::printf("== Headline reproduction ==\n\n");
  std::printf("FLOPs per atom-step (paper, implied):   %.3g\n", flops_paper);
  std::printf("FLOPs per atom-step (ember analytic):   %.3g  (ratio %.2f)\n",
              flops_kernel, flops_kernel / flops_paper);
  std::printf("\n20 G atoms on 4,650 Summit nodes (model):\n");
  std::printf("  MD performance: %6.2f Matom-steps/node-s   (paper 6.21)\n",
              run.matom_steps_per_node_s());
  std::printf("  timesteps/s:    %6.2f                      (paper 1.47)\n",
              1.0 / run.step_time());
  std::printf("  sustained:      %6.1f PFLOPS               (paper 50.0)\n",
              model.pflops(run));
  std::printf("  fraction peak:  %6.1f %%                    (paper 24.9%%)\n",
              100.0 * model.fraction_of_peak(run));
  std::printf("  vs DeepMD:      %6.1f x                     (paper 22.9x)\n",
              run.matom_steps_per_node_s() / 0.271);
  std::printf(
      "\nWeak-scaling implication (paper): 373,248 atoms/node at full scale\n"
      "sustains ~1 ns/day; model: %.2f ns/day at 0.5 fs/step.\n",
      model.predict(373248.0 * 4650, 4650).matom_steps_per_node_s() * 1e6 /
          373248.0 * 0.5e-6 * 86400.0);

  print_thread_scaling_json();
  return 0;
}
