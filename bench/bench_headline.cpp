// The paper's §1/§7 headline numbers, reproduced from first principles:
//
//   * 20 G atoms on 4,650 Summit nodes -> 6.21 Matom-steps/node-s,
//     1.47 timesteps/s
//   * measured FLOP count -> 50.0 PFLOPS = 24.9% of theoretical peak
//   * 22.9x the DeepMD record of 0.271 Matom-steps/node-s
//   * ~1.7 MFLOP per atom-step, cross-checked against the analytic FLOP
//     count of the ember SNAP kernel at the production problem size.
//
// Plus a *measured* node-level thread-scaling column: the TestSNAP
// adjoint kernel (2J=8, 26 neighbors — the production workload of
// bench_fig2) ground through the thread pool at 1/2/4/8 threads,
// emitted as JSON for the scaling-curve table in README.

// A fourth section measures the *production* SNAP force engine
// (SnapPotential over a periodic diamond system) with all three kernel
// variants — Naive (full range), Symmetric (TestSNAP V5-V7 port: half
// range + cached neighbor dU + SoA) and Simd (V8: lane-blocked AVX2/
// AVX-512 over neighbors) — across thread counts, checks force parity
// between them, and optionally records the whole run as machine-stamped
// JSON (--json <path>; the bench_record CMake target writes
// BENCH_headline.json at the repo root). Thread counts beyond the
// machine's hardware threads are stamped "oversubscribed": flat curves
// from a 1-core container are annotated as such, not presented as
// scaling. A fifth section is the roofline readout: per-stage GFLOP/s
// from the kernel timing counters and the analytic Bispectrum::flops_*
// counts, against a DP peak derived from the probed ISA width and clock
// (the paper's Table-I-style fraction-of-peak, at node scale in the
// paper, at core scale here).

// A sixth section benchmarks the output pipeline (DESIGN.md §13): the
// same short MD run with dumps off, synchronous dumps, and asynchronous
// dumps, plus the on-disk size of XYZ vs the compressed EMBT1
// trajectory — recorded as the "io" stanza of BENCH_headline.json with
// the io.stall_seconds / io.stalls_avoided_seconds counter deltas, so
// the headline artifact states how much dump time the writer thread
// actually took off the stepping thread.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "common/timer.hpp"
#include "recorder.hpp"
#include "io/writer.hpp"
#include "md/compute_context.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "md/simulation.hpp"
#include "obs/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/scaling.hpp"
#include "ref/pair_lj.hpp"
#include "snap/bispectrum.hpp"
#include "snap/simd/dispatch.hpp"
#include "snap/snap_potential.hpp"
#include "snap/testsnap.hpp"

namespace {

// threads -> grind time [s/atom-step] for the V3 adjoint variant.
void print_thread_scaling_json() {
  using namespace ember;
  snap::SnapParams p;
  p.twojmax = 8;
  p.rcut = 4.7;
  snap::TestSnap ts(p, 2000, 26, 2021);
  const auto v = snap::TestSnapVariant::V3_Adjoint;

  std::printf("\n== Thread scaling (measured, TestSNAP %s, 2J=8) ==\n\n",
              snap::to_string(v));
  const double serial = ts.grind_time(v, 2);
  obs::Json doc = obs::Json::object();
  doc.set("variant", snap::to_string(v));
  doc.set("twojmax", p.twojmax);
  doc.set("natoms", ts.natoms());
  doc.set("nnbor", ts.nnbor());
  obs::Json curve = obs::Json::array();
  for (const int nth : {1, 2, 4, 8}) {
    const double g = nth == 1 ? serial : ts.grind_time(v, 2, {nth});
    curve.push(obs::Json::object()
                   .set("threads", nth)
                   .set("s_per_atom_step", g, "%.4g")
                   .set("speedup", serial / g, "%.2f"));
  }
  doc.set("grind_time", std::move(curve));
  std::printf("%s\n", doc.dump(0).c_str());
}

// ---- production kernel benchmark ----------------------------------------

struct KernelRun {
  double grind = 0.0;  // s per atom-step
  double energy = 0.0;
  std::vector<ember::Vec3> f;
};

struct ProductionBench {
  int natoms = 0;
  double avg_neighbors = 0.0;
  // grind[kernel][thread index], threads from kThreadCounts; kernel order
  // matches kKernels / kKernelNames below.
  std::vector<std::vector<KernelRun>> runs;
  double max_force_delta = 0.0;       // symmetric vs naive, 1 thread
  double max_force_delta_simd = 0.0;  // simd vs symmetric, 1 thread
};

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr ember::snap::SnapKernel kKernels[] = {
    ember::snap::SnapKernel::Naive, ember::snap::SnapKernel::Symmetric,
    ember::snap::SnapKernel::Simd};
constexpr const char* kKernelNames[] = {"naive", "symmetric", "simd"};
constexpr int kNumKernels = static_cast<int>(std::size(kKernels));

ember::snap::SnapModel production_model(ember::snap::SnapKernel kernel) {
  using namespace ember;
  snap::SnapParams p;
  p.twojmax = 8;
  // ~28 neighbors on diamond carbon (3 shells), close to the paper's ~26
  // in compressed carbon at 2J=8.
  p.rcut = 3.1;
  p.bzero_flag = true;
  p.kernel = kernel;
  snap::SnapModel m;
  m.params = p;
  Rng rng(7);
  m.beta.resize(snap::SnapIndex(p.twojmax).num_b());
  for (auto& b : m.beta) b = 0.02 * rng.uniform(-1.0, 1.0);
  m.beta0 = -1.0;
  return m;
}

KernelRun run_production(const ember::snap::SnapModel& model, int nthreads,
                         double* avg_neighbors) {
  using namespace ember;
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;
  spec.nx = spec.ny = spec.nz = 4;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(11);
  md::perturb(sys, 0.04, rng);

  snap::SnapPotential pot(model);
  const md::ComputeContext ctx{ExecutionPolicy{nthreads}};
  md::NeighborList nl(pot.cutoff(), 0.3);
  nl.build(sys, /*use_ghosts=*/false, &ctx);
  if (avg_neighbors != nullptr) {
    std::size_t pairs = 0;
    for (int i = 0; i < sys.nlocal(); ++i) pairs += nl.neighbors(i).size();
    *avg_neighbors = static_cast<double>(pairs) / sys.nlocal();
  }

  KernelRun out;
  sys.zero_forces();
  pot.compute(ctx, sys, nl);  // warm-up: touches every per-thread cache
  constexpr int kReps = 4;
  WallTimer t;
  for (int r = 0; r < kReps; ++r) {
    sys.zero_forces();
    const auto ev = pot.compute(ctx, sys, nl);
    out.energy = ev.energy;
  }
  out.grind = t.seconds() / (kReps * sys.nlocal());
  out.f.assign(sys.f.begin(), sys.f.begin() + sys.nlocal());
  return out;
}

double max_component_delta(const std::vector<ember::Vec3>& a,
                           const std::vector<ember::Vec3>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int d = 0; d < 3; ++d) m = std::max(m, std::abs(a[i][d] - b[i][d]));
  }
  return m;
}

ProductionBench run_production_bench() {
  using namespace ember;
  ProductionBench b;
  for (const auto kernel : kKernels) {
    const snap::SnapModel model = production_model(kernel);
    std::vector<KernelRun> runs;
    for (const int nth : kThreadCounts) {
      runs.push_back(run_production(model, nth, &b.avg_neighbors));
    }
    b.runs.push_back(std::move(runs));
  }
  b.natoms = static_cast<int>(b.runs[0][0].f.size());
  b.max_force_delta = max_component_delta(b.runs[0][0].f, b.runs[1][0].f);
  b.max_force_delta_simd = max_component_delta(b.runs[2][0].f, b.runs[1][0].f);
  return b;
}

// ---- roofline stage breakdown -------------------------------------------

struct StageReadout {
  const char* stage;
  double seconds = 0.0;
  double gflop = 0.0;  // analytic FLOP count over the run, in 1e9 units
};

// Single-thread production workload with kernel timing on; stage seconds
// come from the snap.* counters, stage FLOPs from the analytic
// Bispectrum::flops_* counts scaled by the counted atoms/neighbor visits.
// The Simd counts deliberately exclude padded remainder lanes — only
// useful flops credit the rate, so fraction-of-peak stays honest.
std::vector<StageReadout> measure_stages(ember::snap::SnapKernel kernel) {
  using namespace ember;
  auto& reg = obs::Registry::global();
  for (const char* c :
       {"snap.ui_seconds", "snap.yi_seconds", "snap.dei_seconds",
        "snap.dei_cached_seconds", "snap.atoms", "snap.neighbors"}) {
    reg.counter(c).reset();
  }
  obs::set_kernel_timing(true);
  run_production(production_model(kernel), 1, nullptr);
  obs::set_kernel_timing(false);

  const double atoms = reg.counter("snap.atoms").value();
  const double neigh = reg.counter("snap.neighbors").value();
  const snap::Bispectrum bi(production_model(kernel).params);
  // flops_ui(n) is affine in n: a per-atom part (self term + zeroing) plus
  // a per-neighbor recursion slope.
  const double ui_base = bi.flops_ui(0);
  const double ui_slope = bi.flops_ui(1) - ui_base;
  const double dei_seconds = reg.counter("snap.dei_seconds").value() +
                             reg.counter("snap.dei_cached_seconds").value();
  return {
      {"ui", reg.counter("snap.ui_seconds").value(),
       1e-9 * (ui_slope * neigh + ui_base * atoms)},
      {"yi", reg.counter("snap.yi_seconds").value(),
       1e-9 * bi.flops_yi() * atoms},
      {"dei", dei_seconds,
       1e-9 * (bi.flops_duidrj() + bi.flops_deidrj()) * neigh},
  };
}

// DP peak per core from the probed machine: nominal clock x SIMD lanes of
// the widest supported ISA x 2 (FMA counts as two flops) x 2 (two FMA
// ports per core on the AVX2/AVX-512 parts this targets). 0 when the
// clock could not be probed.
double dp_peak_gflops_core(const ember::obs::MachineInfo& m) {
  return m.clock_ghz *
         ember::snap::simd::lane_width(ember::snap::simd::max_supported_isa()) *
         2.0 * 2.0;
}

// == Output pipeline: dumps off vs sync vs async ============================

struct IoModeRun {
  const char* name = "";
  const char* format = "";      // "" when dumps are off
  double s_per_step = 0.0;      // wall clock per step, dump cost included
  double stall_seconds = 0.0;   // io.stall_seconds delta (stepping thread)
  double avoided_seconds = 0.0; // io.stalls_avoided_seconds delta (writer)
  long bytes = 0;               // trajectory size on disk
};

struct IoBench {
  int natoms = 0;
  long steps = 0;
  std::vector<IoModeRun> runs;
};

long file_size(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is ? static_cast<long>(is.tellg()) : 0;
}

// One MD run over a fixed initial state; mode == nullptr means dumps off.
IoModeRun run_io_mode(const ember::md::System& initial, long steps,
                      const char* name, const ember::io::Mode* mode,
                      const std::string& path) {
  using namespace ember;
  namespace chrono = std::chrono;
  auto& stall = obs::Registry::global().counter("io.stall_seconds");
  auto& avoided = obs::Registry::global().counter("io.stalls_avoided_seconds");

  md::Simulation sim(initial, std::make_shared<ref::PairLJ>(0.0104, 3.4, 6.5),
                     0.002);
  if (mode != nullptr) {
    std::remove(path.c_str());
    sim.set_writer(io::make_writer(*mode));
    md::IoPlan plan;
    plan.dump_every = 1;  // worst case: a dump behind every step
    plan.dump_path = path;
    plan.dump_format = io::format_from_path(path);
    sim.set_io_plan(plan);
  }
  sim.setup();  // neighbor build + first forces outside the timed region

  IoModeRun run;
  run.name = name;
  run.format = mode != nullptr ? io::to_string(io::format_from_path(path)) : "";
  const double stall0 = stall.value();
  const double avoided0 = avoided.value();
  const auto t0 = chrono::steady_clock::now();
  sim.run(steps);
  sim.writer().drain();  // the async mode must pay for its queue too
  const auto t1 = chrono::steady_clock::now();
  run.s_per_step = chrono::duration<double>(t1 - t0).count() /
                   static_cast<double>(steps);
  run.stall_seconds = stall.value() - stall0;
  run.avoided_seconds = avoided.value() - avoided0;
  if (mode != nullptr) {
    run.bytes = file_size(path);
    std::remove(path.c_str());
  }
  return run;
}

IoBench run_io_bench() {
  using namespace ember;
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Fcc;
  spec.a = 5.26;
  spec.nx = spec.ny = spec.nz = 6;
  md::System initial = md::build_lattice(spec, 39.948);
  Rng rng(99);
  initial.thermalize(40.0, rng);

  IoBench b;
  b.natoms = initial.nlocal();
  b.steps = 150;
  const io::Mode sync = io::Mode::Sync;
  const io::Mode async = io::Mode::Async;
  b.runs.push_back(run_io_mode(initial, b.steps, "off", nullptr, ""));
  b.runs.push_back(run_io_mode(initial, b.steps, "sync", &sync,
                               "/tmp/ember_bench_io.xyz"));
  b.runs.push_back(run_io_mode(initial, b.steps, "async", &async,
                               "/tmp/ember_bench_io_async.xyz"));
  b.runs.push_back(run_io_mode(initial, b.steps, "async", &async,
                               "/tmp/ember_bench_io.embt1"));
  return b;
}

ember::obs::Json io_bench_json(const IoBench& b) {
  using ember::obs::Json;
  Json stanza = Json::object();
  stanza.set("natoms", b.natoms);
  stanza.set("steps", b.steps);
  stanza.set("dump_every", 1);
  Json modes = Json::array();
  for (const IoModeRun& r : b.runs) {
    Json entry = Json::object().set("mode", r.name);
    if (r.format[0] != '\0') entry.set("format", r.format);
    entry.set("s_per_step", r.s_per_step, "%.4g");
    entry.set("stall_seconds", r.stall_seconds, "%.4g");
    entry.set("stalls_avoided_seconds", r.avoided_seconds, "%.4g");
    if (r.bytes > 0) entry.set("trajectory_bytes", r.bytes);
    modes.push(std::move(entry));
  }
  stanza.set("modes", std::move(modes));
  return stanza;
}

void print_io_bench(const IoBench& b) {
  std::printf("\n== Output pipeline: %d atoms, %ld steps, dump every step ==\n\n",
              b.natoms, b.steps);
  std::printf("  mode    format      us/step   stall [ms]   avoided [ms]"
              "   bytes\n");
  for (const IoModeRun& r : b.runs) {
    std::printf("  %-5s   %-9s   %7.1f   %10.2f   %12.2f   %7ld\n", r.name,
                r.format[0] != '\0' ? r.format : "-", 1e6 * r.s_per_step,
                1e3 * r.stall_seconds, 1e3 * r.avoided_seconds, r.bytes);
  }
}

ember::bench::Recorder production_recording(const ProductionBench& b) {
  using ember::obs::Json;
  using ember::snap::simd::lane_width;
  using ember::snap::simd::max_supported_isa;
  using ember::snap::simd::to_string;
  ember::bench::Recorder rec("headline_production_kernel");
  // This bench is single-rank thread-pool work; the transport named here
  // is whatever a comm-using run would get by default (EMBER_TRANSPORT).
  rec.record_run(
      ember::comm::to_string(ember::comm::default_transport_kind()), 1,
      kThreadCounts[std::size(kThreadCounts) - 1]);
  rec.root().set("twojmax", 8);
  rec.root().set("natoms", b.natoms);
  rec.root().set("avg_neighbors", b.avg_neighbors, "%.1f");

  const ember::obs::MachineInfo mach = ember::obs::probe_machine();
  Json kernels = Json::array();
  for (int k = 0; k < kNumKernels; ++k) {
    Json curve = Json::array();
    for (std::size_t i = 0; i < b.runs[k].size(); ++i) {
      Json entry = Json::object()
                       .set("threads", kThreadCounts[i])
                       .set("s_per_atom_step", b.runs[k][i].grind, "%.4g");
      // More software threads than hardware threads: the point measures
      // scheduler interleaving, not scaling. Stamp it so readers (and
      // smoke.sh) never mistake a flat oversubscribed curve for speedup.
      if (kThreadCounts[i] > mach.hardware_threads) {
        entry.set("oversubscribed", true);
      }
      curve.push(std::move(entry));
    }
    kernels.push(Json::object()
                     .set("kernel", kKernelNames[k])
                     .set("grind_time", std::move(curve)));
  }
  rec.root().set("kernels", std::move(kernels));
  rec.root().set("speedup_symmetric_vs_naive",
                 b.runs[0][0].grind / b.runs[1][0].grind, "%.2f");
  rec.root().set("speedup_simd_vs_symmetric",
                 b.runs[1][0].grind / b.runs[2][0].grind, "%.2f");
  rec.root().set("max_force_delta", b.max_force_delta, "%.3g");
  rec.root().set("max_force_delta_simd_vs_symmetric", b.max_force_delta_simd,
                 "%.3g");

  // Table-I-style readout: measured per-stage GFLOP/s against the DP peak
  // of one core (the paper reports 24.9% of Summit's peak at node scale;
  // this is the same accounting at core scale).
  const double peak = dp_peak_gflops_core(mach);
  Json roofline = Json::object();
  roofline.set("probed_isa", to_string(max_supported_isa()));
  roofline.set("lane_width", lane_width(max_supported_isa()));
  roofline.set("clock_ghz", mach.clock_ghz, "%.2f");
  roofline.set("dp_peak_gflops_core", peak, "%.1f");
  Json rk = Json::array();
  std::printf("\n  roofline (1 thread, DP peak %.1f GFLOP/s/core):\n", peak);
  std::printf("    kernel      stage   seconds    GFLOP/s   %% of peak\n");
  for (const auto kernel :
       {ember::snap::SnapKernel::Symmetric, ember::snap::SnapKernel::Simd}) {
    const char* name = kKernelNames[kernel == ember::snap::SnapKernel::Simd
                                        ? 2
                                        : 1];
    Json stages = Json::array();
    for (const StageReadout& s : measure_stages(kernel)) {
      const double rate = s.seconds > 0.0 ? s.gflop / s.seconds : 0.0;
      const double frac = peak > 0.0 ? rate / peak : 0.0;
      stages.push(Json::object()
                      .set("stage", s.stage)
                      .set("seconds", s.seconds, "%.4g")
                      .set("gflops", rate, "%.2f")
                      .set("fraction_of_peak", frac, "%.4f"));
      std::printf("    %-9s   %-5s   %7.4f   %8.2f   %8.1f%%\n", name,
                  s.stage, s.seconds, rate, 100.0 * frac);
    }
    rk.push(Json::object().set("kernel", name).set("stages",
                                                   std::move(stages)));
  }
  roofline.set("kernels", std::move(rk));
  rec.root().set("roofline", std::move(roofline));
  return rec;
}

void print_production_bench(const char* json_path) {
  using namespace ember;
  const ProductionBench b = run_production_bench();
  const obs::MachineInfo mach = obs::probe_machine();
  std::printf("\n== Production SNAP kernel: Naive vs Symmetric vs Simd[%s] "
              "(2J=8, %d atoms, %.0f nbrs) ==\n\n",
              snap::simd::to_string(snap::simd::max_supported_isa()), b.natoms,
              b.avg_neighbors);
  std::printf("  threads   naive [us/atom]   symm [us/atom]   "
              "simd [us/atom]   simd speedup\n");
  for (std::size_t i = 0; i < b.runs[0].size(); ++i) {
    const char* note = kThreadCounts[i] > mach.hardware_threads
                           ? "  (oversubscribed)"
                           : "";
    std::printf("  %7d   %15.2f   %14.2f   %14.2f   %11.2fx%s\n",
                kThreadCounts[i], 1e6 * b.runs[0][i].grind,
                1e6 * b.runs[1][i].grind, 1e6 * b.runs[2][i].grind,
                b.runs[1][i].grind / b.runs[2][i].grind, note);
  }
  std::printf("\n  kernel parity (max |f_naive - f_symmetric|):    %.3g\n",
              b.max_force_delta);
  std::printf("  kernel parity (max |f_simd  - f_symmetric|):    %.3g\n",
              b.max_force_delta_simd);

  const IoBench io = run_io_bench();
  print_io_bench(io);

  ember::bench::Recorder rec = production_recording(b);
  rec.root().set("io", io_bench_json(io));
  rec.emit(json_path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ember;
  const char* json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  // FLOPs per atom-step from the kernel's analytic counts (2J=8, the
  // production choice, ~26 neighbors in compressed carbon). The paper's
  // implied count is for the full-range adjoint scheme, so the
  // cross-check pins the Naive kernel; the Symmetric (V5-V7) count shows
  // the work the symmetry-halved production kernel actually executes.
  snap::SnapParams p;
  p.twojmax = 8;
  p.kernel = snap::SnapKernel::Naive;
  snap::Bispectrum bi(p);
  const double flops_kernel = bi.flops_adjoint_atom(26);
  p.kernel = snap::SnapKernel::Symmetric;
  const double flops_sym = snap::Bispectrum(p).flops_adjoint_atom(26);
  const double flops_paper = 50.0e15 / (6.21e6 * 4650);

  perf::ScalingModel model(perf::MachineModel::summit(), flops_paper);
  const auto run = model.predict(19.683e9, 4650);

  std::printf("== Headline reproduction ==\n\n");
  std::printf("FLOPs per atom-step (paper, implied):   %.3g\n", flops_paper);
  std::printf("FLOPs per atom-step (ember analytic):   %.3g  (ratio %.2f)\n",
              flops_kernel, flops_kernel / flops_paper);
  std::printf("FLOPs per atom-step (Symmetric kernel): %.3g  (%.2fx less work)\n",
              flops_sym, flops_kernel / flops_sym);
  std::printf("\n20 G atoms on 4,650 Summit nodes (model):\n");
  std::printf("  MD performance: %6.2f Matom-steps/node-s   (paper 6.21)\n",
              run.matom_steps_per_node_s());
  std::printf("  timesteps/s:    %6.2f                      (paper 1.47)\n",
              1.0 / run.step_time());
  std::printf("  sustained:      %6.1f PFLOPS               (paper 50.0)\n",
              model.pflops(run));
  std::printf("  fraction peak:  %6.1f %%                    (paper 24.9%%)\n",
              100.0 * model.fraction_of_peak(run));
  std::printf("  vs DeepMD:      %6.1f x                     (paper 22.9x)\n",
              run.matom_steps_per_node_s() / 0.271);
  std::printf(
      "\nWeak-scaling implication (paper): 373,248 atoms/node at full scale\n"
      "sustains ~1 ns/day; model: %.2f ns/day at 0.5 fs/step.\n",
      model.predict(373248.0 * 4650, 4650).matom_steps_per_node_s() * 1e6 /
          373248.0 * 0.5e-6 * 86400.0);

  print_thread_scaling_json();
  print_production_bench(json_path);
  return 0;
}
