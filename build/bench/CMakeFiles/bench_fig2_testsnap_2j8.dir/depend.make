# Empty dependencies file for bench_fig2_testsnap_2j8.
# This may be replaced when dependencies are built.
