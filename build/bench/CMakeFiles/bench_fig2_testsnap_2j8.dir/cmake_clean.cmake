file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_testsnap_2j8.dir/bench_fig2_testsnap_2j8.cpp.o"
  "CMakeFiles/bench_fig2_testsnap_2j8.dir/bench_fig2_testsnap_2j8.cpp.o.d"
  "bench_fig2_testsnap_2j8"
  "bench_fig2_testsnap_2j8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_testsnap_2j8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
