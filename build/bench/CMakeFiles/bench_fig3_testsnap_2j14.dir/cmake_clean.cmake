file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_testsnap_2j14.dir/bench_fig3_testsnap_2j14.cpp.o"
  "CMakeFiles/bench_fig3_testsnap_2j14.dir/bench_fig3_testsnap_2j14.cpp.o.d"
  "bench_fig3_testsnap_2j14"
  "bench_fig3_testsnap_2j14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_testsnap_2j14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
