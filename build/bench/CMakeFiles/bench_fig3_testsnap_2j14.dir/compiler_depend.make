# Empty compiler generated dependencies file for bench_fig3_testsnap_2j14.
# This may be replaced when dependencies are built.
