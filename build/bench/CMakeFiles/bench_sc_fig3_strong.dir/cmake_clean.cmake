file(REMOVE_RECURSE
  "CMakeFiles/bench_sc_fig3_strong.dir/bench_sc_fig3_strong.cpp.o"
  "CMakeFiles/bench_sc_fig3_strong.dir/bench_sc_fig3_strong.cpp.o.d"
  "bench_sc_fig3_strong"
  "bench_sc_fig3_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sc_fig3_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
