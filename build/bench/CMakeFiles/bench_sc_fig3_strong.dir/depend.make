# Empty dependencies file for bench_sc_fig3_strong.
# This may be replaced when dependencies are built.
