# Empty dependencies file for bench_sc_fig7_production.
# This may be replaced when dependencies are built.
