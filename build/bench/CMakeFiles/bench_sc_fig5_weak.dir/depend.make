# Empty dependencies file for bench_sc_fig5_weak.
# This may be replaced when dependencies are built.
