file(REMOVE_RECURSE
  "CMakeFiles/bench_sc_fig5_weak.dir/bench_sc_fig5_weak.cpp.o"
  "CMakeFiles/bench_sc_fig5_weak.dir/bench_sc_fig5_weak.cpp.o.d"
  "bench_sc_fig5_weak"
  "bench_sc_fig5_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sc_fig5_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
