# Empty dependencies file for bench_bc8_pipeline.
# This may be replaced when dependencies are built.
