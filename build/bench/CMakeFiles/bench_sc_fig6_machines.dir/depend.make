# Empty dependencies file for bench_sc_fig6_machines.
# This may be replaced when dependencies are built.
