file(REMOVE_RECURSE
  "CMakeFiles/bench_sc_fig6_machines.dir/bench_sc_fig6_machines.cpp.o"
  "CMakeFiles/bench_sc_fig6_machines.dir/bench_sc_fig6_machines.cpp.o.d"
  "bench_sc_fig6_machines"
  "bench_sc_fig6_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sc_fig6_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
