file(REMOVE_RECURSE
  "CMakeFiles/bench_taskmgr.dir/bench_taskmgr.cpp.o"
  "CMakeFiles/bench_taskmgr.dir/bench_taskmgr.cpp.o.d"
  "bench_taskmgr"
  "bench_taskmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taskmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
