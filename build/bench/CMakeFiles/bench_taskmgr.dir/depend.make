# Empty dependencies file for bench_taskmgr.
# This may be replaced when dependencies are built.
