file(REMOVE_RECURSE
  "CMakeFiles/bench_parsplice.dir/bench_parsplice.cpp.o"
  "CMakeFiles/bench_parsplice.dir/bench_parsplice.cpp.o.d"
  "bench_parsplice"
  "bench_parsplice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parsplice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
