# Empty compiler generated dependencies file for bench_parsplice.
# This may be replaced when dependencies are built.
