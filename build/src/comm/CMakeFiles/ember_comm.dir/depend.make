# Empty dependencies file for ember_comm.
# This may be replaced when dependencies are built.
