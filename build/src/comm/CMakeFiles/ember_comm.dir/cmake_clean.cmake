file(REMOVE_RECURSE
  "CMakeFiles/ember_comm.dir/communicator.cpp.o"
  "CMakeFiles/ember_comm.dir/communicator.cpp.o.d"
  "libember_comm.a"
  "libember_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
