file(REMOVE_RECURSE
  "libember_comm.a"
)
