# Empty dependencies file for ember_md.
# This may be replaced when dependencies are built.
