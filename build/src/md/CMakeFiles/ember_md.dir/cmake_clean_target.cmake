file(REMOVE_RECURSE
  "libember_md.a"
)
