file(REMOVE_RECURSE
  "CMakeFiles/ember_md.dir/batched.cpp.o"
  "CMakeFiles/ember_md.dir/batched.cpp.o.d"
  "CMakeFiles/ember_md.dir/computes.cpp.o"
  "CMakeFiles/ember_md.dir/computes.cpp.o.d"
  "CMakeFiles/ember_md.dir/integrate.cpp.o"
  "CMakeFiles/ember_md.dir/integrate.cpp.o.d"
  "CMakeFiles/ember_md.dir/io.cpp.o"
  "CMakeFiles/ember_md.dir/io.cpp.o.d"
  "CMakeFiles/ember_md.dir/lattice.cpp.o"
  "CMakeFiles/ember_md.dir/lattice.cpp.o.d"
  "CMakeFiles/ember_md.dir/minimize.cpp.o"
  "CMakeFiles/ember_md.dir/minimize.cpp.o.d"
  "CMakeFiles/ember_md.dir/neighbor.cpp.o"
  "CMakeFiles/ember_md.dir/neighbor.cpp.o.d"
  "CMakeFiles/ember_md.dir/potential.cpp.o"
  "CMakeFiles/ember_md.dir/potential.cpp.o.d"
  "CMakeFiles/ember_md.dir/simulation.cpp.o"
  "CMakeFiles/ember_md.dir/simulation.cpp.o.d"
  "libember_md.a"
  "libember_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
