
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/batched.cpp" "src/md/CMakeFiles/ember_md.dir/batched.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/batched.cpp.o.d"
  "/root/repo/src/md/computes.cpp" "src/md/CMakeFiles/ember_md.dir/computes.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/computes.cpp.o.d"
  "/root/repo/src/md/integrate.cpp" "src/md/CMakeFiles/ember_md.dir/integrate.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/integrate.cpp.o.d"
  "/root/repo/src/md/io.cpp" "src/md/CMakeFiles/ember_md.dir/io.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/io.cpp.o.d"
  "/root/repo/src/md/lattice.cpp" "src/md/CMakeFiles/ember_md.dir/lattice.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/lattice.cpp.o.d"
  "/root/repo/src/md/minimize.cpp" "src/md/CMakeFiles/ember_md.dir/minimize.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/minimize.cpp.o.d"
  "/root/repo/src/md/neighbor.cpp" "src/md/CMakeFiles/ember_md.dir/neighbor.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/neighbor.cpp.o.d"
  "/root/repo/src/md/potential.cpp" "src/md/CMakeFiles/ember_md.dir/potential.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/potential.cpp.o.d"
  "/root/repo/src/md/simulation.cpp" "src/md/CMakeFiles/ember_md.dir/simulation.cpp.o" "gcc" "src/md/CMakeFiles/ember_md.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ember_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
