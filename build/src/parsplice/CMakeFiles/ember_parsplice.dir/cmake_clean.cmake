file(REMOVE_RECURSE
  "CMakeFiles/ember_parsplice.dir/landscape.cpp.o"
  "CMakeFiles/ember_parsplice.dir/landscape.cpp.o.d"
  "CMakeFiles/ember_parsplice.dir/parsplice.cpp.o"
  "CMakeFiles/ember_parsplice.dir/parsplice.cpp.o.d"
  "CMakeFiles/ember_parsplice.dir/taskmgr.cpp.o"
  "CMakeFiles/ember_parsplice.dir/taskmgr.cpp.o.d"
  "libember_parsplice.a"
  "libember_parsplice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_parsplice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
