file(REMOVE_RECURSE
  "libember_parsplice.a"
)
