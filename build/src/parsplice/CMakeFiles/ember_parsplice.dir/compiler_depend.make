# Empty compiler generated dependencies file for ember_parsplice.
# This may be replaced when dependencies are built.
