file(REMOVE_RECURSE
  "libember_ref.a"
)
