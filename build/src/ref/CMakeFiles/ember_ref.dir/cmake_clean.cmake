file(REMOVE_RECURSE
  "CMakeFiles/ember_ref.dir/pair_eam.cpp.o"
  "CMakeFiles/ember_ref.dir/pair_eam.cpp.o.d"
  "CMakeFiles/ember_ref.dir/pair_lj.cpp.o"
  "CMakeFiles/ember_ref.dir/pair_lj.cpp.o.d"
  "CMakeFiles/ember_ref.dir/pair_morse.cpp.o"
  "CMakeFiles/ember_ref.dir/pair_morse.cpp.o.d"
  "CMakeFiles/ember_ref.dir/pair_tersoff.cpp.o"
  "CMakeFiles/ember_ref.dir/pair_tersoff.cpp.o.d"
  "libember_ref.a"
  "libember_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
