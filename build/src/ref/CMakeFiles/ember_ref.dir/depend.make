# Empty dependencies file for ember_ref.
# This may be replaced when dependencies are built.
