file(REMOVE_RECURSE
  "CMakeFiles/ember_fit.dir/linalg.cpp.o"
  "CMakeFiles/ember_fit.dir/linalg.cpp.o.d"
  "CMakeFiles/ember_fit.dir/trainer.cpp.o"
  "CMakeFiles/ember_fit.dir/trainer.cpp.o.d"
  "libember_fit.a"
  "libember_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
