file(REMOVE_RECURSE
  "libember_fit.a"
)
