# Empty compiler generated dependencies file for ember_fit.
# This may be replaced when dependencies are built.
