# Empty dependencies file for ember_perf.
# This may be replaced when dependencies are built.
