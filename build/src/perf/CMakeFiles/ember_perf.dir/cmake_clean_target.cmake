file(REMOVE_RECURSE
  "libember_perf.a"
)
