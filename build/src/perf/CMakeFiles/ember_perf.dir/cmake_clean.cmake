file(REMOVE_RECURSE
  "CMakeFiles/ember_perf.dir/production.cpp.o"
  "CMakeFiles/ember_perf.dir/production.cpp.o.d"
  "CMakeFiles/ember_perf.dir/scaling.cpp.o"
  "CMakeFiles/ember_perf.dir/scaling.cpp.o.d"
  "libember_perf.a"
  "libember_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
