file(REMOVE_RECURSE
  "CMakeFiles/ember_common.dir/error.cpp.o"
  "CMakeFiles/ember_common.dir/error.cpp.o.d"
  "CMakeFiles/ember_common.dir/rng.cpp.o"
  "CMakeFiles/ember_common.dir/rng.cpp.o.d"
  "CMakeFiles/ember_common.dir/vec3.cpp.o"
  "CMakeFiles/ember_common.dir/vec3.cpp.o.d"
  "libember_common.a"
  "libember_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
