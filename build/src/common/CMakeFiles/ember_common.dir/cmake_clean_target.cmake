file(REMOVE_RECURSE
  "libember_common.a"
)
