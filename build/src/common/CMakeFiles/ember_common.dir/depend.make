# Empty dependencies file for ember_common.
# This may be replaced when dependencies are built.
