file(REMOVE_RECURSE
  "libember_parallel.a"
)
