file(REMOVE_RECURSE
  "CMakeFiles/ember_parallel.dir/domain.cpp.o"
  "CMakeFiles/ember_parallel.dir/domain.cpp.o.d"
  "CMakeFiles/ember_parallel.dir/parallel_sim.cpp.o"
  "CMakeFiles/ember_parallel.dir/parallel_sim.cpp.o.d"
  "libember_parallel.a"
  "libember_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
