# Empty compiler generated dependencies file for ember_parallel.
# This may be replaced when dependencies are built.
