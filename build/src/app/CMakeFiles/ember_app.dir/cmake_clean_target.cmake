file(REMOVE_RECURSE
  "libember_app.a"
)
