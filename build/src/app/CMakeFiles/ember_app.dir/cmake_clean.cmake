file(REMOVE_RECURSE
  "CMakeFiles/ember_app.dir/interpreter.cpp.o"
  "CMakeFiles/ember_app.dir/interpreter.cpp.o.d"
  "libember_app.a"
  "libember_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
