# Empty dependencies file for ember_app.
# This may be replaced when dependencies are built.
