# Empty compiler generated dependencies file for ember_run.
# This may be replaced when dependencies are built.
