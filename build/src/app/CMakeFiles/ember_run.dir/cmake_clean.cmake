file(REMOVE_RECURSE
  "CMakeFiles/ember_run.dir/ember_run.cpp.o"
  "CMakeFiles/ember_run.dir/ember_run.cpp.o.d"
  "ember_run"
  "ember_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
