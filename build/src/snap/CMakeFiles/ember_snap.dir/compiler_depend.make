# Empty compiler generated dependencies file for ember_snap.
# This may be replaced when dependencies are built.
