file(REMOVE_RECURSE
  "CMakeFiles/ember_snap.dir/bispectrum.cpp.o"
  "CMakeFiles/ember_snap.dir/bispectrum.cpp.o.d"
  "CMakeFiles/ember_snap.dir/factorial.cpp.o"
  "CMakeFiles/ember_snap.dir/factorial.cpp.o.d"
  "CMakeFiles/ember_snap.dir/indexing.cpp.o"
  "CMakeFiles/ember_snap.dir/indexing.cpp.o.d"
  "CMakeFiles/ember_snap.dir/snap_potential.cpp.o"
  "CMakeFiles/ember_snap.dir/snap_potential.cpp.o.d"
  "CMakeFiles/ember_snap.dir/testsnap.cpp.o"
  "CMakeFiles/ember_snap.dir/testsnap.cpp.o.d"
  "CMakeFiles/ember_snap.dir/wigner.cpp.o"
  "CMakeFiles/ember_snap.dir/wigner.cpp.o.d"
  "libember_snap.a"
  "libember_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
