file(REMOVE_RECURSE
  "libember_snap.a"
)
