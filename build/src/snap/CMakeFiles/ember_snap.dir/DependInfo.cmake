
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snap/bispectrum.cpp" "src/snap/CMakeFiles/ember_snap.dir/bispectrum.cpp.o" "gcc" "src/snap/CMakeFiles/ember_snap.dir/bispectrum.cpp.o.d"
  "/root/repo/src/snap/factorial.cpp" "src/snap/CMakeFiles/ember_snap.dir/factorial.cpp.o" "gcc" "src/snap/CMakeFiles/ember_snap.dir/factorial.cpp.o.d"
  "/root/repo/src/snap/indexing.cpp" "src/snap/CMakeFiles/ember_snap.dir/indexing.cpp.o" "gcc" "src/snap/CMakeFiles/ember_snap.dir/indexing.cpp.o.d"
  "/root/repo/src/snap/snap_potential.cpp" "src/snap/CMakeFiles/ember_snap.dir/snap_potential.cpp.o" "gcc" "src/snap/CMakeFiles/ember_snap.dir/snap_potential.cpp.o.d"
  "/root/repo/src/snap/testsnap.cpp" "src/snap/CMakeFiles/ember_snap.dir/testsnap.cpp.o" "gcc" "src/snap/CMakeFiles/ember_snap.dir/testsnap.cpp.o.d"
  "/root/repo/src/snap/wigner.cpp" "src/snap/CMakeFiles/ember_snap.dir/wigner.cpp.o" "gcc" "src/snap/CMakeFiles/ember_snap.dir/wigner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ember_common.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/ember_md.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
