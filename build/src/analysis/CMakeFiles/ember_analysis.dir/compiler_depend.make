# Empty compiler generated dependencies file for ember_analysis.
# This may be replaced when dependencies are built.
