file(REMOVE_RECURSE
  "CMakeFiles/ember_analysis.dir/classify.cpp.o"
  "CMakeFiles/ember_analysis.dir/classify.cpp.o.d"
  "libember_analysis.a"
  "libember_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ember_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
