file(REMOVE_RECURSE
  "libember_analysis.a"
)
