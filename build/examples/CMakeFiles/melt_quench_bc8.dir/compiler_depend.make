# Empty compiler generated dependencies file for melt_quench_bc8.
# This may be replaced when dependencies are built.
