file(REMOVE_RECURSE
  "CMakeFiles/melt_quench_bc8.dir/melt_quench_bc8.cpp.o"
  "CMakeFiles/melt_quench_bc8.dir/melt_quench_bc8.cpp.o.d"
  "melt_quench_bc8"
  "melt_quench_bc8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melt_quench_bc8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
