file(REMOVE_RECURSE
  "CMakeFiles/fit_snap.dir/fit_snap.cpp.o"
  "CMakeFiles/fit_snap.dir/fit_snap.cpp.o.d"
  "fit_snap"
  "fit_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
