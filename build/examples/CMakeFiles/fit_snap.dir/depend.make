# Empty dependencies file for fit_snap.
# This may be replaced when dependencies are built.
