file(REMOVE_RECURSE
  "CMakeFiles/parsplice_demo.dir/parsplice_demo.cpp.o"
  "CMakeFiles/parsplice_demo.dir/parsplice_demo.cpp.o.d"
  "parsplice_demo"
  "parsplice_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsplice_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
