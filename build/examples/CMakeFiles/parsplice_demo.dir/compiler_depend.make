# Empty compiler generated dependencies file for parsplice_demo.
# This may be replaced when dependencies are built.
