
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parsplice/test_parsplice.cpp" "tests/parsplice/CMakeFiles/test_parsplice.dir/test_parsplice.cpp.o" "gcc" "tests/parsplice/CMakeFiles/test_parsplice.dir/test_parsplice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parsplice/CMakeFiles/ember_parsplice.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ember_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
