file(REMOVE_RECURSE
  "CMakeFiles/test_parsplice.dir/test_parsplice.cpp.o"
  "CMakeFiles/test_parsplice.dir/test_parsplice.cpp.o.d"
  "test_parsplice"
  "test_parsplice.pdb"
  "test_parsplice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parsplice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
