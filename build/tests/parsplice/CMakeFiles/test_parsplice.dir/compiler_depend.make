# Empty compiler generated dependencies file for test_parsplice.
# This may be replaced when dependencies are built.
