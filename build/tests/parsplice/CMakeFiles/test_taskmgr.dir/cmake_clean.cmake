file(REMOVE_RECURSE
  "CMakeFiles/test_taskmgr.dir/test_taskmgr.cpp.o"
  "CMakeFiles/test_taskmgr.dir/test_taskmgr.cpp.o.d"
  "test_taskmgr"
  "test_taskmgr.pdb"
  "test_taskmgr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
