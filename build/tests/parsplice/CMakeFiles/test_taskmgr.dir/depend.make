# Empty dependencies file for test_taskmgr.
# This may be replaced when dependencies are built.
