# CMake generated Testfile for 
# Source directory: /root/repo/tests/parsplice
# Build directory: /root/repo/build/tests/parsplice
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/parsplice/test_parsplice[1]_include.cmake")
include("/root/repo/build/tests/parsplice/test_taskmgr[1]_include.cmake")
