# CMake generated Testfile for 
# Source directory: /root/repo/tests/snap
# Build directory: /root/repo/build/tests/snap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/snap/test_snap_factorial[1]_include.cmake")
include("/root/repo/build/tests/snap/test_snap_wigner[1]_include.cmake")
include("/root/repo/build/tests/snap/test_snap_indexing[1]_include.cmake")
include("/root/repo/build/tests/snap/test_snap_bispectrum[1]_include.cmake")
include("/root/repo/build/tests/snap/test_snap_forces[1]_include.cmake")
include("/root/repo/build/tests/snap/test_snap_potential[1]_include.cmake")
include("/root/repo/build/tests/snap/test_snap_testsnap[1]_include.cmake")
include("/root/repo/build/tests/snap/test_snap_properties[1]_include.cmake")
