# Empty compiler generated dependencies file for test_snap_forces.
# This may be replaced when dependencies are built.
