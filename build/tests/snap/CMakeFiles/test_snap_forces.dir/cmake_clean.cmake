file(REMOVE_RECURSE
  "CMakeFiles/test_snap_forces.dir/test_forces.cpp.o"
  "CMakeFiles/test_snap_forces.dir/test_forces.cpp.o.d"
  "test_snap_forces"
  "test_snap_forces.pdb"
  "test_snap_forces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_forces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
