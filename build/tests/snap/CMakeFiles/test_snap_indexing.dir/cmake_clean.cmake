file(REMOVE_RECURSE
  "CMakeFiles/test_snap_indexing.dir/test_indexing.cpp.o"
  "CMakeFiles/test_snap_indexing.dir/test_indexing.cpp.o.d"
  "test_snap_indexing"
  "test_snap_indexing.pdb"
  "test_snap_indexing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
