# Empty dependencies file for test_snap_indexing.
# This may be replaced when dependencies are built.
