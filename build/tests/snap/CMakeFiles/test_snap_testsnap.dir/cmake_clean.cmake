file(REMOVE_RECURSE
  "CMakeFiles/test_snap_testsnap.dir/test_testsnap.cpp.o"
  "CMakeFiles/test_snap_testsnap.dir/test_testsnap.cpp.o.d"
  "test_snap_testsnap"
  "test_snap_testsnap.pdb"
  "test_snap_testsnap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_testsnap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
