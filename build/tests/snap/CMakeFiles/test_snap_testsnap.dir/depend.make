# Empty dependencies file for test_snap_testsnap.
# This may be replaced when dependencies are built.
