file(REMOVE_RECURSE
  "CMakeFiles/test_snap_bispectrum.dir/test_bispectrum.cpp.o"
  "CMakeFiles/test_snap_bispectrum.dir/test_bispectrum.cpp.o.d"
  "test_snap_bispectrum"
  "test_snap_bispectrum.pdb"
  "test_snap_bispectrum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_bispectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
