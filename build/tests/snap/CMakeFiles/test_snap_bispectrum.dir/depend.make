# Empty dependencies file for test_snap_bispectrum.
# This may be replaced when dependencies are built.
