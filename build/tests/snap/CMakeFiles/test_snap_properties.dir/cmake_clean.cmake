file(REMOVE_RECURSE
  "CMakeFiles/test_snap_properties.dir/test_properties.cpp.o"
  "CMakeFiles/test_snap_properties.dir/test_properties.cpp.o.d"
  "test_snap_properties"
  "test_snap_properties.pdb"
  "test_snap_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
