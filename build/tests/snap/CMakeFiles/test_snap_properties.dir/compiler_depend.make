# Empty compiler generated dependencies file for test_snap_properties.
# This may be replaced when dependencies are built.
