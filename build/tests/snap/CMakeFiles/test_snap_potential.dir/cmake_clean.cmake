file(REMOVE_RECURSE
  "CMakeFiles/test_snap_potential.dir/test_snap_potential.cpp.o"
  "CMakeFiles/test_snap_potential.dir/test_snap_potential.cpp.o.d"
  "test_snap_potential"
  "test_snap_potential.pdb"
  "test_snap_potential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
