# Empty dependencies file for test_snap_potential.
# This may be replaced when dependencies are built.
