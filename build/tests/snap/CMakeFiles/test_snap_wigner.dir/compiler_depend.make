# Empty compiler generated dependencies file for test_snap_wigner.
# This may be replaced when dependencies are built.
