file(REMOVE_RECURSE
  "CMakeFiles/test_snap_wigner.dir/test_wigner.cpp.o"
  "CMakeFiles/test_snap_wigner.dir/test_wigner.cpp.o.d"
  "test_snap_wigner"
  "test_snap_wigner.pdb"
  "test_snap_wigner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_wigner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
