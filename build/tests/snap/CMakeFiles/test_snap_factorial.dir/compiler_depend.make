# Empty compiler generated dependencies file for test_snap_factorial.
# This may be replaced when dependencies are built.
