file(REMOVE_RECURSE
  "CMakeFiles/test_snap_factorial.dir/test_factorial.cpp.o"
  "CMakeFiles/test_snap_factorial.dir/test_factorial.cpp.o.d"
  "test_snap_factorial"
  "test_snap_factorial.pdb"
  "test_snap_factorial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_factorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
