file(REMOVE_RECURSE
  "CMakeFiles/test_app_interpreter.dir/test_interpreter.cpp.o"
  "CMakeFiles/test_app_interpreter.dir/test_interpreter.cpp.o.d"
  "test_app_interpreter"
  "test_app_interpreter.pdb"
  "test_app_interpreter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
