# Empty compiler generated dependencies file for test_comm_communicator.
# This may be replaced when dependencies are built.
