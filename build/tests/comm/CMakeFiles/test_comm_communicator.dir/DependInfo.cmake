
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comm/test_communicator.cpp" "tests/comm/CMakeFiles/test_comm_communicator.dir/test_communicator.cpp.o" "gcc" "tests/comm/CMakeFiles/test_comm_communicator.dir/test_communicator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/ember_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ember_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
