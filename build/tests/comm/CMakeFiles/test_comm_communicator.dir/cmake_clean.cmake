file(REMOVE_RECURSE
  "CMakeFiles/test_comm_communicator.dir/test_communicator.cpp.o"
  "CMakeFiles/test_comm_communicator.dir/test_communicator.cpp.o.d"
  "test_comm_communicator"
  "test_comm_communicator.pdb"
  "test_comm_communicator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_communicator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
