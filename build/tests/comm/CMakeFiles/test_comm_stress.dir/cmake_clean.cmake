file(REMOVE_RECURSE
  "CMakeFiles/test_comm_stress.dir/test_comm_stress.cpp.o"
  "CMakeFiles/test_comm_stress.dir/test_comm_stress.cpp.o.d"
  "test_comm_stress"
  "test_comm_stress.pdb"
  "test_comm_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
