# CMake generated Testfile for 
# Source directory: /root/repo/tests/comm
# Build directory: /root/repo/build/tests/comm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/comm/test_comm_communicator[1]_include.cmake")
include("/root/repo/build/tests/comm/test_comm_stress[1]_include.cmake")
