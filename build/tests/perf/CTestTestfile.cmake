# CMake generated Testfile for 
# Source directory: /root/repo/tests/perf
# Build directory: /root/repo/build/tests/perf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/perf/test_perf_scaling[1]_include.cmake")
include("/root/repo/build/tests/perf/test_perf_properties[1]_include.cmake")
