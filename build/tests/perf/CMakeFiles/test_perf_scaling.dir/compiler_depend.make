# Empty compiler generated dependencies file for test_perf_scaling.
# This may be replaced when dependencies are built.
