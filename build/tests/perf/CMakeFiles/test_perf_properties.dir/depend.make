# Empty dependencies file for test_perf_properties.
# This may be replaced when dependencies are built.
