file(REMOVE_RECURSE
  "CMakeFiles/test_perf_properties.dir/test_perf_properties.cpp.o"
  "CMakeFiles/test_perf_properties.dir/test_perf_properties.cpp.o.d"
  "test_perf_properties"
  "test_perf_properties.pdb"
  "test_perf_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
