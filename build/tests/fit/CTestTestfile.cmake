# CMake generated Testfile for 
# Source directory: /root/repo/tests/fit
# Build directory: /root/repo/build/tests/fit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fit/test_fit_trainer[1]_include.cmake")
include("/root/repo/build/tests/fit/test_fit_properties[1]_include.cmake")
