# Empty compiler generated dependencies file for test_fit_trainer.
# This may be replaced when dependencies are built.
