file(REMOVE_RECURSE
  "CMakeFiles/test_fit_trainer.dir/test_trainer.cpp.o"
  "CMakeFiles/test_fit_trainer.dir/test_trainer.cpp.o.d"
  "test_fit_trainer"
  "test_fit_trainer.pdb"
  "test_fit_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fit_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
