file(REMOVE_RECURSE
  "CMakeFiles/test_fit_properties.dir/test_fit_properties.cpp.o"
  "CMakeFiles/test_fit_properties.dir/test_fit_properties.cpp.o.d"
  "test_fit_properties"
  "test_fit_properties.pdb"
  "test_fit_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fit_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
