# Empty compiler generated dependencies file for test_fit_properties.
# This may be replaced when dependencies are built.
