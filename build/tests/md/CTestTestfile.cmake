# CMake generated Testfile for 
# Source directory: /root/repo/tests/md
# Build directory: /root/repo/build/tests/md
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/md/test_md_box_neighbor[1]_include.cmake")
include("/root/repo/build/tests/md/test_md_dynamics[1]_include.cmake")
include("/root/repo/build/tests/md/test_md_batched[1]_include.cmake")
include("/root/repo/build/tests/md/test_md_properties[1]_include.cmake")
include("/root/repo/build/tests/md/test_md_integrators[1]_include.cmake")
