# Empty dependencies file for test_md_integrators.
# This may be replaced when dependencies are built.
