# Empty dependencies file for test_md_dynamics.
# This may be replaced when dependencies are built.
