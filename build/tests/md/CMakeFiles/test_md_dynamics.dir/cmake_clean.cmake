file(REMOVE_RECURSE
  "CMakeFiles/test_md_dynamics.dir/test_dynamics.cpp.o"
  "CMakeFiles/test_md_dynamics.dir/test_dynamics.cpp.o.d"
  "test_md_dynamics"
  "test_md_dynamics.pdb"
  "test_md_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
