file(REMOVE_RECURSE
  "CMakeFiles/test_md_properties.dir/test_md_properties.cpp.o"
  "CMakeFiles/test_md_properties.dir/test_md_properties.cpp.o.d"
  "test_md_properties"
  "test_md_properties.pdb"
  "test_md_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
