# Empty dependencies file for test_md_properties.
# This may be replaced when dependencies are built.
