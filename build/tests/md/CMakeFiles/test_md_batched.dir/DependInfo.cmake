
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/md/test_batched.cpp" "tests/md/CMakeFiles/test_md_batched.dir/test_batched.cpp.o" "gcc" "tests/md/CMakeFiles/test_md_batched.dir/test_batched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/ember_md.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/ember_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ember_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
