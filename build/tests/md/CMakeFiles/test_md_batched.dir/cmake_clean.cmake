file(REMOVE_RECURSE
  "CMakeFiles/test_md_batched.dir/test_batched.cpp.o"
  "CMakeFiles/test_md_batched.dir/test_batched.cpp.o.d"
  "test_md_batched"
  "test_md_batched.pdb"
  "test_md_batched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
