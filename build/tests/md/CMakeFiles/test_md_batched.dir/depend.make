# Empty dependencies file for test_md_batched.
# This may be replaced when dependencies are built.
