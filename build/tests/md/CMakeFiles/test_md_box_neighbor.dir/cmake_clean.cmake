file(REMOVE_RECURSE
  "CMakeFiles/test_md_box_neighbor.dir/test_box_neighbor.cpp.o"
  "CMakeFiles/test_md_box_neighbor.dir/test_box_neighbor.cpp.o.d"
  "test_md_box_neighbor"
  "test_md_box_neighbor.pdb"
  "test_md_box_neighbor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_box_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
