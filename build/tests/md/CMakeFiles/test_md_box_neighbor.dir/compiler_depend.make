# Empty compiler generated dependencies file for test_md_box_neighbor.
# This may be replaced when dependencies are built.
