# Empty dependencies file for test_ref_potentials.
# This may be replaced when dependencies are built.
