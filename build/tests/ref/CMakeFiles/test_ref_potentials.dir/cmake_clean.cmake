file(REMOVE_RECURSE
  "CMakeFiles/test_ref_potentials.dir/test_potentials.cpp.o"
  "CMakeFiles/test_ref_potentials.dir/test_potentials.cpp.o.d"
  "test_ref_potentials"
  "test_ref_potentials.pdb"
  "test_ref_potentials[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_potentials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
