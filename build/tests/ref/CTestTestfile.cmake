# CMake generated Testfile for 
# Source directory: /root/repo/tests/ref
# Build directory: /root/repo/build/tests/ref
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ref/test_ref_potentials[1]_include.cmake")
