file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_properties.dir/test_parallel_properties.cpp.o"
  "CMakeFiles/test_parallel_properties.dir/test_parallel_properties.cpp.o.d"
  "test_parallel_properties"
  "test_parallel_properties.pdb"
  "test_parallel_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
