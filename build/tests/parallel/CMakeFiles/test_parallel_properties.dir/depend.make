# Empty dependencies file for test_parallel_properties.
# This may be replaced when dependencies are built.
