file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_classify.dir/test_classify.cpp.o"
  "CMakeFiles/test_analysis_classify.dir/test_classify.cpp.o.d"
  "test_analysis_classify"
  "test_analysis_classify.pdb"
  "test_analysis_classify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
