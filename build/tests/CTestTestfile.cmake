# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("snap")
subdirs("md")
subdirs("ref")
subdirs("fit")
subdirs("comm")
subdirs("parallel")
subdirs("perf")
subdirs("analysis")
subdirs("parsplice")
subdirs("app")
