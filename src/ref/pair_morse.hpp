#pragma once

// Morse pair potential: V(r) = D0 [exp(-2a(r-r0)) - 2 exp(-a(r-r0))],
// energy-shifted at the cutoff.

#include "md/potential.hpp"

namespace ember::ref {

class PairMorse final : public md::PairPotential {
 public:
  PairMorse(double d0, double alpha, double r0, double rcut)
      : d0_(d0), alpha_(alpha), r0_(r0), rcut_(rcut) {
    const double e = std::exp(-alpha_ * (rcut_ - r0_));
    eshift_ = d0_ * (e * e - 2.0 * e);
  }

  [[nodiscard]] double cutoff() const override { return rcut_; }
  [[nodiscard]] const char* name() const override { return "morse"; }

  using md::PairPotential::compute;
  md::EnergyVirial compute(const md::ComputeContext& ctx, md::System& sys,
                           const md::NeighborList& nl) override;

 private:
  double d0_;
  double alpha_;
  double r0_;
  double rcut_;
  double eshift_;
};

}  // namespace ember::ref
