#pragma once

// Lennard-Jones 12-6 pair potential (energy-shifted at the cutoff).

#include "md/potential.hpp"

namespace ember::ref {

class PairLJ final : public md::PairPotential {
 public:
  PairLJ(double epsilon, double sigma, double rcut)
      : epsilon_(epsilon), sigma_(sigma), rcut_(rcut) {
    const double sr6 = std::pow(sigma_ / rcut_, 6);
    eshift_ = 4.0 * epsilon_ * (sr6 * sr6 - sr6);
  }

  [[nodiscard]] double cutoff() const override { return rcut_; }
  [[nodiscard]] const char* name() const override { return "lj/cut"; }

  using md::PairPotential::compute;
  md::EnergyVirial compute(const md::ComputeContext& ctx, md::System& sys,
                           const md::NeighborList& nl) override;

 private:
  double epsilon_;
  double sigma_;
  double rcut_;
  double eshift_;
};

}  // namespace ember::ref
