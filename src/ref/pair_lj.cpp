#include "pair_lj.hpp"

namespace ember::ref {

md::EnergyVirial PairLJ::compute(const md::ComputeContext& ctx,
                                 md::System& sys,
                                 const md::NeighborList& nl) {
  const double rc2 = rcut_ * rcut_;
  const double sigma2 = sigma_ * sigma_;
  const auto [abegin, aend] = ctx.atom_range(sys.nlocal());
  ctx.zero_partials();
  // Gather kernel: atom i's own row writes only f[i], so threads never
  // collide and no private force arrays are needed.
  ctx.pool().parallel_for(abegin, aend, /*grain=*/256,
                          [&](int tid, int b, int e) {
    auto& s = ctx.scratch(tid);
    for (int i = b; i < e; ++i) {
      for (const auto& en : nl.neighbors(i)) {
        const Vec3 d = sys.x[en.j] + en.shift - sys.x[i];
        const double r2 = d.norm2();
        if (r2 >= rc2) continue;
        const double sr2 = sigma2 / r2;
        const double sr6 = sr2 * sr2 * sr2;
        const double sr12 = sr6 * sr6;
        // Full list: each pair visited twice, so halve energy/virial; the
        // force on i gets the full pair force from its own visit.
        s.energy += 0.5 * (4.0 * epsilon_ * (sr12 - sr6) - eshift_);
        const double fpair = 24.0 * epsilon_ * (2.0 * sr12 - sr6) / r2;
        sys.f[i] -= fpair * d;
        s.virial += 0.5 * fpair * r2;
      }
    }
  });
  const auto red = ctx.reduce_ev();
  return {red.energy, red.virial};
}

}  // namespace ember::ref
