#include "pair_lj.hpp"

namespace ember::ref {

md::EnergyVirial PairLJ::compute(md::System& sys, const md::NeighborList& nl) {
  md::EnergyVirial ev;
  const double rc2 = rcut_ * rcut_;
  const double sigma2 = sigma_ * sigma_;
  for (int i = 0; i < sys.nlocal(); ++i) {
    const auto [entries, count] = nl.neighbors(i);
    for (int m = 0; m < count; ++m) {
      const Vec3 d = sys.x[entries[m].j] + entries[m].shift - sys.x[i];
      const double r2 = d.norm2();
      if (r2 >= rc2) continue;
      const double sr2 = sigma2 / r2;
      const double sr6 = sr2 * sr2 * sr2;
      const double sr12 = sr6 * sr6;
      // Full list: each pair visited twice, so halve energy/virial; the
      // force on i gets the full pair force from its own visit.
      ev.energy += 0.5 * (4.0 * epsilon_ * (sr12 - sr6) - eshift_);
      const double fpair = 24.0 * epsilon_ * (2.0 * sr12 - sr6) / r2;
      sys.f[i] -= fpair * d;
      ev.virial += 0.5 * fpair * r2;
    }
  }
  return ev;
}

}  // namespace ember::ref
