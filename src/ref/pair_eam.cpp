#include "pair_eam.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ember::ref {

md::EnergyVirial PairEam::compute(const md::ComputeContext& ctx,
                                  md::System& sys,
                                  const md::NeighborList& nl) {
  EMBER_REQUIRE(sys.nghost() == 0,
                "eam/fs is serial-only (embedding force needs a mid-force "
                "halo exchange)");
  const int n = sys.nlocal();
  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);
  const auto [abegin, aend] = ctx.atom_range(n);
  ctx.zero_partials();

  // Pass 1: densities and embedding energy. Both passes are gather
  // kernels (row i writes only index i), and parallel_for is synchronous,
  // so the pass boundary doubles as the barrier the embedding chain needs:
  // pass 2 reads fprime_[j] of any neighbor.
  ctx.pool().parallel_for(abegin, aend, /*grain=*/256,
                          [&](int tid, int b, int e) {
    auto& s = ctx.scratch(tid);
    for (int i = b; i < e; ++i) {
      double rho = 0.0;
      for (const auto& en : nl.neighbors(i)) {
        const double r = (sys.x[en.j] + en.shift - sys.x[i]).norm();
        rho += density_fn(r);
      }
      rho_[i] = rho;
      s.energy += embed_fn(rho);
      fprime_[i] = rho > 0.0 ? -0.5 * p_.A / std::sqrt(rho) : 0.0;
    }
  });

  // Pass 2: pair energy and the full (pair + embedding) forces.
  ctx.pool().parallel_for(abegin, aend, /*grain=*/256,
                          [&](int tid, int b, int e) {
    auto& s = ctx.scratch(tid);
    for (int i = b; i < e; ++i) {
      for (const auto& en : nl.neighbors(i)) {
        const int j = en.j;
        const Vec3 dvec = sys.x[j] + en.shift - sys.x[i];
        const double r = dvec.norm();
        if (r >= cutoff()) continue;

        s.energy += 0.5 * pair_fn(r);

        // d/dr of phi and of f (both smooth at their cutoffs).
        double dphi = 0.0;
        if (r < p_.c) {
          const double dr = r - p_.c;
          dphi = 2.0 * dr * (p_.c0 + p_.c1 * r + p_.c2 * r * r) +
                 dr * dr * (p_.c1 + 2.0 * p_.c2 * r);
        }
        double dfdr = 0.0;
        if (r < p_.d) {
          const double dr = r - p_.d;
          dfdr = 2.0 * dr + 3.0 * p_.beta * dr * dr / p_.d;
        }

        // Total dE/dr of this unordered pair: pair term plus the embedding
        // chain through both ends' densities.
        const double dedr = dphi + (fprime_[i] + fprime_[j]) * dfdr;
        // Each visit accumulates the full pair force onto atom i only; the
        // j side gets the mirror contribution on its own visit.
        // F_i = -dE/dx_i = +(dE/dr) * (x_j - x_i)/r.
        sys.f[i] += (dedr / r) * dvec;
        // Virial per unordered pair is dot(r_vec, F_j) = -dedr * r; halved
        // because the pair is visited twice.
        s.virial += -0.5 * dedr * r;
      }
    }
  });
  const auto red = ctx.reduce_ev();
  return {red.energy, red.virial};
}

}  // namespace ember::ref
