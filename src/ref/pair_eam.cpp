#include "pair_eam.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ember::ref {

md::EnergyVirial PairEam::compute(md::System& sys,
                                  const md::NeighborList& nl) {
  EMBER_REQUIRE(sys.nghost() == 0,
                "eam/fs is serial-only (embedding force needs a mid-force "
                "halo exchange)");
  md::EnergyVirial ev;
  const int n = sys.nlocal();
  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);

  // Pass 1: densities and embedding energy.
  for (int i = 0; i < n; ++i) {
    const auto [entries, count] = nl.neighbors(i);
    double rho = 0.0;
    for (int m = 0; m < count; ++m) {
      const double r =
          (sys.x[entries[m].j] + entries[m].shift - sys.x[i]).norm();
      rho += density_fn(r);
    }
    rho_[i] = rho;
    ev.energy += embed_fn(rho);
    fprime_[i] = rho > 0.0 ? -0.5 * p_.A / std::sqrt(rho) : 0.0;
  }

  // Pass 2: pair energy and the full (pair + embedding) forces.
  for (int i = 0; i < n; ++i) {
    const auto [entries, count] = nl.neighbors(i);
    for (int m = 0; m < count; ++m) {
      const int j = entries[m].j;
      const Vec3 dvec = sys.x[j] + entries[m].shift - sys.x[i];
      const double r = dvec.norm();
      if (r >= cutoff()) continue;

      ev.energy += 0.5 * pair_fn(r);

      // d/dr of phi and of f (both smooth at their cutoffs).
      double dphi = 0.0;
      if (r < p_.c) {
        const double dr = r - p_.c;
        dphi = 2.0 * dr * (p_.c0 + p_.c1 * r + p_.c2 * r * r) +
               dr * dr * (p_.c1 + 2.0 * p_.c2 * r);
      }
      double dfdr = 0.0;
      if (r < p_.d) {
        const double dr = r - p_.d;
        dfdr = 2.0 * dr + 3.0 * p_.beta * dr * dr / p_.d;
      }

      // Total dE/dr of this unordered pair: pair term plus the embedding
      // chain through both ends' densities.
      const double dedr = dphi + (fprime_[i] + fprime_[j]) * dfdr;
      // Each visit accumulates the full pair force onto atom i only; the
      // j side gets the mirror contribution on its own visit.
      // F_i = -dE/dx_i = +(dE/dr) * (x_j - x_i)/r.
      sys.f[i] += (dedr / r) * dvec;
      // Virial per unordered pair is dot(r_vec, F_j) = -dedr * r; halved
      // because the pair is visited twice.
      ev.virial += -0.5 * dedr * r;
    }
  }
  return ev;
}

}  // namespace ember::ref
