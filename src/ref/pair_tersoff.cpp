#include "pair_tersoff.hpp"

#include <cmath>
#include <vector>

namespace ember::ref {

double PairTersoff::fc(double r) const {
  if (r < p_.R - p_.D) return 1.0;
  if (r > p_.R + p_.D) return 0.0;
  return 0.5 * (1.0 - std::sin(M_PI_2 * (r - p_.R) / p_.D));
}

double PairTersoff::fc_d(double r) const {
  if (r < p_.R - p_.D || r > p_.R + p_.D) return 0.0;
  return -(M_PI_4 / p_.D) * std::cos(M_PI_2 * (r - p_.R) / p_.D);
}

double PairTersoff::g_theta(double costheta) const {
  const double u = p_.h - costheta;
  const double c2 = p_.c * p_.c;
  const double d2 = p_.d * p_.d;
  return p_.gamma * (1.0 + c2 / d2 - c2 / (d2 + u * u));
}

double PairTersoff::g_theta_d(double costheta) const {
  const double u = p_.h - costheta;
  const double c2 = p_.c * p_.c;
  const double d2 = p_.d * p_.d;
  const double denom = d2 + u * u;
  return -2.0 * p_.gamma * c2 * u / (denom * denom);
}

double PairTersoff::bij(double zeta) const {
  if (zeta <= 0.0) return 1.0;
  const double t = std::pow(p_.beta * zeta, p_.n);
  return std::pow(1.0 + t, -1.0 / (2.0 * p_.n));
}

double PairTersoff::bij_d(double zeta) const {
  if (zeta <= 0.0) return 0.0;
  const double t = std::pow(p_.beta * zeta, p_.n);
  return -0.5 * std::pow(1.0 + t, -1.0 / (2.0 * p_.n) - 1.0) * (t / zeta);
}

md::EnergyVirial PairTersoff::compute(const md::ComputeContext& ctx,
                                      md::System& sys,
                                      const md::NeighborList& nl) {
  const double rc = cutoff();
  const double rc2 = rc * rc;
  const auto [abegin, aend] = ctx.atom_range(sys.nlocal());
  ctx.zero_partials();
  // Scatter kernel: atom i writes onto its neighbors j and k, so worker 0
  // targets sys.f directly and workers >= 1 accumulate into private force
  // arrays that merge_forces() adds back in a fixed worker order.
  ctx.prepare_scatter(sys.ntotal());

  ctx.pool().parallel_for(abegin, aend, /*grain=*/64,
                          [&](int tid, int bb, int ee) {
  auto& s = ctx.scratch(tid);
  const std::span<Vec3> f =
      tid == 0 ? std::span<Vec3>(sys.f) : std::span<Vec3>(s.f);

  // Scratch: in-range neighbors of the current atom.
  struct Nb {
    Vec3 d;     // displacement i -> neighbor
    double r;
    int j;
  };
  std::vector<Nb> nbr;

  for (int i = bb; i < ee; ++i) {
    nbr.clear();
    for (const auto& en : nl.neighbors(i)) {
      const Vec3 d = sys.x[en.j] + en.shift - sys.x[i];
      const double r2 = d.norm2();
      if (r2 < rc2) nbr.push_back({d, std::sqrt(r2), en.j});
    }

    for (std::size_t jj = 0; jj < nbr.size(); ++jj) {
      const Vec3& rij = nbr[jj].d;
      const double r1 = nbr[jj].r;
      const int j = nbr[jj].j;

      const double fc_ij = fc(r1);
      if (fc_ij == 0.0) continue;
      const double fcd_ij = fc_d(r1);
      const double fr = p_.A * std::exp(-p_.lambda1 * r1);
      const double fa = -p_.B * std::exp(-p_.lambda2 * r1);
      const double fr_d = -p_.lambda1 * fr;
      const double fa_d = -p_.lambda2 * fa;

      // zeta_ij over the other neighbors of i.
      double zeta = 0.0;
      for (std::size_t kk = 0; kk < nbr.size(); ++kk) {
        if (kk == jj) continue;
        const double r2k = nbr[kk].r;
        const double fc_ik = fc(r2k);
        if (fc_ik == 0.0) continue;
        const double cost = dot(rij, nbr[kk].d) / (r1 * r2k);
        double ex = 1.0;
        if (p_.lambda3 != 0.0) {
          const double arg = std::pow(p_.lambda3, p_.m) *
                             std::pow(r1 - r2k, p_.m);
          ex = std::exp(arg);
        }
        zeta += fc_ik * g_theta(cost) * ex;
      }
      const double b = bij(zeta);
      const double db = bij_d(zeta);

      // Pair part: e2 = 1/2 fC (fR + b fA) at fixed b.
      s.energy += 0.5 * fc_ij * (fr + b * fa);
      const double de2dr =
          0.5 * (fcd_ij * (fr + b * fa) + fc_ij * (fr_d + b * fa_d));
      // Force on i along -rhat (rij points i->j): F_i = de2/dr * rhat.
      const Vec3 f2 = (de2dr / r1) * rij;
      f[i] += f2;
      f[j] -= f2;
      s.virial += -de2dr * r1;

      // Three-body part: prefactor = dE/dzeta = 1/2 fC(rij) fA(rij) db.
      const double pf = 0.5 * fc_ij * fa * db;
      if (pf == 0.0) continue;
      for (std::size_t kk = 0; kk < nbr.size(); ++kk) {
        if (kk == jj) continue;
        const Vec3& rik = nbr[kk].d;
        const double r2k = nbr[kk].r;
        const double fc_ik = fc(r2k);
        if (fc_ik == 0.0) continue;
        const int k = nbr[kk].j;
        const double fcd_ik = fc_d(r2k);
        const double cost = dot(rij, rik) / (r1 * r2k);
        const double g = g_theta(cost);
        const double gd = g_theta_d(cost);
        double ex = 1.0;
        double dexdrij = 0.0;
        double dexdrik = 0.0;
        if (p_.lambda3 != 0.0) {
          const double l3m = std::pow(p_.lambda3, p_.m);
          const double dr = r1 - r2k;
          ex = std::exp(l3m * std::pow(dr, p_.m));
          const double dd = l3m * p_.m * std::pow(dr, p_.m - 1.0) * ex;
          dexdrij = dd;
          dexdrik = -dd;
        }

        // Gradients of cos(theta) w.r.t. the positions of j and k.
        const Vec3 dcos_dj = (1.0 / (r1 * r2k)) * rik - (cost / (r1 * r1)) * rij;
        const Vec3 dcos_dk = (1.0 / (r1 * r2k)) * rij - (cost / (r2k * r2k)) * rik;

        // dzeta/dr_j, dzeta/dr_k (r_i picks up the negative sum).
        Vec3 dzeta_dj = fc_ik * ex * gd * dcos_dj;
        if (dexdrij != 0.0) dzeta_dj += (fc_ik * g * dexdrij / r1) * rij;
        Vec3 dzeta_dk = fc_ik * ex * gd * dcos_dk +
                        ((fcd_ik * ex * g) / r2k) * rik;
        if (dexdrik != 0.0) dzeta_dk += (fc_ik * g * dexdrik / r2k) * rik;

        const Vec3 fj = -pf * dzeta_dj;  // force on atom j
        const Vec3 fk = -pf * dzeta_dk;  // force on atom k
        f[j] += fj;
        f[k] += fk;
        f[i] -= fj + fk;
        s.virial += dot(rij, fj) + dot(rik, fk);
      }
    }
  }
  });

  ctx.merge_forces(sys);
  const auto red = ctx.reduce_ev();
  return {red.energy, red.virial};
}

}  // namespace ember::ref
