#pragma once

// Tersoff bond-order potential (single element), used as the quantum-
// accuracy stand-in: it is the ground-truth oracle the FitSNAP-lite
// pipeline trains linear SNAP models against, and it drives the melt-
// quench / high-pressure-anneal science pipeline.
//
//   E = 1/2 sum_i sum_{j!=i} fC(r_ij) [ fR(r_ij) + b_ij fA(r_ij) ]
//   fR = A exp(-lambda1 r),  fA = -B exp(-lambda2 r)
//   b_ij = (1 + beta^n zeta_ij^n)^(-1/2n)
//   zeta_ij = sum_{k!=i,j} fC(r_ik) g(theta_ijk) exp[lambda3^m (r_ij-r_ik)^m]
//   g(theta) = gamma (1 + c^2/d^2 - c^2 / (d^2 + (h - cos theta)^2))
//
// Default parameters are Tersoff's 1988 carbon set (the LAMMPS SiC.tersoff
// C entry).

#include "md/potential.hpp"

namespace ember::ref {

struct TersoffParams {
  double m = 3.0;
  double gamma = 1.0;
  double lambda3 = 0.0;       // 1/A
  double c = 38049.0;
  double d = 4.3484;
  double h = -0.57058;        // cos(theta0)
  double n = 0.72751;
  double beta = 1.5724e-7;
  double lambda2 = 2.2119;    // 1/A
  double B = 346.74;          // eV
  double R = 1.95;            // cutoff center [A]
  double D = 0.15;            // cutoff half-width [A]
  double lambda1 = 3.4879;    // 1/A
  double A = 1393.6;          // eV
};

class PairTersoff final : public md::PairPotential {
 public:
  explicit PairTersoff(const TersoffParams& p = {}) : p_(p) {}

  [[nodiscard]] double cutoff() const override { return p_.R + p_.D; }
  [[nodiscard]] const char* name() const override { return "tersoff"; }
  [[nodiscard]] const TersoffParams& params() const { return p_; }

  using md::PairPotential::compute;
  md::EnergyVirial compute(const md::ComputeContext& ctx, md::System& sys,
                           const md::NeighborList& nl) override;

  // Scalar ingredients, exposed for unit tests.
  [[nodiscard]] double fc(double r) const;
  [[nodiscard]] double fc_d(double r) const;
  [[nodiscard]] double g_theta(double costheta) const;
  [[nodiscard]] double g_theta_d(double costheta) const;
  [[nodiscard]] double bij(double zeta) const;
  [[nodiscard]] double bij_d(double zeta) const;

 private:
  TersoffParams p_;
};

}  // namespace ember::ref
