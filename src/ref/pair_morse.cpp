#include "pair_morse.hpp"

#include <cmath>

namespace ember::ref {

md::EnergyVirial PairMorse::compute(const md::ComputeContext& ctx,
                                    md::System& sys,
                                    const md::NeighborList& nl) {
  const double rc2 = rcut_ * rcut_;
  const auto [abegin, aend] = ctx.atom_range(sys.nlocal());
  ctx.zero_partials();
  // Gather kernel: only f[i] is written, rows are independent.
  ctx.pool().parallel_for(abegin, aend, /*grain=*/256,
                          [&](int tid, int b, int e) {
    auto& s = ctx.scratch(tid);
    for (int i = b; i < e; ++i) {
      for (const auto& en : nl.neighbors(i)) {
        const Vec3 d = sys.x[en.j] + en.shift - sys.x[i];
        const double r2 = d.norm2();
        if (r2 >= rc2) continue;
        const double r = std::sqrt(r2);
        const double eexp = std::exp(-alpha_ * (r - r0_));
        s.energy += 0.5 * (d0_ * (eexp * eexp - 2.0 * eexp) - eshift_);
        // dV/dr = -2 a D0 (e^2 - e); force on i is +dV/dr * rhat.
        const double dvdr = -2.0 * alpha_ * d0_ * (eexp * eexp - eexp);
        sys.f[i] += (dvdr / r) * d;
        s.virial += 0.5 * (-dvdr) * r;
      }
    }
  });
  const auto red = ctx.reduce_ev();
  return {red.energy, red.virial};
}

}  // namespace ember::ref
