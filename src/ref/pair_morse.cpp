#include "pair_morse.hpp"

#include <cmath>

namespace ember::ref {

md::EnergyVirial PairMorse::compute(md::System& sys,
                                    const md::NeighborList& nl) {
  md::EnergyVirial ev;
  const double rc2 = rcut_ * rcut_;
  for (int i = 0; i < sys.nlocal(); ++i) {
    const auto [entries, count] = nl.neighbors(i);
    for (int m = 0; m < count; ++m) {
      const Vec3 d = sys.x[entries[m].j] + entries[m].shift - sys.x[i];
      const double r2 = d.norm2();
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      const double e = std::exp(-alpha_ * (r - r0_));
      ev.energy += 0.5 * (d0_ * (e * e - 2.0 * e) - eshift_);
      // dV/dr = -2 a D0 (e^2 - e); force on i is +dV/dr * rhat.
      const double dvdr = -2.0 * alpha_ * d0_ * (e * e - e);
      sys.f[i] += (dvdr / r) * d;
      ev.virial += 0.5 * (-dvdr) * r;
    }
  }
  return ev;
}

}  // namespace ember::ref
