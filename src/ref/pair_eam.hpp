#pragma once

// Finnis-Sinclair embedded-atom potential (single element).
//
//   E = sum_i F(rho_i) + 1/2 sum_{i != j} phi(r_ij)
//   rho_i  = sum_j f(r_ij),
//   f(r)   = (r - d)^2 + beta (r - d)^3 / d                    r < d
//   phi(r) = (r - c)^2 (c0 + c1 r + c2 r^2)                    r < c
//   F(rho) = -A sqrt(rho)
//
// Defaults are the original Finnis-Sinclair iron parameterization. In the
// deck's cost taxonomy this is the *cheap* potential (vs SNAP's expensive
// kernel): it anchors the low end of the arithmetic-intensity axis in the
// occupancy study (bench_occupancy) and gives ParSplice-style workloads a
// realistic metallic substrate.
//
// Serial-only: the embedding force needs the neighbors' F'(rho), which in
// a domain-decomposed run requires an extra mid-force halo exchange that
// the PairPotential interface does not provide (documented limitation).

#include "md/potential.hpp"

namespace ember::ref {

struct EamParams {
  double A = 1.828905;    // embedding strength [eV]
  double d = 3.569745;    // density cutoff [A]
  double beta = 1.8;      // cubic density correction (Fe)
  double c = 3.40;        // pair cutoff [A]
  double c0 = 1.2371147;
  double c1 = -0.3592185;
  double c2 = -0.0385607;
};

class PairEam final : public md::PairPotential {
 public:
  explicit PairEam(const EamParams& p = {}) : p_(p) {}

  [[nodiscard]] double cutoff() const override { return std::max(p_.c, p_.d); }
  [[nodiscard]] const char* name() const override { return "eam/fs"; }
  [[nodiscard]] const EamParams& params() const { return p_; }

  using md::PairPotential::compute;
  md::EnergyVirial compute(const md::ComputeContext& ctx, md::System& sys,
                           const md::NeighborList& nl) override;

  // Scalar ingredients, exposed for tests.
  [[nodiscard]] double density_fn(double r) const {
    if (r >= p_.d) return 0.0;
    const double dr = r - p_.d;
    return dr * dr + p_.beta * dr * dr * dr / p_.d;
  }
  [[nodiscard]] double pair_fn(double r) const {
    if (r >= p_.c) return 0.0;
    const double dr = r - p_.c;
    return dr * dr * (p_.c0 + p_.c1 * r + p_.c2 * r * r);
  }
  [[nodiscard]] double embed_fn(double rho) const {
    return rho > 0.0 ? -p_.A * std::sqrt(rho) : 0.0;
  }

 private:
  EamParams p_;
  std::vector<double> rho_;      // per-atom density scratch
  std::vector<double> fprime_;   // dF/drho scratch
};

}  // namespace ember::ref
