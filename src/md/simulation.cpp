#include "simulation.hpp"

namespace ember::md {

Simulation::Simulation(System sys, std::shared_ptr<PairPotential> pot,
                       double dt_ps, double skin, std::uint64_t seed,
                       ExecutionPolicy policy)
    : sys_(std::move(sys)),
      pot_(std::move(pot)),
      ctx_(policy),
      integrator_(dt_ps),
      nl_(pot_->cutoff(), skin),
      rng_(seed) {}

void Simulation::setup() {
  {
    ScopedTimer t(timers_, "Neigh");
    nl_.build(sys_, /*use_ghosts=*/false, &ctx_);
  }
  compute_forces();
  ready_ = true;
}

void Simulation::compute_forces() {
  ScopedTimer t(timers_, "Pair");
  sys_.zero_forces();
  ev_ = pot_->compute(ctx_, sys_, nl_);
  if (!ctx_.serial()) {
    timers_.add_thread_times("Pair", ctx_.pool().last_thread_seconds());
  }
}

void Simulation::run(long nsteps, const StepCallback& callback) {
  if (!ready_) setup();
  for (long s = 0; s < nsteps; ++s) {
    {
      ScopedTimer t(timers_, "Other");
      integrator_.initial_integrate(sys_, &ctx_);
    }
    if (nl_.needs_rebuild(sys_)) {
      ScopedTimer t(timers_, "Neigh");
      // Re-wrap positions only here, together with the rebuild, so the
      // list's shift vectors stay consistent with the stored coordinates.
      for (int i = 0; i < sys_.nlocal(); ++i) {
        sys_.x[i] = sys_.box().wrap(sys_.x[i]);
      }
      nl_.build(sys_, /*use_ghosts=*/false, &ctx_);
      if (!ctx_.serial()) {
        timers_.add_thread_times("Neigh", ctx_.pool().last_thread_seconds());
      }
    }
    compute_forces();
    {
      ScopedTimer t(timers_, "Other");
      integrator_.final_integrate(sys_, ev_, rng_, &ctx_);
    }
    ++step_;
    if (callback) callback(*this);
  }
}

}  // namespace ember::md
