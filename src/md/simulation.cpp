#include "simulation.hpp"

namespace ember::md {

Simulation::Simulation(System sys, std::shared_ptr<PairPotential> pot,
                       double dt_ps, double skin, std::uint64_t seed,
                       ExecutionPolicy policy)
    : loop_(std::move(sys), std::move(pot), dt_ps, skin, Rng(seed), policy,
            *this) {}

Simulation::Simulation(Simulation&& other) noexcept
    : loop_(std::move(other.loop_)) {
  loop_.set_stages(*this);
}

void Simulation::run(long nsteps, const StepCallback& callback) {
  if (callback) {
    loop_.run(nsteps, [&] { callback(*this); });
  } else {
    loop_.run(nsteps);
  }
}

}  // namespace ember::md
