#include "minimize.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace ember::md {

FireResult fire_minimize(System& sys, PairPotential& pot,
                         const FireParams& p, double skin) {
  FireResult result;
  NeighborList nl(pot.cutoff(), skin);

  // Start from rest.
  for (int i = 0; i < sys.nlocal(); ++i) sys.v[i] = Vec3{};

  double dt = p.dt_initial;
  double alpha = p.alpha0;
  int since_negative = 0;

  auto forces = [&]() {
    if (nl.needs_rebuild(sys)) {
      for (int i = 0; i < sys.nlocal(); ++i) sys.x[i] = sys.box().wrap(sys.x[i]);
      nl.build(sys);
    }
    sys.zero_forces();
    return pot.compute(sys, nl);
  };
  auto max_force = [&]() {
    double fmax = 0.0;
    for (int i = 0; i < sys.nlocal(); ++i) {
      fmax = std::max({fmax, std::abs(sys.f[i].x), std::abs(sys.f[i].y),
                       std::abs(sys.f[i].z)});
    }
    return fmax;
  };

  nl.build(sys);
  auto ev = forces();

  for (long step = 0; step < p.max_steps; ++step) {
    result.max_force = max_force();
    if (result.max_force < p.force_tolerance) {
      result.converged = true;
      break;
    }

    // Velocity Verlet step with the FIRE velocity mixing.
    const double dtf = 0.5 * dt * units::FORCE_TO_ACCEL / sys.mass();
    for (int i = 0; i < sys.nlocal(); ++i) {
      sys.v[i] += dtf * sys.f[i];
      sys.x[i] += dt * sys.v[i];
    }
    ev = forces();
    for (int i = 0; i < sys.nlocal(); ++i) sys.v[i] += dtf * sys.f[i];

    // Power P = F . v decides the steering.
    double power = 0.0;
    double vnorm2 = 0.0;
    double fnorm2 = 0.0;
    for (int i = 0; i < sys.nlocal(); ++i) {
      power += dot(sys.f[i], sys.v[i]);
      vnorm2 += sys.v[i].norm2();
      fnorm2 += sys.f[i].norm2();
    }

    if (power > 0.0) {
      // Mix velocity toward the force direction.
      const double mix =
          fnorm2 > 0.0 ? alpha * std::sqrt(vnorm2 / fnorm2) : 0.0;
      for (int i = 0; i < sys.nlocal(); ++i) {
        sys.v[i] = (1.0 - alpha) * sys.v[i] + mix * sys.f[i];
      }
      if (++since_negative > p.n_min) {
        dt = std::min(dt * p.f_inc, p.dt_max);
        alpha *= p.f_alpha;
      }
    } else {
      // Uphill: freeze and restart steering.
      for (int i = 0; i < sys.nlocal(); ++i) sys.v[i] = Vec3{};
      dt *= p.f_dec;
      alpha = p.alpha0;
      since_negative = 0;
    }
    ++result.steps;
  }

  result.energy = ev.energy;
  result.max_force = max_force();
  if (result.max_force < p.force_tolerance) result.converged = true;
  return result;
}

}  // namespace ember::md
