#include "computes.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ember::md {

void Rdf::compute(const System& sys) {
  g.assign(nbins, 0.0);
  r.assign(nbins, 0.0);
  const double dr = rmax / nbins;
  for (int b = 0; b < nbins; ++b) r[b] = (b + 0.5) * dr;

  const int n = sys.nlocal();
  if (n < 2) return;
  // Direct double loop with minimum image (diagnostic tool: clarity over
  // speed; samples used in tests/examples are <= a few thousand atoms).
  std::vector<double> counts(nbins, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = sys.box().minimum_image(sys.x[i], sys.x[j]).norm();
      if (d < rmax) {
        counts[static_cast<int>(d / dr)] += 2.0;  // both directions
      }
    }
  }
  const double density = n / sys.box().volume();
  for (int b = 0; b < nbins; ++b) {
    const double r_lo = b * dr;
    const double r_hi = r_lo + dr;
    const double shell =
        4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    g[b] = counts[b] / (n * density * shell);
  }
}

double Rdf::first_peak() const {
  // First local maximum above the noise floor g > 0.5.
  for (int b = 1; b + 1 < nbins; ++b) {
    if (g[b] > 0.5 && g[b] >= g[b - 1] && g[b] > g[b + 1]) return r[b];
  }
  return 0.0;
}

std::vector<int> coordination_numbers(const System& sys,
                                      const NeighborList& nl,
                                      double bond_cutoff) {
  EMBER_REQUIRE(bond_cutoff <= nl.cutoff() + nl.skin(),
                "bond cutoff exceeds the neighbor list range");
  const double c2 = bond_cutoff * bond_cutoff;
  std::vector<int> coord(sys.nlocal(), 0);
  for (int i = 0; i < sys.nlocal(); ++i) {
    for (const auto& en : nl.neighbors(i)) {
      const Vec3 d = sys.x[en.j] + en.shift - sys.x[i];
      if (d.norm2() < c2) ++coord[i];
    }
  }
  return coord;
}

void Msd::set_reference(const System& sys) {
  ref_.assign(sys.x.begin(), sys.x.begin() + sys.nlocal());
  prev_ = ref_;
  disp_.assign(sys.nlocal(), Vec3{});
}

double Msd::compute(const System& sys) const {
  EMBER_REQUIRE(static_cast<int>(ref_.size()) == sys.nlocal(),
                "MSD reference does not match the system");
  double sum = 0.0;
  for (int i = 0; i < sys.nlocal(); ++i) {
    // Integrate the hop since the last query via minimum image; valid as
    // long as no atom moves more than half a box length between queries.
    disp_[i] += sys.box().minimum_image(prev_[i], sys.x[i]);
    prev_[i] = sys.x[i];
    sum += disp_[i].norm2();
  }
  return sum / std::max(1, sys.nlocal());
}

}  // namespace ember::md
