#pragma once

// Trajectory and checkpoint I/O — forwarding header.
//
// PR 8 moved the format code into the src/io layer (io/formats.hpp for
// XYZ + EMBERCP checkpoints, io/embt1.hpp for the compressed trajectory,
// io/writer.hpp for the sync/async pipeline). The md:: names below are
// the historical API and remain the convenient path-level calls for
// tests and tools; the step loop itself goes through io::Writer.

#include "io/formats.hpp"

namespace ember::md {

using io::checkpoint_bytes;
using io::read_checkpoint;
using io::read_checkpoint_batch;
using io::system_from_checkpoint_bytes;
using io::write_checkpoint;
using io::write_checkpoint_batch;
using io::write_xyz;

}  // namespace ember::md
