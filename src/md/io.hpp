#pragma once

// Trajectory and checkpoint I/O.
//
// The production run of the paper (Fig. 7) writes periodic binary
// checkpoint files whose cost shows up as dips in the performance trace;
// write_checkpoint/read_checkpoint provide the same capability (and the
// production bench measures their cost the same way).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "md/system.hpp"

namespace ember::md {

// Extended-XYZ snapshot (positions only), appending when append=true.
void write_xyz(const System& sys, const std::string& path,
               const std::string& comment = "", bool append = false);

// Binary checkpoint: box, mass, ids, positions, velocities.
void write_checkpoint(const System& sys, const std::string& path);
System read_checkpoint(const std::string& path);

// The same checkpoint record in memory: what a process-backed comm rank
// ships its gathered System through (comm::Context::run_gather). The
// bytes are the file format, so they can also be written verbatim to
// disk and read back with read_checkpoint.
std::vector<std::byte> checkpoint_bytes(const System& sys);
System system_from_checkpoint_bytes(std::span<const std::byte> bytes);

// Multi-replica checkpoint (BatchedSimulation): the same per-system
// record repeated, each replica with its own box. read_checkpoint_batch
// also accepts a single-system checkpoint and returns one replica.
void write_checkpoint_batch(std::span<const System> replicas,
                            const std::string& path);
std::vector<System> read_checkpoint_batch(const std::string& path);

}  // namespace ember::md
