#pragma once

// Trajectory and checkpoint I/O.
//
// The production run of the paper (Fig. 7) writes periodic binary
// checkpoint files whose cost shows up as dips in the performance trace;
// write_checkpoint/read_checkpoint provide the same capability (and the
// production bench measures their cost the same way).

#include <string>

#include "md/system.hpp"

namespace ember::md {

// Extended-XYZ snapshot (positions only), appending when append=true.
void write_xyz(const System& sys, const std::string& path,
               const std::string& comment = "", bool append = false);

// Binary checkpoint: box, mass, ids, positions, velocities.
void write_checkpoint(const System& sys, const std::string& path);
System read_checkpoint(const std::string& path);

}  // namespace ember::md
