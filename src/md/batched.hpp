#pragma once

// Batched multi-replica MD: many independent systems advanced in lockstep
// through a single concatenated atom list and one combined neighbor list.
//
// This is the deck's closing proof-of-concept ("GPUs are too powerful"):
// when one replica cannot saturate a device, concatenate all replicas
// into a single list of atoms, build a combined neighbor list with a
// different simulation cell per system, compute forces all at once
// (atoms from different systems don't see each other), and integrate all
// systems in lockstep. The force kernels need no changes — they already
// consume neighbor entries with explicit shift vectors and never touch
// the box.
//
// Requirements: all replicas share the same atomic mass and potential;
// barostats are not supported (per-replica boxes are fixed).

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "md/integrate.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace ember::md {

class BatchedSimulation {
 public:
  BatchedSimulation(std::vector<System> replicas,
                    std::shared_ptr<PairPotential> pot, double dt_ps,
                    double skin = 0.5, std::uint64_t seed = 12345,
                    ExecutionPolicy policy = {});

  // Threading for the combined force/neighbor/integration sweeps; the
  // default (serial) policy preserves the pre-threading trajectory.
  void set_execution_policy(ExecutionPolicy policy) {
    ctx_ = ComputeContext(policy);
  }
  [[nodiscard]] const ComputeContext& context() const { return ctx_; }

  [[nodiscard]] int num_replicas() const {
    return static_cast<int>(boxes_.size());
  }
  [[nodiscard]] const System& combined() const { return combined_; }
  [[nodiscard]] Integrator& integrator() { return integrator_; }
  [[nodiscard]] long step() const { return step_; }

  // Extract one replica's current state (copies).
  [[nodiscard]] System replica(int r) const;

  // Combined energy/virial over all replicas (valid after setup()/run()).
  [[nodiscard]] const EnergyVirial& energy_virial() const { return ev_; }

  // Kinetic energy / instantaneous temperature of one replica.
  [[nodiscard]] double kinetic_energy(int r) const;
  [[nodiscard]] double temperature(int r) const;

  void setup();
  void run(long nsteps);

 private:
  void compute_forces();
  void wrap_replicas();

  System combined_;
  std::vector<Box> boxes_;
  std::vector<int> offsets_;
  std::shared_ptr<PairPotential> pot_;
  ComputeContext ctx_;
  Integrator integrator_;
  NeighborList nl_;
  Rng rng_;
  EnergyVirial ev_;
  long step_ = 0;
  bool ready_ = false;
};

}  // namespace ember::md
