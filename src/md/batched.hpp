#pragma once

// Batched multi-replica MD: many independent systems advanced in lockstep
// through a single concatenated atom list and one combined neighbor list.
//
// This is the deck's closing proof-of-concept ("GPUs are too powerful"):
// when one replica cannot saturate a device, concatenate all replicas
// into a single list of atoms, build a combined neighbor list with a
// different simulation cell per system, compute forces all at once
// (atoms from different systems don't see each other), and integrate all
// systems in lockstep. The force kernels need no changes — they already
// consume neighbor entries with explicit shift vectors and never touch
// the box.
//
// The timestep itself is the shared md::StepLoop pipeline; this driver
// only overrides the neighbor stage (per-replica wrap + combined-list
// rebuild) and the checkpoint stage (multi-replica file format).
//
// Requirements: all replicas share the same atomic mass and potential;
// barostats are not supported (per-replica boxes are fixed).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "md/step_loop.hpp"

namespace ember::md {

class BatchedSimulation : private StepStages {
 public:
  BatchedSimulation(std::vector<System> replicas,
                    std::shared_ptr<PairPotential> pot, double dt_ps,
                    double skin = 0.5, std::uint64_t seed = 12345,
                    ExecutionPolicy policy = {});

  BatchedSimulation(const BatchedSimulation&) = delete;
  BatchedSimulation& operator=(const BatchedSimulation&) = delete;

  // Threading for the combined force/neighbor/integration sweeps; the
  // default (serial) policy preserves the pre-threading trajectory.
  void set_execution_policy(ExecutionPolicy policy) {
    loop_.set_execution_policy(policy);
  }
  [[nodiscard]] const ComputeContext& context() const {
    return loop_.context();
  }

  [[nodiscard]] int num_replicas() const {
    return static_cast<int>(boxes_.size());
  }
  [[nodiscard]] const System& combined() const { return loop_.system(); }
  [[nodiscard]] Integrator& integrator() { return loop_.integrator(); }
  [[nodiscard]] long step() const { return loop_.step(); }
  [[nodiscard]] const TimerSet& timers() const { return loop_.timers(); }
  void reset_timers() { loop_.reset_timers(); }

  // Extract one replica's current state (copies).
  [[nodiscard]] System replica(int r) const;

  // Combined energy/virial over all replicas (valid after setup()/run()).
  [[nodiscard]] const EnergyVirial& energy_virial() const {
    return loop_.energy_virial();
  }

  // Kinetic energy / instantaneous temperature of one replica.
  [[nodiscard]] double kinetic_energy(int r) const;
  [[nodiscard]] double temperature(int r) const;

  void setup() { loop_.setup(); }

  // Advance every replica nsteps in lockstep; the optional callback
  // fires after each step, matching the other drivers.
  using StepCallback = std::function<void(BatchedSimulation&)>;
  void run(long nsteps, const StepCallback& callback = {});

  // Multi-replica binary checkpoint (read back via read_checkpoint_batch).
  void save_checkpoint(const std::string& path) {
    loop_.save_checkpoint(path);
  }

  // Scheduled output: one frame per replica per dump, multi-replica
  // checkpoints; all routed through the loop's io::Writer.
  void set_io_plan(IoPlan plan) { loop_.set_io_plan(std::move(plan)); }
  void set_writer(std::shared_ptr<io::Writer> writer) {
    loop_.set_writer(std::move(writer));
  }
  [[nodiscard]] io::Writer& writer() { return loop_.writer(); }

 private:
  void build_neighbors(StepLoop& loop, bool initial) override;
  void dump(StepLoop& loop, const IoPlan& plan, bool truncate) override;
  void write_checkpoint(StepLoop& loop, const std::string& path) override;
  void wrap_replicas();
  static System combine(std::vector<System>& replicas,
                        std::vector<Box>& boxes, std::vector<int>& offsets);

  std::vector<Box> boxes_;
  std::vector<int> offsets_;
  StepLoop loop_;
};

}  // namespace ember::md
