#pragma once

// Serial MD driver: the thinnest StepLoop client. All stage hooks keep
// their defaults (no communication, wrap-on-rebuild, ghost-free builds),
// so this class is just the single-box face of the shared pipeline with
// the LAMMPS-style Pair / Neigh / Other timing breakdown the paper's
// Fig. 4 reports.

#include <functional>
#include <memory>
#include <string>

#include "md/step_loop.hpp"

namespace ember::md {

class Simulation : private StepStages {
 public:
  Simulation(System sys, std::shared_ptr<PairPotential> pot, double dt_ps,
             double skin = 0.5, std::uint64_t seed = 12345,
             ExecutionPolicy policy = {});

  // Movable (tests build simulations in factory functions); the stage
  // hooks are rebound to the new object.
  Simulation(Simulation&& other) noexcept;
  Simulation& operator=(Simulation&&) = delete;

  // Node-level threading for the force / neighbor / integration sweeps.
  // The default (serial) policy reproduces the pre-threading trajectory
  // bit for bit; a threaded policy is deterministic at a fixed count.
  void set_execution_policy(ExecutionPolicy policy) {
    loop_.set_execution_policy(policy);
  }
  [[nodiscard]] const ComputeContext& context() const {
    return loop_.context();
  }

  [[nodiscard]] System& system() { return loop_.system(); }
  [[nodiscard]] const System& system() const { return loop_.system(); }
  [[nodiscard]] Integrator& integrator() { return loop_.integrator(); }
  [[nodiscard]] PairPotential& potential() { return loop_.potential(); }
  [[nodiscard]] const NeighborList& neighbor_list() const {
    return loop_.neighbor_list();
  }
  [[nodiscard]] Rng& rng() { return loop_.rng(); }

  // Latest energy/virial (valid after setup() or any step).
  [[nodiscard]] const EnergyVirial& energy_virial() const {
    return loop_.energy_virial();
  }
  [[nodiscard]] double potential_energy() const {
    return loop_.energy_virial().energy;
  }
  [[nodiscard]] double total_energy() const {
    return potential_energy() + system().kinetic_energy();
  }
  [[nodiscard]] double pressure() const {
    return pressure_bar(system(), energy_virial());
  }
  [[nodiscard]] long step() const { return loop_.step(); }
  [[nodiscard]] const TimerSet& timers() const { return loop_.timers(); }
  void reset_timers() { loop_.reset_timers(); }

  // Build the neighbor list and compute initial forces. Called lazily by
  // run() if needed.
  void setup() { loop_.setup(); }

  // Advance nsteps; the optional callback fires after every step.
  using StepCallback = std::function<void(Simulation&)>;
  void run(long nsteps, const StepCallback& callback = {});

  // Save a restartable binary checkpoint (read back via read_checkpoint).
  void save_checkpoint(const std::string& path) {
    loop_.save_checkpoint(path);
  }

  // Scheduled output (trajectory dumps + periodic checkpoints), routed
  // through the loop's io::Writer (sync by default, async via set_writer).
  void set_io_plan(IoPlan plan) { loop_.set_io_plan(std::move(plan)); }
  void set_writer(std::shared_ptr<io::Writer> writer) {
    loop_.set_writer(std::move(writer));
  }
  [[nodiscard]] io::Writer& writer() { return loop_.writer(); }

 private:
  StepLoop loop_;
};

}  // namespace ember::md
