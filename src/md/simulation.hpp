#pragma once

// Serial MD driver: owns the neighbor list, integrator and potential, runs
// timesteps, and keeps a LAMMPS-style timing breakdown (Pair / Neigh /
// Other) of the kind the paper's Fig. 4 reports.

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "md/integrate.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace ember::md {

class Simulation {
 public:
  Simulation(System sys, std::shared_ptr<PairPotential> pot, double dt_ps,
             double skin = 0.5, std::uint64_t seed = 12345,
             ExecutionPolicy policy = {});

  // Node-level threading for the force / neighbor / integration sweeps.
  // The default (serial) policy reproduces the pre-threading trajectory
  // bit for bit; a threaded policy is deterministic at a fixed count.
  void set_execution_policy(ExecutionPolicy policy) {
    ctx_ = ComputeContext(policy);
  }
  [[nodiscard]] const ComputeContext& context() const { return ctx_; }

  [[nodiscard]] System& system() { return sys_; }
  [[nodiscard]] const System& system() const { return sys_; }
  [[nodiscard]] Integrator& integrator() { return integrator_; }
  [[nodiscard]] PairPotential& potential() { return *pot_; }
  [[nodiscard]] const NeighborList& neighbor_list() const { return nl_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  // Latest energy/virial (valid after setup() or any step).
  [[nodiscard]] const EnergyVirial& energy_virial() const { return ev_; }
  [[nodiscard]] double potential_energy() const { return ev_.energy; }
  [[nodiscard]] double total_energy() const {
    return ev_.energy + sys_.kinetic_energy();
  }
  [[nodiscard]] double pressure() const { return pressure_bar(sys_, ev_); }
  [[nodiscard]] long step() const { return step_; }
  [[nodiscard]] const TimerSet& timers() const { return timers_; }
  void reset_timers() { timers_.clear(); }

  // Build the neighbor list and compute initial forces. Called lazily by
  // run() if needed.
  void setup();

  // Advance nsteps; the optional callback fires after every step.
  using StepCallback = std::function<void(Simulation&)>;
  void run(long nsteps, const StepCallback& callback = {});

 private:
  void compute_forces();

  System sys_;
  std::shared_ptr<PairPotential> pot_;
  ComputeContext ctx_;
  Integrator integrator_;
  NeighborList nl_;
  Rng rng_;
  EnergyVirial ev_;
  TimerSet timers_;
  long step_ = 0;
  bool ready_ = false;
};

}  // namespace ember::md
