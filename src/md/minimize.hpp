#pragma once

// FIRE energy minimization (Bitzek et al., PRL 97, 170201).
//
// Used to quench configurations to their inherent structures — the state
// definition underlying ParSplice-style state-to-state dynamics, and a
// general relaxation tool (e.g. relaxing fitted-SNAP structures before
// production runs).

#include <memory>

#include "md/neighbor.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace ember::md {

struct FireParams {
  double dt_initial = 1e-3;    // [ps]
  double dt_max = 1e-2;
  double force_tolerance = 1e-4;  // max |F| component [eV/A]
  long max_steps = 5000;
  double alpha0 = 0.1;
  double f_inc = 1.1;
  double f_dec = 0.5;
  double f_alpha = 0.99;
  int n_min = 5;  // steps of positive power before acceleration
};

struct FireResult {
  bool converged = false;
  long steps = 0;
  double max_force = 0.0;   // final max |F| component
  double energy = 0.0;      // final potential energy
};

// Minimize sys in place; the neighbor list is managed internally.
FireResult fire_minimize(System& sys, PairPotential& pot,
                         const FireParams& params = {}, double skin = 0.4);

}  // namespace ember::md
