#include "io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ember::md {

void write_xyz(const System& sys, const std::string& path,
               const std::string& comment, bool append) {
  std::ofstream os(path, append ? std::ios::app : std::ios::trunc);
  EMBER_REQUIRE(os.good(), "cannot open " + path + " for writing");
  os << sys.nlocal() << '\n';
  os << "Lattice=\"" << sys.box().length(0) << " 0 0 0 "
     << sys.box().length(1) << " 0 0 0 " << sys.box().length(2) << "\" "
     << comment << '\n';
  for (int i = 0; i < sys.nlocal(); ++i) {
    os << "C " << sys.x[i].x << ' ' << sys.x[i].y << ' ' << sys.x[i].z
       << '\n';
  }
}

namespace {
constexpr std::uint64_t kMagic = 0x454d424552435031ULL;       // "EMBERCP1"
constexpr std::uint64_t kMagicBatch = 0x454d424552435032ULL;  // "EMBERCP2"

template <typename T>
void put(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  EMBER_REQUIRE(is.good(), "checkpoint truncated");
  return value;
}

void put_system(std::ostream& os, const System& sys) {
  put(os, sys.box().length(0));
  put(os, sys.box().length(1));
  put(os, sys.box().length(2));
  put(os, sys.mass());
  put(os, static_cast<std::int64_t>(sys.nlocal()));
  for (int i = 0; i < sys.nlocal(); ++i) {
    put(os, static_cast<std::int64_t>(sys.id[i]));
    // Canonicalize: positions are stored wrapped so a restart is
    // independent of how far past a reneighboring the run was.
    put(os, sys.box().wrap(sys.x[i]));
    put(os, sys.v[i]);
  }
}

System get_system(std::istream& is) {
  const double lx = get<double>(is);
  const double ly = get<double>(is);
  const double lz = get<double>(is);
  const double mass = get<double>(is);
  const auto n = get<std::int64_t>(is);
  System sys(Box(lx, ly, lz), mass);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto id = get<std::int64_t>(is);
    const auto x = get<Vec3>(is);
    const auto v = get<Vec3>(is);
    sys.add_atom(x, v);
    sys.id[static_cast<std::size_t>(i)] = id;
  }
  return sys;
}
}  // namespace

void write_checkpoint(const System& sys, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  EMBER_REQUIRE(os.good(), "cannot open " + path + " for writing");
  put(os, kMagic);
  put_system(os, sys);
  EMBER_REQUIRE(os.good(), "checkpoint write failed");
}

System read_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EMBER_REQUIRE(is.good(), "cannot open " + path);
  EMBER_REQUIRE(get<std::uint64_t>(is) == kMagic,
                "not an ember checkpoint: " + path);
  return get_system(is);
}

std::vector<std::byte> checkpoint_bytes(const System& sys) {
  std::ostringstream os(std::ios::binary);
  put(os, kMagic);
  put_system(os, sys);
  const std::string s = os.str();
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

System system_from_checkpoint_bytes(std::span<const std::byte> bytes) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  EMBER_REQUIRE(get<std::uint64_t>(is) == kMagic,
                "not an ember checkpoint payload");
  return get_system(is);
}

void write_checkpoint_batch(std::span<const System> replicas,
                            const std::string& path) {
  EMBER_REQUIRE(!replicas.empty(), "batch checkpoint needs >= 1 replica");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  EMBER_REQUIRE(os.good(), "cannot open " + path + " for writing");
  put(os, kMagicBatch);
  put(os, static_cast<std::int64_t>(replicas.size()));
  for (const System& sys : replicas) put_system(os, sys);
  EMBER_REQUIRE(os.good(), "checkpoint write failed");
}

std::vector<System> read_checkpoint_batch(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EMBER_REQUIRE(is.good(), "cannot open " + path);
  const auto magic = get<std::uint64_t>(is);
  std::vector<System> replicas;
  if (magic == kMagic) {
    replicas.push_back(get_system(is));
    return replicas;
  }
  EMBER_REQUIRE(magic == kMagicBatch, "not an ember checkpoint: " + path);
  const auto count = get<std::int64_t>(is);
  EMBER_REQUIRE(count > 0, "batch checkpoint with no replicas: " + path);
  replicas.reserve(static_cast<std::size_t>(count));
  for (std::int64_t r = 0; r < count; ++r) replicas.push_back(get_system(is));
  return replicas;
}

}  // namespace ember::md
