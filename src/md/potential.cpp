#include "potential.hpp"

#include "common/units.hpp"

namespace ember::md {

double pressure_bar(const System& sys, const EnergyVirial& ev) {
  const double volume = sys.box().volume();
  const double two_ke = 2.0 * sys.kinetic_energy();
  return (two_ke + ev.virial) / (3.0 * volume) * units::EVA3_TO_BAR;
}

}  // namespace ember::md
