#pragma once

// Cell-list construction of full neighbor lists with periodic shifts.
//
// The list stores, for every local atom i, the indices of all atoms j with
// |r_j + shift - r_i| < cutoff (j may equal another local atom or, in
// parallel runs, a ghost). Shift vectors make minimum-image arithmetic
// unnecessary in force kernels: rij = x[j] + shift(ij) - x[i].
//
// A skin distance is added so the list stays valid while atoms move less
// than skin/2; needs_rebuild() tracks the displacement criterion.
//
// Builds accept an optional ComputeContext: cell binning and the per-atom
// neighbor searches are then distributed over the context's thread pool
// (contiguous atom blocks into per-thread row buffers, stitched into the
// CSR arrays by a serial prefix sum + parallel copy). The emitted list is
// identical to the serial one entry for entry.

#include <functional>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "md/system.hpp"

namespace ember::md {

class ComputeContext;

class NeighborList {
 public:
  struct Entry {
    int j;       // neighbor atom index (local or ghost)
    Vec3 shift;  // periodic image shift to add to x[j]
  };

  NeighborList() = default;
  NeighborList(double cutoff, double skin) : cutoff_(cutoff), skin_(skin) {}

  [[nodiscard]] double cutoff() const { return cutoff_; }
  [[nodiscard]] double skin() const { return skin_; }

  // Rebuild the full list for all local atoms of sys. When use_ghosts is
  // true, atoms beyond nlocal are treated as pre-shifted ghost copies and
  // no periodic wrapping is applied (parallel path); otherwise neighbors
  // are found through periodic images of the local atoms (serial path).
  void build(const System& sys, bool use_ghosts = false,
             const ComputeContext* ctx = nullptr);

  // Batched build over several independent replicas laid out back to back
  // in one System: replica r occupies atoms [offsets[r], offsets[r+1])
  // and lives in its own periodic box. Atoms of different replicas never
  // appear as neighbors of each other (the deck's multi-replica lockstep
  // scheme: one combined list, one force pass, zero cross-talk).
  void build_batched(const System& combined, std::span<const Box> boxes,
                     std::span<const int> offsets,
                     const ComputeContext* ctx = nullptr);

  [[nodiscard]] bool needs_rebuild(const System& sys) const;

  // Neighbors of local atom i.
  [[nodiscard]] std::span<const Entry> neighbors(int i) const {
    const int begin = first_[i];
    return {entries_.data() + begin,
            static_cast<std::size_t>(first_[i + 1] - begin)};
  }

  [[nodiscard]] int num_atoms() const {
    return static_cast<int>(first_.size()) - 1;
  }
  [[nodiscard]] std::size_t total_pairs() const { return entries_.size(); }
  [[nodiscard]] double average_neighbors() const {
    return num_atoms() > 0 ? static_cast<double>(entries_.size()) / num_atoms()
                           : 0.0;
  }

 private:
  // Test-only backdoor: tests/check corrupts entries through this to
  // prove the checked build detects asymmetric/out-of-range lists.
  friend struct NeighborListTestAccess;

  // Per-atom neighbor search: appends the row of atom i to `out`.
  using RowSearch = std::function<void(int i, std::vector<Entry>&)>;

  void build_cells(const System& sys, const ComputeContext* ctx);
  // Periodic build over the index range [begin, end) using `box`;
  // appends CSR rows for those atoms (callers proceed in index order).
  void build_periodic_range(const System& sys, const Box& box, int begin,
                            int end, const ComputeContext* ctx);
  void build_brute_force_range(const System& sys, const Box& box, int begin,
                               int end, const ComputeContext* ctx);
  void build_cells_range(const System& sys, const Box& box, int begin,
                         int end, const ComputeContext* ctx);
  // Run `search` for every atom of [begin, end) and stitch the rows into
  // first_/entries_ — serially, or over the context's pool.
  void emit_rows(int begin, int end, const ComputeContext* ctx,
                 const RowSearch& search);

  double cutoff_ = 0.0;
  double skin_ = 0.5;
  std::vector<int> first_;       // CSR offsets, size nlocal+1
  std::vector<Entry> entries_;
  std::vector<Vec3> x_at_build_;  // positions when the list was built
  Vec3 box_at_build_{};           // box lengths when the list was built
};

}  // namespace ember::md
