#include "neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "md/compute_context.hpp"
#include "obs/metrics.hpp"

namespace ember::md {

namespace {
// Threaded builds only engage for a non-serial context.
bool threaded(const ComputeContext* ctx) { return ctx != nullptr && !ctx->serial(); }
}  // namespace

void NeighborList::build(const System& sys, bool use_ghosts,
                         const ComputeContext* ctx) {
  EMBER_REQUIRE(cutoff_ > 0.0, "neighbor list cutoff not set");
  first_.assign(sys.nlocal() + 1, 0);
  entries_.clear();

  if (use_ghosts) {
    // Parallel path: ghosts are explicit pre-shifted copies; bin every atom
    // into cells over the joint bounding box, no periodic wrapping.
    build_cells(sys, ctx);
  } else {
    build_periodic_range(sys, sys.box(), 0, sys.nlocal(), ctx);
  }

  x_at_build_.assign(sys.x.begin(), sys.x.begin() + sys.nlocal());
  box_at_build_ = sys.box().lengths();

  static obs::Counter& builds = obs::Registry::global().counter("neigh.builds");
  static obs::Gauge& pairs = obs::Registry::global().gauge("neigh.pairs");
  builds.inc();
  pairs.set(static_cast<double>(entries_.size()));
}

void NeighborList::build_batched(const System& combined,
                                 std::span<const Box> boxes,
                                 std::span<const int> offsets,
                                 const ComputeContext* ctx) {
  EMBER_REQUIRE(cutoff_ > 0.0, "neighbor list cutoff not set");
  EMBER_REQUIRE(offsets.size() == boxes.size() + 1 &&
                    offsets.front() == 0 &&
                    offsets.back() == combined.nlocal(),
                "batched offsets must tile the combined system");
  first_.assign(combined.nlocal() + 1, 0);
  entries_.clear();
  for (std::size_t r = 0; r < boxes.size(); ++r) {
    build_periodic_range(combined, boxes[r], offsets[r], offsets[r + 1], ctx);
  }
  x_at_build_.assign(combined.x.begin(),
                     combined.x.begin() + combined.nlocal());
  box_at_build_ = combined.box().lengths();
}

void NeighborList::build_periodic_range(const System& sys, const Box& box,
                                        int begin, int end,
                                        const ComputeContext* ctx) {
  const double rlist = cutoff_ + skin_;
  const bool cells_ok = box.length(0) / rlist >= 3.0 &&
                        box.length(1) / rlist >= 3.0 &&
                        box.length(2) / rlist >= 3.0;
  if (cells_ok) {
    build_cells_range(sys, box, begin, end, ctx);
  } else {
    build_brute_force_range(sys, box, begin, end, ctx);
  }
}

bool NeighborList::needs_rebuild(const System& sys) const {
  if (static_cast<int>(x_at_build_.size()) != sys.nlocal()) return true;
  // A barostat changes the box: every stored shift is invalid.
  const Vec3 db = sys.box().lengths() - box_at_build_;
  if (db.norm2() != 0.0) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  for (int i = 0; i < sys.nlocal(); ++i) {
    // Use minimum image: positions may have been rewrapped since build.
    const Vec3 d = sys.box().minimum_image(x_at_build_[i], sys.x[i]);
    if (d.norm2() > limit2) return true;
  }
  return false;
}

void NeighborList::emit_rows(int begin, int end, const ComputeContext* ctx,
                             const RowSearch& search) {
  if (!threaded(ctx)) {
    // Serial: append rows directly in atom order, exactly like the
    // pre-threading builders did.
    std::vector<Entry> row;
    for (int i = begin; i < end; ++i) {
      row.clear();
      search(i, row);
      entries_.insert(entries_.end(), row.begin(), row.end());
      first_[i + 1] = static_cast<int>(entries_.size());
    }
    return;
  }

  // Threaded: each worker searches one contiguous atom block into a
  // private buffer (parallel_blocks partitions deterministically from
  // (range, nthreads) alone), then a serial prefix sum sizes the CSR
  // arrays and the same partition copies the buffers into place. The
  // resulting list is identical to the serial one entry for entry.
  const int nth = ctx->nthreads();
  std::vector<std::vector<Entry>> bufs(nth);
  std::vector<int> rowlen(end - begin, 0);
  ctx->pool().parallel_blocks(begin, end, [&](int tid, int b, int e) {
    auto& buf = bufs[tid];
    buf.clear();
    std::vector<Entry> row;
    for (int i = b; i < e; ++i) {
      row.clear();
      search(i, row);
      rowlen[i - begin] = static_cast<int>(row.size());
      buf.insert(buf.end(), row.begin(), row.end());
    }
  });
  for (int i = begin; i < end; ++i) {
    first_[i + 1] = first_[i] + rowlen[i - begin];
  }
  entries_.resize(static_cast<std::size_t>(first_[end]));
  ctx->pool().parallel_blocks(begin, end, [&](int tid, int b, int e) {
    if (b >= e) return;
    std::copy(bufs[tid].begin(), bufs[tid].end(),
              entries_.begin() + first_[b]);
  });
}

void NeighborList::build_brute_force_range(const System& sys, const Box& box,
                                           int begin, int end,
                                           const ComputeContext* ctx) {
  const double rlist = cutoff_ + skin_;
  const double r2 = rlist * rlist;
  // Number of periodic images to search per dimension.
  int span[3];
  for (int d = 0; d < 3; ++d) {
    span[d] = box.periodic(d)
                  ? static_cast<int>(std::ceil(rlist / box.length(d)))
                  : 0;
  }
  emit_rows(begin, end, ctx, [&](int i, std::vector<Entry>& out) {
    for (int j = begin; j < end; ++j) {
      for (int sx = -span[0]; sx <= span[0]; ++sx) {
        for (int sy = -span[1]; sy <= span[1]; ++sy) {
          for (int sz = -span[2]; sz <= span[2]; ++sz) {
            if (j == i && sx == 0 && sy == 0 && sz == 0) continue;
            const Vec3 shift{sx * box.length(0), sy * box.length(1),
                             sz * box.length(2)};
            const Vec3 d = sys.x[j] + shift - sys.x[i];
            if (d.norm2() < r2) {
              out.push_back({j, shift});
            }
          }
        }
      }
    }
  });
}

void NeighborList::build_cells_range(const System& sys, const Box& box,
                                     int begin, int end,
                                     const ComputeContext* ctx) {
  const double rlist = cutoff_ + skin_;
  const double r2 = rlist * rlist;
  const int n = end - begin;

  int nc[3];
  for (int d = 0; d < 3; ++d) {
    nc[d] = std::max(1, static_cast<int>(std::floor(box.length(d) / rlist)));
  }
  const auto cell_of = [&](const Vec3& r, int out[3]) {
    for (int d = 0; d < 3; ++d) {
      const int c = static_cast<int>(r[d] / box.length(d) * nc[d]);
      out[d] = std::clamp(c, 0, nc[d] - 1);
    }
  };

  // Bucket atoms of the range into cells (counting sort). Assigning cell
  // indices is the FP-heavy part of binning and parallelizes over atoms;
  // the histogram + scatter stay serial (write conflicts).
  const int ncells = nc[0] * nc[1] * nc[2];
  std::vector<int> count(ncells + 1, 0);
  std::vector<int> cell_idx(n);
  const auto assign_cells = [&](int /*tid*/, int b, int e) {
    for (int i = b; i < e; ++i) {
      int c[3];
      cell_of(sys.x[begin + i], c);
      cell_idx[i] = (c[2] * nc[1] + c[1]) * nc[0] + c[0];
    }
  };
  if (threaded(ctx)) {
    ctx->pool().parallel_for(0, n, 4096, assign_cells);
  } else {
    assign_cells(0, 0, n);
  }
  for (int i = 0; i < n; ++i) ++count[cell_idx[i] + 1];
  for (int c = 0; c < ncells; ++c) count[c + 1] += count[c];
  std::vector<int> order(n);
  {
    std::vector<int> cursor(count.begin(), count.end() - 1);
    for (int i = 0; i < n; ++i) order[cursor[cell_idx[i]]++] = begin + i;
  }

  emit_rows(begin, end, ctx, [&](int i, std::vector<Entry>& out) {
    int ci[3];
    cell_of(sys.x[i], ci);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          int cj[3] = {ci[0] + dx, ci[1] + dy, ci[2] + dz};
          Vec3 shift{};
          bool skip = false;
          for (int d = 0; d < 3; ++d) {
            int wrapped = cj[d];
            if (wrapped < 0 || wrapped >= nc[d]) {
              if (!box.periodic(d)) {
                skip = true;
                break;
              }
              if (wrapped < 0) {
                wrapped += nc[d];
                shift[d] = -box.length(d);
              } else {
                wrapped -= nc[d];
                shift[d] = box.length(d);
              }
            }
            cj[d] = wrapped;
          }
          if (skip) continue;
          const int cell = (cj[2] * nc[1] + cj[1]) * nc[0] + cj[0];
          for (int s = count[cell]; s < count[cell + 1]; ++s) {
            const int j = order[s];
            if (j == i && shift.norm2() == 0.0) continue;
            const Vec3 d = sys.x[j] + shift - sys.x[i];
            if (d.norm2() < r2) out.push_back({j, shift});
          }
        }
      }
    }
  });
}

void NeighborList::build_cells(const System& sys, const ComputeContext* ctx) {
  const double rlist = cutoff_ + skin_;
  const double r2 = rlist * rlist;
  const int ntotal = sys.ntotal();

  // Grid over the bounding box of all atoms (locals + pre-shifted
  // ghosts), open stencil, no wrapping.
  Vec3 lo = sys.x[0];
  Vec3 hi = sys.x[0];
  for (int i = 1; i < ntotal; ++i) {
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], sys.x[i][d]);
      hi[d] = std::max(hi[d], sys.x[i][d]);
    }
  }
  const Vec3 origin = lo - Vec3{1e-9, 1e-9, 1e-9};
  const Vec3 extent = hi - lo + Vec3{2e-9, 2e-9, 2e-9};

  int nc[3];
  for (int d = 0; d < 3; ++d) {
    nc[d] = std::max(1, static_cast<int>(std::floor(extent[d] / rlist)));
  }
  const auto cell_of = [&](const Vec3& r, int out[3]) {
    for (int d = 0; d < 3; ++d) {
      const int c = static_cast<int>((r[d] - origin[d]) / extent[d] * nc[d]);
      out[d] = std::clamp(c, 0, nc[d] - 1);
    }
  };

  const int ncells = nc[0] * nc[1] * nc[2];
  std::vector<int> count(ncells + 1, 0);
  std::vector<int> cell_idx(ntotal);
  const auto assign_cells = [&](int /*tid*/, int b, int e) {
    for (int i = b; i < e; ++i) {
      int c[3];
      cell_of(sys.x[i], c);
      cell_idx[i] = (c[2] * nc[1] + c[1]) * nc[0] + c[0];
    }
  };
  if (threaded(ctx)) {
    ctx->pool().parallel_for(0, ntotal, 4096, assign_cells);
  } else {
    assign_cells(0, 0, ntotal);
  }
  for (int i = 0; i < ntotal; ++i) ++count[cell_idx[i] + 1];
  for (int c = 0; c < ncells; ++c) count[c + 1] += count[c];
  std::vector<int> order(ntotal);
  {
    std::vector<int> cursor(count.begin(), count.end() - 1);
    for (int i = 0; i < ntotal; ++i) order[cursor[cell_idx[i]]++] = i;
  }

  emit_rows(0, sys.nlocal(), ctx, [&](int i, std::vector<Entry>& out) {
    int ci[3];
    cell_of(sys.x[i], ci);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int cx = ci[0] + dx;
          const int cy = ci[1] + dy;
          const int cz = ci[2] + dz;
          if (cx < 0 || cx >= nc[0] || cy < 0 || cy >= nc[1] || cz < 0 ||
              cz >= nc[2]) {
            continue;
          }
          const int cell = (cz * nc[1] + cy) * nc[0] + cx;
          for (int s = count[cell]; s < count[cell + 1]; ++s) {
            const int j = order[s];
            if (j == i) continue;
            const Vec3 d = sys.x[j] - sys.x[i];
            if (d.norm2() < r2) out.push_back({j, Vec3{}});
          }
        }
      }
    }
  });
}

}  // namespace ember::md
