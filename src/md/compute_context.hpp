#pragma once

// Execution context handed to every force kernel.
//
// The ComputeContext is the node-level half of the paper's execution
// hierarchy: where the Gordon Bell runs give each MPI rank a Kokkos team
// (GPU thread block), ember gives each driver object a ComputeContext
// that carries
//
//   * the persistent worker pool (ExecutionPolicy{nthreads}),
//   * an optional atom sub-range, so callers can restrict a force pass
//     to a block of atoms (pipelining / overlap experiments),
//   * one Scratch slot per worker: a private force accumulator for
//     scatter-style kernels (SNAP, Tersoff write onto neighbors),
//     partial energy/virial/FLOP sums, and a type-erased per-thread
//     cache where potentials park expensive state (SNAP's per-thread
//     Bispectrum with its U/Y/dU buffers — allocated once per thread,
//     not once per atom).
//
// Determinism contract: prepare_* / merge_forces / reduce_ev only use
// statically-partitioned pool sweeps and fixed-order reductions, so a
// run at a fixed thread count is bitwise reproducible.
//
// A default-constructed context is serial and allocation-free on the
// hot path; potentials must keep their serial branch identical to the
// pre-threading code.

#include <algorithm>
#include <any>
#include <memory>
#include <utility>
#include <vector>

#include "common/vec3.hpp"
#include "parallel/thread_pool.hpp"

namespace ember::md {

class System;

class ComputeContext {
 public:
  struct Scratch {
    std::vector<Vec3> f;   // private force array (scatter kernels, tid > 0)
    double energy = 0.0;   // partial sums reduced by reduce_ev()
    double virial = 0.0;
    double flops = 0.0;
    std::any cache;        // potential-specific per-thread state
  };

  struct Reduced {
    double energy = 0.0;
    double virial = 0.0;
    double flops = 0.0;
  };

  explicit ComputeContext(ExecutionPolicy policy = {})
      : policy_{std::max(1, policy.nthreads)},
        scratch_(static_cast<std::size_t>(policy_.nthreads)) {}

  [[nodiscard]] int nthreads() const { return policy_.nthreads; }
  [[nodiscard]] bool serial() const { return policy_.serial(); }
  [[nodiscard]] const ExecutionPolicy& policy() const { return policy_; }

  // The worker pool (created on first use; a 1-thread pool never spawns).
  [[nodiscard]] parallel::ThreadPool& pool() const {
    if (!pool_) {
      pool_ = std::make_unique<parallel::ThreadPool>(policy_.nthreads);
    }
    return *pool_;
  }

  // ---- atom sub-range ----
  // Force kernels honor [begin, end) instead of [0, nlocal) when set.
  void set_atom_range(int begin, int end) {
    range_begin_ = begin;
    range_end_ = end;
  }
  void clear_atom_range() { range_begin_ = range_end_ = -1; }
  [[nodiscard]] std::pair<int, int> atom_range(int nlocal) const {
    if (range_begin_ < 0) return {0, nlocal};
    return {range_begin_, std::min(range_end_, nlocal)};
  }

  // ---- per-thread scratch ----
  [[nodiscard]] Scratch& scratch(int tid) const { return scratch_[tid]; }

  // Typed accessor for the per-thread cache slot; `make` runs on first
  // use (or after another potential reused the slot with another type).
  template <typename T, typename Factory>
  [[nodiscard]] T& cache(int tid, Factory&& make) const {
    Scratch& s = scratch_[tid];
    T* p = std::any_cast<T>(&s.cache);
    if (p == nullptr) {
      s.cache = make();
      p = std::any_cast<T>(&s.cache);
    }
    return *p;
  }

  // Reset the partial energy/virial/FLOP sums of every slot.
  void zero_partials() const {
    for (auto& s : scratch_) s.energy = s.virial = s.flops = 0.0;
  }

  // Zero (and size) the private force arrays of workers 1..T-1; worker 0
  // always writes the System force array directly. Each worker clears its
  // own slot so the O(T * ntotal) memset parallelizes.
  void prepare_scatter(int ntotal) const;

  // sys.f[i] += sum over worker slots 1..T-1 in ascending worker order;
  // parallel over atom blocks, deterministic.
  void merge_forces(System& sys) const;

  // Fixed-order tree reduction of the per-thread partial sums.
  [[nodiscard]] Reduced reduce_ev() const;

 private:
  ExecutionPolicy policy_;
  mutable std::unique_ptr<parallel::ThreadPool> pool_;
  mutable std::vector<Scratch> scratch_;
  int range_begin_ = -1;
  int range_end_ = -1;
};

}  // namespace ember::md
