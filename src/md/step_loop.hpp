#pragma once

// The one timestep pipeline. StepLoop owns the canonical LAMMPS-style
// step sequence the paper's production capability rests on:
//
//   initial_integrate                                      [Other]
//   reneighbor decision            stages.check_rebuild
//   if rebuild:
//     wrap / migrate / halo        stages.exchange          [Comm]
//     neighbor rebuild             stages.build_neighbors   [Neigh]
//   else:
//     position forwarding          stages.forward_positions [Comm]
//   force compute                  potential->compute       [Pair]
//   force reverse-comm             stages.reverse_forces    [Comm]
//   final_integrate                                         [Other]
//   step callback
//
// Every driver (Simulation, BatchedSimulation, ParallelSimulation)
// implements StepStages and delegates here, so the sequence, the Fig. 4
// timer taxonomy (Pair / Neigh / Comm / Other with per-thread
// attribution), and the checkpoint interface exist in exactly one place.
// The stage defaults ARE the serial single-box driver; distributed and
// batched drivers override only what differs.

#include <functional>
#include <memory>
#include <string>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "md/integrate.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace ember::md {

// The canonical timer taxonomy is the closed TimerCategory enum
// (common/timer.hpp). fig4_label is the single display-name mapping:
// the paper's Fig. 4 presentation names ("SNAP", "MPI Comm") are applied
// here by the bench layer, never stored.
[[nodiscard]] constexpr const char* fig4_label(TimerCategory category) {
  switch (category) {
    case TimerCategory::Pair: return "SNAP";
    case TimerCategory::Comm: return "MPI Comm";
    case TimerCategory::Neigh: return "Neigh";
    case TimerCategory::Other: return "Other";
  }
  return "?";
}

class StepLoop;

// Stage hooks a driver fills in. Defaults implement the serial
// single-box pipeline: no communication, wrap-on-rebuild, ghost-free
// list builds, single-System checkpoints.
class StepStages {
 public:
  virtual ~StepStages() = default;

  // Does this driver have real communication legs? When false the Comm
  // stages are still invoked (they default to no-ops) but never open a
  // Comm timer bucket, so serial breakdowns stay Pair/Neigh/Other only.
  [[nodiscard]] virtual bool communicates() const { return false; }

  // True when the neighbor list must be rebuilt this step. Distributed
  // drivers reduce the local criterion across ranks and account the
  // reduction as Comm themselves.
  [[nodiscard]] virtual bool check_rebuild(StepLoop& loop);

  // Rebuild-step housekeeping before the list build: atom migration and
  // halo reconstruction. Timed as Comm. Also runs once at setup
  // (initial = true).
  virtual void exchange(StepLoop& loop, bool initial);

  // Neighbor-list rebuild, including any coordinate re-wrap that must
  // stay consistent with the list's shift vectors. Timed as Neigh. The
  // default wraps local positions (except at setup, where the caller's
  // coordinates are taken as-is) and builds without ghosts.
  virtual void build_neighbors(StepLoop& loop, bool initial);

  // Forward owner positions into ghost copies on non-rebuild steps. Comm.
  virtual void forward_positions(StepLoop& loop);

  // Push ghost forces back onto their owners after the force pass. Comm.
  virtual void reverse_forces(StepLoop& loop);

  // Serialize the driver's full restartable state. Default: single-System
  // binary checkpoint (md::write_checkpoint); the parallel driver gathers
  // on root, the batched driver writes the multi-replica format.
  virtual void write_checkpoint(StepLoop& loop, const std::string& path);

  // --- checked-build invariants (DESIGN.md §11) -------------------------
  // Called by StepLoop at stage boundaries only under EMBER_CHECKED=ON;
  // the hooks themselves are always compiled so overrides stay honest in
  // every configuration. Violations throw check::InvariantViolation.

  // After the exchange stage: no stray ghosts for single-owner drivers
  // (default); the parallel driver checks global atom conservation and
  // per-leg ghost bookkeeping instead.
  virtual void verify_exchange(StepLoop& loop, bool initial);

  // After a neighbor rebuild: index bounds, self-image shifts and
  // local-local symmetry of the fresh list.
  virtual void verify_neighbors(StepLoop& loop);

  // Total (potential + kinetic) energy fed to the energy-drift tripwire.
  // Default: this driver's local sums; the parallel driver reduces across
  // ranks so every rank trips on the same global value.
  [[nodiscard]] virtual double total_energy(StepLoop& loop);
};

class StepLoop {
 public:
  StepLoop(System sys, std::shared_ptr<PairPotential> pot, double dt_ps,
           double skin, Rng rng, ExecutionPolicy policy, StepStages& stages);

  StepLoop(StepLoop&&) noexcept = default;
  StepLoop& operator=(StepLoop&&) noexcept = default;

  // A move relocates the owning driver, so its StepStages base moves with
  // it; the driver's move constructor rebinds the hooks to its new self.
  void set_stages(StepStages& stages) { stages_ = &stages; }

  void set_execution_policy(ExecutionPolicy policy) {
    ctx_ = ComputeContext(policy);
  }
  [[nodiscard]] const ComputeContext& context() const { return ctx_; }

  [[nodiscard]] System& system() { return sys_; }
  [[nodiscard]] const System& system() const { return sys_; }
  [[nodiscard]] Integrator& integrator() { return integrator_; }
  [[nodiscard]] PairPotential& potential() { return *pot_; }
  [[nodiscard]] NeighborList& neighbor_list() { return nl_; }
  [[nodiscard]] const NeighborList& neighbor_list() const { return nl_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const EnergyVirial& energy_virial() const { return ev_; }
  [[nodiscard]] long step() const { return step_; }
  [[nodiscard]] TimerSet& timers() { return timers_; }
  [[nodiscard]] const TimerSet& timers() const { return timers_; }
  void reset_timers() { timers_.clear(); }

  // Exchange + initial list build + initial forces. Called lazily by
  // run() if needed.
  void setup();

  // Advance nsteps through the pipeline; after_step fires after every
  // completed step (drivers wrap it into their typed StepCallback).
  void run(long nsteps, const std::function<void()>& after_step = {});

  // Checkpoint through the driver's stage hook (serial: plain file;
  // parallel: gather-on-root collective; batched: multi-replica file).
  void save_checkpoint(const std::string& path) {
    stages_->write_checkpoint(*this, path);
  }

 private:
  void compute_forces();
  void rebuild_neighbors(bool initial);
  void add_thread_times(TimerCategory category);
  // Checked build only: arm the tripwire on the first completed step and
  // compare every later step's total energy against it.
  void observe_drift();
  template <typename Fn>
  void timed_comm(Fn&& fn) {
    if (stages_->communicates()) {
      ScopedTimer t(timers_, TimerCategory::Comm);
      fn();
    } else {
      fn();
    }
  }

  StepStages* stages_;
  System sys_;
  std::shared_ptr<PairPotential> pot_;
  ComputeContext ctx_;
  Integrator integrator_;
  NeighborList nl_;
  Rng rng_;
  EnergyVirial ev_;
  TimerSet timers_;
  long step_ = 0;
  bool ready_ = false;
  // Energy-drift tripwire (checked builds; armed when the
  // EMBER_CHECK_DRIFT_TOL environment variable sets a tolerance).
  check::DriftTripwire tripwire_;
};

}  // namespace ember::md
