#pragma once

// The one timestep pipeline. StepLoop owns the canonical LAMMPS-style
// step sequence the paper's production capability rests on:
//
//   initial_integrate                                      [Other]
//   reneighbor decision            stages.check_rebuild
//   if rebuild:
//     wrap / migrate / halo        stages.exchange          [Comm]
//     neighbor rebuild             stages.build_neighbors   [Neigh]
//   else:
//     position forwarding          stages.forward_positions [Comm]
//   force compute                  potential->compute       [Pair]
//   force reverse-comm             stages.reverse_forces    [Comm]
//   final_integrate                                         [Other]
//   scheduled output (IoPlan)      stages.dump / write_checkpoint [Dump]
//   step callback
//
// Every driver (Simulation, BatchedSimulation, ParallelSimulation)
// implements StepStages and delegates here, so the sequence, the Fig. 4
// timer taxonomy (Pair / Neigh / Comm / Other with per-thread
// attribution), and the checkpoint interface exist in exactly one place.
// The stage defaults ARE the serial single-box driver; distributed and
// batched drivers override only what differs.

#include <functional>
#include <memory>
#include <string>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "io/writer.hpp"
#include "md/integrate.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace ember::md {

// The canonical timer taxonomy is the closed TimerCategory enum
// (common/timer.hpp). fig4_label is the single display-name mapping:
// the paper's Fig. 4 presentation names ("SNAP", "MPI Comm") are applied
// here by the bench layer, never stored.
[[nodiscard]] constexpr const char* fig4_label(TimerCategory category) {
  switch (category) {
    case TimerCategory::Pair: return "SNAP";
    case TimerCategory::Comm: return "MPI Comm";
    case TimerCategory::Neigh: return "Neigh";
    case TimerCategory::Other: return "Other";
    case TimerCategory::Dump: return "Output";
  }
  return "?";
}

class StepLoop;

// Scheduled output: what the loop's dump/checkpoint stages do each step.
// Every count is matched against the loop's cumulative step counter
// (`step % every == 0`), so plans survive across successive run calls.
struct IoPlan {
  long dump_every = 0;  // 0 = no trajectory output
  std::string dump_path;
  io::Format dump_format = io::Format::Xyz;
  // true: the first dump of this plan appends to an existing trajectory
  // (a continued run); false: it starts the file over.
  bool append = false;
  long checkpoint_every = 0;  // 0 = no scheduled checkpoints
  std::string checkpoint_path;

  [[nodiscard]] bool dumps() const { return dump_every > 0; }
  [[nodiscard]] bool checkpoints() const { return checkpoint_every > 0; }
};

// Stage hooks a driver fills in. Defaults implement the serial
// single-box pipeline: no communication, wrap-on-rebuild, ghost-free
// list builds, single-System checkpoints.
class StepStages {
 public:
  virtual ~StepStages() = default;

  // Does this driver have real communication legs? When false the Comm
  // stages are still invoked (they default to no-ops) but never open a
  // Comm timer bucket, so serial breakdowns stay Pair/Neigh/Other only.
  [[nodiscard]] virtual bool communicates() const { return false; }

  // True when the neighbor list must be rebuilt this step. Distributed
  // drivers reduce the local criterion across ranks and account the
  // reduction as Comm themselves.
  [[nodiscard]] virtual bool check_rebuild(StepLoop& loop);

  // Rebuild-step housekeeping before the list build: atom migration and
  // halo reconstruction. Timed as Comm. Also runs once at setup
  // (initial = true).
  virtual void exchange(StepLoop& loop, bool initial);

  // Neighbor-list rebuild, including any coordinate re-wrap that must
  // stay consistent with the list's shift vectors. Timed as Neigh. The
  // default wraps local positions (except at setup, where the caller's
  // coordinates are taken as-is) and builds without ghosts.
  virtual void build_neighbors(StepLoop& loop, bool initial);

  // Forward owner positions into ghost copies on non-rebuild steps. Comm.
  virtual void forward_positions(StepLoop& loop);

  // Push ghost forces back onto their owners after the force pass. Comm.
  virtual void reverse_forces(StepLoop& loop);

  // Emit one trajectory frame through the loop's io::Writer. Timed as
  // Dump. Default: snapshot the local System into a single-frame
  // Trajectory request ("step=N" comment); the parallel driver gathers on
  // root first, the batched driver submits one frame per replica.
  // truncate is true only for the first dump of a fresh (non-append) plan.
  virtual void dump(StepLoop& loop, const IoPlan& plan, bool truncate);

  // Serialize the driver's full restartable state through the loop's
  // io::Writer (checkpoint requests are tmp+renamed, so the file on disk
  // is always complete). Default: single-System EMBERCP1 request; the
  // parallel driver gathers on root, the batched driver writes the
  // multi-replica format. Does NOT drain — StepLoop::save_checkpoint adds
  // the barrier for explicit restart points.
  virtual void write_checkpoint(StepLoop& loop, const std::string& path);

  // --- checked-build invariants (DESIGN.md §11) -------------------------
  // Called by StepLoop at stage boundaries only under EMBER_CHECKED=ON;
  // the hooks themselves are always compiled so overrides stay honest in
  // every configuration. Violations throw check::InvariantViolation.

  // After the exchange stage: no stray ghosts for single-owner drivers
  // (default); the parallel driver checks global atom conservation and
  // per-leg ghost bookkeeping instead.
  virtual void verify_exchange(StepLoop& loop, bool initial);

  // After a neighbor rebuild: index bounds, self-image shifts and
  // local-local symmetry of the fresh list.
  virtual void verify_neighbors(StepLoop& loop);

  // Total (potential + kinetic) energy fed to the energy-drift tripwire.
  // Default: this driver's local sums; the parallel driver reduces across
  // ranks so every rank trips on the same global value.
  [[nodiscard]] virtual double total_energy(StepLoop& loop);
};

class StepLoop {
 public:
  StepLoop(System sys, std::shared_ptr<PairPotential> pot, double dt_ps,
           double skin, Rng rng, ExecutionPolicy policy, StepStages& stages);

  StepLoop(StepLoop&&) noexcept = default;
  StepLoop& operator=(StepLoop&&) noexcept = default;

  // A move relocates the owning driver, so its StepStages base moves with
  // it; the driver's move constructor rebinds the hooks to its new self.
  void set_stages(StepStages& stages) { stages_ = &stages; }

  void set_execution_policy(ExecutionPolicy policy) {
    ctx_ = ComputeContext(policy);
  }
  [[nodiscard]] const ComputeContext& context() const { return ctx_; }

  [[nodiscard]] System& system() { return sys_; }
  [[nodiscard]] const System& system() const { return sys_; }
  [[nodiscard]] Integrator& integrator() { return integrator_; }
  [[nodiscard]] PairPotential& potential() { return *pot_; }
  [[nodiscard]] NeighborList& neighbor_list() { return nl_; }
  [[nodiscard]] const NeighborList& neighbor_list() const { return nl_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const EnergyVirial& energy_virial() const { return ev_; }
  [[nodiscard]] long step() const { return step_; }
  [[nodiscard]] TimerSet& timers() { return timers_; }
  [[nodiscard]] const TimerSet& timers() const { return timers_; }
  void reset_timers() { timers_.clear(); }

  // Exchange + initial list build + initial forces. Called lazily by
  // run() if needed.
  void setup();

  // Advance nsteps through the pipeline; after_step fires after every
  // completed step (drivers wrap it into their typed StepCallback).
  void run(long nsteps, const std::function<void()>& after_step = {});

  // Scheduled output. Setting a plan restarts its first-dump truncation
  // decision (IoPlan::append).
  void set_io_plan(IoPlan plan) {
    io_plan_ = std::move(plan);
    dump_started_ = false;
  }
  [[nodiscard]] const IoPlan& io_plan() const { return io_plan_; }

  // Route output through a specific backend (shared across drivers /
  // ranks as the caller likes). Without one, a private synchronous
  // writer is created on first use — the pre-async behavior.
  void set_writer(std::shared_ptr<io::Writer> writer) {
    writer_ = std::move(writer);
  }
  [[nodiscard]] io::Writer& writer() {
    if (!writer_) writer_ = io::make_writer(io::Mode::Sync);
    return *writer_;
  }

  // Checkpoint through the driver's stage hook (serial: plain file;
  // parallel: gather-on-root collective; batched: multi-replica file),
  // then drain the writer: when this returns the file is on disk and
  // readable — the restart barrier.
  void save_checkpoint(const std::string& path) {
    stages_->write_checkpoint(*this, path);
    writer().drain();
  }

 private:
  void compute_forces();
  void rebuild_neighbors(bool initial);
  void scheduled_output();
  void add_thread_times(TimerCategory category);
  // Checked build only: arm the tripwire on the first completed step and
  // compare every later step's total energy against it.
  void observe_drift();
  template <typename Fn>
  void timed_comm(Fn&& fn) {
    if (stages_->communicates()) {
      ScopedTimer t(timers_, TimerCategory::Comm);
      fn();
    } else {
      fn();
    }
  }

  StepStages* stages_;
  System sys_;
  std::shared_ptr<PairPotential> pot_;
  ComputeContext ctx_;
  Integrator integrator_;
  NeighborList nl_;
  Rng rng_;
  EnergyVirial ev_;
  TimerSet timers_;
  IoPlan io_plan_;
  std::shared_ptr<io::Writer> writer_;  // lazily a SyncWriter when unset
  bool dump_started_ = false;  // has this plan written its first frames?
  long step_ = 0;
  bool ready_ = false;
  // Energy-drift tripwire (checked builds; armed when the
  // EMBER_CHECK_DRIFT_TOL environment variable sets a tolerance).
  check::DriftTripwire tripwire_;
};

}  // namespace ember::md
