#include "lattice.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ember::md {

std::vector<Vec3> lattice_basis(LatticeKind kind, double x_bc8) {
  switch (kind) {
    case LatticeKind::SimpleCubic:
      return {{0, 0, 0}};
    case LatticeKind::Bcc:
      return {{0, 0, 0}, {0.5, 0.5, 0.5}};
    case LatticeKind::Fcc:
      return {{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}};
    case LatticeKind::Diamond: {
      std::vector<Vec3> basis;
      for (const Vec3& f :
           {Vec3{0, 0, 0}, Vec3{0.5, 0.5, 0}, Vec3{0.5, 0, 0.5},
            Vec3{0, 0.5, 0.5}}) {
        basis.push_back(f);
        basis.push_back(f + Vec3{0.25, 0.25, 0.25});
      }
      return basis;
    }
    case LatticeKind::Bc8: {
      // Ia-3 (206), Wyckoff 16c at (x, x, x): 8 positions + body-centered
      // copies = 16 atoms per conventional cell.
      const double x = x_bc8;
      const std::vector<Vec3> gen = {
          {x, x, x},
          {0.5 - x, -x, 0.5 + x},
          {-x, 0.5 + x, 0.5 - x},
          {0.5 + x, 0.5 - x, -x},
      };
      std::vector<Vec3> basis;
      for (const auto& p : gen) {
        basis.push_back(p);
        basis.push_back(-1.0 * p);
      }
      const std::size_t n = basis.size();
      for (std::size_t i = 0; i < n; ++i) {
        basis.push_back(basis[i] + Vec3{0.5, 0.5, 0.5});
      }
      // Wrap fractions into [0, 1).
      for (auto& p : basis) {
        for (int d = 0; d < 3; ++d) p[d] -= std::floor(p[d]);
      }
      return basis;
    }
  }
  EMBER_REQUIRE(false, "unknown lattice kind");
  return {};
}

int lattice_atom_count(const LatticeSpec& spec) {
  return static_cast<int>(lattice_basis(spec.kind, spec.x_bc8).size()) *
         spec.nx * spec.ny * spec.nz;
}

System build_lattice(const LatticeSpec& spec, double mass) {
  EMBER_REQUIRE(spec.nx > 0 && spec.ny > 0 && spec.nz > 0,
                "lattice repetitions must be positive");
  const auto basis = lattice_basis(spec.kind, spec.x_bc8);
  Box box(spec.a * spec.nx, spec.a * spec.ny, spec.a * spec.nz);
  System sys(box, mass);
  for (int ix = 0; ix < spec.nx; ++ix) {
    for (int iy = 0; iy < spec.ny; ++iy) {
      for (int iz = 0; iz < spec.nz; ++iz) {
        const Vec3 corner{ix * spec.a, iy * spec.a, iz * spec.a};
        for (const auto& frac : basis) {
          sys.add_atom(corner + spec.a * frac);
        }
      }
    }
  }
  return sys;
}

void perturb(System& sys, double sigma, Rng& rng) {
  for (int i = 0; i < sys.nlocal(); ++i) {
    sys.x[i] = sys.box().wrap(sys.x[i] + Vec3{sigma * rng.gaussian(),
                                              sigma * rng.gaussian(),
                                              sigma * rng.gaussian()});
  }
}

System random_packing(const Box& box, int n, double min_separation,
                      double mass, Rng& rng) {
  System sys(box, mass);
  const double min2 = min_separation * min_separation;
  int attempts = 0;
  const int max_attempts = 2000 * n;
  while (sys.nlocal() < n) {
    EMBER_REQUIRE(++attempts < max_attempts,
                  "random_packing: target density unreachable at this "
                  "minimum separation");
    const Vec3 cand{rng.uniform(0.0, box.length(0)),
                    rng.uniform(0.0, box.length(1)),
                    rng.uniform(0.0, box.length(2))};
    bool ok = true;
    for (int i = 0; i < sys.nlocal(); ++i) {
      if (box.minimum_image(sys.x[i], cand).norm2() < min2) {
        ok = false;
        break;
      }
    }
    if (ok) sys.add_atom(cand);
  }
  return sys;
}

}  // namespace ember::md
