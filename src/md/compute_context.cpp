#include "compute_context.hpp"

#include "md/system.hpp"

namespace ember::md {

void ComputeContext::prepare_scatter(int ntotal) const {
  if (serial()) return;
  // parallel_for(0, T, 1): chunk t -> worker t, so every worker clears
  // (and first-touches) its own slot.
  pool().parallel_for(0, nthreads(), 1, [&](int /*tid*/, int b, int e) {
    for (int t = b; t < e; ++t) {
      if (t == 0) continue;  // worker 0 writes System::f directly
      scratch_[t].f.assign(static_cast<std::size_t>(ntotal), Vec3{});
    }
  });
}

void ComputeContext::merge_forces(System& sys) const {
  if (serial()) return;
  const int ntotal = sys.ntotal();
  const int nth = nthreads();
  // Each atom is owned by exactly one block and its slot contributions
  // are added in ascending worker order — deterministic for a fixed
  // thread count no matter how the OS schedules the workers.
  pool().parallel_blocks(0, ntotal, [&](int /*tid*/, int b, int e) {
    for (int t = 1; t < nth; ++t) {
      const auto& ft = scratch_[t].f;
      if (ft.empty()) continue;
      for (int i = b; i < e; ++i) sys.f[i] += ft[i];
    }
  });
}

ComputeContext::Reduced ComputeContext::reduce_ev() const {
  std::vector<Reduced> slots(scratch_.size());
  for (std::size_t t = 0; t < scratch_.size(); ++t) {
    slots[t] = {scratch_[t].energy, scratch_[t].virial, scratch_[t].flops};
  }
  return parallel::ThreadPool::reduce_tree(
      std::span<Reduced>(slots), [](Reduced a, const Reduced& b) {
        a.energy += b.energy;
        a.virial += b.virial;
        a.flops += b.flops;
        return a;
      });
}

}  // namespace ember::md
