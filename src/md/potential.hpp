#pragma once

// Interatomic-potential interface.
//
// Potentials receive full neighbor lists (every pair appears from both
// sides) and may write forces onto ghost atoms; the caller is responsible
// for reverse-communicating ghost forces in parallel runs.
//
// Every kernel runs under a ComputeContext, which supplies the thread
// pool, an optional atom sub-range, and per-thread scratch slots. A
// default (serial) context reproduces the pre-threading code paths bit
// for bit; drivers that own a pool pass their context so the hot loop is
// distributed over atom blocks with per-thread force accumulators merged
// by a deterministic reduction.

#include <span>

#include "common/vec3.hpp"
#include "md/compute_context.hpp"
#include "md/neighbor.hpp"
#include "md/system.hpp"

namespace ember::md {

struct EnergyVirial {
  double energy = 0.0;  // potential energy of the local atoms [eV]
  double virial = 0.0;  // scalar virial sum_pairs r . f [eV]

  EnergyVirial& operator+=(const EnergyVirial& o) {
    energy += o.energy;
    virial += o.virial;
    return *this;
  }
};

class PairPotential {
 public:
  virtual ~PairPotential() = default;

  // Interaction cutoff [A]; the neighbor list must be built at least this
  // large.
  [[nodiscard]] virtual double cutoff() const = 0;

  // Accumulate forces for the atoms selected by ctx.atom_range() (forces
  // must have been zeroed by the caller); returns energy and scalar
  // virial. The neighbor list nl must be current. Implementations must
  // dispatch their atom loop through ctx.pool() and accumulate partial
  // energy/virial into ctx.scratch(tid) so results are deterministic at a
  // fixed thread count.
  virtual EnergyVirial compute(const ComputeContext& ctx, System& sys,
                               const NeighborList& nl) = 0;

  // Serial convenience overload: runs the kernel under a one-thread
  // context (the exact pre-threading code path). Derived classes
  // re-expose it with `using PairPotential::compute;`.
  EnergyVirial compute(System& sys, const NeighborList& nl) {
    const ComputeContext ctx;
    return compute(ctx, sys, nl);
  }

  // Human-readable name for logs and benchmark tables.
  [[nodiscard]] virtual const char* name() const = 0;
};

// Pressure from energy/virial bookkeeping [bar]:
//   P = (2 KE + virial) / (3 V) converted from eV/A^3.
double pressure_bar(const System& sys, const EnergyVirial& ev);

}  // namespace ember::md
