#include "step_loop.hpp"

#include "md/io.hpp"

namespace ember::md {

bool StepStages::check_rebuild(StepLoop& loop) {
  return loop.neighbor_list().needs_rebuild(loop.system());
}

void StepStages::exchange(StepLoop&, bool) {}

void StepStages::build_neighbors(StepLoop& loop, bool initial) {
  System& sys = loop.system();
  if (!initial) {
    // Re-wrap positions only together with the rebuild, so the list's
    // shift vectors stay consistent with the stored coordinates. The
    // setup build takes the caller's coordinates as-is.
    for (int i = 0; i < sys.nlocal(); ++i) {
      sys.x[i] = sys.box().wrap(sys.x[i]);
    }
  }
  loop.neighbor_list().build(sys, /*use_ghosts=*/false, &loop.context());
}

void StepStages::forward_positions(StepLoop&) {}

void StepStages::reverse_forces(StepLoop&) {}

void StepStages::write_checkpoint(StepLoop& loop, const std::string& path) {
  md::write_checkpoint(loop.system(), path);
}

StepLoop::StepLoop(System sys, std::shared_ptr<PairPotential> pot,
                   double dt_ps, double skin, Rng rng, ExecutionPolicy policy,
                   StepStages& stages)
    : stages_(&stages),
      sys_(std::move(sys)),
      pot_(std::move(pot)),
      ctx_(policy),
      integrator_(dt_ps),
      nl_(pot_->cutoff(), skin),
      rng_(rng) {}

void StepLoop::add_thread_times(const char* category) {
  if (!ctx_.serial()) {
    timers_.add_thread_times(category, ctx_.pool().last_thread_seconds());
  }
}

void StepLoop::rebuild_neighbors(bool initial) {
  ScopedTimer t(timers_, kTimerNeigh);
  stages_->build_neighbors(*this, initial);
  add_thread_times(kTimerNeigh);
}

void StepLoop::compute_forces() {
  ScopedTimer t(timers_, kTimerPair);
  sys_.zero_forces();
  ev_ = pot_->compute(ctx_, sys_, nl_);
  add_thread_times(kTimerPair);
}

void StepLoop::setup() {
  timed_comm([&] { stages_->exchange(*this, /*initial=*/true); });
  rebuild_neighbors(/*initial=*/true);
  compute_forces();
  timed_comm([&] { stages_->reverse_forces(*this); });
  ready_ = true;
}

void StepLoop::run(long nsteps, const std::function<void()>& after_step) {
  if (!ready_) setup();
  for (long s = 0; s < nsteps; ++s) {
    {
      ScopedTimer t(timers_, kTimerOther);
      integrator_.initial_integrate(sys_, &ctx_);
    }
    if (stages_->check_rebuild(*this)) {
      timed_comm([&] { stages_->exchange(*this, /*initial=*/false); });
      rebuild_neighbors(/*initial=*/false);
    } else {
      timed_comm([&] { stages_->forward_positions(*this); });
    }
    compute_forces();
    timed_comm([&] { stages_->reverse_forces(*this); });
    {
      ScopedTimer t(timers_, kTimerOther);
      integrator_.final_integrate(sys_, ev_, rng_, &ctx_);
    }
    ++step_;
    if (after_step) after_step();
  }
}

}  // namespace ember::md
