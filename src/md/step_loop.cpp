#include "step_loop.hpp"

#include "io/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ember::md {

namespace {

// Observability handles for the pipeline, registered once per process.
// Every StepLoop (serial, batched, each parallel rank) reports into the
// same counters; the per-thread shards keep concurrent ranks cheap.
struct LoopMetrics {
  obs::Counter& steps;
  obs::Counter& rebuilds;
  obs::Histogram& step_seconds;

  static LoopMetrics& get() {
    // Step-time buckets: 10 us .. 10 s, decade + half-decade resolution —
    // wide enough for an LJ toy box and a multi-rank SNAP step alike.
    static constexpr double kBounds[] = {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
                                         1e-2, 3e-2, 1e-1, 3e-1, 1.0, 10.0};
    auto& reg = obs::Registry::global();
    static LoopMetrics m{reg.counter("md.steps"),
                         reg.counter("md.neigh.rebuilds"),
                         reg.histogram("md.step.seconds", kBounds)};
    return m;
  }
};

}  // namespace

bool StepStages::check_rebuild(StepLoop& loop) {
  return loop.neighbor_list().needs_rebuild(loop.system());
}

void StepStages::exchange(StepLoop&, bool) {}

void StepStages::build_neighbors(StepLoop& loop, bool initial) {
  System& sys = loop.system();
  if (!initial) {
    // Re-wrap positions only together with the rebuild, so the list's
    // shift vectors stay consistent with the stored coordinates. The
    // setup build takes the caller's coordinates as-is.
    for (int i = 0; i < sys.nlocal(); ++i) {
      sys.x[i] = sys.box().wrap(sys.x[i]);
    }
  }
  loop.neighbor_list().build(sys, /*use_ghosts=*/false, &loop.context());
}

void StepStages::forward_positions(StepLoop&) {}

void StepStages::reverse_forces(StepLoop&) {}

void StepStages::dump(StepLoop& loop, const IoPlan& plan, bool truncate) {
  io::Request req;
  req.kind = io::Request::Kind::Trajectory;
  req.path = plan.dump_path;
  req.format = plan.dump_format;
  req.truncate = truncate;
  req.frames.push_back(io::frame_of(loop.system(), loop.step(), /*replica=*/0,
                                    "step=" + std::to_string(loop.step())));
  // Trajectory dumps are position-only in every format: XYZ has no
  // velocity column, and keeping EMBT1 to the same information makes the
  // compressed trajectory strictly smaller. Restarts use checkpoints.
  req.frames.back().v.clear();
  loop.writer().submit(std::move(req));
}

void StepStages::write_checkpoint(StepLoop& loop, const std::string& path) {
  io::Request req;
  req.kind = io::Request::Kind::Checkpoint;
  req.path = path;
  req.frames.push_back(io::frame_of(loop.system()));
  loop.writer().submit(std::move(req));
}

void StepStages::verify_exchange(StepLoop& loop, bool /*initial*/) {
  check::check_no_ghosts(loop.system(), "exchange", loop.step());
}

void StepStages::verify_neighbors(StepLoop& loop) {
  check::check_neighbor_list(loop.neighbor_list(), loop.system(), "neigh",
                             loop.step());
}

double StepStages::total_energy(StepLoop& loop) {
  return loop.energy_virial().energy + loop.system().kinetic_energy();
}

StepLoop::StepLoop(System sys, std::shared_ptr<PairPotential> pot,
                   double dt_ps, double skin, Rng rng, ExecutionPolicy policy,
                   StepStages& stages)
    : stages_(&stages),
      sys_(std::move(sys)),
      pot_(std::move(pot)),
      ctx_(policy),
      integrator_(dt_ps),
      nl_(pot_->cutoff(), skin),
      rng_(rng) {}

void StepLoop::add_thread_times(TimerCategory category) {
  if (!ctx_.serial()) {
    timers_.add_thread_times(category, ctx_.pool().last_thread_seconds());
  }
}

void StepLoop::rebuild_neighbors(bool initial) {
  EMBER_OBS_SPAN("neigh.rebuild", "neigh");
  ScopedTimer t(timers_, TimerCategory::Neigh);
  stages_->build_neighbors(*this, initial);
  add_thread_times(TimerCategory::Neigh);
  LoopMetrics::get().rebuilds.inc();
  EMBER_CHECK(stages_->verify_neighbors(*this));
}

void StepLoop::compute_forces() {
  EMBER_OBS_SPAN("force", "pair");
  ScopedTimer t(timers_, TimerCategory::Pair);
  sys_.zero_forces();
  ev_ = pot_->compute(ctx_, sys_, nl_);
  add_thread_times(TimerCategory::Pair);
  EMBER_CHECK(
      check::check_finite(sys_.f, sys_.nlocal(), "force", "force", step_));
}

// The Dump-timed stage: snapshotting + submit for async writers, the full
// write for sync ones — exactly the stall Fig.-4-style breakdowns should
// attribute to output, not to Other.
void StepLoop::scheduled_output() {
  if (io_plan_.dumps() && step_ % io_plan_.dump_every == 0) {
    EMBER_OBS_SPAN("dump", "io");
    ScopedTimer t(timers_, TimerCategory::Dump);
    stages_->dump(*this, io_plan_, !dump_started_ && !io_plan_.append);
    dump_started_ = true;
  }
  if (io_plan_.checkpoints() && step_ % io_plan_.checkpoint_every == 0) {
    EMBER_OBS_SPAN("checkpoint", "io");
    ScopedTimer t(timers_, TimerCategory::Dump);
    // No drain: the writer tmp+renames checkpoints, so the file on disk
    // is always complete even while the queue is in flight.
    stages_->write_checkpoint(*this, io_plan_.checkpoint_path);
  }
}

void StepLoop::observe_drift() {
  if (!tripwire_.armed()) {
    const double tol = check::drift_tolerance_from_env();
    if (tol <= 0.0) return;
    tripwire_.arm(stages_->total_energy(*this), tol);
    return;
  }
  tripwire_.observe(stages_->total_energy(*this), step_);
}

void StepLoop::setup() {
  EMBER_OBS_SPAN("setup", "other");
  {
    EMBER_OBS_SPAN("exchange", "comm");
    timed_comm([&] { stages_->exchange(*this, /*initial=*/true); });
  }
  EMBER_CHECK(stages_->verify_exchange(*this, /*initial=*/true));
  rebuild_neighbors(/*initial=*/true);
  compute_forces();
  {
    EMBER_OBS_SPAN("reverse", "comm");
    timed_comm([&] { stages_->reverse_forces(*this); });
  }
  ready_ = true;
}

void StepLoop::run(long nsteps, const std::function<void()>& after_step) {
  if (!ready_) setup();
  for (long s = 0; s < nsteps; ++s) {
    EMBER_OBS_SPAN_ARG("step", "step", "step", step_);
    WallTimer step_timer;
    {
      EMBER_OBS_SPAN("integrate.initial", "other");
      ScopedTimer t(timers_, TimerCategory::Other);
      integrator_.initial_integrate(sys_, &ctx_);
    }
    EMBER_CHECK(check::check_finite(sys_.x, sys_.nlocal(), "position",
                                    "integrate", step_));
    if (stages_->check_rebuild(*this)) {
      {
        EMBER_OBS_SPAN("exchange", "comm");
        timed_comm([&] { stages_->exchange(*this, /*initial=*/false); });
      }
      EMBER_CHECK(stages_->verify_exchange(*this, /*initial=*/false));
      rebuild_neighbors(/*initial=*/false);
    } else {
      EMBER_OBS_SPAN("forward", "comm");
      timed_comm([&] { stages_->forward_positions(*this); });
    }
    compute_forces();
    {
      EMBER_OBS_SPAN("reverse", "comm");
      timed_comm([&] { stages_->reverse_forces(*this); });
    }
    {
      EMBER_OBS_SPAN("integrate.final", "other");
      ScopedTimer t(timers_, TimerCategory::Other);
      integrator_.final_integrate(sys_, ev_, rng_, &ctx_);
    }
    ++step_;
    EMBER_CHECK(observe_drift());
    scheduled_output();
    LoopMetrics& m = LoopMetrics::get();
    m.steps.inc();
    m.step_seconds.record(step_timer.seconds());
    if (after_step) after_step();
  }
}

}  // namespace ember::md
