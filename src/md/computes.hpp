#pragma once

// Diagnostics over configurations: radial distribution function, mean
// squared displacement, coordination numbers.

#include <vector>

#include "md/neighbor.hpp"
#include "md/system.hpp"

namespace ember::md {

// g(r) histogram on [0, rmax) with nbins bins.
struct Rdf {
  double rmax = 6.0;
  int nbins = 120;
  std::vector<double> g;        // normalized g(r)
  std::vector<double> r;        // bin centers

  void compute(const System& sys);
  // Location of the first maximum of g(r) [A].
  [[nodiscard]] double first_peak() const;
};

// Per-atom coordination numbers within a bond cutoff.
std::vector<int> coordination_numbers(const System& sys,
                                      const NeighborList& nl,
                                      double bond_cutoff);

// Mean squared displacement tracker: record a reference frame, then query.
class Msd {
 public:
  void set_reference(const System& sys);
  [[nodiscard]] double compute(const System& sys) const;

 private:
  std::vector<Vec3> ref_;
  // Unwrapped tracking: accumulated via minimum-image hops per query is
  // unreliable over long runs; instead we keep the previous positions and
  // integrate displacements incrementally.
  mutable std::vector<Vec3> prev_;
  mutable std::vector<Vec3> disp_;
};

}  // namespace ember::md
