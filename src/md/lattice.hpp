#pragma once

// Crystal-structure generators: diamond cubic, BC8, fcc, bcc, simple cubic.
//
// BC8 is the high-pressure carbon phase the paper's production run
// discovered emerging from amorphous carbon at ~12 Mbar / 5000 K. It is a
// body-centered cubic arrangement with an 8-atom basis (space group Ia-3),
// parameterized by the internal coordinate x_bc8 ~ 0.0937 (silicon BC8
// value; carbon's is similar). Every atom is 4-coordinated like diamond but
// with one short and three long bonds and distinct bond angles — which is
// what the structure classifier keys on.

#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "md/system.hpp"

namespace ember::md {

enum class LatticeKind { SimpleCubic, Bcc, Fcc, Diamond, Bc8 };

struct LatticeSpec {
  LatticeKind kind = LatticeKind::Diamond;
  double a = 3.567;      // conventional cell parameter [A]
  int nx = 1, ny = 1, nz = 1;  // unit-cell repetitions
  double x_bc8 = 0.0937;       // BC8 internal coordinate
};

// Number of atoms the spec will generate.
int lattice_atom_count(const LatticeSpec& spec);

// Build a periodic system filled with the requested lattice.
System build_lattice(const LatticeSpec& spec, double mass);

// Displace every atom by a Gaussian of width sigma (thermal disorder).
void perturb(System& sys, double sigma, Rng& rng);

// Fill a box of the given dimensions with n atoms at random positions with
// a minimum separation (used to seed melt-quench amorphous samples).
System random_packing(const Box& box, int n, double min_separation,
                      double mass, Rng& rng);

// Fractional basis of each lattice (unit conventional cell).
std::vector<Vec3> lattice_basis(LatticeKind kind, double x_bc8 = 0.0937);

}  // namespace ember::md
