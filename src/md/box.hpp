#pragma once

// Orthorhombic periodic simulation cell.

#include <array>

#include "common/error.hpp"
#include "common/vec3.hpp"

namespace ember::md {

class Box {
 public:
  Box() = default;
  Box(double lx, double ly, double lz, std::array<bool, 3> periodic = {true, true, true})
      : len_{lx, ly, lz}, periodic_(periodic) {
    EMBER_REQUIRE(lx > 0 && ly > 0 && lz > 0, "box lengths must be positive");
  }

  [[nodiscard]] double length(int d) const { return len_[d]; }
  [[nodiscard]] Vec3 lengths() const { return {len_[0], len_[1], len_[2]}; }
  [[nodiscard]] double volume() const { return len_[0] * len_[1] * len_[2]; }
  [[nodiscard]] bool periodic(int d) const { return periodic_[d]; }

  // Wrap a position into [0, L) along periodic dimensions.
  [[nodiscard]] Vec3 wrap(Vec3 r) const {
    for (int d = 0; d < 3; ++d) {
      if (!periodic_[d]) continue;
      r[d] -= len_[d] * std::floor(r[d] / len_[d]);
      if (r[d] >= len_[d]) r[d] -= len_[d];  // guard the r[d] == L edge
    }
    return r;
  }

  // Minimum-image displacement b - a.
  [[nodiscard]] Vec3 minimum_image(const Vec3& a, const Vec3& b) const {
    Vec3 d = b - a;
    for (int k = 0; k < 3; ++k) {
      if (!periodic_[k]) continue;
      d[k] -= len_[k] * std::round(d[k] / len_[k]);
    }
    return d;
  }

  // Rescale all lengths by per-dimension factors (barostat).
  void scale(const Vec3& factors) {
    for (int d = 0; d < 3; ++d) {
      len_[d] *= factors[d];
      EMBER_REQUIRE(len_[d] > 0, "box collapsed under barostat scaling");
    }
  }

 private:
  double len_[3] = {1.0, 1.0, 1.0};
  std::array<bool, 3> periodic_ = {true, true, true};
};

}  // namespace ember::md
