#include "integrate.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace ember::md {

namespace {
// Element-wise sweep over the local atoms: threaded when a non-serial
// context is supplied, the plain loop otherwise. Both orders touch each
// atom exactly once, so the results are bitwise identical.
template <typename Fn>
void atom_sweep(System& sys, const ComputeContext* ctx, const Fn& fn) {
  const auto body = [&](int /*tid*/, int b, int e) {
    for (int i = b; i < e; ++i) fn(i);
  };
  if (ctx != nullptr && !ctx->serial()) {
    ctx->pool().parallel_for(0, sys.nlocal(), 4096, body);
  } else {
    body(0, 0, sys.nlocal());
  }
}
}  // namespace

void Integrator::initial_integrate(System& sys, const ComputeContext* ctx) {
  if (nose_hoover_) apply_nose_hoover_half(sys);
  const double dtf = 0.5 * dt_ * units::FORCE_TO_ACCEL / sys.mass();
  atom_sweep(sys, ctx, [&](int i) {
    sys.v[i] += dtf * sys.f[i];
    // Positions are NOT wrapped here: the neighbor list's shift vectors
    // reference the coordinates at build time, and wrapping mid-lifetime
    // silently breaks those images. The driver wraps at reneighboring.
    sys.x[i] += dt_ * sys.v[i];
  });
}

void Integrator::final_integrate(System& sys, const EnergyVirial& ev,
                                 Rng& rng, const ComputeContext* ctx) {
  const double dtf = 0.5 * dt_ * units::FORCE_TO_ACCEL / sys.mass();
  atom_sweep(sys, ctx, [&](int i) { sys.v[i] += dtf * sys.f[i]; });
  if (langevin_) apply_langevin(sys, rng);
  if (berendsen_t_) apply_berendsen_t(sys);
  if (nose_hoover_) apply_nose_hoover_half(sys);
  if (berendsen_p_) apply_berendsen_p(sys, ev);
}

void Integrator::apply_langevin(System& sys, Rng& rng) {
  // Impulsive Langevin update applied after the Verlet kick:
  //   v <- c1 v + c2 xi, c1 = exp(-dt/damp),
  //   c2 = sqrt((1 - c1^2) kB T / (m MVV2E))
  // which samples the Ornstein-Uhlenbeck velocity process exactly and
  // drives equipartition at the target temperature.
  const auto& p = *langevin_;
  const double c1 = std::exp(-dt_ / p.damp);
  const double c2 = std::sqrt((1.0 - c1 * c1) * units::kB * p.temperature /
                              (sys.mass() * units::MVV2E));
  for (int i = 0; i < sys.nlocal(); ++i) {
    sys.v[i] = c1 * sys.v[i] + Vec3{c2 * rng.gaussian(), c2 * rng.gaussian(),
                                    c2 * rng.gaussian()};
  }
}

void Integrator::apply_nose_hoover_half(System& sys) {
  // Symmetric half-step thermostat sweep (applied before the first and
  // after the second Verlet kick): advance xi a quarter step, scale the
  // velocities over the half step, advance xi another quarter step.
  // Q = g kB T0 tdamp^2.
  const auto& p = *nose_hoover_;
  const int dof = std::max(1, 3 * sys.nlocal() - 3);
  const double g_kt = dof * units::kB * p.temperature;
  const double q = g_kt * p.tdamp * p.tdamp;
  const double dt4 = 0.25 * dt_;
  const double dt2 = 0.5 * dt_;

  nh_xi_ += dt4 * (2.0 * sys.kinetic_energy() - g_kt) / q;
  const double scale = std::exp(-nh_xi_ * dt2);
  for (int i = 0; i < sys.nlocal(); ++i) sys.v[i] *= scale;
  nh_eta_ += nh_xi_ * dt2;
  nh_xi_ += dt4 * (2.0 * sys.kinetic_energy() - g_kt) / q;
}

double Integrator::nose_hoover_energy(int dof) const {
  if (!nose_hoover_) return 0.0;
  const auto& p = *nose_hoover_;
  const double g_kt = dof * units::kB * p.temperature;
  const double q = g_kt * p.tdamp * p.tdamp;
  return 0.5 * q * nh_xi_ * nh_xi_ + g_kt * nh_eta_;
}

void Integrator::apply_berendsen_t(System& sys) {
  const auto& p = *berendsen_t_;
  const double t_now = sys.temperature();
  if (t_now <= 0.0) return;
  const double lambda =
      std::sqrt(1.0 + dt_ / p.tau * (p.temperature / t_now - 1.0));
  for (int i = 0; i < sys.nlocal(); ++i) sys.v[i] *= lambda;
}

void Integrator::apply_berendsen_p(System& sys, const EnergyVirial& ev) {
  const auto& p = *berendsen_p_;
  const double pressure = pressure_bar(sys, ev);
  double mu = std::cbrt(1.0 - dt_ / p.tau * p.compressibility *
                                  (p.pressure - pressure));
  // Clamp to avoid violent volume changes from pressure spikes.
  mu = std::clamp(mu, 0.95, 1.05);
  sys.box().scale({mu, mu, mu});
  for (int i = 0; i < sys.nlocal(); ++i) {
    sys.x[i] = mu * sys.x[i];  // wrapped at the next reneighboring
  }
}

}  // namespace ember::md
