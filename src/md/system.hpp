#pragma once

// Atom storage (structure of arrays) and basic thermodynamic accessors.
//
// A System owns the positions/velocities/forces of the atoms it is
// responsible for. In serial runs every atom is "local"; the parallel
// driver appends ghost copies after index nlocal(). Per Core Guidelines
// Per.16 the arrays are kept compact and contiguous — MD hot loops stream
// through them in index order.

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "common/vec3.hpp"
#include "md/box.hpp"

namespace ember::md {

class System {
 public:
  System() = default;
  System(Box box, double mass) : box_(box), mass_(mass) {}

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] Box& box() { return box_; }
  [[nodiscard]] double mass() const { return mass_; }

  [[nodiscard]] int nlocal() const { return nlocal_; }
  [[nodiscard]] int ntotal() const { return static_cast<int>(x.size()); }
  [[nodiscard]] int nghost() const { return ntotal() - nlocal_; }

  // Append a local atom (position wrapped into the box).
  void add_atom(const Vec3& pos, const Vec3& vel = {}) {
    x.push_back(box_.wrap(pos));
    v.push_back(vel);
    f.emplace_back();
    id.push_back(next_id_++);
    ++nlocal_;
  }

  // Append a ghost copy (parallel halo); cleared by clear_ghosts().
  void add_ghost(const Vec3& pos, long global_id) {
    x.push_back(pos);
    v.emplace_back();
    f.emplace_back();
    id.push_back(global_id);
  }

  void clear_ghosts() {
    x.resize(nlocal_);
    v.resize(nlocal_);
    f.resize(nlocal_);
    id.resize(nlocal_);
  }

  void zero_forces() {
    for (auto& fi : f) fi = Vec3{};
  }

  // Kinetic energy in eV.
  [[nodiscard]] double kinetic_energy() const {
    double sum = 0.0;
    for (int i = 0; i < nlocal_; ++i) sum += v[i].norm2();
    return 0.5 * mass_ * units::MVV2E * sum;
  }

  // Instantaneous temperature [K]; dof = 3N - 3 removes the conserved
  // center-of-mass momentum (pass total atom count for parallel runs).
  [[nodiscard]] double temperature(int total_atoms = -1) const {
    const int n = total_atoms < 0 ? nlocal_ : total_atoms;
    const int dof = std::max(1, 3 * n - 3);
    return 2.0 * kinetic_energy() / (dof * units::kB);
  }

  // Draw Maxwell-Boltzmann velocities at temperature T and remove the
  // center-of-mass drift.
  void thermalize(double temperature_K, Rng& rng) {
    const double sigma =
        std::sqrt(units::kB * temperature_K / (mass_ * units::MVV2E));
    Vec3 ptot;
    for (int i = 0; i < nlocal_; ++i) {
      v[i] = {sigma * rng.gaussian(), sigma * rng.gaussian(),
              sigma * rng.gaussian()};
      ptot += v[i];
    }
    if (nlocal_ > 0) {
      const Vec3 drift = ptot / nlocal_;
      for (int i = 0; i < nlocal_; ++i) v[i] -= drift;
    }
  }

  std::vector<Vec3> x;  // positions [A]
  std::vector<Vec3> v;  // velocities [A/ps]
  std::vector<Vec3> f;  // forces [eV/A]
  std::vector<long> id; // global ids (stable across migration)

 private:
  Box box_;
  double mass_ = units::MASS_CARBON;
  int nlocal_ = 0;
  long next_id_ = 0;
};

}  // namespace ember::md
