#pragma once

// Time integration: velocity Verlet with optional Langevin or Berendsen
// thermostats and a Berendsen barostat.
//
// The paper's production runs used velocity Verlet with a Langevin
// thermostat (Fig. 7 temperature schedule 5000 -> 5500 K); the barostat is
// used by the BC8 pipeline to hold the ~12 Mbar compression.

#include <optional>

#include "common/rng.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace ember::md {

struct LangevinParams {
  double temperature = 300.0;  // target T [K]
  double damp = 0.1;           // relaxation time [ps]
};

struct BerendsenTParams {
  double temperature = 300.0;
  double tau = 0.1;  // coupling time [ps]
};

struct BerendsenPParams {
  double pressure = 0.0;        // target pressure [bar]
  double tau = 1.0;             // coupling time [ps]
  double compressibility = 1e-6; // inverse bulk modulus [1/bar]
};

// Nose-Hoover NVT (single thermostat variable). Unlike Langevin it is
// deterministic and has a conserved quantity
//   H' = E + 1/2 Q xi^2 + g kB T0 eta
// which the tests monitor as the canonical-sampling correctness check.
struct NoseHooverParams {
  double temperature = 300.0;  // target T [K]
  double tdamp = 0.1;          // thermostat period [ps] (sets Q)
};

class Integrator {
 public:
  explicit Integrator(double dt_ps) : dt_(dt_ps) {}

  [[nodiscard]] double dt() const { return dt_; }
  void set_dt(double dt_ps) { dt_ = dt_ps; }

  void set_langevin(std::optional<LangevinParams> p) { langevin_ = p; }
  void set_berendsen_t(std::optional<BerendsenTParams> p) { berendsen_t_ = p; }
  void set_berendsen_p(std::optional<BerendsenPParams> p) { berendsen_p_ = p; }
  void set_nose_hoover(std::optional<NoseHooverParams> p) {
    nose_hoover_ = p;
    nh_xi_ = 0.0;
    nh_eta_ = 0.0;
  }
  [[nodiscard]] std::optional<LangevinParams>& langevin() { return langevin_; }

  // Thermostat contribution to the conserved quantity of Nose-Hoover
  // dynamics (zero when the thermostat is off); pass the thermostatted
  // degrees of freedom (3N - 3).
  [[nodiscard]] double nose_hoover_energy(int dof) const;

  // First Verlet half-kick + drift. Forces must be current. The optional
  // context distributes the sweep over its thread pool (element-wise, so
  // threaded and serial sweeps are bitwise identical).
  void initial_integrate(System& sys, const ComputeContext* ctx = nullptr);

  // Second half-kick; call after forces were recomputed. ev is used by the
  // barostat (pressure), rng by the Langevin thermostat. Thermostat loops
  // that consume the RNG stream or kinetic-energy sums stay serial so the
  // trajectory is independent of the thread count.
  void final_integrate(System& sys, const EnergyVirial& ev, Rng& rng,
                       const ComputeContext* ctx = nullptr);

 private:
  void apply_langevin(System& sys, Rng& rng);
  void apply_berendsen_t(System& sys);
  void apply_berendsen_p(System& sys, const EnergyVirial& ev);
  void apply_nose_hoover_half(System& sys);

  double dt_;
  std::optional<LangevinParams> langevin_;
  std::optional<BerendsenTParams> berendsen_t_;
  std::optional<BerendsenPParams> berendsen_p_;
  std::optional<NoseHooverParams> nose_hoover_;
  double nh_xi_ = 0.0;   // thermostat velocity
  double nh_eta_ = 0.0;  // thermostat position (for the conserved qty)
};

}  // namespace ember::md
