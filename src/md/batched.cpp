#include "batched.hpp"

#include "common/units.hpp"
#include "io/frame.hpp"

namespace ember::md {

System BatchedSimulation::combine(std::vector<System>& replicas,
                                  std::vector<Box>& boxes,
                                  std::vector<int>& offsets) {
  EMBER_REQUIRE(!replicas.empty(), "need at least one replica");
  System combined(replicas.front().box(), replicas.front().mass());
  offsets.push_back(0);
  for (const auto& rep : replicas) {
    EMBER_REQUIRE(rep.mass() == combined.mass(),
                  "batched replicas must share one atomic mass");
    EMBER_REQUIRE(rep.nghost() == 0, "batched replicas must be ghost-free");
    boxes.push_back(rep.box());
    for (int i = 0; i < rep.nlocal(); ++i) {
      combined.add_atom(rep.x[i], rep.v[i]);
      // add_atom wraps into the combined system's (dummy) box; restore
      // the replica-frame coordinate — wrapping is per-replica here.
      combined.x[combined.nlocal() - 1] = rep.x[i];
    }
    offsets.push_back(combined.nlocal());
  }
  return combined;
}

BatchedSimulation::BatchedSimulation(std::vector<System> replicas,
                                     std::shared_ptr<PairPotential> pot,
                                     double dt_ps, double skin,
                                     std::uint64_t seed,
                                     ExecutionPolicy policy)
    : loop_(combine(replicas, boxes_, offsets_), std::move(pot), dt_ps, skin,
            Rng(seed), policy, *this) {}

System BatchedSimulation::replica(int r) const {
  EMBER_REQUIRE(r >= 0 && r < num_replicas(), "replica index out of range");
  const System& comb = combined();
  System out(boxes_[r], comb.mass());
  for (int i = offsets_[r]; i < offsets_[r + 1]; ++i) {
    out.add_atom(boxes_[r].wrap(comb.x[i]), comb.v[i]);
  }
  return out;
}

double BatchedSimulation::kinetic_energy(int r) const {
  EMBER_REQUIRE(r >= 0 && r < num_replicas(), "replica index out of range");
  const System& comb = combined();
  double sum = 0.0;
  for (int i = offsets_[r]; i < offsets_[r + 1]; ++i) {
    sum += comb.v[i].norm2();
  }
  return 0.5 * comb.mass() * units::MVV2E * sum;
}

double BatchedSimulation::temperature(int r) const {
  const int n = offsets_[r + 1] - offsets_[r];
  const int dof = std::max(1, 3 * n - 3);
  return 2.0 * kinetic_energy(r) / (dof * units::kB);
}

void BatchedSimulation::wrap_replicas() {
  System& comb = loop_.system();
  for (int r = 0; r < num_replicas(); ++r) {
    for (int i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      comb.x[i] = boxes_[r].wrap(comb.x[i]);
    }
  }
}

void BatchedSimulation::build_neighbors(StepLoop& loop, bool /*initial*/) {
  // Wrapping is per-replica (the combined box is a dummy), and happens on
  // every build including setup — each replica's shift vectors must be
  // consistent with its own cell.
  wrap_replicas();
  loop.neighbor_list().build_batched(loop.system(), boxes_, offsets_,
                                     &loop.context());
}

void BatchedSimulation::dump(StepLoop& loop, const IoPlan& plan,
                             bool truncate) {
  // One request carries every replica's frame, so the whole lockstep
  // snapshot lands in the trajectory contiguously in replica order.
  io::Request req;
  req.kind = io::Request::Kind::Trajectory;
  req.path = plan.dump_path;
  req.format = plan.dump_format;
  req.truncate = truncate;
  req.frames.reserve(static_cast<std::size_t>(num_replicas()));
  for (int r = 0; r < num_replicas(); ++r) {
    req.frames.push_back(io::frame_of(replica(r), loop.step(), r,
                                      "step=" + std::to_string(loop.step()) +
                                          " replica=" + std::to_string(r)));
    req.frames.back().v.clear();  // dumps are position-only (see StepStages)
  }
  loop.writer().submit(std::move(req));
}

void BatchedSimulation::write_checkpoint(StepLoop& loop,
                                         const std::string& path) {
  io::Request req;
  req.kind = io::Request::Kind::CheckpointBatch;
  req.path = path;
  req.frames.reserve(static_cast<std::size_t>(num_replicas()));
  for (int r = 0; r < num_replicas(); ++r) {
    req.frames.push_back(io::frame_of(replica(r)));
  }
  loop.writer().submit(std::move(req));
}

void BatchedSimulation::run(long nsteps, const StepCallback& callback) {
  if (callback) {
    loop_.run(nsteps, [&] { callback(*this); });
  } else {
    loop_.run(nsteps);
  }
}

}  // namespace ember::md
