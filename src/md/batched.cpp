#include "batched.hpp"

#include "common/units.hpp"

namespace ember::md {

BatchedSimulation::BatchedSimulation(std::vector<System> replicas,
                                     std::shared_ptr<PairPotential> pot,
                                     double dt_ps, double skin,
                                     std::uint64_t seed,
                                     ExecutionPolicy policy)
    : combined_(replicas.empty() ? Box(1, 1, 1) : replicas.front().box(),
                replicas.empty() ? 1.0 : replicas.front().mass()),
      pot_(std::move(pot)),
      ctx_(policy),
      integrator_(dt_ps),
      nl_(pot_->cutoff(), skin),
      rng_(seed) {
  EMBER_REQUIRE(!replicas.empty(), "need at least one replica");
  offsets_.push_back(0);
  for (const auto& rep : replicas) {
    EMBER_REQUIRE(rep.mass() == combined_.mass(),
                  "batched replicas must share one atomic mass");
    EMBER_REQUIRE(rep.nghost() == 0, "batched replicas must be ghost-free");
    boxes_.push_back(rep.box());
    for (int i = 0; i < rep.nlocal(); ++i) {
      combined_.add_atom(rep.x[i], rep.v[i]);
      // add_atom wraps into the combined system's (dummy) box; restore
      // the replica-frame coordinate — wrapping is per-replica here.
      combined_.x[combined_.nlocal() - 1] = rep.x[i];
    }
    offsets_.push_back(combined_.nlocal());
  }
}

System BatchedSimulation::replica(int r) const {
  EMBER_REQUIRE(r >= 0 && r < num_replicas(), "replica index out of range");
  System out(boxes_[r], combined_.mass());
  for (int i = offsets_[r]; i < offsets_[r + 1]; ++i) {
    out.add_atom(boxes_[r].wrap(combined_.x[i]), combined_.v[i]);
  }
  return out;
}

double BatchedSimulation::kinetic_energy(int r) const {
  EMBER_REQUIRE(r >= 0 && r < num_replicas(), "replica index out of range");
  double sum = 0.0;
  for (int i = offsets_[r]; i < offsets_[r + 1]; ++i) {
    sum += combined_.v[i].norm2();
  }
  return 0.5 * combined_.mass() * units::MVV2E * sum;
}

double BatchedSimulation::temperature(int r) const {
  const int n = offsets_[r + 1] - offsets_[r];
  const int dof = std::max(1, 3 * n - 3);
  return 2.0 * kinetic_energy(r) / (dof * units::kB);
}

void BatchedSimulation::wrap_replicas() {
  for (int r = 0; r < num_replicas(); ++r) {
    for (int i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      combined_.x[i] = boxes_[r].wrap(combined_.x[i]);
    }
  }
}

void BatchedSimulation::compute_forces() {
  combined_.zero_forces();
  ev_ = pot_->compute(ctx_, combined_, nl_);
}

void BatchedSimulation::setup() {
  wrap_replicas();
  nl_.build_batched(combined_, boxes_, offsets_, &ctx_);
  compute_forces();
  ready_ = true;
}

void BatchedSimulation::run(long nsteps) {
  if (!ready_) setup();
  for (long s = 0; s < nsteps; ++s) {
    // One sweep over the concatenated arrays advances every replica.
    integrator_.initial_integrate(combined_, &ctx_);
    if (nl_.needs_rebuild(combined_)) {
      wrap_replicas();
      nl_.build_batched(combined_, boxes_, offsets_, &ctx_);
    }
    compute_forces();
    integrator_.final_integrate(combined_, ev_, rng_, &ctx_);
    ++step_;
  }
}

}  // namespace ember::md
