#pragma once

// Minimal dense linear algebra for the SNAP trainer: symmetric positive
// definite solves via Cholesky. Matrices are row-major std::vector<double>.

#include <vector>

namespace ember::fit {

// Solve (A + ridge*I) x = b in place for symmetric positive definite A
// (n x n). Returns x. Throws ember::Error if the factorization fails.
std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              int n, double ridge = 0.0);

// y = M x for row-major (rows x cols) M.
std::vector<double> matvec(const std::vector<double>& m, int rows, int cols,
                           const std::vector<double>& x);

}  // namespace ember::fit
