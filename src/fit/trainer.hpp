#pragma once

// FitSNAP-lite: train linear SNAP coefficients against a reference
// ("oracle") potential.
//
// The paper's carbon SNAP was trained on DFT data; here the Tersoff carbon
// potential plays the oracle's role (same code path, different labels —
// see DESIGN.md §2). The fit is a weighted ridge regression over energies
// and force components:
//
//   E_cfg             = N beta0 + sum_l beta_l (sum_i B_l(i))
//   F_(k,alpha)       = - sum_l beta_l (sum_i dB_l(i)/dr_(k,alpha))
//
// assembled with the baseline (dB) kernel and solved through the normal
// equations with a Cholesky factorization.

#include <memory>
#include <vector>

#include "md/potential.hpp"
#include "md/system.hpp"
#include "snap/snap_potential.hpp"

namespace ember::fit {

// One labelled configuration.
struct TrainingConfig {
  md::System system;
  double energy = 0.0;            // oracle total energy [eV]
  std::vector<Vec3> forces;       // oracle forces [eV/A]
};

struct FitOptions {
  double energy_weight = 100.0;  // per-atom energy row weight
  double force_weight = 1.0;
  double ridge = 1e-8;
};

struct FitMetrics {
  double energy_rmse_per_atom = 0.0;  // [eV/atom]
  double force_rmse = 0.0;            // [eV/A] per component
  double force_rms_label = 0.0;       // RMS of the oracle force components
  int n_configs = 0;
  int n_force_rows = 0;
};

class Trainer {
 public:
  Trainer(snap::SnapParams snap_params, FitOptions options = {});

  // Label a configuration with the oracle and add it to the training set.
  void add_config(md::System sys, md::PairPotential& oracle);

  // Add a pre-labelled configuration.
  void add_labelled(TrainingConfig cfg);

  [[nodiscard]] int num_configs() const {
    return static_cast<int>(configs_.size());
  }

  // Solve for the coefficients; returns the trained model.
  [[nodiscard]] snap::SnapModel fit();

  // Evaluate a model on this trainer's configurations (use a second
  // Trainer holding held-out configs for test metrics).
  [[nodiscard]] FitMetrics evaluate(const snap::SnapModel& model);

 private:
  // Rows of the design matrix for one config: first the energy row, then
  // 3N force rows. Column 0 is beta0 (energy rows only).
  void assemble_rows(const TrainingConfig& cfg, std::vector<double>& rows,
                     std::vector<double>& rhs) const;

  snap::SnapParams snap_params_;
  FitOptions options_;
  std::vector<TrainingConfig> configs_;
};

// Convenience: build a standard carbon training set from the oracle —
// strained/perturbed diamond cells, BC8 cells, compressed random packings
// and short high-T Langevin snapshots.
std::vector<md::System> standard_carbon_configs(int count, std::uint64_t seed);

}  // namespace ember::fit
