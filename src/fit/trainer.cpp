#include "trainer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "fit/linalg.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "md/simulation.hpp"
#include "ref/pair_tersoff.hpp"
#include "snap/bispectrum.hpp"

namespace ember::fit {

Trainer::Trainer(snap::SnapParams snap_params, FitOptions options)
    : snap_params_(snap_params), options_(options) {}

void Trainer::add_config(md::System sys, md::PairPotential& oracle) {
  TrainingConfig cfg;
  md::NeighborList nl(oracle.cutoff(), 0.0);
  nl.build(sys);
  sys.zero_forces();
  cfg.energy = oracle.compute(sys, nl).energy;
  cfg.forces.assign(sys.f.begin(), sys.f.begin() + sys.nlocal());
  cfg.system = std::move(sys);
  configs_.push_back(std::move(cfg));
}

void Trainer::add_labelled(TrainingConfig cfg) {
  EMBER_REQUIRE(static_cast<int>(cfg.forces.size()) == cfg.system.nlocal(),
                "labelled forces must match the atom count");
  configs_.push_back(std::move(cfg));
}

void Trainer::assemble_rows(const TrainingConfig& cfg,
                            std::vector<double>& rows,
                            std::vector<double>& rhs) const {
  snap::Bispectrum bi(snap_params_);
  const int nb = bi.num_b();
  const int ncols = nb + 1;  // beta0 + beta
  const md::System& sys = cfg.system;
  const int n = sys.nlocal();

  rows.assign(static_cast<std::size_t>(1 + 3 * n) * ncols, 0.0);
  rhs.assign(1 + 3 * n, 0.0);

  md::NeighborList nl(snap_params_.rcut, 0.0);
  nl.build(sys);

  double* erow = rows.data();
  erow[0] = n;  // beta0 multiplies the atom count
  const double rc2 = snap_params_.rcut * snap_params_.rcut;

  std::vector<Vec3> rij;
  std::vector<int> jlist;
  for (int i = 0; i < n; ++i) {
    rij.clear();
    jlist.clear();
    for (const auto& en : nl.neighbors(i)) {
      const Vec3 d = sys.x[en.j] + en.shift - sys.x[i];
      if (d.norm2() < rc2) {
        rij.push_back(d);
        jlist.push_back(en.j);
      }
    }
    bi.compute_ui(rij, {});
    bi.compute_zi();
    bi.compute_bi();
    for (int l = 0; l < nb; ++l) erow[1 + l] += bi.blist()[l];

    // Force rows: F_k -= dB(i)/dr_k, F_i += dB(i)/dr_k for each neighbor.
    for (std::size_t m = 0; m < rij.size(); ++m) {
      bi.compute_duidrj(rij[m], 1.0);
      bi.compute_dbidrj();
      const int k = jlist[m];
      for (int l = 0; l < nb; ++l) {
        const Vec3 db = bi.dblist()[l];
        for (int d = 0; d < 3; ++d) {
          // F = -beta . dB, so the design entry carries the minus sign.
          rows[(1 + 3 * k + d) * static_cast<std::size_t>(ncols) + 1 + l] +=
              db[d];
          rows[(1 + 3 * i + d) * static_cast<std::size_t>(ncols) + 1 + l] -=
              db[d];
        }
      }
    }
  }

  rhs[0] = cfg.energy;
  for (int k = 0; k < n; ++k) {
    for (int d = 0; d < 3; ++d) {
      // Design rows hold +dB sums; F = -beta . (dB sums), so flip the sign
      // of the rows instead of the labels for a conventional A beta = y.
      rhs[1 + 3 * k + d] = cfg.forces[k][d];
    }
  }
  // Flip force rows: A_force = -(dB sums).
  for (int r = 1; r < 1 + 3 * n; ++r) {
    for (int c = 0; c < ncols; ++c) {
      rows[r * static_cast<std::size_t>(ncols) + c] *= -1.0;
    }
  }
}

snap::SnapModel Trainer::fit() {
  EMBER_REQUIRE(!configs_.empty(), "no training configurations");
  snap::Bispectrum bi(snap_params_);
  const int ncols = bi.num_b() + 1;

  // Accumulate normal equations A^T W A and A^T W y config by config so
  // the full design matrix never needs to be held at once.
  std::vector<double> ata(static_cast<std::size_t>(ncols) * ncols, 0.0);
  std::vector<double> aty(ncols, 0.0);
  std::vector<double> rows;
  std::vector<double> rhs;

  for (const auto& cfg : configs_) {
    assemble_rows(cfg, rows, rhs);
    const int n = cfg.system.nlocal();
    const int nrows = 1 + 3 * n;
    for (int r = 0; r < nrows; ++r) {
      const double w = r == 0 ? options_.energy_weight / n
                              : options_.force_weight;
      const double* row = rows.data() + r * static_cast<std::size_t>(ncols);
      const double wy = w * rhs[r];
      for (int c = 0; c < ncols; ++c) {
        aty[c] += wy * row[c];
        const double wr = w * row[c];
        for (int c2 = c; c2 < ncols; ++c2) {
          ata[c * static_cast<std::size_t>(ncols) + c2] += wr * row[c2];
        }
      }
    }
  }
  // Symmetrize the upper-triangular accumulation.
  for (int c = 0; c < ncols; ++c) {
    for (int c2 = 0; c2 < c; ++c2) {
      ata[c * static_cast<std::size_t>(ncols) + c2] =
          ata[c2 * static_cast<std::size_t>(ncols) + c];
    }
  }

  const auto coeffs = solve_spd(ata, aty, ncols, options_.ridge);
  snap::SnapModel model;
  model.params = snap_params_;
  model.beta0 = coeffs[0];
  model.beta.assign(coeffs.begin() + 1, coeffs.end());
  return model;
}

FitMetrics Trainer::evaluate(const snap::SnapModel& model) {
  FitMetrics metrics;
  metrics.n_configs = static_cast<int>(configs_.size());
  double e_sq = 0.0;
  double f_sq = 0.0;
  double f_label_sq = 0.0;
  long f_rows = 0;

  snap::SnapPotential pot(model);
  for (auto& cfg : configs_) {
    md::System sys = cfg.system;
    md::NeighborList nl(pot.cutoff(), 0.0);
    nl.build(sys);
    sys.zero_forces();
    const auto ev = pot.compute(sys, nl);
    const int n = sys.nlocal();
    const double de = (ev.energy - cfg.energy) / n;
    e_sq += de * de;
    for (int k = 0; k < n; ++k) {
      for (int d = 0; d < 3; ++d) {
        const double df = sys.f[k][d] - cfg.forces[k][d];
        f_sq += df * df;
        f_label_sq += cfg.forces[k][d] * cfg.forces[k][d];
        ++f_rows;
      }
    }
  }
  metrics.energy_rmse_per_atom = std::sqrt(e_sq / metrics.n_configs);
  metrics.force_rmse = f_rows > 0 ? std::sqrt(f_sq / f_rows) : 0.0;
  metrics.force_rms_label =
      f_rows > 0 ? std::sqrt(f_label_sq / f_rows) : 0.0;
  metrics.n_force_rows = static_cast<int>(f_rows);
  return metrics;
}

std::vector<md::System> standard_carbon_configs(int count,
                                                std::uint64_t seed) {
  std::vector<md::System> configs;
  Rng rng(seed);
  int made = 0;
  while (made < count) {
    const int pick = made % 4;
    if (pick == 0) {
      // Strained + thermally perturbed diamond.
      md::LatticeSpec spec;
      spec.kind = md::LatticeKind::Diamond;
      spec.a = 3.567 * rng.uniform(0.86, 1.08);
      spec.nx = spec.ny = spec.nz = 2;
      md::System sys = md::build_lattice(spec, 12.011);
      md::perturb(sys, rng.uniform(0.02, 0.14), rng);
      configs.push_back(std::move(sys));
    } else if (pick == 1) {
      // BC8 at high compression.
      md::LatticeSpec spec;
      spec.kind = md::LatticeKind::Bc8;
      spec.a = 4.46 * rng.uniform(0.85, 1.0);
      spec.nx = spec.ny = spec.nz = 1;
      md::System sys = md::build_lattice(spec, 12.011);
      md::perturb(sys, rng.uniform(0.02, 0.1), rng);
      configs.push_back(std::move(sys));
    } else if (pick == 2) {
      // Compressed disordered packing (liquid/amorphous-like).
      const double a = rng.uniform(8.0, 10.0);
      md::Box box(a, a, a);
      configs.push_back(
          md::random_packing(box, static_cast<int>(a * a * a * 0.14), 1.25,
                             12.011, rng));
    } else {
      // Simple cubic — an "off-manifold" structure for robustness.
      md::LatticeSpec spec;
      spec.kind = md::LatticeKind::SimpleCubic;
      spec.a = rng.uniform(1.7, 2.2);
      spec.nx = spec.ny = spec.nz = 3;
      md::System sys = md::build_lattice(spec, 12.011);
      md::perturb(sys, 0.06, rng);
      configs.push_back(std::move(sys));
    }
    ++made;
  }
  return configs;
}

}  // namespace ember::fit
