#include "linalg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ember::fit {

std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              int n, double ridge) {
  EMBER_REQUIRE(static_cast<int>(a.size()) == n * n, "matrix size mismatch");
  EMBER_REQUIRE(static_cast<int>(b.size()) == n, "rhs size mismatch");
  for (int i = 0; i < n; ++i) a[i * n + i] += ridge;

  // Cholesky: A = L L^T, L lower-triangular stored in a.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (int k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        EMBER_REQUIRE(sum > 0.0,
                      "matrix not positive definite (increase ridge)");
        a[i * n + i] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward substitution L y = b.
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    for (int k = i + 1; k < n; ++k) sum -= a[k * n + i] * b[k];
    b[i] = sum / a[i * n + i];
  }
  return b;
}

std::vector<double> matvec(const std::vector<double>& m, int rows, int cols,
                           const std::vector<double>& x) {
  EMBER_REQUIRE(static_cast<int>(m.size()) == rows * cols &&
                    static_cast<int>(x.size()) == cols,
                "matvec dimension mismatch");
  std::vector<double> y(rows, 0.0);
  for (int r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) sum += m[r * cols + c] * x[c];
    y[r] = sum;
  }
  return y;
}

}  // namespace ember::fit
