#pragma once

// Closed-form Wigner rotation matrices in the spin-j representation,
// parameterized by Cayley-Klein parameters (a, b) with |a|^2 + |b|^2 = 1.
//
// This is the *reference* implementation: O(j) work per matrix element via
// the explicit factorial sum. The production kernel (bispectrum.cpp) uses a
// two-term recursion over j derived from the same generating function; the
// test suite pins the recursion against this closed form.
//
// Conventions. The SU(2) element is
//     g = [[ a, -conj(b) ],
//          [ b,  conj(a) ]]
// acting on the spinor (u, v). In the monomial basis
//     f_k = u^k v^(J-k) / sqrt(k! (J-k)!),   k = 0..J,  J = 2j,
// the representation matrix is
//     U^J[k', k] = sqrt(k'!(J-k')!/(k!(J-k)!)) *
//                  sum_p C(k,p) C(J-k, k'-p) a^p b^(k-p)
//                        (-conj(b))^(k'-p) conj(a)^(p-? ...)
// (see wigner.cpp for the exact exponent bookkeeping). Row index k' = j+m',
// column index k = j+m.

#include <vector>

#include "common/vec3.hpp"
#include "snap/cplx.hpp"

namespace ember::snap {

// Cayley-Klein parameters of a neighbor displacement mapped onto the
// 3-sphere, plus their Cartesian derivatives (needed for dU/dr).
struct CayleyKlein {
  Cplx a;        // r0inv * (z0 - i z)
  Cplx b;        // r0inv * (y - i x)
  Cplx da[3];    // d a / d{x,y,z}
  Cplx db[3];    // d b / d{x,y,z}
  double fc;     // switching function value
  double dfc[3]; // d fc / d{x,y,z}
};

// Map displacement rij (with |rij| in (0, rcut)) to the 3-sphere.
// rfac0 and rmin0 follow the LAMMPS convention:
//   theta0 = rfac0 * pi * (r - rmin0) / (rcut - rmin0),  z0 = r / tan(theta0).
CayleyKlein map_to_sphere(const Vec3& rij, double rcut, double rfac0,
                          double rmin0, bool switch_flag);

// Full (J+1)x(J+1) Wigner matrix for doubled momentum J = twoj, row-major
// with element [k' * (J+1) + k]. Closed form; reference/test use only.
std::vector<Cplx> wigner_matrix(int twoj, const Cplx& a, const Cplx& b);

// Single element U^J[kp, k] by the closed-form sum.
Cplx wigner_element(int twoj, int kp, int k, const Cplx& a, const Cplx& b);

}  // namespace ember::snap
