#include "snap_potential.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ember::snap {

std::vector<double> SnapModel::effective_beta(
    std::span<const double> b) const {
  std::vector<double> eff(beta.begin(), beta.end());
  if (!alpha.empty()) {
    const std::size_t n = beta.size();
    for (std::size_t l = 0; l < n; ++l) {
      double sum = 0.0;
      const double* row = alpha.data() + l * n;
      for (std::size_t m = 0; m < n; ++m) sum += row[m] * b[m];
      eff[l] += sum;
    }
  }
  return eff;
}

double SnapModel::site_energy(std::span<const double> b) const {
  double e = beta0;
  const std::size_t n = beta.size();
  for (std::size_t l = 0; l < n; ++l) e += beta[l] * b[l];
  if (!alpha.empty()) {
    for (std::size_t l = 0; l < n; ++l) {
      double sum = 0.0;
      const double* row = alpha.data() + l * n;
      for (std::size_t m = 0; m < n; ++m) sum += row[m] * b[m];
      e += 0.5 * b[l] * sum;
    }
  }
  return e;
}

void SnapModel::save(const std::string& path) const {
  std::ofstream os(path);
  EMBER_REQUIRE(os.good(), "cannot open " + path + " for writing");
  os.precision(17);
  os << "# ember SNAP model\n";
  os << "twojmax " << params.twojmax << '\n';
  os << "rcut " << params.rcut << '\n';
  os << "rmin0 " << params.rmin0 << '\n';
  os << "rfac0 " << params.rfac0 << '\n';
  os << "wself " << params.wself << '\n';
  os << "switch " << (params.switch_flag ? 1 : 0) << '\n';
  os << "bzero " << (params.bzero_flag ? 1 : 0) << '\n';
  os << "beta0 " << beta0 << '\n';
  os << "ncoeff " << beta.size() << '\n';
  for (const double b : beta) os << b << '\n';
  os << "nquad " << alpha.size() << '\n';
  for (const double a : alpha) os << a << '\n';
  EMBER_REQUIRE(os.good(), "model write failed");
}

SnapModel SnapModel::load(const std::string& path) {
  std::ifstream is(path);
  EMBER_REQUIRE(is.good(), "cannot open " + path);
  SnapModel m;
  std::string line;
  std::size_t ncoeff = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "twojmax") ls >> m.params.twojmax;
    else if (key == "rcut") ls >> m.params.rcut;
    else if (key == "rmin0") ls >> m.params.rmin0;
    else if (key == "rfac0") ls >> m.params.rfac0;
    else if (key == "wself") ls >> m.params.wself;
    else if (key == "switch") { int v; ls >> v; m.params.switch_flag = v != 0; }
    else if (key == "bzero") { int v; ls >> v; m.params.bzero_flag = v != 0; }
    else if (key == "beta0") ls >> m.beta0;
    else if (key == "ncoeff") {
      ls >> ncoeff;
      m.beta.reserve(ncoeff);
      double v = 0.0;
      while (m.beta.size() < ncoeff && is >> v) m.beta.push_back(v);
    } else if (key == "nquad") {
      std::size_t nquad = 0;
      ls >> nquad;
      m.alpha.reserve(nquad);
      double v = 0.0;
      while (m.alpha.size() < nquad && is >> v) m.alpha.push_back(v);
    }
  }
  EMBER_REQUIRE(m.beta.size() == ncoeff && ncoeff > 0,
                "model file truncated: " + path);
  return m;
}

SnapPotential::SnapPotential(SnapModel model, Path path)
    : model_(std::move(model)), path_(path), bi_(model_.params) {
  EMBER_REQUIRE(static_cast<int>(model_.beta.size()) == bi_.num_b(),
                "SNAP model has wrong number of coefficients");
  EMBER_REQUIRE(model_.alpha.empty() ||
                    model_.alpha.size() ==
                        model_.beta.size() * model_.beta.size(),
                "quadratic coefficient block must be num_b x num_b");
}

md::EnergyVirial SnapPotential::compute(md::System& sys,
                                        const md::NeighborList& nl) {
  md::EnergyVirial ev;
  last_flops_ = 0.0;
  const double rc2 = cutoff() * cutoff();

  for (int i = 0; i < sys.nlocal(); ++i) {
    const auto [entries, count] = nl.neighbors(i);
    rij_.clear();
    jlist_.clear();
    for (int m = 0; m < count; ++m) {
      const Vec3 d = sys.x[entries[m].j] + entries[m].shift - sys.x[i];
      if (d.norm2() < rc2) {
        rij_.push_back(d);
        jlist_.push_back(entries[m].j);
      }
    }

    bi_.compute_ui(rij_, {});
    const int nn = static_cast<int>(rij_.size());

    if (path_ == Path::Adjoint) {
      if (model_.quadratic()) {
        // Quadratic models need the descriptors before Y: dE/dB depends
        // on B itself, so compute B and feed the adjoint the per-atom
        // effective coefficients beta + alpha B (LAMMPS quadraticflag).
        bi_.compute_zi();
        bi_.compute_bi();
        beta_eff_ = model_.effective_beta(bi_.blist());
        bi_.compute_yi(beta_eff_);
        ev.energy += model_.site_energy(bi_.blist());
      } else {
        bi_.compute_yi(model_.beta);
        ev.energy += bi_.energy_from_yi(model_.beta0, model_.beta);
      }
      for (int m = 0; m < nn; ++m) {
        bi_.compute_duidrj(rij_[m], 1.0);
        const Vec3 de = bi_.compute_deidrj();  // dE_i/dr_k
        sys.f[jlist_[m]] -= de;
        sys.f[i] += de;
        ev.virial += -dot(rij_[m], de);
      }
      last_flops_ += bi_.flops_adjoint_atom(nn);
    } else {
      bi_.compute_zi();
      bi_.compute_bi();
      ev.energy += model_.site_energy(bi_.blist());
      beta_eff_ = model_.effective_beta(bi_.blist());
      for (int m = 0; m < nn; ++m) {
        bi_.compute_duidrj(rij_[m], 1.0);
        bi_.compute_dbidrj();
        Vec3 de;
        for (int l = 0; l < bi_.num_b(); ++l) {
          de += beta_eff_[l] * bi_.dblist()[l];
        }
        sys.f[jlist_[m]] -= de;
        sys.f[i] += de;
        ev.virial += -dot(rij_[m], de);
      }
      last_flops_ += bi_.flops_ui(nn) + bi_.flops_zi() + bi_.flops_bi() +
                     nn * (bi_.flops_duidrj() + bi_.flops_dbidrj());
    }
  }
  return ev;
}

}  // namespace ember::snap
