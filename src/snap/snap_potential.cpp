#include "snap_potential.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ember::snap {

namespace {
// Initial capacity of the per-atom neighbor scratch; generous for the
// paper's carbon systems (~26 neighbors at 2J=8 cutoffs) so steady state
// never reallocates.
constexpr std::size_t kNeighborReserve = 128;
}  // namespace

void SnapModel::effective_beta(std::span<const double> b,
                               std::vector<double>& out) const {
  out.assign(beta.begin(), beta.end());
  if (!alpha.empty()) {
    const std::size_t n = beta.size();
    for (std::size_t l = 0; l < n; ++l) {
      double sum = 0.0;
      const double* row = alpha.data() + l * n;
      for (std::size_t m = 0; m < n; ++m) sum += row[m] * b[m];
      out[l] += sum;
    }
  }
}

double SnapModel::site_energy(std::span<const double> b) const {
  double e = beta0;
  const std::size_t n = beta.size();
  for (std::size_t l = 0; l < n; ++l) e += beta[l] * b[l];
  if (!alpha.empty()) {
    for (std::size_t l = 0; l < n; ++l) {
      double sum = 0.0;
      const double* row = alpha.data() + l * n;
      for (std::size_t m = 0; m < n; ++m) sum += row[m] * b[m];
      e += 0.5 * b[l] * sum;
    }
  }
  return e;
}

void SnapModel::save(const std::string& path) const {
  std::ofstream os(path);
  EMBER_REQUIRE(os.good(), "cannot open " + path + " for writing");
  os.precision(17);
  os << "# ember SNAP model\n";
  os << "twojmax " << params.twojmax << '\n';
  os << "rcut " << params.rcut << '\n';
  os << "rmin0 " << params.rmin0 << '\n';
  os << "rfac0 " << params.rfac0 << '\n';
  os << "wself " << params.wself << '\n';
  os << "switch " << (params.switch_flag ? 1 : 0) << '\n';
  os << "bzero " << (params.bzero_flag ? 1 : 0) << '\n';
  const char* kernel_name = "naive";
  if (params.kernel == SnapKernel::Symmetric) kernel_name = "symmetric";
  if (params.kernel == SnapKernel::Simd) kernel_name = "simd";
  os << "kernel " << kernel_name << '\n';
  os << "beta0 " << beta0 << '\n';
  os << "ncoeff " << beta.size() << '\n';
  for (const double b : beta) os << b << '\n';
  os << "nquad " << alpha.size() << '\n';
  for (const double a : alpha) os << a << '\n';
  EMBER_REQUIRE(os.good(), "model write failed");
}

SnapModel SnapModel::load(const std::string& path) {
  std::ifstream is(path);
  EMBER_REQUIRE(is.good(), "cannot open " + path);
  SnapModel m;
  std::string line;
  std::size_t ncoeff = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "twojmax") ls >> m.params.twojmax;
    else if (key == "rcut") ls >> m.params.rcut;
    else if (key == "rmin0") ls >> m.params.rmin0;
    else if (key == "rfac0") ls >> m.params.rfac0;
    else if (key == "wself") ls >> m.params.wself;
    else if (key == "switch") { int v; ls >> v; m.params.switch_flag = v != 0; }
    else if (key == "bzero") { int v; ls >> v; m.params.bzero_flag = v != 0; }
    else if (key == "kernel") {
      std::string v;
      ls >> v;
      EMBER_REQUIRE(v == "symmetric" || v == "naive" || v == "simd",
                    "unknown kernel '" + v + "' in " + path);
      if (v == "simd") m.params.kernel = SnapKernel::Simd;
      else if (v == "symmetric") m.params.kernel = SnapKernel::Symmetric;
      else m.params.kernel = SnapKernel::Naive;
    }
    else if (key == "beta0") ls >> m.beta0;
    else if (key == "ncoeff") {
      ls >> ncoeff;
      m.beta.reserve(ncoeff);
      double v = 0.0;
      while (m.beta.size() < ncoeff && is >> v) m.beta.push_back(v);
    } else if (key == "nquad") {
      std::size_t nquad = 0;
      ls >> nquad;
      m.alpha.reserve(nquad);
      double v = 0.0;
      while (m.alpha.size() < nquad && is >> v) m.alpha.push_back(v);
    }
  }
  EMBER_REQUIRE(m.beta.size() == ncoeff && ncoeff > 0,
                "model file truncated: " + path);
  return m;
}

SnapPotential::SnapPotential(SnapModel model, Path path)
    : model_(std::move(model)), path_(path), bi_(model_.params) {
  EMBER_REQUIRE(static_cast<int>(model_.beta.size()) == bi_.num_b(),
                "SNAP model has wrong number of coefficients");
  EMBER_REQUIRE(model_.alpha.empty() ||
                    model_.alpha.size() ==
                        model_.beta.size() * model_.beta.size(),
                "quadratic coefficient block must be num_b x num_b");
  if (!model_.quadratic()) {
    const auto& triples = bi_.index().z_triples();
    y_coeff_.resize(triples.size());
    for (std::size_t t = 0; t < triples.size(); ++t) {
      y_coeff_[t] = model_.beta[triples[t].idxb] * triples[t].beta_scale;
    }
  }
  rij_.reserve(kNeighborReserve);
  jlist_.reserve(kNeighborReserve);
  beta_eff_.reserve(model_.beta.size());
  de_.reserve(kNeighborReserve);

  if (model_.params.kernel == SnapKernel::Simd) {
    // Per-ISA stage timing: which backend the dispatcher picked is runtime
    // state, so the counters are registered here (once) under the resolved
    // ISA name, and a gauge exposes the lane width for roofline math.
    const std::string isa = simd::to_string(bi_.simd_isa());
    auto& reg = obs::Registry::global();
    isa_ui_seconds_ = &reg.counter("snap.simd." + isa + ".ui_seconds");
    isa_dei_seconds_ = &reg.counter("snap.simd." + isa + ".dei_seconds");
    reg.gauge("snap.simd.lane_width")
        .set(static_cast<double>(simd::lane_width(bi_.simd_isa())));
  }
}

namespace {
// Per-thread kernel state for workers >= 1 (worker 0 reuses the member
// scratch, which keeps the serial code path untouched). Lives in the
// ComputeContext's per-thread cache: the U/Y/dU buffers inside Bispectrum
// are allocated once per thread and reused across calls.
struct SnapThreadScratch {
  Bispectrum bi;
  std::vector<Vec3> rij;
  std::vector<int> jlist;
  std::vector<double> beta_eff;
  std::vector<Vec3> de;
};

// Kernel-stage counters, populated only while obs::kernel_timing_enabled()
// ("trace on"). The dei bucket splits by kernel so the cached symmetric
// derivative path and the full recursion stay distinguishable in dumps.
struct SnapStageMetrics {
  obs::Counter& ui_seconds;
  obs::Counter& yi_seconds;
  obs::Counter& dei_seconds;
  obs::Counter& dei_cached_seconds;
  obs::Counter& atoms;
  obs::Counter& neighbors;
  static SnapStageMetrics& get() {
    auto& r = obs::Registry::global();
    static SnapStageMetrics m{
        r.counter("snap.ui_seconds"),     r.counter("snap.yi_seconds"),
        r.counter("snap.dei_seconds"),    r.counter("snap.dei_cached_seconds"),
        r.counter("snap.atoms"),          r.counter("snap.neighbors")};
    return m;
  }
};
}  // namespace

md::EnergyVirial SnapPotential::compute(const md::ComputeContext& ctx,
                                        md::System& sys,
                                        const md::NeighborList& nl) {
  const double rc2 = cutoff() * cutoff();
  const auto [abegin, aend] = ctx.atom_range(sys.nlocal());
  ctx.zero_partials();
  // Scatter kernel (dE_i/dr_j lands on the neighbor): worker 0 writes
  // sys.f, workers >= 1 write private arrays merged deterministically.
  ctx.prepare_scatter(sys.ntotal());

  ctx.pool().parallel_for(abegin, aend, /*grain=*/8,
                          [&](int tid, int bb, int ee) {
    auto& s = ctx.scratch(tid);
    Bispectrum* bi = &bi_;
    std::vector<Vec3>* rij = &rij_;
    std::vector<int>* jlist = &jlist_;
    std::vector<double>* beta_eff = &beta_eff_;
    std::span<Vec3> f{sys.f};
    std::vector<Vec3>* de_buf = &de_;
    if (tid != 0) {
      auto& th = ctx.cache<SnapThreadScratch>(tid, [&] {
        SnapThreadScratch scratch{Bispectrum(model_.params), {}, {}, {}, {}};
        scratch.rij.reserve(kNeighborReserve);
        scratch.jlist.reserve(kNeighborReserve);
        scratch.beta_eff.reserve(model_.beta.size());
        scratch.de.reserve(kNeighborReserve);
        return scratch;
      });
      bi = &th.bi;
      rij = &th.rij;
      jlist = &th.jlist;
      beta_eff = &th.beta_eff;
      de_buf = &th.de;
      f = std::span<Vec3>(s.f);
    }
    const bool cached_du = bi->kernel() != SnapKernel::Naive;
    // Stage timing is opt-in ("trace on" / set_kernel_timing): the flag is
    // read once per chunk, stage seconds accumulate in chunk-local doubles
    // and hit the sharded counters once per chunk, so the cost when off is
    // a single branch per stage.
    const bool detail = obs::kernel_timing_enabled();
    double ui_s = 0.0, yi_s = 0.0, dei_s = 0.0;
    long atoms = 0, neighbors = 0;
    WallTimer stage;

    for (int i = bb; i < ee; ++i) {
      rij->clear();
      jlist->clear();
      for (const auto& en : nl.neighbors(i)) {
        const Vec3 d = sys.x[en.j] + en.shift - sys.x[i];
        if (d.norm2() < rc2) {
          rij->push_back(d);
          jlist->push_back(en.j);
        }
      }

      if (detail) stage.reset();
      bi->compute_ui(*rij, {});
      if (detail) ui_s += stage.seconds();
      const int nn = static_cast<int>(rij->size());
      atoms += 1;
      neighbors += nn;

      if (path_ == Path::Adjoint) {
        if (detail) stage.reset();
        if (model_.quadratic()) {
          // Quadratic models need the descriptors before Y: dE/dB depends
          // on B itself, so compute B and feed the adjoint the per-atom
          // effective coefficients beta + alpha B (LAMMPS quadraticflag).
          bi->compute_zi();
          bi->compute_bi();
          model_.effective_beta(bi->blist(), *beta_eff);
          bi->compute_yi(*beta_eff);
          s.energy += model_.site_energy(bi->blist());
        } else {
          // Linear: the per-triple coefficient fold was done once at
          // construction.
          bi->compute_yi_coeffs(y_coeff_);
          s.energy += bi->energy_from_yi(model_.beta0, model_.beta);
        }
        if (detail) {
          yi_s += stage.seconds();
          stage.reset();
        }
        if (cached_du) {
          // Blocked dU + dE pass (Symmetric: per-neighbor cached scheme;
          // Simd: lane-vectorized blocks of neighbors).
          de_buf->resize(nn);
          bi->compute_deidrj_all(*de_buf);
          for (int m = 0; m < nn; ++m) {
            const Vec3 de = (*de_buf)[m];  // dE_i/dr_k
            f[(*jlist)[m]] -= de;
            f[i] += de;
            s.virial += -dot((*rij)[m], de);
          }
        } else {
          for (int m = 0; m < nn; ++m) {
            bi->compute_duidrj((*rij)[m], 1.0);
            const Vec3 de = bi->compute_deidrj();  // dE_i/dr_k
            f[(*jlist)[m]] -= de;
            f[i] += de;
            s.virial += -dot((*rij)[m], de);
          }
        }
        if (detail) dei_s += stage.seconds();
        s.flops += bi->flops_adjoint_atom(nn);
      } else {
        if (detail) stage.reset();
        bi->compute_zi();
        bi->compute_bi();
        s.energy += model_.site_energy(bi->blist());
        model_.effective_beta(bi->blist(), *beta_eff);
        if (detail) {
          yi_s += stage.seconds();
          stage.reset();
        }
        for (int m = 0; m < nn; ++m) {
          // dB needs the full-range dU list (compute_dbidrj contracts
          // every Z element), so the baseline path always runs the
          // full recursion regardless of kernel.
          bi->compute_duidrj((*rij)[m], 1.0);
          bi->compute_dbidrj();
          Vec3 de;
          for (int l = 0; l < bi->num_b(); ++l) {
            de += (*beta_eff)[l] * bi->dblist()[l];
          }
          f[(*jlist)[m]] -= de;
          f[i] += de;
          s.virial += -dot((*rij)[m], de);
        }
        if (detail) dei_s += stage.seconds();
        s.flops += bi->flops_ui(nn) + bi->flops_zi() + bi->flops_bi() +
                   nn * (bi->flops_duidrj_full() + bi->flops_dbidrj());
      }
    }

    if (detail) {
      SnapStageMetrics& m = SnapStageMetrics::get();
      m.ui_seconds.add(ui_s);
      m.yi_seconds.add(yi_s);
      (cached_du && path_ == Path::Adjoint ? m.dei_cached_seconds
                                           : m.dei_seconds)
          .add(dei_s);
      m.atoms.add(static_cast<double>(atoms));
      m.neighbors.add(static_cast<double>(neighbors));
      if (isa_ui_seconds_ != nullptr) {
        isa_ui_seconds_->add(ui_s);
        isa_dei_seconds_->add(dei_s);
      }
    }
  });

  ctx.merge_forces(sys);
  const auto red = ctx.reduce_ev();
  last_flops_ = red.flops;
  return {red.energy, red.virial};
}

}  // namespace ember::snap
