#pragma once

// Argument blocks and the per-ISA kernel table for the V8 SIMD backend.
//
// Lane layout. A block processes `width` neighbors at once, one per
// vector lane. Every per-neighbor plane is *lane-interleaved*: the value
// of half-layout element e for lane l lives at plane[e * width + l], so
// one aligned vector load at offset e * width reads element e of all
// neighbors in the block. Planes are 64-byte aligned (common/aligned.hpp)
// and lane offsets are width multiples, so every access is aligned.
//
// Remainder policy. The caller pads short blocks: inactive lanes carry a
// copy of the last active neighbor's Cayley-Klein parameters (keeps the
// recursion finite) and a zero weight, so their contributions vanish in
// the weighted accumulation and their force outputs are ignored.
//
// The structs below are plain pointers + sizes so this header needs no
// intrinsics; the implementations live in kernels_avx2.cpp /
// kernels_avx512.cpp (the only TUs allowed to include immintrin.h).

namespace ember::snap::simd {

// Lane-packed Cayley-Klein slots for dei_block: slot s of lane l lives at
// ck[s * width + l]. da/db derivative slots are indexed by Cartesian dim.
inline constexpr int kCkARe = 0;
inline constexpr int kCkAIm = 1;
inline constexpr int kCkBRe = 2;
inline constexpr int kCkBIm = 3;
inline constexpr int kCkDaRe0 = 4;   // .. kCkDaRe0 + d, d = 0..2
inline constexpr int kCkDaIm0 = 7;
inline constexpr int kCkDbRe0 = 10;
inline constexpr int kCkDbIm0 = 13;
inline constexpr int kCkFc = 16;
inline constexpr int kCkDfc0 = 17;   // .. kCkDfc0 + d
inline constexpr int kCkW = 20;      // bare neighbor weight wj
inline constexpr int kCkSlots = 21;

// Batched bare-U half-range recursion + weighted Utot accumulation for
// one block. Writes the bare per-neighbor U planes (consumed later by
// dei_block) and accumulates wfc * U into the lane-interleaved Utot
// accumulator (reduced over lanes by the caller after the last block).
struct UiBlockArgs {
  int twojmax = 0;
  const int* half_block = nullptr;  // u_half_block(j) offsets, twojmax+1
  int nh = 0;                       // u_half_total()
  const double* rootpq = nullptr;   // (twojmax+1)^2 sqrt(p/q) table
  // width-packed Cayley-Klein parameters of the block's neighbors
  const double* a_re = nullptr;
  const double* a_im = nullptr;
  const double* b_re = nullptr;
  const double* b_im = nullptr;
  const double* wfc = nullptr;      // wj * fc per lane (0 on padded lanes)
  double* ur = nullptr;             // bare-U planes out, nh * width each
  double* ui = nullptr;
  double* acc_re = nullptr;         // Utot accumulator, += wfc * u
  double* acc_im = nullptr;
};

// Batched derivative recursion + fused product rule + Y : dU* adjoint
// contraction for one block: for each lane l and Cartesian dim d,
//   out[d * width + l] = w_l * (dfc_dl * S0_l + fc_l * Sd_l)
// with S0 = sum_e y[e] . u[e] and Sd = sum_e y[e] . du_d[e] over the
// (weight-folded) half-range Y planes — algebraically identical to the
// Symmetric kernel's product-rule pass followed by the plane dot product.
struct DeiBlockArgs {
  int twojmax = 0;
  const int* half_block = nullptr;
  int nh = 0;
  const double* rootpq = nullptr;
  const double* ck = nullptr;       // kCkSlots * width lane-packed slots
  const double* ur = nullptr;       // cached bare-U planes of this block
  const double* ui = nullptr;
  double* du_re[3] = {};            // scratch planes, nh * width each
  double* du_im[3] = {};
  const double* y_re = nullptr;     // half-range Y, element-major,
  const double* y_im = nullptr;     //   pre-folded with half_weights
  double* out = nullptr;            // 3 * width: dim-major force lanes
};

struct SimdOps {
  int width = 1;  // neighbor lanes per block
  void (*ui_block)(const UiBlockArgs&) = nullptr;
  void (*dei_block)(const DeiBlockArgs&) = nullptr;
};

// Defined in the per-ISA TUs; only compiled when the toolchain supports
// the flags (EMBER_SNAP_HAVE_AVX2 / EMBER_SNAP_HAVE_AVX512).
[[nodiscard]] const SimdOps& avx2_ops();
[[nodiscard]] const SimdOps& avx512_ops();

}  // namespace ember::snap::simd
