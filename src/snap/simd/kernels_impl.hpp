#pragma once

// Width-generic implementations of the V8 SIMD kernels.
//
// Included only by the per-ISA translation units (kernels_avx2.cpp,
// kernels_avx512.cpp), each of which supplies a vector wrapper V over its
// native register type:
//
//   static constexpr int width;            lanes per register
//   static V load(const double*);          aligned load
//   void store_to(double*) const;          aligned store
//   static V broadcast(double); zero();
//   static V neg(V);
//   static V fma(a, b, c)   = a * b + c    (single-rounding FMA)
//   static V fmsub(a, b, c) = a * b - c
//   operators *, +, -  (element-wise)
//
// The loop structure deliberately mirrors Bispectrum::u_half_recursion and
// compute_duidrj_cached statement by statement — the scalar Symmetric code
// is the reference; only the innermost arithmetic is widened across the
// neighbor lanes. Keeping the association order identical per lane is what
// holds Simd-vs-Symmetric parity at <= 1e-12 (the residual difference is
// pure FMA contraction rounding).
//
// This header contains no intrinsics (ember_lint simd-intrinsics-include
// confines those to the kernels_avx*.cpp TUs).

#include "snap/simd/kernels.hpp"

namespace ember::snap::simd {

template <class V>
void ui_block_impl(const UiBlockArgs& g) {
  constexpr int kW = V::width;
  const int tj = g.twojmax;
  double* ur = g.ur;
  double* ui = g.ui;

  // Element 0: bare U = 1 on every lane.
  V::broadcast(1.0).store_to(ur);
  V::zero().store_to(ui);

  const V are = V::load(g.a_re);
  const V aim = V::load(g.a_im);
  const V bre = V::load(g.b_re);
  const V bim = V::load(g.b_im);

  for (int j = 1; j <= tj; ++j) {
    const int blk = g.half_block[j];
    const int pblk = g.half_block[j - 1];
    const int hs = j / 2 + 1;
    const int phs = (j - 1) / 2 + 1;
    for (int mb = 0; mb <= j / 2; ++mb) {
      const bool zc = (mb == 0);
      // cu = zc ? -conj(b) : a ;  cd = zc ? conj(a) : b
      const V cur = zc ? V::neg(bre) : are;
      const V cui = zc ? bim : aim;
      const V cdr = zc ? are : bre;
      const V cdi = zc ? V::neg(aim) : bim;
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        V vre = V::zero();
        V vim = V::zero();
        if (ma > 0) {
          const V r = V::broadcast(g.rootpq[ma * (tj + 1) + denom]);
          const int p = (pblk + (ma - 1) * phs + pcol) * kW;
          const V upre = V::load(ur + p);
          const V upim = V::load(ui + p);
          // v += r * (cu * up)
          vre = V::fma(r, V::fmsub(cur, upre, cui * upim), vre);
          vim = V::fma(r, V::fma(cur, upim, cui * upre), vim);
        }
        if (ma < j) {
          const V r = V::broadcast(g.rootpq[(j - ma) * (tj + 1) + denom]);
          const int p = (pblk + ma * phs + pcol) * kW;
          const V upre = V::load(ur + p);
          const V upim = V::load(ui + p);
          vre = V::fma(r, V::fmsub(cdr, upre, cdi * upim), vre);
          vim = V::fma(r, V::fma(cdr, upim, cdi * upre), vim);
        }
        const int e = (blk + ma * hs + mb) * kW;
        vre.store_to(ur + e);
        vim.store_to(ui + e);
      }
    }
  }

  // Weighted Utot accumulation: acc += wfc * u. Padded lanes carry
  // wfc = 0, so their recursion output never reaches the accumulator.
  const V w = V::load(g.wfc);
  for (int e = 0; e < g.nh; ++e) {
    const int o = e * kW;
    V::fma(w, V::load(ur + o), V::load(g.acc_re + o)).store_to(g.acc_re + o);
    V::fma(w, V::load(ui + o), V::load(g.acc_im + o)).store_to(g.acc_im + o);
  }
}

template <class V>
void dei_block_impl(const DeiBlockArgs& g) {
  constexpr int kW = V::width;
  const int tj = g.twojmax;
  const double* ck = g.ck;

  const V are = V::load(ck + kCkARe * kW);
  const V aim = V::load(ck + kCkAIm * kW);
  const V bre = V::load(ck + kCkBRe * kW);
  const V bim = V::load(ck + kCkBIm * kW);
  V dar[3];
  V dai[3];
  V dbr[3];
  V dbi[3];
  for (int d = 0; d < 3; ++d) {
    dar[d] = V::load(ck + (kCkDaRe0 + d) * kW);
    dai[d] = V::load(ck + (kCkDaIm0 + d) * kW);
    dbr[d] = V::load(ck + (kCkDbRe0 + d) * kW);
    dbi[d] = V::load(ck + (kCkDbIm0 + d) * kW);
  }

  // Element 0 of the bare derivative is zero on every dim and lane.
  for (int d = 0; d < 3; ++d) {
    V::zero().store_to(g.du_re[d]);
    V::zero().store_to(g.du_im[d]);
  }

  // Derivative-only recursion over the half range; the bare U values the
  // chain rule needs come from the lane-interleaved cache of ui_block.
  for (int j = 1; j <= tj; ++j) {
    const int blk = g.half_block[j];
    const int pblk = g.half_block[j - 1];
    const int hs = j / 2 + 1;
    const int phs = (j - 1) / 2 + 1;
    for (int mb = 0; mb <= j / 2; ++mb) {
      const bool zc = (mb == 0);
      const V cur = zc ? V::neg(bre) : are;
      const V cui = zc ? bim : aim;
      const V cdr = zc ? are : bre;
      const V cdi = zc ? V::neg(aim) : bim;
      V dcur[3];
      V dcui[3];
      V dcdr[3];
      V dcdi[3];
      for (int d = 0; d < 3; ++d) {
        // dcu = zc ? -conj(db) : da ;  dcd = zc ? conj(da) : db
        dcur[d] = zc ? V::neg(dbr[d]) : dar[d];
        dcui[d] = zc ? dbi[d] : dai[d];
        dcdr[d] = zc ? dar[d] : dbr[d];
        dcdi[d] = zc ? V::neg(dai[d]) : dbi[d];
      }
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        V dvre[3] = {V::zero(), V::zero(), V::zero()};
        V dvim[3] = {V::zero(), V::zero(), V::zero()};
        if (ma > 0) {
          const V r = V::broadcast(g.rootpq[ma * (tj + 1) + denom]);
          const int p = (pblk + (ma - 1) * phs + pcol) * kW;
          const V upre = V::load(g.ur + p);
          const V upim = V::load(g.ui + p);
          for (int d = 0; d < 3; ++d) {
            const V dre = V::load(g.du_re[d] + p);
            const V dim = V::load(g.du_im[d] + p);
            // dv += r * (dcu * up + cu * dup)
            const V tre = V::fmsub(dcur[d], upre, dcui[d] * upim) +
                          V::fmsub(cur, dre, cui * dim);
            const V tim = V::fma(dcur[d], upim, dcui[d] * upre) +
                          V::fma(cur, dim, cui * dre);
            dvre[d] = V::fma(r, tre, dvre[d]);
            dvim[d] = V::fma(r, tim, dvim[d]);
          }
        }
        if (ma < j) {
          const V r = V::broadcast(g.rootpq[(j - ma) * (tj + 1) + denom]);
          const int p = (pblk + ma * phs + pcol) * kW;
          const V upre = V::load(g.ur + p);
          const V upim = V::load(g.ui + p);
          for (int d = 0; d < 3; ++d) {
            const V dre = V::load(g.du_re[d] + p);
            const V dim = V::load(g.du_im[d] + p);
            const V tre = V::fmsub(dcdr[d], upre, dcdi[d] * upim) +
                          V::fmsub(cdr, dre, cdi * dim);
            const V tim = V::fma(dcdr[d], upim, dcdi[d] * upre) +
                          V::fma(cdr, dim, cdi * dre);
            dvre[d] = V::fma(r, tre, dvre[d]);
            dvim[d] = V::fma(r, tim, dvim[d]);
          }
        }
        const int e = (blk + ma * hs + mb) * kW;
        for (int d = 0; d < 3; ++d) {
          dvre[d].store_to(g.du_re[d] + e);
          dvim[d].store_to(g.du_im[d] + e);
        }
      }
    }
  }

  // Fused product rule + contraction. With the product rule
  //   d(w fc u) = w (dfc u + fc du)
  // distributed over the Y dot product,
  //   dE_d = sum_e y[e] . (w (dfc_d u[e] + fc du_d[e]))
  //        = w * (dfc_d * S0 + fc * Sd),
  // S0 = sum_e y[e] . u[e],  Sd = sum_e y[e] . du_d[e]; the four running
  // sums share one sweep over the planes, per lane, no horizontal ops.
  V s0 = V::zero();
  V s[3] = {V::zero(), V::zero(), V::zero()};
  for (int e = 0; e < g.nh; ++e) {
    const V yr = V::broadcast(g.y_re[e]);
    const V yi = V::broadcast(g.y_im[e]);
    const int o = e * kW;
    s0 = V::fma(yr, V::load(g.ur + o), s0);
    s0 = V::fma(yi, V::load(g.ui + o), s0);
    for (int d = 0; d < 3; ++d) {
      s[d] = V::fma(yr, V::load(g.du_re[d] + o), s[d]);
      s[d] = V::fma(yi, V::load(g.du_im[d] + o), s[d]);
    }
  }
  const V w = V::load(ck + kCkW * kW);
  const V fc = V::load(ck + kCkFc * kW);
  for (int d = 0; d < 3; ++d) {
    const V dfc = V::load(ck + (kCkDfc0 + d) * kW);
    (w * V::fma(dfc, s0, fc * s[d])).store_to(g.out + d * kW);
  }
}

}  // namespace ember::snap::simd
