// AVX-512 backend: 8 neighbor lanes per 512-bit register. Compiled with
// -mavx512f (per-file, see src/snap/CMakeLists.txt). Negation goes
// through subtraction because _mm512_xor_pd needs AVX-512DQ and this TU
// only requires the F foundation subset.

#include "snap/simd/kernels.hpp"

#if defined(EMBER_SNAP_HAVE_AVX512)

#include <immintrin.h>

#include "snap/simd/kernels_impl.hpp"

namespace ember::snap::simd {
namespace {

struct Vec8 {
  __m512d v;

  static constexpr int width = 8;

  static Vec8 load(const double* p) { return {_mm512_load_pd(p)}; }
  void store_to(double* p) const { _mm512_store_pd(p, v); }
  static Vec8 broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static Vec8 zero() { return {_mm512_setzero_pd()}; }
  static Vec8 neg(Vec8 a) {
    return {_mm512_sub_pd(_mm512_setzero_pd(), a.v)};
  }
  static Vec8 fma(Vec8 a, Vec8 b, Vec8 c) {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  static Vec8 fmsub(Vec8 a, Vec8 b, Vec8 c) {
    return {_mm512_fmsub_pd(a.v, b.v, c.v)};
  }
  friend Vec8 operator*(Vec8 a, Vec8 b) { return {_mm512_mul_pd(a.v, b.v)}; }
  friend Vec8 operator+(Vec8 a, Vec8 b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend Vec8 operator-(Vec8 a, Vec8 b) { return {_mm512_sub_pd(a.v, b.v)}; }
};

}  // namespace

const SimdOps& avx512_ops() {
  static const SimdOps ops{
      Vec8::width,
      [](const UiBlockArgs& args) { ui_block_impl<Vec8>(args); },
      [](const DeiBlockArgs& args) { dei_block_impl<Vec8>(args); },
  };
  return ops;
}

}  // namespace ember::snap::simd

#endif  // EMBER_SNAP_HAVE_AVX512
