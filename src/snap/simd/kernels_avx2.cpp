// AVX2 backend: 4 neighbor lanes per 256-bit register. Compiled with
// -mavx2 -mfma (per-file, see src/snap/CMakeLists.txt); guarded so a
// build that defines EMBER_SNAP_HAVE_AVX2 without the flags still fails
// loudly rather than emitting illegal instructions.

#include "snap/simd/kernels.hpp"

#if defined(EMBER_SNAP_HAVE_AVX2)

#include <immintrin.h>

#include "snap/simd/kernels_impl.hpp"

namespace ember::snap::simd {
namespace {

struct Vec4 {
  __m256d v;

  static constexpr int width = 4;

  static Vec4 load(const double* p) { return {_mm256_load_pd(p)}; }
  void store_to(double* p) const { _mm256_store_pd(p, v); }
  static Vec4 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Vec4 zero() { return {_mm256_setzero_pd()}; }
  static Vec4 neg(Vec4 a) {
    return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
  }
  static Vec4 fma(Vec4 a, Vec4 b, Vec4 c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  static Vec4 fmsub(Vec4 a, Vec4 b, Vec4 c) {
    return {_mm256_fmsub_pd(a.v, b.v, c.v)};
  }
  friend Vec4 operator*(Vec4 a, Vec4 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Vec4 operator+(Vec4 a, Vec4 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Vec4 operator-(Vec4 a, Vec4 b) { return {_mm256_sub_pd(a.v, b.v)}; }
};

}  // namespace

const SimdOps& avx2_ops() {
  static const SimdOps ops{
      Vec4::width,
      [](const UiBlockArgs& args) { ui_block_impl<Vec4>(args); },
      [](const DeiBlockArgs& args) { dei_block_impl<Vec4>(args); },
  };
  return ops;
}

}  // namespace ember::snap::simd

#endif  // EMBER_SNAP_HAVE_AVX2
