#pragma once

// Runtime ISA dispatch for the SNAP "V8" SIMD kernels.
//
// The Simd kernel variant batches the Wigner-U recursion and the Y : dU*
// adjoint contraction over blocks of neighbors, one neighbor per vector
// lane (4 for AVX2, 8 for AVX-512). Which backend runs is decided at
// runtime:
//
//   max_supported_isa()  CPUID probe of the executing machine, clamped to
//                        the backends this binary was built with (non-x86
//                        builds compile neither and always report Scalar).
//   choose_isa()         max_supported_isa() further clamped by the
//                        EMBER_SIMD environment variable
//                        ("avx512" | "avx2" | "scalar"); unknown values
//                        throw. The override can only lower the ISA —
//                        requesting AVX-512 on an AVX2 host yields AVX2.
//
// Scalar means "no SimdOps table": Bispectrum then executes the V7
// Symmetric code path unchanged, so EMBER_SIMD=scalar is bitwise
// identical to SnapKernel::Symmetric (pinned by
// tests/snap/test_simd_kernel.cpp).
//
// This header is intrinsics-free; immintrin.h is confined to the
// kernels_avx*.cpp translation units (enforced by ember_lint's
// simd-intrinsics-include rule).

namespace ember::snap::simd {

enum class SimdIsa {
  Scalar,  // no vector backend; Symmetric code path runs
  Avx2,    // 4 neighbor lanes per 256-bit register
  Avx512,  // 8 neighbor lanes per 512-bit register
};

[[nodiscard]] const char* to_string(SimdIsa isa);

// Neighbor lanes per vector register (1 for Scalar).
[[nodiscard]] int lane_width(SimdIsa isa);

// Best ISA the executing CPU *and* this binary support (cached probe).
[[nodiscard]] SimdIsa max_supported_isa();

// max_supported_isa() clamped by EMBER_SIMD; reads the environment on
// every call so tests can flip the override between kernel constructions.
[[nodiscard]] SimdIsa choose_isa();

struct SimdOps;

// Kernel table for a vector ISA, or nullptr for Scalar (callers fall
// back to the Symmetric path).
[[nodiscard]] const SimdOps* ops_for(SimdIsa isa);

}  // namespace ember::snap::simd
