#include "snap/simd/dispatch.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "snap/simd/kernels.hpp"

namespace ember::snap::simd {

const char* to_string(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Scalar:
      return "scalar";
    case SimdIsa::Avx2:
      return "avx2";
    case SimdIsa::Avx512:
      return "avx512";
  }
  return "scalar";
}

int lane_width(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Scalar:
      return 1;
    case SimdIsa::Avx2:
      return 4;
    case SimdIsa::Avx512:
      return 8;
  }
  return 1;
}

namespace {

SimdIsa probe_cpu() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(EMBER_SNAP_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f")) return SimdIsa::Avx512;
#endif
#if defined(EMBER_SNAP_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdIsa::Avx2;
  }
#endif
#endif
  return SimdIsa::Scalar;
}

}  // namespace

SimdIsa max_supported_isa() {
  static const SimdIsa isa = probe_cpu();
  return isa;
}

SimdIsa choose_isa() {
  const SimdIsa cap = max_supported_isa();
  const char* env = std::getenv("EMBER_SIMD");
  if (env == nullptr || *env == '\0') return cap;
  const std::string value(env);
  SimdIsa requested = SimdIsa::Scalar;
  if (value == "scalar") {
    requested = SimdIsa::Scalar;
  } else if (value == "avx2") {
    requested = SimdIsa::Avx2;
  } else if (value == "avx512") {
    requested = SimdIsa::Avx512;
  } else {
    throw Error("EMBER_SIMD must be 'avx512', 'avx2' or 'scalar' (got '" +
                value + "')");
  }
  // The override only lowers: a request above the machine/binary
  // capability clamps down instead of selecting an unrunnable backend.
  return static_cast<int>(requested) < static_cast<int>(cap) ? requested : cap;
}

const SimdOps* ops_for(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Scalar:
      return nullptr;
    case SimdIsa::Avx2:
#if defined(EMBER_SNAP_HAVE_AVX2)
      return &avx2_ops();
#else
      return nullptr;
#endif
    case SimdIsa::Avx512:
#if defined(EMBER_SNAP_HAVE_AVX512)
      return &avx512_ops();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

}  // namespace ember::snap::simd
