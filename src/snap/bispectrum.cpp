#include "bispectrum.hpp"

#include <algorithm>
#include <cmath>

#include "check/invariants.hpp"
#include "common/error.hpp"
#include "snap/simd/kernels.hpp"

namespace ember::snap {

Bispectrum::Bispectrum(const SnapParams& params)
    : params_(params), idx_(params.twojmax) {
  const int tj = params_.twojmax;
  EMBER_REQUIRE(params_.rcut > params_.rmin0, "rcut must exceed rmin0");

  rootpq_.resize(static_cast<std::size_t>(tj + 1) * (tj + 1), 0.0);
  for (int p = 1; p <= tj; ++p) {
    for (int q = 1; q <= tj; ++q) {
      rootpq_[static_cast<std::size_t>(p) * (tj + 1) + q] =
          std::sqrt(static_cast<double>(p) / q);
    }
  }

  utot_.resize(idx_.u_total());
  ulist_.resize(idx_.u_total());
  dulist_raw_.resize(idx_.u_total());
  dulist_.resize(idx_.u_total());
  zlist_.resize(idx_.z_total());
  ylist_.resize(idx_.u_total());
  blist_.resize(idx_.num_b());
  dblist_.resize(idx_.num_b());

  if (params_.kernel == SnapKernel::Simd) {
    // Resolve the backend once per instance: CPUID capability clamped by
    // EMBER_SIMD. With no vector backend (non-x86, EMBER_SIMD=scalar) the
    // instance runs the Symmetric code path unchanged.
    simd_isa_ = simd::choose_isa();
    simd_ops_ = simd::ops_for(simd_isa_);
    if (simd_ops_ == nullptr) simd_isa_ = simd::SimdIsa::Scalar;
  }

  if (half_kernel()) {
    const int nh = idx_.u_half_total();
    utot_half_re_.resize(nh);
    utot_half_im_.resize(nh);
    y_half_re_.resize(nh);
    y_half_im_.resize(nh);
    for (int d = 0; d < 3; ++d) {
      du_half_re_[d].resize(nh);
      du_half_im_[d].resize(nh);
    }
  }

  if (simd_active()) {
    const int nh = idx_.u_half_total();
    const std::size_t w = static_cast<std::size_t>(simd_ops_->width);
    simd_ck_.resize(static_cast<std::size_t>(simd::kCkSlots) * w);
    simd_wfc_.resize(w);
    simd_acc_re_.resize(static_cast<std::size_t>(nh) * w);
    simd_acc_im_.resize(static_cast<std::size_t>(nh) * w);
    for (int d = 0; d < 3; ++d) {
      simd_du_re_[d].resize(static_cast<std::size_t>(nh) * w);
      simd_du_im_[d].resize(static_cast<std::size_t>(nh) * w);
    }
    simd_out_.resize(3 * w);
    u_gather_re_.resize(nh);
    u_gather_im_.resize(nh);
  }

  // bzero: bispectrum of an isolated atom (self term only), obtained by
  // running the kernel itself on an empty neighbor set. compute_bi_impl
  // takes the subtraction choice explicitly, so the raw values are
  // measured without mutating params_.
  bzero_.assign(idx_.num_b(), 0.0);
  if (params_.bzero_flag) {
    compute_ui({}, {});
    compute_zi();
    compute_bi_impl(/*subtract_bzero=*/false);
    bzero_.assign(blist_.begin(), blist_.end());
  }
}

void Bispectrum::u_recursion(const CayleyKlein& ck, bool with_derivatives) {
  const int tj = params_.twojmax;
  const Cplx a = ck.a;
  const Cplx b = ck.b;
  const Cplx ac = conj(a);
  const Cplx mbc = -conj(b);

  ulist_[0] = {1.0, 0.0};
  if (with_derivatives) dulist_raw_[0] = DU{};

  // Two-term recursion over j (doubled): with row k' = ma, column k = mb,
  //   mb >= 1:  U^j[ma,mb] = sqrt(ma/mb)      a  U^{j-1}[ma-1,mb-1]
  //                        + sqrt((j-ma)/mb)  b  U^{j-1}[ma,  mb-1]
  //   mb == 0:  U^j[ma,0]  = sqrt(ma/j)    (-b*) U^{j-1}[ma-1,0]
  //                        + sqrt((j-ma)/j)  a*  U^{j-1}[ma,  0]
  // (derived from the SU(2) monomial generating function; pinned against
  // the closed form in tests/snap/test_wigner.cpp).
  for (int j = 1; j <= tj; ++j) {
    const int blk = idx_.u_block(j);
    const int pblk = idx_.u_block(j - 1);
    const int cs = j + 1;  // current row stride
    const int ps = j;      // previous row stride
    for (int mb = 0; mb <= j; ++mb) {
      const bool zero_col = (mb == 0);
      const Cplx cu = zero_col ? mbc : a;
      const Cplx cd = zero_col ? ac : b;
      const int pcol = zero_col ? 0 : mb - 1;
      const int denom = zero_col ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        Cplx u{};
        DU du{};
        if (ma > 0) {
          const double r =
              rootpq_[static_cast<std::size_t>(ma) * (tj + 1) + denom];
          const Cplx up = ulist_[pblk + (ma - 1) * ps + pcol];
          u += r * (cu * up);
          if (with_derivatives) {
            const DU& dup = dulist_raw_[pblk + (ma - 1) * ps + pcol];
            for (int d = 0; d < 3; ++d) {
              const Cplx dcu = zero_col ? -conj(ck.db[d]) : ck.da[d];
              du.d[d] += r * (dcu * up + cu * dup.d[d]);
            }
          }
        }
        if (ma < j) {
          const double r =
              rootpq_[static_cast<std::size_t>(j - ma) * (tj + 1) + denom];
          const Cplx up = ulist_[pblk + ma * ps + pcol];
          u += r * (cd * up);
          if (with_derivatives) {
            const DU& dup = dulist_raw_[pblk + ma * ps + pcol];
            for (int d = 0; d < 3; ++d) {
              const Cplx dcd = zero_col ? conj(ck.da[d]) : ck.db[d];
              du.d[d] += r * (dcd * up + cd * dup.d[d]);
            }
          }
        }
        ulist_[blk + ma * cs + mb] = u;
        if (with_derivatives) dulist_raw_[blk + ma * cs + mb] = du;
      }
    }
  }
}

void Bispectrum::u_half_recursion(const CayleyKlein& ck, double* ur,
                                  double* ui) const {
  const int tj = params_.twojmax;
  ur[0] = 1.0;
  ui[0] = 0.0;
  // Columns with 2*mb <= j only: column mb of level j reads column mb-1
  // (or 0) of level j-1, which the previous level's half range contains
  // (mb - 1 <= j/2 - 1 <= (j-1)/2), so the half recursion is closed.
  for (int j = 1; j <= tj; ++j) {
    const int blk = idx_.u_half_block(j);
    const int pblk = idx_.u_half_block(j - 1);
    const int hs = j / 2 + 1;        // current half row stride
    const int phs = (j - 1) / 2 + 1; // previous half row stride
    for (int mb = 0; mb <= j / 2; ++mb) {
      const bool zc = (mb == 0);
      const Cplx cu = zc ? -conj(ck.b) : ck.a;
      const Cplx cd = zc ? conj(ck.a) : ck.b;
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        double vre = 0.0;
        double vim = 0.0;
        if (ma > 0) {
          const double r =
              rootpq_[static_cast<std::size_t>(ma) * (tj + 1) + denom];
          const int p = pblk + (ma - 1) * phs + pcol;
          vre += r * (cu.re * ur[p] - cu.im * ui[p]);
          vim += r * (cu.re * ui[p] + cu.im * ur[p]);
        }
        if (ma < j) {
          const double r =
              rootpq_[static_cast<std::size_t>(j - ma) * (tj + 1) + denom];
          const int p = pblk + ma * phs + pcol;
          vre += r * (cd.re * ur[p] - cd.im * ui[p]);
          vim += r * (cd.re * ui[p] + cd.im * ur[p]);
        }
        const int e = blk + ma * hs + mb;
        ur[e] = vre;
        ui[e] = vim;
      }
    }
  }
}

void Bispectrum::mirror_half_to_full(const double* hre, const double* him,
                                     std::vector<Cplx>& full) const {
  for (int j = 0; j <= params_.twojmax; ++j) {
    const int blk = idx_.u_block(j);
    const int hblk = idx_.u_half_block(j);
    const int cs = j + 1;
    const int hs = j / 2 + 1;
    for (int ma = 0; ma <= j; ++ma) {
      for (int mb = 0; mb <= j / 2; ++mb) {
        const int h = hblk + ma * hs + mb;
        full[blk + ma * cs + mb] = {hre[h], him[h]};
      }
      for (int mb = j / 2 + 1; mb <= j; ++mb) {
        const int h = hblk + (j - ma) * hs + (j - mb);
        const double sign = ((ma + mb) % 2 == 0) ? 1.0 : -1.0;
        full[blk + ma * cs + mb] = {sign * hre[h], -sign * him[h]};
      }
    }
  }
}

void Bispectrum::compute_ui_symmetric(std::span<const Vec3> rij,
                                      std::span<const double> wj) {
  const int nh = idx_.u_half_total();
  const int nn = static_cast<int>(rij.size());
  nnbor_cached_ = nn;
  ck_cache_.resize(nn);
  wj_cache_.resize(nn);
  ucache_re_.resize(static_cast<std::size_t>(nn) * nh);
  ucache_im_.resize(static_cast<std::size_t>(nn) * nh);
  std::fill(utot_half_re_.begin(), utot_half_re_.end(), 0.0);
  std::fill(utot_half_im_.begin(), utot_half_im_.end(), 0.0);

  for (int k = 0; k < nn; ++k) {
    ck_cache_[k] = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                 params_.rmin0, params_.switch_flag);
    wj_cache_[k] = wj.empty() ? 1.0 : wj[k];
    double* ur = ucache_re_.data() + static_cast<std::size_t>(k) * nh;
    double* ui = ucache_im_.data() + static_cast<std::size_t>(k) * nh;
    u_half_recursion(ck_cache_[k], ur, ui);
    const double w = wj_cache_[k] * ck_cache_[k].fc;
    for (int e = 0; e < nh; ++e) {
      utot_half_re_[e] += w * ur[e];
      utot_half_im_[e] += w * ui[e];
    }
  }

  // Self contribution on the stored part of the diagonal; the mirrored
  // diagonal elements (ma = mb > j/2) inherit it through the expansion
  // below, since a real diagonal value is its own mirror image.
  for (int j = 0; j <= params_.twojmax; ++j) {
    for (int ma = 0; ma <= j / 2; ++ma) {
      utot_half_re_[idx_.u_half_index(j, ma, ma)] += params_.wself;
    }
  }

  mirror_half_to_full(utot_half_re_.data(), utot_half_im_.data(), utot_);
}

void Bispectrum::pack_ck_lane(int k0, int lane, int width) {
  // Padded lanes repeat the last active neighbor's mapping: the recursion
  // stays finite and the zeroed weight slots erase their contributions.
  const bool active = k0 + lane < nnbor_cached_;
  const int k = active ? k0 + lane : nnbor_cached_ - 1;
  const CayleyKlein& ck = ck_cache_[k];
  double* s = simd_ck_.data();
  s[simd::kCkARe * width + lane] = ck.a.re;
  s[simd::kCkAIm * width + lane] = ck.a.im;
  s[simd::kCkBRe * width + lane] = ck.b.re;
  s[simd::kCkBIm * width + lane] = ck.b.im;
  for (int d = 0; d < 3; ++d) {
    s[(simd::kCkDaRe0 + d) * width + lane] = ck.da[d].re;
    s[(simd::kCkDaIm0 + d) * width + lane] = ck.da[d].im;
    s[(simd::kCkDbRe0 + d) * width + lane] = ck.db[d].re;
    s[(simd::kCkDbIm0 + d) * width + lane] = ck.db[d].im;
    s[(simd::kCkDfc0 + d) * width + lane] = ck.dfc[d];
  }
  s[simd::kCkFc * width + lane] = ck.fc;
  s[simd::kCkW * width + lane] = active ? wj_cache_[k] : 0.0;
  simd_wfc_[lane] = active ? wj_cache_[k] * ck.fc : 0.0;
}

void Bispectrum::compute_ui_simd(std::span<const Vec3> rij,
                                 std::span<const double> wj) {
  const int nh = idx_.u_half_total();
  const int nn = static_cast<int>(rij.size());
  const int w = simd_ops_->width;
  const std::size_t plane = static_cast<std::size_t>(nh) * w;
  nnbor_cached_ = nn;
  ck_cache_.resize(nn);
  wj_cache_.resize(nn);
  const int nblk = (nn + w - 1) / w;
  ucache_re_.resize(static_cast<std::size_t>(nblk) * plane);
  ucache_im_.resize(static_cast<std::size_t>(nblk) * plane);
  std::fill(simd_acc_re_.begin(), simd_acc_re_.end(), 0.0);
  std::fill(simd_acc_im_.begin(), simd_acc_im_.end(), 0.0);
  EMBER_CHECK(EMBER_REQUIRE(
      is_aligned(ucache_re_.data()) && is_aligned(ucache_im_.data()) &&
          is_aligned(simd_acc_re_.data()) && is_aligned(simd_acc_im_.data()),
      "SNAP SIMD planes must be 64-byte aligned"));

  for (int k = 0; k < nn; ++k) {
    ck_cache_[k] = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                 params_.rmin0, params_.switch_flag);
    wj_cache_[k] = wj.empty() ? 1.0 : wj[k];
  }

  for (int b = 0; b < nblk; ++b) {
    for (int lane = 0; lane < w; ++lane) pack_ck_lane(b * w, lane, w);
    simd::UiBlockArgs args;
    args.twojmax = params_.twojmax;
    args.half_block = idx_.u_half_block_data();
    args.nh = nh;
    args.rootpq = rootpq_.data();
    args.a_re = simd_ck_.data() + simd::kCkARe * w;
    args.a_im = simd_ck_.data() + simd::kCkAIm * w;
    args.b_re = simd_ck_.data() + simd::kCkBRe * w;
    args.b_im = simd_ck_.data() + simd::kCkBIm * w;
    args.wfc = simd_wfc_.data();
    args.ur = ucache_re_.data() + static_cast<std::size_t>(b) * plane;
    args.ui = ucache_im_.data() + static_cast<std::size_t>(b) * plane;
    args.acc_re = simd_acc_re_.data();
    args.acc_im = simd_acc_im_.data();
    simd_ops_->ui_block(args);
  }

  // Reduce the lane accumulator into the element-major half planes (the
  // neighbor sum is re-associated across lanes; difference vs Symmetric
  // is pure summation-order rounding, within the 1e-12 parity budget).
  for (int e = 0; e < nh; ++e) {
    double sr = 0.0;
    double si = 0.0;
    for (int lane = 0; lane < w; ++lane) {
      sr += simd_acc_re_[static_cast<std::size_t>(e) * w + lane];
      si += simd_acc_im_[static_cast<std::size_t>(e) * w + lane];
    }
    utot_half_re_[e] = sr;
    utot_half_im_[e] = si;
  }

  for (int j = 0; j <= params_.twojmax; ++j) {
    for (int ma = 0; ma <= j / 2; ++ma) {
      utot_half_re_[idx_.u_half_index(j, ma, ma)] += params_.wself;
    }
  }

  mirror_half_to_full(utot_half_re_.data(), utot_half_im_.data(), utot_);
}

void Bispectrum::compute_ui(std::span<const Vec3> rij,
                            std::span<const double> wj) {
  EMBER_REQUIRE(wj.empty() || wj.size() == rij.size(),
                "weight array size mismatch");
  have_z_ = false;

  if (half_kernel()) {
    if (simd_active() && !rij.empty()) {
      compute_ui_simd(rij, wj);
    } else {
      compute_ui_symmetric(rij, wj);
    }
    return;
  }

  std::fill(utot_.begin(), utot_.end(), Cplx{});

  // Self contribution: wself on the diagonal of every block.
  for (int j = 0; j <= params_.twojmax; ++j) {
    for (int ma = 0; ma <= j; ++ma) {
      utot_[idx_.u_index(j, ma, ma)] += Cplx{params_.wself, 0.0};
    }
  }

  for (std::size_t k = 0; k < rij.size(); ++k) {
    const CayleyKlein ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                         params_.rmin0, params_.switch_flag);
    u_recursion(ck, /*with_derivatives=*/false);
    const double w = (wj.empty() ? 1.0 : wj[k]) * ck.fc;
    for (int i = 0; i < idx_.u_total(); ++i) utot_[i] += w * ulist_[i];
  }
}

Cplx Bispectrum::z_element(const ZTriple& t, int ma, int mb) const {
  const int j1 = t.j1;
  const int j2 = t.j2;
  const int s = (t.j1 + t.j2 - t.j) / 2;
  const Cplx* u1 = utot_.data() + idx_.u_block(j1);
  const Cplx* u2 = utot_.data() + idx_.u_block(j2);
  const int s1 = j1 + 1;
  const int s2 = j2 + 1;

  Cplx z{};
  const int ra_lo = std::max(0, ma + s - j2);
  const int ra_hi = std::min(j1, ma + s);
  const int cb_lo = std::max(0, mb + s - j2);
  const int cb_hi = std::min(j1, mb + s);
  for (int ma1 = ra_lo; ma1 <= ra_hi; ++ma1) {
    const int ma2 = ma + s - ma1;
    const double cg_row = idx_.cg(t, ma1, ma2);
    if (cg_row == 0.0) continue;
    Cplx rowsum{};
    for (int mb1 = cb_lo; mb1 <= cb_hi; ++mb1) {
      const int mb2 = mb + s - mb1;
      const double cg_col = idx_.cg(t, mb1, mb2);
      if (cg_col == 0.0) continue;
      rowsum += cg_col * (u1[ma1 * s1 + mb1] * u2[ma2 * s2 + mb2]);
    }
    z += cg_row * rowsum;
  }
  return z;
}

Cplx Bispectrum::z_element_aligned(const ZTriple& t, int ma, int mb) const {
  const int j1 = t.j1;
  const int j2 = t.j2;
  const int s = (t.j1 + t.j2 - t.j) / 2;
  const Cplx* u1 = utot_.data() + idx_.u_block(j1);
  const Cplx* u2 = utot_.data() + idx_.u_block(j2);
  const int s1 = j1 + 1;
  const int s2 = j2 + 1;
  const double* cgr = idx_.aligned_cg_row(t, ma);
  const double* cgc = idx_.aligned_cg_row(t, mb);

  Cplx z{};
  const int ra_lo = std::max(0, ma + s - j2);
  const int ra_hi = std::min(j1, ma + s);
  const int cb_lo = std::max(0, mb + s - j2);
  const int cb_hi = std::min(j1, mb + s);
  for (int ma1 = ra_lo; ma1 <= ra_hi; ++ma1) {
    const double cg_row = cgr[ma1];
    if (cg_row == 0.0) continue;
    const Cplx* u1row = u1 + ma1 * s1;
    const Cplx* u2row = u2 + (ma + s - ma1) * s2 + s;
    Cplx rowsum{};
    for (int mb1 = cb_lo; mb1 <= cb_hi; ++mb1) {
      // u2 column mb2 = mb + s - mb1; u2row is pre-offset by s so the
      // access is u2row[mb - mb1].
      rowsum += cgc[mb1] * (u1row[mb1] * u2row[mb - mb1]);
    }
    z += cg_row * rowsum;
  }
  return z;
}

void Bispectrum::compute_zi() {
  for (const auto& t : idx_.z_triples()) {
    Cplx* z = zlist_.data() + t.idxz_u;
    const int n = t.j + 1;
    for (int ma = 0; ma < n; ++ma) {
      for (int mb = 0; mb < n; ++mb) {
        z[ma * n + mb] = z_element(t, ma, mb);
      }
    }
  }
  have_z_ = true;
}

void Bispectrum::compute_bi() { compute_bi_impl(params_.bzero_flag); }

void Bispectrum::compute_bi_impl(bool subtract_bzero) {
  EMBER_REQUIRE(have_z_, "compute_bi requires compute_zi");
  int l = 0;
  for (const auto& bt : idx_.b_triples()) {
    const int zi = idx_.z_index(bt.j1, bt.j2, bt.j);
    const ZTriple& t = idx_.z_triples()[zi];
    const Cplx* z = zlist_.data() + t.idxz_u;
    const Cplx* uj = utot_.data() + idx_.u_block(bt.j);
    const int n = bt.j + 1;
    double sum = 0.0;
    for (int e = 0; e < n * n; ++e) sum += re_mul_conj(z[e], uj[e]);
    blist_[l] = sum - (subtract_bzero ? bzero_[l] : 0.0);
    ++l;
  }
}

void Bispectrum::compute_yi(std::span<const double> beta) {
  EMBER_REQUIRE(static_cast<int>(beta.size()) == idx_.num_b(),
                "beta size must equal the number of bispectrum components");
  const auto& triples = idx_.z_triples();
  yi_coeff_scratch_.resize(triples.size());
  for (std::size_t i = 0; i < triples.size(); ++i) {
    yi_coeff_scratch_[i] = beta[triples[i].idxb] * triples[i].beta_scale;
  }
  compute_yi_coeffs(yi_coeff_scratch_);
}

void Bispectrum::compute_yi_coeffs(std::span<const double> coeffs) {
  const auto& triples = idx_.z_triples();
  EMBER_REQUIRE(coeffs.size() == triples.size(),
                "coefficient array must have one entry per coupling triple");

  if (half_kernel()) {
    // Half-column Y sweep: the z element of a dropped column follows the
    // same conjugation mirror as U, so only 2*mb <= t.j is accumulated.
    std::fill(y_half_re_.begin(), y_half_re_.end(), 0.0);
    std::fill(y_half_im_.begin(), y_half_im_.end(), 0.0);
    for (std::size_t i = 0; i < triples.size(); ++i) {
      const ZTriple& t = triples[i];
      const double coeff = coeffs[i];
      if (coeff == 0.0) continue;
      const int hblk = idx_.u_half_block(t.j);
      const int hs = t.j / 2 + 1;
      for (int ma = 0; ma <= t.j; ++ma) {
        for (int mb = 0; mb <= t.j / 2; ++mb) {
          const Cplx z = z_element_aligned(t, ma, mb);
          const int e = hblk + ma * hs + mb;
          y_half_re_[e] += coeff * z.re;
          y_half_im_[e] += coeff * z.im;
        }
      }
    }
    // Keep the full-range ylist_ mirror valid (energy_from_yi and any
    // full-range dU contraction read it) ...
    mirror_half_to_full(y_half_re_.data(), y_half_im_.data(), ylist_);
    // ... then fold the contraction weights into the half planes, so
    // compute_deidrj is a pure dot product over the half range.
    const auto& hw = idx_.half_weights();
    for (int e = 0; e < idx_.u_half_total(); ++e) {
      y_half_re_[e] *= hw[e];
      y_half_im_[e] *= hw[e];
    }
    return;
  }

  std::fill(ylist_.begin(), ylist_.end(), Cplx{});
  for (std::size_t i = 0; i < triples.size(); ++i) {
    const ZTriple& t = triples[i];
    const double coeff = coeffs[i];
    if (coeff == 0.0) continue;
    Cplx* y = ylist_.data() + idx_.u_block(t.j);
    const int n = t.j + 1;
    for (int ma = 0; ma < n; ++ma) {
      for (int mb = 0; mb < n; ++mb) {
        y[ma * n + mb] += coeff * z_element(t, ma, mb);
      }
    }
  }
}

void Bispectrum::compute_duidrj(const Vec3& rij, double wj) {
  const CayleyKlein ck = map_to_sphere(rij, params_.rcut, params_.rfac0,
                                       params_.rmin0, params_.switch_flag);
  u_recursion(ck, /*with_derivatives=*/true);
  for (int i = 0; i < idx_.u_total(); ++i) {
    for (int d = 0; d < 3; ++d) {
      dulist_[i].d[d] =
          wj * (ck.dfc[d] * ulist_[i] + ck.fc * dulist_raw_[i].d[d]);
    }
  }
  du_half_valid_ = false;
}

void Bispectrum::compute_duidrj_cached(int k) {
  EMBER_REQUIRE(half_kernel(),
                "compute_duidrj_cached requires the Symmetric or Simd kernel");
  EMBER_REQUIRE(k >= 0 && k < nnbor_cached_,
                "neighbor index outside the cached compute_ui set");
  const int tj = params_.twojmax;
  const int nh = idx_.u_half_total();
  const CayleyKlein& ck = ck_cache_[k];
  const double* ur = ucache_re_.data() + static_cast<std::size_t>(k) * nh;
  const double* ui = ucache_im_.data() + static_cast<std::size_t>(k) * nh;
  if (simd_active()) {
    // The Simd compute_ui cached bare U lane-interleaved; gather neighbor
    // k's lane back into a contiguous plane so the scalar derivative
    // recursion below runs unmodified.
    const int w = simd_ops_->width;
    const std::size_t base =
        static_cast<std::size_t>(k / w) * nh * w + static_cast<std::size_t>(k % w);
    for (int e = 0; e < nh; ++e) {
      u_gather_re_[e] = ucache_re_[base + static_cast<std::size_t>(e) * w];
      u_gather_im_[e] = ucache_im_[base + static_cast<std::size_t>(e) * w];
    }
    ur = u_gather_re_.data();
    ui = u_gather_im_.data();
  }

  // Derivative-only recursion over the half range: the bare U values the
  // chain rule needs come from the cache filled by compute_ui, so the
  // duplicate O(J^3) U recursion of the Naive scheme disappears.
  for (int d = 0; d < 3; ++d) {
    du_half_re_[d][0] = 0.0;
    du_half_im_[d][0] = 0.0;
  }
  for (int j = 1; j <= tj; ++j) {
    const int blk = idx_.u_half_block(j);
    const int pblk = idx_.u_half_block(j - 1);
    const int hs = j / 2 + 1;
    const int phs = (j - 1) / 2 + 1;
    for (int mb = 0; mb <= j / 2; ++mb) {
      const bool zc = (mb == 0);
      const Cplx cu = zc ? -conj(ck.b) : ck.a;
      const Cplx cd = zc ? conj(ck.a) : ck.b;
      Cplx dcu[3];
      Cplx dcd[3];
      for (int d = 0; d < 3; ++d) {
        dcu[d] = zc ? -conj(ck.db[d]) : ck.da[d];
        dcd[d] = zc ? conj(ck.da[d]) : ck.db[d];
      }
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        Cplx dv[3]{};
        if (ma > 0) {
          const double r =
              rootpq_[static_cast<std::size_t>(ma) * (tj + 1) + denom];
          const int p = pblk + (ma - 1) * phs + pcol;
          const Cplx up{ur[p], ui[p]};
          for (int d = 0; d < 3; ++d) {
            const Cplx dup{du_half_re_[d][p], du_half_im_[d][p]};
            dv[d] += r * (dcu[d] * up + cu * dup);
          }
        }
        if (ma < j) {
          const double r =
              rootpq_[static_cast<std::size_t>(j - ma) * (tj + 1) + denom];
          const int p = pblk + ma * phs + pcol;
          const Cplx up{ur[p], ui[p]};
          for (int d = 0; d < 3; ++d) {
            const Cplx dup{du_half_re_[d][p], du_half_im_[d][p]};
            dv[d] += r * (dcd[d] * up + cd * dup);
          }
        }
        const int e = blk + ma * hs + mb;
        for (int d = 0; d < 3; ++d) {
          du_half_re_[d][e] = dv[d].re;
          du_half_im_[d][e] = dv[d].im;
        }
      }
    }
  }

  // Product rule d(w fc u)/dr = w (dfc u + fc du), vectorized per plane.
  const double w = wj_cache_[k];
  const double fc = ck.fc;
  for (int d = 0; d < 3; ++d) {
    const double dfc = ck.dfc[d];
    double* dre = du_half_re_[d].data();
    double* dim = du_half_im_[d].data();
    for (int e = 0; e < nh; ++e) {
      dre[e] = w * (dfc * ur[e] + fc * dre[e]);
      dim[e] = w * (dfc * ui[e] + fc * dim[e]);
    }
  }
  du_half_valid_ = true;
}

Vec3 Bispectrum::compute_deidrj() const {
  if (du_half_valid_) {
    // Half-range contraction: compute_yi pre-folded the half_weight table
    // into the Y planes, so each dimension is a pure 2-plane dot product.
    const int nh = idx_.u_half_total();
    Vec3 de;
    for (int d = 0; d < 3; ++d) {
      const double* dre = du_half_re_[d].data();
      const double* dim = du_half_im_[d].data();
      double sum = 0.0;
      for (int e = 0; e < nh; ++e) {
        sum += y_half_re_[e] * dre[e] + y_half_im_[e] * dim[e];
      }
      de[d] = sum;
    }
    return de;
  }

  Vec3 de;
  for (int i = 0; i < idx_.u_total(); ++i) {
    const Cplx y = ylist_[i];
    de.x += re_mul_conj(y, dulist_[i].d[0]);
    de.y += re_mul_conj(y, dulist_[i].d[1]);
    de.z += re_mul_conj(y, dulist_[i].d[2]);
  }
  // No factor 2: the Y accumulation already contains all three U-slot
  // dependency paths of every B component (direct + two permuted), so the
  // full-matrix contraction IS the complete chain rule. (Codes that sum
  // only half the (ma,mb) range restore the other half with a factor 2 —
  // the half-range branch above does exactly that through the
  // half_weight table.)
  return de;
}

void Bispectrum::compute_deidrj_all(std::span<Vec3> de) {
  EMBER_REQUIRE(half_kernel(),
                "compute_deidrj_all requires the Symmetric or Simd kernel");
  EMBER_REQUIRE(static_cast<int>(de.size()) >= nnbor_cached_,
                "force span smaller than the cached neighbor set");
  if (!simd_active()) {
    for (int k = 0; k < nnbor_cached_; ++k) {
      compute_duidrj_cached(k);
      de[k] = compute_deidrj();
    }
    return;
  }

  const int nh = idx_.u_half_total();
  const int w = simd_ops_->width;
  const std::size_t plane = static_cast<std::size_t>(nh) * w;
  const int nblk = (nnbor_cached_ + w - 1) / w;
  EMBER_CHECK(EMBER_REQUIRE(
      is_aligned(y_half_re_.data()) && is_aligned(simd_du_re_[0].data()),
      "SNAP SIMD planes must be 64-byte aligned"));

  for (int b = 0; b < nblk; ++b) {
    for (int lane = 0; lane < w; ++lane) pack_ck_lane(b * w, lane, w);
    simd::DeiBlockArgs args;
    args.twojmax = params_.twojmax;
    args.half_block = idx_.u_half_block_data();
    args.nh = nh;
    args.rootpq = rootpq_.data();
    args.ck = simd_ck_.data();
    args.ur = ucache_re_.data() + static_cast<std::size_t>(b) * plane;
    args.ui = ucache_im_.data() + static_cast<std::size_t>(b) * plane;
    for (int d = 0; d < 3; ++d) {
      args.du_re[d] = simd_du_re_[d].data();
      args.du_im[d] = simd_du_im_[d].data();
    }
    args.y_re = y_half_re_.data();
    args.y_im = y_half_im_.data();
    args.out = simd_out_.data();
    simd_ops_->dei_block(args);
    const int active = std::min(w, nnbor_cached_ - b * w);
    for (int lane = 0; lane < active; ++lane) {
      de[b * w + lane] = Vec3{simd_out_[0 * w + lane],
                              simd_out_[1 * w + lane],
                              simd_out_[2 * w + lane]};
    }
  }
  // The lane-interleaved dU scratch is not the scalar half layout; keep
  // compute_deidrj from reading it.
  du_half_valid_ = false;
}

void Bispectrum::compute_dbidrj() {
  EMBER_REQUIRE(have_z_, "compute_dbidrj requires compute_zi");
  int l = 0;
  for (const auto& bt : idx_.b_triples()) {
    const int j1 = bt.j1;
    const int j2 = bt.j2;
    const int j = bt.j;
    Vec3 db;
    // Direct term  Z^{j}_{j1 j2} : dU*_j  and the two permuted terms of
    // paper eq. (6); permuted Z's carry the dimension ratio
    // (2j+1)/(2j_target+1) — see indexing.cpp for the derivation note.
    struct Term {
      int za, zb, ztarget;
      double scale;
    };
    const Term terms[3] = {
        {j1, j2, j, 1.0},
        {j, j2, j1, static_cast<double>(j + 1) / (j1 + 1)},
        {j, j1, j2, static_cast<double>(j + 1) / (j2 + 1)},
    };
    for (const auto& term : terms) {
      const ZTriple& t =
          idx_.z_triples()[idx_.z_index(term.za, term.zb, term.ztarget)];
      const Cplx* z = zlist_.data() + t.idxz_u;
      const DU* du = dulist_.data() + idx_.u_block(term.ztarget);
      const int n = term.ztarget + 1;
      Vec3 part;
      for (int e = 0; e < n * n; ++e) {
        part.x += re_mul_conj(z[e], du[e].d[0]);
        part.y += re_mul_conj(z[e], du[e].d[1]);
        part.z += re_mul_conj(z[e], du[e].d[2]);
      }
      db += term.scale * part;
    }
    // Full-matrix contraction of all three chain-rule terms: no factor 2
    // (see compute_deidrj).
    dblist_[l] = db;
    ++l;
  }
}

double Bispectrum::energy_from_yi(double beta0,
                                  std::span<const double> beta) const {
  double sum = 0.0;
  for (int i = 0; i < idx_.u_total(); ++i) {
    sum += re_mul_conj(ylist_[i], utot_[i]);
  }
  double e = beta0 + sum / 3.0;
  if (params_.bzero_flag) {
    for (int l = 0; l < idx_.num_b(); ++l) e -= beta[l] * bzero_[l];
  }
  return e;
}

double Bispectrum::energy(double beta0, std::span<const double> beta) const {
  EMBER_REQUIRE(static_cast<int>(beta.size()) == idx_.num_b(),
                "beta size must equal the number of bispectrum components");
  double e = beta0;
  for (int l = 0; l < idx_.num_b(); ++l) e += beta[l] * blist_[l];
  return e;
}

// ---- analytic FLOP estimates -------------------------------------------
//
// A complex multiply counts 6 flops, complex add 2, real*complex 2.
// Constants below were chosen by counting the operations in the loops; the
// paper's own numbers come from measured FLOP counters, so these serve the
// same role (converting measured time into a FLOP rate). The Symmetric
// kernel counts only the half column range it executes, the mirror
// expansions, and the recursion-free cached dU pass.

namespace {
double z_sweep_flops(const SnapIndex& idx, bool canonical_only,
                     bool half_columns) {
  double total = 0.0;
  for (const auto& t : idx.z_triples()) {
    if (canonical_only && t.j < t.j1) continue;
    const int s = (t.j1 + t.j2 - t.j) / 2;
    const int n = t.j + 1;
    const int mb_max = half_columns ? t.j / 2 : t.j;
    double per_matrix = 0.0;
    for (int ma = 0; ma < n; ++ma) {
      const int rlo = std::max(0, ma + s - t.j2);
      const int rhi = std::min(t.j1, ma + s);
      const double rows = rhi - rlo + 1;
      for (int mb = 0; mb <= mb_max; ++mb) {
        const int clo = std::max(0, mb + s - t.j2);
        const int chi = std::min(t.j1, mb + s);
        const double cols = chi - clo + 1;
        // inner: cplx mul + scale + add = 10 flops, row finish = 4
        per_matrix += rows * (cols * 10.0 + 4.0);
      }
    }
    total += per_matrix;
  }
  return total;
}

double z_half_outputs(const SnapIndex& idx) {
  double total = 0.0;
  for (const auto& t : idx.z_triples()) {
    total += static_cast<double>(t.j + 1) * (t.j / 2 + 1);
  }
  return total;
}
}  // namespace

double Bispectrum::flops_ui(int nnbor) const {
  if (half_kernel()) {
    // Also the Simd kernel's count: lanes execute the same recursion, and
    // padded-lane work is *not* counted — fraction-of-peak readouts stay
    // honest about useful flops.
    // mapping ~60, half recursion ~22 + accumulation 4 per half element,
    // plus the one-off mirror expansion (~2 per full element).
    return static_cast<double>(nnbor) *
               (60.0 + 26.0 * static_cast<double>(idx_.u_half_total())) +
           2.0 * static_cast<double>(idx_.u_total());
  }
  // mapping ~60, recursion ~22 per element, accumulation 4 per element
  return static_cast<double>(nnbor) *
         (60.0 + 26.0 * static_cast<double>(idx_.u_total()));
}

double Bispectrum::flops_zi() const {
  return z_sweep_flops(idx_, false, false);
}

double Bispectrum::flops_bi() const {
  double total = 0.0;
  for (const auto& bt : idx_.b_triples()) {
    total += 4.0 * (bt.j + 1) * (bt.j + 1);
  }
  return total;
}

double Bispectrum::flops_yi() const {
  if (half_kernel()) {
    // half-column z sweep + accumulation into the half planes (4 per
    // produced element) + mirror into ylist_ (~2 per full element).
    return z_sweep_flops(idx_, false, true) + 4.0 * z_half_outputs(idx_) +
           2.0 * static_cast<double>(idx_.u_total());
  }
  // z sweep + accumulation into y (4 flops per produced element)
  return z_sweep_flops(idx_, false, false) + 4.0 * idx_.z_total();
}

double Bispectrum::flops_duidrj_full() const {
  // recursion with derivatives: ~22 base + 3 dims * 16, plus product rule
  return 60.0 + (22.0 + 48.0 + 12.0) * static_cast<double>(idx_.u_total());
}

double Bispectrum::flops_duidrj() const {
  if (simd_active()) {
    // V8 fuses the product rule into the contraction (see flops_deidrj);
    // the dU pass is the bare derivative recursion alone.
    return 48.0 * static_cast<double>(idx_.u_half_total());
  }
  if (half_kernel()) {
    // cached scheme: no mapping, no U recursion; derivative recursion
    // (3 dims * 16) + product rule 12, over the half range only.
    return (48.0 + 12.0) * static_cast<double>(idx_.u_half_total());
  }
  return flops_duidrj_full();
}

double Bispectrum::flops_deidrj() const {
  if (simd_active()) {
    // fused pass: S0 (4) + three Sd dots (12) per half element.
    return 16.0 * static_cast<double>(idx_.u_half_total());
  }
  if (half_kernel()) {
    return 12.0 * static_cast<double>(idx_.u_half_total());
  }
  return 12.0 * static_cast<double>(idx_.u_total());
}

double Bispectrum::flops_dbidrj() const {
  double total = 0.0;
  for (const auto& bt : idx_.b_triples()) {
    const double nj = (bt.j + 1) * (bt.j + 1);
    const double nj1 = (bt.j1 + 1) * (bt.j1 + 1);
    const double nj2 = (bt.j2 + 1) * (bt.j2 + 1);
    total += 12.0 * (nj + nj1 + nj2);
  }
  return total;
}

double Bispectrum::flops_adjoint_atom(int nnbor) const {
  return flops_ui(nnbor) + flops_yi() +
         nnbor * (flops_duidrj() + flops_deidrj());
}

}  // namespace ember::snap
