#pragma once

// TestSNAP: the standalone kernel-optimization study.
//
// The companion paper (Gayatri et al., arXiv:2011.12875, summarized in the
// deck and underpinning Table I / Figs. 2-3) built a proxy app to iterate
// on the SNAP force kernel outside of full LAMMPS. This is the CPU
// analogue: eight variants of the same force computation, each layering
// one optimization of the paper's narrative onto the previous:
//
//   V0 Baseline    Listing-1 order; jagged per-j containers allocated
//                  inside the atom loop; Z stored (O(J^5)); per-neighbor
//                  dB (O(J^5) work each).
//   V1 Staged      kernel decomposition (Listing 2): per-stage sweeps over
//                  an atom batch with pre-allocated jagged storage.
//   V2 Flattened   jagged arrays -> flat offset-indexed buffers.
//   V3 Adjoint     the §IV refactorization: Y instead of Z/dB; O(J^3)
//                  storage, O(J^3) per-neighbor force work.
//   V4 Fused       dU recursion fused with the Y contraction (no dU
//                  store; the paper's kernel-fusion step).
//   V5 HalfMb      conjugation symmetry halves the U/dU column range in
//                  the contraction ("symmetrized layouts").
//   V6 SplitSoA    split re/im arrays in the hot recursion (the paper's
//                  data-layout/AoSoA step, in its CPU form).
//   V7 CachedCk    Cayley-Klein mapping cached per neighbor across the
//                  accumulation and force passes (redundant-work removal).
//
// Every variant produces identical per-atom force sums (pinned by tests);
// run() reports the grind time in the paper's figure of merit.

#include <memory>
#include <vector>

#include "common/vec3.hpp"
#include "snap/bispectrum.hpp"

namespace ember::snap {

enum class TestSnapVariant {
  V0_Baseline,
  V1_Staged,
  V2_Flattened,
  V3_Adjoint,
  V4_Fused,
  V5_HalfMb,
  V6_SplitSoA,
  V7_CachedCk,
};

inline constexpr TestSnapVariant kAllTestSnapVariants[] = {
    TestSnapVariant::V0_Baseline, TestSnapVariant::V1_Staged,
    TestSnapVariant::V2_Flattened, TestSnapVariant::V3_Adjoint,
    TestSnapVariant::V4_Fused,     TestSnapVariant::V5_HalfMb,
    TestSnapVariant::V6_SplitSoA,  TestSnapVariant::V7_CachedCk,
};

const char* to_string(TestSnapVariant v);

class TestSnap {
 public:
  // Synthetic workload matching the companion paper's setup: natoms
  // neighborhoods of nnbor random neighbors each, random coefficients.
  TestSnap(const SnapParams& params, int natoms, int nnbor,
           std::uint64_t seed = 2021);

  [[nodiscard]] const SnapParams& params() const { return params_; }
  [[nodiscard]] int natoms() const { return natoms_; }
  [[nodiscard]] int nnbor() const { return nnbor_; }

  // Execute one full force computation with the given variant; returns
  // elapsed seconds. Fills forces() with the per-atom sum of dE_i/dr_k.
  double run(TestSnapVariant variant);

  // Grind time [s / atom-step] averaged over `repeats` runs.
  double grind_time(TestSnapVariant variant, int repeats = 3);

  [[nodiscard]] std::span<const Vec3> forces() const { return forces_; }

 private:
  void run_baseline();                  // V0
  void run_staged(bool flattened);      // V1 / V2
  void run_adjoint();                   // V3
  void run_fused(int level);            // V4 (0), V5 (1), V6 (2), V7 (3)

  SnapParams params_;
  SnapIndex idx_;
  int natoms_;
  int nnbor_;
  std::vector<double> rootpq_;
  std::vector<double> beta_;
  std::vector<Vec3> rij_;      // natoms x nnbor displacements
  std::vector<Vec3> forces_;   // per-atom force sums

  // scratch reused across runs (variants that pre-allocate)
  std::vector<Cplx> flat_u_;
  std::vector<Cplx> flat_z_;
  std::vector<Cplx> flat_y_;
};

}  // namespace ember::snap
