#pragma once

// TestSNAP: the standalone kernel-optimization study.
//
// The companion paper (Gayatri et al., arXiv:2011.12875, summarized in the
// deck and underpinning Table I / Figs. 2-3) built a proxy app to iterate
// on the SNAP force kernel outside of full LAMMPS. This is the CPU
// analogue: eight variants of the same force computation, each layering
// one optimization of the paper's narrative onto the previous:
//
//   V0 Baseline    Listing-1 order; jagged per-j containers allocated
//                  inside the atom loop; Z stored (O(J^5)); per-neighbor
//                  dB (O(J^5) work each).
//   V1 Staged      kernel decomposition (Listing 2): per-stage sweeps over
//                  an atom batch with pre-allocated jagged storage.
//   V2 Flattened   jagged arrays -> flat offset-indexed buffers.
//   V3 Adjoint     the §IV refactorization: Y instead of Z/dB; O(J^3)
//                  storage, O(J^3) per-neighbor force work.
//   V4 Fused       dU recursion fused with the Y contraction (no dU
//                  store; the paper's kernel-fusion step).
//   V5 HalfMb      conjugation symmetry halves the U/dU column range in
//                  the contraction ("symmetrized layouts").
//   V6 SplitSoA    split re/im arrays in the hot recursion (the paper's
//                  data-layout/AoSoA step, in its CPU form).
//   V7 CachedCk    Cayley-Klein mapping cached per neighbor across the
//                  accumulation and force passes (redundant-work removal).
//
// Every variant produces identical per-atom force sums (pinned by tests);
// run() reports the grind time in the paper's figure of merit.

#include <memory>
#include <vector>

#include "common/vec3.hpp"
#include "parallel/thread_pool.hpp"
#include "snap/bispectrum.hpp"

namespace ember::snap {

enum class TestSnapVariant {
  V0_Baseline,
  V1_Staged,
  V2_Flattened,
  V3_Adjoint,
  V4_Fused,
  V5_HalfMb,
  V6_SplitSoA,
  V7_CachedCk,
};

inline constexpr TestSnapVariant kAllTestSnapVariants[] = {
    TestSnapVariant::V0_Baseline, TestSnapVariant::V1_Staged,
    TestSnapVariant::V2_Flattened, TestSnapVariant::V3_Adjoint,
    TestSnapVariant::V4_Fused,     TestSnapVariant::V5_HalfMb,
    TestSnapVariant::V6_SplitSoA,  TestSnapVariant::V7_CachedCk,
};

const char* to_string(TestSnapVariant v);

class TestSnap {
 public:
  // Synthetic workload matching the companion paper's setup: natoms
  // neighborhoods of nnbor random neighbors each, random coefficients.
  TestSnap(const SnapParams& params, int natoms, int nnbor,
           std::uint64_t seed = 2021);

  [[nodiscard]] const SnapParams& params() const { return params_; }
  [[nodiscard]] int natoms() const { return natoms_; }
  [[nodiscard]] int nnbor() const { return nnbor_; }

  // Execute one full force computation with the given variant; returns
  // elapsed seconds. Fills forces() with the per-atom sum of dE_i/dr_k.
  // A threaded policy distributes the atom loop of V0 and V3-V7 over a
  // persistent pool (per-thread scratch, bitwise-identical forces); the
  // staged V1/V2 variants share batch buffers and always run serially.
  double run(TestSnapVariant variant, ExecutionPolicy policy = {});

  // Grind time [s / atom-step] over `repeats` runs (best of).
  double grind_time(TestSnapVariant variant, int repeats = 3,
                    ExecutionPolicy policy = {});

  [[nodiscard]] std::span<const Vec3> forces() const { return forces_; }

 private:
  // Each run_* computes forces_[i] for i in [begin, end) with
  // function-local scratch, so atom blocks thread trivially.
  void run_baseline(int begin, int end);              // V0
  void run_staged(bool flattened);                    // V1 / V2 (serial)
  void run_adjoint(int begin, int end);               // V3
  void run_fused(int level, int begin, int end);      // V4..V7 (0..3)

  SnapParams params_;
  SnapIndex idx_;
  int natoms_;
  int nnbor_;
  std::vector<double> rootpq_;
  std::vector<double> beta_;
  std::vector<Vec3> rij_;      // natoms x nnbor displacements
  std::vector<Vec3> forces_;   // per-atom force sums

  // scratch reused across runs (variants that pre-allocate)
  std::vector<Cplx> flat_u_;
  std::vector<Cplx> flat_z_;
  std::vector<Cplx> flat_y_;

  // worker pool for threaded runs (created on first non-serial policy)
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace ember::snap
