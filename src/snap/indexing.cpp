#include "indexing.hpp"

#include <algorithm>

#include "factorial.hpp"

namespace ember::snap {

SnapIndex::SnapIndex(int twojmax) : twojmax_(twojmax) {
  EMBER_REQUIRE(twojmax >= 0 && twojmax <= 24, "twojmax out of supported range");

  // U blocks.
  u_block_.resize(twojmax + 1);
  int off = 0;
  for (int j = 0; j <= twojmax; ++j) {
    u_block_[j] = off;
    off += (j + 1) * (j + 1);
  }
  u_total_ = off;

  // Half-range U blocks (columns 2*mb <= j) and their contraction weights.
  u_half_block_.resize(twojmax + 1);
  off = 0;
  for (int j = 0; j <= twojmax; ++j) {
    u_half_block_[j] = off;
    off += (j + 1) * (j / 2 + 1);
  }
  u_half_total_ = off;
  half_weight_.resize(u_half_total_);
  for (int j = 0; j <= twojmax; ++j) {
    for (int ma = 0; ma <= j; ++ma) {
      for (int mb = 0; mb <= j / 2; ++mb) {
        half_weight_[u_half_index(j, ma, mb)] = half_weight(j, ma, mb);
      }
    }
  }

  // Canonical bispectrum triples: j >= j1 >= j2, paper's enumeration
  // 0 <= 2j2 <= 2j1 <= 2j <= 2J. NB(2J=8) = 55, NB(2J=14) = 204.
  const int n = twojmax + 1;
  b_block_.assign(static_cast<std::size_t>(n) * n * n, -1);
  for (int j1 = 0; j1 <= twojmax; ++j1) {
    for (int j2 = 0; j2 <= j1; ++j2) {
      for (int j = j1 - j2; j <= std::min(twojmax, j1 + j2); j += 2) {
        if (j < j1) continue;
        b_block_[(static_cast<std::size_t>(j1) * n + j2) * n + j] =
            static_cast<int>(b_.size());
        b_.push_back({j1, j2, j});
      }
    }
  }

  // Full coupling list (j1 >= j2, all product ranks), with the canonical-B
  // mapping and multiplicity/normalization factors used by compute_yi.
  // The factors follow from the chain rule over the three U-slots of each
  // canonical B component (paper eq. 6); permuted slots acquire the
  // representation-dimension ratio (2j_big+1)/(2j_target+1).
  for (int j1 = 0; j1 <= twojmax; ++j1) {
    for (int j2 = 0; j2 <= j1; ++j2) {
      for (int j = j1 - j2; j <= std::min(twojmax, j1 + j2); j += 2) {
        ZTriple t;
        t.j1 = j1;
        t.j2 = j2;
        t.j = j;
        if (j >= j1) {
          t.idxb = b_index(j1, j2, j);
          if (j1 == j) {
            t.beta_scale = (j2 == j) ? 3.0 : 2.0;
          } else {
            t.beta_scale = 1.0;
          }
        } else if (j >= j2) {
          t.idxb = b_index(j, j2, j1);
          const double ratio = static_cast<double>(j1 + 1) / (j + 1);
          t.beta_scale = (j2 == j) ? 2.0 * ratio : ratio;
        } else {
          t.idxb = b_index(j2, j, j1);
          t.beta_scale = static_cast<double>(j1 + 1) / (j + 1);
        }
        EMBER_REQUIRE(t.idxb >= 0, "coupling triple has no canonical B");
        t.idxz_u = z_total_;
        z_total_ += (j + 1) * (j + 1);
        if (z_block_.empty()) {
          z_block_.assign(static_cast<std::size_t>(n) * n * n, -1);
        }
        z_block_[(static_cast<std::size_t>(j1) * n + j2) * n + j] =
            static_cast<int>(z_.size());
        z_.push_back(t);
      }
    }
  }

  // Clebsch-Gordan blocks, one per coupling triple.
  for (auto& t : z_) {
    t.idxcg = static_cast<int>(cg_.size());
    for (int ma1 = 0; ma1 <= t.j1; ++ma1) {
      const int twom1 = 2 * ma1 - t.j1;
      for (int ma2 = 0; ma2 <= t.j2; ++ma2) {
        const int twom2 = 2 * ma2 - t.j2;
        cg_.push_back(
            clebsch_gordan(t.j1, twom1, t.j2, twom2, t.j, twom1 + twom2));
      }
    }
  }

  // Aligned CG blocks: per triple, (j+1) rows of (j1+1) unit-stride
  // entries holding cg(t, m1, m + s - m1) for the valid m1 range of each
  // output index m (see aligned_cg_row).
  for (auto& t : z_) {
    t.idxcga = static_cast<int>(cg_aligned_.size());
    const int s = (t.j1 + t.j2 - t.j) / 2;
    for (int m = 0; m <= t.j; ++m) {
      const int lo = std::max(0, m + s - t.j2);
      const int hi = std::min(t.j1, m + s);
      for (int m1 = 0; m1 <= t.j1; ++m1) {
        cg_aligned_.push_back(m1 >= lo && m1 <= hi ? cg(t, m1, m + s - m1)
                                                   : 0.0);
      }
    }
  }
}

int SnapIndex::z_index(int ja, int jb, int j) const {
  if (ja < jb) std::swap(ja, jb);
  const int n = twojmax_ + 1;
  const int idx = z_block_[(static_cast<std::size_t>(ja) * n + jb) * n + j];
  EMBER_REQUIRE(idx >= 0, "no coupling triple for the requested momenta");
  return idx;
}

int SnapIndex::b_index(int j1, int j2, int j) const {
  const int n = twojmax_ + 1;
  EMBER_REQUIRE(j1 <= twojmax_ && j2 <= j1 && j >= j1 && j <= twojmax_,
                "b_index arguments not canonical");
  const int idx = b_block_[(static_cast<std::size_t>(j1) * n + j2) * n + j];
  EMBER_REQUIRE(idx >= 0, "triple is not a valid bispectrum component");
  return idx;
}

}  // namespace ember::snap
