#include "testsnap.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace ember::snap {

namespace {

// ---- shared flat helpers (mirrors of the production kernel) -------------

struct DU3 {
  Cplx d[3];
};

double rootpq(const std::vector<double>& table, int tj, int p, int q) {
  return table[static_cast<std::size_t>(p) * (tj + 1) + q];
}

// Flat single-neighbor U recursion; when half_mb is set only columns with
// 2*mb <= j are produced (enough for the next level's half range).
void u_recur_flat(const SnapIndex& idx, const std::vector<double>& rp, int tj,
                  const CayleyKlein& ck, Cplx* u, bool half_mb) {
  const Cplx a = ck.a;
  const Cplx b = ck.b;
  const Cplx ac = conj(a);
  const Cplx mbc = -conj(b);
  u[0] = {1.0, 0.0};
  for (int j = 1; j <= tj; ++j) {
    const int blk = idx.u_block(j);
    const int pblk = idx.u_block(j - 1);
    const int cs = j + 1;
    const int ps = j;
    const int mb_max = half_mb ? j / 2 : j;
    for (int mb = 0; mb <= mb_max; ++mb) {
      const bool zc = (mb == 0);
      const Cplx cu = zc ? mbc : a;
      const Cplx cd = zc ? ac : b;
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        Cplx v{};
        if (ma > 0) {
          v += rootpq(rp, tj, ma, denom) * (cu * u[pblk + (ma - 1) * ps + pcol]);
        }
        if (ma < j) {
          v += rootpq(rp, tj, j - ma, denom) * (cd * u[pblk + ma * ps + pcol]);
        }
        u[blk + ma * cs + mb] = v;
      }
    }
  }
}

// Flat derivative recursion producing d(w fc u)/dr into du; u gets the
// bare recursion values.
void du_recur_flat(const SnapIndex& idx, const std::vector<double>& rp, int tj,
                   const CayleyKlein& ck, double w, Cplx* u, DU3* du,
                   bool half_mb) {
  const Cplx a = ck.a;
  const Cplx b = ck.b;
  const Cplx ac = conj(a);
  const Cplx mbc = -conj(b);
  u[0] = {1.0, 0.0};
  du[0] = DU3{};
  for (int j = 1; j <= tj; ++j) {
    const int blk = idx.u_block(j);
    const int pblk = idx.u_block(j - 1);
    const int cs = j + 1;
    const int ps = j;
    const int mb_max = half_mb ? j / 2 : j;
    for (int mb = 0; mb <= mb_max; ++mb) {
      const bool zc = (mb == 0);
      const Cplx cu = zc ? mbc : a;
      const Cplx cd = zc ? ac : b;
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        Cplx v{};
        DU3 dv{};
        if (ma > 0) {
          const double r = rootpq(rp, tj, ma, denom);
          const Cplx up = u[pblk + (ma - 1) * ps + pcol];
          const DU3& dup = du[pblk + (ma - 1) * ps + pcol];
          v += r * (cu * up);
          for (int d = 0; d < 3; ++d) {
            const Cplx dcu = zc ? -conj(ck.db[d]) : ck.da[d];
            dv.d[d] += r * (dcu * up + cu * dup.d[d]);
          }
        }
        if (ma < j) {
          const double r = rootpq(rp, tj, j - ma, denom);
          const Cplx up = u[pblk + ma * ps + pcol];
          const DU3& dup = du[pblk + ma * ps + pcol];
          v += r * (cd * up);
          for (int d = 0; d < 3; ++d) {
            const Cplx dcd = zc ? conj(ck.da[d]) : ck.db[d];
            dv.d[d] += r * (dcd * up + cd * dup.d[d]);
          }
        }
        u[blk + ma * cs + mb] = v;
        du[blk + ma * cs + mb] = dv;
      }
    }
  }
  // Apply the w * (dfc u + fc du) product rule in place.
  for (int j = 0; j <= tj; ++j) {
    const int blk = idx.u_block(j);
    const int cs = j + 1;
    const int mb_max = half_mb ? j / 2 : j;
    for (int mb = 0; mb <= mb_max; ++mb) {
      for (int ma = 0; ma <= j; ++ma) {
        const int e = blk + ma * cs + mb;
        for (int d = 0; d < 3; ++d) {
          du[e].d[d] = w * (ck.dfc[d] * u[e] + ck.fc * du[e].d[d]);
        }
      }
    }
  }
}

// Generic z-matrix element from a flat Utot.
Cplx z_elem(const SnapIndex& idx, const Cplx* utot, const ZTriple& t, int ma,
            int mb) {
  const int j1 = t.j1;
  const int j2 = t.j2;
  const int s = (j1 + j2 - t.j) / 2;
  const Cplx* u1 = utot + idx.u_block(j1);
  const Cplx* u2 = utot + idx.u_block(j2);
  const int s1 = j1 + 1;
  const int s2 = j2 + 1;
  Cplx z{};
  for (int ma1 = std::max(0, ma + s - j2); ma1 <= std::min(j1, ma + s); ++ma1) {
    const int ma2 = ma + s - ma1;
    const double cg_row = idx.cg(t, ma1, ma2);
    if (cg_row == 0.0) continue;
    Cplx rowsum{};
    for (int mb1 = std::max(0, mb + s - j2); mb1 <= std::min(j1, mb + s);
         ++mb1) {
      const int mb2 = mb + s - mb1;
      const double cg_col = idx.cg(t, mb1, mb2);
      if (cg_col == 0.0) continue;
      rowsum += cg_col * (u1[ma1 * s1 + mb1] * u2[ma2 * s2 + mb2]);
    }
    z += cg_row * rowsum;
  }
  return z;
}

// ---- jagged data structures (the V0/V1 "2012-style" layout) -------------

using JaggedU = std::vector<std::vector<Cplx>>;          // [j][(ma,mb)]
using JaggedDU = std::vector<std::vector<DU3>>;

void jagged_alloc(JaggedU& u, int tj) {
  u.resize(tj + 1);
  for (int j = 0; j <= tj; ++j) {
    u[j].assign(static_cast<std::size_t>(j + 1) * (j + 1), Cplx{});
  }
}

void jagged_alloc(JaggedDU& u, int tj) {
  u.resize(tj + 1);
  for (int j = 0; j <= tj; ++j) {
    u[j].assign(static_cast<std::size_t>(j + 1) * (j + 1), DU3{});
  }
}

void u_recur_jagged(const std::vector<double>& rp, int tj,
                    const CayleyKlein& ck, JaggedU& u) {
  const Cplx a = ck.a;
  const Cplx b = ck.b;
  const Cplx ac = conj(a);
  const Cplx mbc = -conj(b);
  u[0][0] = {1.0, 0.0};
  for (int j = 1; j <= tj; ++j) {
    const int cs = j + 1;
    const int ps = j;
    for (int mb = 0; mb <= j; ++mb) {
      const bool zc = (mb == 0);
      const Cplx cu = zc ? mbc : a;
      const Cplx cd = zc ? ac : b;
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        Cplx v{};
        if (ma > 0) {
          v += rootpq(rp, tj, ma, denom) * (cu * u[j - 1][(ma - 1) * ps + pcol]);
        }
        if (ma < j) {
          v += rootpq(rp, tj, j - ma, denom) * (cd * u[j - 1][ma * ps + pcol]);
        }
        u[j][ma * cs + mb] = v;
      }
    }
  }
}

void du_recur_jagged(const std::vector<double>& rp, int tj,
                     const CayleyKlein& ck, double w, JaggedU& u,
                     JaggedDU& du) {
  u_recur_jagged(rp, tj, ck, u);
  // Recompute the derivative recursion level by level.
  du[0][0] = DU3{};
  const Cplx a = ck.a;
  const Cplx b = ck.b;
  for (int j = 1; j <= tj; ++j) {
    const int cs = j + 1;
    const int ps = j;
    for (int mb = 0; mb <= j; ++mb) {
      const bool zc = (mb == 0);
      const int pcol = zc ? 0 : mb - 1;
      const int denom = zc ? j : mb;
      for (int ma = 0; ma <= j; ++ma) {
        DU3 dv{};
        if (ma > 0) {
          const double r = rootpq(rp, tj, ma, denom);
          // Rebuild previous-level bare u on the fly from stored u: the
          // jagged layout stores the bare values already.
          const Cplx up = u[j - 1][(ma - 1) * ps + pcol];
          const DU3& dup = du[j - 1][(ma - 1) * ps + pcol];
          const Cplx cu = zc ? -conj(b) : a;
          for (int d = 0; d < 3; ++d) {
            const Cplx dcu = zc ? -conj(ck.db[d]) : ck.da[d];
            dv.d[d] += r * (dcu * up + cu * dup.d[d]);
          }
        }
        if (ma < j) {
          const double r = rootpq(rp, tj, j - ma, denom);
          const Cplx up = u[j - 1][ma * ps + pcol];
          const DU3& dup = du[j - 1][ma * ps + pcol];
          const Cplx cd = zc ? conj(a) : b;
          for (int d = 0; d < 3; ++d) {
            const Cplx dcd = zc ? conj(ck.da[d]) : ck.db[d];
            dv.d[d] += r * (dcd * up + cd * dup.d[d]);
          }
        }
        du[j][ma * cs + mb] = dv;
      }
    }
  }
  for (int j = 0; j <= tj; ++j) {
    for (std::size_t e = 0; e < u[j].size(); ++e) {
      for (int d = 0; d < 3; ++d) {
        du[j][e].d[d] = w * (ck.dfc[d] * u[j][e] + ck.fc * du[j][e].d[d]);
      }
    }
  }
}

Cplx z_elem_jagged(const SnapIndex& idx, const JaggedU& utot, const ZTriple& t,
                   int ma, int mb) {
  const int j1 = t.j1;
  const int j2 = t.j2;
  const int s = (j1 + j2 - t.j) / 2;
  const int s1 = j1 + 1;
  const int s2 = j2 + 1;
  Cplx z{};
  for (int ma1 = std::max(0, ma + s - j2); ma1 <= std::min(j1, ma + s); ++ma1) {
    const int ma2 = ma + s - ma1;
    const double cg_row = idx.cg(t, ma1, ma2);
    if (cg_row == 0.0) continue;
    Cplx rowsum{};
    for (int mb1 = std::max(0, mb + s - j2); mb1 <= std::min(j1, mb + s);
         ++mb1) {
      const int mb2 = mb + s - mb1;
      const double cg_col = idx.cg(t, mb1, mb2);
      if (cg_col == 0.0) continue;
      rowsum += cg_col * (utot[j1][ma1 * s1 + mb1] * utot[j2][ma2 * s2 + mb2]);
    }
    z += cg_row * rowsum;
  }
  return z;
}

// dB-path force for one neighbor given stored z matrices (flat or jagged
// access via a callable returning Z(triple)[e]).
template <typename ZAt, typename DUAt>
Vec3 db_force(const SnapIndex& idx, std::span<const double> beta, ZAt&& z_at,
              DUAt&& du_at) {
  Vec3 de;
  int l = 0;
  for (const auto& bt : idx.b_triples()) {
    struct Term {
      int za, zb, zt;
      double scale;
    };
    const Term terms[3] = {
        {bt.j1, bt.j2, bt.j, 1.0},
        {bt.j, bt.j2, bt.j1, static_cast<double>(bt.j + 1) / (bt.j1 + 1)},
        {bt.j, bt.j1, bt.j2, static_cast<double>(bt.j + 1) / (bt.j2 + 1)},
    };
    Vec3 db;
    for (const auto& term : terms) {
      const int zi = idx.z_index(term.za, term.zb, term.zt);
      const int n = term.zt + 1;
      Vec3 part;
      for (int e = 0; e < n * n; ++e) {
        const Cplx zv = z_at(zi, e);
        const DU3& du = du_at(term.zt, e);
        part.x += re_mul_conj(zv, du.d[0]);
        part.y += re_mul_conj(zv, du.d[1]);
        part.z += re_mul_conj(zv, du.d[2]);
      }
      db += term.scale * part;
    }
    de += beta[l] * db;
    ++l;
  }
  return de;
}

}  // namespace

const char* to_string(TestSnapVariant v) {
  switch (v) {
    case TestSnapVariant::V0_Baseline:
      return "V0 baseline (jagged, Z+dB)";
    case TestSnapVariant::V1_Staged:
      return "V1 staged kernels";
    case TestSnapVariant::V2_Flattened:
      return "V2 flattened arrays";
    case TestSnapVariant::V3_Adjoint:
      return "V3 adjoint refactor (Y+dE)";
    case TestSnapVariant::V4_Fused:
      return "V4 fused dU+dE";
    case TestSnapVariant::V5_HalfMb:
      return "V5 symmetric half range";
    case TestSnapVariant::V6_SplitSoA:
      return "V6 split re/im layout";
    case TestSnapVariant::V7_CachedCk:
      return "V7 cached neighbor state";
  }
  return "?";
}

TestSnap::TestSnap(const SnapParams& params, int natoms, int nnbor,
                   std::uint64_t seed)
    : params_(params), idx_(params.twojmax), natoms_(natoms), nnbor_(nnbor) {
  const int tj = params_.twojmax;
  rootpq_.resize(static_cast<std::size_t>(tj + 1) * (tj + 1), 0.0);
  for (int p = 1; p <= tj; ++p) {
    for (int q = 1; q <= tj; ++q) {
      rootpq_[static_cast<std::size_t>(p) * (tj + 1) + q] =
          std::sqrt(static_cast<double>(p) / q);
    }
  }
  Rng rng(seed);
  beta_.resize(idx_.num_b());
  for (auto& b : beta_) b = rng.uniform(-1.0, 1.0);

  rij_.reserve(static_cast<std::size_t>(natoms) * nnbor);
  while (rij_.size() < static_cast<std::size_t>(natoms) * nnbor) {
    Vec3 r{rng.uniform(-params_.rcut, params_.rcut),
           rng.uniform(-params_.rcut, params_.rcut),
           rng.uniform(-params_.rcut, params_.rcut)};
    const double d = r.norm();
    if (d > 0.7 && d < params_.rcut * 0.97) rij_.push_back(r);
  }
  forces_.assign(natoms, Vec3{});
}

double TestSnap::run(TestSnapVariant variant, ExecutionPolicy policy) {
  std::fill(forces_.begin(), forces_.end(), Vec3{});

  const auto run_range = [this, variant](int begin, int end) {
    switch (variant) {
      case TestSnapVariant::V0_Baseline:
        run_baseline(begin, end);
        break;
      case TestSnapVariant::V1_Staged:
        run_staged(false);
        break;
      case TestSnapVariant::V2_Flattened:
        run_staged(true);
        break;
      case TestSnapVariant::V3_Adjoint:
        run_adjoint(begin, end);
        break;
      case TestSnapVariant::V4_Fused:
        run_fused(0, begin, end);
        break;
      case TestSnapVariant::V5_HalfMb:
        run_fused(1, begin, end);
        break;
      case TestSnapVariant::V6_SplitSoA:
        run_fused(2, begin, end);
        break;
      case TestSnapVariant::V7_CachedCk:
        run_fused(3, begin, end);
        break;
    }
  };

  // V1/V2 stage whole batches through shared flat buffers; the other
  // variants keep all scratch function-local and thread over atom blocks.
  const bool threadable = variant != TestSnapVariant::V1_Staged &&
                          variant != TestSnapVariant::V2_Flattened;

  WallTimer timer;
  if (policy.serial() || !threadable) {
    run_range(0, natoms_);
  } else {
    if (!pool_ || pool_->size() != policy.nthreads) {
      pool_ = std::make_unique<parallel::ThreadPool>(policy.nthreads);
    }
    // One block per worker: scratch is allocated once per thread per run,
    // and forces_[i] writes are disjoint, so the result is bitwise equal
    // to the serial sweep.
    pool_->parallel_blocks(0, natoms_,
                           [&](int /*tid*/, int b, int e) { run_range(b, e); });
  }
  return timer.seconds();
}

double TestSnap::grind_time(TestSnapVariant variant, int repeats,
                            ExecutionPolicy policy) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    best = std::min(best, run(variant, policy));
  }
  return best / (static_cast<double>(natoms_));
}

// ---- V0: Listing-1 baseline ----------------------------------------------

void TestSnap::run_baseline(int begin, int end) {
  const int tj = params_.twojmax;
  const auto& triples = idx_.z_triples();

  for (int i = begin; i < end; ++i) {
    // Per-atom allocations: the layout this study starts from.
    JaggedU utot;
    jagged_alloc(utot, tj);
    for (int j = 0; j <= tj; ++j) {
      for (int ma = 0; ma <= j; ++ma) {
        utot[j][ma * (j + 1) + ma] = {params_.wself, 0.0};
      }
    }
    JaggedU unb;
    jagged_alloc(unb, tj);
    const Vec3* rij = rij_.data() + static_cast<std::size_t>(i) * nnbor_;

    for (int k = 0; k < nnbor_; ++k) {
      const auto ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                    params_.rmin0, params_.switch_flag);
      u_recur_jagged(rootpq_, tj, ck, unb);
      for (int j = 0; j <= tj; ++j) {
        for (std::size_t e = 0; e < unb[j].size(); ++e) {
          utot[j][e] += ck.fc * unb[j][e];
        }
      }
    }

    // Z storage: one jagged matrix per coupling triple (O(J^5) memory).
    std::vector<std::vector<Cplx>> zl(triples.size());
    for (std::size_t t = 0; t < triples.size(); ++t) {
      const int n = triples[t].j + 1;
      zl[t].resize(static_cast<std::size_t>(n) * n);
      for (int ma = 0; ma < n; ++ma) {
        for (int mb = 0; mb < n; ++mb) {
          zl[t][ma * n + mb] = z_elem_jagged(idx_, utot, triples[t], ma, mb);
        }
      }
    }

    JaggedU ubare;
    jagged_alloc(ubare, tj);
    JaggedDU dunb;
    jagged_alloc(dunb, tj);
    Vec3 fsum{};
    for (int k = 0; k < nnbor_; ++k) {
      const auto ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                    params_.rmin0, params_.switch_flag);
      du_recur_jagged(rootpq_, tj, ck, 1.0, ubare, dunb);
      fsum += db_force(
          idx_, beta_, [&](int zi, int e) { return zl[zi][e]; },
          [&](int j, int e) -> const DU3& { return dunb[j][e]; });
    }
    forces_[i] = fsum;
  }
}

// ---- V1 / V2: staged kernels, jagged vs flattened -------------------------

void TestSnap::run_staged(bool flattened) {
  const int tj = params_.twojmax;
  const int u_total = idx_.u_total();
  const int z_total = idx_.z_total();
  const auto& triples = idx_.z_triples();

  // Batch size bounded by a memory cap (the paper's 2J=14 OOM story).
  const std::size_t per_atom_bytes =
      static_cast<std::size_t>(u_total + z_total) * sizeof(Cplx);
  const std::size_t cap = 256ull << 20;
  const int batch = std::max(
      1, std::min(natoms_, static_cast<int>(cap / per_atom_bytes)));

  // Storage for a batch.
  std::vector<JaggedU> utot_j;
  std::vector<std::vector<std::vector<Cplx>>> z_j;
  if (!flattened) {
    utot_j.resize(batch);
    z_j.resize(batch);
    for (int b = 0; b < batch; ++b) {
      jagged_alloc(utot_j[b], tj);
      z_j[b].resize(triples.size());
      for (std::size_t t = 0; t < triples.size(); ++t) {
        const int n = triples[t].j + 1;
        z_j[b][t].resize(static_cast<std::size_t>(n) * n);
      }
    }
  } else {
    flat_u_.assign(static_cast<std::size_t>(batch) * u_total, Cplx{});
    flat_z_.assign(static_cast<std::size_t>(batch) * z_total, Cplx{});
  }

  JaggedU unb_j;
  JaggedU ubare_j;
  JaggedDU dunb_j;
  jagged_alloc(unb_j, tj);
  jagged_alloc(ubare_j, tj);
  jagged_alloc(dunb_j, tj);
  std::vector<Cplx> unb_f(u_total);
  std::vector<DU3> dunb_f(u_total);

  for (int base = 0; base < natoms_; base += batch) {
    const int count = std::min(batch, natoms_ - base);

    // Stage 1: compute_U for every atom in the batch.
    for (int b = 0; b < count; ++b) {
      const Vec3* rij =
          rij_.data() + static_cast<std::size_t>(base + b) * nnbor_;
      if (!flattened) {
        for (int j = 0; j <= tj; ++j) {
          std::fill(utot_j[b][j].begin(), utot_j[b][j].end(), Cplx{});
          for (int ma = 0; ma <= j; ++ma) {
            utot_j[b][j][ma * (j + 1) + ma] = {params_.wself, 0.0};
          }
        }
        for (int k = 0; k < nnbor_; ++k) {
          const auto ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                        params_.rmin0, params_.switch_flag);
          u_recur_jagged(rootpq_, tj, ck, unb_j);
          for (int j = 0; j <= tj; ++j) {
            for (std::size_t e = 0; e < unb_j[j].size(); ++e) {
              utot_j[b][j][e] += ck.fc * unb_j[j][e];
            }
          }
        }
      } else {
        Cplx* utot = flat_u_.data() + static_cast<std::size_t>(b) * u_total;
        std::fill(utot, utot + u_total, Cplx{});
        for (int j = 0; j <= tj; ++j) {
          for (int ma = 0; ma <= j; ++ma) {
            utot[idx_.u_index(j, ma, ma)] += Cplx{params_.wself, 0.0};
          }
        }
        for (int k = 0; k < nnbor_; ++k) {
          const auto ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                        params_.rmin0, params_.switch_flag);
          u_recur_flat(idx_, rootpq_, tj, ck, unb_f.data(), false);
          for (int e = 0; e < u_total; ++e) utot[e] += ck.fc * unb_f[e];
        }
      }
    }

    // Stage 2: compute_Z for every atom in the batch.
    for (int b = 0; b < count; ++b) {
      if (!flattened) {
        for (std::size_t t = 0; t < triples.size(); ++t) {
          const int n = triples[t].j + 1;
          for (int ma = 0; ma < n; ++ma) {
            for (int mb = 0; mb < n; ++mb) {
              z_j[b][t][ma * n + mb] =
                  z_elem_jagged(idx_, utot_j[b], triples[t], ma, mb);
            }
          }
        }
      } else {
        const Cplx* utot =
            flat_u_.data() + static_cast<std::size_t>(b) * u_total;
        Cplx* z = flat_z_.data() + static_cast<std::size_t>(b) * z_total;
        for (const auto& t : triples) {
          const int n = t.j + 1;
          for (int ma = 0; ma < n; ++ma) {
            for (int mb = 0; mb < n; ++mb) {
              z[t.idxz_u + ma * n + mb] = z_elem(idx_, utot, t, ma, mb);
            }
          }
        }
      }
    }

    // Stage 3: per (atom, neighbor) dU -> dB -> force.
    for (int b = 0; b < count; ++b) {
      const Vec3* rij =
          rij_.data() + static_cast<std::size_t>(base + b) * nnbor_;
      Vec3 fsum{};
      for (int k = 0; k < nnbor_; ++k) {
        const auto ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                      params_.rmin0, params_.switch_flag);
        if (!flattened) {
          du_recur_jagged(rootpq_, tj, ck, 1.0, ubare_j, dunb_j);
          fsum += db_force(
              idx_, beta_, [&](int zi, int e) { return z_j[b][zi][e]; },
              [&](int j, int e) -> const DU3& { return dunb_j[j][e]; });
        } else {
          du_recur_flat(idx_, rootpq_, tj, ck, 1.0, unb_f.data(),
                        dunb_f.data(), false);
          const Cplx* z = flat_z_.data() + static_cast<std::size_t>(b) * z_total;
          fsum += db_force(
              idx_, beta_,
              [&](int zi, int e) { return z[triples[zi].idxz_u + e]; },
              [&](int j, int e) -> const DU3& {
                return dunb_f[idx_.u_block(j) + e];
              });
        }
      }
      forces_[base + b] = fsum;
    }
  }
}

// ---- V3: adjoint refactorization ------------------------------------------

void TestSnap::run_adjoint(int begin, int end) {
  const int tj = params_.twojmax;
  const int u_total = idx_.u_total();
  std::vector<Cplx> utot(u_total);
  std::vector<Cplx> unb(u_total);
  std::vector<Cplx> y(u_total);
  std::vector<DU3> du(u_total);

  for (int i = begin; i < end; ++i) {
    const Vec3* rij = rij_.data() + static_cast<std::size_t>(i) * nnbor_;
    std::fill(utot.begin(), utot.end(), Cplx{});
    for (int j = 0; j <= tj; ++j) {
      for (int ma = 0; ma <= j; ++ma) {
        utot[idx_.u_index(j, ma, ma)] += Cplx{params_.wself, 0.0};
      }
    }
    for (int k = 0; k < nnbor_; ++k) {
      const auto ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                    params_.rmin0, params_.switch_flag);
      u_recur_flat(idx_, rootpq_, tj, ck, unb.data(), false);
      for (int e = 0; e < u_total; ++e) utot[e] += ck.fc * unb[e];
    }

    std::fill(y.begin(), y.end(), Cplx{});
    for (const auto& t : idx_.z_triples()) {
      const double coeff = beta_[t.idxb] * t.beta_scale;
      if (coeff == 0.0) continue;
      Cplx* yj = y.data() + idx_.u_block(t.j);
      const int n = t.j + 1;
      for (int ma = 0; ma < n; ++ma) {
        for (int mb = 0; mb < n; ++mb) {
          yj[ma * n + mb] += coeff * z_elem(idx_, utot.data(), t, ma, mb);
        }
      }
    }

    Vec3 fsum{};
    for (int k = 0; k < nnbor_; ++k) {
      const auto ck = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                                    params_.rmin0, params_.switch_flag);
      du_recur_flat(idx_, rootpq_, tj, ck, 1.0, unb.data(), du.data(), false);
      Vec3 de;
      for (int e = 0; e < u_total; ++e) {
        de.x += re_mul_conj(y[e], du[e].d[0]);
        de.y += re_mul_conj(y[e], du[e].d[1]);
        de.z += re_mul_conj(y[e], du[e].d[2]);
      }
      fsum += de;
    }
    forces_[i] = fsum;
  }
}

// ---- V4..V7: fused / half-range / SoA / cached-neighbor kernels -----------
// The half-column contraction weight is the shared ember::snap::half_weight
// from indexing.hpp (also used by the production Symmetric kernel).

void TestSnap::run_fused(int level, int begin, int end) {
  const bool half = level >= 1;
  const bool soa = level >= 2;
  const bool cache_u = level >= 3;
  const int tj = params_.twojmax;
  const int u_total = idx_.u_total();
  EMBER_REQUIRE(tj <= 14, "fused kernel stack buffers sized for 2J <= 14");

  std::vector<Cplx> utot(u_total);
  std::vector<Cplx> unb(u_total);
  std::vector<Cplx> y(u_total);
  std::vector<double> yr;
  std::vector<double> yi;
  if (soa) {
    yr.resize(u_total);
    yi.resize(u_total);
  }
  std::vector<Cplx> ucache;
  std::vector<CayleyKlein> cks(nnbor_);
  if (cache_u) {
    ucache.resize(static_cast<std::size_t>(nnbor_) * u_total);
  }

  for (int i = begin; i < end; ++i) {
    const Vec3* rij = rij_.data() + static_cast<std::size_t>(i) * nnbor_;

    // --- accumulation pass (optionally half columns + caching) ---
    std::fill(utot.begin(), utot.end(), Cplx{});
    for (int k = 0; k < nnbor_; ++k) {
      cks[k] = map_to_sphere(rij[k], params_.rcut, params_.rfac0,
                             params_.rmin0, params_.switch_flag);
      Cplx* udst =
          cache_u ? ucache.data() + static_cast<std::size_t>(k) * u_total
                  : unb.data();
      u_recur_flat(idx_, rootpq_, tj, cks[k], udst, half);
      const double w = cks[k].fc;
      for (int j = 0; j <= tj; ++j) {
        const int blk = idx_.u_block(j);
        const int cs = j + 1;
        const int mb_max = half ? j / 2 : j;
        for (int mb = 0; mb <= mb_max; ++mb) {
          for (int ma = 0; ma <= j; ++ma) {
            utot[blk + ma * cs + mb] += w * udst[blk + ma * cs + mb];
          }
        }
      }
    }
    if (half) {
      // Mirror the un-computed columns: U[ma,mb] = (-1)^(ma+mb)
      // conj(U[j-ma, j-mb]).
      for (int j = 0; j <= tj; ++j) {
        const int blk = idx_.u_block(j);
        const int cs = j + 1;
        for (int mb = j / 2 + 1; mb <= j; ++mb) {
          for (int ma = 0; ma <= j; ++ma) {
            const Cplx src = utot[blk + (j - ma) * cs + (j - mb)];
            const double sign = ((ma + mb) % 2 == 0) ? 1.0 : -1.0;
            utot[blk + ma * cs + mb] = sign * conj(src);
          }
        }
      }
    }
    // Self term on the full diagonal (after mirroring).
    for (int j = 0; j <= tj; ++j) {
      for (int ma = 0; ma <= j; ++ma) {
        utot[idx_.u_index(j, ma, ma)] += Cplx{params_.wself, 0.0};
      }
    }

    // --- Y (only the contracted half is needed under symmetry) ---
    std::fill(y.begin(), y.end(), Cplx{});
    for (const auto& t : idx_.z_triples()) {
      const double coeff = beta_[t.idxb] * t.beta_scale;
      if (coeff == 0.0) continue;
      Cplx* yj = y.data() + idx_.u_block(t.j);
      const int n = t.j + 1;
      const int mb_max = half ? t.j / 2 : t.j;
      for (int ma = 0; ma < n; ++ma) {
        for (int mb = 0; mb <= mb_max; ++mb) {
          yj[ma * n + mb] += coeff * z_elem(idx_, utot.data(), t, ma, mb);
        }
      }
    }
    if (soa) {
      for (int e = 0; e < u_total; ++e) {
        yr[e] = y[e].re;
        yi[e] = y[e].im;
      }
    }

    // --- fused force pass: level-by-level recursion + contraction ---
    Vec3 fsum{};
    for (int k = 0; k < nnbor_; ++k) {
      const CayleyKlein& ck = cks[k];
      const Cplx* cached =
          cache_u ? ucache.data() + static_cast<std::size_t>(k) * u_total
                  : nullptr;
      // Ping-pong level buffers for the bare u and du.
      std::array<Cplx, 225> ubuf_a{}, ubuf_b{};
      std::array<DU3, 225> dbuf_a{}, dbuf_b{};
      Cplx* uprev = ubuf_a.data();
      Cplx* ucur = ubuf_b.data();
      DU3* dprev = dbuf_a.data();
      DU3* dcur = dbuf_b.data();
      uprev[0] = {1.0, 0.0};
      dprev[0] = DU3{};

      Vec3 de;
      // j = 0 contribution: d(fc u)/dr = dfc (u = 1, du = 0); weight 1.
      {
        const int e0 = idx_.u_index(0, 0, 0);
        for (int d = 0; d < 3; ++d) {
          const Cplx dfull{ck.dfc[d], 0.0};
          const double yre = soa ? yr[e0] : y[e0].re;
          const double yim = soa ? yi[e0] : y[e0].im;
          de[d] += yre * dfull.re + yim * dfull.im;
        }
      }

      const Cplx a = ck.a;
      const Cplx b = ck.b;
      for (int j = 1; j <= tj; ++j) {
        const int blk = idx_.u_block(j);
        const int pblk = idx_.u_block(j - 1);
        const int cs = j + 1;
        const int ps = j;
        const int mb_max = half ? j / 2 : j;
        for (int mb = 0; mb <= mb_max; ++mb) {
          const bool zc = (mb == 0);
          const Cplx cu = zc ? -conj(b) : a;
          const Cplx cd = zc ? conj(a) : b;
          const int pcol = zc ? 0 : mb - 1;
          const int denom = zc ? j : mb;
          for (int ma = 0; ma <= j; ++ma) {
            Cplx v{};
            DU3 dv{};
            if (ma > 0) {
              const double r = rootpq(rootpq_, tj, ma, denom);
              const Cplx up = cache_u ? cached[pblk + (ma - 1) * ps + pcol]
                                      : uprev[(ma - 1) * ps + pcol];
              const DU3& dup = dprev[(ma - 1) * ps + pcol];
              if (!cache_u) v += r * (cu * up);
              for (int d = 0; d < 3; ++d) {
                const Cplx dcu = zc ? -conj(ck.db[d]) : ck.da[d];
                dv.d[d] += r * (dcu * up + cu * dup.d[d]);
              }
            }
            if (ma < j) {
              const double r = rootpq(rootpq_, tj, j - ma, denom);
              const Cplx up = cache_u ? cached[pblk + ma * ps + pcol]
                                      : uprev[ma * ps + pcol];
              const DU3& dup = dprev[ma * ps + pcol];
              if (!cache_u) v += r * (cd * up);
              for (int d = 0; d < 3; ++d) {
                const Cplx dcd = zc ? conj(ck.da[d]) : ck.db[d];
                dv.d[d] += r * (dcd * up + cd * dup.d[d]);
              }
            }
            if (cache_u) v = cached[blk + ma * cs + mb];
            ucur[ma * cs + mb] = v;
            dcur[ma * cs + mb] = dv;

            const double weight = half ? half_weight(j, ma, mb) : 1.0;
            if (weight != 0.0) {
              const int e = blk + ma * cs + mb;
              const double yre = soa ? yr[e] : y[e].re;
              const double yim = soa ? yi[e] : y[e].im;
              for (int d = 0; d < 3; ++d) {
                const Cplx dfull =
                    ck.dfc[d] * v + ck.fc * dv.d[d];  // w = 1
                de[d] += weight * (yre * dfull.re + yim * dfull.im);
              }
            }
          }
        }
        std::swap(uprev, ucur);
        std::swap(dprev, dcur);
      }
      fsum += de;
    }
    forces_[i] = fsum;
  }
}

}  // namespace ember::snap
