#pragma once

// Per-atom SNAP bispectrum engine.
//
// This class owns the flattened U/Z/Y/B scratch arrays for one atom and
// exposes the computation stages exactly as the paper's Listings 1/5 name
// them, in two execution paths:
//
//   baseline path (Listing 1):
//     compute_ui -> compute_zi -> compute_bi          (energy/descriptors)
//                 \-> per neighbor: compute_duidrj -> compute_dbidrj
//     Z storage is O(J^5); dB is O(J^5) work per neighbor.
//
//   adjoint path (Listing 5, the paper's §IV refactorization):
//     compute_ui -> compute_yi(beta)
//                 \-> per neighbor: compute_duidrj -> compute_deidrj
//     Y storage is O(J^3); force is O(J^3) work per neighbor.
//
// On top of the path choice, the *kernel* variant selects how the adjoint
// stages are executed (SnapParams::kernel):
//
//   SnapKernel::Naive      the original full-range scheme: every (ma, mb)
//                          element is computed and stored, and each
//                          neighbor's U recursion runs twice (once in
//                          compute_ui, again inside compute_duidrj).
//   SnapKernel::Symmetric  the TestSNAP V5-V7 scheme ported to the
//                          production path: only columns with 2*mb <= j
//                          are computed (the rest follow from
//                          U[j,ma,mb] = (-1)^(ma+mb) conj(U[j,j-ma,j-mb])),
//                          each neighbor's bare U list and Cayley-Klein
//                          mapping are cached during compute_ui so
//                          compute_duidrj_cached runs the derivative-only
//                          recursion, and U/Y/dU live in split re/im
//                          planes (SoA) so the Y : conj(dU) contractions
//                          autovectorize. Full-range utot/ylist mirrors
//                          are still maintained, so the Z/B stages and any
//                          mixed naive/symmetric stage sequence stay
//                          valid.
//   SnapKernel::Simd       the "V8" scheme: the Symmetric half-range math
//                          executed over blocks of neighbors with explicit
//                          SIMD, one neighbor per vector lane (4 for AVX2,
//                          8 for AVX-512; see src/snap/simd/). The backend
//                          is chosen at construction by a runtime CPUID
//                          probe clamped by EMBER_SIMD=avx512|avx2|scalar;
//                          when no vector backend applies (non-x86 builds,
//                          EMBER_SIMD=scalar) the instance degrades to the
//                          Symmetric code path exactly, bit for bit.
//
// All kernels produce identical results to <= 1e-12 per force component
// (pinned by tests/snap/test_symmetric_kernel.cpp and
// tests/snap/test_simd_kernel.cpp); Naive is kept as the correctness
// oracle.
//
// The same instance can be reused across atoms (buffers are reset by
// compute_ui). Instances are NOT thread-safe; create one per thread.

#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/vec3.hpp"
#include "snap/cplx.hpp"
#include "snap/indexing.hpp"
#include "snap/simd/dispatch.hpp"
#include "snap/wigner.hpp"

namespace ember::snap {

enum class SnapKernel {
  Naive,      // full (ma, mb) range, per-neighbor recursion run twice
  Symmetric,  // half range + cached neighbor U lists + SoA planes
  Simd,       // Symmetric math over vector lanes of neighbors (V8)
};

struct SnapParams {
  int twojmax = 8;        // 2J; paper uses 8 (55 components) and 14 (204)
  double rcut = 4.7;      // neighbor cutoff [A]
  double rmin0 = 0.0;     // inner radius of the angular mapping [A]
  double rfac0 = 0.99363; // fraction of pi covered at r = rcut
  double wself = 1.0;     // self-contribution weight
  bool switch_flag = true; // apply the smooth cutoff fc(r)
  bool bzero_flag = false; // subtract the isolated-atom bispectrum
  SnapKernel kernel = SnapKernel::Symmetric;  // production default
};

// Derivative of the weighted, switched U contribution of one neighbor:
// d(w * fc(r) * u)/d{x,y,z}.
struct DU {
  Cplx d[3];
};

class Bispectrum {
 public:
  explicit Bispectrum(const SnapParams& params);

  [[nodiscard]] const SnapParams& params() const { return params_; }
  [[nodiscard]] const SnapIndex& index() const { return idx_; }
  [[nodiscard]] int num_b() const { return idx_.num_b(); }
  [[nodiscard]] SnapKernel kernel() const { return params_.kernel; }

  // ---- stage kernels ----

  // Accumulate Utot over neighbors (positions relative to the central
  // atom, all with |rij| < rcut) plus the self term. Under the Symmetric
  // kernel this also fills the per-neighbor Cayley-Klein and bare-U
  // caches consumed by compute_duidrj_cached.
  void compute_ui(std::span<const Vec3> rij, std::span<const double> wj);

  // Baseline: compute and store every coupled Z matrix (O(J^5) memory).
  void compute_zi();

  // Bispectrum components B_l for the canonical triples; requires
  // compute_zi. Subtracts bzero when enabled.
  void compute_bi();

  // Adjoint: accumulate Y = sum beta * Z on the fly (O(J^3) memory);
  // beta.size() must equal num_b().
  void compute_yi(std::span<const double> beta);

  // Same accumulation from precomputed per-triple coefficients
  // coeffs[t] = beta[t.idxb] * t.beta_scale (coeffs.size() must equal
  // z_triples().size()). Lets linear models hoist the coefficient fold
  // out of the per-atom loop entirely.
  void compute_yi_coeffs(std::span<const double> coeffs);

  // Per-neighbor derivative d(w fc u)/dr for the given displacement;
  // fills the internal dU buffer used by the two force kernels below.
  // Runs the full-range recursion from scratch (Naive scheme); valid
  // under either kernel.
  void compute_duidrj(const Vec3& rij, double wj);

  // Symmetric-kernel fast path: derivative recursion for neighbor k of
  // the last compute_ui call, reusing its cached Cayley-Klein mapping and
  // bare U list (half range, no U recomputation). Requires
  // kernel == Symmetric or Simd (under Simd the lane-interleaved bare-U
  // cache is gathered back into a contiguous scratch first).
  void compute_duidrj_cached(int k);

  // Number of neighbors cached by the last Symmetric/Simd compute_ui.
  [[nodiscard]] int cached_neighbors() const { return nnbor_cached_; }

  // Blocked dU + dE pass over every neighbor cached by the last
  // compute_ui: de[k] = dE_i/dr_k. Requires compute_yi/compute_yi_coeffs.
  // Under an active SIMD backend each block of lane_width neighbors runs
  // the derivative recursion and the fused Y : conj(dU) contraction in
  // vector registers; otherwise this is exactly the per-neighbor
  // compute_duidrj_cached + compute_deidrj loop.
  void compute_deidrj_all(std::span<Vec3> de);

  // ISA the Simd kernel dispatched to at construction (Scalar when the
  // kernel is not Simd or no vector backend applies).
  [[nodiscard]] simd::SimdIsa simd_isa() const { return simd_isa_; }

  // Adjoint force kernel: dE_i/dr_k = 2 Re sum_j Y_j : conj(dU_j).
  // Contracts over whichever dU form the last compute_duidrj* call
  // produced (full range, or weighted half range).
  [[nodiscard]] Vec3 compute_deidrj() const;

  // Baseline force kernel: dB_l/dr_k for every canonical triple
  // (requires compute_zi and compute_duidrj).
  void compute_dbidrj();

  // ---- results ----
  [[nodiscard]] std::span<const double> blist() const { return blist_; }
  [[nodiscard]] std::span<const Vec3> dblist() const { return dblist_; }
  [[nodiscard]] std::span<const Cplx> utot() const { return utot_; }
  [[nodiscard]] std::span<const Cplx> ylist() const { return ylist_; }
  [[nodiscard]] std::span<const Cplx> zlist() const { return zlist_; }
  [[nodiscard]] std::span<const DU> dulist() const { return dulist_; }

  // Energy of the atom given linear SNAP coefficients (beta0 + beta . B);
  // requires compute_bi.
  [[nodiscard]] double energy(double beta0,
                              std::span<const double> beta) const;

  // Energy via the adjoint identity sum_j Y_j : conj(U_j) = 3 sum beta.B
  // (every B component appears through its three U-slot dependency paths);
  // requires compute_yi with the same beta. Lets the adjoint path skip Z
  // storage entirely. beta is needed only for the bzero correction.
  [[nodiscard]] double energy_from_yi(double beta0,
                                      std::span<const double> beta) const;

  // ---- analytic FLOP estimates (double-precision mul+add counted as 2) --
  // All counts reflect the configured kernel: the Symmetric variants count
  // the halved column range, the cached (recursion-free) dU pass, and the
  // mirror expansions, so reported FLOP rates stay honest for both.
  [[nodiscard]] double flops_ui(int nnbor) const;
  [[nodiscard]] double flops_zi() const;
  [[nodiscard]] double flops_bi() const;
  [[nodiscard]] double flops_yi() const;
  [[nodiscard]] double flops_duidrj() const;   // per neighbor, adjoint path
  [[nodiscard]] double flops_duidrj_full() const;  // full-range recursion
  [[nodiscard]] double flops_deidrj() const;   // per neighbor
  [[nodiscard]] double flops_dbidrj() const;   // per neighbor
  // Total per-atom FLOPs of the adjoint path with nnbor neighbors.
  [[nodiscard]] double flops_adjoint_atom(int nnbor) const;

 private:
  // Single-neighbor U recursion into ulist_; optionally also the
  // derivative recursion into dulist_raw_ (du of the bare u, before the
  // fc/weight product rule).
  void u_recursion(const CayleyKlein& ck, bool with_derivatives);

  // Symmetric kernel: bare half-range U recursion into split re/im planes
  // (compact half layout, u_half_total elements).
  void u_half_recursion(const CayleyKlein& ck, double* ur, double* ui) const;

  // Symmetric kernel: accumulate + cache + mirror variant of compute_ui.
  void compute_ui_symmetric(std::span<const Vec3> rij,
                            std::span<const double> wj);

  // Simd kernel: lane-blocked variant; fills the lane-interleaved bare-U
  // cache and reduces the lane accumulator into the half planes.
  void compute_ui_simd(std::span<const Vec3> rij, std::span<const double> wj);

  // True when this instance dispatched to a vector backend (kernel ==
  // Simd and the CPU/binary/EMBER_SIMD resolution picked AVX2/AVX-512).
  [[nodiscard]] bool simd_active() const { return simd_ops_ != nullptr; }

  // True for the kernels built on the half-range SoA planes.
  [[nodiscard]] bool half_kernel() const {
    return params_.kernel != SnapKernel::Naive;
  }

  // Pack lane l of the block starting at neighbor k0 into simd_ck_ /
  // simd_wfc_ (padded lanes repeat the last active neighbor, weight 0).
  void pack_ck_lane(int k0, int lane, int width);

  // Expand a half-layout SoA plane pair into a full-range Cplx array via
  // the conjugation mirror.
  void mirror_half_to_full(const double* hre, const double* him,
                           std::vector<Cplx>& full) const;

  // z-matrix element (row ma, col mb) of coupling triple t, from utot_.
  [[nodiscard]] Cplx z_element(const ZTriple& t, int ma, int mb) const;
  // Same value through the unit-stride aligned CG blocks (Symmetric
  // kernel's Y sweep).
  [[nodiscard]] Cplx z_element_aligned(const ZTriple& t, int ma,
                                       int mb) const;

  // compute_bi with an explicit bzero choice; the constructor uses it to
  // measure the isolated-atom reference without mutating params_.
  void compute_bi_impl(bool subtract_bzero);

  const SnapParams params_;
  SnapIndex idx_;
  std::vector<double> rootpq_;  // rootpq_[p*(tj+1)+q] = sqrt(p/q)

  std::vector<Cplx> utot_;
  std::vector<Cplx> ulist_;      // per-neighbor scratch
  std::vector<DU> dulist_raw_;   // per-neighbor du (bare u)
  std::vector<DU> dulist_;       // d(w fc u)/dr
  std::vector<Cplx> zlist_;
  std::vector<Cplx> ylist_;
  std::vector<double> blist_;
  std::vector<Vec3> dblist_;
  std::vector<double> bzero_;
  bool have_z_ = false;

  // ---- Symmetric/Simd-kernel state (half layout, SoA planes) ----
  // All planes are 64-byte aligned (aligned_vector) so the V8 backend can
  // issue aligned vector loads; the Symmetric scalar code is indifferent.
  std::vector<CayleyKlein> ck_cache_;   // per-neighbor mapping (V7)
  std::vector<double> wj_cache_;        // per-neighbor weights
  aligned_vector<double> ucache_re_;    // bare U cache (V7): Symmetric
  aligned_vector<double> ucache_im_;    //   nnbor x nh element-major, Simd
                                        //   nblock x nh x width interleaved
  aligned_vector<double> utot_half_re_; // half-range accumulation (V5/V6)
  aligned_vector<double> utot_half_im_;
  aligned_vector<double> y_half_re_;    // half-range adjoint (V5/V6)
  aligned_vector<double> y_half_im_;
  aligned_vector<double> du_half_re_[3]; // half-range d(w fc u)/dr (V6)
  aligned_vector<double> du_half_im_[3];
  std::vector<double> yi_coeff_scratch_;  // per-triple beta fold
  int nnbor_cached_ = 0;
  // Which form the last compute_duidrj* call produced: half planes
  // (cached) or the full dulist_.
  bool du_half_valid_ = false;

  // ---- Simd-kernel state (V8) ----
  simd::SimdIsa simd_isa_ = simd::SimdIsa::Scalar;
  const simd::SimdOps* simd_ops_ = nullptr;  // nullptr => Symmetric path
  aligned_vector<double> simd_ck_;       // kCkSlots x width lane-packed CK
  aligned_vector<double> simd_wfc_;      // wj * fc per lane (0 when padded)
  aligned_vector<double> simd_acc_re_;   // lane-interleaved Utot accum
  aligned_vector<double> simd_acc_im_;
  aligned_vector<double> simd_du_re_[3]; // lane-interleaved dU scratch
  aligned_vector<double> simd_du_im_[3];
  aligned_vector<double> simd_out_;      // 3 x width force lanes
  aligned_vector<double> u_gather_re_;   // contiguous single-neighbor U
  aligned_vector<double> u_gather_im_;   //   (compute_duidrj_cached compat)
};

}  // namespace ember::snap
