#pragma once

// Per-atom SNAP bispectrum engine.
//
// This class owns the flattened U/Z/Y/B scratch arrays for one atom and
// exposes the computation stages exactly as the paper's Listings 1/5 name
// them, in two execution paths:
//
//   baseline path (Listing 1):
//     compute_ui -> compute_zi -> compute_bi          (energy/descriptors)
//                 \-> per neighbor: compute_duidrj -> compute_dbidrj
//     Z storage is O(J^5); dB is O(J^5) work per neighbor.
//
//   adjoint path (Listing 5, the paper's §IV refactorization):
//     compute_ui -> compute_yi(beta)
//                 \-> per neighbor: compute_duidrj -> compute_deidrj
//     Y storage is O(J^3); force is O(J^3) work per neighbor.
//
// The same instance can be reused across atoms (buffers are reset by
// compute_ui). Instances are NOT thread-safe; create one per thread.

#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "snap/cplx.hpp"
#include "snap/indexing.hpp"
#include "snap/wigner.hpp"

namespace ember::snap {

struct SnapParams {
  int twojmax = 8;        // 2J; paper uses 8 (55 components) and 14 (204)
  double rcut = 4.7;      // neighbor cutoff [A]
  double rmin0 = 0.0;     // inner radius of the angular mapping [A]
  double rfac0 = 0.99363; // fraction of pi covered at r = rcut
  double wself = 1.0;     // self-contribution weight
  bool switch_flag = true; // apply the smooth cutoff fc(r)
  bool bzero_flag = false; // subtract the isolated-atom bispectrum
};

// Derivative of the weighted, switched U contribution of one neighbor:
// d(w * fc(r) * u)/d{x,y,z}.
struct DU {
  Cplx d[3];
};

class Bispectrum {
 public:
  explicit Bispectrum(const SnapParams& params);

  [[nodiscard]] const SnapParams& params() const { return params_; }
  [[nodiscard]] const SnapIndex& index() const { return idx_; }
  [[nodiscard]] int num_b() const { return idx_.num_b(); }

  // ---- stage kernels ----

  // Accumulate Utot over neighbors (positions relative to the central
  // atom, all with |rij| < rcut) plus the self term.
  void compute_ui(std::span<const Vec3> rij, std::span<const double> wj);

  // Baseline: compute and store every coupled Z matrix (O(J^5) memory).
  void compute_zi();

  // Bispectrum components B_l for the canonical triples; requires
  // compute_zi. Subtracts bzero when enabled.
  void compute_bi();

  // Adjoint: accumulate Y = sum beta * Z on the fly (O(J^3) memory);
  // beta.size() must equal num_b().
  void compute_yi(std::span<const double> beta);

  // Per-neighbor derivative d(w fc u)/dr for the given displacement;
  // fills the internal dU buffer used by the two force kernels below.
  void compute_duidrj(const Vec3& rij, double wj);

  // Adjoint force kernel: dE_i/dr_k = 2 Re sum_j Y_j : conj(dU_j).
  [[nodiscard]] Vec3 compute_deidrj() const;

  // Baseline force kernel: dB_l/dr_k for every canonical triple
  // (requires compute_zi and compute_duidrj).
  void compute_dbidrj();

  // ---- results ----
  [[nodiscard]] std::span<const double> blist() const { return blist_; }
  [[nodiscard]] std::span<const Vec3> dblist() const { return dblist_; }
  [[nodiscard]] std::span<const Cplx> utot() const { return utot_; }
  [[nodiscard]] std::span<const Cplx> ylist() const { return ylist_; }
  [[nodiscard]] std::span<const Cplx> zlist() const { return zlist_; }
  [[nodiscard]] std::span<const DU> dulist() const { return dulist_; }

  // Energy of the atom given linear SNAP coefficients (beta0 + beta . B);
  // requires compute_bi.
  [[nodiscard]] double energy(double beta0,
                              std::span<const double> beta) const;

  // Energy via the adjoint identity sum_j Y_j : conj(U_j) = 3 sum beta.B
  // (every B component appears through its three U-slot dependency paths);
  // requires compute_yi with the same beta. Lets the adjoint path skip Z
  // storage entirely. beta is needed only for the bzero correction.
  [[nodiscard]] double energy_from_yi(double beta0,
                                      std::span<const double> beta) const;

  // ---- analytic FLOP estimates (double-precision mul+add counted as 2) --
  [[nodiscard]] double flops_ui(int nnbor) const;
  [[nodiscard]] double flops_zi() const;
  [[nodiscard]] double flops_bi() const;
  [[nodiscard]] double flops_yi() const;
  [[nodiscard]] double flops_duidrj() const;   // per neighbor
  [[nodiscard]] double flops_deidrj() const;   // per neighbor
  [[nodiscard]] double flops_dbidrj() const;   // per neighbor
  // Total per-atom FLOPs of the adjoint path with nnbor neighbors.
  [[nodiscard]] double flops_adjoint_atom(int nnbor) const;

 private:
  // Single-neighbor U recursion into ulist_; optionally also the
  // derivative recursion into dulist_raw_ (du of the bare u, before the
  // fc/weight product rule).
  void u_recursion(const CayleyKlein& ck, bool with_derivatives);

  // z-matrix element (row ma, col mb) of coupling triple t, from utot_.
  [[nodiscard]] Cplx z_element(const ZTriple& t, int ma, int mb) const;

  SnapParams params_;
  SnapIndex idx_;
  std::vector<double> rootpq_;  // rootpq_[p*(tj+1)+q] = sqrt(p/q)

  std::vector<Cplx> utot_;
  std::vector<Cplx> ulist_;      // per-neighbor scratch
  std::vector<DU> dulist_raw_;   // per-neighbor du (bare u)
  std::vector<DU> dulist_;       // d(w fc u)/dr
  std::vector<Cplx> zlist_;
  std::vector<Cplx> ylist_;
  std::vector<double> blist_;
  std::vector<Vec3> dblist_;
  std::vector<double> bzero_;
  bool have_z_ = false;
};

}  // namespace ember::snap
