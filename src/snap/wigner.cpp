#include "wigner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "snap/factorial.hpp"

namespace ember::snap {

CayleyKlein map_to_sphere(const Vec3& rij, double rcut, double rfac0,
                          double rmin0, bool switch_flag) {
  const double r = rij.norm();
  EMBER_REQUIRE(r > 0.0 && r < rcut, "neighbor distance outside (0, rcut)");

  const double rscale0 = rfac0 * M_PI / (rcut - rmin0);
  const double theta0 = (r - rmin0) * rscale0;
  const double z0 = r / std::tan(theta0);
  const double dz0dr = z0 / r - rscale0 * (r * r + z0 * z0) / r;

  const double r0inv = 1.0 / std::sqrt(r * r + z0 * z0);
  const double x = rij.x;
  const double y = rij.y;
  const double z = rij.z;

  CayleyKlein ck;
  ck.a = {r0inv * z0, -r0inv * z};
  ck.b = {r0inv * y, -r0inv * x};

  // d(r0inv)/d alpha = -r0inv^3 * (r + z0 * dz0dr) * (x_alpha / r)
  const double dr0invdr = -r0inv * r0inv * r0inv * (r + z0 * dz0dr) / r;
  const double dr0inv[3] = {dr0invdr * x, dr0invdr * y, dr0invdr * z};
  const double u[3] = {x / r, y / r, z / r};  // unit vector components

  for (int d = 0; d < 3; ++d) {
    // a = (z0 - i z) * r0inv
    ck.da[d] = Cplx{z0, -z} * dr0inv[d] + Cplx{r0inv * dz0dr * u[d], 0.0};
    // b = (y - i x) * r0inv
    ck.db[d] = Cplx{y, -x} * dr0inv[d];
  }
  ck.da[2] += Cplx{0.0, -r0inv};  // d(-iz)/dz
  ck.db[0] += Cplx{0.0, -r0inv};  // d(-ix)/dx
  ck.db[1] += Cplx{r0inv, 0.0};   // d(y)/dy

  if (switch_flag) {
    if (r <= rmin0) {
      ck.fc = 1.0;
      ck.dfc[0] = ck.dfc[1] = ck.dfc[2] = 0.0;
    } else {
      const double arg = M_PI * (r - rmin0) / (rcut - rmin0);
      ck.fc = 0.5 * (std::cos(arg) + 1.0);
      const double dfcdr = -0.5 * M_PI / (rcut - rmin0) * std::sin(arg);
      for (int d = 0; d < 3; ++d) ck.dfc[d] = dfcdr * u[d];
    }
  } else {
    ck.fc = 1.0;
    ck.dfc[0] = ck.dfc[1] = ck.dfc[2] = 0.0;
  }
  return ck;
}

Cplx wigner_element(int twoj, int kp, int k, const Cplx& a, const Cplx& b) {
  const int J = twoj;
  EMBER_REQUIRE(kp >= 0 && kp <= J && k >= 0 && k <= J,
                "wigner element index out of range");

  // Powers of the four Cayley-Klein quantities up to J.
  Cplx pow_a[16], pow_b[16], pow_ac[16], pow_mbc[16];
  pow_a[0] = pow_b[0] = pow_ac[0] = pow_mbc[0] = {1.0, 0.0};
  const Cplx ac = conj(a);
  const Cplx mbc = -conj(b);
  for (int n = 1; n <= J; ++n) {
    pow_a[n] = pow_a[n - 1] * a;
    pow_b[n] = pow_b[n - 1] * b;
    pow_ac[n] = pow_ac[n - 1] * ac;
    pow_mbc[n] = pow_mbc[n - 1] * mbc;
  }

  const auto binom = [](int n, int r) -> long double {
    return factorial(n) / (factorial(r) * factorial(n - r));
  };

  Cplx sum{0.0, 0.0};
  const int pmin = std::max(0, k + kp - J);
  const int pmax = std::min(k, kp);
  for (int p = pmin; p <= pmax; ++p) {
    const auto coeff =
        static_cast<double>(binom(k, p) * binom(J - k, kp - p));
    sum += coeff * (pow_a[p] * pow_b[k - p] * pow_mbc[kp - p] *
                    pow_ac[J - k - kp + p]);
  }
  const auto norm = static_cast<double>(
      std::sqrt(factorial(kp) * factorial(J - kp) /
                (factorial(k) * factorial(J - k))));
  return norm * sum;
}

std::vector<Cplx> wigner_matrix(int twoj, const Cplx& a, const Cplx& b) {
  const int n = twoj + 1;
  std::vector<Cplx> u(static_cast<std::size_t>(n) * n);
  for (int kp = 0; kp < n; ++kp) {
    for (int k = 0; k < n; ++k) {
      u[static_cast<std::size_t>(kp) * n + k] = wigner_element(twoj, kp, k, a, b);
    }
  }
  return u;
}

}  // namespace ember::snap
