#pragma once

// Index bookkeeping for the flattened SNAP data structures.
//
// All angular momenta are doubled integers (j means twoj below). The U
// arrays for j = 0..twojmax are stored back to back; block j holds the
// (j+1)x(j+1) matrix row-major: element (j; ma, mb) lives at
//     u_block[j] + ma * (j+1) + mb
// with ma = j + 2m' (row) and mb = j + 2m (column), i.e. ma,mb = 0..j.
//
// The coupling list enumerates every triple (j1, j2, j) with
//     j2 <= j1 <= twojmax,   |j1-j2| <= j <= min(twojmax, j1+j2),  step 2,
// which covers both the canonical bispectrum triples (those with j >= j1,
// the paper's 0 <= 2j2 <= 2j1 <= 2j <= 2J enumeration) and the permuted
// triples needed by the adjoint accumulation (eq. 6 of the paper). Each
// entry records which canonical B component it contributes to and with what
// multiplicity/normalization.

#include <vector>

#include "common/error.hpp"

namespace ember::snap {

struct ZTriple {
  int j1 = 0;  // first coupled momentum (doubled), j1 >= j2
  int j2 = 0;  // second coupled momentum (doubled)
  int j = 0;   // product momentum (doubled)
  int idxb = -1;       // canonical B component this triple contributes to
  double beta_scale = 1.0;  // multiplicity x normalization for compute_yi
  int idxcg = 0;       // offset of this triple's Clebsch-Gordan block
  int idxz_u = 0;      // offset of this triple's slot in the z value array
  int idxcga = 0;      // offset of this triple's aligned CG block
};

// Contraction weight of element (j; ma, mb) under the half-column symmetry
// scheme U[j, ma, mb] = (-1)^(ma+mb) conj(U[j, j-ma, j-mb]): strictly
// left-half columns stand in for their mirror (weight 2); on the middle
// column of even j the rows above the diagonal carry the mirror (2), the
// diagonal element is its own mirror (1), and the rows below are redundant
// (0). Shared by the TestSNAP V5..V7 variants and the production
// Symmetric kernel.
constexpr double half_weight(int j, int ma, int mb) {
  if (2 * mb < j) return 2.0;
  if (2 * ma < j) return 2.0;
  if (2 * ma == j) return 1.0;
  return 0.0;
}

struct BTriple {
  int j1 = 0;
  int j2 = 0;
  int j = 0;  // j >= j1 >= j2
};

class SnapIndex {
 public:
  explicit SnapIndex(int twojmax);

  [[nodiscard]] int twojmax() const { return twojmax_; }

  // ---- U storage ----
  [[nodiscard]] int u_block(int j) const { return u_block_[j]; }
  [[nodiscard]] int u_total() const { return u_total_; }
  [[nodiscard]] int u_index(int j, int ma, int mb) const {
    return u_block_[j] + ma * (j + 1) + mb;
  }

  // ---- half-range U storage (Symmetric kernel) ----
  // Block j keeps only the columns with 2*mb <= j: (j+1) rows of
  // (j/2 + 1) columns, row-major. The dropped columns are recovered via
  // U[j, ma, mb] = (-1)^(ma+mb) conj(U[j, j-ma, j-mb]).
  [[nodiscard]] int u_half_block(int j) const { return u_half_block_[j]; }
  // Raw block-offset table (twojmax + 1 entries) for kernels that take
  // plain pointers (src/snap/simd/).
  [[nodiscard]] const int* u_half_block_data() const {
    return u_half_block_.data();
  }
  [[nodiscard]] int u_half_total() const { return u_half_total_; }
  [[nodiscard]] int u_half_index(int j, int ma, int mb) const {
    return u_half_block_[j] + ma * (j / 2 + 1) + mb;
  }
  // half_weight(j, ma, mb) flattened over the half layout; contractions
  // over the half range multiply by this table to restore the full sum.
  [[nodiscard]] const std::vector<double>& half_weights() const {
    return half_weight_;
  }

  // ---- coupling triples ----
  [[nodiscard]] const std::vector<ZTriple>& z_triples() const { return z_; }
  [[nodiscard]] const std::vector<BTriple>& b_triples() const { return b_; }
  [[nodiscard]] int num_b() const { return static_cast<int>(b_.size()); }
  // index of canonical triple (j1, j2, j) with j >= j1 >= j2
  [[nodiscard]] int b_index(int j1, int j2, int j) const;
  // total size of the per-triple z matrices ((j+1)^2 each), baseline path
  [[nodiscard]] int z_total() const { return z_total_; }
  // index into z_triples() of the entry coupling {ja, jb} -> rank j
  // (argument order of the pair does not matter)
  [[nodiscard]] int z_index(int ja, int jb, int j) const;

  // ---- Clebsch-Gordan blocks ----
  // Block for triple t holds C^{j m}_{j1 m1 j2 m2} for all (m1, m2), flat
  // index (ma1 * (j2+1) + ma2) with ma1 = (j1+2m1)/... = 0..j1 etc.;
  // m = m1 + m2 implied.
  [[nodiscard]] const std::vector<double>& cg_values() const { return cg_; }
  [[nodiscard]] double cg(const ZTriple& t, int ma1, int ma2) const {
    return cg_[t.idxcg + ma1 * (t.j2 + 1) + ma2];
  }

  // Aligned CG blocks: the z-element sums walk cg(t, m1, m + s - m1) with
  // m fixed, which strides the raw (m1, m2) block by j2 per step. The
  // aligned block re-lays each triple as (j+1) contiguous rows of (j1+1)
  // entries,
  //     aligned_cg_row(t, m)[m1] = C^{j m}_{j1 m1 j2 (m+s-m1)},
  // zero outside the coupling range, so both the row (ma) and column (mb)
  // factor lookups of a z element are unit-stride.
  [[nodiscard]] const double* aligned_cg_row(const ZTriple& t, int m) const {
    return cg_aligned_.data() + t.idxcga + m * (t.j1 + 1);
  }

 private:
  int twojmax_;
  std::vector<int> u_block_;
  int u_total_ = 0;
  std::vector<int> u_half_block_;
  int u_half_total_ = 0;
  std::vector<double> half_weight_;
  std::vector<double> cg_aligned_;
  std::vector<ZTriple> z_;
  std::vector<BTriple> b_;
  std::vector<int> b_block_;  // dense [j1][j2][j] lookup
  std::vector<int> z_block_;  // dense [j1][j2][j] lookup (j1 >= j2)
  int z_total_ = 0;
  std::vector<double> cg_;
};

}  // namespace ember::snap
