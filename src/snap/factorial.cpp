#include "factorial.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ember::snap {

namespace {

std::array<long double, kMaxFactorial + 1> build_table() {
  std::array<long double, kMaxFactorial + 1> table{};
  table[0] = 1.0L;
  for (int n = 1; n <= kMaxFactorial; ++n) {
    table[n] = table[n - 1] * static_cast<long double>(n);
  }
  return table;
}

}  // namespace

long double factorial(int n) {
  static const auto table = build_table();
  EMBER_REQUIRE(n >= 0 && n <= kMaxFactorial, "factorial argument out of range");
  return table[n];
}

double clebsch_gordan(int twoj1, int twom1, int twoj2, int twom2, int twoj,
                      int twom) {
  // Projection conservation and range checks.
  if (twom1 + twom2 != twom) return 0.0;
  if (twoj < std::abs(twoj1 - twoj2) || twoj > twoj1 + twoj2) return 0.0;
  if (std::abs(twom1) > twoj1 || std::abs(twom2) > twoj2 || std::abs(twom) > twoj)
    return 0.0;
  // j and m must have the same parity (both doubled values even or odd).
  if ((twoj1 + twom1) % 2 != 0 || (twoj2 + twom2) % 2 != 0 ||
      (twoj + twom) % 2 != 0)
    return 0.0;
  // (j1 + j2 + j) must be an integer for a valid coupling.
  if ((twoj1 + twoj2 + twoj) % 2 != 0) return 0.0;

  // All factorial arguments below are guaranteed integral; divide doubled
  // sums by 2 once validity is established.
  const auto f = [](int doubled) { return factorial(doubled / 2); };

  const long double prefactor =
      std::sqrt(static_cast<long double>(twoj + 1) * f(twoj1 + twoj2 - twoj) *
                f(twoj1 - twoj2 + twoj) * f(-twoj1 + twoj2 + twoj) /
                f(twoj1 + twoj2 + twoj + 2)) *
      std::sqrt(f(twoj + twom) * f(twoj - twom) * f(twoj1 - twom1) *
                f(twoj1 + twom1) * f(twoj2 - twom2) * f(twoj2 + twom2));

  // Racah sum over k (doubled index twok steps by 2).
  long double sum = 0.0L;
  const int twok_min =
      std::max({0, twoj2 - twoj - twom1, twoj1 - twoj + twom2});
  const int twok_max =
      std::min({twoj1 + twoj2 - twoj, twoj1 - twom1, twoj2 + twom2});
  for (int twok = twok_min; twok <= twok_max; twok += 2) {
    const long double denom =
        f(twok) * f(twoj1 + twoj2 - twoj - twok) * f(twoj1 - twom1 - twok) *
        f(twoj2 + twom2 - twok) * f(twoj - twoj2 + twom1 + twok) *
        f(twoj - twoj1 - twom2 + twok);
    const long double sign = (twok / 2) % 2 == 0 ? 1.0L : -1.0L;
    sum += sign / denom;
  }
  return static_cast<double>(prefactor * sum);
}

}  // namespace ember::snap
