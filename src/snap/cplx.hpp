#pragma once

// Lightweight complex type for the SNAP kernels.
//
// std::complex<double> multiplication lowers to the __muldc3 runtime call
// under strict IEEE rules (NaN/Inf fix-up), which destroys vectorization in
// the U-recursion hot loop. Cplx provides the naive arithmetic the kernels
// need; inputs are always finite by construction.

namespace ember::snap {

struct Cplx {
  double re = 0.0;
  double im = 0.0;

  constexpr Cplx() = default;
  constexpr Cplx(double r, double i) : re(r), im(i) {}

  constexpr Cplx& operator+=(const Cplx& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr Cplx& operator-=(const Cplx& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr Cplx& operator*=(double s) {
    re *= s;
    im *= s;
    return *this;
  }
};

constexpr Cplx operator+(Cplx a, const Cplx& b) { return a += b; }
constexpr Cplx operator-(Cplx a, const Cplx& b) { return a -= b; }
constexpr Cplx operator*(Cplx a, double s) { return a *= s; }
constexpr Cplx operator*(double s, Cplx a) { return a *= s; }
constexpr Cplx operator*(const Cplx& a, const Cplx& b) {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}
constexpr Cplx conj(const Cplx& a) { return {a.re, -a.im}; }
constexpr Cplx operator-(const Cplx& a) { return {-a.re, -a.im}; }

// Re(a * conj(b)) — the contraction primitive of the Y : dU* force kernel.
constexpr double re_mul_conj(const Cplx& a, const Cplx& b) {
  return a.re * b.re + a.im * b.im;
}

}  // namespace ember::snap
