#pragma once

// Lightweight complex type for the SNAP kernels.
//
// std::complex<double> multiplication lowers to the __muldc3 runtime call
// under strict IEEE rules (NaN/Inf fix-up), which destroys vectorization in
// the U-recursion hot loop. Cplx provides the naive arithmetic the kernels
// need; inputs are always finite by construction.
//
// CplxSoaView / CplxSoaConstView are span-based views over split re/im
// planes (structure-of-arrays): the Symmetric kernel stores U, Y, and dU
// as contiguous double planes so the Y : conj(dU) contractions reduce to
// unit-stride real dot products that autovectorize.

#include <span>

namespace ember::snap {

struct Cplx {
  double re = 0.0;
  double im = 0.0;

  constexpr Cplx() = default;
  constexpr Cplx(double r, double i) : re(r), im(i) {}

  constexpr Cplx& operator+=(const Cplx& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr Cplx& operator-=(const Cplx& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr Cplx& operator*=(double s) {
    re *= s;
    im *= s;
    return *this;
  }
};

constexpr Cplx operator+(Cplx a, const Cplx& b) { return a += b; }
constexpr Cplx operator-(Cplx a, const Cplx& b) { return a -= b; }
constexpr Cplx operator*(Cplx a, double s) { return a *= s; }
constexpr Cplx operator*(double s, Cplx a) { return a *= s; }
constexpr Cplx operator*(const Cplx& a, const Cplx& b) {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}
constexpr Cplx conj(const Cplx& a) { return {a.re, -a.im}; }
constexpr Cplx operator-(const Cplx& a) { return {-a.re, -a.im}; }

// Re(a * conj(b)) — the contraction primitive of the Y : dU* force kernel.
constexpr double re_mul_conj(const Cplx& a, const Cplx& b) {
  return a.re * b.re + a.im * b.im;
}

// Mutable view over split re/im planes of equal length.
struct CplxSoaView {
  std::span<double> re;
  std::span<double> im;

  [[nodiscard]] Cplx load(std::size_t i) const { return {re[i], im[i]}; }
  void store(std::size_t i, const Cplx& v) const {
    re[i] = v.re;
    im[i] = v.im;
  }
  void accumulate(std::size_t i, const Cplx& v) const {
    re[i] += v.re;
    im[i] += v.im;
  }
  [[nodiscard]] std::size_t size() const { return re.size(); }
  [[nodiscard]] CplxSoaView subview(std::size_t offset) const {
    return {re.subspan(offset), im.subspan(offset)};
  }
};

// Read-only counterpart.
struct CplxSoaConstView {
  std::span<const double> re;
  std::span<const double> im;

  CplxSoaConstView() = default;
  CplxSoaConstView(std::span<const double> r, std::span<const double> i)
      : re(r), im(i) {}
  CplxSoaConstView(const CplxSoaView& v) : re(v.re), im(v.im) {}

  [[nodiscard]] Cplx load(std::size_t i) const { return {re[i], im[i]}; }
  [[nodiscard]] std::size_t size() const { return re.size(); }
  [[nodiscard]] CplxSoaConstView subview(std::size_t offset) const {
    return {re.subspan(offset), im.subspan(offset)};
  }
};

}  // namespace ember::snap
