#pragma once

// Factorial table and Clebsch-Gordan coefficients for the SNAP bispectrum.
//
// All angular-momentum arguments are passed as *doubled* integers
// (twoj = 2j, twom = 2m), the same convention LAMMPS uses, so half-integer
// momenta are exact. Factorials are tabulated in long double: the largest
// argument appearing for 2J = 14 is (j1+j2+j)/1 + 1 ~ 22, far below the
// 1754! overflow limit of long double.

#include <array>

namespace ember::snap {

inline constexpr int kMaxFactorial = 170;

// n! as long double, tabulated at first use.
long double factorial(int n);

// Clebsch-Gordan coefficient C^{j m}_{j1 m1 j2 m2} with doubled arguments.
// Returns 0 when the triangle or projection conditions fail.
double clebsch_gordan(int twoj1, int twom1, int twoj2, int twom2, int twoj,
                      int twom);

}  // namespace ember::snap
