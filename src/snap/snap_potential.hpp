#pragma once

// SNAP as an MD PairPotential.
//
// Wraps the Bispectrum kernel over a neighbor list. The execution path is
// selectable so benchmarks can contrast the paper's two algorithms:
//   Path::Adjoint  — compute_ui -> compute_yi -> per-neighbor dE (Listing 5)
//   Path::Baseline — compute_ui -> compute_zi -> per-neighbor dB (Listing 1)
// Both produce identical forces (tests pin this); the adjoint path is the
// production default.

#include <memory>
#include <string>
#include <vector>

#include "md/potential.hpp"
#include "snap/bispectrum.hpp"

namespace ember::obs {
class Counter;
}  // namespace ember::obs

namespace ember::snap {

// A trained SNAP model:
//   linear    E_i = beta0 + beta . B(i)
//   quadratic E_i = beta0 + beta . B(i) + 1/2 B(i)^T alpha B(i)
// where alpha is symmetric (stored dense, row-major num_b x num_b). The
// quadratic extension follows the LAMMPS quadraticflag formulation: the
// force path reuses the adjoint machinery with per-atom effective
// coefficients beta_eff(i) = beta + alpha B(i).
struct SnapModel {
  SnapParams params;
  double beta0 = 0.0;
  std::vector<double> beta;
  std::vector<double> alpha;  // empty = linear model

  [[nodiscard]] bool quadratic() const { return !alpha.empty(); }
  // beta + alpha * B for one atom's descriptors, written into `out`
  // (resized to num_b). Takes caller scratch so the per-atom force loop
  // performs no heap allocation.
  void effective_beta(std::span<const double> b,
                      std::vector<double>& out) const;
  // Energy of one atom given its descriptors.
  [[nodiscard]] double site_energy(std::span<const double> b) const;

  void save(const std::string& path) const;
  static SnapModel load(const std::string& path);
};

class SnapPotential final : public md::PairPotential {
 public:
  enum class Path { Adjoint, Baseline };

  explicit SnapPotential(SnapModel model, Path path = Path::Adjoint);

  [[nodiscard]] double cutoff() const override {
    return model_.params.rcut;
  }
  [[nodiscard]] const char* name() const override {
    return path_ == Path::Adjoint ? "snap/adjoint" : "snap/baseline";
  }

  // Threaded over atom blocks: worker 0 reuses the member kernel/scratch
  // (the exact serial path), workers >= 1 get a private Bispectrum +
  // buffers from the context's per-thread cache — the per-atom U/Y/dU
  // arrays are allocated once per thread, never shared.
  using md::PairPotential::compute;
  md::EnergyVirial compute(const md::ComputeContext& ctx, md::System& sys,
                           const md::NeighborList& nl) override;

  [[nodiscard]] const SnapModel& model() const { return model_; }
  [[nodiscard]] Bispectrum& kernel() { return bi_; }
  void set_path(Path path) { path_ = path; }
  [[nodiscard]] Path path() const { return path_; }

  // FLOPs executed by the last compute() call (analytic estimate).
  [[nodiscard]] double last_flops() const { return last_flops_; }

 private:
  SnapModel model_;
  Path path_;
  Bispectrum bi_;
  double last_flops_ = 0.0;
  // Linear models: per-triple adjoint coefficients beta[idxb] * beta_scale,
  // folded once at construction so the per-atom loop skips the fold (the
  // quadratic path cannot hoist it — beta_eff depends on the atom's B).
  std::vector<double> y_coeff_;
  // per-call scratch (kept to avoid reallocation)
  std::vector<Vec3> rij_;
  std::vector<int> jlist_;
  std::vector<double> beta_eff_;
  std::vector<Vec3> de_;  // blocked dE_i/dr_k results (half kernels)
  // Per-ISA stage counters ("snap.simd.<isa>.*"), registered once at
  // construction when the kernel is Simd; null otherwise.
  obs::Counter* isa_ui_seconds_ = nullptr;
  obs::Counter* isa_dei_seconds_ = nullptr;
};

}  // namespace ember::snap
