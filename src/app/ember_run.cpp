// ember_run — script-driven MD runner.
//
//   ember_run <script>       execute an input script
//   ember_run -              read the script from stdin
//   ember_run --help         command reference
//
// See src/app/interpreter.hpp for the command language and
// examples/inputs/ for ready-made protocols.

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "app/interpreter.hpp"
#include "common/error.hpp"

namespace {

constexpr const char* kHelp = R"(ember_run — script-driven MD (see README.md)

commands:
  mass <amu>
  lattice <sc|bcc|fcc|diamond|bc8> <a> [repeat nx ny nz]
  random <lx> <ly> <lz> <natoms> <minsep> [seed <n>]
  read_checkpoint <file>
  potential <lj e s rc | morse d a r0 rc | tersoff | eam | snap model.snap>
  thermalize <T> [seed <n>]
  timestep <ps>
  thermostat <langevin T damp | berendsen T tau | nose_hoover T tdamp | none>
  barostat <berendsen P tau kappa | none>
  log every <n>
  io <async|sync>         output backend for subsequent runs: async
                          writes behind the step loop on a dedicated
                          thread, sync writes inline (the default)
  dump every <n> <file> [xyz|ember_traj]
                          trajectory output; format defaults by
                          extension (.embt1 -> compressed EMBT1)
  checkpoint every <n> <file.bin>
  run <steps>
  analyze
  analyze trajectory <file.embt1>
                          stream a trajectory through the phase
                          classifier, one summary line per frame
  threads <n|auto>
  ranks <n>               domain-decomposed run on n ranks (state
                          gathers back after each 'run')
  transport <thread|socket>
                          comm backend behind 'ranks': thread ranks
                          share this process, socket ranks are forked
                          OS processes over local sockets
  replicas <n>            n lockstep replicas (BatchedSimulation);
                          checkpoints use the multi-replica format
                          (mutually exclusive with 'ranks'; barostats
                          need the default serial mode)
  trace on <file.json>    start recording scoped spans (Chrome trace
                          format, loadable in Perfetto / chrome://tracing)
  trace off               stop and write the trace file; an active trace
                          also flushes automatically at script end
  metrics dump <file>     export the metrics registry (counters, gauges,
                          histograms) as JSON

environment:
  EMBER_NUM_THREADS=<n>   default thread count (0 = auto); a script's
                          own 'threads' command overrides it
  EMBER_TRACE=<file>      start tracing before the script runs, as if it
                          began with 'trace on <file>'
  EMBER_TRANSPORT=<thread|socket>
                          default comm backend for 'ranks' runs; a
                          script's own 'transport' command overrides it
  EMBER_IO=<async|sync>   default output backend; a script's own 'io'
                          command overrides it
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "--help") {
    std::cout << kHelp;
    return argc == 2 ? 0 : 1;
  }
  try {
    // Construction inside the try: the interpreter reads EMBER_IO for its
    // default output backend, and a bad value must report like any other
    // script error rather than escaping main.
    ember::app::Interpreter interp(std::cout);
    // Environment fallback: scripts that say nothing about threads run
    // with EMBER_NUM_THREADS workers (0 = hardware count). An explicit
    // 'threads' command inside the script wins, since it executes later.
    if (const char* env = std::getenv("EMBER_NUM_THREADS")) {
      const int n = std::atoi(env);
      interp.execute(n == 0 ? "threads auto"
                            : "threads " + std::to_string(n));
    }
    if (const char* trace = std::getenv("EMBER_TRACE")) {
      if (trace[0] != '\0') interp.execute(std::string("trace on ") + trace);
    }
    if (std::string(argv[1]) == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      interp.run_script(buffer.str());
    } else {
      interp.run_file(argv[1]);
    }
  } catch (const std::exception& e) {
    std::cerr << "ember_run: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
