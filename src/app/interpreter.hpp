#pragma once

// ember_run input-script interpreter.
//
// A small LAMMPS-flavoured command language driving the library, so
// production protocols (like the paper's melt-quench-compress-anneal
// runs) are plain text files:
//
//   lattice diamond 3.567 repeat 3 3 3
//   mass 12.011
//   potential tersoff
//   thermalize 300 seed 42
//   timestep 0.0002
//   thermostat langevin 5000 0.05
//   barostat berendsen 12e6 0.05 2e-7
//   log every 100
//   dump every 500 traj.xyz
//   checkpoint every 1000 state.bin
//   run 2000
//   analyze
//
// Commands execute in order; `run` advances the dynamics. Unknown
// commands raise ember::Error with the line number.
//
// `run` executes on one of the three unified StepLoop drivers, selected
// by two mode commands (mutually exclusive):
//   ranks N      domain-decomposed run on N ranks (ParallelSimulation;
//                state gathers back after each run)
//   replicas N   N copies of the system advanced in lockstep
//                (BatchedSimulation; checkpoints use the batch format)
// `transport thread|socket` picks the comm backend behind a ranks run:
// thread ranks share this process, socket ranks are forked OS processes
// (log output then appears on the process stdout, written by rank 0).
// The default honours EMBER_TRANSPORT.
// `snap_kernel naive|symmetric|simd` selects the SNAP force-kernel
// variant (V8 `simd` dispatches AVX-512/AVX2/scalar at runtime; the
// EMBER_SIMD environment variable can lower the ISA). It applies to the
// next `potential snap` and rebuilds an already-loaded snap potential
// in place.
// Barostats only work in the default serial mode (per-rank virials and
// fixed per-replica boxes make box coupling unsound elsewhere).
//
// Output goes through the io::Writer pipeline:
//   io async|sync              pick the backend for subsequent runs (the
//                              default honours EMBER_IO; sync otherwise)
//   dump every N f [xyz|ember_traj]
//                              trajectory format defaults by extension
//                              (.embt1 -> compressed EMBT1)
//   analyze trajectory <file>  stream an EMBT1 file through the phase
//                              classifier, one summary line per frame
// `run` drains the writer before reporting, so a finished run command
// always means the files are on disk (async overlap happens inside the
// run, where it matters).

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "md/batched.hpp"
#include "md/simulation.hpp"
#include "snap/snap_potential.hpp"

namespace ember::app {

class Interpreter {
 public:
  explicit Interpreter(std::ostream& out);
  ~Interpreter();

  // Execute a whole script (throws ember::Error with line info).
  void run_script(const std::string& text);
  void run_file(const std::string& path);

  // Execute a single command line (empty/comment lines are no-ops).
  void execute(const std::string& line);

  // Introspection for tests.
  [[nodiscard]] bool has_system() const { return system_.has_value(); }
  [[nodiscard]] const md::System& system() const;
  [[nodiscard]] md::Simulation* simulation() { return sim_.get(); }
  [[nodiscard]] md::BatchedSimulation* batched() { return batch_.get(); }
  [[nodiscard]] long total_steps() const { return total_steps_; }

 private:
  struct Pending;  // settings staged before the Simulation exists

  void cmd_lattice(std::istream& args);
  void cmd_random(std::istream& args);
  void cmd_mass(std::istream& args);
  void cmd_potential(std::istream& args);
  void cmd_thermalize(std::istream& args);
  void cmd_timestep(std::istream& args);
  void cmd_thermostat(std::istream& args);
  void cmd_barostat(std::istream& args);
  void cmd_log(std::istream& args);
  void cmd_io(std::istream& args);
  void cmd_dump(std::istream& args);
  void cmd_checkpoint(std::istream& args);
  void cmd_run(std::istream& args);
  void cmd_analyze(std::istream& args);
  void cmd_read_checkpoint(std::istream& args);
  void cmd_threads(std::istream& args);
  void cmd_ranks(std::istream& args);
  void cmd_transport(std::istream& args);
  void cmd_snap_kernel(std::istream& args);
  void cmd_replicas(std::istream& args);
  void cmd_trace(std::istream& args);
  void cmd_metrics(std::istream& args);

  void ensure_simulation();
  // Fold any live driver's state back into system_ (mode switches and
  // the parallel run path start from a plain System).
  void reclaim_system();
  // The script-lifetime output backend (sync or async per `io`/EMBER_IO),
  // created lazily and shared by the serial/batched drivers; parallel
  // ranks build their own post-fork copies.
  [[nodiscard]] std::shared_ptr<io::Writer> writer();
  [[nodiscard]] md::IoPlan make_io_plan(bool append) const;
  void run_serial(long steps);
  void run_parallel(long steps);
  void run_batched(long steps);
  void apply_integrator_settings(md::Integrator& integrator) const;
  // Stop the session and write the Chrome trace to trace_path_.
  void flush_trace();

  std::ostream& out_;
  std::optional<md::System> system_;
  std::shared_ptr<md::PairPotential> potential_;
  // Builds a fresh potential instance; the parallel driver needs
  // rank-private potentials (per-thread caches are per-object).
  std::function<std::shared_ptr<md::PairPotential>()> potential_factory_;
  // Set when the current potential is SNAP, so `snap_kernel` can rebuild
  // it with a different kernel variant without reloading the model file.
  std::optional<snap::SnapModel> snap_model_;
  std::optional<snap::SnapKernel> snap_kernel_;  // override for snap loads
  std::unique_ptr<md::Simulation> sim_;
  std::unique_ptr<md::BatchedSimulation> batch_;
  std::vector<md::System> staged_replicas_;  // from a batch checkpoint
  std::shared_ptr<io::Writer> writer_;       // lazily built; see writer()
  std::unique_ptr<Pending> pending_;
  double mass_ = 12.011;
  long total_steps_ = 0;
  int line_number_ = 0;
  std::string trace_path_;  // non-empty while a trace is recording
};

}  // namespace ember::app
