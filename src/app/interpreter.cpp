#include "interpreter.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "analysis/classify.hpp"
#include "comm/transport.hpp"
#include "common/error.hpp"
#include "io/writer.hpp"
#include "md/io.hpp"
#include "md/lattice.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_sim.hpp"
#include "ref/pair_eam.hpp"
#include "ref/pair_lj.hpp"
#include "ref/pair_morse.hpp"
#include "ref/pair_tersoff.hpp"
#include "snap/simd/dispatch.hpp"
#include "snap/snap_potential.hpp"

namespace ember::app {

namespace {

// Extract a mandatory value of type T from the argument stream.
template <typename T>
T need(std::istream& is, const char* what) {
  T value{};
  EMBER_REQUIRE(static_cast<bool>(is >> value),
                std::string("missing or malformed argument: ") + what);
  return value;
}

}  // namespace

struct Interpreter::Pending {
  double dt = 1e-3;
  double skin = 0.4;
  std::uint64_t seed = 12345;
  std::optional<md::LangevinParams> langevin;
  std::optional<md::BerendsenTParams> berendsen_t;
  std::optional<md::NoseHooverParams> nose_hoover;
  std::optional<md::BerendsenPParams> berendsen_p;
  long log_every = 0;
  long dump_every = 0;
  std::string dump_path;
  io::Format dump_format = io::Format::Xyz;
  long checkpoint_every = 0;
  std::string checkpoint_path;
  io::Mode io_mode = io::mode_from_env();  // `io async|sync` overrides
  int nthreads = 1;
  int ranks = 1;     // > 1: domain-decomposed runs (ParallelSimulation)
  int replicas = 1;  // > 1: lockstep replica runs (BatchedSimulation)
  comm::TransportKind transport = comm::default_transport_kind();
};

Interpreter::Interpreter(std::ostream& out)
    : out_(out), pending_(std::make_unique<Pending>()) {}

Interpreter::~Interpreter() {
  // Pending async writes still land if the script ends mid-queue.
  if (writer_) {
    try {
      writer_->drain();
    } catch (...) {
      // Destructor: a failed write was already reported or is beyond help.
    }
  }
  // An active trace still flushes if the script ends without `trace off`.
  if (!trace_path_.empty()) {
    try {
      flush_trace();
    } catch (...) {
      // Destructor: a failed flush (bad path) must not terminate.
    }
  }
}

std::shared_ptr<io::Writer> Interpreter::writer() {
  if (!writer_) writer_ = io::make_writer(pending_->io_mode);
  return writer_;
}

const md::System& Interpreter::system() const {
  EMBER_REQUIRE(system_.has_value(), "no system defined yet");
  return sim_ ? sim_->system() : *system_;
}

void Interpreter::run_script(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  line_number_ = 0;
  while (std::getline(is, line)) {
    ++line_number_;
    try {
      execute(line);
    } catch (const Error& e) {
      throw Error("line " + std::to_string(line_number_) + ": " + e.what());
    }
  }
}

void Interpreter::run_file(const std::string& path) {
  std::ifstream is(path);
  EMBER_REQUIRE(is.good(), "cannot open script: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  run_script(buffer.str());
}

void Interpreter::execute(const std::string& line) {
  // Strip comments.
  const auto hash = line.find('#');
  std::istringstream is(hash == std::string::npos ? line
                                                  : line.substr(0, hash));
  std::string cmd;
  if (!(is >> cmd)) return;  // blank line

  using Handler = void (Interpreter::*)(std::istream&);
  static const std::map<std::string, Handler> handlers = {
      {"lattice", &Interpreter::cmd_lattice},
      {"random", &Interpreter::cmd_random},
      {"mass", &Interpreter::cmd_mass},
      {"potential", &Interpreter::cmd_potential},
      {"thermalize", &Interpreter::cmd_thermalize},
      {"timestep", &Interpreter::cmd_timestep},
      {"thermostat", &Interpreter::cmd_thermostat},
      {"barostat", &Interpreter::cmd_barostat},
      {"log", &Interpreter::cmd_log},
      {"io", &Interpreter::cmd_io},
      {"dump", &Interpreter::cmd_dump},
      {"checkpoint", &Interpreter::cmd_checkpoint},
      {"run", &Interpreter::cmd_run},
      {"analyze", &Interpreter::cmd_analyze},
      {"read_checkpoint", &Interpreter::cmd_read_checkpoint},
      {"threads", &Interpreter::cmd_threads},
      {"ranks", &Interpreter::cmd_ranks},
      {"transport", &Interpreter::cmd_transport},
      {"snap_kernel", &Interpreter::cmd_snap_kernel},
      {"replicas", &Interpreter::cmd_replicas},
      {"trace", &Interpreter::cmd_trace},
      {"metrics", &Interpreter::cmd_metrics},
  };
  const auto it = handlers.find(cmd);
  EMBER_REQUIRE(it != handlers.end(), "unknown command: " + cmd);
  (this->*(it->second))(is);
}

void Interpreter::cmd_lattice(std::istream& args) {
  const auto kind = need<std::string>(args, "lattice kind");
  md::LatticeSpec spec;
  static const std::map<std::string, md::LatticeKind> kinds = {
      {"sc", md::LatticeKind::SimpleCubic}, {"bcc", md::LatticeKind::Bcc},
      {"fcc", md::LatticeKind::Fcc},        {"diamond", md::LatticeKind::Diamond},
      {"bc8", md::LatticeKind::Bc8},
  };
  const auto it = kinds.find(kind);
  EMBER_REQUIRE(it != kinds.end(), "unknown lattice kind: " + kind);
  spec.kind = it->second;
  spec.a = need<double>(args, "lattice constant");
  std::string word;
  if (args >> word) {
    EMBER_REQUIRE(word == "repeat", "expected 'repeat nx ny nz'");
    spec.nx = need<int>(args, "nx");
    spec.ny = need<int>(args, "ny");
    spec.nz = need<int>(args, "nz");
  }
  system_ = md::build_lattice(spec, mass_);
  sim_.reset();
  out_ << "created " << system_->nlocal() << " atoms (" << kind << ")\n";
}

void Interpreter::cmd_random(std::istream& args) {
  const double lx = need<double>(args, "box x");
  const double ly = need<double>(args, "box y");
  const double lz = need<double>(args, "box z");
  const int n = need<int>(args, "atom count");
  const double minsep = need<double>(args, "minimum separation");
  std::uint64_t seed = 1;
  std::string word;
  if (args >> word) {
    EMBER_REQUIRE(word == "seed", "expected 'seed <n>'");
    seed = need<std::uint64_t>(args, "seed");
  }
  Rng rng(seed);
  system_ = md::random_packing(md::Box(lx, ly, lz), n, minsep, mass_, rng);
  sim_.reset();
  out_ << "created " << system_->nlocal() << " atoms (random packing)\n";
}

void Interpreter::cmd_mass(std::istream& args) {
  mass_ = need<double>(args, "mass");
  EMBER_REQUIRE(!system_, "mass must come before the system is created");
}

void Interpreter::cmd_potential(std::istream& args) {
  const auto kind = need<std::string>(args, "potential kind");
  snap_model_.reset();
  // Stage a factory rather than one object: parallel runs need a
  // rank-private potential per rank (per-thread caches are per-object).
  if (kind == "lj") {
    const double eps = need<double>(args, "epsilon");
    const double sigma = need<double>(args, "sigma");
    const double rcut = need<double>(args, "rcut");
    potential_factory_ = [=] {
      return std::make_shared<ref::PairLJ>(eps, sigma, rcut);
    };
  } else if (kind == "morse") {
    const double d0 = need<double>(args, "D0");
    const double alpha = need<double>(args, "alpha");
    const double r0 = need<double>(args, "r0");
    const double rcut = need<double>(args, "rcut");
    potential_factory_ = [=] {
      return std::make_shared<ref::PairMorse>(d0, alpha, r0, rcut);
    };
  } else if (kind == "tersoff") {
    potential_factory_ = [] { return std::make_shared<ref::PairTersoff>(); };
  } else if (kind == "eam") {
    potential_factory_ = [] { return std::make_shared<ref::PairEam>(); };
  } else if (kind == "snap") {
    const auto path = need<std::string>(args, "model file");
    snap::SnapModel model = snap::SnapModel::load(path);
    // `snap_kernel` (before or after this command) overrides whatever
    // kernel the model file recorded.
    if (snap_kernel_) model.params.kernel = *snap_kernel_;
    snap_model_ = model;
    potential_factory_ = [model = std::move(model)] {
      return std::make_shared<snap::SnapPotential>(model);
    };
  } else {
    EMBER_REQUIRE(false, "unknown potential: " + kind);
  }
  potential_ = potential_factory_();
  sim_.reset();
  batch_.reset();
  out_ << "potential " << potential_->name() << " (rcut "
       << potential_->cutoff() << ")\n";
}

void Interpreter::cmd_thermalize(std::istream& args) {
  EMBER_REQUIRE(system_.has_value(), "thermalize needs a system");
  EMBER_REQUIRE(batch_ == nullptr, "thermalize must precede replica runs");
  const double t = need<double>(args, "temperature");
  std::string word;
  std::uint64_t seed = pending_->seed;
  if (args >> word) {
    EMBER_REQUIRE(word == "seed", "expected 'seed <n>'");
    seed = need<std::uint64_t>(args, "seed");
  }
  pending_->seed = seed;
  Rng rng(seed);
  (sim_ ? sim_->system() : *system_).thermalize(t, rng);
  out_ << "thermalized to " << t << " K\n";
}

void Interpreter::cmd_timestep(std::istream& args) {
  pending_->dt = need<double>(args, "timestep [ps]");
  if (sim_) sim_->integrator().set_dt(pending_->dt);
  if (batch_) batch_->integrator().set_dt(pending_->dt);
}

void Interpreter::cmd_thermostat(std::istream& args) {
  const auto kind = need<std::string>(args, "thermostat kind");
  if (kind == "langevin") {
    const double t = need<double>(args, "temperature");
    const double damp = need<double>(args, "damp [ps]");
    pending_->langevin = md::LangevinParams{t, damp};
    pending_->berendsen_t.reset();
  } else if (kind == "berendsen") {
    const double t = need<double>(args, "temperature");
    const double tau = need<double>(args, "tau [ps]");
    pending_->berendsen_t = md::BerendsenTParams{t, tau};
    pending_->langevin.reset();
  } else if (kind == "nose_hoover") {
    const double t = need<double>(args, "temperature");
    const double tdamp = need<double>(args, "tdamp [ps]");
    pending_->nose_hoover = md::NoseHooverParams{t, tdamp};
    pending_->langevin.reset();
    pending_->berendsen_t.reset();
  } else if (kind == "none") {
    pending_->langevin.reset();
    pending_->berendsen_t.reset();
    pending_->nose_hoover.reset();
  } else {
    EMBER_REQUIRE(false, "unknown thermostat: " + kind);
  }
  if (sim_) {
    sim_->integrator().set_langevin(pending_->langevin);
    sim_->integrator().set_berendsen_t(pending_->berendsen_t);
    sim_->integrator().set_nose_hoover(pending_->nose_hoover);
  }
  if (batch_) {
    batch_->integrator().set_langevin(pending_->langevin);
    batch_->integrator().set_berendsen_t(pending_->berendsen_t);
    batch_->integrator().set_nose_hoover(pending_->nose_hoover);
  }
}

void Interpreter::cmd_barostat(std::istream& args) {
  const auto kind = need<std::string>(args, "barostat kind");
  if (kind == "berendsen") {
    const double p = need<double>(args, "pressure [bar]");
    const double tau = need<double>(args, "tau [ps]");
    const double kappa = need<double>(args, "compressibility [1/bar]");
    pending_->berendsen_p = md::BerendsenPParams{p, tau, kappa};
  } else if (kind == "none") {
    pending_->berendsen_p.reset();
  } else {
    EMBER_REQUIRE(false, "unknown barostat: " + kind);
  }
  if (sim_) sim_->integrator().set_berendsen_p(pending_->berendsen_p);
}

void Interpreter::cmd_log(std::istream& args) {
  const auto word = need<std::string>(args, "'every'");
  EMBER_REQUIRE(word == "every", "expected 'log every <n>'");
  pending_->log_every = need<long>(args, "interval");
}

void Interpreter::cmd_io(std::istream& args) {
  const auto mode = need<std::string>(args, "'async' or 'sync'");
  if (mode == "async") {
    pending_->io_mode = io::Mode::Async;
  } else if (mode == "sync") {
    pending_->io_mode = io::Mode::Sync;
  } else {
    EMBER_REQUIRE(false, "expected 'io async' or 'io sync'");
  }
  if (writer_) {
    writer_->drain();  // surface any pending error before switching
    writer_.reset();   // next run builds the new backend
  }
  out_ << "io " << io::to_string(pending_->io_mode) << "\n";
}

void Interpreter::cmd_dump(std::istream& args) {
  const auto word = need<std::string>(args, "'every'");
  EMBER_REQUIRE(word == "every",
                "expected 'dump every <n> <file> [xyz|ember_traj]'");
  pending_->dump_every = need<long>(args, "interval");
  pending_->dump_path = need<std::string>(args, "file");
  // Optional explicit format; default follows the extension (.embt1 ->
  // the compressed ember_traj format, anything else extended XYZ).
  std::string format;
  if (args >> format) {
    if (format == "xyz") {
      pending_->dump_format = io::Format::Xyz;
    } else if (format == "ember_traj") {
      pending_->dump_format = io::Format::Embt1;
    } else {
      EMBER_REQUIRE(false, "unknown dump format: " + format);
    }
  } else {
    pending_->dump_format = io::format_from_path(pending_->dump_path);
  }
}

void Interpreter::cmd_checkpoint(std::istream& args) {
  const auto word = need<std::string>(args, "'every'");
  EMBER_REQUIRE(word == "every", "expected 'checkpoint every <n> <file>'");
  pending_->checkpoint_every = need<long>(args, "interval");
  pending_->checkpoint_path = need<std::string>(args, "file");
}

void Interpreter::cmd_read_checkpoint(std::istream& args) {
  const auto path = need<std::string>(args, "checkpoint file");
  // Restart barrier: the file may still be in the async queue.
  if (writer_) writer_->drain();
  auto replicas = md::read_checkpoint_batch(path);
  sim_.reset();
  batch_.reset();
  staged_replicas_.clear();
  if (replicas.size() > 1) {
    // Batch checkpoint: restore replica mode with the saved states.
    pending_->replicas = static_cast<int>(replicas.size());
    pending_->ranks = 1;
    system_ = replicas.front();
    staged_replicas_ = std::move(replicas);
    out_ << "restored " << staged_replicas_.size() << " replicas ("
         << system_->nlocal() << " atoms each) from " << path << "\n";
    return;
  }
  system_ = std::move(replicas.front());
  out_ << "restored " << system_->nlocal() << " atoms from " << path << "\n";
}

void Interpreter::cmd_threads(std::istream& args) {
  const auto word = need<std::string>(args, "thread count or 'auto'");
  int n = 1;
  if (word == "auto") {
    n = ExecutionPolicy::hardware().nthreads;
  } else {
    std::istringstream ws(word);
    EMBER_REQUIRE(static_cast<bool>(ws >> n) && n >= 1,
                  "thread count must be a positive integer or 'auto'");
  }
  pending_->nthreads = n;
  if (sim_) sim_->set_execution_policy(ExecutionPolicy{n});
  if (batch_) batch_->set_execution_policy(ExecutionPolicy{n});
  out_ << "threads " << n << "\n";
}

void Interpreter::cmd_ranks(std::istream& args) {
  const int n = need<int>(args, "rank count");
  EMBER_REQUIRE(n >= 1, "rank count must be >= 1");
  EMBER_REQUIRE(n == 1 || pending_->replicas == 1,
                "'ranks' and 'replicas' are mutually exclusive");
  reclaim_system();
  pending_->ranks = n;
  out_ << "ranks " << n << "\n";
}

void Interpreter::cmd_transport(std::istream& args) {
  const auto kind = need<std::string>(args, "'thread' or 'socket'");
  pending_->transport = comm::transport_kind_from_string(kind);
  out_ << "transport " << comm::to_string(pending_->transport) << "\n";
}

void Interpreter::cmd_snap_kernel(std::istream& args) {
  const auto name = need<std::string>(args, "'naive', 'symmetric' or 'simd'");
  static const std::map<std::string, snap::SnapKernel> kinds = {
      {"naive", snap::SnapKernel::Naive},
      {"symmetric", snap::SnapKernel::Symmetric},
      {"simd", snap::SnapKernel::Simd},
  };
  const auto it = kinds.find(name);
  EMBER_REQUIRE(it != kinds.end(), "unknown snap kernel: " + name);
  snap_kernel_ = it->second;
  if (snap_model_) {
    // A snap potential is already loaded: rebuild it with the new kernel
    // variant. Any live driver folds its state back first, so the next
    // `run` continues from the current positions on the new kernel.
    reclaim_system();
    snap_model_->params.kernel = it->second;
    potential_factory_ = [model = *snap_model_] {
      return std::make_shared<snap::SnapPotential>(model);
    };
    potential_ = potential_factory_();
  }
  out_ << "snap_kernel " << name;
  if (it->second == snap::SnapKernel::Simd) {
    out_ << " (dispatch " << snap::simd::to_string(snap::simd::choose_isa())
         << ")";
  }
  out_ << "\n";
}

void Interpreter::cmd_replicas(std::istream& args) {
  const int n = need<int>(args, "replica count");
  EMBER_REQUIRE(n >= 1, "replica count must be >= 1");
  EMBER_REQUIRE(n == 1 || pending_->ranks == 1,
                "'ranks' and 'replicas' are mutually exclusive");
  reclaim_system();
  pending_->replicas = n;
  out_ << "replicas " << n << "\n";
}

void Interpreter::cmd_trace(std::istream& args) {
  const auto mode = need<std::string>(args, "'on <file>' or 'off'");
  if (mode == "on") {
    const auto path = need<std::string>(args, "trace output file");
    EMBER_REQUIRE(trace_path_.empty(),
                  "a trace is already recording to " + trace_path_);
    trace_path_ = path;
    auto& session = obs::TraceSession::global();
    session.clear();
    session.start();
    // Tracing opts into the per-atom SNAP stage timers too: one trace run
    // yields both the span timeline and the kernel-stage counters.
    obs::set_kernel_timing(true);
    out_ << "trace on -> " << trace_path_ << "\n";
  } else if (mode == "off") {
    EMBER_REQUIRE(!trace_path_.empty(),
                  "no trace is recording ('trace on <file>' first)");
    flush_trace();
  } else {
    EMBER_REQUIRE(false, "expected 'trace on <file>' or 'trace off'");
  }
}

void Interpreter::flush_trace() {
  auto& session = obs::TraceSession::global();
  session.stop();
  obs::set_kernel_timing(false);
  session.write_chrome_trace(trace_path_);
  out_ << "trace written to " << trace_path_ << " ("
       << session.snapshot().size() << " spans)\n";
  trace_path_.clear();
}

void Interpreter::cmd_metrics(std::istream& args) {
  const auto mode = need<std::string>(args, "'dump <file>'");
  EMBER_REQUIRE(mode == "dump", "expected 'metrics dump <file>'");
  const auto path = need<std::string>(args, "metrics output file");
  obs::Registry::global().to_json().write_file(path);
  out_ << "metrics written to " << path << "\n";
}

void Interpreter::reclaim_system() {
  if (sim_) {
    system_ = sim_->system();
    sim_.reset();
  }
  if (batch_) {
    system_ = batch_->replica(0);
    batch_.reset();
  }
  staged_replicas_.clear();
}

void Interpreter::apply_integrator_settings(md::Integrator& integrator) const {
  integrator.set_langevin(pending_->langevin);
  integrator.set_berendsen_t(pending_->berendsen_t);
  integrator.set_nose_hoover(pending_->nose_hoover);
  integrator.set_berendsen_p(pending_->berendsen_p);
}

void Interpreter::ensure_simulation() {
  EMBER_REQUIRE(system_.has_value(), "no system: use 'lattice' or 'random'");
  EMBER_REQUIRE(potential_ != nullptr, "no potential defined");
  if (sim_) return;
  sim_ = std::make_unique<md::Simulation>(std::move(*system_), potential_,
                                          pending_->dt, pending_->skin,
                                          pending_->seed,
                                          ExecutionPolicy{pending_->nthreads});
  system_.emplace(md::Box(1, 1, 1), mass_);  // moved-from placeholder
  apply_integrator_settings(sim_->integrator());
}

void Interpreter::cmd_run(std::istream& args) {
  const long steps = need<long>(args, "step count");
  if (pending_->ranks > 1) {
    run_parallel(steps);
  } else if (pending_->replicas > 1 || batch_) {
    run_batched(steps);
  } else {
    run_serial(steps);
  }
  // End-of-command barrier: when `run` reports done, every scheduled dump
  // and checkpoint is on disk and any write error has surfaced here (with
  // the async backend the overlap happened within the run).
  if (writer_) writer_->drain();
  total_steps_ += steps;
  out_ << "ran " << steps << " steps (total " << total_steps_ << ")\n";
}

md::IoPlan Interpreter::make_io_plan(bool append) const {
  md::IoPlan plan;
  plan.dump_every = pending_->dump_every;
  plan.dump_path = pending_->dump_path;
  plan.dump_format = pending_->dump_format;
  plan.append = append;
  plan.checkpoint_every = pending_->checkpoint_every;
  plan.checkpoint_path = pending_->checkpoint_path;
  return plan;
}

void Interpreter::run_serial(long steps) {
  ensure_simulation();
  sim_->set_writer(writer());
  sim_->set_io_plan(make_io_plan(/*append=*/total_steps_ > 0));
  const long log_every = pending_->log_every;

  sim_->run(steps, [&](md::Simulation& s) {
    if (log_every > 0 && s.step() % log_every == 0) {
      out_ << "step " << s.step() << "  E " << s.total_energy() << "  T "
           << s.system().temperature() << "  P " << s.pressure() << "\n";
    }
  });
}

void Interpreter::run_parallel(long steps) {
  reclaim_system();
  EMBER_REQUIRE(system_.has_value(), "no system: use 'lattice' or 'random'");
  EMBER_REQUIRE(potential_factory_ != nullptr, "no potential defined");
  EMBER_REQUIRE(!pending_->berendsen_p,
                "barostat not supported with 'ranks' (per-rank virials "
                "cannot drive a consistent box rescale)");
  const long log_every = pending_->log_every;
  const md::IoPlan plan = make_io_plan(/*append=*/total_steps_ > 0);
  const io::Mode io_mode = pending_->io_mode;
  const md::System& global = *system_;

  // The socket backend forks the ranks: quiesce this process's writer
  // thread first, and give every rank its own post-fork writer inside
  // the lambda (an inherited worker thread would not survive the fork).
  if (writer_) writer_->drain();

  comm::TransportSpec spec;
  spec.kind = pending_->transport;
  spec.ranks = pending_->ranks;
  const auto ctx = comm::make_context(spec);
  // run_gather ships rank 0's gathered System back to this process as
  // checkpoint bytes — with the socket backend the ranks are forked
  // children, so a captured reference cannot carry the state out.
  const auto gathered = ctx->run_gather([&](comm::Transport& c) {
    parallel::ParallelSimulation psim(c, global, potential_factory_(),
                                      pending_->dt, pending_->skin,
                                      pending_->seed,
                                      ExecutionPolicy{pending_->nthreads});
    apply_integrator_settings(psim.integrator());
    psim.set_writer(io::make_writer(io_mode));  // rank-private, post-fork
    psim.set_io_plan(plan);
    psim.run(steps, [&](parallel::ParallelSimulation& s) {
      if (log_every > 0 && s.step() % log_every == 0) {
        const auto g = s.global_state();  // collective
        if (c.rank() == 0) {
          out_ << "step " << s.step() << "  E " << g.total_energy() << "  T "
               << g.temperature << "\n";
        }
      }
    });
    psim.writer().drain();  // all output durable before the rank reports
    md::System g = psim.gather_global();
    if (c.rank() != 0) return std::vector<std::byte>{};
    return md::checkpoint_bytes(g);
  });
  system_ = md::system_from_checkpoint_bytes(gathered);
}

void Interpreter::run_batched(long steps) {
  EMBER_REQUIRE(!pending_->berendsen_p,
                "barostat not supported with 'replicas' (per-replica "
                "boxes are fixed)");
  if (!batch_) {
    EMBER_REQUIRE(system_.has_value(), "no system: use 'lattice' or 'random'");
    EMBER_REQUIRE(potential_ != nullptr, "no potential defined");
    std::vector<md::System> reps = std::move(staged_replicas_);
    staged_replicas_.clear();
    if (reps.empty()) {
      // Identical copies; a Langevin thermostat decorrelates them (the
      // combined sweep draws fresh noise per atom, replica by replica).
      reps.assign(static_cast<std::size_t>(pending_->replicas), *system_);
    }
    batch_ = std::make_unique<md::BatchedSimulation>(
        std::move(reps), potential_, pending_->dt, pending_->skin,
        pending_->seed, ExecutionPolicy{pending_->nthreads});
    apply_integrator_settings(batch_->integrator());
  }
  const long log_every = pending_->log_every;
  // Batched dumps always append (historical semantics: the trajectory
  // interleaves one frame per replica per interval).
  batch_->set_writer(writer());
  batch_->set_io_plan(make_io_plan(/*append=*/true));

  batch_->run(steps, [&](md::BatchedSimulation& b) {
    if (log_every > 0 && b.step() % log_every == 0) {
      out_ << "step " << b.step() << "  E " << b.energy_virial().energy
           << "  T";
      for (int r = 0; r < b.num_replicas(); ++r) {
        out_ << ' ' << b.temperature(r);
      }
      out_ << "\n";
    }
  });
  system_ = batch_->replica(0);  // keep analyze/log views current
}

void Interpreter::cmd_analyze(std::istream& args) {
  std::string word;
  if (args >> word) {
    EMBER_REQUIRE(word == "trajectory",
                  "expected 'analyze' or 'analyze trajectory <file>'");
    const auto path = need<std::string>(args, "trajectory file");
    if (writer_) writer_->drain();  // frames may still be in the queue
    const auto frames = analysis::analyze_trajectory(path);
    for (const auto& fr : frames) {
      out_ << "frame step " << fr.step;
      if (fr.replica != 0) out_ << " replica " << fr.replica;
      out_ << "  atoms " << fr.natoms << "  diamond "
           << 100.0 * fr.fractions.diamond << "%  bc8 "
           << 100.0 * fr.fractions.bc8 << "%  disordered "
           << 100.0 * (1.0 - fr.fractions.crystalline()) << "%\n";
    }
    out_ << "analyzed " << frames.size() << " frames from " << path << "\n";
    return;
  }
  EMBER_REQUIRE(system_.has_value() || sim_, "no system to analyze");
  const md::System& sys = sim_ ? sim_->system() : *system_;
  const auto f = analysis::analyze(sys);
  out_ << "phases: diamond " << 100.0 * f.diamond << "%  bc8 "
       << 100.0 * f.bc8 << "%  disordered "
       << 100.0 * (1.0 - f.crystalline()) << "%\n";
}

}  // namespace ember::app
