#include "metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ember::obs {

int this_thread_shard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram(std::string name, std::span<const double> upper_bounds)
    : name_(std::move(name)), bounds_(upper_bounds.begin(), upper_bounds.end()) {
  EMBER_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending: " + name_);
  for (auto& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::record(double v, int shard) {
  Shard& s = shards_[shard];
  // lower_bound: bucket i takes v <= bounds_[i] (doc contract in the
  // header); only v past the last bound overflows.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds_.begin());
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < out.counts.size(); ++b) {
      out.counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.count += s.count.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
  }
}

// ---- Registry -------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  LockGuard lock(mutex_);
  if (const auto it = counter_index_.find(name); it != counter_index_.end()) {
    return *it->second;
  }
  Counter& c = counters_.emplace_back(std::string(name));
  counter_index_.emplace(c.name(), &c);
  return c;
}

Gauge& Registry::gauge(std::string_view name) {
  LockGuard lock(mutex_);
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return *it->second;
  }
  Gauge& g = gauges_.emplace_back(std::string(name));
  gauge_index_.emplace(g.name(), &g);
  return g;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  LockGuard lock(mutex_);
  if (const auto it = histogram_index_.find(name);
      it != histogram_index_.end()) {
    return *it->second;
  }
  Histogram& h = histograms_.emplace_back(std::string(name), bounds);
  histogram_index_.emplace(h.name(), &h);
  return h;
}

Json Registry::to_json() const {
  LockGuard lock(mutex_);
  Json root = Json::object();
  Json counters = Json::object();
  for (const auto& [name, c] : counter_index_) counters.set(name, c->value());
  root.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& [name, g] : gauge_index_) gauges.set(name, g->value());
  root.set("gauges", std::move(gauges));

  Json histograms = Json::object();
  for (const auto& [name, h] : histogram_index_) {
    const auto snap = h->snapshot();
    Json entry = Json::object();
    entry.set("count", static_cast<std::int64_t>(snap.count));
    entry.set("sum", snap.sum);
    entry.set("mean", snap.mean());
    Json bounds = Json::array();
    for (const double b : snap.bounds) bounds.push(Json::num(b, "%.9g"));
    entry.set("bounds", std::move(bounds));
    Json counts = Json::array();
    for (const std::uint64_t c : snap.counts) {
      counts.push(Json::num(static_cast<std::int64_t>(c)));
    }
    entry.set("counts", std::move(counts));
    histograms.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

void Registry::reset() {
  LockGuard lock(mutex_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& h : histograms_) h.reset();
}

}  // namespace ember::obs
