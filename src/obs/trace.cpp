#include "trace.hpp"

#include <chrono>
#include <cstring>
#include <deque>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace ember::obs {

namespace {
std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// One buffer per thread that ever recorded a span (or set a name). The
// buffer's mutex serializes that thread's appends against snapshot() from
// readers; appends are uncontended in steady state.
struct TraceSession::ThreadBuffer {
  mutable Mutex mutex;
  std::vector<SpanEvent> events EMBER_GUARDED_BY(mutex);
  std::string name EMBER_GUARDED_BY(mutex);
  // tid is written once under Impl::mutex when the buffer is created and
  // read-only afterwards; depth is touched only by the owning thread
  // (ScopedSpan nests strictly on one stack). Neither needs this mutex.
  int tid = 0;
  int depth = 0;
};

struct TraceSession::Impl {
  Mutex mutex;  // guards the buffer list
  std::deque<ThreadBuffer> buffers EMBER_GUARDED_BY(mutex);  // stable addrs
};

TraceSession& TraceSession::global() {
  static TraceSession instance;
  return instance;
}

TraceSession::TraceSession()
    // ember-lint: allow(naked-new) -- deliberately leaked singleton:
    // detached threads may record spans after static destruction order
    // would have torn a unique_ptr down.
    : t0_ns_(now_ns()), impl_(new Impl) {}

TraceSession::ThreadBuffer& TraceSession::buffer() {
  thread_local ThreadBuffer* mine = nullptr;
  if (mine == nullptr) {
    LockGuard lock(impl_->mutex);
    mine = &impl_->buffers.emplace_back();
    mine->tid = static_cast<int>(impl_->buffers.size()) - 1;
  }
  return *mine;
}

void TraceSession::start() { enabled_.store(true, std::memory_order_relaxed); }
void TraceSession::stop() { enabled_.store(false, std::memory_order_relaxed); }

void TraceSession::clear() {
  LockGuard lock(impl_->mutex);
  for (auto& b : impl_->buffers) {
    LockGuard blk(b.mutex);
    b.events.clear();
  }
}

void TraceSession::set_thread_name(const std::string& name) {
  ThreadBuffer& b = buffer();
  LockGuard lock(b.mutex);
  b.name = name;
}

std::vector<SpanEvent> TraceSession::snapshot() const {
  std::vector<SpanEvent> out;
  LockGuard lock(impl_->mutex);
  for (const auto& b : impl_->buffers) {
    LockGuard blk(b.mutex);
    out.insert(out.end(), b.events.begin(), b.events.end());
  }
  return out;
}

long TraceSession::count(const char* name) const {
  long n = 0;
  for (const auto& ev : snapshot()) {
    if (std::strcmp(ev.name, name) == 0) ++n;
  }
  return n;
}

Json TraceSession::chrome_trace() const {
  Json events = Json::array();
  {
    LockGuard lock(impl_->mutex);
    for (const auto& b : impl_->buffers) {
      LockGuard blk(b.mutex);
      if (!b.name.empty()) {
        Json meta = Json::object();
        meta.set("ph", "M");
        meta.set("name", "thread_name");
        meta.set("pid", 1);
        meta.set("tid", b.tid);
        meta.set("args", Json::object().set("name", b.name));
        events.push(std::move(meta));
      }
      for (const SpanEvent& ev : b.events) {
        Json e = Json::object();
        e.set("ph", "X");
        e.set("name", ev.name);
        e.set("cat", ev.cat);
        e.set("pid", 1);
        e.set("tid", ev.tid);
        // Chrome expects microseconds; keep ns resolution as fractions.
        e.set("ts", static_cast<double>(ev.start_ns) / 1e3, "%.3f");
        e.set("dur", static_cast<double>(ev.dur_ns) / 1e3, "%.3f");
        Json args = Json::object();
        args.set("depth", ev.depth);
        if (ev.arg_key != nullptr) args.set(ev.arg_key, ev.arg_val);
        e.set("args", std::move(args));
        events.push(std::move(e));
      }
    }
  }
  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  return root;
}

void TraceSession::write_chrome_trace(const std::string& path) const {
  chrome_trace().write_file(path, /*indent=*/0);
}

// ---- ScopedSpan -----------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name, const char* cat) {
  TraceSession& s = TraceSession::global();
  if (!s.enabled()) return;
  buf_ = &s.buffer();
  ev_.name = name;
  ev_.cat = cat;
  ev_.tid = buf_->tid;
  ev_.depth = buf_->depth++;
  ev_.start_ns = now_ns() - s.t0_ns_;
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, const char* arg_key,
                       std::int64_t arg_val)
    : ScopedSpan(name, cat) {
  ev_.arg_key = arg_key;
  ev_.arg_val = arg_val;
}

ScopedSpan::~ScopedSpan() {
  if (buf_ == nullptr) return;
  ev_.dur_ns = (now_ns() - TraceSession::global().t0_ns_) - ev_.start_ns;
  buf_->depth--;
  LockGuard lock(buf_->mutex);
  buf_->events.push_back(ev_);
}

// ---- kernel-stage timing gate ---------------------------------------------

namespace {
std::atomic<bool> g_kernel_timing{false};
}

bool kernel_timing_enabled() {
  return g_kernel_timing.load(std::memory_order_relaxed);
}

void set_kernel_timing(bool on) {
  g_kernel_timing.store(on, std::memory_order_relaxed);
}

}  // namespace ember::obs
