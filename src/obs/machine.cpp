#include "machine.hpp"

#include <sys/utsname.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace ember::obs {

namespace {

std::string trim(std::string s) {
  const auto notspace = [](unsigned char c) { return !std::isspace(c); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notspace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notspace).base(), s.end());
  return s;
}

// Parse /proc/cpuinfo once for the model string, a processor count (the
// most robust source inside containers) and a clock estimate.
void probe_cpuinfo(std::string* model, int* count, double* mhz) {
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("processor", 0) == 0) ++*count;
    if (model->empty() && line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) *model = trim(line.substr(colon + 1));
    }
    if (*mhz == 0.0 && line.rfind("cpu MHz", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        *mhz = std::strtod(line.c_str() + colon + 1, nullptr);
      }
    }
  }
}

// Nominal frequency from a model string like "... CPU @ 2.10GHz".
double ghz_from_model(const std::string& model) {
  const auto at = model.rfind('@');
  if (at == std::string::npos) return 0.0;
  char* end = nullptr;
  const double value = std::strtod(model.c_str() + at + 1, &end);
  if (end == nullptr || value <= 0.0) return 0.0;
  std::string unit = trim(end);
  if (unit.rfind("GHz", 0) == 0) return value;
  if (unit.rfind("MHz", 0) == 0) return value / 1000.0;
  return 0.0;
}

bool is_hex_sha(const std::string& s) {
  return s.size() >= 40 &&
         std::all_of(s.begin(), s.begin() + 40,
                     [](unsigned char c) { return std::isxdigit(c); });
}

std::string read_first_line(const std::filesystem::path& p) {
  std::ifstream is(p);
  std::string line;
  std::getline(is, line);
  return trim(line);
}

// Resolve "ref: refs/heads/x" through loose refs, then packed-refs.
std::string resolve_ref(const std::filesystem::path& git_dir,
                        const std::string& ref) {
  std::error_code ec;
  if (std::filesystem::exists(git_dir / ref, ec)) {
    const std::string sha = read_first_line(git_dir / ref);
    if (is_hex_sha(sha)) return sha.substr(0, 40);
  }
  std::ifstream packed(git_dir / "packed-refs");
  std::string line;
  while (std::getline(packed, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '^') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;
    if (trim(line.substr(space + 1)) == ref && is_hex_sha(line)) {
      return line.substr(0, 40);
    }
  }
  return "unknown";
}

}  // namespace

MachineInfo probe_machine() {
  MachineInfo info;
  utsname un{};
  if (uname(&un) == 0) {
    info.system = un.sysname;
    info.release = un.release;
    info.arch = un.machine;
  }

  int threads = static_cast<int>(std::thread::hardware_concurrency());
#ifdef _SC_NPROCESSORS_ONLN
  threads = std::max(threads, static_cast<int>(sysconf(_SC_NPROCESSORS_ONLN)));
#endif
  int cpuinfo_count = 0;
  double cpuinfo_mhz = 0.0;
  probe_cpuinfo(&info.cpu_model, &cpuinfo_count, &cpuinfo_mhz);
  threads = std::max(threads, cpuinfo_count);
  info.hardware_threads = std::max(1, threads);
  info.clock_ghz = ghz_from_model(info.cpu_model);
  if (info.clock_ghz == 0.0) info.clock_ghz = cpuinfo_mhz / 1000.0;
  return info;
}

std::string git_head_sha(const std::string& start_dir) {
  std::error_code ec;
  auto dir = std::filesystem::absolute(start_dir, ec);
  if (ec) return "unknown";
  for (; !dir.empty(); dir = dir.parent_path()) {
    const auto git_dir = dir / ".git";
    if (!std::filesystem::is_directory(git_dir, ec)) {
      if (dir == dir.parent_path()) break;
      continue;
    }
    const std::string head = read_first_line(git_dir / "HEAD");
    if (is_hex_sha(head)) return head.substr(0, 40);  // detached HEAD
    if (head.rfind("ref:", 0) == 0) {
      return resolve_ref(git_dir, trim(head.substr(4)));
    }
    return "unknown";
  }
  return "unknown";
}

}  // namespace ember::obs
