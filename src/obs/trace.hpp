#pragma once

// Scoped spans with thread attribution and Chrome trace-event export.
//
// The profiling story of the source papers (TestSNAP's V1–V7 ladder, the
// paper's Pair/Comm/Other attribution) needs per-stage wall-clock spans,
// not just end-of-run totals. This file provides:
//
//   * TraceSession — one process-wide session. start()/stop() flips a
//     single relaxed atomic; when stopped, a ScopedSpan constructor is
//     one load and one branch (and EMBER_OBS=OFF compiles the macros away
//     entirely), so a disabled build pays nothing on the hot path.
//   * ScopedSpan — RAII span. Records name, category, thread, nesting
//     depth, start and duration into a per-thread buffer (own mutex per
//     buffer: appends are uncontended; exports are safe concurrently).
//   * Chrome trace-event JSON export ("traceEvents" with "ph":"X"
//     complete events, microsecond timestamps) — loadable directly in
//     Perfetto / chrome://tracing. Thread-name metadata events label the
//     pool workers and in-process MPI ranks.
//
// Span names must be string literals (or otherwise outlive the session):
// the buffer stores pointers, never copies, so the hot path does no
// allocation.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace ember::obs {

struct SpanEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t start_ns = 0;  // relative to session start
  std::int64_t dur_ns = 0;
  int tid = 0;    // session-stable small integer, 0 = first thread seen
  int depth = 0;  // nesting level on its thread at span entry
  // Optional single integer annotation ("step": 1234).
  const char* arg_key = nullptr;
  std::int64_t arg_val = 0;
};

class TraceSession {
 public:
  static TraceSession& global();

  // Enable span recording. Also clears nothing: call clear() first for a
  // fresh trace. Idempotent.
  void start();
  void stop();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Drop all recorded events (keeps thread registrations and names).
  void clear();

  // Label the calling thread in the exported trace ("pool-worker-3",
  // "rank-0"). Safe to call before any span on the thread.
  void set_thread_name(const std::string& name);

  // Merged copy of every thread's events (ordered per thread; safe while
  // other threads keep recording).
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;

  // Number of recorded events named `name` (test convenience).
  [[nodiscard]] long count(const char* name) const;

  // Chrome trace-event JSON document / file.
  [[nodiscard]] Json chrome_trace() const;
  void write_chrome_trace(const std::string& path) const;

 private:
  friend class ScopedSpan;
  struct ThreadBuffer;

  TraceSession();
  ThreadBuffer& buffer();  // this thread's buffer, created on first use

  std::atomic<bool> enabled_{false};
  // Session epoch: written once in the constructor, read concurrently by
  // every span — const so no lock discipline can ever apply to it.
  const std::int64_t t0_ns_;

  struct Impl;
  Impl* impl_;  // leaked singleton internals (threads may outlive exit order)
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "other");
  ScopedSpan(const char* name, const char* cat, const char* arg_key,
             std::int64_t arg_val);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSession::ThreadBuffer* buf_ = nullptr;  // null when session disabled
  SpanEvent ev_;
};

// Per-atom kernel-stage timing (SNAP compute_ui/yi/dei) is too hot for
// always-on clock reads next to cheap potentials; it is gated on this
// flag (enabled together with tracing by the interpreter / EMBER_TRACE).
[[nodiscard]] bool kernel_timing_enabled();
void set_kernel_timing(bool on);

}  // namespace ember::obs

// Macro layer: spans compile away entirely under -DEMBER_OBS_DISABLED
// (CMake option EMBER_OBS=OFF), which is the belt-and-braces half of the
// "no measurable grind-time regression when off" contract.
#if defined(EMBER_OBS_DISABLED)
#define EMBER_OBS_SPAN(name, cat) ((void)0)
#define EMBER_OBS_SPAN_ARG(name, cat, key, val) ((void)0)
#else
#define EMBER_OBS_CONCAT2(a, b) a##b
#define EMBER_OBS_CONCAT(a, b) EMBER_OBS_CONCAT2(a, b)
#define EMBER_OBS_SPAN(name, cat) \
  ember::obs::ScopedSpan EMBER_OBS_CONCAT(ember_span_, __LINE__)(name, cat)
#define EMBER_OBS_SPAN_ARG(name, cat, key, val)                         \
  ember::obs::ScopedSpan EMBER_OBS_CONCAT(ember_span_, __LINE__)(name, cat, \
                                                                 key, val)
#endif
