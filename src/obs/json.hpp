#pragma once

// Minimal ordered JSON document builder + syntax validator.
//
// Every machine-readable artifact the observability layer emits — metric
// dumps, Chrome trace files, bench recordings — goes through obs::Json so
// escaping, number formatting and nesting are correct by construction
// instead of by hand-rolled printf (the pre-PR-4 state of bench_headline).
// Insertion order of object keys is preserved: recorded files stay
// diffable run to run and the committed BENCH_headline.json schema is
// stable.
//
// json_valid() is a strict recursive-descent syntax check (RFC 8259
// grammar, no extensions) used by the tests and the smoke scripts to
// assert that every emitted artifact actually parses.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ember::obs {

class Json {
 public:
  // Scalars. Numbers carry a printf format so callers control precision
  // (the bench schema records grind times as %.4g, counters as %.17g).
  Json() : kind_(Kind::Null) {}
  static Json object() { return Json(Kind::Object); }
  static Json array() { return Json(Kind::Array); }
  static Json str(std::string_view s);
  static Json num(double v, const char* fmt = "%.17g");
  static Json num(std::int64_t v);
  static Json boolean(bool v);

  // Object building (key order preserved; duplicate keys overwrite).
  Json& set(std::string_view key, Json value);
  Json& set(std::string_view key, std::string_view value) {
    return set(key, str(value));
  }
  Json& set(std::string_view key, const char* value) {
    return set(key, str(value));
  }
  Json& set(std::string_view key, double value, const char* fmt = "%.17g") {
    return set(key, num(value, fmt));
  }
  Json& set(std::string_view key, std::int64_t value) {
    return set(key, num(value));
  }
  Json& set(std::string_view key, int value) {
    return set(key, num(static_cast<std::int64_t>(value)));
  }
  Json& set(std::string_view key, bool value) { return set(key, boolean(value)); }

  // Array building.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  // Serialize. indent > 0 pretty-prints; indent == 0 emits one line.
  [[nodiscard]] std::string dump(int indent = 2) const;

  // Write dump() to a file; throws ember::Error on I/O failure.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { Null, Object, Array, String, Number, Bool };
  explicit Json(Kind k) : kind_(k) {}

  void dump_to(std::string& out, int indent, int depth) const;
  static void escape_to(std::string& out, std::string_view s);

  Kind kind_;
  std::string scalar_;  // rendered number / raw string / "true"/"false"
  std::vector<std::pair<std::string, Json>> children_;  // object or array
};

// Strict JSON syntax check (entire input must be one valid value).
[[nodiscard]] bool json_valid(std::string_view text);

}  // namespace ember::obs
