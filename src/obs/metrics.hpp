#pragma once

// Metrics registry: typed counters, gauges and fixed-bucket histograms,
// sampled from hot paths without locks.
//
// Design (the "registered once, sampled cheaply" contract of PR 4):
//
//   * Registration (Registry::counter / gauge / histogram) takes a mutex
//     and returns a stable reference — callers do it once at construction
//     and keep the handle; the hot path never touches a map or a string.
//   * Updates are lock-free: every metric owns kMetricShards cache-line-
//     padded slots, each thread hashes to a stable slot via a thread_local
//     id, and updates are relaxed atomic RMWs on that slot. Two pool
//     workers never contend unless the shard space overflows (>64 live
//     threads), in which case they share slots but stay correct.
//   * Reads (value() / snapshot / dump_json) merge the shards; they are
//     safe concurrently with writers (the TSan CI subset pins this), and
//     are O(shards) — fine for end-of-run dumps, not for per-step loops.
//
// This is the substrate the paper's Fig.-4-style attribution grows on:
// kernel stages and comm legs feed counters here, and `metrics dump`
// exports the whole registry as JSON.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/json.hpp"

namespace ember::obs {

inline constexpr int kMetricShards = 64;

// Stable per-thread shard index in [0, kMetricShards): assigned on first
// use in thread-creation order, wrapping when more threads than shards
// exist (correctness is unaffected; only contention grows).
[[nodiscard]] int this_thread_shard();

namespace detail {
struct alignas(64) DoubleShard {
  std::atomic<double> v{0.0};
};
struct alignas(64) CountShard {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

// Monotonic sum (events, seconds, bytes). add() is wait-free per shard.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(double v) { add(v, this_thread_shard()); }
  void add(double v, int shard) {
    shards_[shard].v.fetch_add(v, std::memory_order_relaxed);
  }
  void inc() { add(1.0); }

  [[nodiscard]] double value() const {
    double sum = 0.0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset() {
    for (auto& s : shards_) s.v.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::array<detail::DoubleShard, kMetricShards> shards_;
};

// Last-write-wins instantaneous value (atom counts, list sizes).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset() { set(0.0); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts samples <= bounds[i], with one
// overflow bucket past the last bound. Bounds are set at registration and
// never change, so record() is a branch-free-ish upper_bound plus three
// relaxed RMWs on the caller's shard.
class Histogram {
 public:
  Histogram(std::string name, std::span<const double> upper_bounds);

  void record(double v) { record(v, this_thread_shard()); }
  void record(double v, int shard);

  struct Snapshot {
    std::vector<double> bounds;        // upper bound per finite bucket
    std::vector<std::uint64_t> counts; // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;

    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::span<const double> bounds() const { return bounds_; }
  void reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };

  std::string name_;
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

class Registry {
 public:
  // The process-wide registry every instrumented layer reports into.
  static Registry& global();

  // Get-or-create; references stay valid for the Registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // Re-registering an existing histogram returns it unchanged (bounds are
  // fixed at first registration).
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  // Merge-and-export every metric, sorted by name within each type.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] std::string dump_json() const { return to_json().dump(); }

  // Zero every metric (tests and `trace on` restarts). Registration
  // survives; handles stay valid.
  void reset();

 private:
  // mutex_ guards registration state only (the containers and indices);
  // metric *updates* go through the returned references and stay
  // lock-free. std::map (not unordered) keeps dump output name-sorted —
  // the ember_analyze unordered-iteration-reduction rule pins this.
  mutable Mutex mutex_;
  // deque: stable addresses
  std::deque<Counter> counters_ EMBER_GUARDED_BY(mutex_);
  std::deque<Gauge> gauges_ EMBER_GUARDED_BY(mutex_);
  std::deque<Histogram> histograms_ EMBER_GUARDED_BY(mutex_);
  std::map<std::string, Counter*, std::less<>> counter_index_
      EMBER_GUARDED_BY(mutex_);
  std::map<std::string, Gauge*, std::less<>> gauge_index_
      EMBER_GUARDED_BY(mutex_);
  std::map<std::string, Histogram*, std::less<>> histogram_index_
      EMBER_GUARDED_BY(mutex_);
};

}  // namespace ember::obs
