#pragma once

// Host machine probe for recorded artifacts (BENCH_headline.json, metric
// dumps): OS triple, a *reliable* hardware-thread count, and the CPU
// model string.
//
// std::thread::hardware_concurrency() is allowed to return 0 and, under
// some container runtimes, under-reports (the seed benchmarks recorded
// "hardware_threads": 1 on multi-core hosts). probe() therefore takes the
// max over three sources: hardware_concurrency(), sysconf(
// _SC_NPROCESSORS_ONLN), and the processor-entry count in /proc/cpuinfo.
//
// git_head_sha() resolves the repository HEAD without spawning a process:
// walk up from `start_dir` to the first .git, read HEAD, follow the ref
// through refs/ or packed-refs. Recorded artifacts carry it so a number
// can always be traced back to the exact tree that produced it.

#include <string>

namespace ember::obs {

struct MachineInfo {
  std::string system;   // uname sysname, e.g. "Linux"
  std::string release;  // uname release
  std::string arch;     // uname machine, e.g. "x86_64"
  std::string cpu_model;  // /proc/cpuinfo "model name" ("" if unknown)
  int hardware_threads = 1;
  // Nominal core clock in GHz, for roofline peak estimates: parsed from
  // the "@ X.XXGHz" suffix of the model name when present, else from the
  // first "cpu MHz" line (a current, possibly scaled value), else 0.
  double clock_ghz = 0.0;
};

[[nodiscard]] MachineInfo probe_machine();

// Commit hash of the enclosing repository's HEAD, or "unknown". `start_dir`
// defaults to the current working directory.
[[nodiscard]] std::string git_head_sha(const std::string& start_dir = ".");

}  // namespace ember::obs
