#include "json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace ember::obs {

Json Json::str(std::string_view s) {
  Json j(Kind::String);
  j.scalar_.assign(s);
  return j;
}

Json Json::num(double v, const char* fmt) {
  Json j(Kind::Number);
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; record null (validators stay happy, readers
    // see an explicit hole rather than a bogus number).
    j.kind_ = Kind::Null;
    return j;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  j.scalar_ = buf;
  return j;
}

Json Json::num(std::int64_t v) {
  Json j(Kind::Number);
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::boolean(bool v) {
  Json j(Kind::Bool);
  j.scalar_ = v ? "true" : "false";
  return j;
}

Json& Json::set(std::string_view key, Json value) {
  EMBER_REQUIRE(kind_ == Kind::Object, "Json::set on a non-object");
  for (auto& [k, v] : children_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  children_.emplace_back(std::string(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  EMBER_REQUIRE(kind_ == Kind::Array, "Json::push on a non-array");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

void Json::escape_to(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Number:
    case Kind::Bool: out += scalar_; return;
    case Kind::String: escape_to(out, scalar_); return;
    case Kind::Object:
    case Kind::Array: {
      const char open = kind_ == Kind::Object ? '{' : '[';
      const char close = kind_ == Kind::Object ? '}' : ']';
      out += open;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        if (kind_ == Kind::Object) {
          escape_to(out, children_[i].first);
          out += indent > 0 ? ": " : ":";
        }
        children_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!children_.empty()) newline(depth);
      out += close;
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  std::ofstream os(path);
  EMBER_REQUIRE(os.good(), "cannot open " + path + " for writing");
  os << dump(indent);
  EMBER_REQUIRE(os.good(), "write failed: " + path);
}

// ---- validator ------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value() {  // NOLINT(misc-no-recursion)
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {  // NOLINT(misc-no-recursion)
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {  // NOLINT(misc-no-recursion)
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) return false;
            ++pos_;
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    eat('-');
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Parser(text).run(); }

}  // namespace ember::obs
