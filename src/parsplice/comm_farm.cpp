#include "comm_farm.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace ember::parsplice {

namespace {
constexpr int kTagRequest = 11;
constexpr int kTagBatch = 12;
}  // namespace

FarmStats run_task_farm(comm::Transport& t, const FarmConfig& config,
                        const std::function<double(long)>& task) {
  EMBER_REQUIRE(config.total_tasks >= 0, "negative task count");
  EMBER_REQUIRE(config.batch >= 1, "batch must be >= 1");

  long local_count = 0;
  double local_sum = 0.0;
  long batches_served = 0;

  if (t.size() == 1) {
    // Nobody to delegate to: the manager works through the list itself.
    for (long id = 0; id < config.total_tasks; ++id) {
      local_sum += task(id);
      ++local_count;
    }
    batches_served =
        (config.total_tasks + config.batch - 1) / config.batch;
  } else if (t.rank() == 0) {
    // Work manager: deal the next batch to whichever worker asks first.
    long next = 0;
    int retired = 0;
    const int workers = t.size() - 1;
    while (retired < workers) {
      const auto [worker, ignored] = t.recv_bytes_any(kTagRequest);
      std::vector<long> ids;
      const long end =
          std::min(config.total_tasks, next + static_cast<long>(config.batch));
      ids.reserve(static_cast<std::size_t>(end - next));
      for (long id = next; id < end; ++id) ids.push_back(id);
      next = end;
      t.send(worker, kTagBatch, ids);
      if (ids.empty()) {
        ++retired;
      } else {
        ++batches_served;
      }
    }
  } else {
    // Worker: pull until the empty-batch sentinel.
    for (;;) {
      t.send_bytes(0, kTagRequest, nullptr, 0);
      const auto ids = t.recv<long>(0, kTagBatch);
      if (ids.empty()) break;
      for (const long id : ids) {
        local_sum += task(id);
        ++local_count;
      }
    }
  }

  FarmStats stats;
  stats.tasks_completed = t.allreduce_sum(local_count);
  stats.result_sum = t.allreduce_sum(local_sum);
  stats.batches_served = t.allreduce_sum(batches_served);
  return stats;
}

}  // namespace ember::parsplice
