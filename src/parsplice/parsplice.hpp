#pragma once

// Parallel Trajectory Splicing (ParSplice) over the toy landscape.
//
// The method (deck §26-52; Perez et al., JCTC 12, 18 (2016)):
//  * a *segment* is a trajectory piece that spent at least t_corr in its
//    initial state before its start (dephasing to the quasi-stationary
//    distribution) and at least t_corr in its final state before its end;
//  * segments with matching end/start states can be spliced end-to-end
//    into a single statistically-correct state-to-state trajectory;
//  * many workers generate segments independently — parallelization over
//    *time*. Workers are steered by a statistical oracle (a learned Markov
//    model) toward states the trajectory is likely to visit, and unused
//    segments are banked for later revisits (superbasins).
//
// The scheduler here is a virtual-time discrete-event simulation: worker
// wall-cost of a segment equals the physical time it had to integrate
// (dephasing attempts included), so "speedup" compares the spliced
// physical time against single-worker MD at the same rate.

#include <deque>
#include <map>
#include <vector>

#include "parsplice/landscape.hpp"

namespace ember::parsplice {

struct Segment {
  int start_state = -1;
  int end_state = -1;
  double duration = 0.0;   // physical time covered by the segment
  double wall_cost = 0.0;  // physical time integrated to produce it
  // Committed state changes inside the segment: a hop counts once the new
  // state has been held for t_corr (raw boundary recrossings do not).
  long transitions = 0;
};

struct ParSpliceConfig {
  int nworkers = 8;
  double temperature = 0.12;  // in barrier units (barrier/T sets rarity)
  double dt = 5e-4;
  double t_corr = 0.4;        // QSD dephasing / decorrelation time
  double t_segment = 2.0;     // nominal segment duration
  double wall_budget = 400.0; // total virtual wall time to simulate
  int speculation_horizon = 3;
  std::uint64_t seed = 12345;
};

struct ParSpliceResult {
  double spliced_time = 0.0;     // validated trajectory length
  double generated_time = 0.0;   // total segment time produced
  long transitions = 0;          // state changes along the trajectory
  long segments_spliced = 0;
  long segments_generated = 0;
  int states_visited = 0;
  double wall_time = 0.0;
  // Figure of merit from the deck's benchmark tables.
  [[nodiscard]] double utilization() const {
    return generated_time > 0 ? spliced_time / generated_time : 0.0;
  }
  [[nodiscard]] double speedup() const {
    return wall_time > 0 ? spliced_time / wall_time : 0.0;
  }
};

// Generate one segment for `state`: dephase to the QSD (restart on escape
// during dephasing), then integrate until both the nominal duration has
// elapsed and the trajectory has sat in its current state for t_corr.
Segment generate_segment(const Landscape& land, int state,
                         const ParSpliceConfig& config, Rng& rng);

// The statistical oracle: an online-learned Markov chain over states.
class Oracle {
 public:
  void observe(int from, int to) { ++counts_[{from, to}]; }

  // Probability distribution of the state `horizon` segments ahead of
  // `state`, from the learned transition matrix (self-transitions
  // included).
  [[nodiscard]] std::map<int, double> predict(int state, int horizon) const;

 private:
  std::map<std::pair<int, int>, long> counts_;
};

class SegmentDatabase {
 public:
  void deposit(const Segment& segment) {
    db_[segment.start_state].push_back(segment);
  }
  [[nodiscard]] bool available(int state) const {
    const auto it = db_.find(state);
    return it != db_.end() && !it->second.empty();
  }
  Segment take(int state);
  [[nodiscard]] std::size_t banked() const;

 private:
  std::map<int, std::deque<Segment>> db_;
};

// Run the full ParSplice virtual-time simulation.
ParSpliceResult run_parsplice(const Landscape& land,
                              const ParSpliceConfig& config);

// Reference: plain MD trajectory statistics over the same wall budget
// (single worker), for speedup comparisons and statistical validation.
struct MdReference {
  double physical_time = 0.0;
  long transitions = 0;
  int states_visited = 0;
  double mean_residence_time = 0.0;
};
MdReference run_md_reference(const Landscape& land,
                             const ParSpliceConfig& config);

}  // namespace ember::parsplice
