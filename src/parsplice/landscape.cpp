#include "landscape.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ember::parsplice {

Landscape::Landscape(int nwells, double barrier, double disorder,
                     std::uint64_t seed)
    : nwells_(nwells), barrier_(barrier) {
  EMBER_REQUIRE(nwells >= 2, "need at least a 2x2 well lattice");
  // Smooth disorder: a few long-wavelength Fourier modes commensurate with
  // the periodic domain.
  Rng rng(seed);
  for (int kx = 0; kx <= 2; ++kx) {
    for (int ky = 0; ky <= 2; ++ky) {
      if (kx == 0 && ky == 0) continue;
      Mode m;
      m.kx = 2.0 * M_PI * kx / nwells;
      m.ky = 2.0 * M_PI * ky / nwells;
      m.amplitude = disorder * rng.uniform(-1.0, 1.0);
      m.phase = rng.uniform(0.0, 2.0 * M_PI);
      modes_.push_back(m);
    }
  }
}

double Landscape::energy(const Vec2& r) const {
  // Clean lattice: minima at integer points, saddle at half-integers with
  // height = barrier (the -cos form has barrier = 2 * amplitude along the
  // minimum-energy path through an edge saddle).
  const double a = 0.5 * barrier_;
  double v = a * (2.0 - std::cos(2.0 * M_PI * r.x) -
                  std::cos(2.0 * M_PI * r.y));
  for (const auto& m : modes_) {
    v += m.amplitude * std::cos(m.kx * r.x + m.ky * r.y + m.phase);
  }
  return v;
}

Vec2 Landscape::gradient(const Vec2& r) const {
  const double a = 0.5 * barrier_;
  Vec2 g{a * 2.0 * M_PI * std::sin(2.0 * M_PI * r.x),
         a * 2.0 * M_PI * std::sin(2.0 * M_PI * r.y)};
  for (const auto& m : modes_) {
    const double s = -m.amplitude * std::sin(m.kx * r.x + m.ky * r.y + m.phase);
    g.x += s * m.kx;
    g.y += s * m.ky;
  }
  return g;
}

int Landscape::state_of(const Vec2& r) const {
  const auto wrap = [this](double c) {
    int i = static_cast<int>(std::lround(c));
    i %= nwells_;
    if (i < 0) i += nwells_;
    return i;
  };
  return wrap(r.y) * nwells_ + wrap(r.x);
}

Vec2 Landscape::well_center(int state) const {
  return {static_cast<double>(state % nwells_),
          static_cast<double>(state / nwells_)};
}

void Landscape::step(Vec2& r, double temperature, double dt, Rng& rng) const {
  const Vec2 g = gradient(r);
  const double noise = std::sqrt(2.0 * temperature * dt);
  r.x += -g.x * dt + noise * rng.gaussian();
  r.y += -g.y * dt + noise * rng.gaussian();
  // Keep coordinates in the periodic domain [0, nwells).
  r.x -= nwells_ * std::floor(r.x / nwells_);
  r.y -= nwells_ * std::floor(r.y / nwells_);
}

}  // namespace ember::parsplice
