#pragma once

// EXAALT-style pull-model task farm over the comm::Transport layer.
//
// taskmgr.hpp *simulates* the deck's work-manager architecture with a
// discrete-event model; this is the real thing on real ranks: rank 0 is
// the work manager serving batches of task ids, every other rank is a
// worker that pulls a batch, executes it, and asks for more. Workers
// that finish early pull more often — the load balancing that makes the
// pull model worth its middleman — which is why the work manager serves
// requests with the any-source receive rather than polling ranks in
// order. An empty batch is the retirement sentinel; the farm ends when
// every worker has been retired, and the aggregate statistics are
// allreduced so every rank returns the same FarmStats.
//
// Runs on either transport backend (thread ranks or forked processes)
// since it only speaks the Transport interface.

#include <functional>

#include "comm/transport.hpp"

namespace ember::parsplice {

struct FarmConfig {
  long total_tasks = 0;
  int batch = 8;  // task ids handed out per pull
};

struct FarmStats {
  long tasks_completed = 0;  // across all workers
  double result_sum = 0.0;   // sum of task(id) over every task
  long batches_served = 0;   // non-empty batches the work manager issued
};

// Collective: every rank of the transport must call with the same
// config. `task` executes on worker ranks (on rank 0 only when the farm
// is single-rank and there is nobody else to do the work).
FarmStats run_task_farm(comm::Transport& t, const FarmConfig& config,
                        const std::function<double(long)>& task);

}  // namespace ember::parsplice
