#include "parsplice.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "common/error.hpp"

namespace ember::parsplice {

Segment generate_segment(const Landscape& land, int state,
                         const ParSpliceConfig& cfg, Rng& rng) {
  Segment seg;
  seg.start_state = state;
  const Vec2 anchor = land.well_center(state);

  // --- dephasing: converge to the QSD of `state` ---
  // Run from the anchor; if the walker escapes before accumulating t_corr
  // inside the state, reject and restart (Fleming-Viot-style rejection).
  Vec2 r = anchor;
  double in_state = 0.0;
  double dephase_cost = 0.0;
  while (in_state < cfg.t_corr) {
    land.step(r, cfg.temperature, cfg.dt, rng);
    dephase_cost += cfg.dt;
    if (land.state_of(r) == state) {
      in_state += cfg.dt;
    } else {
      r = anchor;
      in_state = 0.0;
    }
  }

  // --- segment body: run t_segment, then extend until the current state
  // has held for t_corr (so the end is also QSD-distributed) ---
  double elapsed = 0.0;
  int current = state;      // instantaneous basin
  int committed = state;    // last state held for >= t_corr
  double current_hold = cfg.t_corr;  // dephasing already provided it
  while (elapsed < cfg.t_segment || current_hold < cfg.t_corr) {
    land.step(r, cfg.temperature, cfg.dt, rng);
    elapsed += cfg.dt;
    const int s = land.state_of(r);
    if (s == current) {
      current_hold += cfg.dt;
      if (current != committed && current_hold >= cfg.t_corr) {
        committed = current;
        ++seg.transitions;
      }
    } else {
      current = s;
      current_hold = cfg.dt;
    }
    // Safety valve: at very high temperature the walker may never settle;
    // cap the extension at 5x the nominal duration.
    if (elapsed > 5.0 * cfg.t_segment) break;
  }

  seg.end_state = committed;
  seg.duration = elapsed;
  seg.wall_cost = dephase_cost + elapsed;
  return seg;
}

std::map<int, double> Oracle::predict(int state, int horizon) const {
  std::map<int, double> dist{{state, 1.0}};
  for (int h = 0; h < horizon; ++h) {
    std::map<int, double> next;
    for (const auto& [s, p] : dist) {
      // Row of the learned transition matrix for s.
      double total = 0.0;
      for (const auto& [key, c] : counts_) {
        if (key.first == s) total += static_cast<double>(c);
      }
      if (total == 0.0) {
        next[s] += p;  // nothing learned: assume it stays
        continue;
      }
      for (const auto& [key, c] : counts_) {
        if (key.first == s) {
          next[key.second] += p * static_cast<double>(c) / total;
        }
      }
    }
    dist = std::move(next);
  }
  return dist;
}

Segment SegmentDatabase::take(int state) {
  auto it = db_.find(state);
  EMBER_REQUIRE(it != db_.end() && !it->second.empty(),
                "no banked segment for the requested state");
  Segment seg = it->second.front();
  it->second.pop_front();
  return seg;
}

std::size_t SegmentDatabase::banked() const {
  std::size_t n = 0;
  for (const auto& [state, q] : db_) n += q.size();
  return n;
}

namespace {

struct WorkerEvent {
  double completion_time;
  int worker;
  bool operator>(const WorkerEvent& o) const {
    return completion_time > o.completion_time;
  }
};

// Pick the production target for a worker: sample the oracle's predicted
// occupancy a few segments ahead of the trajectory's current end, reduced
// by what is already banked or in flight.
int pick_target(const Oracle& oracle, const SegmentDatabase& db,
                const std::map<int, int>& in_flight, int end_state,
                int horizon, Rng& rng) {
  const auto dist = oracle.predict(end_state, horizon);
  // Score = predicted demand minus supply already available/in flight.
  int best = end_state;
  double best_score = -1e300;
  for (const auto& [s, p] : dist) {
    double supply = db.available(s) ? 1.0 : 0.0;
    const auto it = in_flight.find(s);
    if (it != in_flight.end()) supply += it->second;
    const double score = p - 0.35 * supply + 1e-6 * rng.uniform();
    if (score > best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

}  // namespace

ParSpliceResult run_parsplice(const Landscape& land,
                              const ParSpliceConfig& cfg) {
  EMBER_REQUIRE(cfg.nworkers >= 1, "need at least one worker");
  ParSpliceResult result;
  Oracle oracle;
  SegmentDatabase db;
  Rng master(cfg.seed);

  int end_state = land.state_of({0.0, 0.0});
  std::set<int> visited{end_state};

  // Event queue of worker completions; workers also remember their target
  // and private RNG stream.
  std::priority_queue<WorkerEvent, std::vector<WorkerEvent>,
                      std::greater<WorkerEvent>>
      events;
  std::vector<int> worker_target(cfg.nworkers, end_state);
  std::vector<Rng> worker_rng;
  worker_rng.reserve(cfg.nworkers);
  std::map<int, int> in_flight;

  // Initially every worker produces for the current state.
  for (int w = 0; w < cfg.nworkers; ++w) {
    worker_rng.push_back(master.split(w + 1));
    worker_target[w] = end_state;
    ++in_flight[end_state];
    // Stagger virtual start times negligibly to break ties.
    events.push({1e-9 * w, w});
  }

  double now = 0.0;
  // Completion events carry the *previous* assignment; on pop we generate
  // that segment, splice, and reassign.
  while (!events.empty()) {
    const auto ev = events.top();
    events.pop();
    now = ev.completion_time;
    if (now > cfg.wall_budget) break;

    const int w = ev.worker;
    const int target = worker_target[w];
    Segment seg = generate_segment(land, target, cfg, worker_rng[w]);
    --in_flight[target];
    ++result.segments_generated;
    result.generated_time += seg.duration;
    oracle.observe(seg.start_state, seg.end_state);
    db.deposit(seg);

    // Splice as far as the database allows.
    while (db.available(end_state)) {
      const Segment s = db.take(end_state);
      result.spliced_time += s.duration;
      ++result.segments_spliced;
      result.transitions += s.transitions;
      end_state = s.end_state;
      visited.insert(end_state);
    }

    // Reassign the worker.
    const int next = pick_target(oracle, db, in_flight, end_state,
                                 cfg.speculation_horizon, master);
    worker_target[w] = next;
    ++in_flight[next];
    events.push({now + seg.wall_cost, w});
  }

  result.states_visited = static_cast<int>(visited.size());
  result.wall_time = std::min(now, cfg.wall_budget);
  return result;
}

MdReference run_md_reference(const Landscape& land,
                             const ParSpliceConfig& cfg) {
  MdReference ref;
  Rng rng(cfg.seed ^ 0xabcdef);
  Vec2 r = land.well_center(land.state_of({0.0, 0.0}));
  int state = land.state_of(r);
  std::set<int> visited{state};
  double residence = 0.0;
  std::vector<double> residences;

  // Count transitions with the same commitment criterion ParSplice uses:
  // a hop counts once the new basin has been held for t_corr.
  int current = state;
  double hold = cfg.t_corr;
  const long nsteps = static_cast<long>(cfg.wall_budget / cfg.dt);
  for (long s = 0; s < nsteps; ++s) {
    land.step(r, cfg.temperature, cfg.dt, rng);
    residence += cfg.dt;
    const int now_state = land.state_of(r);
    if (now_state == current) {
      hold += cfg.dt;
      if (current != state && hold >= cfg.t_corr) {
        ++ref.transitions;
        residences.push_back(residence);
        residence = 0.0;
        state = current;
        visited.insert(state);
      }
    } else {
      current = now_state;
      hold = cfg.dt;
    }
  }
  ref.physical_time = cfg.wall_budget;
  ref.states_visited = static_cast<int>(visited.size());
  if (!residences.empty()) {
    double sum = 0.0;
    for (const double t : residences) sum += t;
    ref.mean_residence_time = sum / static_cast<double>(residences.size());
  }
  return ref;
}

}  // namespace ember::parsplice
