#pragma once

// EXAALT-style pull-model task management (deck §56-77).
//
// The deck's architecture: a work manager (WM) generates tasks; task
// managers (TMs) act as middlemen that pre-fetch *batches* of tasks and
// feed their local pool of workers, hiding WM latency and aggregating
// small messages. The deck's claims, reproduced by this discrete-event
// simulation:
//   * a flat producer-consumer (every worker asks the WM directly)
//     saturates the WM and worker utilization collapses with scale;
//   * the hierarchical pull model keeps workers busy ("no worker should
//     ever be idle") up to ~50,000 tasks/s.

#include <cstdint>

#include "common/rng.hpp"

namespace ember::parsplice {

struct TaskFarmConfig {
  int n_task_managers = 4;
  int workers_per_tm = 64;
  double task_seconds = 1.0;        // mean task execution time
  double task_jitter = 0.2;         // uniform +- fraction of the mean
  double wm_service_seconds = 2e-5; // WM CPU time to mint one task
  double wm_request_overhead = 1e-4; // WM CPU time per request (any size)
  double wm_latency = 5e-4;         // one-way message latency to the WM
  double tm_latency = 2e-5;         // one-way worker <-> TM latency
  int batch = 64;                   // tasks per WM request
  int low_water = 32;               // TM prefetch trigger (queue depth)
  double sim_seconds = 300.0;
  std::uint64_t seed = 7;
};

struct TaskFarmResult {
  long tasks_completed = 0;
  double tasks_per_second = 0.0;
  double worker_utilization = 0.0;  // busy fraction across all workers
  double wm_busy_fraction = 0.0;    // WM server occupancy
  long wm_requests = 0;
};

// Simulate the farm; set n_task_managers = total workers and batch = 1 to
// model the flat (no-middleman) topology.
TaskFarmResult simulate_task_farm(const TaskFarmConfig& config);

}  // namespace ember::parsplice
