#pragma once

// Toy potential-energy landscape for Parallel Trajectory Splicing.
//
// A periodic 2-D lattice of wells (minima at integer lattice points of a
// -cos(2 pi x) - cos(2 pi y) surface) with a smooth random disorder field
// superimposed. The disorder detunes well depths and barrier heights, so
// some well pairs form low-barrier "superbasins" — the revisit structure
// that ParSplice's segment caching exploits (deck, "Super-basins" slide).
//
// Dynamics are overdamped Langevin, the setting in which the QSD theory of
// the deck (Le Bris, Lelievre, Luskin, Perez) applies directly.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ember::parsplice {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

class Landscape {
 public:
  // nwells x nwells periodic well lattice; barrier sets the clean-lattice
  // saddle height [energy units]; disorder adds smooth random modulation.
  Landscape(int nwells, double barrier, double disorder,
            std::uint64_t seed = 99);

  [[nodiscard]] int nwells() const { return nwells_; }
  [[nodiscard]] int num_states() const { return nwells_ * nwells_; }
  [[nodiscard]] double barrier() const { return barrier_; }

  [[nodiscard]] double energy(const Vec2& r) const;
  [[nodiscard]] Vec2 gradient(const Vec2& r) const;

  // State = index of the well basin containing r (nearest lattice point;
  // exact basin boundaries are immaterial to the method as long as the
  // definition is fixed — see the deck: "this is true for any state
  // definition").
  [[nodiscard]] int state_of(const Vec2& r) const;

  // Center of a state's well.
  [[nodiscard]] Vec2 well_center(int state) const;

  // One overdamped Langevin step: r <- r - grad V dt + sqrt(2 T dt) xi.
  void step(Vec2& r, double temperature, double dt, Rng& rng) const;

 private:
  struct Mode {
    double kx, ky, amplitude, phase;
  };

  int nwells_;
  double barrier_;
  std::vector<Mode> modes_;
};

}  // namespace ember::parsplice
