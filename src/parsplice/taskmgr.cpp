#include "taskmgr.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace ember::parsplice {

namespace {

enum class EventKind { WorkerDone, RefillArrives, WmResponseArrives };

struct Event {
  double time;
  EventKind kind;
  int tm;      // task manager involved
  int worker;  // for WorkerDone
  bool operator>(const Event& o) const { return time > o.time; }
};

struct Tm {
  int queue = 0;             // banked tasks
  bool refill_in_flight = false;
  std::deque<int> waiting;   // idle workers waiting for a task
};

}  // namespace

TaskFarmResult simulate_task_farm(const TaskFarmConfig& cfg) {
  EMBER_REQUIRE(cfg.n_task_managers >= 1 && cfg.workers_per_tm >= 1,
                "farm must have managers and workers");
  TaskFarmResult result;
  Rng rng(cfg.seed);

  const int ntm = cfg.n_task_managers;
  const int nworkers = ntm * cfg.workers_per_tm;
  std::vector<Tm> tms(ntm);
  double wm_free_at = 0.0;  // WM is a single FIFO server
  double wm_busy_total = 0.0;
  double worker_busy_total = 0.0;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  const auto task_duration = [&]() {
    return cfg.task_seconds *
           (1.0 + cfg.task_jitter * rng.uniform(-1.0, 1.0));
  };

  // Issue a WM refill request for tm at time t: the request travels
  // wm_latency, queues at the WM, is served (batch * service), and the
  // response travels back.
  const auto request_refill = [&](int tm, double t) {
    tms[tm].refill_in_flight = true;
    ++result.wm_requests;
    const double arrive = t + cfg.wm_latency;
    const double start = std::max(arrive, wm_free_at);
    const double service =
        cfg.wm_request_overhead + cfg.batch * cfg.wm_service_seconds;
    wm_free_at = start + service;
    wm_busy_total += service;
    events.push({wm_free_at + cfg.wm_latency, EventKind::RefillArrives, tm, -1});
  };

  // A worker takes a task from its TM (queue already decremented by the
  // caller) and runs it.
  const auto start_task = [&](int tm, int worker, double t) {
    const double dur = task_duration();
    worker_busy_total += dur;
    events.push(
        {t + 2.0 * cfg.tm_latency + dur, EventKind::WorkerDone, tm, worker});
  };

  // Prime: every TM fetches its first batch at t = 0; workers queue up.
  for (int tm = 0; tm < ntm; ++tm) {
    request_refill(tm, 0.0);
    for (int w = 0; w < cfg.workers_per_tm; ++w) {
      tms[tm].waiting.push_back(w);
    }
  }

  double now = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    if (now > cfg.sim_seconds) break;
    Tm& tm = tms[ev.tm];

    if (ev.kind == EventKind::WorkerDone) {
      ++result.tasks_completed;
      if (tm.queue > 0) {
        --tm.queue;
        start_task(ev.tm, ev.worker, now);
      } else {
        tm.waiting.push_back(ev.worker);
      }
    } else {  // RefillArrives
      tm.queue += cfg.batch;
      tm.refill_in_flight = false;
      while (tm.queue > 0 && !tm.waiting.empty()) {
        --tm.queue;
        const int w = tm.waiting.front();
        tm.waiting.pop_front();
        start_task(ev.tm, w, now);
      }
    }
    // Pre-emptive refill ("request more tasks before running out").
    if (!tm.refill_in_flight &&
        (tm.queue <= cfg.low_water || !tm.waiting.empty())) {
      request_refill(ev.tm, now);
    }
  }

  result.tasks_per_second = result.tasks_completed / cfg.sim_seconds;
  // Tasks scheduled across the window edge slightly overcount busy time;
  // clamp so the fractions read as true occupancies.
  result.worker_utilization = std::min(
      1.0,
      worker_busy_total / (static_cast<double>(nworkers) * cfg.sim_seconds));
  result.wm_busy_fraction = std::min(1.0, wm_busy_total / cfg.sim_seconds);
  return result;
}

}  // namespace ember::parsplice
