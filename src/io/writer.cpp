#include "writer.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "io/embt1.hpp"
#include "io/formats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ember::io {

namespace {

struct IoMetrics {
  obs::Counter& bytes;
  obs::Counter& frames;
  obs::Counter& stall_seconds;
  obs::Counter& stalls_avoided_seconds;

  static IoMetrics& get() {
    static IoMetrics m{
        obs::Registry::global().counter("io.bytes"),
        obs::Registry::global().counter("io.frames"),
        obs::Registry::global().counter("io.stall_seconds"),
        obs::Registry::global().counter("io.stalls_avoided_seconds"),
    };
    return m;
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Runs requests against the filesystem. Owned by exactly one thread at a
// time — the caller for SyncWriter, the worker for AsyncWriter — so it
// needs no locking; the per-path Embt1Writer map is what keeps delta
// encoding stateful across trajectory requests.
class Executor {
 public:
  void execute(const Request& req) {
    EMBER_OBS_SPAN("io.write", "io");
    std::size_t bytes = 0;
    switch (req.kind) {
      case Request::Kind::Trajectory:
        bytes = write_trajectory(req);
        break;
      case Request::Kind::Checkpoint:
      case Request::Kind::CheckpointBatch:
        bytes = write_checkpoint(req);
        break;
    }
    IoMetrics::get().bytes.add(static_cast<double>(bytes));
    IoMetrics::get().frames.add(static_cast<double>(req.frames.size()));
  }

 private:
  std::size_t write_trajectory(const Request& req) {
    if (req.format == Format::Embt1) {
      auto it = traj_.find(req.path);
      if (it == traj_.end() || req.truncate) {
        it = traj_.insert_or_assign(req.path,
                                    Embt1Writer(req.path, req.truncate))
                 .first;
      }
      std::size_t n = 0;
      for (const Frame& f : req.frames) n += it->second.append(f);
      return n;
    }
    std::ostringstream buf;
    for (const Frame& f : req.frames) write_xyz_frame(buf, f);
    const std::string bytes = buf.str();
    std::ofstream os(req.path, req.truncate ? std::ios::trunc : std::ios::app);
    if (!os.good()) throw Error("cannot open " + req.path + " for writing");
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os.good()) {
      throw Error("xyz write failed (disk full or path unwritable): " +
                  req.path);
    }
    return bytes.size();
  }

  // Checkpoints are written to "<path>.tmp" and renamed into place so a
  // reader never sees a half-written restart file, even while the async
  // queue is still in flight.
  std::size_t write_checkpoint(const Request& req) {
    std::ostringstream buf(std::ios::binary);
    if (req.kind == Request::Kind::Checkpoint) {
      EMBER_REQUIRE(req.frames.size() == 1,
                    "single-system checkpoint takes exactly one frame");
      write_checkpoint_frame(buf, req.frames.front());
    } else {
      write_checkpoint_frames(buf, req.frames);
    }
    const std::string bytes = buf.str();
    const std::string tmp = req.path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os.good()) throw Error("cannot open " + tmp + " for writing");
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      os.flush();
      if (!os.good()) {
        throw Error("checkpoint write failed (disk full or path unwritable): " +
                    tmp);
      }
    }
    if (std::rename(tmp.c_str(), req.path.c_str()) != 0) {
      throw Error("cannot move checkpoint into place: " + req.path);
    }
    return bytes.size();
  }

  std::map<std::string, Embt1Writer> traj_;
};

class SyncWriter final : public Writer {
 public:
  void submit(Request req) override {
    // The whole write happens on the caller's thread: that is exactly the
    // stall the async backend exists to remove, so record it as one.
    const auto t0 = std::chrono::steady_clock::now();
    executor_.execute(req);
    IoMetrics::get().stall_seconds.add(seconds_since(t0));
  }

  void drain() override {}  // every submit already completed inline

  [[nodiscard]] bool async() const override { return false; }

 private:
  Executor executor_;
};

class AsyncWriter final : public Writer {
 public:
  explicit AsyncWriter(std::size_t queue_capacity)
      : capacity_(queue_capacity < 1 ? 1 : queue_capacity),
        worker_([this] { run(); }) {}

  ~AsyncWriter() override {
    {
      LockGuard lk(mutex_);
      stopping_ = true;
    }
    worker_cv_.notify_all();
    worker_.join();  // drain-on-destruct: the worker empties the queue first
    // The worker is gone, but error_ is guarded state: take the lock like
    // everyone else (uncontended here) rather than carving out an exempt
    // read the analysis would rightly flag.
    std::exception_ptr err;
    {
      LockGuard lk(mutex_);
      err = std::exchange(error_, nullptr);
    }
    if (err != nullptr) {
      // Destructors cannot throw; this is the one place an error can
      // surface without a caller to rethrow into. Callers that must
      // observe errors (checkpoint barriers, end-of-run) call drain().
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ember: io error during writer shutdown: %s\n",
                     e.what());
      }
    }
  }

  void submit(Request req) override {
    LockGuard lk(mutex_);
    rethrow_pending();
    if (queue_.size() >= capacity_) {
      // Backpressure: the producer outran the disk. The blocked time is
      // the stall the double buffer could not hide.
      const auto t0 = std::chrono::steady_clock::now();
      while (queue_.size() >= capacity_ && error_ == nullptr) {
        caller_cv_.wait(mutex_);
      }
      IoMetrics::get().stall_seconds.add(seconds_since(t0));
      rethrow_pending();
    }
    queue_.push_back(std::move(req));
    worker_cv_.notify_one();
  }

  void drain() override {
    LockGuard lk(mutex_);
    const auto t0 = std::chrono::steady_clock::now();
    while (!(queue_.empty() && !in_flight_) && error_ == nullptr) {
      caller_cv_.wait(mutex_);
    }
    IoMetrics::get().stall_seconds.add(seconds_since(t0));
    rethrow_pending();
  }

  [[nodiscard]] bool async() const override { return true; }

 private:
  // Rethrows the worker's first error once; later requests start from a
  // clean slate (the interpreter keeps running after a failed run).
  void rethrow_pending() EMBER_REQUIRES(mutex_) {
    if (error_ != nullptr) {
      std::rethrow_exception(std::exchange(error_, nullptr));
    }
  }

  void run() {
    obs::TraceSession::global().set_thread_name("io-writer");
    for (;;) {
      Request req;
      {
        LockGuard lk(mutex_);
        while (queue_.empty() && !stopping_) worker_cv_.wait(mutex_);
        if (queue_.empty()) return;  // stopping_ and fully drained
        req = std::move(queue_.front());
        queue_.pop_front();
        in_flight_ = true;
      }

      // The filesystem work runs outside the lock (ember_analyze
      // blocking-under-lock pins this): submit() stays wait-free while a
      // frame is being written, which is the whole point of the backend.
      const auto t0 = std::chrono::steady_clock::now();
      std::exception_ptr err;
      try {
        executor_.execute(req);
      } catch (...) {
        err = std::current_exception();
      }
      const double write_seconds = seconds_since(t0);

      {
        LockGuard lk(mutex_);
        in_flight_ = false;
        if (err != nullptr) {
          if (error_ == nullptr) error_ = err;
          // Not a silent drop: the error is rethrown at the caller's next
          // submit()/drain(), and later requests could depend on this one.
          queue_.clear();
        } else {
          IoMetrics::get().stalls_avoided_seconds.add(write_seconds);
        }
        caller_cv_.notify_all();
      }
    }
  }

  Executor executor_;
  const std::size_t capacity_;
  Mutex mutex_;
  CondVar worker_cv_;  // signals work / stop to the worker
  CondVar caller_cv_;  // signals space / completion / error
  std::deque<Request> queue_ EMBER_GUARDED_BY(mutex_);
  bool in_flight_ EMBER_GUARDED_BY(mutex_) = false;
  bool stopping_ EMBER_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ EMBER_GUARDED_BY(mutex_);
  std::thread worker_;  // last member: starts after the state it reads
};

}  // namespace

Format format_from_path(const std::string& path) {
  return path.ends_with(kEmbt1Extension) ? Format::Embt1 : Format::Xyz;
}

const char* to_string(Format format) {
  return format == Format::Embt1 ? "ember_traj" : "xyz";
}

const char* to_string(Mode mode) {
  return mode == Mode::Async ? "async" : "sync";
}

Mode mode_from_env() {
  const char* env = std::getenv("EMBER_IO");
  if (env == nullptr || *env == '\0') return Mode::Sync;
  const std::string_view v(env);
  if (v == "sync") return Mode::Sync;
  if (v == "async") return Mode::Async;
  throw Error("EMBER_IO must be 'sync' or 'async', got '" + std::string(v) +
              "'");
}

std::unique_ptr<Writer> make_writer(Mode mode, std::size_t queue_capacity) {
  if (mode == Mode::Async) {
    return std::make_unique<AsyncWriter>(queue_capacity);
  }
  return std::make_unique<SyncWriter>();
}

}  // namespace ember::io
