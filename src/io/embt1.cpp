#include "embt1.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace ember::io {

namespace {
constexpr char kMagic[6] = {'E', 'M', 'B', 'T', '1', '\n'};
constexpr std::uint16_t kVersion = 1;
constexpr std::uint32_t kFrameMarker = 0x524d4645u;  // "EFMR" in memory

constexpr std::uint8_t kFlagVelocities = 0x01;
constexpr std::uint8_t kFlagKeyFrame = 0x02;

void put_uvarint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

void put_svarint(std::ostream& os, std::int64_t v) {
  // Zigzag: small magnitudes of either sign stay small.
  const auto u = static_cast<std::uint64_t>(v);
  put_uvarint(os, (u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

std::uint64_t get_uvarint(std::istream& is, const std::string& path) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      throw Error("trajectory truncated: " + path);
    }
    v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) throw Error("corrupt varint in trajectory: " + path);
  }
}

std::int64_t get_svarint(std::istream& is, const std::string& path) {
  const std::uint64_t u = get_uvarint(is, path);
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

template <typename T>
void put_raw(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get_raw(std::istream& is, const std::string& path) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is.good()) throw Error("trajectory truncated: " + path);
  return value;
}

double comp(const Vec3& v, int axis) {
  return axis == 0 ? v.x : (axis == 1 ? v.y : v.z);
}

double& comp(Vec3& v, int axis) {
  return axis == 0 ? v.x : (axis == 1 ? v.y : v.z);
}

// One coordinate stream: XOR each atom's bit pattern against its
// predictor (temporal: same atom, previous frame; key frame: previous
// atom, same frame) and varint-encode the result.
void put_axis(std::ostream& os, const std::vector<Vec3>& cur,
              const std::vector<Vec3>& prev, bool key_frame, int axis) {
  std::uint64_t ref = 0;
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const auto bits = std::bit_cast<std::uint64_t>(comp(cur[i], axis));
    if (!key_frame) ref = std::bit_cast<std::uint64_t>(comp(prev[i], axis));
    put_uvarint(os, bits ^ ref);
    if (key_frame) ref = bits;
  }
}

void get_axis(std::istream& is, std::vector<Vec3>& cur,
              const std::vector<Vec3>& prev, bool key_frame, int axis,
              const std::string& path) {
  std::uint64_t ref = 0;
  for (std::size_t i = 0; i < cur.size(); ++i) {
    if (!key_frame) ref = std::bit_cast<std::uint64_t>(comp(prev[i], axis));
    const std::uint64_t bits = get_uvarint(is, path) ^ ref;
    comp(cur[i], axis) = std::bit_cast<double>(bits);
    if (key_frame) ref = bits;
  }
}
}  // namespace

Embt1Writer::Embt1Writer(std::string path, bool truncate)
    : path_(std::move(path)) {
  bool fresh = truncate;
  if (!truncate) {
    // Appending: a nonexistent or empty file still needs the header, and
    // an existing one must actually be an EMBT1 trajectory.
    std::ifstream probe(path_, std::ios::binary);
    char magic[sizeof(kMagic)] = {};
    if (!probe.read(magic, sizeof(magic))) {
      fresh = true;
    } else if (!std::equal(std::begin(magic), std::end(magic), kMagic)) {
      throw Error("not an EMBT1 trajectory: " + path_);
    }
  }
  os_.open(path_, std::ios::binary |
                      (truncate ? std::ios::trunc : std::ios::app));
  if (!os_.good()) throw Error("cannot open " + path_ + " for writing");
  if (fresh) {
    os_.write(kMagic, sizeof(kMagic));
    put_raw(os_, kVersion);
  }
  os_.flush();
  if (!os_.good()) {
    throw Error("trajectory write failed (disk full or path unwritable): " +
                path_);
  }
}

std::size_t Embt1Writer::append(const Frame& frame) {
  const bool has_v = !frame.v.empty();
  // Key frame when the temporal predictor is unusable: no previous frame,
  // or a shape change (atom count / velocity presence flipped).
  const bool key_frame = !have_prev_ || prev_.natoms() != frame.natoms() ||
                         prev_.v.empty() == has_v;

  // Encode into memory first: one write syscall per frame, and the byte
  // count for the io.bytes metric falls out exactly.
  std::ostringstream buf(std::ios::binary);
  put_raw(buf, kFrameMarker);
  const std::uint8_t flags =
      static_cast<std::uint8_t>((has_v ? kFlagVelocities : 0) |
                                (key_frame ? kFlagKeyFrame : 0));
  put_raw(buf, flags);
  put_svarint(buf, frame.step);
  put_svarint(buf, frame.replica);
  put_raw(buf, frame.box.length(0));
  put_raw(buf, frame.box.length(1));
  put_raw(buf, frame.box.length(2));
  put_raw(buf, frame.mass);
  put_uvarint(buf, static_cast<std::uint64_t>(frame.natoms()));
  put_uvarint(buf, frame.comment.size());
  buf.write(frame.comment.data(),
            static_cast<std::streamsize>(frame.comment.size()));

  std::int64_t prev_id = 0;
  for (const long id : frame.id) {
    put_svarint(buf, static_cast<std::int64_t>(id) - prev_id);
    prev_id = static_cast<std::int64_t>(id);
  }
  for (int axis = 0; axis < 3; ++axis) {
    put_axis(buf, frame.x, prev_.x, key_frame, axis);
  }
  if (has_v) {
    for (int axis = 0; axis < 3; ++axis) {
      put_axis(buf, frame.v, prev_.v, key_frame, axis);
    }
  }

  const std::string bytes = buf.str();
  os_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os_.flush();
  if (!os_.good()) {
    throw Error("trajectory write failed (disk full or path unwritable): " +
                path_);
  }
  prev_ = frame;
  have_prev_ = true;
  return bytes.size();
}

TrajectoryReader::TrajectoryReader(std::string path) : path_(std::move(path)) {
  is_.open(path_, std::ios::binary);
  if (!is_.good()) throw Error("cannot open " + path_);
  char magic[sizeof(kMagic)] = {};
  is_.read(magic, sizeof(magic));
  if (!is_.good() ||
      !std::equal(std::begin(magic), std::end(magic), kMagic)) {
    throw Error("not an EMBT1 trajectory: " + path_);
  }
  const auto version = get_raw<std::uint16_t>(is_, path_);
  EMBER_REQUIRE(version == kVersion,
                "unsupported EMBT1 version in " + path_);
}

std::optional<Frame> TrajectoryReader::next() {
  std::uint32_t marker = 0;
  is_.read(reinterpret_cast<char*>(&marker), sizeof(marker));
  if (is_.gcount() == 0 && is_.eof()) return std::nullopt;  // clean EOF
  if (!is_.good()) throw Error("trajectory truncated: " + path_);
  if (marker != kFrameMarker) {
    throw Error("corrupt frame marker in trajectory: " + path_);
  }

  const auto flags = get_raw<std::uint8_t>(is_, path_);
  const bool has_v = (flags & kFlagVelocities) != 0;
  const bool key_frame = (flags & kFlagKeyFrame) != 0;

  Frame f;
  f.step = get_svarint(is_, path_);
  f.replica = static_cast<int>(get_svarint(is_, path_));
  const double lx = get_raw<double>(is_, path_);
  const double ly = get_raw<double>(is_, path_);
  const double lz = get_raw<double>(is_, path_);
  f.box = md::Box(lx, ly, lz);
  f.mass = get_raw<double>(is_, path_);
  const auto natoms = get_uvarint(is_, path_);
  const auto comment_len = get_uvarint(is_, path_);
  f.comment.resize(comment_len);
  is_.read(f.comment.data(), static_cast<std::streamsize>(comment_len));
  if (!is_.good() && comment_len > 0) {
    throw Error("trajectory truncated: " + path_);
  }

  if (!key_frame &&
      (!have_prev_ || prev_.natoms() != static_cast<int>(natoms) ||
       prev_.v.empty() == has_v)) {
    throw Error("corrupt trajectory (delta frame without matching key): " +
                path_);
  }

  f.id.resize(natoms);
  std::int64_t prev_id = 0;
  for (auto& id : f.id) {
    prev_id += get_svarint(is_, path_);
    id = static_cast<long>(prev_id);
  }
  f.x.resize(natoms);
  for (int axis = 0; axis < 3; ++axis) {
    get_axis(is_, f.x, prev_.x, key_frame, axis, path_);
  }
  if (has_v) {
    f.v.resize(natoms);
    for (int axis = 0; axis < 3; ++axis) {
      get_axis(is_, f.v, prev_.v, key_frame, axis, path_);
    }
  }

  prev_ = f;
  have_prev_ = true;
  return f;
}

}  // namespace ember::io
