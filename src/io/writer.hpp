#pragma once

// io::Writer — the output pipeline behind every driver (DESIGN.md §13).
//
// The step loop never touches a file stream: it snapshots the System into
// io::Frames, wraps them in a Request and submits it to a Writer. Two
// backends implement the interface over the SAME executor (same format
// serializers, same Frame snapshots), which is what makes sync and async
// output bitwise identical by construction:
//
//   * SyncWriter   — executes the request inline. The caller blocks for
//                    the full write (the pre-PR-8 behavior); that blocked
//                    time is recorded as io.stall_seconds.
//   * AsyncWriter  — bounded queue (default capacity 2 — the classic
//                    double buffer: one frame being written, one being
//                    filled) drained by a dedicated "io-writer" thread.
//                    submit() only blocks when the queue is full
//                    (backpressure, recorded as io.stall_seconds); the
//                    off-thread write time the step loop did NOT pay is
//                    recorded as io.stalls_avoided_seconds.
//
// Error protocol: a failed write is never a silent drop. SyncWriter
// throws in submit(); AsyncWriter captures the worker's exception and
// rethrows it (ember::Error with the path in the message) from the next
// submit()/drain(). The destructor drains outstanding requests, and an
// error surfacing only then is reported to stderr (destructors cannot
// throw) — callers that must observe errors call drain().
//
// Durability protocol: checkpoint requests are written to "<path>.tmp"
// and renamed into place, so a checkpoint file on disk is always
// complete even while the async queue is in flight; an explicit restart
// barrier (drain()) is only needed when the caller must read the file
// back immediately.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "io/frame.hpp"

namespace ember::io {

enum class Format { Xyz, Embt1 };

// .embt1 => Embt1, anything else => Xyz.
[[nodiscard]] Format format_from_path(const std::string& path);
[[nodiscard]] const char* to_string(Format format);

struct Request {
  enum class Kind {
    Trajectory,       // append frames to a trajectory (XYZ or EMBT1)
    Checkpoint,       // one frame, EMBERCP1, tmp+rename
    CheckpointBatch,  // one frame per replica, EMBERCP2, tmp+rename
  };

  Kind kind = Kind::Trajectory;
  std::string path;
  Format format = Format::Xyz;  // trajectory requests only
  // Trajectory only: start the file over (first dump of a fresh run)
  // instead of appending.
  bool truncate = false;
  std::vector<Frame> frames;
};

class Writer {
 public:
  virtual ~Writer() = default;

  // Hand a request to the backend. May block (sync: for the write; async:
  // only while the queue is full). Rethrows any pending writer error.
  virtual void submit(Request req) = 0;

  // Barrier: returns once every submitted request is on disk, rethrowing
  // any writer error. The restart path and end-of-run use this.
  virtual void drain() = 0;

  [[nodiscard]] virtual bool async() const = 0;
};

enum class Mode { Sync, Async };

[[nodiscard]] const char* to_string(Mode mode);

// EMBER_IO=async|sync (unset => Sync). Anything else raises ember::Error.
[[nodiscard]] Mode mode_from_env();

inline constexpr std::size_t kDefaultQueueCapacity = 2;

// queue_capacity only applies to Mode::Async (clamped to >= 1).
[[nodiscard]] std::unique_ptr<Writer> make_writer(
    Mode mode, std::size_t queue_capacity = kDefaultQueueCapacity);

}  // namespace ember::io
