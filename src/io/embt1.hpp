#pragma once

// EMBT1 — ember's compressed streaming trajectory format.
//
// Why not XYZ: a formatted-text frame costs ~50 bytes/atom and loses
// precision; a raw binary frame costs 24 bytes/axis-triple. EMBT1 keeps
// full double precision (the round-trip is bitwise exact, which trivially
// satisfies the <= 1e-12 parity requirement) while typically writing far
// fewer bytes for the smooth trajectories MD produces.
//
// Codec (the "per-axis delta + LEB128" option of ISSUE 8):
//
//   * Every coordinate stream (x then y then z, velocities likewise) is a
//     sequence of IEEE-754 bit patterns XORed against a predictor and
//     LEB128-encoded. XOR of similar doubles zeroes the leading
//     sign/exponent/high-mantissa bits, so the varint shrinks to a few
//     bytes; XOR of arbitrary doubles is still lossless, so compression
//     never costs correctness (Gorilla-style float compression).
//   * Non-key frames predict temporally: atom i is XORed against atom i
//     of the previous frame in the file — between two dumps an atom moves
//     a tiny fraction of the box, so this is the tight predictor.
//   * Key frames predict intra-frame: atom i is XORed against atom i-1 of
//     the same frame (atom 0 against zero). A frame is a key frame when
//     there is no usable previous frame: the first frame a writer emits
//     into a file (including append restarts — the writer never reads
//     back what an earlier process wrote) or when the atom count or
//     velocity presence changed.
//   * Atom ids are delta + zigzag-LEB128 within the frame (ids are
//     usually sorted, so deltas are 1).
//
// On-disk layout (all multi-byte scalars native-endian, matching the
// EMBERCP checkpoints; doubles raw 8 bytes unless stated):
//
//   file header:  "EMBT1\n" (6 bytes) + u16 version (= 1)
//   per frame:    u32 marker 'EMFR' | u8 flags (bit0 velocities,
//                 bit1 key frame) | zigzag step | zigzag replica |
//                 box lx,ly,lz | mass | uvarint natoms |
//                 uvarint comment length + bytes |
//                 id stream | x,y,z streams | [vx,vy,vz streams]
//
// Readers stream: TrajectoryReader::next() decodes one frame at a time
// holding only the previous frame, so analysis over a multi-GB file
// never loads it whole.

#include <cstddef>
#include <fstream>
#include <optional>
#include <string>

#include "io/frame.hpp"

namespace ember::io {

inline constexpr const char* kEmbt1Extension = ".embt1";

// Appending encoder. Opens the file on construction (truncate=false keeps
// existing frames and validates the header; a fresh/empty file gets the
// header written). Any open/write failure raises ember::Error naming the
// path. Frames are flushed per append so a crashed run keeps every
// completed frame.
class Embt1Writer {
 public:
  Embt1Writer(std::string path, bool truncate);

  // Encode and write one frame; returns the bytes it added to the file.
  std::size_t append(const Frame& frame);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream os_;
  Frame prev_;             // previous frame = temporal predictor
  bool have_prev_ = false; // false => next frame is a key frame
};

// Streaming decoder: next() returns frames in file order, std::nullopt at
// a clean end-of-file. Truncated or corrupt data raises ember::Error
// naming the path.
class TrajectoryReader {
 public:
  explicit TrajectoryReader(std::string path);

  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ifstream is_;
  Frame prev_;
  bool have_prev_ = false;
};

}  // namespace ember::io
