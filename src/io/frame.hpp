#pragma once

// io::Frame — an owned snapshot of a System's persistent state.
//
// The async writer pipeline (DESIGN.md §13) decouples serialization from
// the live SoA arrays: the step loop copies the atoms it wants written
// into a Frame (cheap, memcpy-speed vector copies) and hands it to an
// io::Writer, after which the simulation is free to keep integrating
// while the writer thread encodes and writes the snapshot. Every format
// backend (XYZ, checkpoint, EMBT1) serializes Frames, so the sync and
// async writers are bitwise-identical by construction — they run the
// same serializer over the same snapshot.

#include <string>
#include <utility>
#include <vector>

#include "common/vec3.hpp"
#include "md/system.hpp"

namespace ember::io {

struct Frame {
  md::Box box;
  double mass = 0.0;
  long step = 0;     // step counter at snapshot time
  int replica = 0;   // batched driver: which replica this frame is
  std::string comment;  // XYZ comment-line payload ("step=1200")
  std::vector<Vec3> x;  // positions, as stored (wrapping is per-format)
  std::vector<Vec3> v;  // velocities (empty for position-only frames)
  std::vector<long> id; // global ids, same length as x

  [[nodiscard]] int natoms() const { return static_cast<int>(x.size()); }
};

// Snapshot the local (owner) atoms of a System. Ghost copies are never
// part of a frame: every dump path gathers or owns its atoms first.
[[nodiscard]] inline Frame frame_of(const md::System& sys, long step = 0,
                                    int replica = 0, std::string comment = {}) {
  Frame f;
  f.box = sys.box();
  f.mass = sys.mass();
  f.step = step;
  f.replica = replica;
  f.comment = std::move(comment);
  const auto n = static_cast<std::size_t>(sys.nlocal());
  f.x.assign(sys.x.begin(), sys.x.begin() + static_cast<long>(n));
  f.v.assign(sys.v.begin(), sys.v.begin() + static_cast<long>(n));
  f.id.assign(sys.id.begin(), sys.id.begin() + static_cast<long>(n));
  return f;
}

// Rebuild a System from a frame (trajectory analysis, restarts).
[[nodiscard]] inline md::System system_of(const Frame& f) {
  md::System sys(f.box, f.mass);
  for (std::size_t i = 0; i < f.x.size(); ++i) {
    sys.add_atom(f.x[i], i < f.v.size() ? f.v[i] : Vec3{});
    sys.id[i] = f.id[i];
  }
  return sys;
}

}  // namespace ember::io
