#pragma once

// Format backends: extended-XYZ snapshots and the EMBERCP1/EMBERCP2
// binary checkpoints (EMBT1, the compressed trajectory, lives in
// embt1.hpp). Each format serializes io::Frame snapshots into a stream,
// so the synchronous and asynchronous writers share one byte layout;
// the path-level System functions are the historical md:: API (they
// forward through md/io.hpp) plus hardened error reporting: any failed
// open, short write or full disk raises ember::Error naming the path —
// never a silent truncation.

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "io/frame.hpp"
#include "md/system.hpp"

namespace ember::io {

// --- stream-level frame serializers (the Writer backends) ---------------

// One extended-XYZ frame: atom count, Lattice= comment line, positions.
void write_xyz_frame(std::ostream& os, const Frame& frame);

// One EMBERCP1 single-system checkpoint record (magic + system payload).
// Positions are canonicalized (wrapped into the frame's box) so a
// restart is independent of how far past a reneighboring the run was.
void write_checkpoint_frame(std::ostream& os, const Frame& frame);

// EMBERCP2 multi-replica checkpoint: the per-system record repeated.
void write_checkpoint_frames(std::ostream& os, std::span<const Frame> frames);

// --- path-level System API (compat surface, re-exported as md::) --------

// Extended-XYZ snapshot (positions only), appending when append=true.
void write_xyz(const md::System& sys, const std::string& path,
               const std::string& comment = "", bool append = false);

// Binary checkpoint: box, mass, ids, positions, velocities.
void write_checkpoint(const md::System& sys, const std::string& path);
md::System read_checkpoint(const std::string& path);

// The same checkpoint record in memory: what a process-backed comm rank
// ships its gathered System through (comm::Context::run_gather). The
// bytes are the file format, so they can also be written verbatim to
// disk and read back with read_checkpoint.
std::vector<std::byte> checkpoint_bytes(const md::System& sys);
md::System system_from_checkpoint_bytes(std::span<const std::byte> bytes);

// Multi-replica checkpoint (BatchedSimulation): the same per-system
// record repeated, each replica with its own box. read_checkpoint_batch
// also accepts a single-system checkpoint and returns one replica.
void write_checkpoint_batch(std::span<const md::System> replicas,
                            const std::string& path);
std::vector<md::System> read_checkpoint_batch(const std::string& path);

}  // namespace ember::io
