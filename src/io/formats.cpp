#include "formats.hpp"

#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace ember::io {

namespace {
constexpr std::uint64_t kMagic = 0x454d424552435031ULL;       // "EMBERCP1"
constexpr std::uint64_t kMagicBatch = 0x454d424552435032ULL;  // "EMBERCP2"

template <typename T>
void put(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  EMBER_REQUIRE(is.good(), "checkpoint truncated");
  return value;
}

md::System get_system(std::istream& is) {
  const double lx = get<double>(is);
  const double ly = get<double>(is);
  const double lz = get<double>(is);
  const double mass = get<double>(is);
  const auto n = get<std::int64_t>(is);
  md::System sys(md::Box(lx, ly, lz), mass);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto id = get<std::int64_t>(is);
    const auto x = get<Vec3>(is);
    const auto v = get<Vec3>(is);
    sys.add_atom(x, v);
    sys.id[static_cast<std::size_t>(i)] = id;
  }
  return sys;
}

// The per-system checkpoint record (shared by CP1 and CP2).
void put_system_payload(std::ostream& os, const Frame& frame) {
  put(os, frame.box.length(0));
  put(os, frame.box.length(1));
  put(os, frame.box.length(2));
  put(os, frame.mass);
  put(os, static_cast<std::int64_t>(frame.natoms()));
  for (int i = 0; i < frame.natoms(); ++i) {
    put(os, static_cast<std::int64_t>(frame.id[static_cast<std::size_t>(i)]));
    // Canonicalize: positions are stored wrapped so a restart is
    // independent of how far past a reneighboring the run was.
    put(os, frame.box.wrap(frame.x[static_cast<std::size_t>(i)]));
    put(os, frame.v[static_cast<std::size_t>(i)]);
  }
}

// A stream left !good() after a write means a short write (full disk,
// revoked permissions, dead pipe): report it with the path, never return
// a silently truncated file.
void require_written(const std::ostream& os, const std::string& path,
                     const char* what) {
  if (!os.good()) {
    throw Error(std::string(what) + " write failed (disk full or path "
                                    "unwritable): " +
                path);
  }
}
}  // namespace

void write_xyz_frame(std::ostream& os, const Frame& frame) {
  os << frame.natoms() << '\n';
  os << "Lattice=\"" << frame.box.length(0) << " 0 0 0 "
     << frame.box.length(1) << " 0 0 0 " << frame.box.length(2) << "\" "
     << frame.comment << '\n';
  for (const Vec3& r : frame.x) {
    os << "C " << r.x << ' ' << r.y << ' ' << r.z << '\n';
  }
}

void write_checkpoint_frame(std::ostream& os, const Frame& frame) {
  put(os, kMagic);
  put_system_payload(os, frame);
}

void write_checkpoint_frames(std::ostream& os, std::span<const Frame> frames) {
  EMBER_REQUIRE(!frames.empty(), "batch checkpoint needs >= 1 replica");
  put(os, kMagicBatch);
  put(os, static_cast<std::int64_t>(frames.size()));
  for (const Frame& f : frames) put_system_payload(os, f);
}

void write_xyz(const md::System& sys, const std::string& path,
               const std::string& comment, bool append) {
  std::ofstream os(path, append ? std::ios::app : std::ios::trunc);
  if (!os.good()) throw Error("cannot open " + path + " for writing");
  write_xyz_frame(os, frame_of(sys, /*step=*/0, /*replica=*/0, comment));
  os.flush();
  require_written(os, path, "xyz");
}

void write_checkpoint(const md::System& sys, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) throw Error("cannot open " + path + " for writing");
  write_checkpoint_frame(os, frame_of(sys));
  os.flush();
  require_written(os, path, "checkpoint");
}

md::System read_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw Error("cannot open " + path);
  EMBER_REQUIRE(get<std::uint64_t>(is) == kMagic,
                "not an ember checkpoint: " + path);
  return get_system(is);
}

std::vector<std::byte> checkpoint_bytes(const md::System& sys) {
  std::ostringstream os(std::ios::binary);
  write_checkpoint_frame(os, frame_of(sys));
  const std::string s = os.str();
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

md::System system_from_checkpoint_bytes(std::span<const std::byte> bytes) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  EMBER_REQUIRE(get<std::uint64_t>(is) == kMagic,
                "not an ember checkpoint payload");
  return get_system(is);
}

void write_checkpoint_batch(std::span<const md::System> replicas,
                            const std::string& path) {
  EMBER_REQUIRE(!replicas.empty(), "batch checkpoint needs >= 1 replica");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) throw Error("cannot open " + path + " for writing");
  std::vector<Frame> frames;
  frames.reserve(replicas.size());
  for (const md::System& sys : replicas) frames.push_back(frame_of(sys));
  write_checkpoint_frames(os, frames);
  os.flush();
  require_written(os, path, "checkpoint");
}

std::vector<md::System> read_checkpoint_batch(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw Error("cannot open " + path);
  const auto magic = get<std::uint64_t>(is);
  std::vector<md::System> replicas;
  if (magic == kMagic) {
    replicas.push_back(get_system(is));
    return replicas;
  }
  EMBER_REQUIRE(magic == kMagicBatch, "not an ember checkpoint: " + path);
  const auto count = get<std::int64_t>(is);
  EMBER_REQUIRE(count > 0, "batch checkpoint with no replicas: " + path);
  replicas.reserve(static_cast<std::size_t>(count));
  for (std::int64_t r = 0; r < count; ++r) replicas.push_back(get_system(is));
  return replicas;
}

}  // namespace ember::io
