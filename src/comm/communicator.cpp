#include "communicator.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace ember::comm {

World::World(int size) : size_(size) {
  EMBER_REQUIRE(size >= 1 && size <= 512, "unsupported world size");
  mailboxes_.reserve(size);
  for (int r = 0; r < size; ++r) {
    auto mb = std::make_unique<Mailbox>();
    mb->from.resize(size);
    mailboxes_.push_back(std::move(mb));
  }
}

void World::run(const std::function<void(ThreadTransport&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(size_);
  threads.reserve(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
#if !defined(EMBER_OBS_DISABLED)
      obs::TraceSession::global().set_thread_name("rank-" + std::to_string(r));
#endif
      ThreadTransport comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

int ThreadTransport::size() const { return world_.size(); }

void ThreadTransport::do_send_bytes(int dest, int tag, const void* data,
                                    std::size_t bytes) {
  EMBER_REQUIRE(dest >= 0 && dest < world_.size(), "invalid destination");
  auto& mb = world_.mailbox(dest);
  World::Message msg;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  {
    LockGuard lock(mb.mutex);
    mb.from[rank_].push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

std::vector<std::byte> ThreadTransport::do_recv_bytes(int source, int tag) {
  EMBER_REQUIRE(source >= 0 && source < world_.size(), "invalid source");
  auto& mb = world_.mailbox(rank_);
  LockGuard lock(mb.mutex);
  auto& queue = mb.from[source];
  for (;;) {
    const auto it = std::find_if(queue.begin(), queue.end(),
                                 [tag](const World::Message& m) {
                                   return m.tag == tag;
                                 });
    if (it != queue.end()) {
      auto payload = std::move(it->payload);
      queue.erase(it);
      return payload;
    }
    mb.cv.wait(mb.mutex);
  }
}

std::pair<int, std::vector<std::byte>> ThreadTransport::do_recv_bytes_any(
    int tag) {
  auto& mb = world_.mailbox(rank_);
  LockGuard lock(mb.mutex);
  for (;;) {
    for (int s = 0; s < world_.size(); ++s) {
      auto& queue = mb.from[s];
      const auto it = std::find_if(queue.begin(), queue.end(),
                                   [tag](const World::Message& m) {
                                     return m.tag == tag;
                                   });
      if (it != queue.end()) {
        auto payload = std::move(it->payload);
        queue.erase(it);
        return {s, std::move(payload)};
      }
    }
    mb.cv.wait(mb.mutex);
  }
}

void ThreadTransport::do_barrier() {
  LockGuard lock(world_.barrier_mutex_);
  const long gen = world_.barrier_generation_;
  if (++world_.barrier_count_ == world_.size_) {
    world_.barrier_count_ = 0;
    ++world_.barrier_generation_;
    world_.barrier_cv_.notify_all();
  } else {
    while (world_.barrier_generation_ == gen) {
      world_.barrier_cv_.wait(world_.barrier_mutex_);
    }
  }
}

// Reduction skeleton: accumulate under the lock; the last rank to arrive
// publishes the result and bumps the generation. Correctness of result
// lifetime: the next reduction can only overwrite result_field after all
// ranks enter it, which requires all ranks to have returned (and thus
// read the result) from this one.
#define EMBER_REDUCE_BODY(scratch_field, result_field, op_expr, init_value) \
  LockGuard lock(world_.reduce_mutex_);                                     \
  const long gen = world_.reduce_generation_;                               \
  if (world_.reduce_count_ == 0) world_.scratch_field = (init_value);       \
  world_.scratch_field = (op_expr);                                         \
  if (++world_.reduce_count_ == world_.size_) {                             \
    world_.result_field = world_.scratch_field;                             \
    world_.reduce_count_ = 0;                                               \
    ++world_.reduce_generation_;                                            \
    world_.reduce_cv_.notify_all();                                         \
  } else {                                                                  \
    while (world_.reduce_generation_ == gen) {                              \
      world_.reduce_cv_.wait(world_.reduce_mutex_);                         \
    }                                                                       \
  }                                                                         \
  return world_.result_field;

double ThreadTransport::do_allreduce_sum(double value) {
  EMBER_REDUCE_BODY(reduce_double_, reduce_result_double_,
                    world_.reduce_double_ + value, 0.0)
}

long ThreadTransport::do_allreduce_sum(long value) {
  EMBER_REDUCE_BODY(reduce_long_, reduce_result_long_,
                    world_.reduce_long_ + value, 0L)
}

double ThreadTransport::do_allreduce_max(double value) {
  EMBER_REDUCE_BODY(reduce_double_, reduce_result_double_,
                    std::max(world_.reduce_double_, value),
                    -std::numeric_limits<double>::infinity())
}

bool ThreadTransport::do_allreduce_or(bool value) {
  EMBER_REDUCE_BODY(reduce_bool_, reduce_result_bool_,
                    world_.reduce_bool_ || value, false)
}

#undef EMBER_REDUCE_BODY

std::vector<std::byte> ThreadContext::run_gather(
    const std::function<std::vector<std::byte>(Transport&)>& fn) {
  std::vector<std::byte> root_result;
  world_.run([&fn, &root_result](ThreadTransport& t) {
    auto r = fn(t);
    if (t.rank() == 0) root_result = std::move(r);
  });
  return root_result;
}

}  // namespace ember::comm
