#pragma once

// Socket backend: ranks are forked OS processes on this node, connected
// by a full mesh of AF_UNIX stream socketpairs carrying the
// length-prefixed wire format (comm/wire.hpp).
//
// SocketContext::run_gather forks one child per rank (fork without exec,
// so arbitrary driver lambdas — tests, benches, the interpreter — run
// unmodified in every rank), wires the mesh, and collects a control
// socketpair per rank through which each child reports its outcome: an
// error frame on exception, or a stats frame (traffic totals, blocked
// time) plus — for rank 0 — the gathered result payload. A rank that
// dies without reporting (crash, _exit, signal) produces EOF on its
// streams; peers that then await anything from it raise ember::Error,
// which cascades until every survivor exits, so a killed rank yields a
// clean launcher-side Error rather than a hang.
//
// Collectives are rank-0 orchestrated over internal frames (negative
// tags) that bypass the Transport base counting shell, so thread and
// socket runs of the same program report identical comm.messages /
// comm.bytes.
//
// This header is private to src/comm — drivers obtain ranks through
// comm::make_context (ember_lint's comm-backend-include rule enforces
// the boundary).

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "comm/transport.hpp"
#include "comm/wire.hpp"

namespace ember::comm {

class SocketTransport final : public Transport {
 public:
  // peer_fds[r] is this rank's stream socket to rank r (-1 at [rank]).
  // Takes ownership: the destructor closes every fd.
  SocketTransport(int rank, std::vector<int> peer_fds);
  ~SocketTransport() override;

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override {
    return static_cast<int>(fds_.size());
  }
  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::Socket;
  }

 private:
  void do_send_bytes(int dest, int tag, const void* data,
                     std::size_t bytes) override;
  [[nodiscard]] std::vector<std::byte> do_recv_bytes(int source,
                                                     int tag) override;
  [[nodiscard]] std::pair<int, std::vector<std::byte>> do_recv_bytes_any(
      int tag) override;
  void do_barrier() override;
  double do_allreduce_sum(double value) override;
  long do_allreduce_sum(long value) override;
  double do_allreduce_max(double value) override;
  bool do_allreduce_or(bool value) override;

  // Uncounted frame primitives shared by user traffic (via do_*) and the
  // internal collective protocol.
  void raw_send(int dest, int tag, const void* data, std::size_t bytes);
  [[nodiscard]] wire::Frame raw_recv(int source, int tag);
  template <typename T, typename Op>
  [[nodiscard]] T orchestrated_allreduce(T value, Op op);

  // Nonblocking write loop that keeps the receive side progressing while
  // the peer's buffer is full (both-sides-sending deadlock avoidance).
  void write_all(int dest, const void* data, std::size_t bytes);
  // Pull everything currently readable from one peer into pending_;
  // EOF marks the peer dead and closes its fd.
  void drain(int peer);
  // Block in poll() until any peer has input (optionally until
  // want_write_dest is also writable), then drain the readable ones.
  void progress_wait(int want_write_dest);
  [[noreturn]] void peer_dead_error(int peer, const char* when) const;

  // No mutexes and no GUARDED_BY on purpose: every rank is a forked
  // single-threaded process, so this state is process-private — the OS
  // socket layer is the only synchronization between ranks. If a rank
  // ever grows a second thread, this state must move behind a Mutex
  // first (DESIGN.md §14).
  int rank_;
  std::vector<int> fds_;
  std::vector<wire::FrameBuffer> inbuf_;
  std::vector<std::deque<wire::Frame>> pending_;
  std::vector<char> dead_;
};

class SocketContext final : public Context {
 public:
  explicit SocketContext(int ranks);

  [[nodiscard]] int size() const override { return ranks_; }
  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::Socket;
  }

  [[nodiscard]] std::vector<std::byte> run_gather(
      const std::function<std::vector<std::byte>(Transport&)>& fn) override;

 private:
  int ranks_;
};

}  // namespace ember::comm
