#include "socket_transport.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ember::comm {

namespace {

// Internal protocol tags. User traffic and the generic gather/broadcast
// in the Transport base use tags >= -102; these never collide.
constexpr int kTagBarrier = -103;
constexpr int kTagReduce = -104;
constexpr int kTagReduceResult = -105;

// Control-channel frame tags (child -> launcher).
constexpr int kCtlError = -201;
constexpr int kCtlStats = -202;
constexpr int kCtlResult = -203;

struct ChildStats {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double comm_seconds = 0.0;
};

// Blocking write for the control channel (the launcher is always
// draining it, so this cannot deadlock; rank-0 results may be large).
void ctl_write_all(int fd, const void* data, std::size_t bytes) {
  const std::byte* p = static_cast<const std::byte*>(data);
  std::size_t off = 0;
  while (off < bytes) {
    const ssize_t n = ::send(fd, p + off, bytes - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Launcher gone: nothing useful left to report.
    return;
  }
}

void ctl_send_frame(int fd, int tag, const void* data, std::size_t bytes) {
  wire::FrameHeader header;
  header.tag = tag;
  header.payload_bytes = bytes;
  ctl_write_all(fd, &header, sizeof(header));
  if (bytes > 0) ctl_write_all(fd, data, bytes);
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

// ---- SocketTransport ------------------------------------------------------

SocketTransport::SocketTransport(int rank, std::vector<int> peer_fds)
    : rank_(rank), fds_(std::move(peer_fds)) {
  const std::size_t n = fds_.size();
  EMBER_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < n,
                "rank outside world");
  inbuf_.resize(n);
  pending_.resize(n);
  dead_.assign(n, 0);
}

SocketTransport::~SocketTransport() {
  for (int& fd : fds_) {
    close_fd(fd);
    fd = -1;
  }
}

void SocketTransport::peer_dead_error(int peer, const char* when) const {
  throw Error("rank " + std::to_string(rank_) + ": connection to rank " +
              std::to_string(peer) + " closed during " + when +
              " (peer exited or died)");
}

void SocketTransport::drain(int peer) {
  if (dead_[static_cast<std::size_t>(peer)] != 0) return;
  const int fd = fds_[static_cast<std::size_t>(peer)];
  std::byte buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      inbuf_[static_cast<std::size_t>(peer)].append(buf,
                                                    static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: the peer is gone. Frames already received stay
    // deliverable; anyone who later waits on this peer gets an Error.
    dead_[static_cast<std::size_t>(peer)] = 1;
    close_fd(fd);
    fds_[static_cast<std::size_t>(peer)] = -1;
    break;
  }
  auto& buffer = inbuf_[static_cast<std::size_t>(peer)];
  while (auto frame = buffer.pop()) {
    pending_[static_cast<std::size_t>(peer)].push_back(std::move(*frame));
  }
}

void SocketTransport::progress_wait(int want_write_dest) {
  std::vector<pollfd> fds;
  std::vector<int> peers;
  fds.reserve(fds_.size());
  for (int r = 0; r < size(); ++r) {
    if (r == rank_ || dead_[static_cast<std::size_t>(r)] != 0) continue;
    pollfd p{};
    p.fd = fds_[static_cast<std::size_t>(r)];
    p.events = POLLIN;
    if (r == want_write_dest) p.events |= POLLOUT;
    fds.push_back(p);
    peers.push_back(r);
  }
  if (fds.empty()) return;  // every peer is dead; callers re-check state
  for (;;) {
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n > 0) break;
    EMBER_REQUIRE(n < 0 && errno == EINTR, "poll failed");
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      drain(peers[i]);
    }
  }
}

void SocketTransport::write_all(int dest, const void* data,
                                std::size_t bytes) {
  const std::byte* p = static_cast<const std::byte*>(data);
  std::size_t off = 0;
  while (off < bytes) {
    if (dead_[static_cast<std::size_t>(dest)] != 0) {
      peer_dead_error(dest, "send");
    }
    const ssize_t n =
        ::send(fds_[static_cast<std::size_t>(dest)], p + off, bytes - off,
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The peer's buffer is full. It may itself be blocked sending to
      // us, so keep receiving while we wait for writability.
      progress_wait(dest);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    dead_[static_cast<std::size_t>(dest)] = 1;
    close_fd(fds_[static_cast<std::size_t>(dest)]);
    fds_[static_cast<std::size_t>(dest)] = -1;
    peer_dead_error(dest, "send");
  }
}

void SocketTransport::raw_send(int dest, int tag, const void* data,
                               std::size_t bytes) {
  EMBER_REQUIRE(dest >= 0 && dest < size(), "invalid destination");
  if (dest == rank_) {
    wire::Frame frame;
    frame.tag = tag;
    frame.payload.resize(bytes);
    if (bytes > 0) std::memcpy(frame.payload.data(), data, bytes);
    pending_[static_cast<std::size_t>(rank_)].push_back(std::move(frame));
    return;
  }
  if (dead_[static_cast<std::size_t>(dest)] != 0) {
    peer_dead_error(dest, "send");
  }
  wire::FrameHeader header;
  header.tag = tag;
  header.payload_bytes = bytes;
  write_all(dest, &header, sizeof(header));
  if (bytes > 0) write_all(dest, data, bytes);
}

wire::Frame SocketTransport::raw_recv(int source, int tag) {
  EMBER_REQUIRE(source >= 0 && source < size(), "invalid source");
  for (;;) {
    auto& queue = pending_[static_cast<std::size_t>(source)];
    const auto it = std::find_if(
        queue.begin(), queue.end(),
        [tag](const wire::Frame& f) { return f.tag == tag; });
    if (it != queue.end()) {
      wire::Frame frame = std::move(*it);
      queue.erase(it);
      return frame;
    }
    if (source == rank_) {
      EMBER_REQUIRE(false, "self receive with no matching self send");
    }
    if (dead_[static_cast<std::size_t>(source)] != 0) {
      peer_dead_error(source, "recv");
    }
    progress_wait(-1);
  }
}

void SocketTransport::do_send_bytes(int dest, int tag, const void* data,
                                    std::size_t bytes) {
  raw_send(dest, tag, data, bytes);
}

std::vector<std::byte> SocketTransport::do_recv_bytes(int source, int tag) {
  return std::move(raw_recv(source, tag).payload);
}

std::pair<int, std::vector<std::byte>> SocketTransport::do_recv_bytes_any(
    int tag) {
  for (;;) {
    for (int s = 0; s < size(); ++s) {
      auto& queue = pending_[static_cast<std::size_t>(s)];
      const auto it = std::find_if(
          queue.begin(), queue.end(),
          [tag](const wire::Frame& f) { return f.tag == tag; });
      if (it != queue.end()) {
        auto payload = std::move(it->payload);
        queue.erase(it);
        return {s, std::move(payload)};
      }
    }
    bool any_alive = false;
    for (int s = 0; s < size(); ++s) {
      if (s != rank_ && dead_[static_cast<std::size_t>(s)] == 0) {
        any_alive = true;
      }
    }
    if (!any_alive) {
      throw Error("rank " + std::to_string(rank_) +
                  ": every peer closed during any-source recv");
    }
    progress_wait(-1);
  }
}

void SocketTransport::do_barrier() {
  if (size() == 1) return;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) (void)raw_recv(r, kTagBarrier);
    for (int r = 1; r < size(); ++r) raw_send(r, kTagBarrier, nullptr, 0);
  } else {
    raw_send(0, kTagBarrier, nullptr, 0);
    (void)raw_recv(0, kTagBarrier);
  }
}

template <typename T, typename Op>
T SocketTransport::orchestrated_allreduce(T value, Op op) {
  if (size() == 1) return value;
  if (rank_ == 0) {
    T acc = value;
    for (int r = 1; r < size(); ++r) {
      acc = op(acc, from_bytes<T>(raw_recv(r, kTagReduce).payload));
    }
    for (int r = 1; r < size(); ++r) {
      raw_send(r, kTagReduceResult, &acc, sizeof(T));
    }
    return acc;
  }
  raw_send(0, kTagReduce, &value, sizeof(T));
  return from_bytes<T>(raw_recv(0, kTagReduceResult).payload);
}

double SocketTransport::do_allreduce_sum(double value) {
  return orchestrated_allreduce(value,
                                [](double a, double b) { return a + b; });
}

long SocketTransport::do_allreduce_sum(long value) {
  return orchestrated_allreduce(value, [](long a, long b) { return a + b; });
}

double SocketTransport::do_allreduce_max(double value) {
  return orchestrated_allreduce(
      value, [](double a, double b) { return std::max(a, b); });
}

bool SocketTransport::do_allreduce_or(bool value) {
  return orchestrated_allreduce(value, [](bool a, bool b) { return a || b; });
}

// ---- SocketContext --------------------------------------------------------

SocketContext::SocketContext(int ranks) : ranks_(ranks) {
  EMBER_REQUIRE(ranks >= 1 && ranks <= 512, "unsupported world size");
  // The mesh needs ranks*(ranks-1) stream fds plus 2*ranks control fds in
  // the launching process; refuse up front rather than fail mid-wiring.
  rlimit limit{};
  EMBER_REQUIRE(::getrlimit(RLIMIT_NOFILE, &limit) == 0, "getrlimit failed");
  const rlim_t needed =
      static_cast<rlim_t>(ranks) * static_cast<rlim_t>(ranks - 1) +
      2 * static_cast<rlim_t>(ranks) + 64;
  EMBER_REQUIRE(needed < limit.rlim_cur,
                "socket transport: rank count needs " + std::to_string(needed) +
                    " file descriptors but the limit is " +
                    std::to_string(limit.rlim_cur));
}

namespace {

[[noreturn]] void child_main(
    int rank, const std::vector<std::vector<int>>& mesh,
    const std::vector<int>& ctl_parent, const std::vector<int>& ctl_child,
    const std::function<std::vector<std::byte>(Transport&)>& fn) {
  const int n = static_cast<int>(mesh.size());
  // Keep only this rank's row of the mesh and its own control socket.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != rank) close_fd(mesh[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)]);
    }
    close_fd(ctl_parent[static_cast<std::size_t>(i)]);
    if (i != rank) close_fd(ctl_child[static_cast<std::size_t>(i)]);
  }
  const int ctl = ctl_child[static_cast<std::size_t>(rank)];
#if !defined(EMBER_OBS_DISABLED)
  obs::TraceSession::global().set_thread_name("rank-" +
                                              std::to_string(rank));
#endif
  int exit_code = 0;
  try {
    SocketTransport transport(rank, mesh[static_cast<std::size_t>(rank)]);
    std::vector<std::byte> result = fn(transport);
    ChildStats stats;
    stats.messages = transport.traffic().messages;
    stats.bytes = transport.traffic().bytes;
    stats.comm_seconds = transport.comm_seconds();
    ctl_send_frame(ctl, kCtlStats, &stats, sizeof(stats));
    if (rank == 0) {
      ctl_send_frame(ctl, kCtlResult, result.data(), result.size());
    }
    // A test harness may know about non-throwing assertion failures that
    // happened inside fn (gtest EXPECT_*); surface them as a distinct
    // exit code so the launcher can fail the run.
    if (rank_failure_probe() && rank_failure_probe()()) exit_code = 2;
  } catch (const std::exception& e) {
    const char* what = e.what();
    ctl_send_frame(ctl, kCtlError, what, std::strlen(what));
    exit_code = 1;
  } catch (...) {
    const char msg[] = "unknown exception";
    ctl_send_frame(ctl, kCtlError, msg, sizeof(msg) - 1);
    exit_code = 1;
  }
  close_fd(ctl);
  // _exit (not exit): never run the parent's atexit handlers or flush
  // its inherited buffers twice — but do flush what this child printed.
  std::fflush(nullptr);
  ::_exit(exit_code);
}

}  // namespace

std::vector<std::byte> SocketContext::run_gather(
    const std::function<std::vector<std::byte>(Transport&)>& fn) {
  const int n = ranks_;
  // mesh[i][j]: the fd rank i uses to talk to rank j (one socketpair per
  // unordered rank pair).
  std::vector<std::vector<int>> mesh(
      static_cast<std::size_t>(n), std::vector<int>(static_cast<std::size_t>(n), -1));
  std::vector<int> ctl_parent(static_cast<std::size_t>(n), -1);
  std::vector<int> ctl_child(static_cast<std::size_t>(n), -1);
  auto close_everything = [&] {
    for (auto& row : mesh) {
      for (int& fd : row) {
        close_fd(fd);
        fd = -1;
      }
    }
    for (int& fd : ctl_parent) {
      close_fd(fd);
      fd = -1;
    }
    for (int& fd : ctl_child) {
      close_fd(fd);
      fd = -1;
    }
  };
  try {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        int sv[2];
        EMBER_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                      "socketpair failed");
        mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
        mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
      }
      int sv[2];
      EMBER_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                    "socketpair failed");
      ctl_parent[static_cast<std::size_t>(i)] = sv[0];
      ctl_child[static_cast<std::size_t>(i)] = sv[1];
    }
  } catch (...) {
    close_everything();
    throw;
  }

  // Forked children inherit stdio buffers; flush so buffered output is
  // not printed once per rank.
  std::fflush(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Wiring partially done: kill what we started, reap, and fail.
      for (int k = 0; k < r; ++k) {
        ::kill(pids[static_cast<std::size_t>(k)], SIGKILL);
      }
      for (int k = 0; k < r; ++k) {
        ::waitpid(pids[static_cast<std::size_t>(k)], nullptr, 0);
      }
      close_everything();
      throw Error("fork failed launching socket transport ranks");
    }
    if (pid == 0) {
      child_main(r, mesh, ctl_parent, ctl_child, fn);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Launcher keeps only the parent ends of the control sockets.
  for (auto& row : mesh) {
    for (int& fd : row) {
      close_fd(fd);
      fd = -1;
    }
  }
  for (int& fd : ctl_child) {
    close_fd(fd);
    fd = -1;
  }

  // Collect every child's control stream to EOF, then reap it. Reading
  // rank 0 first keeps its (possibly large) result frame draining while
  // the child writes it.
  std::vector<std::byte> root_result;
  std::string first_error;
  std::uint64_t total_messages = 0;
  double total_bytes = 0.0;
  for (int r = 0; r < n; ++r) {
    wire::FrameBuffer buffer;
    std::byte buf[65536];
    const int fd = ctl_parent[static_cast<std::size_t>(r)];
    for (;;) {
      const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
      if (got > 0) {
        buffer.append(buf, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && errno == EINTR) continue;
      break;  // EOF: the child exited (or a hard error; treated the same)
    }
    close_fd(fd);
    ctl_parent[static_cast<std::size_t>(r)] = -1;

    bool reported_stats = false;
    while (auto frame = buffer.pop()) {
      if (frame->tag == kCtlStats) {
        const auto stats = from_bytes<ChildStats>(frame->payload);
        total_messages += stats.messages;
        total_bytes += stats.bytes;
        reported_stats = true;
      } else if (frame->tag == kCtlResult && r == 0) {
        root_result = std::move(frame->payload);
      } else if (frame->tag == kCtlError && first_error.empty()) {
        first_error = "rank " + std::to_string(r) + ": " +
                      std::string(reinterpret_cast<const char*>(
                                      frame->payload.data()),
                                  frame->payload.size());
      }
    }

    int status = 0;
    ::waitpid(pids[static_cast<std::size_t>(r)], &status, 0);
    if (first_error.empty()) {
      if (WIFSIGNALED(status)) {
        first_error = "rank " + std::to_string(r) + ": killed by signal " +
                      std::to_string(WTERMSIG(status));
      } else if (WIFEXITED(status) && WEXITSTATUS(status) == 2) {
        first_error =
            "rank " + std::to_string(r) + ": reported test failures";
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        first_error = "rank " + std::to_string(r) +
                      ": exited abnormally (status " +
                      std::to_string(status) + ")";
      } else if (!reported_stats) {
        first_error =
            "rank " + std::to_string(r) + ": exited without reporting";
      }
    }
  }

  // Child-side registries died with the children; fold their traffic into
  // the launching process so metric dumps match the thread backend.
  if (total_messages > 0) {
    obs::Registry::global()
        .counter("comm.messages")
        .add(static_cast<double>(total_messages));
    obs::Registry::global().counter("comm.bytes").add(total_bytes);
  }

  if (!first_error.empty()) {
    throw Error("socket transport run failed: " + first_error);
  }
  return root_result;
}

}  // namespace ember::comm
