#pragma once

// In-process message passing with MPI-like semantics.
//
// A World hosts N ranks; each rank executes the same function on its own
// thread and communicates through mailboxes (mutex + condition variable
// per destination). The subset of MPI that LAMMPS-style MD needs is
// provided: blocking tagged send/recv, barrier, reductions, gather and
// broadcast. Deterministic given deterministic rank programs: recv matches
// (source, tag) exactly, so no wildcard races exist.
//
// This layer stands in for MPI on the single-node environment (see
// DESIGN.md §2); the domain-decomposition code is written against this
// interface exactly as it would be against MPI.

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace ember::comm {

class World;

class Communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // ---- point to point (blocking, byte-level) ----
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  std::vector<std::byte> recv_bytes(int source, int tag);

  // Typed convenience wrappers for trivially copyable payloads.
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data.data(), data.size() * sizeof(T));
  }
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = recv_bytes(source, tag);
    EMBER_REQUIRE(raw.size() % sizeof(T) == 0, "message size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    // Zero-length messages are legal (empty halo legs); memcpy's pointer
    // arguments must not be null even for size 0, so skip the copy.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &value, sizeof(T));
  }
  template <typename T>
  T recv_value(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = recv_bytes(source, tag);
    EMBER_REQUIRE(raw.size() == sizeof(T), "message size mismatch");
    T out;
    std::memcpy(&out, raw.data(), sizeof(T));
    return out;
  }

  // ---- collectives (all ranks must call) ----
  void barrier();
  double allreduce_sum(double value);
  long allreduce_sum(long value);
  double allreduce_max(double value);
  bool allreduce_or(bool value);
  // Gather one double per rank to root (result valid on root only).
  std::vector<double> gather(double value, int root = 0);
  // Broadcast a value from root to all ranks.
  double broadcast(double value, int root = 0);

  // Elapsed seconds this rank has spent blocked in communication calls.
  [[nodiscard]] double comm_seconds() const { return comm_seconds_; }
  void reset_comm_seconds() { comm_seconds_ = 0.0; }

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(world), rank_(rank) {}

  World& world_;
  int rank_;
  double comm_seconds_ = 0.0;
};

class World {
 public:
  explicit World(int size);

  [[nodiscard]] int size() const { return size_; }

  // Execute fn on every rank concurrently and join. Exceptions thrown by
  // any rank are rethrown (the first one) after all threads complete.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  friend class Communicator;

  struct Message {
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // One queue per source rank: (source, tag) matching scans only the
    // source's queue, preserving per-source FIFO order like MPI.
    std::vector<std::deque<Message>> from;
  };

  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Barrier state (central counter, generation-stamped).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  long barrier_generation_ = 0;

  // Reduction scratch (protected by barrier-style phases).
  std::mutex reduce_mutex_;
  std::condition_variable reduce_cv_;
  double reduce_double_ = 0.0;
  long reduce_long_ = 0;
  bool reduce_bool_ = false;
  int reduce_count_ = 0;
  long reduce_generation_ = 0;
  double reduce_result_double_ = 0.0;
  long reduce_result_long_ = 0;
  bool reduce_result_bool_ = false;
};

}  // namespace ember::comm
