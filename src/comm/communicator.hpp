#pragma once

// Thread backend: in-process message passing with MPI-like semantics.
//
// A World hosts N ranks; each rank executes the same function on its own
// thread and communicates through mailboxes (mutex + condition variable
// per destination). Deterministic given deterministic rank programs:
// recv matches (source, tag) exactly, so no wildcard races exist.
//
// This is the fast in-node path behind the comm::Transport interface
// (comm/transport.hpp); the multi-process path is SocketTransport. This
// header is private to src/comm — drivers obtain ranks through
// comm::make_context and program against Transport (ember_lint's
// comm-backend-include rule enforces the boundary).

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "comm/transport.hpp"
#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace ember::comm {

class World;

class ThreadTransport final : public Transport {
 public:
  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override;
  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::Thread;
  }

 private:
  friend class World;
  ThreadTransport(World& world, int rank) : world_(world), rank_(rank) {}

  void do_send_bytes(int dest, int tag, const void* data,
                     std::size_t bytes) override;
  [[nodiscard]] std::vector<std::byte> do_recv_bytes(int source,
                                                     int tag) override;
  [[nodiscard]] std::pair<int, std::vector<std::byte>> do_recv_bytes_any(
      int tag) override;
  void do_barrier() override;
  double do_allreduce_sum(double value) override;
  long do_allreduce_sum(long value) override;
  double do_allreduce_max(double value) override;
  bool do_allreduce_or(bool value) override;

  World& world_;
  int rank_;
};

class World {
 public:
  explicit World(int size);

  [[nodiscard]] int size() const { return size_; }

  // Execute fn on every rank concurrently and join. Exceptions thrown by
  // any rank are rethrown (the first one) after all threads complete.
  void run(const std::function<void(ThreadTransport&)>& fn);

 private:
  friend class ThreadTransport;

  struct Message {
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    Mutex mutex;
    CondVar cv;
    // One queue per source rank: (source, tag) matching scans only the
    // source's queue, preserving per-source FIFO order like MPI.
    std::vector<std::deque<Message>> from EMBER_GUARDED_BY(mutex);
  };

  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  // size_ and the mailbox pointers are set in the constructor before any
  // rank thread exists and never change: immutable topology, no guard.
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Barrier state (central counter, generation-stamped).
  Mutex barrier_mutex_;
  CondVar barrier_cv_;
  int barrier_count_ EMBER_GUARDED_BY(barrier_mutex_) = 0;
  long barrier_generation_ EMBER_GUARDED_BY(barrier_mutex_) = 0;

  // Reduction scratch (protected by barrier-style phases).
  Mutex reduce_mutex_;
  CondVar reduce_cv_;
  double reduce_double_ EMBER_GUARDED_BY(reduce_mutex_) = 0.0;
  long reduce_long_ EMBER_GUARDED_BY(reduce_mutex_) = 0;
  bool reduce_bool_ EMBER_GUARDED_BY(reduce_mutex_) = false;
  int reduce_count_ EMBER_GUARDED_BY(reduce_mutex_) = 0;
  long reduce_generation_ EMBER_GUARDED_BY(reduce_mutex_) = 0;
  double reduce_result_double_ EMBER_GUARDED_BY(reduce_mutex_) = 0.0;
  long reduce_result_long_ EMBER_GUARDED_BY(reduce_mutex_) = 0;
  bool reduce_result_bool_ EMBER_GUARDED_BY(reduce_mutex_) = false;
};

class ThreadContext final : public Context {
 public:
  explicit ThreadContext(int ranks) : world_(ranks) {}

  [[nodiscard]] int size() const override { return world_.size(); }
  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::Thread;
  }

  [[nodiscard]] std::vector<std::byte> run_gather(
      const std::function<std::vector<std::byte>(Transport&)>& fn) override;

 private:
  World world_;
};

}  // namespace ember::comm
