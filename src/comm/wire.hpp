#pragma once

// Length-prefixed wire format for the socket backend.
//
// Every message on a rank-to-rank stream is one frame: a fixed 16-byte
// header (tag + payload length) followed by the payload bytes. Streams
// are per-peer, so the source is implicit and per-source FIFO order is
// the stream order; tag matching happens above this layer on decoded
// frames. The same framing carries the control-channel reports a rank
// child sends its launcher (status, traffic totals, rank-0 result).
//
// FrameBuffer is the reassembly half: sockets deliver arbitrary byte
// runs, so incoming data is appended as it arrives and complete frames
// are popped off the front once the length prefix is satisfied.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace ember::comm::wire {

struct FrameHeader {
  std::int32_t tag = 0;
  std::uint32_t reserved = 0;  // keeps the payload 8-byte aligned
  std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(FrameHeader) == 16);

// Refuse obviously-corrupt length prefixes before allocating: no single
// in-node MD message approaches 1 TiB.
inline constexpr std::uint64_t kMaxFrameBytes = 1ULL << 40;

struct Frame {
  int tag = 0;
  std::vector<std::byte> payload;
};

// Header + payload as one contiguous buffer (small messages; large
// payloads are better written as header then payload to skip the copy).
[[nodiscard]] inline std::vector<std::byte> encode_frame(
    int tag, const void* data, std::size_t bytes) {
  FrameHeader header;
  header.tag = tag;
  header.payload_bytes = bytes;
  std::vector<std::byte> out(sizeof(FrameHeader) + bytes);
  std::memcpy(out.data(), &header, sizeof(FrameHeader));
  if (bytes > 0) std::memcpy(out.data() + sizeof(FrameHeader), data, bytes);
  return out;
}

class FrameBuffer {
 public:
  void append(const std::byte* data, std::size_t bytes) {
    buffer_.insert(buffer_.end(), data, data + bytes);
  }

  // Pop the next complete frame, or nullopt while bytes are still
  // outstanding. Throws ember::Error on a corrupt length prefix.
  [[nodiscard]] std::optional<Frame> pop() {
    if (buffer_.size() - start_ < sizeof(FrameHeader)) return std::nullopt;
    FrameHeader header;
    std::memcpy(&header, buffer_.data() + start_, sizeof(FrameHeader));
    EMBER_REQUIRE(header.payload_bytes <= kMaxFrameBytes,
                  "corrupt wire frame: implausible payload length");
    const std::size_t need =
        sizeof(FrameHeader) + static_cast<std::size_t>(header.payload_bytes);
    if (buffer_.size() - start_ < need) return std::nullopt;
    Frame frame;
    frame.tag = header.tag;
    frame.payload.assign(
        buffer_.begin() + static_cast<std::ptrdiff_t>(start_ +
                                                      sizeof(FrameHeader)),
        buffer_.begin() + static_cast<std::ptrdiff_t>(start_ + need));
    start_ += need;
    // Compact once the consumed prefix dominates, amortizing the erase.
    if (start_ > 4096 && start_ * 2 > buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(start_));
      start_ = 0;
    }
    return frame;
  }

  [[nodiscard]] bool empty() const { return buffer_.size() == start_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t start_ = 0;
};

}  // namespace ember::comm::wire
