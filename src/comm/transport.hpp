#pragma once

// The driver-facing communication interface.
//
// Everything outside src/comm programs against `Transport` (one rank's
// endpoint: typed send/recv, barrier, reductions, gather/broadcast,
// comm_seconds) and `Context` (a world of N ranks that runs the same
// function on every rank). Backends plug in behind the interface:
//
//   ThreadTransport  (comm/communicator.hpp)  ranks are threads of this
//       process exchanging messages through in-memory mailboxes — the
//       fast in-node path, deterministic, zero-copy.
//   SocketTransport  (comm/socket_transport.hpp)  ranks are forked OS
//       processes connected by a full mesh of local stream sockets with
//       a length-prefixed wire format — the real multi-process scaling
//       path of the paper's Figs. 3–5, with rank-0 orchestrated
//       collectives and error propagation through a control channel.
//
// Backend headers are private to src/comm (enforced by ember_lint's
// comm-backend-include rule); construction goes through
// `make_context(TransportSpec)`. The `EMBER_TRANSPORT` environment
// variable and the interpreter's `transport thread|socket` command pick
// the backend at run time.
//
// Semantics shared by every backend (the contract the domain-
// decomposition code is written against, exactly as it would be against
// MPI): blocking tagged send/recv with exact (source, tag) matching and
// per-source-per-tag FIFO order, collectives that every rank must enter,
// and `comm_seconds()` accounting of time blocked in communication.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ember::comm {

enum class TransportKind { Thread, Socket };

[[nodiscard]] const char* to_string(TransportKind kind);
// Accepts "thread" or "socket"; anything else throws ember::Error.
[[nodiscard]] TransportKind transport_kind_from_string(const std::string& s);
// EMBER_TRANSPORT=thread|socket, defaulting to Thread when unset/empty.
[[nodiscard]] TransportKind default_transport_kind();

struct TransportSpec {
  TransportKind kind = TransportKind::Thread;
  int ranks = 1;
};

// Trivially-copyable value <-> byte-vector helpers, shared by the typed
// wrappers below, the wire format, and drivers shipping results out of
// process-backed ranks (Context::run_gather).
template <typename T>
[[nodiscard]] std::vector<std::byte> to_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
[[nodiscard]] T from_bytes(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  EMBER_REQUIRE(bytes.size() == sizeof(T), "payload size mismatch");
  T out;
  std::memcpy(&out, bytes.data(), sizeof(T));
  return out;
}

// One rank's endpoint. The public methods are non-virtual shells that
// add the backend-independent bookkeeping — traffic metrics on send,
// blocked-time accounting on recv and collectives, and the single typed
// serialization layer — around the virtual do_* backend primitives.
class Transport {
 public:
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual TransportKind kind() const = 0;

  // ---- point to point (blocking, byte-level) ----
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  [[nodiscard]] std::vector<std::byte> recv_bytes(int source, int tag);
  // Any-source receive (MPI_ANY_SOURCE analog): the next message with
  // this tag from whichever rank sent one, with its source. The one
  // deliberately nondeterministic primitive — pull-model servers
  // (parsplice work manager) need it for load balancing.
  [[nodiscard]] std::pair<int, std::vector<std::byte>> recv_bytes_any(int tag);

  // Typed wrappers for trivially copyable payloads: the one serialization
  // helper both backends share (backends only ever see bytes).
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data.data(), data.size() * sizeof(T));
  }
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = recv_bytes(source, tag);
    EMBER_REQUIRE(raw.size() % sizeof(T) == 0, "message size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    // Zero-length messages are legal (empty halo legs); memcpy's pointer
    // arguments must not be null even for size 0, so skip the copy.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &value, sizeof(T));
  }
  template <typename T>
  [[nodiscard]] T recv_value(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto raw = recv_bytes(source, tag);
    EMBER_REQUIRE(raw.size() == sizeof(T), "message size mismatch");
    T out;
    std::memcpy(&out, raw.data(), sizeof(T));
    return out;
  }

  // ---- collectives (all ranks must call) ----
  void barrier();
  double allreduce_sum(double value);
  long allreduce_sum(long value);
  double allreduce_max(double value);
  bool allreduce_or(bool value);
  // Gather one double per rank to root (result valid on root only) and
  // broadcast from root: implemented once, over the typed point-to-point
  // layer, so both backends behave (and count traffic) identically.
  [[nodiscard]] std::vector<double> gather(double value, int root = 0);
  double broadcast(double value, int root = 0);

  // Elapsed seconds this rank has spent blocked in communication calls.
  [[nodiscard]] double comm_seconds() const { return comm_seconds_; }
  void reset_comm_seconds() { comm_seconds_ = 0.0; }

  // Rank-local traffic totals (what this endpoint pushed into the
  // comm.messages / comm.bytes counters); process-backed contexts use
  // them to fold child traffic back into the launching registry.
  struct Traffic {
    std::uint64_t messages = 0;
    double bytes = 0.0;
  };
  [[nodiscard]] Traffic traffic() const { return traffic_; }

 protected:
  Transport() = default;

  virtual void do_send_bytes(int dest, int tag, const void* data,
                             std::size_t bytes) = 0;
  [[nodiscard]] virtual std::vector<std::byte> do_recv_bytes(int source,
                                                             int tag) = 0;
  [[nodiscard]] virtual std::pair<int, std::vector<std::byte>>
  do_recv_bytes_any(int tag) = 0;
  virtual void do_barrier() = 0;
  virtual double do_allreduce_sum(double value) = 0;
  virtual long do_allreduce_sum(long value) = 0;
  virtual double do_allreduce_max(double value) = 0;
  virtual bool do_allreduce_or(bool value) = 0;

 private:
  // Thread-confinement contract (why these carry no GUARDED_BY): a
  // Transport is one rank's endpoint, and exactly one thread — that
  // rank's thread — ever calls into it. The shells below mutate these on
  // that thread only; cross-thread state lives behind do_* in the
  // backend (World's guarded mailboxes / barrier / reduce scratch).
  // Sharing one Transport across threads is a contract violation, not a
  // supported-but-racy mode.
  double comm_seconds_ = 0.0;
  Traffic traffic_;
};

// A world of N ranks behind one backend. run() executes fn on every rank
// concurrently and joins; any rank's failure surfaces as ember::Error.
class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual TransportKind kind() const = 0;

  // Run fn on every rank; rank 0's return value is delivered to the
  // caller in the *launching* process (for the socket backend, shipped
  // from the rank-0 child over the control channel). Drivers that need
  // state back from a run serialize it here (see to_bytes / the
  // checkpoint byte helpers in md/io.hpp).
  [[nodiscard]] virtual std::vector<std::byte> run_gather(
      const std::function<std::vector<std::byte>(Transport&)>& fn) = 0;

  void run(const std::function<void(Transport&)>& fn);
};

// Factory: the only way drivers obtain a communication context.
[[nodiscard]] std::unique_ptr<Context> make_context(const TransportSpec& spec);

// Process-backed ranks run user code in forked children, where a test
// framework's non-throwing assertion failures (gtest EXPECT_*) would
// otherwise vanish with the child. A harness may install a probe that is
// consulted after the rank body returns; a true result turns into a
// nonzero rank exit, which the launcher reports as ember::Error.
void set_rank_failure_probe(std::function<bool()> probe);
[[nodiscard]] const std::function<bool()>& rank_failure_probe();

}  // namespace ember::comm
