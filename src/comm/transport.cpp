#include "transport.hpp"

#include <cstdlib>

#include "comm/communicator.hpp"
#include "comm/socket_transport.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace ember::comm {

namespace {
// Internal tags for the collectives built on point-to-point (user code
// should use non-negative tags).
constexpr int kTagGather = -101;
constexpr int kTagBcast = -102;

// Process-global traffic counters. Registered once; per-call cost is one
// sharded relaxed fetch_add each. Both backends feed the same names, so
// thread and socket runs of the same program report identical traffic.
struct CommMetrics {
  obs::Counter& messages;
  obs::Counter& bytes;
  static CommMetrics& get() {
    static CommMetrics m{obs::Registry::global().counter("comm.messages"),
                         obs::Registry::global().counter("comm.bytes")};
    return m;
  }
};

// Set-before-run contract, so no lock: the harness installs the probe
// once on the main thread before any Context::run spawns rank threads or
// forks rank processes, and nothing mutates it while ranks are live.
std::function<bool()>& probe_slot() {
  static std::function<bool()> probe;
  return probe;
}
}  // namespace

const char* to_string(TransportKind kind) {
  return kind == TransportKind::Thread ? "thread" : "socket";
}

TransportKind transport_kind_from_string(const std::string& s) {
  if (s == "thread") return TransportKind::Thread;
  if (s == "socket") return TransportKind::Socket;
  EMBER_REQUIRE(false, "unknown transport '" + s + "' (thread|socket)");
}

TransportKind default_transport_kind() {
  const char* env = std::getenv("EMBER_TRANSPORT");
  if (env == nullptr || env[0] == '\0') return TransportKind::Thread;
  return transport_kind_from_string(env);
}

void set_rank_failure_probe(std::function<bool()> probe) {
  probe_slot() = std::move(probe);
}

const std::function<bool()>& rank_failure_probe() { return probe_slot(); }

// ---- Transport base shells ------------------------------------------------

void Transport::send_bytes(int dest, int tag, const void* data,
                           std::size_t bytes) {
  CommMetrics& m = CommMetrics::get();
  m.messages.inc();
  m.bytes.add(static_cast<double>(bytes));
  ++traffic_.messages;
  traffic_.bytes += static_cast<double>(bytes);
  do_send_bytes(dest, tag, data, bytes);
}

std::vector<std::byte> Transport::recv_bytes(int source, int tag) {
  WallTimer timer;
  auto out = do_recv_bytes(source, tag);
  comm_seconds_ += timer.seconds();
  return out;
}

std::pair<int, std::vector<std::byte>> Transport::recv_bytes_any(int tag) {
  WallTimer timer;
  auto out = do_recv_bytes_any(tag);
  comm_seconds_ += timer.seconds();
  return out;
}

void Transport::barrier() {
  WallTimer timer;
  do_barrier();
  comm_seconds_ += timer.seconds();
}

double Transport::allreduce_sum(double value) {
  WallTimer timer;
  const double out = do_allreduce_sum(value);
  comm_seconds_ += timer.seconds();
  return out;
}

long Transport::allreduce_sum(long value) {
  WallTimer timer;
  const long out = do_allreduce_sum(value);
  comm_seconds_ += timer.seconds();
  return out;
}

double Transport::allreduce_max(double value) {
  WallTimer timer;
  const double out = do_allreduce_max(value);
  comm_seconds_ += timer.seconds();
  return out;
}

bool Transport::allreduce_or(bool value) {
  WallTimer timer;
  const bool out = do_allreduce_or(value);
  comm_seconds_ += timer.seconds();
  return out;
}

std::vector<double> Transport::gather(double value, int root) {
  if (rank() == root) {
    std::vector<double> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = value;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv_value<double>(r, kTagGather);
    }
    return out;
  }
  send_value(root, kTagGather, value);
  return {};
}

double Transport::broadcast(double value, int root) {
  if (rank() == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send_value(r, kTagBcast, value);
    }
    return value;
  }
  return recv_value<double>(root, kTagBcast);
}

// ---- Context --------------------------------------------------------------

void Context::run(const std::function<void(Transport&)>& fn) {
  (void)run_gather([&fn](Transport& t) {
    fn(t);
    return std::vector<std::byte>{};
  });
}

std::unique_ptr<Context> make_context(const TransportSpec& spec) {
  EMBER_REQUIRE(spec.ranks >= 1, "transport context needs >= 1 rank");
  // 0 = thread, 1 = socket: lets a metrics dump attribute a run to its
  // backend (the launching process owns the registry either way).
  obs::Registry::global()
      .gauge("comm.transport")
      .set(spec.kind == TransportKind::Thread ? 0.0 : 1.0);
  obs::Registry::global().gauge("comm.ranks").set(spec.ranks);
  if (spec.kind == TransportKind::Socket) {
    return std::make_unique<SocketContext>(spec.ranks);
  }
  return std::make_unique<ThreadContext>(spec.ranks);
}

}  // namespace ember::comm
