#include "classify.hpp"

#include <algorithm>
#include <cmath>

#include "io/embt1.hpp"
#include "io/frame.hpp"

namespace ember::analysis {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::Diamond:
      return "diamond";
    case Phase::Bc8:
      return "bc8";
    case Phase::Disordered:
      return "disordered";
    case Phase::LowCoordinated:
      return "low-coordinated";
    case Phase::HighCoordinated:
      return "high-coordinated";
  }
  return "?";
}

std::vector<Phase> classify_atoms(const md::System& sys,
                                  const md::NeighborList& nl,
                                  const ClassifyOptions& opt) {
  std::vector<Phase> phases(sys.nlocal(), Phase::Disordered);
  const double c2 = opt.bond_cutoff * opt.bond_cutoff;

  std::vector<Vec3> bonds;
  std::vector<double> angles;
  for (int i = 0; i < sys.nlocal(); ++i) {
    bonds.clear();
    for (const auto& en : nl.neighbors(i)) {
      const Vec3 d = sys.x[en.j] + en.shift - sys.x[i];
      if (d.norm2() < c2) bonds.push_back(d);
    }
    if (bonds.size() < 4) {
      phases[i] = Phase::LowCoordinated;
      continue;
    }
    if (bonds.size() > 4) {
      phases[i] = Phase::HighCoordinated;
      continue;
    }

    double blen[4];
    for (int p = 0; p < 4; ++p) blen[p] = bonds[p].norm();
    std::sort(blen, blen + 4);

    angles.clear();
    for (int p = 0; p < 4; ++p) {
      for (int q = p + 1; q < 4; ++q) {
        const double cth = dot(bonds[p], bonds[q]) /
                           (bonds[p].norm() * bonds[q].norm());
        angles.push_back(std::acos(std::clamp(cth, -1.0, 1.0)) * 180.0 /
                         M_PI);
      }
    }
    std::sort(angles.begin(), angles.end());

    // BC8 first — its signature (bimodal angles + short/long bond split)
    // is the more specific one; ideal BC8 angles would otherwise fall
    // inside a thermally-widened tetrahedral window.
    const double low3 = (angles[0] + angles[1] + angles[2]) / 3.0;
    const double high3 = (angles[3] + angles[4] + angles[5]) / 3.0;
    const bool bimodal =
        low3 < opt.bc8_low_angle && high3 > opt.bc8_high_angle &&
        angles.front() > 85.0 && angles.back() < 130.0;
    // BC8 bond signature: exactly one distinctly short bond, and three
    // long bonds similar to each other (kills generic thermal distortion
    // of tetrahedral sites, which spreads all four lengths).
    const bool split = blen[1] / blen[0] > opt.bc8_bond_split &&
                       blen[3] / blen[1] < opt.bc8_long_spread;
    if (bimodal && split) {
      phases[i] = Phase::Bc8;
      continue;
    }

    const bool all_tetrahedral =
        angles.front() >= opt.diamond_angle_lo &&
        angles.back() <= opt.diamond_angle_hi;
    if (all_tetrahedral) {
      phases[i] = Phase::Diamond;
    }
  }
  return phases;
}

PhaseFractions phase_fractions(const std::vector<Phase>& phases) {
  PhaseFractions f;
  if (phases.empty()) return f;
  for (const Phase p : phases) {
    switch (p) {
      case Phase::Diamond:
        f.diamond += 1;
        break;
      case Phase::Bc8:
        f.bc8 += 1;
        break;
      case Phase::Disordered:
        f.disordered += 1;
        break;
      default:
        f.other += 1;
    }
  }
  const double n = static_cast<double>(phases.size());
  f.diamond /= n;
  f.bc8 /= n;
  f.disordered /= n;
  f.other /= n;
  return f;
}

PhaseFractions analyze(const md::System& sys, const ClassifyOptions& opt) {
  md::NeighborList nl(opt.bond_cutoff + 0.4, 0.0);
  nl.build(sys);
  return phase_fractions(classify_atoms(sys, nl, opt));
}

std::vector<TrajectoryFrameSummary> analyze_trajectory(
    const std::string& path, const ClassifyOptions& opt) {
  io::TrajectoryReader reader(path);
  std::vector<TrajectoryFrameSummary> out;
  while (auto frame = reader.next()) {
    TrajectoryFrameSummary s;
    s.step = frame->step;
    s.replica = frame->replica;
    s.natoms = frame->natoms();
    s.fractions = analyze(io::system_of(*frame), opt);
    out.push_back(s);
  }
  return out;
}

}  // namespace ember::analysis
