#pragma once

// Local-structure classification: diamond vs BC8 vs disordered carbon.
//
// The paper's discovery is the emergence of the BC8 phase from amorphous
// carbon at ~12 Mbar / 5000 K; this module provides the detector. Both
// diamond and BC8 are fourfold coordinated, but their bond geometry
// differs sharply (values from the ideal lattices, ember lattice module):
//
//            bonds                      angles
//   diamond  4 equal                    6 x 109.47 deg
//   BC8      1 short + 3 long (~12%)    3 x ~101.4 + 3 x ~116.2 deg
//
// The per-atom classifier keys on coordination, the bond-length split and
// the bimodal angle signature, with thresholds wide enough to survive
// thermal disorder (property-tested in tests/analysis).

#include <string>
#include <vector>

#include "md/neighbor.hpp"
#include "md/system.hpp"

namespace ember::analysis {

enum class Phase {
  Diamond,
  Bc8,
  Disordered,   // amorphous / liquid / defective
  LowCoordinated,
  HighCoordinated,
};

const char* to_string(Phase phase);

struct ClassifyOptions {
  double bond_cutoff = 1.85;        // first-shell cutoff [A]
  double diamond_angle_lo = 100.0;  // all angles within -> diamond
  double diamond_angle_hi = 119.5;
  double bc8_low_angle = 104.5;     // 3 smallest average below this...
  double bc8_high_angle = 113.5;    // ...and 3 largest average above this
  double bc8_bond_split = 1.05;     // second-shortest / shortest floor
  double bc8_long_spread = 1.10;    // longest / second-shortest ceiling
};

// Per-atom phases for all local atoms.
std::vector<Phase> classify_atoms(const md::System& sys,
                                  const md::NeighborList& nl,
                                  const ClassifyOptions& options = {});

struct PhaseFractions {
  double diamond = 0.0;
  double bc8 = 0.0;
  double disordered = 0.0;
  double other = 0.0;
  [[nodiscard]] double crystalline() const { return diamond + bc8; }
};

PhaseFractions phase_fractions(const std::vector<Phase>& phases);

// Convenience: build a list and classify in one call.
PhaseFractions analyze(const md::System& sys,
                       const ClassifyOptions& options = {});

// One frame of a streamed trajectory analysis.
struct TrajectoryFrameSummary {
  long step = 0;
  int replica = 0;
  int natoms = 0;
  PhaseFractions fractions;
};

// Classify every frame of an EMBT1 trajectory (io::TrajectoryReader),
// streaming: memory stays one frame regardless of file size. This is the
// paper's phase-vs-time readout (diamond -> BC8 emergence) consumed
// straight off the dump the run produced.
std::vector<TrajectoryFrameSummary> analyze_trajectory(
    const std::string& path, const ClassifyOptions& options = {});

}  // namespace ember::analysis
