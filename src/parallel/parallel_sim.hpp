#pragma once

// Per-rank parallel MD driver: LAMMPS-style spatial decomposition over the
// in-process message-passing layer.
//
// Per timestep:
//   initial_integrate(local)
//   if any rank needs reneighboring:
//       wrap + migrate atoms to their owners, rebuild the ghost halo
//       (6-direction sweep with corner propagation), rebuild the list
//   else:
//       forward-communicate updated owner positions into the ghosts
//   compute forces (potential also writes onto ghosts)
//   reverse-communicate ghost forces back to their owners
//   final_integrate(local)
//
// Timing is split into the paper's Fig. 4 categories: "SNAP" (force
// kernel), "MPI Comm" (all exchange + reductions), and "Other".

#include <functional>
#include <memory>

#include "comm/communicator.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "md/integrate.hpp"
#include "md/neighbor.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"
#include "parallel/domain.hpp"

namespace ember::parallel {

struct GlobalState {
  long natoms = 0;
  double potential_energy = 0.0;  // [eV]
  double kinetic_energy = 0.0;    // [eV]
  double temperature = 0.0;       // [K]
  double virial = 0.0;
  [[nodiscard]] double total_energy() const {
    return potential_energy + kinetic_energy;
  }
};

class ParallelSimulation {
 public:
  // Every rank passes the same global initial System; atoms are scattered
  // by ownership. The potential object must be rank-private.
  ParallelSimulation(comm::Communicator& comm, const md::System& global,
                     std::shared_ptr<md::PairPotential> pot, double dt_ps,
                     double skin = 0.5, std::uint64_t seed = 12345,
                     ExecutionPolicy policy = {});

  // Per-rank thread pool for the force/neighbor/integration sweeps (the
  // paper's rank = GPU, team = thread block hierarchy). Default: serial.
  void set_execution_policy(ExecutionPolicy policy) {
    ctx_ = md::ComputeContext(policy);
  }
  [[nodiscard]] const md::ComputeContext& context() const { return ctx_; }

  [[nodiscard]] md::System& local() { return sys_; }
  [[nodiscard]] md::Integrator& integrator() { return integrator_; }
  [[nodiscard]] const TimerSet& timers() const { return timers_; }
  [[nodiscard]] const Domain& domain() const { return domain_; }
  [[nodiscard]] long step() const { return step_; }

  void setup();

  using StepCallback = std::function<void(ParallelSimulation&)>;
  void run(long nsteps, const StepCallback& callback = {});

  // Collective diagnostics (all ranks must call together).
  GlobalState global_state();

  // Reassemble the full system on every rank (collective; test helper).
  md::System gather_global();

 private:
  void scatter(const md::System& global);
  void migrate();
  void exchange_ghosts();
  void forward_positions();
  void reverse_forces();
  void compute_forces();

  comm::Communicator& comm_;
  md::Box global_box_;
  Domain domain_;
  md::System sys_;
  std::shared_ptr<md::PairPotential> pot_;
  md::ComputeContext ctx_;
  md::Integrator integrator_;
  md::NeighborList nl_;
  Rng rng_;
  md::EnergyVirial ev_;
  TimerSet timers_;
  long step_ = 0;
  bool ready_ = false;

  // Halo bookkeeping: for each of the 6 sweep legs (dim-major, up then
  // down), the indices of the atoms sent (local or ghost), the partner
  // ranks, the position shift applied, and the ghost range received.
  struct Leg {
    int send_to = -1;
    int recv_from = -1;
    std::vector<int> send_idx;
    Vec3 send_shift{};
    int ghost_begin = 0;
    int ghost_count = 0;
  };
  std::array<Leg, 6> legs_;
};

}  // namespace ember::parallel
