#pragma once

// Per-rank parallel MD driver: LAMMPS-style spatial decomposition over the
// in-process message-passing layer.
//
// The timestep is the shared md::StepLoop pipeline; this driver fills in
// the communication stages:
//   check_rebuild     -> allreduce of the displacement criterion   [Comm]
//   exchange          -> wrap + migrate atoms to their owners,
//                        rebuild the ghost halo (6-direction sweep
//                        with corner propagation)                  [Comm]
//   build_neighbors   -> local list over owners + ghosts           [Neigh]
//   forward_positions -> owner positions into ghost copies         [Comm]
//   reverse_forces    -> ghost forces back onto their owners       [Comm]
//   write_checkpoint  -> gather-on-root, rank 0 writes             (collective)
//
// Timing uses the unified Pair / Neigh / Comm / Other taxonomy; the
// paper's Fig. 4 labels ("SNAP", "MPI Comm") are applied in the bench
// layer via md::fig4_label.

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "md/step_loop.hpp"
#include "parallel/domain.hpp"

namespace ember::parallel {

struct GlobalState {
  long natoms = 0;
  double potential_energy = 0.0;  // [eV]
  double kinetic_energy = 0.0;    // [eV]
  double temperature = 0.0;       // [K]
  double virial = 0.0;
  [[nodiscard]] double total_energy() const {
    return potential_energy + kinetic_energy;
  }
};

class ParallelSimulation : private md::StepStages {
 public:
  // Every rank passes the same global initial System; atoms are scattered
  // by ownership. The potential object must be rank-private.
  ParallelSimulation(comm::Transport& comm, const md::System& global,
                     std::shared_ptr<md::PairPotential> pot, double dt_ps,
                     double skin = 0.5, std::uint64_t seed = 12345,
                     ExecutionPolicy policy = {});

  ParallelSimulation(const ParallelSimulation&) = delete;
  ParallelSimulation& operator=(const ParallelSimulation&) = delete;

  // Per-rank thread pool for the force/neighbor/integration sweeps (the
  // paper's rank = GPU, team = thread block hierarchy). Default: serial.
  void set_execution_policy(ExecutionPolicy policy) {
    loop_.set_execution_policy(policy);
  }
  [[nodiscard]] const md::ComputeContext& context() const {
    return loop_.context();
  }

  [[nodiscard]] md::System& local() { return loop_.system(); }
  [[nodiscard]] md::Integrator& integrator() { return loop_.integrator(); }
  [[nodiscard]] const TimerSet& timers() const { return loop_.timers(); }
  void reset_timers() { loop_.reset_timers(); }
  [[nodiscard]] const Domain& domain() const { return domain_; }
  [[nodiscard]] long step() const { return loop_.step(); }

  void setup() { loop_.setup(); }

  using StepCallback = std::function<void(ParallelSimulation&)>;
  void run(long nsteps, const StepCallback& callback = {});

  // Collective diagnostics (all ranks must call together).
  GlobalState global_state();

  // Reassemble the full system on every rank (collective; test helper).
  md::System gather_global();

  // Collective checkpoint: gather the global system on rank 0, which
  // writes a standard single-System file readable by read_checkpoint;
  // all ranks synchronize before returning.
  void save_checkpoint(const std::string& path) {
    loop_.save_checkpoint(path);
  }

  // Scheduled output (gather-on-root dumps + periodic checkpoints). The
  // writer is rank-private: with process-backed transports each rank
  // must construct its own writer after the fork.
  void set_io_plan(md::IoPlan plan) { loop_.set_io_plan(std::move(plan)); }
  void set_writer(std::shared_ptr<io::Writer> writer) {
    loop_.set_writer(std::move(writer));
  }
  [[nodiscard]] io::Writer& writer() { return loop_.writer(); }

 private:
  [[nodiscard]] bool communicates() const override { return true; }
  [[nodiscard]] bool check_rebuild(md::StepLoop& loop) override;
  void exchange(md::StepLoop& loop, bool initial) override;
  void build_neighbors(md::StepLoop& loop, bool initial) override;
  void forward_positions(md::StepLoop& loop) override;
  void reverse_forces(md::StepLoop& loop) override;
  void dump(md::StepLoop& loop, const md::IoPlan& plan,
            bool truncate) override;
  void write_checkpoint(md::StepLoop& loop, const std::string& path) override;

  // Checked-build invariants (EMBER_CHECKED=ON): every exchange must
  // conserve the global atom count and the per-leg ghost bookkeeping must
  // match the halo actually held; the drift tripwire watches the global
  // (allreduced) total energy so every rank trips identically.
  void verify_exchange(md::StepLoop& loop, bool initial) override;
  [[nodiscard]] double total_energy(md::StepLoop& loop) override;

  void scatter(const md::System& global);
  void migrate();
  void exchange_ghosts();
  [[nodiscard]] md::System gather(bool on_all_ranks);

  comm::Transport& comm_;
  md::Box global_box_;
  Domain domain_;
  md::StepLoop loop_;

  // Halo bookkeeping: for each of the 6 sweep legs (dim-major, up then
  // down), the indices of the atoms sent (local or ghost), the partner
  // ranks, the position shift applied, and the ghost range received.
  struct Leg {
    int send_to = -1;
    int recv_from = -1;
    std::vector<int> send_idx;
    Vec3 send_shift{};
    int ghost_begin = 0;
    int ghost_count = 0;
  };
  std::array<Leg, 6> legs_;

  // Global atom count captured by the first checked exchange (collective,
  // so every rank settles on the same baseline); -1 = not yet captured.
  long checked_natoms_ = -1;
};

}  // namespace ember::parallel
