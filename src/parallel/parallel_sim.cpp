#include "parallel_sim.hpp"

#include <algorithm>
#include <numeric>

#include "common/units.hpp"
#include "io/frame.hpp"
#include "obs/trace.hpp"

namespace ember::parallel {

namespace {
constexpr int kTagGhost = 10;    // + leg index
constexpr int kTagForward = 20;  // + leg index
constexpr int kTagReverse = 30;  // + leg index
constexpr int kTagMigrate = 50;
constexpr int kTagGather = 60;

struct PackedAtom {
  double x, y, z;
  double vx, vy, vz;
  long id;
};

struct PackedGhost {
  double x, y, z;
  long id;
};
}  // namespace

ParallelSimulation::ParallelSimulation(comm::Transport& comm,
                                       const md::System& global,
                                       std::shared_ptr<md::PairPotential> pot,
                                       double dt_ps, double skin,
                                       std::uint64_t seed,
                                       ExecutionPolicy policy)
    : comm_(comm),
      global_box_(global.box()),
      domain_(global.box(),
              RankGrid::choose(comm.size(), global.box().lengths()),
              comm.rank()),
      loop_(md::System(global.box(), global.mass()), std::move(pot), dt_ps,
            skin, Rng(seed).split(static_cast<std::uint64_t>(comm.rank())),
            policy, *this) {
  const double rghost = loop_.potential().cutoff() + skin;
  const Vec3 sub = domain_.lengths();
  EMBER_REQUIRE(sub.x >= rghost && sub.y >= rghost && sub.z >= rghost,
                "sub-domain smaller than the ghost cutoff; use fewer ranks");
  scatter(global);
}

void ParallelSimulation::scatter(const md::System& global) {
  md::System& sys = loop_.system();
  for (int i = 0; i < global.nlocal(); ++i) {
    const Vec3 w = global_box_.wrap(global.x[i]);
    if (domain_.owns(w)) {
      sys.add_atom(w, global.v[i]);
      sys.id[sys.nlocal() - 1] = global.id[i];
    }
  }
}

void ParallelSimulation::migrate() {
  md::System& sys = loop_.system();
  sys.clear_ghosts();
  const int nranks = comm_.size();
  std::vector<std::vector<PackedAtom>> outgoing(nranks);
  std::vector<int> keep;
  keep.reserve(sys.nlocal());

  for (int i = 0; i < sys.nlocal(); ++i) {
    const Vec3 w = global_box_.wrap(sys.x[i]);
    sys.x[i] = w;
    const int owner = domain_.owner_of(w);
    if (owner == comm_.rank()) {
      keep.push_back(i);
    } else {
      outgoing[owner].push_back(
          {w.x, w.y, w.z, sys.v[i].x, sys.v[i].y, sys.v[i].z, sys.id[i]});
    }
  }

  // Compact the kept atoms.
  md::System next(global_box_, sys.mass());
  for (const int i : keep) {
    next.add_atom(sys.x[i], sys.v[i]);
    next.id[next.nlocal() - 1] = sys.id[i];
  }

  for (int r = 0; r < nranks; ++r) {
    if (r == comm_.rank()) continue;
    comm_.send(r, kTagMigrate, outgoing[r]);
  }
  for (int r = 0; r < nranks; ++r) {
    if (r == comm_.rank()) continue;
    for (const auto& a : comm_.recv<PackedAtom>(r, kTagMigrate)) {
      next.add_atom({a.x, a.y, a.z}, {a.vx, a.vy, a.vz});
      next.id[next.nlocal() - 1] = a.id;
    }
  }
  sys = std::move(next);
}

void ParallelSimulation::exchange_ghosts() {
  md::System& sys = loop_.system();
  sys.clear_ghosts();
  const double rghost =
      loop_.potential().cutoff() + loop_.neighbor_list().skin();
  const auto coords = domain_.grid().coords_of(comm_.rank());
  const int n[3] = {domain_.grid().nx, domain_.grid().ny, domain_.grid().nz};

  for (int d = 0; d < 3; ++d) {
    // Both legs of dimension d scan only atoms that existed before this
    // dimension: scanning ghosts received by the opposite leg of the SAME
    // dimension would bounce them straight back as duplicate self-images.
    // Ghosts from previous dimensions ARE scanned (corner propagation).
    const int scan_limit = sys.ntotal();
    for (int dir = 0; dir < 2; ++dir) {  // 0 = up (+), 1 = down (-)
      Leg& leg = legs_[2 * d + dir];
      leg.send_idx.clear();
      int up[3] = {coords[0], coords[1], coords[2]};
      up[d] += (dir == 0) ? 1 : -1;
      leg.send_to = domain_.grid().rank_of(up[0], up[1], up[2]);
      int dn[3] = {coords[0], coords[1], coords[2]};
      dn[d] -= (dir == 0) ? 1 : -1;
      leg.recv_from = domain_.grid().rank_of(dn[0], dn[1], dn[2]);

      const double face = (dir == 0) ? domain_.hi()[d] : domain_.lo()[d];
      const bool at_edge =
          (dir == 0) ? coords[d] == n[d] - 1 : coords[d] == 0;
      leg.send_shift = Vec3{};
      if (at_edge) {
        leg.send_shift[d] =
            (dir == 0) ? -global_box_.length(d) : global_box_.length(d);
      }

      std::vector<PackedGhost> packed;
      for (int i = 0; i < scan_limit; ++i) {
        const double c = sys.x[i][d];
        const bool in_slab =
            (dir == 0) ? (c >= face - rghost) : (c < face + rghost);
        if (!in_slab) continue;
        leg.send_idx.push_back(i);
        const Vec3 p = sys.x[i] + leg.send_shift;
        packed.push_back({p.x, p.y, p.z, sys.id[i]});
      }
      comm_.send(leg.send_to, kTagGhost + 2 * d + dir, packed);

      const auto incoming =
          comm_.recv<PackedGhost>(leg.recv_from, kTagGhost + 2 * d + dir);
      leg.ghost_begin = sys.ntotal();
      leg.ghost_count = static_cast<int>(incoming.size());
      for (const auto& g : incoming) {
        sys.add_ghost({g.x, g.y, g.z}, g.id);
      }
    }
  }
}

bool ParallelSimulation::check_rebuild(md::StepLoop& loop) {
  EMBER_OBS_SPAN("comm.rebuild_check", "comm");
  ScopedTimer t(loop.timers(), TimerCategory::Comm);
  return comm_.allreduce_or(
      loop.neighbor_list().needs_rebuild(loop.system()));
}

void ParallelSimulation::exchange(md::StepLoop&, bool /*initial*/) {
  {
    EMBER_OBS_SPAN("comm.migrate", "comm");
    migrate();
  }
  EMBER_OBS_SPAN("comm.ghosts", "comm");
  exchange_ghosts();
}

void ParallelSimulation::build_neighbors(md::StepLoop& loop,
                                         bool /*initial*/) {
  // Migration already wrapped the owners; ghosts carry explicit shifts.
  loop.neighbor_list().build(loop.system(), /*use_ghosts=*/true,
                             &loop.context());
}

void ParallelSimulation::forward_positions(md::StepLoop& loop) {
  EMBER_OBS_SPAN("comm.forward", "comm");
  md::System& sys = loop.system();
  std::vector<Vec3> packed;
  for (int leg_idx = 0; leg_idx < 6; ++leg_idx) {
    const Leg& leg = legs_[leg_idx];
    packed.clear();
    packed.reserve(leg.send_idx.size());
    for (const int i : leg.send_idx) {
      packed.push_back(sys.x[i] + leg.send_shift);
    }
    comm_.send(leg.send_to, kTagForward + leg_idx, packed);
    const auto incoming = comm_.recv<Vec3>(leg.recv_from, kTagForward + leg_idx);
    EMBER_REQUIRE(static_cast<int>(incoming.size()) == leg.ghost_count,
                  "forward communication size drift");
    for (int g = 0; g < leg.ghost_count; ++g) {
      sys.x[leg.ghost_begin + g] = incoming[g];
    }
  }
}

void ParallelSimulation::reverse_forces(md::StepLoop& loop) {
  EMBER_OBS_SPAN("comm.reverse", "comm");
  md::System& sys = loop.system();
  std::vector<Vec3> packed;
  for (int leg_idx = 5; leg_idx >= 0; --leg_idx) {
    const Leg& leg = legs_[leg_idx];
    packed.assign(sys.f.begin() + leg.ghost_begin,
                  sys.f.begin() + leg.ghost_begin + leg.ghost_count);
    comm_.send(leg.recv_from, kTagReverse + leg_idx, packed);
    const auto incoming = comm_.recv<Vec3>(leg.send_to, kTagReverse + leg_idx);
    EMBER_REQUIRE(incoming.size() == leg.send_idx.size(),
                  "reverse communication size drift");
    for (std::size_t m = 0; m < incoming.size(); ++m) {
      sys.f[leg.send_idx[m]] += incoming[m];
    }
  }
}

void ParallelSimulation::verify_exchange(md::StepLoop& loop, bool /*initial*/) {
  const md::System& sys = loop.system();
  std::array<int, 6> leg_counts{};
  for (std::size_t l = 0; l < legs_.size(); ++l) {
    leg_counts[l] = legs_[l].ghost_count;
  }
  check::check_ghost_legs(leg_counts, sys.nghost(), "exchange", loop.step());
  // Collective: every rank contributes its owner count; the baseline is
  // captured by the first checked exchange after the scatter.
  const long global = comm_.allreduce_sum(static_cast<long>(sys.nlocal()));
  if (checked_natoms_ < 0) {
    checked_natoms_ = global;
    return;
  }
  check::check_atom_conservation(global, checked_natoms_, "exchange",
                                 loop.step());
}

double ParallelSimulation::total_energy(md::StepLoop& loop) {
  return comm_.allreduce_sum(loop.energy_virial().energy) +
         comm_.allreduce_sum(loop.system().kinetic_energy());
}

void ParallelSimulation::dump(md::StepLoop& loop, const md::IoPlan& plan,
                              bool truncate) {
  // Collective: every rank pays the gather (that part stays on the step
  // critical path), then only root hands the frame to its writer — with
  // an async writer the encode+write happens behind the loop.
  const md::System global = gather(/*on_all_ranks=*/false);
  if (comm_.rank() != 0) return;
  io::Request req;
  req.kind = io::Request::Kind::Trajectory;
  req.path = plan.dump_path;
  req.format = plan.dump_format;
  req.truncate = truncate;
  req.frames.push_back(io::frame_of(global, loop.step(), /*replica=*/0,
                                    "step=" + std::to_string(loop.step())));
  req.frames.back().v.clear();  // dumps are position-only (see StepStages)
  loop.writer().submit(std::move(req));
}

void ParallelSimulation::write_checkpoint(md::StepLoop& loop,
                                          const std::string& path) {
  const md::System global = gather(/*on_all_ranks=*/false);
  if (comm_.rank() == 0) {
    io::Request req;
    req.kind = io::Request::Kind::Checkpoint;
    req.path = path;
    req.frames.push_back(io::frame_of(global));
    loop.writer().submit(std::move(req));
  }
  // No rank resumes stepping before the request is in the pipeline; the
  // tmp+rename executor keeps the on-disk file complete while an async
  // queue is in flight, and save_checkpoint() drains for explicit
  // restart points.
  comm_.barrier();
}

void ParallelSimulation::run(long nsteps, const StepCallback& callback) {
  if (callback) {
    loop_.run(nsteps, [&] { callback(*this); });
  } else {
    loop_.run(nsteps);
  }
}

GlobalState ParallelSimulation::global_state() {
  const md::System& sys = loop_.system();
  GlobalState g;
  g.natoms = comm_.allreduce_sum(static_cast<long>(sys.nlocal()));
  g.potential_energy = comm_.allreduce_sum(loop_.energy_virial().energy);
  g.kinetic_energy = comm_.allreduce_sum(sys.kinetic_energy());
  g.virial = comm_.allreduce_sum(loop_.energy_virial().virial);
  const long dof = std::max<long>(1, 3 * g.natoms - 3);
  g.temperature = 2.0 * g.kinetic_energy / (dof * units::kB);
  return g;
}

md::System ParallelSimulation::gather(bool on_all_ranks) {
  const md::System& sys = loop_.system();
  std::vector<PackedAtom> mine;
  mine.reserve(sys.nlocal());
  for (int i = 0; i < sys.nlocal(); ++i) {
    mine.push_back({sys.x[i].x, sys.x[i].y, sys.x[i].z, sys.v[i].x,
                    sys.v[i].y, sys.v[i].z, sys.id[i]});
  }

  md::System out(global_box_, sys.mass());
  if (!on_all_ranks && comm_.rank() != 0) {
    comm_.send(0, kTagGather, mine);
    return out;  // only root assembles
  }

  std::vector<PackedAtom> all = mine;
  if (on_all_ranks) {
    for (int r = 0; r < comm_.size(); ++r) {
      if (r == comm_.rank()) continue;
      comm_.send(r, kTagGather, mine);
    }
  }
  for (int r = 0; r < comm_.size(); ++r) {
    if (r == comm_.rank()) continue;
    const auto theirs = comm_.recv<PackedAtom>(r, kTagGather);
    all.insert(all.end(), theirs.begin(), theirs.end());
  }
  std::sort(all.begin(), all.end(),
            [](const PackedAtom& a, const PackedAtom& b) { return a.id < b.id; });

  for (const auto& a : all) {
    out.add_atom({a.x, a.y, a.z}, {a.vx, a.vy, a.vz});
    out.id[out.nlocal() - 1] = a.id;
  }
  return out;
}

md::System ParallelSimulation::gather_global() {
  return gather(/*on_all_ranks=*/true);
}

}  // namespace ember::parallel
