#include "parallel_sim.hpp"

#include <algorithm>
#include <numeric>

#include "common/units.hpp"

namespace ember::parallel {

namespace {
constexpr int kTagGhost = 10;    // + leg index
constexpr int kTagForward = 20;  // + leg index
constexpr int kTagReverse = 30;  // + leg index
constexpr int kTagMigrate = 50;
constexpr int kTagGather = 60;

struct PackedAtom {
  double x, y, z;
  double vx, vy, vz;
  long id;
};

struct PackedGhost {
  double x, y, z;
  long id;
};
}  // namespace

ParallelSimulation::ParallelSimulation(comm::Communicator& comm,
                                       const md::System& global,
                                       std::shared_ptr<md::PairPotential> pot,
                                       double dt_ps, double skin,
                                       std::uint64_t seed,
                                       ExecutionPolicy policy)
    : comm_(comm),
      global_box_(global.box()),
      domain_(global.box(),
              RankGrid::choose(comm.size(), global.box().lengths()),
              comm.rank()),
      sys_(global.box(), global.mass()),
      pot_(std::move(pot)),
      ctx_(policy),
      integrator_(dt_ps),
      nl_(pot_->cutoff(), skin),
      rng_(Rng(seed).split(static_cast<std::uint64_t>(comm.rank()))) {
  const double rghost = pot_->cutoff() + skin;
  const Vec3 sub = domain_.lengths();
  EMBER_REQUIRE(sub.x >= rghost && sub.y >= rghost && sub.z >= rghost,
                "sub-domain smaller than the ghost cutoff; use fewer ranks");
  scatter(global);
}

void ParallelSimulation::scatter(const md::System& global) {
  for (int i = 0; i < global.nlocal(); ++i) {
    const Vec3 w = global_box_.wrap(global.x[i]);
    if (domain_.owns(w)) {
      sys_.add_atom(w, global.v[i]);
      sys_.id[sys_.nlocal() - 1] = global.id[i];
    }
  }
}

void ParallelSimulation::migrate() {
  sys_.clear_ghosts();
  const int nranks = comm_.size();
  std::vector<std::vector<PackedAtom>> outgoing(nranks);
  std::vector<int> keep;
  keep.reserve(sys_.nlocal());

  for (int i = 0; i < sys_.nlocal(); ++i) {
    const Vec3 w = global_box_.wrap(sys_.x[i]);
    sys_.x[i] = w;
    const int owner = domain_.owner_of(w);
    if (owner == comm_.rank()) {
      keep.push_back(i);
    } else {
      outgoing[owner].push_back(
          {w.x, w.y, w.z, sys_.v[i].x, sys_.v[i].y, sys_.v[i].z, sys_.id[i]});
    }
  }

  // Compact the kept atoms.
  md::System next(global_box_, sys_.mass());
  for (const int i : keep) {
    next.add_atom(sys_.x[i], sys_.v[i]);
    next.id[next.nlocal() - 1] = sys_.id[i];
  }

  for (int r = 0; r < nranks; ++r) {
    if (r == comm_.rank()) continue;
    comm_.send(r, kTagMigrate, outgoing[r]);
  }
  for (int r = 0; r < nranks; ++r) {
    if (r == comm_.rank()) continue;
    for (const auto& a : comm_.recv<PackedAtom>(r, kTagMigrate)) {
      next.add_atom({a.x, a.y, a.z}, {a.vx, a.vy, a.vz});
      next.id[next.nlocal() - 1] = a.id;
    }
  }
  sys_ = std::move(next);
}

void ParallelSimulation::exchange_ghosts() {
  sys_.clear_ghosts();
  const double rghost = pot_->cutoff() + nl_.skin();
  const auto coords = domain_.grid().coords_of(comm_.rank());
  const int n[3] = {domain_.grid().nx, domain_.grid().ny, domain_.grid().nz};

  for (int d = 0; d < 3; ++d) {
    // Both legs of dimension d scan only atoms that existed before this
    // dimension: scanning ghosts received by the opposite leg of the SAME
    // dimension would bounce them straight back as duplicate self-images.
    // Ghosts from previous dimensions ARE scanned (corner propagation).
    const int scan_limit = sys_.ntotal();
    for (int dir = 0; dir < 2; ++dir) {  // 0 = up (+), 1 = down (-)
      Leg& leg = legs_[2 * d + dir];
      leg.send_idx.clear();
      int up[3] = {coords[0], coords[1], coords[2]};
      up[d] += (dir == 0) ? 1 : -1;
      leg.send_to = domain_.grid().rank_of(up[0], up[1], up[2]);
      int dn[3] = {coords[0], coords[1], coords[2]};
      dn[d] -= (dir == 0) ? 1 : -1;
      leg.recv_from = domain_.grid().rank_of(dn[0], dn[1], dn[2]);

      const double face = (dir == 0) ? domain_.hi()[d] : domain_.lo()[d];
      const bool at_edge =
          (dir == 0) ? coords[d] == n[d] - 1 : coords[d] == 0;
      leg.send_shift = Vec3{};
      if (at_edge) {
        leg.send_shift[d] =
            (dir == 0) ? -global_box_.length(d) : global_box_.length(d);
      }

      std::vector<PackedGhost> packed;
      for (int i = 0; i < scan_limit; ++i) {
        const double c = sys_.x[i][d];
        const bool in_slab =
            (dir == 0) ? (c >= face - rghost) : (c < face + rghost);
        if (!in_slab) continue;
        leg.send_idx.push_back(i);
        const Vec3 p = sys_.x[i] + leg.send_shift;
        packed.push_back({p.x, p.y, p.z, sys_.id[i]});
      }
      comm_.send(leg.send_to, kTagGhost + 2 * d + dir, packed);

      const auto incoming =
          comm_.recv<PackedGhost>(leg.recv_from, kTagGhost + 2 * d + dir);
      leg.ghost_begin = sys_.ntotal();
      leg.ghost_count = static_cast<int>(incoming.size());
      for (const auto& g : incoming) {
        sys_.add_ghost({g.x, g.y, g.z}, g.id);
      }
    }
  }
}

void ParallelSimulation::forward_positions() {
  std::vector<Vec3> packed;
  for (int leg_idx = 0; leg_idx < 6; ++leg_idx) {
    const Leg& leg = legs_[leg_idx];
    packed.clear();
    packed.reserve(leg.send_idx.size());
    for (const int i : leg.send_idx) {
      packed.push_back(sys_.x[i] + leg.send_shift);
    }
    comm_.send(leg.send_to, kTagForward + leg_idx, packed);
    const auto incoming = comm_.recv<Vec3>(leg.recv_from, kTagForward + leg_idx);
    EMBER_REQUIRE(static_cast<int>(incoming.size()) == leg.ghost_count,
                  "forward communication size drift");
    for (int g = 0; g < leg.ghost_count; ++g) {
      sys_.x[leg.ghost_begin + g] = incoming[g];
    }
  }
}

void ParallelSimulation::reverse_forces() {
  std::vector<Vec3> packed;
  for (int leg_idx = 5; leg_idx >= 0; --leg_idx) {
    const Leg& leg = legs_[leg_idx];
    packed.assign(sys_.f.begin() + leg.ghost_begin,
                  sys_.f.begin() + leg.ghost_begin + leg.ghost_count);
    comm_.send(leg.recv_from, kTagReverse + leg_idx, packed);
    const auto incoming = comm_.recv<Vec3>(leg.send_to, kTagReverse + leg_idx);
    EMBER_REQUIRE(incoming.size() == leg.send_idx.size(),
                  "reverse communication size drift");
    for (std::size_t m = 0; m < incoming.size(); ++m) {
      sys_.f[leg.send_idx[m]] += incoming[m];
    }
  }
}

void ParallelSimulation::compute_forces() {
  ScopedTimer t(timers_, "SNAP");
  sys_.zero_forces();
  ev_ = pot_->compute(ctx_, sys_, nl_);
  if (!ctx_.serial()) {
    timers_.add_thread_times("SNAP", ctx_.pool().last_thread_seconds());
  }
}

void ParallelSimulation::setup() {
  {
    ScopedTimer t(timers_, "MPI Comm");
    migrate();
    exchange_ghosts();
  }
  {
    ScopedTimer t(timers_, "Neigh");
    nl_.build(sys_, /*use_ghosts=*/true, &ctx_);
  }
  compute_forces();
  {
    ScopedTimer t(timers_, "MPI Comm");
    reverse_forces();
  }
  ready_ = true;
}

void ParallelSimulation::run(long nsteps, const StepCallback& callback) {
  if (!ready_) setup();
  for (long s = 0; s < nsteps; ++s) {
    {
      ScopedTimer t(timers_, "Other");
      integrator_.initial_integrate(sys_, &ctx_);
    }
    bool rebuild;
    {
      ScopedTimer t(timers_, "MPI Comm");
      rebuild = comm_.allreduce_or(nl_.needs_rebuild(sys_));
    }
    if (rebuild) {
      {
        ScopedTimer t(timers_, "MPI Comm");
        migrate();
        exchange_ghosts();
      }
      ScopedTimer t(timers_, "Neigh");
      nl_.build(sys_, /*use_ghosts=*/true, &ctx_);
    } else {
      ScopedTimer t(timers_, "MPI Comm");
      forward_positions();
    }
    compute_forces();
    {
      ScopedTimer t(timers_, "MPI Comm");
      reverse_forces();
    }
    {
      ScopedTimer t(timers_, "Other");
      integrator_.final_integrate(sys_, ev_, rng_, &ctx_);
    }
    ++step_;
    if (callback) callback(*this);
  }
}

GlobalState ParallelSimulation::global_state() {
  GlobalState g;
  g.natoms = comm_.allreduce_sum(static_cast<long>(sys_.nlocal()));
  g.potential_energy = comm_.allreduce_sum(ev_.energy);
  g.kinetic_energy = comm_.allreduce_sum(sys_.kinetic_energy());
  g.virial = comm_.allreduce_sum(ev_.virial);
  const long dof = std::max<long>(1, 3 * g.natoms - 3);
  g.temperature = 2.0 * g.kinetic_energy / (dof * units::kB);
  return g;
}

md::System ParallelSimulation::gather_global() {
  std::vector<PackedAtom> mine;
  mine.reserve(sys_.nlocal());
  for (int i = 0; i < sys_.nlocal(); ++i) {
    mine.push_back({sys_.x[i].x, sys_.x[i].y, sys_.x[i].z, sys_.v[i].x,
                    sys_.v[i].y, sys_.v[i].z, sys_.id[i]});
  }
  std::vector<PackedAtom> all = mine;
  for (int r = 0; r < comm_.size(); ++r) {
    if (r == comm_.rank()) continue;
    comm_.send(r, kTagGather, mine);
  }
  for (int r = 0; r < comm_.size(); ++r) {
    if (r == comm_.rank()) continue;
    const auto theirs = comm_.recv<PackedAtom>(r, kTagGather);
    all.insert(all.end(), theirs.begin(), theirs.end());
  }
  std::sort(all.begin(), all.end(),
            [](const PackedAtom& a, const PackedAtom& b) { return a.id < b.id; });

  md::System out(global_box_, sys_.mass());
  for (const auto& a : all) {
    out.add_atom({a.x, a.y, a.z}, {a.vx, a.vy, a.vz});
    out.id[out.nlocal() - 1] = a.id;
  }
  return out;
}

}  // namespace ember::parallel
