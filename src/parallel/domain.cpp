#include "domain.hpp"

#include <algorithm>
#include <cmath>

namespace ember::parallel {

RankGrid RankGrid::choose(int nranks, const Vec3& box_lengths) {
  EMBER_REQUIRE(nranks >= 1, "need at least one rank");
  RankGrid best;
  double best_surface = std::numeric_limits<double>::infinity();
  for (int nx = 1; nx <= nranks; ++nx) {
    if (nranks % nx != 0) continue;
    const int rem = nranks / nx;
    for (int ny = 1; ny <= rem; ++ny) {
      if (rem % ny != 0) continue;
      const int nz = rem / ny;
      // Per-domain surface area (halo volume is proportional to it).
      const double lx = box_lengths.x / nx;
      const double ly = box_lengths.y / ny;
      const double lz = box_lengths.z / nz;
      const double surface = 2.0 * (lx * ly + ly * lz + lz * lx);
      if (surface < best_surface) {
        best_surface = surface;
        best = {nx, ny, nz};
      }
    }
  }
  return best;
}

Domain::Domain(const md::Box& global_box, const RankGrid& grid, int rank)
    : global_(global_box), grid_(grid), rank_(rank) {
  EMBER_REQUIRE(rank >= 0 && rank < grid.size(), "rank outside the grid");
  const auto c = grid.coords_of(rank);
  const int n[3] = {grid.nx, grid.ny, grid.nz};
  for (int d = 0; d < 3; ++d) {
    const double w = global_.length(d) / n[d];
    lo_[d] = c[d] * w;
    hi_[d] = (c[d] + 1) * w;
  }
}

int Domain::owner_of(const Vec3& pos) const {
  const int n[3] = {grid_.nx, grid_.ny, grid_.nz};
  int c[3];
  for (int d = 0; d < 3; ++d) {
    const double w = global_.length(d) / n[d];
    c[d] = std::clamp(static_cast<int>(pos[d] / w), 0, n[d] - 1);
  }
  return grid_.rank_of(c[0], c[1], c[2]);
}

}  // namespace ember::parallel
