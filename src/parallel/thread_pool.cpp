#include "thread_pool.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace ember::parallel {

ThreadPool::ThreadPool(int nthreads) : nthreads_(std::max(1, nthreads)) {
  busy_seconds_.assign(nthreads_, 0.0);
  workers_.reserve(nthreads_ - 1);
  for (int tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(int tid) {
  // One span per worker per sweep: with tracing on, every parallel_for
  // shows up as a "pool.sweep" bar on each participating thread's track.
  EMBER_OBS_SPAN("pool.sweep", "pool");
  WallTimer timer;
  // Static round-robin chunk map: chunk c -> worker c % nthreads, chunks
  // ascending per worker. Depends only on the job geometry, so the work
  // (and thus each worker's accumulation order) is schedule-independent.
  for (int c = tid; c < nchunks_; c += nthreads_) {
    const int b = job_begin_ + c * job_grain_;
    const int e = std::min(job_end_, b + job_grain_);
    job_(tid, b, e);
  }
  busy_seconds_[tid] = timer.seconds();
}

void ThreadPool::worker_loop(int tid) {
#if !defined(EMBER_OBS_DISABLED)
  obs::TraceSession::global().set_thread_name("pool-worker-" +
                                              std::to_string(tid));
#endif
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    run_chunks(tid);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int begin, int end, int grain,
                              const std::function<void(int, int, int)>& fn) {
  if (end <= begin) return;
  const int n = end - begin;
  if (nthreads_ == 1) {
    // Serial pool: the untouched seed path, one chunk, no threads.
    WallTimer timer;
    fn(0, begin, end);
    busy_seconds_[0] = timer.seconds();
    return;
  }
  if (grain <= 0) grain = (n + nthreads_ - 1) / nthreads_;
  grain = std::max(1, grain);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    EMBER_REQUIRE(remaining_ == 0, "nested parallel_for on one pool");
    job_ = fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    nchunks_ = (n + grain - 1) / grain;
    remaining_ = nthreads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
}

}  // namespace ember::parallel
