#include "thread_pool.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace ember::parallel {

ThreadPool::ThreadPool(int nthreads) : nthreads_(std::max(1, nthreads)) {
  busy_seconds_.assign(nthreads_, 0.0);
  workers_.reserve(nthreads_ - 1);
  for (int tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::Sweep ThreadPool::current_sweep() const {
  Sweep s;
  s.fn = &job_;
  s.begin = job_begin_;
  s.end = job_end_;
  s.grain = job_grain_;
  s.nchunks = nchunks_;
  return s;
}

void ThreadPool::run_chunks(int tid, const Sweep& sweep) {
  // One span per worker per sweep: with tracing on, every parallel_for
  // shows up as a "pool.sweep" bar on each participating thread's track.
  EMBER_OBS_SPAN("pool.sweep", "pool");
  WallTimer timer;
  // Static round-robin chunk map: chunk c -> worker c % nthreads, chunks
  // ascending per worker. Depends only on the job geometry, so the work
  // (and thus each worker's accumulation order) is schedule-independent.
  for (int c = tid; c < sweep.nchunks; c += nthreads_) {
    const int b = sweep.begin + c * sweep.grain;
    const int e = std::min(sweep.end, b + sweep.grain);
    (*sweep.fn)(tid, b, e);
  }
  busy_seconds_[tid] = timer.seconds();
}

void ThreadPool::worker_loop(int tid) {
#if !defined(EMBER_OBS_DISABLED)
  obs::TraceSession::global().set_thread_name("pool-worker-" +
                                              std::to_string(tid));
#endif
  std::uint64_t seen = 0;
  for (;;) {
    Sweep sweep;
    {
      LockGuard lock(mutex_);
      while (!shutdown_ && generation_ == seen) start_cv_.wait(mutex_);
      if (shutdown_) return;
      seen = generation_;
      // Copy the geometry while the lock is held: run_chunks then reads
      // no guarded state. job_ itself stays alive until remaining_ hits
      // zero, which this worker signals only after its last chunk.
      sweep = current_sweep();
    }
    run_chunks(tid, sweep);
    {
      LockGuard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int begin, int end, int grain,
                              const std::function<void(int, int, int)>& fn) {
  if (end <= begin) return;
  const int n = end - begin;
  if (nthreads_ == 1) {
    // Serial pool: the untouched seed path, one chunk, no threads.
    WallTimer timer;
    fn(0, begin, end);
    busy_seconds_[0] = timer.seconds();
    return;
  }
  if (grain <= 0) grain = (n + nthreads_ - 1) / nthreads_;
  grain = std::max(1, grain);

  Sweep sweep;
  {
    LockGuard lock(mutex_);
    EMBER_REQUIRE(remaining_ == 0, "nested parallel_for on one pool");
    job_ = fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    nchunks_ = (n + grain - 1) / grain;
    remaining_ = nthreads_ - 1;
    ++generation_;
    sweep = current_sweep();
  }
  start_cv_.notify_all();
  run_chunks(0, sweep);
  {
    LockGuard lock(mutex_);
    while (remaining_ != 0) done_cv_.wait(mutex_);
    job_ = nullptr;
  }
}

}  // namespace ember::parallel
