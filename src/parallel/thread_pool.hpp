#pragma once

// Persistent worker pool for node-level parallelism.
//
// This is the CPU analogue of the paper's Kokkos thread hierarchy: one
// pool per driver object (Simulation, TestSnap, ...) plays the role of a
// GPU thread block / OpenMP team, and parallel_for distributes atom
// ranges over it. Determinism is a design requirement (the tests pin it):
//
//   * chunks are assigned to workers by a static round-robin map that
//     depends only on (range, grain, nthreads) — never on timing;
//   * every worker accumulates into its own slot, and reduce_tree()
//     combines the slots in a fixed pairwise tree order;
//
// so repeated runs at a fixed thread count are bitwise identical, and
// the floating-point result is independent of OS scheduling.
//
// nthreads == 1 never spawns a thread: parallel_for degenerates to the
// plain serial loop, preserving the seed code paths exactly.
//
// Locking contract (machine-checked on clang, DESIGN.md §14): every
// member that both sides of the start/done handshake touch is
// EMBER_GUARDED_BY(mutex_). Workers never read job state outside the
// lock — each one copies the published Sweep geometry while it still
// holds mutex_ coming out of the start wait, then runs lock-free on the
// copy. busy_seconds_ needs no lock: slot tid is written only by worker
// tid during a sweep, and the done_cv_ handshake orders those writes
// before any caller's read of last_thread_seconds().

#include <cstdint>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace ember {

// How many threads a driver may use for its hot paths. The default is
// serial, which reproduces the pre-threading behavior bit for bit.
struct ExecutionPolicy {
  int nthreads = 1;

  [[nodiscard]] bool serial() const { return nthreads <= 1; }

  // Resolve "threads auto" / EMBER_NUM_THREADS=0 to the hardware count.
  [[nodiscard]] static ExecutionPolicy hardware() {
    const unsigned n = std::thread::hardware_concurrency();
    return ExecutionPolicy{n > 0 ? static_cast<int>(n) : 1};
  }
};

namespace parallel {

class ThreadPool {
 public:
  // Spawns nthreads - 1 persistent workers; the calling thread always
  // participates as tid 0.
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return nthreads_; }

  // Split [begin, end) into contiguous chunks of ~grain iterations and
  // run fn(tid, chunk_begin, chunk_end) with chunk c handled by worker
  // c % nthreads (chunks in ascending order within each worker). grain
  // <= 0 means one chunk per worker. Blocks until every chunk ran.
  void parallel_for(int begin, int end, int grain,
                    const std::function<void(int, int, int)>& fn);

  // One contiguous block per worker (parallel_for with grain <= 0):
  // the partition used when per-worker scratch should be touched exactly
  // once per sweep (neighbor stitching, force merges).
  void parallel_blocks(int begin, int end,
                       const std::function<void(int, int, int)>& fn) {
    parallel_for(begin, end, /*grain=*/0, fn);
  }

  // Busy seconds per worker for the last parallel_for (imbalance stats).
  // Valid only between sweeps: parallel_for's return is the
  // happens-before edge that publishes every slot.
  [[nodiscard]] std::span<const double> last_thread_seconds() const {
    return busy_seconds_;
  }

  // Deterministic pairwise tree reduction over per-worker slots:
  //   stride 1: slot[0] += slot[1], slot[2] += slot[3], ...
  //   stride 2: slot[0] += slot[2], ...
  // The combine order depends only on slots.size(), so the rounded
  // floating-point result is reproducible run to run.
  template <typename T, typename Op>
  static T reduce_tree(std::span<T> slots, Op&& combine) {
    const std::size_t n = slots.size();
    if (n == 0) return T{};
    for (std::size_t stride = 1; stride < n; stride *= 2) {
      for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
        slots[i] = combine(slots[i], slots[i + stride]);
      }
    }
    return slots[0];
  }

 private:
  // Immutable per-sweep geometry, copied out of the guarded job state
  // while the lock is held. `fn` points at job_, which the publishing
  // thread keeps alive until every worker has decremented remaining_.
  struct Sweep {
    const std::function<void(int, int, int)>* fn = nullptr;
    int begin = 0;
    int end = 0;
    int grain = 0;
    int nchunks = 0;
  };

  void worker_loop(int tid);
  void run_chunks(int tid, const Sweep& sweep);
  [[nodiscard]] Sweep current_sweep() const EMBER_REQUIRES(mutex_);

  int nthreads_ = 1;
  std::vector<std::thread> workers_;
  // Slot tid is owned by worker tid during a sweep; the done handshake
  // (remaining_ under mutex_) publishes it to the caller.
  std::vector<double> busy_seconds_;

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;

  // Current job, published under mutex_ by parallel_for and copied out
  // under mutex_ by each worker (as a Sweep) before running.
  std::function<void(int, int, int)> job_ EMBER_GUARDED_BY(mutex_);
  int job_begin_ EMBER_GUARDED_BY(mutex_) = 0;
  int job_end_ EMBER_GUARDED_BY(mutex_) = 0;
  int job_grain_ EMBER_GUARDED_BY(mutex_) = 0;
  int nchunks_ EMBER_GUARDED_BY(mutex_) = 0;
  // Bumped once per parallel_for; workers wake when it moves.
  std::uint64_t generation_ EMBER_GUARDED_BY(mutex_) = 0;
  // Workers still running the current job.
  int remaining_ EMBER_GUARDED_BY(mutex_) = 0;
  bool shutdown_ EMBER_GUARDED_BY(mutex_) = false;
};

}  // namespace parallel
}  // namespace ember
