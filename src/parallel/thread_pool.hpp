#pragma once

// Persistent worker pool for node-level parallelism.
//
// This is the CPU analogue of the paper's Kokkos thread hierarchy: one
// pool per driver object (Simulation, TestSnap, ...) plays the role of a
// GPU thread block / OpenMP team, and parallel_for distributes atom
// ranges over it. Determinism is a design requirement (the tests pin it):
//
//   * chunks are assigned to workers by a static round-robin map that
//     depends only on (range, grain, nthreads) — never on timing;
//   * every worker accumulates into its own slot, and reduce_tree()
//     combines the slots in a fixed pairwise tree order;
//
// so repeated runs at a fixed thread count are bitwise identical, and
// the floating-point result is independent of OS scheduling.
//
// nthreads == 1 never spawns a thread: parallel_for degenerates to the
// plain serial loop, preserving the seed code paths exactly.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace ember {

// How many threads a driver may use for its hot paths. The default is
// serial, which reproduces the pre-threading behavior bit for bit.
struct ExecutionPolicy {
  int nthreads = 1;

  [[nodiscard]] bool serial() const { return nthreads <= 1; }

  // Resolve "threads auto" / EMBER_NUM_THREADS=0 to the hardware count.
  [[nodiscard]] static ExecutionPolicy hardware() {
    const unsigned n = std::thread::hardware_concurrency();
    return ExecutionPolicy{n > 0 ? static_cast<int>(n) : 1};
  }
};

namespace parallel {

class ThreadPool {
 public:
  // Spawns nthreads - 1 persistent workers; the calling thread always
  // participates as tid 0.
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return nthreads_; }

  // Split [begin, end) into contiguous chunks of ~grain iterations and
  // run fn(tid, chunk_begin, chunk_end) with chunk c handled by worker
  // c % nthreads (chunks in ascending order within each worker). grain
  // <= 0 means one chunk per worker. Blocks until every chunk ran.
  void parallel_for(int begin, int end, int grain,
                    const std::function<void(int, int, int)>& fn);

  // One contiguous block per worker (parallel_for with grain <= 0):
  // the partition used when per-worker scratch should be touched exactly
  // once per sweep (neighbor stitching, force merges).
  void parallel_blocks(int begin, int end,
                       const std::function<void(int, int, int)>& fn) {
    parallel_for(begin, end, /*grain=*/0, fn);
  }

  // Busy seconds per worker for the last parallel_for (imbalance stats).
  [[nodiscard]] std::span<const double> last_thread_seconds() const {
    return busy_seconds_;
  }

  // Deterministic pairwise tree reduction over per-worker slots:
  //   stride 1: slot[0] += slot[1], slot[2] += slot[3], ...
  //   stride 2: slot[0] += slot[2], ...
  // The combine order depends only on slots.size(), so the rounded
  // floating-point result is reproducible run to run.
  template <typename T, typename Op>
  static T reduce_tree(std::span<T> slots, Op&& combine) {
    const std::size_t n = slots.size();
    if (n == 0) return T{};
    for (std::size_t stride = 1; stride < n; stride *= 2) {
      for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
        slots[i] = combine(slots[i], slots[i + stride]);
      }
    }
    return slots[0];
  }

 private:
  void worker_loop(int tid);
  void run_chunks(int tid);

  int nthreads_ = 1;
  std::vector<std::thread> workers_;
  std::vector<double> busy_seconds_;

  // Current job (valid while generation_ is odd... guarded by mutex_).
  std::function<void(int, int, int)> job_;
  int job_begin_ = 0;
  int job_end_ = 0;
  int job_grain_ = 0;
  int nchunks_ = 0;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per parallel_for
  int remaining_ = 0;             // workers still running the current job
  bool shutdown_ = false;
};

}  // namespace parallel
}  // namespace ember
