#pragma once

// Spatial domain decomposition over a rank grid.
//
// The global orthorhombic box is split into nx x ny x nz equal sub-domains
// (the paper's production run used a 30 x 30 x 31 grid over 27,900 ranks,
// chosen to minimize the surface-to-volume ratio of the halo regions —
// choose() applies the same criterion).

#include <array>

#include "common/error.hpp"
#include "common/vec3.hpp"
#include "md/box.hpp"

namespace ember::parallel {

struct RankGrid {
  int nx = 1, ny = 1, nz = 1;

  [[nodiscard]] int size() const { return nx * ny * nz; }

  // Factorization of nranks minimizing the total halo surface for a box
  // with the given aspect ratio (defaults to cubic).
  static RankGrid choose(int nranks, const Vec3& box_lengths = {1, 1, 1});

  [[nodiscard]] int rank_of(int cx, int cy, int cz) const {
    const auto wrap = [](int c, int n) { return ((c % n) + n) % n; };
    cx = wrap(cx, nx);
    cy = wrap(cy, ny);
    cz = wrap(cz, nz);
    return (cz * ny + cy) * nx + cx;
  }

  [[nodiscard]] std::array<int, 3> coords_of(int rank) const {
    return {rank % nx, (rank / nx) % ny, rank / (nx * ny)};
  }
};

class Domain {
 public:
  Domain(const md::Box& global_box, const RankGrid& grid, int rank);

  [[nodiscard]] const RankGrid& grid() const { return grid_; }
  [[nodiscard]] Vec3 lo() const { return lo_; }
  [[nodiscard]] Vec3 hi() const { return hi_; }
  [[nodiscard]] Vec3 lengths() const { return hi_ - lo_; }

  // Owner rank of a position already wrapped into the global box.
  [[nodiscard]] int owner_of(const Vec3& pos) const;

  [[nodiscard]] bool owns(const Vec3& pos) const {
    return owner_of(pos) == rank_;
  }

 private:
  md::Box global_;
  RankGrid grid_;
  int rank_;
  Vec3 lo_;
  Vec3 hi_;
};

}  // namespace ember::parallel
