#include "scaling.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ember::perf {

MachineModel MachineModel::summit() {
  MachineModel m;
  m.node = {"Summit", 6, 43.2, 1.091, 2000, 1e15};
  m.net = {35.0, 0.4, 1.5, 18, 1.35, 60.0};
  return m;
}

MachineModel MachineModel::selene() {
  // 8x A100 per node; ~1.9x Summit per node for SNAP. The peak counts the
  // FP64 tensor cores (19.5 TF/GPU) which SNAP cannot use — the paper's
  // explanation for Selene's lower fraction of peak (14%).
  MachineModel m;
  m.node = {"Selene", 8, 156.0, 1.60, 2000, 1e15};
  m.net = {25.0, 0.8, 2.5, 35, 1.25, 60.0};
  return m;
}

MachineModel MachineModel::perlmutter() {
  // 4x A100 per node: per-GPU rate like Selene's, rough node parity with
  // 6-GPU Summit thanks to the generational improvement.
  MachineModel m;
  m.node = {"Perlmutter", 4, 78.0, 1.60, 2000, 1e15};
  m.net = {25.0, 0.8, 2.5, 64, 1.25, 60.0};
  return m;
}

MachineModel MachineModel::frontera() {
  // CPU machine (2x Xeon 8280 per node); the paper reports Summit ~52x
  // faster per node for the 1 G-atom benchmark. Modelled as one device per
  // node with a CPU-level rate and no occupancy cliff.
  MachineModel m;
  m.node = {"Frontera", 1, 3.9, 0.12, 50, 1e15};
  m.net = {2.0, 4.0, 8.0, 90, 1.15, 60.0};
  return m;
}

ScalingModel::ScalingModel(MachineModel machine, double flops_per_atom_step)
    : machine_(machine), flops_per_atom_step_(flops_per_atom_step) {}

RunPrediction ScalingModel::predict(double natoms, int nodes) const {
  EMBER_REQUIRE(natoms > 0 && nodes > 0, "invalid prediction arguments");
  const NodeModel& nd = machine_.node;
  const NetworkModel& net = machine_.net;

  RunPrediction run;
  run.natoms = natoms;
  run.nodes = nodes;

  const double ranks = static_cast<double>(nodes) * nd.gpus_per_node;
  const double n_rank = natoms / ranks;  // atoms per GPU (= per MPI rank)

  // --- compute: occupancy-saturating GPU throughput ---
  const double occ = n_rank / (n_rank + nd.half_occupancy_atoms);
  const double roll = 1.0 / (1.0 + n_rank / nd.rolloff_atoms);
  const double rate = nd.rate_max * occ * roll;  // Matom-steps/s per GPU
  run.t_compute = n_rank / (rate * 1e6);

  // --- communication: 6-direction halo, forward + reverse, reductions ---
  const double side = std::cbrt(n_rank / machine_.atom_density);  // [A]
  const double outer = side + 2.0 * machine_.ghost_cutoff;
  const double ghost_atoms =
      machine_.atom_density * (outer * outer * outer - side * side * side);
  const double bytes = ghost_atoms * net.bytes_per_ghost;
  const bool cross_rack = nodes > net.rack_nodes;
  const double bw =
      (cross_rack ? net.bandwidth_GBps : net.bandwidth_intra_GBps) * 1e9;
  const double lat = net.latency_us * 1e-6 * (cross_rack ? net.rack_penalty : 1.0);
  const double n_msgs = 12.0;  // 6 legs, forward + reverse
  const double allreduce = 2.0 * std::log2(std::max(2.0, ranks)) * lat;
  run.t_comm = n_msgs * lat + bytes / bw + allreduce;

  // --- other: integration, thermostat, services (paper Fig. 4 "Other") --
  run.t_other = n_rank * 9.0e-9 + 5.0e-4;

  return run;
}

double ScalingModel::pflops(const RunPrediction& run) const {
  const double atom_steps_per_s = run.natoms / run.step_time();
  return atom_steps_per_s * flops_per_atom_step_ / 1e15;
}

double ScalingModel::fraction_of_peak(const RunPrediction& run) const {
  const double peak_pflops = run.nodes * machine_.node.peak_tflops / 1e3;
  return pflops(run) / peak_pflops;
}

double ScalingModel::parallel_efficiency(double natoms, int nodes_lo,
                                         int nodes_hi) const {
  const auto lo = predict(natoms, nodes_lo);
  const auto hi = predict(natoms, nodes_hi);
  return hi.matom_steps_per_node_s() / lo.matom_steps_per_node_s();
}

int ScalingModel::min_nodes(double natoms) const {
  // ~4.7 kB total footprint per atom (neighbor lists, comm buffers, SNAP
  // scratch) on a 16 GB V100: the paper first fits 20 G atoms on 972
  // nodes and 1 G on 64.
  const double atoms_per_gpu_max = 3.43e6;
  const double gpus = natoms / atoms_per_gpu_max;
  return std::max(1, static_cast<int>(
                         std::ceil(gpus / machine_.node.gpus_per_node)));
}

}  // namespace ember::perf
