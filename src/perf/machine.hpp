#pragma once

// Machine models for the scaling study.
//
// The paper's evaluation ran on OLCF Summit (plus Selene, Perlmutter and
// Frontera for Fig. 6). This environment has one CPU core, so the machine
// is *modelled*: per-node SNAP throughput with an occupancy-saturation
// curve, plus a halo-exchange network model. Parameters are calibrated so
// the model reproduces the paper's stated anchors (checked in
// tests/perf/test_scaling.cpp):
//   - 6.21 Matom-steps/node-s for 20 G atoms on 4,650 Summit nodes
//     (50.0 PFLOPS, 24.9% of peak)
//   - strong-scaling efficiencies 97% (20 G), 82% (1 G), 41% (10 M)
//   - Fig. 4 breakdowns ~95/4/1, 86/12/2, 60/35/5 (SNAP/MPI/Other)
//   - Fig. 5 weak scaling: flat, rack dip past 18 nodes, ~90% at 4,096
//   - Fig. 6 ratios: Summit ~52x Frontera/node, Selene ~1.9x Summit/node

#include <string>

namespace ember::perf {

struct NodeModel {
  std::string name;
  int gpus_per_node = 6;
  double peak_tflops = 43.2;  // FP64 peak per node [TFLOP/s]
  // Per-GPU SNAP throughput [Matom-steps/s]:
  //   rate(n) = rate_max * occ(n) * roll(n)
  //   occ(n)  = n / (n + half_occupancy_atoms)   (GPU occupancy builds up)
  //   roll(n) = 1 / (1 + n / rolloff_atoms)      (optional cache rolloff;
  //                                               off by default)
  double rate_max = 1.091;
  double half_occupancy_atoms = 2000;
  double rolloff_atoms = 1e15;
};

struct NetworkModel {
  double latency_us = 35.0;          // effective per halo message
  double bandwidth_GBps = 0.4;       // per-rank halo bandwidth, cross-rack
  double bandwidth_intra_GBps = 1.5; // per-rank bandwidth within one rack
  double rack_nodes = 18;            // nodes per rack (Summit racks of 18)
  double rack_penalty = 1.35;        // latency multiplier across racks
  double bytes_per_ghost = 60.0;     // forward + reverse + amortized rebuild
};

struct MachineModel {
  NodeModel node;
  NetworkModel net;
  // Workload parameters determining halo volume: atom number density
  // [atoms/A^3] (carbon at ~12 Mbar is ~0.3) and the SNAP ghost cutoff.
  double atom_density = 0.30;
  double ghost_cutoff = 5.2;

  static MachineModel summit();
  static MachineModel selene();
  static MachineModel perlmutter();
  static MachineModel frontera();
};

}  // namespace ember::perf
