#pragma once

// Model of the paper's Fig. 7 production run: 1,024,192,512 atoms on 4,650
// Summit nodes for 24 hours / 1 ns of physical time, in five thermostat
// segments (5000, 5300, 5500, 5500, 5500 K). The performance trace shows
//   - large dips where binary checkpoint files are written,
//   - a small rise within each segment as the ordered BC8 phase emerges
//     (ordered neighborhoods are slightly cheaper to evaluate),
//   - restarts between segments.

#include <string>
#include <vector>

#include "perf/scaling.hpp"

namespace ember::md {
class Simulation;
}  // namespace ember::md

namespace ember::perf {

struct ProductionSample {
  double wall_hours = 0.0;
  double sim_ns = 0.0;
  double perf_matom_steps_node_s = 0.0;
  double temperature = 0.0;
  double bc8_fraction = 0.0;
  bool checkpoint = false;  // this sample contains a checkpoint write
};

struct ProductionConfig {
  double natoms = 1.024192512e9;
  int nodes = 4650;
  double total_hours = 24.0;
  double timestep_fs = 0.5;  // production timestep at 5000+ K
  double sample_every_steps = 1000;   // paper: loop time every 1000 steps
  double checkpoint_every_hours = 2.0;
  double checkpoint_minutes = 6.0;    // stall while writing ~multi-TB file
  double bc8_rate_boost = 0.10;       // perf gain at full BC8 order
  std::vector<double> segment_temperatures{5000, 5300, 5500, 5500, 5500};
};

class ProductionModel {
 public:
  ProductionModel(ScalingModel model, ProductionConfig config)
      : model_(std::move(model)), config_(std::move(config)) {}

  // Generate the full 24 h trace.
  [[nodiscard]] std::vector<ProductionSample> trace() const;

  // BC8 order parameter vs simulated time [ns]: nucleation-and-growth
  // (Avrami-like) switched on above the transformation onset.
  [[nodiscard]] double bc8_fraction(double sim_ns) const;

 private:
  ScalingModel model_;
  ProductionConfig config_;
};

// ---- miniature production run (real MD on the unified pipeline) ----------
//
// The measured counterpart to the model trace above: drive an actual
// Simulation through the paper's segment structure — a Langevin
// temperature schedule, fixed-size measurement blocks, and periodic
// binary checkpoints written through the driver's unified
// save_checkpoint hook (the I/O cost lands inside the measured block,
// exactly like the paper's Fig. 7 dips).

struct MiniatureConfig {
  std::vector<double> segment_temperatures{5000, 5300, 5500, 5500, 5500};
  int blocks_per_segment = 2;
  long steps_per_block = 60;
  double langevin_damp_ps = 0.05;
  int checkpoint_every_blocks = 4;  // <= 0 disables checkpointing
  std::string checkpoint_path = "/tmp/ember_fig7_ckpt.bin";
};

struct MiniatureBlock {
  int block = 0;
  double t_target = 0.0;     // [K]
  double temperature = 0.0;  // [K] measured at block end
  double katom_steps_per_s = 0.0;
  bool checkpoint = false;   // block contains a checkpoint write
};

std::vector<MiniatureBlock> run_miniature_production(
    md::Simulation& sim, const MiniatureConfig& config = {});

}  // namespace ember::perf
