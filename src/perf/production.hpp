#pragma once

// Model of the paper's Fig. 7 production run: 1,024,192,512 atoms on 4,650
// Summit nodes for 24 hours / 1 ns of physical time, in five thermostat
// segments (5000, 5300, 5500, 5500, 5500 K). The performance trace shows
//   - large dips where binary checkpoint files are written,
//   - a small rise within each segment as the ordered BC8 phase emerges
//     (ordered neighborhoods are slightly cheaper to evaluate),
//   - restarts between segments.

#include <vector>

#include "perf/scaling.hpp"

namespace ember::perf {

struct ProductionSample {
  double wall_hours = 0.0;
  double sim_ns = 0.0;
  double perf_matom_steps_node_s = 0.0;
  double temperature = 0.0;
  double bc8_fraction = 0.0;
  bool checkpoint = false;  // this sample contains a checkpoint write
};

struct ProductionConfig {
  double natoms = 1.024192512e9;
  int nodes = 4650;
  double total_hours = 24.0;
  double timestep_fs = 0.5;  // production timestep at 5000+ K
  double sample_every_steps = 1000;   // paper: loop time every 1000 steps
  double checkpoint_every_hours = 2.0;
  double checkpoint_minutes = 6.0;    // stall while writing ~multi-TB file
  double bc8_rate_boost = 0.10;       // perf gain at full BC8 order
  std::vector<double> segment_temperatures{5000, 5300, 5500, 5500, 5500};
};

class ProductionModel {
 public:
  ProductionModel(ScalingModel model, ProductionConfig config)
      : model_(std::move(model)), config_(std::move(config)) {}

  // Generate the full 24 h trace.
  [[nodiscard]] std::vector<ProductionSample> trace() const;

  // BC8 order parameter vs simulated time [ns]: nucleation-and-growth
  // (Avrami-like) switched on above the transformation onset.
  [[nodiscard]] double bc8_fraction(double sim_ns) const;

 private:
  ScalingModel model_;
  ProductionConfig config_;
};

}  // namespace ember::perf
