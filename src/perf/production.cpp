#include "production.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "md/simulation.hpp"

namespace ember::perf {

double ProductionModel::bc8_fraction(double sim_ns) const {
  // Nucleation begins once the sample has annealed (~0.25 ns into the
  // run, after the first temperature raise); Avrami growth afterwards.
  const double onset = 0.25;
  if (sim_ns <= onset) return 0.0;
  const double t = sim_ns - onset;
  return 1.0 - std::exp(-std::pow(t / 0.45, 2.0));
}

std::vector<ProductionSample> ProductionModel::trace() const {
  std::vector<ProductionSample> out;
  const auto base = model_.predict(config_.natoms, config_.nodes);
  const double base_rate = base.matom_steps_per_node_s();

  const double steps_per_sample = config_.sample_every_steps;
  double wall_s = 0.0;
  double sim_ps = 0.0;
  double next_checkpoint_s = config_.checkpoint_every_hours * 3600.0;
  const double total_s = config_.total_hours * 3600.0;
  const int nseg = static_cast<int>(config_.segment_temperatures.size());

  while (wall_s < total_s) {
    const int seg = std::min(
        nseg - 1, static_cast<int>(wall_s / (total_s / nseg)));
    const double frac = bc8_fraction(sim_ps / 1000.0);
    // Ordered-phase speedup accrues with the BC8 fraction.
    const double rate = base_rate * (1.0 + config_.bc8_rate_boost * frac);

    ProductionSample s;
    const double block_atom_steps = config_.natoms * steps_per_sample;
    double block_wall =
        block_atom_steps / (rate * 1e6) / config_.nodes;
    s.checkpoint = false;
    if (wall_s + block_wall >= next_checkpoint_s) {
      // Checkpoint write stalls the loop: the sampled rate collapses.
      block_wall += config_.checkpoint_minutes * 60.0;
      next_checkpoint_s += config_.checkpoint_every_hours * 3600.0;
      s.checkpoint = true;
    }
    wall_s += block_wall;
    sim_ps += steps_per_sample * config_.timestep_fs * 1e-3;

    s.wall_hours = wall_s / 3600.0;
    s.sim_ns = sim_ps / 1000.0;
    s.perf_matom_steps_node_s =
        block_atom_steps / (block_wall * config_.nodes) / 1e6;
    s.temperature = config_.segment_temperatures[seg];
    s.bc8_fraction = frac;
    out.push_back(s);
  }
  return out;
}

std::vector<MiniatureBlock> run_miniature_production(
    md::Simulation& sim, const MiniatureConfig& config) {
  sim.setup();
  std::vector<MiniatureBlock> out;
  int block = 0;
  for (const double t_target : config.segment_temperatures) {
    // Segment boundary: the paper restarts with a raised thermostat.
    sim.integrator().set_langevin(
        md::LangevinParams{t_target, config.langevin_damp_ps});
    for (int rep = 0; rep < config.blocks_per_segment; ++rep, ++block) {
      WallTimer timer;
      sim.run(config.steps_per_block);
      const bool ckpt = config.checkpoint_every_blocks > 0 &&
                        block % config.checkpoint_every_blocks ==
                            config.checkpoint_every_blocks - 1;
      if (ckpt) {
        // The write lands inside the measured block, exactly like the
        // paper's checkpoint dips.
        sim.save_checkpoint(config.checkpoint_path);
      }
      MiniatureBlock b;
      b.block = block;
      b.t_target = t_target;
      b.temperature = sim.system().temperature();
      b.katom_steps_per_s = sim.system().nlocal() * config.steps_per_block /
                            timer.seconds() / 1e3;
      b.checkpoint = ckpt;
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace ember::perf
