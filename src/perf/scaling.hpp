#pragma once

// Analytic scaling model: predicts time-per-step and its breakdown for a
// SNAP MD run of N atoms on a given machine and node count, from which the
// paper's Figs. 3-6 series are regenerated.

#include <vector>

#include "perf/machine.hpp"

namespace ember::perf {

struct RunPrediction {
  double natoms = 0;
  int nodes = 0;
  double t_compute = 0.0;  // [s/step] SNAP force kernel
  double t_comm = 0.0;     // [s/step] halo exchange + reductions
  double t_other = 0.0;    // [s/step] integration, thermostat, services
  [[nodiscard]] double step_time() const {
    return t_compute + t_comm + t_other;
  }
  // The paper's figure of merit.
  [[nodiscard]] double matom_steps_per_node_s() const {
    return natoms / step_time() / nodes / 1e6;
  }
  [[nodiscard]] double comm_fraction() const { return t_comm / step_time(); }
  [[nodiscard]] double compute_fraction() const {
    return t_compute / step_time();
  }
  [[nodiscard]] double other_fraction() const { return t_other / step_time(); }
};

class ScalingModel {
 public:
  // flops_per_atom_step: from the SNAP kernel's analytic FLOP count
  // (Bispectrum::flops_adjoint_atom) — used to convert rates to FLOP/s.
  explicit ScalingModel(MachineModel machine,
                        double flops_per_atom_step = 1.7e6);

  [[nodiscard]] const MachineModel& machine() const { return machine_; }

  [[nodiscard]] RunPrediction predict(double natoms, int nodes) const;

  // Sustained FLOP rate of a run [PFLOP/s].
  [[nodiscard]] double pflops(const RunPrediction& run) const;
  // Fraction of the machine's theoretical peak.
  [[nodiscard]] double fraction_of_peak(const RunPrediction& run) const;

  // Strong-scaling parallel efficiency between two node counts.
  [[nodiscard]] double parallel_efficiency(double natoms, int nodes_lo,
                                           int nodes_hi) const;

  // Smallest node count whose per-GPU memory can hold the problem
  // (~1.4 GB per million atoms, 16 GB V100-class budget).
  [[nodiscard]] int min_nodes(double natoms) const;

 private:
  MachineModel machine_;
  double flops_per_atom_step_;
};

}  // namespace ember::perf
