#include "check/invariants.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ember::check {

namespace {

[[nodiscard]] std::string prefix(const char* stage, long step) {
  return "[check] " + std::string(stage) + " @ step " + std::to_string(step) +
         ": ";
}

[[nodiscard]] std::string vec_str(const Vec3& v) {
  return "(" + std::to_string(v.x) + "," + std::to_string(v.y) + "," +
         std::to_string(v.z) + ")";
}

// std::to_string(double) is fixed-precision and renders small drifts as
// 0.000000; energies and tolerances need scientific notation.
[[nodiscard]] std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

[[nodiscard]] bool finite(const Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

}  // namespace

InvariantViolation::InvariantViolation(const char* stage, long step,
                                       const std::string& what)
    : Error(prefix(stage, step) + what), stage_(stage), step_(step) {}

void check_finite(std::span<const Vec3> values, int count,
                  const char* array_name, const char* stage, long step) {
  for (int i = 0; i < count; ++i) {
    if (!finite(values[static_cast<std::size_t>(i)])) {
      throw InvariantViolation(
          stage, step,
          "non-finite " + std::string(array_name) + " on atom " +
              std::to_string(i) + " " +
              vec_str(values[static_cast<std::size_t>(i)]));
    }
  }
}

void check_neighbor_list(const md::NeighborList& nl, const md::System& sys,
                         const char* stage, long step) {
  const int nlocal = sys.nlocal();
  const int ntotal = sys.ntotal();
  if (nl.num_atoms() != nlocal) {
    throw InvariantViolation(
        stage, step,
        "neighbor list covers " + std::to_string(nl.num_atoms()) +
            " atoms but the system owns " + std::to_string(nlocal));
  }
  for (int i = 0; i < nlocal; ++i) {
    for (const auto& en : nl.neighbors(i)) {
      if (en.j < 0 || en.j >= ntotal) {
        throw InvariantViolation(
            stage, step,
            "neighbor index " + std::to_string(en.j) + " of atom " +
                std::to_string(i) + " outside [0, " + std::to_string(ntotal) +
                ")");
      }
      if (en.j == i && en.shift.norm2() == 0.0) {
        throw InvariantViolation(
            stage, step,
            "atom " + std::to_string(i) + " lists itself with zero shift");
      }
      if (en.j >= nlocal) continue;  // ghost rows do not exist locally
      // Local-local pairs must mirror with the opposite periodic shift.
      bool mirrored = false;
      for (const auto& back : nl.neighbors(en.j)) {
        if (back.j == i && back.shift.x == -en.shift.x &&
            back.shift.y == -en.shift.y && back.shift.z == -en.shift.z) {
          mirrored = true;
          break;
        }
      }
      if (!mirrored) {
        throw InvariantViolation(
            stage, step,
            "asymmetric neighbor pair: atom " + std::to_string(i) +
                " lists atom " + std::to_string(en.j) + " (shift " +
                vec_str(en.shift) + ") but not vice versa");
      }
    }
  }
}

void check_no_ghosts(const md::System& sys, const char* stage, long step) {
  if (sys.ntotal() != sys.nlocal()) {
    throw InvariantViolation(
        stage, step,
        "driver owns every atom but " + std::to_string(sys.nghost()) +
            " ghost(s) survive the exchange (nlocal " +
            std::to_string(sys.nlocal()) + ", ntotal " +
            std::to_string(sys.ntotal()) + ")");
  }
}

void check_atom_conservation(long have, long expected, const char* stage,
                             long step) {
  if (have != expected) {
    throw InvariantViolation(
        stage, step,
        "atom count not conserved: have " + std::to_string(have) +
            ", expected " + std::to_string(expected));
  }
}

void check_ghost_legs(std::span<const int> leg_counts, int nghost,
                      const char* stage, long step) {
  long sum = 0;
  for (const int c : leg_counts) {
    if (c < 0) {
      throw InvariantViolation(stage, step,
                               "negative ghost count " + std::to_string(c) +
                                   " on an exchange leg");
    }
    sum += c;
  }
  if (sum != nghost) {
    throw InvariantViolation(
        stage, step,
        "ghost bookkeeping mismatch: exchange legs recorded " +
            std::to_string(sum) + " ghosts, system holds " +
            std::to_string(nghost));
  }
}

void DriftTripwire::observe(double total_energy, long step) const {
  if (!armed_) return;
  const double scale = std::max(std::abs(reference_), 1.0);
  const double drift = std::abs(total_energy - reference_);
  if (!std::isfinite(total_energy) || drift > tol_ * scale) {
    throw InvariantViolation(
        "energy", step,
        "total energy drifted to " + sci(total_energy) + " from reference " +
            sci(reference_) + " (relative drift " + sci(drift / scale) +
            " > tolerance " + sci(tol_) + ")");
  }
}

double drift_tolerance_from_env() {
  const char* env = std::getenv("EMBER_CHECK_DRIFT_TOL");
  if (env == nullptr) return 0.0;
  char* end = nullptr;
  const double tol = std::strtod(env, &end);
  if (end == env || !std::isfinite(tol) || tol <= 0.0) return 0.0;
  return tol;
}

}  // namespace ember::check
